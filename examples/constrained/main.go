// constrained demonstrates the paper's Section 3.3: searching for
// adversarial inputs inside realistic constraint sets — near a historical
// demand matrix (goalposts), with bounded deviation from the mean
// (intra-input constraints), and iteratively excluding previously found
// inputs to obtain a diverse catalogue of bad examples (Section 5).
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	metaopt "repro"
)

func main() {
	pairs := flag.Int("pairs", 8, "number of demand pairs")
	threshold := flag.Float64("threshold", 10, "DP pinning threshold")
	seed := flag.Int64("seed", 3, "random seed")
	budget := flag.Duration("budget", 6*time.Second, "white-box budget per search")
	flag.Parse()

	g := metaopt.Abilene()
	rng := rand.New(rand.NewSource(*seed))
	set := metaopt.RandomPairs(g, *pairs, rng)
	inst, err := metaopt.NewInstance(g, set, 2)
	if err != nil {
		log.Fatal(err)
	}
	opts := metaopt.SearchOptions{TimeLimit: *budget, DepthFirst: true}

	// Unconstrained worst case, as a reference point.
	free, err := metaopt.FindDPGap(inst, *threshold, metaopt.InputConstraints{MaxDemand: 100}, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unconstrained worst case:            gap %8.2f (%s)\n", free.Gap, free.Solver.Status)

	// Goalpost: stay within 25%% of a gravity-model "historical" matrix.
	hist := set.Clone()
	hist.Gravity(rng, g, 40)
	gp, err := metaopt.FindDPGap(inst, *threshold, metaopt.InputConstraints{
		MaxDemand: 100,
		Goalposts: []metaopt.Goalpost{{Reference: hist.CopyVolumes(), MaxRelDev: 0.25}},
	}, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("within 25%% of historical demands:    gap %8.2f (%s)\n", gp.Gap, gp.Solver.Status)

	// Intra-input constraint: all demands within 10 units of the mean.
	mean, err := metaopt.FindDPGap(inst, *threshold, metaopt.InputConstraints{
		MaxDemand:      100,
		MaxDevFromMean: 10,
	}, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("all demands near the mean (+/-10):   gap %8.2f (%s)\n\n", mean.Gap, mean.Solver.Status)

	// Diverse inputs: re-search while excluding earlier answers.
	fmt.Println("diverse bad inputs (each at least 15 units from all previous, in some coordinate):")
	exclusions := [][]float64{}
	for i := 0; i < 3; i++ {
		res, err := metaopt.FindDPGap(inst, *threshold, metaopt.InputConstraints{
			MaxDemand:       100,
			Exclusions:      exclusions,
			ExclusionRadius: 15,
		}, opts)
		if err != nil {
			log.Fatal(err)
		}
		if res.Demands == nil {
			fmt.Printf("  #%d: no further input found (%v)\n", i+1, res.Solver.Status)
			break
		}
		fmt.Printf("  #%d: gap %8.2f, demands %v\n", i+1, res.Gap, compact(res.Demands))
		exclusions = append(exclusions, res.Demands)
	}
}

func compact(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(int(x*10+0.5)) / 10
	}
	return out
}
