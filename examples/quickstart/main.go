// Quickstart walks through the paper's Figure 1: a 3-node network where
// Demand Pinning loses 100 units of flow (40% of the optimum), and shows
// the white-box gap finder recovering that worst case automatically.
package main

import (
	"fmt"
	"log"

	metaopt "repro"
)

func main() {
	// The Figure-1 topology: links 0->1 (cap 100), 1->2 (cap 100) and a
	// long direct link 0->2 (cap 50, routing weight 3).
	g := metaopt.Figure1()
	set := metaopt.NewDemandSet([]metaopt.Pair{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 0, Dst: 2},
	})
	set.SetVolumes([]float64{100, 100, 50})
	inst, err := metaopt.NewInstance(g, set, 2)
	if err != nil {
		log.Fatal(err)
	}

	// Solve the instance with the optimal algorithm and the DP heuristic
	// (threshold 50: the 0->2 demand is "at the threshold" and is pinned
	// onto its weight-shortest path through node 1).
	opt, err := metaopt.SolveMaxFlow(inst)
	if err != nil {
		log.Fatal(err)
	}
	dp, err := metaopt.SolveDemandPinning(inst, 50)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("OPT carries %.0f units, DemandPinning carries %.0f units\n", opt.Total, dp.Total)
	fmt.Printf("gap on the hand-built demands: %.0f units (%.0f%% of OPT)\n\n",
		opt.Total-dp.Total, 100*(opt.Total-dp.Total)/opt.Total)

	// Now forget the hand-built demands and ask the gap finder for the
	// worst case over ALL demand vectors bounded by 100.
	res, err := metaopt.FindDPGap(inst, 50,
		metaopt.InputConstraints{MaxDemand: 100},
		metaopt.SearchOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("white-box worst case (proved %s):\n", res.Solver.Status)
	fmt.Printf("  adversarial demands: %.1f\n", res.Demands)
	fmt.Printf("  OPT=%.0f  DP=%.0f  gap=%.0f (normalized %.3f)\n",
		res.OptValue, res.HeurValue, res.Gap, res.NormalizedGap)
	fmt.Printf("  meta-optimization size: %d vars, %d linear rows, %d SOS pairs, %d binaries\n",
		res.Stats.Vars, res.Stats.LinearCons, res.Stats.SOSPairs, res.Stats.Binaries)
}
