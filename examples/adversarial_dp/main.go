// adversarial_dp compares the white-box gap finder against the black-box
// baselines (hill climbing, simulated annealing) on Demand Pinning over a
// SWAN-like WAN — the head-to-head of the paper's Figure 3, at a scale the
// built-in solver proves optimal in seconds.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	metaopt "repro"
)

func main() {
	topoName := flag.String("topo", "swan", "topology: swan, b4, abilene, figure1, circle-N-M")
	pairs := flag.Int("pairs", 10, "number of demand pairs (restricts the search support)")
	threshold := flag.Float64("threshold", 5, "DP pinning threshold (absolute units; links have capacity 100)")
	seed := flag.Int64("seed", 1, "random seed")
	budget := flag.Duration("budget", 5*time.Second, "per-method time budget")
	flag.Parse()

	g, err := metaopt.TopologyByName(*topoName)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(*seed))
	set := metaopt.RandomPairs(g, *pairs, rng)
	inst, err := metaopt.NewInstance(g, set, 2)
	if err != nil {
		log.Fatal(err)
	}
	input := metaopt.InputConstraints{MaxDemand: 100}
	fmt.Printf("topology %s: %d nodes, %d directed links; %d demand pairs; threshold %.1f\n\n",
		g.Name(), g.NumNodes(), g.NumEdges(), set.Len(), *threshold)

	// White box: KKT-rewritten single-shot optimization.
	start := time.Now()
	wb, err := metaopt.FindDPGap(inst, *threshold, input, metaopt.SearchOptions{
		TimeLimit:    *budget,
		DepthFirst:   true,
		StallWindow:  *budget / 4,
		StallImprove: 0.005, // the paper's 0.5% progress rule
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("white-box:   gap %8.2f (normalized %.4f) in %8v  [%s, bound %.2f, %d nodes]\n",
		wb.Gap, wb.NormalizedGap, time.Since(start).Round(time.Millisecond),
		wb.Solver.Status, wb.Solver.Bound, wb.Solver.Nodes)

	// Black boxes with the same wall-clock budget.
	gapFn := metaopt.DPGapFunc(inst, *threshold)
	hc, err := metaopt.HillClimb(gapFn, set.Len(), metaopt.BlackboxOptions{
		MaxDemand: 100, Sigma: 10, K: 100, Budget: *budget,
		Rng: rand.New(rand.NewSource(*seed + 1)),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hill climb:  gap %8.2f (normalized %.4f) in %8v  [%d evals]\n",
		hc.Gap, hc.Gap/g.TotalCapacity(), hc.Elapsed.Round(time.Millisecond), hc.Evals)

	sa, err := metaopt.SimulatedAnneal(gapFn, set.Len(), metaopt.AnnealOptions{
		Options: metaopt.BlackboxOptions{
			MaxDemand: 100, Sigma: 10, K: 100, Budget: *budget,
			Rng: rand.New(rand.NewSource(*seed + 2)),
		},
		T0: 500, Gamma: 0.1, KP: 100,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sim anneal:  gap %8.2f (normalized %.4f) in %8v  [%d evals]\n\n",
		sa.Gap, sa.Gap/g.TotalCapacity(), sa.Elapsed.Round(time.Millisecond), sa.Evals)

	fmt.Printf("adversarial demands found by the white box:\n")
	for k := 0; k < set.Len(); k++ {
		if wb.Demands[k] > 0.01 {
			fmt.Printf("  %v: %.1f%s\n", set.Pair(k), wb.Demands[k],
				pinMark(wb.Demands[k], *threshold))
		}
	}
}

func pinMark(d, threshold float64) string {
	if d <= threshold {
		return "   <- pinned by DP"
	}
	return ""
}
