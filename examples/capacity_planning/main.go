// capacity_planning uses the Section-5 extension of the gap finder: instead
// of adversarial demands, it searches for the topology change — a per-link
// capacity assignment within engineering bounds — that hurts Demand Pinning
// the most for a fixed (gravity-model) traffic matrix. Operators can use
// the answer to see which link downgrades would make the heuristic unsafe.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	metaopt "repro"
)

func main() {
	topoName := flag.String("topo", "abilene", "topology: b4, abilene, swan, figure1, circle-N-M")
	pairs := flag.Int("pairs", 12, "demand pairs carrying traffic")
	threshold := flag.Float64("threshold", 10, "DP pinning threshold")
	slack := flag.Float64("slack", 0.5, "capacity bounds: nominal*(1 +/- slack)")
	budget := flag.Duration("budget", 8*time.Second, "search budget")
	seed := flag.Int64("seed", 4, "random seed")
	flag.Parse()

	g, err := metaopt.TopologyByName(*topoName)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(*seed))
	set := metaopt.RandomPairs(g, *pairs, rng)
	set.Gravity(rng, g, 80)
	// Keep a few demands under the threshold so DP has something to pin.
	for k := 0; k < set.Len(); k += 3 {
		set.SetVolume(k, *threshold)
	}
	inst, err := metaopt.NewInstance(g, set, 2)
	if err != nil {
		log.Fatal(err)
	}

	lo := make([]float64, g.NumEdges())
	hi := make([]float64, g.NumEdges())
	for e := 0; e < g.NumEdges(); e++ {
		nominal := g.Edge(e).Capacity
		lo[e] = nominal * (1 - *slack)
		hi[e] = nominal * (1 + *slack)
	}

	pr := &metaopt.CapacityGapProblem{Inst: inst, Threshold: *threshold, CapLo: lo, CapHi: hi}
	res, err := pr.Solve(metaopt.SearchOptions{
		TimeLimit: *budget, DepthFirst: true,
		StallWindow: *budget / 3, StallImprove: 0.005,
	})
	if err != nil {
		log.Fatal(err)
	}
	if res.Demands == nil {
		log.Fatalf("no topology found (%v)", res.Solver.Status)
	}
	fmt.Printf("%s with %d demands (threshold %.1f): worst-case capacity assignment found\n",
		g.Name(), set.Len(), *threshold)
	fmt.Printf("gap = %.2f flow units (%s, bound %.2f, %d nodes)\n",
		res.Gap, res.Solver.Status, res.Solver.Bound, res.Solver.Nodes)
	fmt.Printf("OPT = %.2f, DemandPinning = %.2f\n\n", res.OptValue, res.HeurValue)
	fmt.Println("links the adversary changed from nominal:")
	for e := 0; e < g.NumEdges(); e++ {
		nominal := g.Edge(e).Capacity
		c := res.Demands[e]
		if c < nominal-1 {
			fmt.Printf("  %2d->%-2d  %6.1f -> %6.1f  (downgraded)\n",
				g.Edge(e).From, g.Edge(e).To, nominal, c)
		} else if c > nominal+1 {
			fmt.Printf("  %2d->%-2d  %6.1f -> %6.1f  (upgraded)\n",
				g.Edge(e).From, g.Edge(e).To, nominal, c)
		}
	}
}
