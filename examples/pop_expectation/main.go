// pop_expectation demonstrates why adversarial inputs for a randomized
// heuristic must target a deterministic descriptor (Section 3.2 and
// Figure 5a): an input tuned against ONE random POP partitioning looks
// scary but evaporates on fresh partitionings, while an input tuned
// against the AVERAGE of several instantiations keeps its gap.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	metaopt "repro"
)

func main() {
	pairs := flag.Int("pairs", 16, "number of demand pairs")
	partitions := flag.Int("partitions", 2, "POP partitions")
	testRounds := flag.Int("rounds", 10, "fresh partitionings to test on")
	budget := flag.Duration("budget", 8*time.Second, "white-box budget per search")
	seed := flag.Int64("seed", 7, "random seed")
	flag.Parse()

	g := metaopt.B4()
	rng := rand.New(rand.NewSource(*seed))
	set := metaopt.RandomPairs(g, *pairs, rng)
	inst, err := metaopt.NewInstance(g, set, 2)
	if err != nil {
		log.Fatal(err)
	}
	input := metaopt.InputConstraints{MaxDemand: 40} // the regime where overfitting shows
	opts := metaopt.SearchOptions{TimeLimit: *budget, DepthFirst: true}

	for _, r := range []int{1, 5} {
		res, err := metaopt.FindPOPGap(inst, *partitions, r, rand.New(rand.NewSource(*seed+int64(r))), input, opts)
		if err != nil {
			log.Fatal(err)
		}
		if res.Demands == nil {
			log.Fatalf("no incumbent found (%v)", res.Solver.Status)
		}
		transfer, err := metaopt.POPTransferGap(inst, res.Demands, *partitions, *testRounds,
			rand.New(rand.NewSource(*seed+100)))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("optimized against %d instantiation(s):\n", r)
		fmt.Printf("  gap on the training partitionings: %8.2f\n", res.Gap)
		fmt.Printf("  gap on %2d fresh partitionings:     %8.2f (%.0f%% retained)\n\n",
			*testRounds, transfer, 100*transfer/res.Gap)
	}
}
