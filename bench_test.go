package metaopt

// One benchmark per table/figure of the paper's evaluation, plus the
// ablations called out in DESIGN.md and microbenchmarks of the substrates.
// The figure benches wrap internal/experiments with small per-search
// budgets so `go test -bench=.` finishes in minutes; cmd/figures runs the
// same experiments with paper-scale budgets (see EXPERIMENTS.md).

import (
	"io"
	"math/rand"
	"testing"
	"time"

	"repro/internal/blackbox"
	"repro/internal/core"
	"repro/internal/demand"
	"repro/internal/experiments"
	"repro/internal/mcf"
	"repro/internal/milp"
	"repro/internal/obs"
	"repro/internal/topology"
)

func benchCfg(budget time.Duration, pairs int) experiments.Config {
	return experiments.Config{Budget: budget, Pairs: pairs, Seed: 1}
}

// BenchmarkFigure1 prices the motivating example end to end (two LP solves).
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure1()
		if err != nil {
			b.Fatal(err)
		}
		if r.Gap != 100 {
			b.Fatalf("gap=%v", r.Gap)
		}
	}
}

// BenchmarkFigure2 solves the rectangle example's LP analog through the
// full KKT machinery.
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Figure2LinearAnalog(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3DP regenerates the DP gap-vs-time comparison on B4.
func BenchmarkFigure3DP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure3("dp", benchCfg(800*time.Millisecond, 10)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3POP regenerates the POP gap-vs-time comparison on B4.
func BenchmarkFigure3POP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure3("pop", benchCfg(800*time.Millisecond, 10)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4a sweeps the DP threshold on SWAN, B4 and Abilene.
func BenchmarkFigure4a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure4a(benchCfg(300*time.Millisecond, 8)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4b runs the synthetic-circle sweep.
func BenchmarkFigure4b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure4b(benchCfg(300*time.Millisecond, 8)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5a measures POP single-sample vs 5-sample transfer.
func BenchmarkFigure5a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure5a(benchCfg(500*time.Millisecond, 8)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5b sweeps POP partition and path counts.
func BenchmarkFigure5b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure5b(benchCfg(300*time.Millisecond, 8)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure6 measures problem sizes and solver latencies.
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure6(benchCfg(500*time.Millisecond, 8)); err != nil {
			b.Fatal(err)
		}
	}
}

// figure1Problem builds the standard small DP gap problem used by the
// ablation benches (provably optimal in well under a second).
func figure1Problem() *core.DPGapProblem {
	g := topology.Figure1()
	set := demand.NewSet([]demand.Pair{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 0, Dst: 2}})
	inst, err := mcf.NewInstance(g, set, 2)
	if err != nil {
		panic(err)
	}
	return &core.DPGapProblem{
		Inst: inst, Threshold: 50,
		Input: core.InputConstraints{MaxDemand: 100},
	}
}

func runAblation(b *testing.B, pr *core.DPGapProblem, opts milp.Options) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := pr.Solve(opts)
		if err != nil {
			b.Fatal(err)
		}
		if res.Solver.Status != milp.StatusOptimal || res.Gap < 99.99 {
			b.Fatalf("status=%v gap=%v", res.Solver.Status, res.Gap)
		}
	}
}

// BenchmarkAblationBaseline is the reference point for the ablations:
// phase-2 encoding, primal-only OPT, SOS branching, polish on.
func BenchmarkAblationBaseline(b *testing.B) {
	runAblation(b, figure1Problem(), milp.Options{})
}

// BenchmarkAblationOptKKT certifies the OPT side with a full KKT system
// instead of the sign-aligned primal-only encoding (DESIGN.md ablation 1).
func BenchmarkAblationOptKKT(b *testing.B) {
	pr := figure1Problem()
	pr.FullKKTOpt = true
	runAblation(b, pr, milp.Options{})
}

// BenchmarkAblationBigM replaces SOS1 branching with big-M indicator rows
// (DESIGN.md ablation 2).
func BenchmarkAblationBigM(b *testing.B) {
	pr := figure1Problem()
	pr.BigMComplementarity = 1000
	runAblation(b, pr, milp.Options{})
}

// BenchmarkAblationLiteral uses the paper-literal big-M pinning rows inside
// the heuristic's inner LP instead of the phase-2 decomposition.
func BenchmarkAblationLiteral(b *testing.B) {
	pr := figure1Problem()
	pr.LiteralEncoding = true
	runAblation(b, pr, milp.Options{})
}

// BenchmarkAblationNoPolish disables the direct-solver primal heuristic.
func BenchmarkAblationNoPolish(b *testing.B) {
	pr := figure1Problem()
	pr.DisablePolish = true
	runAblation(b, pr, milp.Options{})
}

// BenchmarkAblationQuantized quantizes demands to a 5-level grid
// (Section 5's speedup idea; DESIGN.md ablation 4).
func BenchmarkAblationQuantized(b *testing.B) {
	pr := figure1Problem()
	pr.Input.Levels = []float64{0, 25, 50, 75, 100}
	runAblation(b, pr, milp.Options{})
}

// BenchmarkAblationBestFirst switches node selection from depth-first to
// best-bound (DESIGN.md ablation 5).
func BenchmarkAblationBestFirst(b *testing.B) {
	runAblation(b, figure1Problem(), milp.Options{DepthFirst: false})
}

// BenchmarkAblationPOPTail prices the POP tail-percentile mode (sorting
// network) against the expectation mode on the same instance.
func BenchmarkAblationPOPTail(b *testing.B) {
	g := topology.Line(3)
	set := demand.NewSet([]demand.Pair{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 0, Dst: 2}})
	inst, err := mcf.NewInstance(g, set, 1)
	if err != nil {
		b.Fatal(err)
	}
	worst := 0.0
	for i := 0; i < b.N; i++ {
		pr := &core.POPGapProblem{
			Inst: inst, Partitions: 2, Instantiations: 3,
			Rng:            rand.New(rand.NewSource(5)),
			TailPercentile: &worst,
			Input:          core.InputConstraints{MaxDemand: 100},
		}
		if _, err := pr.Solve(milp.Options{TimeLimit: 700 * time.Millisecond, DepthFirst: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// parallelMetaProblem builds a DP gap search big enough for worker-level
// parallelism to pay off: B4 with 12 demand pairs yields 70+ SOS pairs, so
// each wave of node relaxations carries ~40ms of simplex work. Batch is
// pinned so Workers=1 and Workers=4 explore the identical tree (the speedup
// is pure wall-clock, not a different search), and MaxNodes bounds the run.
// The speedup needs real cores: with GOMAXPROCS=1 the two benches tie.
func parallelMetaProblem(b *testing.B) *core.DPGapProblem {
	b.Helper()
	g := topology.B4()
	set := demand.RandomPairs(g, 12, rand.New(rand.NewSource(7)))
	inst, err := mcf.NewInstance(g, set, 2)
	if err != nil {
		b.Fatal(err)
	}
	pr := &core.DPGapProblem{
		Inst: inst, Threshold: 5,
		Input: core.InputConstraints{MaxDemand: 100},
	}
	st, err := pr.Stats()
	if err != nil {
		b.Fatal(err)
	}
	if st.SOSPairs < 64 {
		b.Fatalf("meta problem too small for the parallel bench: %d SOS pairs, want >= 64", st.SOSPairs)
	}
	return pr
}

func runParallelBench(b *testing.B, workers int) {
	pr := parallelMetaProblem(b)
	opts := milp.Options{Workers: workers, Batch: 8, MaxNodes: 64}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := pr.Solve(opts)
		if err != nil {
			b.Fatal(err)
		}
		if res.Solver.Nodes == 0 {
			b.Fatal("search explored no nodes")
		}
	}
}

// BenchmarkParallelBnBWorkers1 is the serial reference for the wave-based
// parallel branch and bound: same pinned Batch (hence the same tree) as the
// 4-worker run below, one relaxation at a time.
func BenchmarkParallelBnBWorkers1(b *testing.B) { runParallelBench(b, 1) }

// BenchmarkParallelBnBWorkers4 runs the identical search with 4 workers
// solving each wave's relaxations concurrently. Compare ns/op against
// BenchmarkParallelBnBWorkers1 for the parallel speedup (>= 1.8x expected on
// 4 cores; see EXPERIMENTS.md).
func BenchmarkParallelBnBWorkers4(b *testing.B) { runParallelBench(b, 4) }

func runWarmStartBench(b *testing.B, warm bool) {
	pr := parallelMetaProblem(b)
	opts := milp.Options{Workers: 1, Batch: 8, MaxNodes: 64, WarmStart: warm}
	iters := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := pr.Solve(opts)
		if err != nil {
			b.Fatal(err)
		}
		if res.Solver.Nodes == 0 {
			b.Fatal("search explored no nodes")
		}
		if warm && res.Solver.WarmLPSolves == 0 {
			b.Fatal("warm-start bench took zero warm solves")
		}
		iters += res.Solver.LPIters
	}
	b.ReportMetric(float64(iters)/float64(b.N), "lp_iters/op")
}

// BenchmarkBnBWarmStartOff is the cold-resolve reference for the warm-start
// comparison: the parallel meta problem searched serially with every node
// relaxation solved from scratch by the two-phase simplex.
func BenchmarkBnBWarmStartOff(b *testing.B) { runWarmStartBench(b, false) }

// BenchmarkBnBWarmStartOn runs the identical search with each child node
// warm-started from its parent's optimal basis. The explored tree, incumbent
// and bound are bit-identical to the cold run (internal/milp's warm tests
// prove it); compare the lp_iters/op metric against BenchmarkBnBWarmStartOff
// for the pivot-count savings (>= 2x expected; see EXPERIMENTS.md).
func BenchmarkBnBWarmStartOn(b *testing.B) { runWarmStartBench(b, true) }

// --- substrate microbenchmarks ---

func b4Instance(b *testing.B) *mcf.Instance {
	b.Helper()
	g := topology.B4()
	set := demand.AllPairs(g)
	set.Uniform(rand.New(rand.NewSource(3)), 0, 30)
	inst, err := mcf.NewInstance(g, set, 2)
	if err != nil {
		b.Fatal(err)
	}
	return inst
}

// BenchmarkSimplexMaxFlowB4 solves the full 132-demand B4 max-flow LP.
func BenchmarkSimplexMaxFlowB4(b *testing.B) {
	inst := b4Instance(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mcf.SolveMaxFlow(inst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDemandPinningB4 runs the two-phase DP heuristic on full B4.
func BenchmarkDemandPinningB4(b *testing.B) {
	inst := b4Instance(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mcf.SolveDemandPinning(inst, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPOPB4 runs POP with 2 partitions on full B4 — the speedup over
// BenchmarkSimplexMaxFlowB4 is the heuristic's reason to exist.
func BenchmarkPOPB4(b *testing.B) {
	inst := b4Instance(b)
	rng := rand.New(rand.NewSource(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mcf.SolvePOP(inst, mcf.POPOptions{Partitions: 2, Rng: rng}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKShortestPathsB4 computes 4 paths for every B4 pair.
func BenchmarkKShortestPathsB4(b *testing.B) {
	g := topology.B4()
	for i := 0; i < b.N; i++ {
		for s := 0; s < g.NumNodes(); s++ {
			for t := 0; t < g.NumNodes(); t++ {
				if s != t {
					g.KShortestPaths(topology.Node(s), topology.Node(t), 4)
				}
			}
		}
	}
}

// BenchmarkBlackboxEvalDP measures one black-box gap evaluation (the unit
// of work Figure 3's baselines spend their budget on).
func BenchmarkBlackboxEvalDP(b *testing.B) {
	inst := b4Instance(b)
	gap := blackbox.DPGap(inst, 5)
	d := inst.Demands.CopyVolumes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gap(d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBnBTracerDisabled is the observability-overhead reference: the
// same search as BenchmarkAblationBaseline with no tracer attached, so every
// instrumentation site reduces to one nil check. Compare against
// BenchmarkBnBTracerFull to bound the cost of tracing; the two must stay
// within noise of each other and of the baseline (the disabled path does not
// allocate — internal/obs TestDisabledEmitDoesNotAllocate proves it).
func BenchmarkBnBTracerDisabled(b *testing.B) {
	runAblation(b, figure1Problem(), milp.Options{Tracer: nil})
}

// BenchmarkBnBTracerFull runs with the full sink stack a CLI would attach:
// JSONL encoding (to io.Discard) plus a metrics sink on a private registry.
func BenchmarkBnBTracerFull(b *testing.B) {
	tr := obs.NewTracer(obs.NewJSONLWriter(io.Discard), obs.NewMetricsSink(obs.NewRegistry()))
	runAblation(b, figure1Problem(), milp.Options{Tracer: tr})
}
