// Package metaopt finds provably adversarial inputs for network heuristics:
// inputs that maximize the gap between a heuristic and its optimal
// counterpart. It reproduces "Minding the gap between fast heuristics and
// their optimal counterparts" (HotNets 2022).
//
// The library poses both the optimal algorithm and the heuristic as linear
// programs, rewrites the resulting two-stage Stackelberg game into a
// single-shot optimization via the KKT conditions, and solves it with a
// built-in simplex + branch-and-bound stack (stdlib only — no external
// solver). Black-box baselines (hill climbing, simulated annealing) are
// included for comparison, as are the paper's two production heuristics:
// Demand Pinning and POP.
//
// # Quick start
//
//	g := metaopt.Figure1()
//	set := metaopt.NewDemandSet([]metaopt.Pair{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 0, Dst: 2}})
//	inst, _ := metaopt.NewInstance(g, set, 2)
//	res, _ := metaopt.FindDPGap(inst, 50, metaopt.InputConstraints{MaxDemand: 100}, metaopt.SearchOptions{})
//	fmt.Printf("worst-case gap: %.0f flow units\n", res.Gap) // 100
//
// See the examples directory for complete programs and DESIGN.md for the
// mapping from the paper's sections to packages.
package metaopt

import (
	"math/rand"
	"time"

	"repro/internal/blackbox"
	"repro/internal/core"
	"repro/internal/demand"
	"repro/internal/mcf"
	"repro/internal/milp"
	"repro/internal/topology"
)

// Re-exported model types. The heavy lifting lives in internal packages;
// these aliases form the supported public surface.
type (
	// Graph is a directed capacitated network.
	Graph = topology.Graph
	// Node indexes a graph node.
	Node = topology.Node
	// Edge is a directed capacitated link.
	Edge = topology.Edge
	// Path is a sequence of edge ids.
	Path = topology.Path
	// Pair is an ordered source/target demand pair.
	Pair = demand.Pair
	// DemandSet holds demand pairs and volumes.
	DemandSet = demand.Set
	// Instance is a TE problem: topology + demands + per-pair paths.
	Instance = mcf.Instance
	// Flow is a feasible flow assignment.
	Flow = mcf.Flow
	// POPOptions configures the POP heuristic.
	POPOptions = mcf.POPOptions
	// InputConstraints is the ConstrainedSet of inputs the adversary
	// searches within.
	InputConstraints = core.InputConstraints
	// Goalpost bounds demands near a reference vector.
	Goalpost = core.Goalpost
	// HoseConstraint bounds per-node aggregate demand (the hose model).
	HoseConstraint = core.HoseConstraint
	// GapResult reports a found adversarial input and its verified gap.
	GapResult = core.Result
	// ModelStats reports meta-optimization sizes (Figure 6's quantities).
	ModelStats = core.ModelStats
	// DPGapProblem is the full-control white-box search for Demand Pinning.
	DPGapProblem = core.DPGapProblem
	// POPGapProblem is the full-control white-box search for POP.
	POPGapProblem = core.POPGapProblem
	// POPSplitGapProblem searches against POP with Appendix-A client
	// splitting.
	POPSplitGapProblem = core.POPSplitGapProblem
	// CapacityGapProblem searches for adversarial topology (capacity)
	// changes instead of demands (Section 5).
	CapacityGapProblem = core.CapacityGapProblem
	// SearchOptions tunes the branch-and-bound meta solver.
	SearchOptions = milp.Options
	// SearchResult exposes solver diagnostics.
	SearchResult = milp.Result
	// BlackboxOptions tunes hill climbing.
	BlackboxOptions = blackbox.Options
	// AnnealOptions tunes simulated annealing.
	AnnealOptions = blackbox.SAOptions
	// BlackboxResult is a local-search outcome with its gap-vs-time trace.
	BlackboxResult = blackbox.Result
	// GapFunc evaluates OPT minus heuristic for a demand vector.
	GapFunc = blackbox.GapFunc
)

// ErrInfeasible is returned when a heuristic admits no feasible flow.
var ErrInfeasible = mcf.ErrInfeasible

// Built-in topologies.
var (
	// Figure1 is the paper's 3-node motivating example.
	Figure1 = topology.Figure1
	// B4 is Google's 12-site inter-datacenter WAN.
	B4 = topology.B4
	// Abilene is the 11-PoP Internet2 backbone.
	Abilene = topology.Abilene
	// SWAN is a SWAN-like 10-node WAN.
	SWAN = topology.SWAN
	// Circle builds the synthetic circulant family of Figure 4b.
	Circle = topology.Circle
	// TopologyByName resolves "b4", "abilene", "swan", "figure1",
	// "circle-N-M".
	TopologyByName = topology.ByName
)

// NewDemandSet builds a demand set over explicit pairs.
func NewDemandSet(pairs []Pair) *DemandSet { return demand.NewSet(pairs) }

// AllPairs builds the all-ordered-pairs demand set of a graph.
func AllPairs(g *Graph) *DemandSet { return demand.AllPairs(g) }

// ReachablePairs builds the demand set of all ordered pairs with a path —
// use instead of AllPairs on directed topologies like Figure1.
func ReachablePairs(g *Graph) *DemandSet { return demand.ReachablePairs(g) }

// RandomPairs samples k distinct ordered pairs — the demand-support
// restriction used to scale meta optimizations.
func RandomPairs(g *Graph, k int, rng *rand.Rand) *DemandSet {
	return demand.RandomPairs(g, k, rng)
}

// NewInstance computes numPaths shortest paths per demand pair.
func NewInstance(g *Graph, set *DemandSet, numPaths int) (*Instance, error) {
	return mcf.NewInstance(g, set, numPaths)
}

// SolveMaxFlow solves the optimal total-flow problem (OPT).
func SolveMaxFlow(inst *Instance) (*Flow, error) { return mcf.SolveMaxFlow(inst) }

// WarmStartReport summarizes a WarmStartSelfCheck run.
type WarmStartReport = mcf.WarmStartReport

// WarmStartSelfCheck solves the OPT inner LP cold (capturing its basis),
// re-solves a branch-style child of it both cold and warm, and reports the
// pivot counts and objective agreement — a quick on-instance sanity check of
// the lp warm-start path.
func WarmStartSelfCheck(inst *Instance) (*WarmStartReport, error) {
	return mcf.WarmStartSelfCheck(inst)
}

// SolveDemandPinning runs the DP heuristic with the given threshold.
func SolveDemandPinning(inst *Instance, threshold float64) (*Flow, error) {
	return mcf.SolveDemandPinning(inst, threshold)
}

// DemandPinningFeasible reports whether DP's pinning fits link capacities.
func DemandPinningFeasible(inst *Instance, threshold float64) bool {
	return mcf.DemandPinningFeasible(inst, threshold)
}

// SolvePOP runs the POP heuristic.
func SolvePOP(inst *Instance, opts POPOptions) (*Flow, error) { return mcf.SolvePOP(inst, opts) }

// SolveMaxConcurrent maximizes the common served fraction lambda (the
// fairness-flavored objective of the paper's Section 2).
func SolveMaxConcurrent(inst *Instance) (*Flow, float64, error) {
	return mcf.SolveMaxConcurrent(inst)
}

// SolveDemandPinningConcurrent runs DP under the concurrent objective.
func SolveDemandPinningConcurrent(inst *Instance, threshold float64) (*Flow, float64, error) {
	return mcf.SolveDemandPinningConcurrent(inst, threshold)
}

// ConcurrentDPGapFunc returns the black-box gap oracle lambda_OPT -
// lambda_DP for the concurrent objective.
func ConcurrentDPGapFunc(inst *Instance, threshold float64) GapFunc {
	return blackbox.ConcurrentDPGap(inst, threshold)
}

// FindDPGap searches for the demands maximizing OPT - DemandPinning.
func FindDPGap(inst *Instance, threshold float64, input InputConstraints, opts SearchOptions) (*GapResult, error) {
	pr := &core.DPGapProblem{Inst: inst, Threshold: threshold, Input: input}
	return pr.Solve(opts)
}

// FindPOPGap searches for the demands maximizing OPT - POP, targeting the
// expected POP value over instantiations fixed random partitionings.
func FindPOPGap(inst *Instance, partitions, instantiations int, rng *rand.Rand,
	input InputConstraints, opts SearchOptions) (*GapResult, error) {
	pr := &core.POPGapProblem{
		Inst: inst, Partitions: partitions, Instantiations: instantiations,
		Rng: rng, Input: input,
	}
	return pr.Solve(opts)
}

// POPTransferGap tests how an adversarial input generalizes to fresh random
// partitionings (Figure 5a's evaluation).
func POPTransferGap(inst *Instance, demands []float64, partitions, rounds int, rng *rand.Rand) (float64, error) {
	return core.POPTransferGap(inst, demands, partitions, rounds, rng)
}

// DPGapFunc returns the black-box gap oracle for Demand Pinning.
func DPGapFunc(inst *Instance, threshold float64) GapFunc { return blackbox.DPGap(inst, threshold) }

// POPGapFunc returns the black-box gap oracle for POP over fixed partition
// assignments.
func POPGapFunc(inst *Instance, assignments [][]int, partitions int) GapFunc {
	return blackbox.POPGap(inst, assignments, partitions)
}

// HillClimb runs Algorithm 1 (random-restart hill climbing).
func HillClimb(gap GapFunc, numDemands int, opts BlackboxOptions) (*BlackboxResult, error) {
	return blackbox.HillClimb(gap, numDemands, opts)
}

// SimulatedAnneal runs the annealed local search of Section 3.4.
func SimulatedAnneal(gap GapFunc, numDemands int, opts AnnealOptions) (*BlackboxResult, error) {
	return blackbox.SimulatedAnneal(gap, numDemands, opts)
}

// SafeThreshold finds the largest DP threshold whose worst-case gap stays
// at or below eps (the Section-5 "sufficient conditions" use case).
func SafeThreshold(pr *DPGapProblem, lo, hi, eps float64, iters int, perQuery time.Duration) (float64, error) {
	return core.SafeThreshold(pr, lo, hi, eps, iters, perQuery)
}
