package metaopt

import (
	"io"
	"testing"

	"repro/internal/milp"
	"repro/internal/obs"
)

// tracerOverheadBudget bounds how much the full observability stack (JSONL
// event stream + metrics sink, the same stack the CLIs attach) may slow a
// solve relative to a nil tracer. The budget is deliberately loose — 3x —
// because the reference solve is the tiny figure-1 problem, where per-event
// costs are at their least amortized; in the meta-problem benches the
// measured overhead is a few percent. The point of the test is to catch a
// qualitative regression (an accidental sync write, an allocation per
// event), not to police single-digit percentages.
const tracerOverheadBudget = 3.0

// TestTracerOverheadBudget pins the documented overhead multiplier between
// BenchmarkBnBTracerDisabled and BenchmarkBnBTracerFull. It reuses the same
// runAblation harness through testing.Benchmark, takes the best of several
// trials per variant to shave scheduler noise, and fails only when the full
// stack exceeds the budget.
func TestTracerOverheadBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock ratio test; skipped under -short")
	}

	best := func(bench func(b *testing.B)) float64 {
		min := 0.0
		for trial := 0; trial < 3; trial++ {
			r := testing.Benchmark(bench)
			ns := float64(r.NsPerOp())
			if min == 0 || ns < min {
				min = ns
			}
		}
		return min
	}

	base := best(func(b *testing.B) {
		runAblation(b, figure1Problem(), milp.Options{Tracer: nil})
	})
	full := best(func(b *testing.B) {
		tr := obs.NewTracer(obs.NewJSONLWriter(io.Discard), obs.NewMetricsSink(obs.NewRegistry()))
		runAblation(b, figure1Problem(), milp.Options{Tracer: tr})
	})
	if base <= 0 {
		t.Fatalf("degenerate baseline timing: %v ns/op", base)
	}
	ratio := full / base
	t.Logf("tracer overhead: nil=%.0f ns/op, full=%.0f ns/op, ratio=%.2fx (budget %.1fx)", base, full, ratio, tracerOverheadBudget)
	if ratio > tracerOverheadBudget {
		t.Fatalf("full tracer stack is %.2fx the nil-tracer solve, budget is %.1fx: tracing is no longer cheap enough to leave on", ratio, tracerOverheadBudget)
	}
}
