package metaopt

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"
)

// TestFacadeQuickstart runs the doc-comment quick start end to end.
func TestFacadeQuickstart(t *testing.T) {
	g := Figure1()
	set := NewDemandSet([]Pair{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 0, Dst: 2}})
	inst, err := NewInstance(g, set, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := FindDPGap(inst, 50, InputConstraints{MaxDemand: 100}, SearchOptions{MaxNodes: 200000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Gap-100) > 1e-4 {
		t.Fatalf("gap=%v, want 100", res.Gap)
	}
}

func TestFacadeDirectSolvers(t *testing.T) {
	g := Abilene()
	set := AllPairs(g)
	rng := rand.New(rand.NewSource(1))
	set.Uniform(rng, 0, 20)
	inst, err := NewInstance(g, set, 2)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := SolveMaxFlow(inst)
	if err != nil {
		t.Fatal(err)
	}
	if !DemandPinningFeasible(inst, 5) {
		t.Skip("random instance not DP-feasible at threshold 5")
	}
	dp, err := SolveDemandPinning(inst, 5)
	if err != nil {
		t.Fatal(err)
	}
	pop, err := SolvePOP(inst, POPOptions{Partitions: 2, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	if dp.Total > opt.Total+1e-5 || pop.Total > opt.Total+1e-5 {
		t.Fatalf("heuristics beat OPT: dp=%v pop=%v opt=%v", dp.Total, pop.Total, opt.Total)
	}
}

func TestFacadeBlackbox(t *testing.T) {
	g := Figure1()
	set := NewDemandSet([]Pair{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 0, Dst: 2}})
	inst, err := NewInstance(g, set, 2)
	if err != nil {
		t.Fatal(err)
	}
	hc, err := HillClimb(DPGapFunc(inst, 50), 3, BlackboxOptions{
		MaxDemand: 100, Sigma: 10, K: 60, Restarts: 3, Rng: rand.New(rand.NewSource(4)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if hc.Gap <= 0 {
		t.Fatalf("hill climb gap %v", hc.Gap)
	}
	sa, err := SimulatedAnneal(DPGapFunc(inst, 50), 3, AnnealOptions{
		Options: BlackboxOptions{MaxDemand: 100, Sigma: 10, K: 60, Restarts: 3,
			Rng: rand.New(rand.NewSource(5))},
		T0: 500, Gamma: 0.1, KP: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sa.Gap <= 0 {
		t.Fatalf("simulated annealing gap %v", sa.Gap)
	}
}

func TestFacadeTopologyByName(t *testing.T) {
	g, err := TopologyByName("circle-8-1")
	if err != nil || g.NumNodes() != 8 {
		t.Fatalf("ByName: %v", err)
	}
}

func TestFacadePOPGapAndTransfer(t *testing.T) {
	g, err := TopologyByName("figure1")
	if err != nil {
		t.Fatal(err)
	}
	set := NewDemandSet([]Pair{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 0, Dst: 2}})
	inst, err := NewInstance(g, set, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := FindPOPGap(inst, 2, 2, rand.New(rand.NewSource(9)),
		InputConstraints{MaxDemand: 100}, SearchOptions{MaxNodes: 100000, DepthFirst: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Demands == nil {
		t.Fatalf("no incumbent: %+v", res.Solver.Status)
	}
	transfer, err := POPTransferGap(inst, res.Demands, 2, 4, rand.New(rand.NewSource(10)))
	if err != nil {
		t.Fatal(err)
	}
	if transfer < -1e-6 {
		t.Fatalf("negative transfer gap %v", transfer)
	}
}

func TestFacadeCapacityGap(t *testing.T) {
	g := Figure1()
	set := NewDemandSet([]Pair{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 0, Dst: 2}})
	set.SetVolumes([]float64{100, 100, 50})
	inst, err := NewInstance(g, set, 2)
	if err != nil {
		t.Fatal(err)
	}
	pr := &CapacityGapProblem{
		Inst: inst, Threshold: 50,
		CapLo: []float64{50, 50, 50}, CapHi: []float64{150, 150, 150},
	}
	res, err := pr.Solve(SearchOptions{MaxNodes: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Demands == nil || res.Gap < 0 {
		t.Fatalf("capacity gap: %+v", res)
	}
}

func TestFacadePOPSplitGap(t *testing.T) {
	g, _ := TopologyByName("figure1")
	set := NewDemandSet([]Pair{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 0, Dst: 2}})
	inst, err := NewInstance(g, set, 2)
	if err != nil {
		t.Fatal(err)
	}
	pr := &POPSplitGapProblem{
		Inst: inst, Partitions: 2, Instantiations: 1,
		Rng: rand.New(rand.NewSource(3)), SplitThreshold: 50, MaxSplits: 1,
		Input: InputConstraints{MaxDemand: 100},
	}
	res, err := pr.Solve(SearchOptions{MaxNodes: 40000, DepthFirst: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Demands == nil {
		t.Fatalf("no result: %v", res.Solver.Status)
	}
}

// TestEndToEndOnRandomWANs drives the full pipeline — topology generation,
// instance construction, direct solvers, white-box gap search with
// verification — across seeded random Waxman WANs, as a downstream user
// would. Every result must be verified-consistent and within bounds.
func TestEndToEndOnRandomWANs(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		g, err := TopologyByName(fmt.Sprintf("waxman-%d-%d", 8+2*seed, seed))
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		set := RandomPairs(g, 8, rng)
		inst, err := NewInstance(g, set, 2)
		if err != nil {
			t.Fatal(err)
		}
		res, err := FindDPGap(inst, 10, InputConstraints{MaxDemand: 100},
			SearchOptions{TimeLimit: 2 * time.Second, DepthFirst: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Demands == nil {
			t.Fatalf("seed %d: no input found (%v)", seed, res.Solver.Status)
		}
		if res.Gap < 0 {
			t.Fatalf("seed %d: negative verified gap %v", seed, res.Gap)
		}
		// The verified gap must be reproducible with the direct solvers.
		at := inst.WithVolumes(res.Demands)
		opt, err := SolveMaxFlow(at)
		if err != nil {
			t.Fatal(err)
		}
		dp, err := SolveDemandPinning(at, 10)
		if err != nil {
			t.Fatal(err)
		}
		if got := opt.Total - dp.Total; math.Abs(got-res.Gap) > 1e-4 {
			t.Fatalf("seed %d: reported gap %v, recomputed %v", seed, res.Gap, got)
		}
		// And the solver's bound must dominate it.
		if res.Solver.Bound < res.Gap-1e-4 {
			t.Fatalf("seed %d: bound %v below verified gap %v", seed, res.Solver.Bound, res.Gap)
		}
	}
}
