# Mirrors the CI jobs so a local `make lint test` reproduces exactly what
# the required checks run.

GO ?= go

.PHONY: all build fmt test lint gapvet vuln bench bench-check

all: build lint test

build:
	$(GO) build ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

test:
	$(GO) test -race -shuffle=on ./...

# lint is the CI lint job: stock vet, the gapvet contract suite with the
# stale-allow audit, and (when the network allows fetching it) govulncheck.
# Any finding — including a //gapvet:allow that no longer silences
# anything — is fatal.
lint: fmt
	$(GO) vet ./...
	$(GO) run ./cmd/gapvet . ./internal/... ./cmd/... ./examples/...
	$(GO) run ./cmd/gapvet -stale-allows ./...
	-$(GO) run golang.org/x/vuln/cmd/govulncheck@latest ./...

gapvet:
	$(GO) run ./cmd/gapvet . ./internal/... ./cmd/... ./examples/...
	$(GO) run ./cmd/gapvet -stale-allows ./...

vuln:
	$(GO) run golang.org/x/vuln/cmd/govulncheck@latest ./...

# BASELINE resolves to the newest committed benchmark ledger; bench-check
# gates the working tree against it. Dates sort lexicographically, so the
# plain sort picks the latest.
BASELINE = $(shell ls BENCH_*.json 2>/dev/null | sort | tail -n 1)

# bench runs the full canonical fixture suite and writes BENCH_<today>.json
# in the repo root. Commit the file to bless it as the new baseline (see
# EXPERIMENTS.md "The benchmark ledger").
bench:
	$(GO) run ./cmd/gapbench

# bench-check re-runs the suite and gates against the latest committed
# baseline: deterministic counters (nodes, pivots, lp_iters, histogram
# counts) must not regress at all; wall-clock metrics get a ±25% band with
# an absolute floor. The candidate ledger lands in /tmp so it cannot
# clobber the baseline.
bench-check:
	@test -n "$(BASELINE)" || { echo "no BENCH_*.json baseline committed; run 'make bench' and commit the result" >&2; exit 1; }
	$(GO) run ./cmd/gapbench -out /tmp/bench-candidate.json -against $(BASELINE)
