# Mirrors the CI jobs so a local `make lint test` reproduces exactly what
# the required checks run.

GO ?= go

.PHONY: all build fmt test lint gapvet vuln

all: build lint test

build:
	$(GO) build ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

test:
	$(GO) test -race -shuffle=on ./...

# lint is the CI lint job: stock vet, the gapvet contract suite, and (when
# the network allows fetching it) govulncheck. Any finding is fatal.
lint: fmt
	$(GO) vet ./...
	$(GO) run ./cmd/gapvet ./...
	-$(GO) run golang.org/x/vuln/cmd/govulncheck@latest ./...

gapvet:
	$(GO) run ./cmd/gapvet ./...

vuln:
	$(GO) run golang.org/x/vuln/cmd/govulncheck@latest ./...
