// gapfinder searches for adversarial demands that maximize the gap between
// the optimal flow allocation and a heuristic (Demand Pinning or POP), using
// either the white-box single-shot optimization or a black-box local search.
//
// Usage:
//
//	gapfinder -topo b4 -heuristic dp -threshold 5 -pairs 12 -budget 10s
//	gapfinder -topo swan -heuristic pop -partitions 3 -method anneal
//	gapfinder -heuristic dp -target 80        # stop at the first input with gap >= 80
//	gapfinder -heuristic dp -checkpoint s.ckpt          # crash-safe search
//	gapfinder -heuristic dp -checkpoint s.ckpt -resume s.ckpt   # continue it
//
// SIGINT/SIGTERM interrupt the search cooperatively: the best-so-far result
// and its SUMMARY line are still printed, and the process exits with code 3
// (a second signal kills immediately). With -checkpoint set, a killed run
// can be resumed with -resume from the same flags; the resumed search
// explores the exact tree the uninterrupted run would have.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	metaopt "repro"
	"repro/internal/blackbox"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/lp"
	"repro/internal/mcf"
	"repro/internal/milp"
	"repro/internal/obs"
)

// exitInterrupted is the distinct exit code for searches stopped by a
// signal or a cancelled context; the SUMMARY line is printed first.
const exitInterrupted = 3

// robustness bundles the crash-safety knobs threaded into every search.
type robustness struct {
	ctx        context.Context
	checkpoint string
	every      int
	faults     *faultinject.Plan
	snap       *checkpoint.Snapshot
}

func main() { os.Exit(run()) }

func run() int {
	var topoFlag string
	flag.StringVar(&topoFlag, "topo", "b4", "topology: b4, abilene, swan, figure1, circle-N-M")
	flag.StringVar(&topoFlag, "topology", "b4", "alias for -topo")
	topoName := &topoFlag
	heuristic := flag.String("heuristic", "dp", "heuristic: dp or pop")
	method := flag.String("method", "whitebox", "search method: whitebox, hillclimb, anneal")
	pairs := flag.Int("pairs", 12, "demand pairs in the search support (-1 = all pairs)")
	paths := flag.Int("paths", 2, "paths per pair")
	threshold := flag.Float64("threshold", 5, "DP threshold (links have capacity 100)")
	partitions := flag.Int("partitions", 2, "POP partitions")
	instantiations := flag.Int("instantiations", 3, "POP random instantiations averaged over")
	maxDemand := flag.Float64("maxdemand", 100, "upper bound on each demand")
	budget := flag.Duration("budget", 10*time.Second, "search budget")
	workers := flag.Int("workers", runtime.NumCPU(), "parallel workers: node relaxations (whitebox) or restarts (blackbox); 1 = sequential")
	warmStart := flag.Bool("warmstart", false, "warm-start node LP relaxations from the parent basis (whitebox only; identical results, fewer pivots)")
	seed := flag.Int64("seed", 1, "random seed")
	target := flag.Float64("target", 0, "stop at the first input with gap >= target (whitebox only; 0 = off)")
	diverse := flag.Int("diverse", 1, "number of diverse inputs to find (whitebox only)")
	safeEps := flag.Float64("safe-eps", 0, "instead of searching for a gap, find the largest DP threshold whose worst-case gap stays <= safe-eps (dp only; 0 = off)")
	report := flag.String("report", "", "also write a markdown report of the findings to this file (whitebox only)")
	quiet := flag.Bool("q", false, "suppress progress output")
	tracePath := flag.String("trace", "", "write a JSONL event trace to this file")
	metricsDump := flag.Bool("metrics", false, "print a Prometheus-style metrics dump on exit")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof, expvar and /metrics on this address (e.g. localhost:6060)")
	ckptPath := flag.String("checkpoint", "", "write a crash-safe checkpoint to this file (atomic replace: whitebox wave state or blackbox restart ledger)")
	ckptEvery := flag.Int("checkpoint-every", 0, "checkpoint every N completed waves (whitebox) or restarts (blackbox); 0 = every one")
	resumePath := flag.String("resume", "", "resume from this checkpoint file; rerun with the same model flags as the checkpointed run")
	faultSpec := flag.String("faults", "", "deterministic fault-injection plan, e.g. lp-solve:3,ckpt-write:1,deadline:2 (crash-safety testing)")
	restarts := flag.Int("restarts", 0, "blackbox restart cap (0 = restart until -budget expires; -checkpoint needs > 0)")
	engineFlag := flag.String("engine", "auto", "LP simplex engine: dense, sparse, or auto (identical answers; sparse trades O(rows*cols) pivots for factorized ones)")
	flag.Parse()
	engine, err := lp.ParseEngine(*engineFlag)
	if err != nil {
		log.Fatal(err)
	}
	// Every LP in the process — node relaxations, direct heuristic pricing,
	// KKT relaxations — goes through the selected engine.
	lp.SetDefaultEngine(engine)
	reportPath = *report

	tracer, finishObs, err := obs.SetupCLI(*tracePath, *metricsDump, *pprofAddr, os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	defer finishObs()

	// First signal cancels the search cooperatively; restoring the default
	// disposition right after lets a second signal kill the process hard.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	go func() {
		<-ctx.Done()
		stopSignals()
	}()

	rb := robustness{ctx: ctx, checkpoint: *ckptPath, every: *ckptEvery}
	if *faultSpec != "" {
		rb.faults, err = faultinject.Parse(*faultSpec, *seed)
		if err != nil {
			log.Fatal(err)
		}
	}
	if *resumePath != "" {
		rb.snap, err = checkpoint.Load(*resumePath)
		if err != nil {
			log.Fatal(err)
		}
	}

	g, err := metaopt.TopologyByName(*topoName)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(*seed))
	var set *metaopt.DemandSet
	if *pairs < 0 {
		set = metaopt.ReachablePairs(g)
	} else {
		set = metaopt.RandomPairs(g, *pairs, rng)
	}
	inst, err := metaopt.NewInstance(g, set, *paths)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d nodes, %d links, %d demands, %d paths/pair; heuristic=%s method=%s\n",
		g.Name(), g.NumNodes(), g.NumEdges(), set.Len(), *paths, *heuristic, *method)

	if *safeEps > 0 {
		if *heuristic != "dp" {
			log.Fatal("-safe-eps only applies to the dp heuristic")
		}
		pr := &core.DPGapProblem{Inst: inst, Input: metaopt.InputConstraints{MaxDemand: *maxDemand}}
		safe, err := core.SafeThreshold(pr, 0, *maxDemand, *safeEps, 12, *budget/6)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("largest threshold with worst-case gap <= %.2f: %.3f\n", *safeEps, safe)
		return 0
	}

	interrupted := false
	switch *method {
	case "whitebox":
		interrupted = runWhitebox(inst, set, *heuristic, *threshold, *partitions, *instantiations,
			*maxDemand, *budget, *seed, *target, *diverse, *quiet, *workers, *warmStart, engine, tracer, rb)
	case "hillclimb", "anneal":
		interrupted = runBlackbox(inst, set, *heuristic, *method, *threshold, *partitions, *instantiations,
			*maxDemand, *budget, *seed, *workers, *restarts, tracer, rb)
	default:
		log.Fatalf("unknown method %q", *method)
	}
	if interrupted {
		if *ckptPath != "" {
			fmt.Printf("interrupted: best-so-far result above; continue with -resume %s\n", *ckptPath)
		} else {
			fmt.Println("interrupted: best-so-far result above (run with -checkpoint to make searches resumable)")
		}
		return exitInterrupted
	}
	return 0
}

func runWhitebox(inst *metaopt.Instance, set *metaopt.DemandSet, heuristic string,
	threshold float64, partitions, instantiations int, maxDemand float64,
	budget time.Duration, seed int64, target float64, diverse int, quiet bool,
	workers int, warmStart bool, engine lp.Engine, tracer *obs.Tracer, rb robustness) bool {

	input := metaopt.InputConstraints{MaxDemand: maxDemand}
	opts := milp.Options{
		TimeLimit:       budget,
		DepthFirst:      true,
		StallWindow:     budget / 3,
		StallImprove:    0.005,
		Tracer:          tracer,
		Workers:         workers,
		WarmStart:       warmStart,
		Engine:          engine,
		Ctx:             rb.ctx,
		Checkpoint:      rb.checkpoint,
		CheckpointEvery: rb.every,
		Faults:          rb.faults,
	}
	if target > 0 {
		opts.Target = &target
	}
	if !quiet {
		opts.Log = func(format string, args ...any) {
			fmt.Printf("  "+format+"\n", args...)
		}
	}
	var resume *checkpoint.BnBState
	if rb.snap != nil {
		if rb.snap.BnB == nil {
			log.Fatal("gapfinder: checkpoint does not hold a white-box snapshot (was it written by a blackbox method?)")
		}
		resume = rb.snap.BnB
	}
	for i := 0; i < diverse; i++ {
		var res *metaopt.GapResult
		var err error
		switch heuristic {
		case "dp":
			pr := &core.DPGapProblem{Inst: inst, Threshold: threshold, Input: input}
			if i == 0 && resume != nil {
				res, err = pr.Resume(resume, opts)
			} else {
				res, err = pr.Solve(opts)
			}
		case "pop":
			pr := &core.POPGapProblem{
				Inst: inst, Partitions: partitions, Instantiations: instantiations,
				Rng: rand.New(rand.NewSource(seed + 7)), Input: input,
			}
			if i == 0 && resume != nil {
				res, err = pr.Resume(resume, opts)
			} else {
				res, err = pr.Solve(opts)
			}
		default:
			log.Fatalf("unknown heuristic %q", heuristic)
		}
		if err != nil {
			log.Fatal(err)
		}
		interrupted := res.Solver.Status == milp.StatusInterrupted
		if res.Demands == nil {
			fmt.Printf("no adversarial input found (%v)\n", res.Solver.Status)
			printSummary(res)
			return interrupted
		}
		fmt.Printf("result #%d: gap=%.2f (normalized %.4f)  OPT=%.2f  heuristic=%.2f\n",
			i+1, res.Gap, res.NormalizedGap, res.OptValue, res.HeurValue)
		fmt.Printf("  solver: %v, bound %.2f, %d nodes, %d LPs, %v\n",
			res.Solver.Status, res.Solver.Bound, res.Solver.Nodes, res.Solver.LPSolves,
			res.Solver.Elapsed.Round(time.Millisecond))
		printSummary(res)
		fmt.Printf("  model:  %d vars, %d rows, %d SOS pairs, %d binaries\n",
			res.Stats.Vars, res.Stats.LinearCons, res.Stats.SOSPairs, res.Stats.Binaries)
		printDemands(set, res.Demands, threshold, heuristic)
		writeReport(inst.G, set, heuristic, threshold, res, i+1)
		if interrupted {
			return true
		}
		if i+1 < diverse {
			input.Exclusions = append(input.Exclusions, res.Demands)
			input.ExclusionRadius = maxDemand / 10
		}
	}
	return false
}

// printSummary emits the one-line machine-greppable whitebox solve summary.
// New fields are only ever appended at the end so downstream greps keep
// working; CI's warm-start smoke test parses this line.
func printSummary(res *metaopt.GapResult) {
	fmt.Printf("SUMMARY status=%s gap=%.4f bound=%.4f nodes=%d lp_solves=%d lp_iters=%d wall=%.3fs warm_solves=%d warm_fallbacks=%d\n",
		res.Solver.Status, res.Gap, res.Solver.Bound, res.Solver.Nodes,
		res.Solver.LPSolves, res.Solver.LPIters, res.Solver.Elapsed.Seconds(),
		res.Solver.WarmLPSolves, res.Solver.WarmLPFallbacks)
}

func runBlackbox(inst *metaopt.Instance, set *metaopt.DemandSet, heuristic, method string,
	threshold float64, partitions, instantiations int, maxDemand float64,
	budget time.Duration, seed int64, workers, restarts int, tracer *obs.Tracer, rb robustness) bool {

	var gapFn blackbox.GapFunc
	switch heuristic {
	case "dp":
		gapFn = blackbox.DPGap(inst, threshold)
	case "pop":
		rng := rand.New(rand.NewSource(seed + 7))
		assignments := make([][]int, instantiations)
		for i := range assignments {
			assignments[i] = mcf.RandomAssignment(set.Len(), partitions, rng)
		}
		gapFn = blackbox.POPGap(inst, assignments, partitions)
	default:
		log.Fatalf("unknown heuristic %q", heuristic)
	}
	if rb.checkpoint != "" && restarts <= 0 {
		log.Fatal("gapfinder: -checkpoint with a blackbox method needs -restarts > 0 (the ledger replays a fixed seed sequence)")
	}
	base := blackbox.Options{
		MaxDemand: maxDemand, Sigma: maxDemand / 10, K: 100,
		Budget: budget, Restarts: restarts, Rng: rand.New(rand.NewSource(seed)),
		Tracer: tracer, Workers: workers,
		Ctx: rb.ctx, Checkpoint: rb.checkpoint, CheckpointEvery: rb.every,
		CheckpointFS: faultinject.WrapFS(nil, rb.faults),
	}
	var res *blackbox.Result
	var err error
	saOpts := blackbox.SAOptions{Options: base, T0: 500, Gamma: 0.1, KP: 100}
	switch {
	case rb.snap != nil:
		if rb.snap.Blackbox == nil {
			log.Fatal("gapfinder: checkpoint does not hold a blackbox snapshot (was it written by the whitebox method?)")
		}
		if method == "hillclimb" {
			res, err = blackbox.ResumeHillClimb(gapFn, set.Len(), base, rb.snap.Blackbox)
		} else {
			res, err = blackbox.ResumeSimulatedAnneal(gapFn, set.Len(), saOpts, rb.snap.Blackbox)
		}
	case method == "hillclimb":
		res, err = blackbox.HillClimb(gapFn, set.Len(), base)
	default:
		res, err = blackbox.SimulatedAnneal(gapFn, set.Len(), saOpts)
	}
	if err != nil {
		log.Fatal(err)
	}
	status := "ok"
	if res.Interrupted {
		status = "interrupted"
	}
	fmt.Printf("result: gap=%.2f after %d evaluations in %v\n",
		res.Gap, res.Evals, res.Elapsed.Round(time.Millisecond))
	fmt.Printf("SUMMARY method=%s gap=%.4f evals=%d wall=%.3fs status=%s\n",
		method, res.Gap, res.Evals, res.Elapsed.Seconds(), status)
	if res.Demands != nil {
		printDemands(set, res.Demands, threshold, heuristic)
	}
	return res.Interrupted
}

// reportPath, when set, receives a markdown report of every white-box
// finding — the artifact an operator would attach to a heuristic review.
var reportPath string

// writeReport appends one finding to the report file (creating it with a
// header on first use).
func writeReport(g *metaopt.Graph, set *metaopt.DemandSet, heuristic string,
	threshold float64, res *metaopt.GapResult, index int) {
	if reportPath == "" {
		return
	}
	var b strings.Builder
	if index == 1 {
		fmt.Fprintf(&b, "# Adversarial input report — %s vs OPT on %s\n\n", heuristic, g.Name())
		fmt.Fprintf(&b, "Topology: %d nodes, %d directed links, total capacity %.0f.\n",
			g.NumNodes(), g.NumEdges(), g.TotalCapacity())
		fmt.Fprintf(&b, "Demand support: %d pairs. Generated by cmd/gapfinder.\n\n", set.Len())
	}
	fmt.Fprintf(&b, "## Finding %d\n\n", index)
	fmt.Fprintf(&b, "- verified gap: **%.2f** flow units (%.4f normalized by total capacity)\n",
		res.Gap, res.NormalizedGap)
	fmt.Fprintf(&b, "- OPT carries %.2f; the heuristic carries %.2f\n", res.OptValue, res.HeurValue)
	fmt.Fprintf(&b, "- solver: %v, bound %.2f, %d nodes, %v\n", res.Solver.Status,
		res.Solver.Bound, res.Solver.Nodes, res.Solver.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "- meta model: %d vars, %d rows, %d SOS pairs, %d binaries\n\n",
		res.Stats.Vars, res.Stats.LinearCons, res.Stats.SOSPairs, res.Stats.Binaries)
	fmt.Fprintf(&b, "| demand | volume | note |\n|---|---|---|\n")
	for k := 0; k < set.Len(); k++ {
		if res.Demands[k] < 0.01 {
			continue
		}
		note := ""
		if heuristic == "dp" && res.Demands[k] <= threshold {
			note = "pinned by DP"
		}
		fmt.Fprintf(&b, "| %v | %.2f | %s |\n", set.Pair(k), res.Demands[k], note)
	}
	b.WriteString("\n")
	f, err := os.OpenFile(reportPath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		log.Printf("report: %v", err)
		return
	}
	defer f.Close()
	if _, err := f.WriteString(b.String()); err != nil {
		log.Printf("report: %v", err)
	}
}

func printDemands(set *metaopt.DemandSet, demands []float64, threshold float64, heuristic string) {
	fmt.Println("  adversarial demands:")
	for k := 0; k < set.Len(); k++ {
		if demands[k] < 0.01 {
			continue
		}
		mark := ""
		if heuristic == "dp" && demands[k] <= threshold {
			mark = "  <- pinned"
		}
		fmt.Printf("    %-8v %8.2f%s\n", set.Pair(k), demands[k], mark)
	}
}
