// tesolve solves one traffic-engineering instance with OPT, Demand Pinning
// and POP side by side, printing totals, per-heuristic gaps, and link
// utilizations. Demands are generated synthetically (uniform or gravity).
//
// Usage:
//
//	tesolve -topo abilene -model gravity -peak 40
//	tesolve -topo b4 -model uniform -hi 30 -threshold 10 -partitions 3
//
// A SUMMARY line (machine-greppable, fields append-only) closes every run.
// SIGINT/SIGTERM are caught: the solves that already finished are reported,
// the SUMMARY line carries status=interrupted, and the exit code is 3 (a
// second signal kills immediately).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"syscall"

	metaopt "repro"
	"repro/internal/lp"
	"repro/internal/obs"
)

// exitInterrupted is the distinct exit code for runs stopped by a signal.
const exitInterrupted = 3

func main() { os.Exit(run()) }

func run() int {
	var topoFlag string
	flag.StringVar(&topoFlag, "topo", "abilene", "topology: b4, abilene, swan, figure1, circle-N-M")
	flag.StringVar(&topoFlag, "topology", "abilene", "alias for -topo")
	topoName := &topoFlag
	model := flag.String("model", "gravity", "demand model: gravity or uniform")
	peak := flag.Float64("peak", 40, "gravity peak demand")
	lo := flag.Float64("lo", 0, "uniform low")
	hi := flag.Float64("hi", 40, "uniform high")
	paths := flag.Int("paths", 2, "paths per pair")
	threshold := flag.Float64("threshold", 5, "DP threshold")
	partitions := flag.Int("partitions", 2, "POP partitions")
	clientSplit := flag.Bool("clientsplit", false, "enable POP client splitting (Appendix A)")
	splitThreshold := flag.Float64("splitthreshold", 20, "client-split threshold")
	maxSplits := flag.Int("maxsplits", 2, "max per-client splits")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", runtime.NumCPU(), "run the OPT/DP/POP solves concurrently when > 1")
	warmCheck := flag.Bool("warmstart", false, "run the LP warm-start self-check on the OPT inner LP and print a WARMSTART line")
	verbose := flag.Bool("v", false, "print per-link loads")
	tracePath := flag.String("trace", "", "write a JSONL event trace to this file")
	metricsDump := flag.Bool("metrics", false, "print a Prometheus-style metrics dump on exit")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof, expvar and /metrics on this address (e.g. localhost:6060)")
	engineFlag := flag.String("engine", "auto", "LP simplex engine: dense, sparse, or auto (identical answers)")
	flag.Parse()
	if engine, err := lp.ParseEngine(*engineFlag); err != nil {
		log.Fatal(err)
	} else {
		lp.SetDefaultEngine(engine)
	}

	tracer, finishObs, err := obs.SetupCLI(*tracePath, *metricsDump, *pprofAddr, os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	defer finishObs()

	// First signal asks for a graceful stop (partial results + SUMMARY);
	// restoring the default disposition lets a second one kill hard.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	go func() {
		<-ctx.Done()
		stopSignals()
	}()

	g, err := metaopt.TopologyByName(*topoName)
	if err != nil {
		log.Fatal(err)
	}
	set := metaopt.AllPairs(g)
	rng := rand.New(rand.NewSource(*seed))
	switch *model {
	case "gravity":
		set.Gravity(rng, g, *peak)
	case "uniform":
		set.Uniform(rng, *lo, *hi)
	default:
		log.Fatalf("unknown demand model %q", *model)
	}
	inst, err := metaopt.NewInstance(g, set, *paths)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d nodes, %d links; %d demands totaling %.1f\n\n",
		g.Name(), g.NumNodes(), g.NumEdges(), set.Len(), set.Total())

	// The three solves are independent (POP owns the only live rand.Rand and
	// mcf solves never mutate the instance), so -workers > 1 runs them
	// concurrently and the results are printed afterwards in the usual order.
	var (
		opt, dp, pop  *metaopt.Flow
		dpFeasible    bool
		optErr, dpErr error
		popErr        error
	)
	popOpts := metaopt.POPOptions{
		Partitions: *partitions, Rng: rng,
		ClientSplit: *clientSplit, SplitThreshold: *splitThreshold, MaxSplits: *maxSplits,
	}
	solveOpt := func() {
		_, optErr = obs.TimePhase(tracer, "opt", func() error {
			var serr error
			opt, serr = metaopt.SolveMaxFlow(inst)
			return serr
		})
	}
	solveDP := func() {
		if dpFeasible = metaopt.DemandPinningFeasible(inst, *threshold); !dpFeasible {
			return
		}
		_, dpErr = obs.TimePhase(tracer, "dp", func() error {
			var serr error
			dp, serr = metaopt.SolveDemandPinning(inst, *threshold)
			return serr
		})
	}
	solvePOP := func() {
		_, popErr = obs.TimePhase(tracer, "pop", func() error {
			var serr error
			pop, serr = metaopt.SolvePOP(inst, popOpts)
			return serr
		})
	}
	if *workers > 1 {
		var wg sync.WaitGroup
		wg.Add(3)
		go func() { defer wg.Done(); solveOpt() }()
		go func() { defer wg.Done(); solveDP() }()
		go func() { defer wg.Done(); solvePOP() }()
		wg.Wait()
	} else {
		solveOpt()
		solveDP()
		solvePOP()
	}
	for _, err := range []error{optErr, dpErr, popErr} {
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("%-22s total=%9.2f  (%.1f%% of demand)\n", "OPT (max total flow)",
		opt.Total, 100*opt.Total/set.Total())

	if dpFeasible {
		fmt.Printf("%-22s total=%9.2f  gap=%8.2f (%.2f%% of OPT)\n",
			fmt.Sprintf("DP (threshold %.1f)", *threshold),
			dp.Total, opt.Total-dp.Total, 100*(opt.Total-dp.Total)/opt.Total)
	} else {
		fmt.Printf("%-22s INFEASIBLE: pinned demands oversubscribe a link (Section 5)\n",
			fmt.Sprintf("DP (threshold %.1f)", *threshold))
	}
	label := fmt.Sprintf("POP (%d partitions)", *partitions)
	if *clientSplit {
		label = fmt.Sprintf("POP+split (%d parts)", *partitions)
	}
	fmt.Printf("%-22s total=%9.2f  gap=%8.2f (%.2f%% of OPT)\n",
		label, pop.Total, opt.Total-pop.Total, 100*(opt.Total-pop.Total)/opt.Total)

	// One machine-greppable line per run; new fields are only ever appended.
	// An infeasible DP prints NaN totals so the field count stays fixed.
	dpTotal, dpGap := math.NaN(), math.NaN()
	if dpFeasible {
		dpTotal, dpGap = dp.Total, opt.Total-dp.Total
	}
	status := "ok"
	if ctx.Err() != nil {
		status = "interrupted"
	}
	fmt.Printf("SUMMARY opt=%.4f dp=%.4f dp_gap=%.4f pop=%.4f pop_gap=%.4f status=%s\n",
		opt.Total, dpTotal, dpGap, pop.Total, opt.Total-pop.Total, status)

	if *warmCheck {
		rep, err := metaopt.WarmStartSelfCheck(inst)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("WARMSTART opt: cold_iters=%d warm_iters=%d obj_delta=%.2e warm_used=%t\n",
			rep.ColdIters, rep.WarmIters, rep.ObjDelta, rep.WarmUsed)
	}

	if *verbose {
		fmt.Println("\nper-link load (OPT):")
		loads := opt.EdgeLoads(inst)
		for e := 0; e < g.NumEdges(); e++ {
			edge := g.Edge(e)
			fmt.Printf("  %2d->%-2d %8.2f / %.0f\n", edge.From, edge.To, loads[e], edge.Capacity)
		}
	}
	if ctx.Err() != nil {
		return exitInterrupted
	}
	return 0
}
