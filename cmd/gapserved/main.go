// Command gapserved is the crash-safe gap-search daemon: an HTTP front end
// over internal/serve that accepts gap-search jobs, runs them on a bounded
// worker pool, streams solver progress, and answers repeat submissions from
// a fingerprint-keyed results store.
//
// Durability: every queue mutation is persisted to <state>/queue.ckpt and
// in-flight jobs checkpoint their branch-and-bound frontier on a configurable
// wave cadence, so a SIGKILL mid-search loses at most one cadence of work —
// a restarted daemon re-admits the queue and resumes each job from its last
// checkpoint to the bit-identical answer. SIGTERM/SIGINT drain gracefully:
// in-flight jobs checkpoint and re-queue, then the process exits 0.
//
// Health is split: /healthz reports liveness (200 whenever the process
// serves HTTP) while /readyz reports readiness (503 until the persisted
// queue is restored, and again once a drain begins). Rejections carry a
// Retry-After hint sized from the queue backlog.
//
// Exit codes: 0 clean shutdown, 1 startup or serve error, 2 flag error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"repro/internal/lp"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8344", "listen address")
	stateDir := flag.String("state", "gapserved-state", "durable state directory (queue ledger, results store, checkpoints)")
	workers := flag.Int("workers", 2, "worker pool size (concurrent jobs; per-job solver parallelism is the job spec's workers field)")
	queueDepth := flag.Int("queue-depth", 64, "max queued jobs before submissions are rejected with 429")
	defaultBudget := flag.Duration("default-budget", 30*time.Second, "solve budget for jobs that do not set budget_sec")
	maxBudget := flag.Duration("max-budget", 10*time.Minute, "upper clamp on any job's solve budget")
	ckptEvery := flag.Int("checkpoint-every", 0, "checkpoint cadence in solver waves (0 = every wave boundary)")
	engineFlag := flag.String("engine", "auto", "process-default LP engine for jobs that request engine auto: dense, sparse, or auto")
	quiet := flag.Bool("q", false, "suppress per-job SUMMARY lines")
	flag.Parse()

	logf := log.New(os.Stderr, "gapserved: ", log.LstdFlags).Printf

	// Satellite of the silent-misconfiguration fix: if REPRO_LP_ENGINE held
	// garbage, init() already warned on stderr — but a daemon's stderr is
	// often a log file nobody reads at boot, so surface it again here where
	// the operator is looking.
	if rejected, err := lp.DefaultEngineDiagnostics(); err != nil {
		logf("WARNING: REPRO_LP_ENGINE=%q ignored: %v (using %s)", rejected, err, lp.DefaultEngine())
	}
	eng, err := lp.ParseEngine(*engineFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if eng != lp.EngineAuto {
		lp.SetDefaultEngine(eng)
	}

	srv, err := serve.New(serve.Config{
		StateDir:        *stateDir,
		Workers:         *workers,
		QueueDepth:      *queueDepth,
		DefaultBudget:   *defaultBudget,
		MaxBudget:       *maxBudget,
		CheckpointEvery: *ckptEvery,
		Logf:            logf,
	})
	if err != nil {
		logf("startup: %v", err)
		os.Exit(1)
	}
	if !*quiet {
		srv.OnJobDone = func(id string, sr *serve.StoredResult) {
			// Same SUMMARY shape cmd/gapfinder prints, so tooling that greps
			// one greps the other. The float fields round-trip through the
			// store's string encoding.
			fmt.Printf("SUMMARY job=%s key=%s status=%s gap=%.4f bound=%.4f nodes=%d lp_solves=%d lp_iters=%d wall=%.3fs warm_solves=%d warm_fallbacks=%d\n",
				id, sr.Key, sr.Status, pf(sr.Gap), pf(sr.Bound),
				sr.Nodes, sr.LPSolves, sr.LPIters, pf(sr.WallSec), sr.WarmSolves, sr.WarmFallbks)
		}
	}
	srv.Start()

	hs := &http.Server{Addr: *addr, Handler: srv}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.ListenAndServe() }()
	logf("listening on %s (state %s, %d workers, queue depth %d, engine %s)",
		*addr, *stateDir, *workers, *queueDepth, lp.DefaultEngine())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		logf("serve: %v", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()
	logf("signal received, draining")

	// Stop accepting HTTP first, then drain the pool: in-flight jobs
	// checkpoint and return to the queue ledger, queued jobs persist as-is.
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		logf("http shutdown: %v", err)
	}
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logf("drain: %v", err)
		os.Exit(1)
	}
	logf("drained; state persisted to %s", *stateDir)
}

// pf parses a store-encoded float ("g"/-1 strconv form, ±Inf legal).
func pf(s string) float64 {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0
	}
	return v
}
