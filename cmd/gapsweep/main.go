// Command gapsweep is the fault-tolerant sweep client for gapserved: it
// fans a threshold × partitions × seed grid out over one or more daemon
// endpoints and survives dropped connections, injected 503s, latency
// spikes, and daemons killed mid-solve.
//
// Resilience: retries use seeded exponential backoff (jitter pre-split per
// cell from -seed, never wall-clock), honor the daemon's Retry-After hints
// on 429/503, and stop at -retries attempts with a typed terminal error.
// Every cell's state is committed to a checksummed ledger (-ledger) via
// atomic temp+rename before the sweep moves on, so a killed sweep rerun
// with the same flags resumes without resubmitting completed cells. SIGINT
// degrades gracefully: the partial grid is reported and the process exits 3.
//
// The proxy subcommand ("gapsweep proxy") runs the internal/faultinject
// HTTP proxy used by the chaos harness:
//
//	gapsweep proxy -listen 127.0.0.1:8999 -target http://127.0.0.1:8344 \
//	    -faults 'http-503:%5,http-drop:3' -fault-seed 7
//
// Exit codes: 0 grid fully terminal and clean, 1 startup or I/O error,
// 2 flag error or some cells exhausted/failed, 3 interrupted (partial grid).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/sweep"
)

const (
	exitOK          = 0
	exitFatal       = 1
	exitUsage       = 2
	exitIncomplete  = 2
	exitInterrupted = 3
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "proxy" {
		os.Exit(proxyMain(os.Args[2:]))
	}
	os.Exit(sweepMain(os.Args[1:]))
}

func sweepMain(args []string) int {
	fs := flag.NewFlagSet("gapsweep", flag.ExitOnError)
	endpoints := fs.String("endpoints", "http://127.0.0.1:8344", "comma-separated gapserved base URLs; attempts rotate across them")
	topo := fs.String("topology", "b4", "topology: b4, abilene, swan, figure1, circle-N-M")
	heur := fs.String("heuristic", "dp", "heuristic: dp or pop")
	pairs := fs.Int("pairs", 12, "demand pairs (-1 = all reachable)")
	paths := fs.Int("paths", 2, "paths per pair")
	maxDemand := fs.Float64("max-demand", 100, "per-demand upper bound")
	budget := fs.Float64("budget", 30, "per-cell solve budget in seconds")
	targetGap := fs.Float64("target-gap", 0, "stop a cell at the first gap >= this (0 = prove optimality)")
	engine := fs.String("engine", "", "LP engine for every cell: auto, dense, sparse (empty = daemon default)")
	pricing := fs.String("pricing", "", "sparse pricing rule: auto, dantzig, devex")
	warm := fs.Bool("warm", false, "warm-start node relaxations")
	solverWorkers := fs.Int("solver-workers", 0, "per-job solver wave-pool size (0 = daemon default)")

	thresholds := fs.String("thresholds", "", "DP threshold axis, e.g. 2,5,8 (empty = single point from defaults)")
	partitions := fs.String("partitions", "", "POP partitions axis, e.g. 1,2,4 or 1..4")
	seeds := fs.String("seeds", "1", "seed axis, e.g. 1,7,9 or 1..8")

	ledgerPath := fs.String("ledger", "sweep.ledger", "durable sweep ledger (resume state)")
	retries := fs.Int("retries", 8, "max attempts per cell before it is marked exhausted")
	backoff := fs.Duration("backoff", 100*time.Millisecond, "initial retry backoff (doubles per attempt)")
	maxBackoff := fs.Duration("max-backoff", 5*time.Second, "retry backoff cap")
	timeout := fs.Duration("timeout", 10*time.Second, "per-HTTP-request timeout")
	poll := fs.Duration("poll", 250*time.Millisecond, "job status poll interval")
	seed := fs.Int64("seed", 1, "master seed for retry jitter (pre-split per cell)")
	workers := fs.Int("workers", 4, "concurrent cells in flight")

	outPath := fs.String("out", "", "write the deterministic grid CSV here ('-' = stdout)")
	jsonPath := fs.String("json", "", "write the full JSON report (attempts, endpoints, wall times) here")
	quiet := fs.Bool("q", false, "suppress per-cell progress lines")
	fs.Parse(args)

	logf := log.New(os.Stderr, "gapsweep: ", log.LstdFlags).Printf

	eps := splitNonEmpty(*endpoints)
	if len(eps) == 0 {
		fmt.Fprintln(os.Stderr, "gapsweep: -endpoints must name at least one daemon URL")
		return exitUsage
	}
	thrAxis, err := parseFloatAxis(*thresholds)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gapsweep: -thresholds: %v\n", err)
		return exitUsage
	}
	partAxis, err := parseIntAxis(*partitions)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gapsweep: -partitions: %v\n", err)
		return exitUsage
	}
	seedAxis, err := parseInt64Axis(*seeds)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gapsweep: -seeds: %v\n", err)
		return exitUsage
	}

	grid := &sweep.Grid{
		Base: serve.Spec{
			Topology:  *topo,
			Heuristic: *heur,
			Pairs:     *pairs,
			Paths:     *paths,
			MaxDemand: *maxDemand,
			BudgetSec: *budget,
			TargetGap: *targetGap,
			Engine:    *engine,
			Pricing:   *pricing,
			WarmStart: *warm,
			Workers:   *solverWorkers,
		},
		Thresholds: thrAxis,
		Partitions: partAxis,
		Seeds:      seedAxis,
	}

	ledger, err := sweep.OpenLedger(*ledgerPath, nil)
	if err != nil {
		logf("ledger: %v", err)
		return exitFatal
	}
	runner := &sweep.Runner{
		Client: sweep.NewClient(eps, sweep.Policy{
			MaxAttempts:  *retries,
			BaseDelay:    *backoff,
			MaxDelay:     *maxBackoff,
			Timeout:      *timeout,
			PollInterval: *poll,
		}),
		Ledger:   ledger,
		Grid:     grid,
		Seed:     *seed,
		Workers:  *workers,
		Registry: obs.NewRegistry(),
	}
	if !*quiet {
		runner.Logf = logf
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	rep, runErr := runner.Run(ctx)
	stop()

	if err := writeOutputs(rep, *outPath, *jsonPath); err != nil {
		logf("%v", err)
		return exitFatal
	}
	fmt.Println(rep.Summary())
	switch {
	case errors.Is(runErr, sweep.ErrInterrupted):
		return exitInterrupted
	case runErr != nil:
		logf("sweep: %v", runErr)
		return exitFatal
	case rep.Exhausted > 0 || rep.Failed > 0:
		return exitIncomplete
	}
	return exitOK
}

func writeOutputs(rep *sweep.Report, outPath, jsonPath string) error {
	if outPath != "" {
		if outPath == "-" {
			if err := rep.WriteCSV(os.Stdout); err != nil {
				return fmt.Errorf("csv: %w", err)
			}
		} else {
			f, err := os.Create(outPath)
			if err != nil {
				return err
			}
			if err := rep.WriteCSV(f); err != nil {
				f.Close()
				return fmt.Errorf("csv: %w", err)
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		if err := rep.WriteJSON(f); err != nil {
			f.Close()
			return fmt.Errorf("json report: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

func proxyMain(args []string) int {
	fs := flag.NewFlagSet("gapsweep proxy", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:8999", "proxy listen address")
	target := fs.String("target", "", "gapserved base URL to forward to (required)")
	faults := fs.String("faults", "", "fault plan, e.g. 'http-503:%5,http-drop:3,http-latency:~10'")
	faultSeed := fs.Int64("fault-seed", 1, "seed resolving ~max fault triggers")
	latency := fs.Duration("latency", 100*time.Millisecond, "delay added by each http-latency hit")
	fs.Parse(args)

	logf := log.New(os.Stderr, "gapsweep-proxy: ", log.LstdFlags).Printf
	if *target == "" {
		fmt.Fprintln(os.Stderr, "gapsweep proxy: -target is required")
		return exitUsage
	}
	plan, err := faultinject.Parse(*faults, *faultSeed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gapsweep proxy: %v\n", err)
		return exitUsage
	}
	proxy, err := faultinject.NewProxy(*target, plan)
	if err != nil {
		logf("%v", err)
		return exitFatal
	}
	proxy.Latency = *latency
	proxy.Logf = logf

	hs := &http.Server{Addr: *listen, Handler: proxy}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.ListenAndServe() }()
	logf("proxying %s on %s (plan %q, seed %d)", *target, *listen, *faults, *faultSeed)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		logf("serve: %v", err)
		return exitFatal
	case <-ctx.Done():
	}
	stop()
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	hs.Shutdown(shutCtx)
	logf("done: %d requests, %d faults injected", proxy.Requests(), proxy.Injected())
	return exitOK
}

func splitNonEmpty(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// parseFloatAxis parses a comma-separated float list ("2,5,8").
func parseFloatAxis(s string) ([]float64, error) {
	var out []float64
	for _, part := range splitNonEmpty(s) {
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

// parseInt64Axis parses comma-separated entries where each entry is either
// a single integer or an inclusive range "a..b".
func parseInt64Axis(s string) ([]int64, error) {
	var out []int64
	for _, part := range splitNonEmpty(s) {
		if lo, hi, ok := strings.Cut(part, ".."); ok {
			a, errA := strconv.ParseInt(strings.TrimSpace(lo), 10, 64)
			b, errB := strconv.ParseInt(strings.TrimSpace(hi), 10, 64)
			if errA != nil || errB != nil || b < a {
				return nil, fmt.Errorf("bad range %q", part)
			}
			if b-a >= 1<<20 {
				return nil, fmt.Errorf("range %q enumerates too many values", part)
			}
			for v := a; v <= b; v++ {
				out = append(out, v)
			}
			continue
		}
		v, err := strconv.ParseInt(part, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseIntAxis(s string) ([]int, error) {
	wide, err := parseInt64Axis(s)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(wide))
	for i, v := range wide {
		out[i] = int(v)
	}
	return out, nil
}
