// figures regenerates the data series behind every figure of the paper's
// evaluation. Each -fig value prints the rows the corresponding plot draws;
// "all" runs the whole evaluation (budget permitting).
//
// Usage:
//
//	figures -fig 3 -budget 10s
//	figures -fig 4a -pairs 12
//	figures -fig all
//	figures -fromtrace out.jsonl          # gap-vs-time rows from a -trace file
//
// SIGINT/SIGTERM interrupt the searches cooperatively: rows computed so far
// are printed, a SUMMARY line marks the run interrupted, and the exit code
// is 3 (a second signal kills immediately).
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/lp"
	"repro/internal/obs"
)

// exitInterrupted is the distinct exit code for runs stopped by a signal.
const exitInterrupted = 3

// csvDir, when set, receives one CSV file per figure alongside the printed
// tables, so the series can be plotted directly.
var csvDir string

// writeCSV writes header+rows to <csvDir>/<name>.csv when -csv is set.
func writeCSV(name string, header []string, rows [][]string) error {
	if csvDir == "" {
		return nil
	}
	if err := os.MkdirAll(csvDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(csvDir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		return err
	}
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}

func main() { os.Exit(run()) }

func run() int {
	fig := flag.String("fig", "all", "figure to regenerate: 1, 2, 3, 4a, 4b, 5a, 5b, 6, all")
	budget := flag.Duration("budget", 5*time.Second, "wall-clock budget per search")
	pairs := flag.Int("pairs", 10, "demand-support restriction for meta optimizations (-1 = all pairs)")
	paths := flag.Int("paths", 2, "paths per demand pair")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", runtime.NumCPU(), "parallel workers per search; 1 = sequential")
	warmStart := flag.Bool("warmstart", false, "warm-start node LP relaxations from the parent basis (identical results, fewer pivots)")
	csvOut := flag.String("csv", "", "directory to also write per-figure CSV files into")
	fromTrace := flag.String("fromtrace", "", "replot a Figure-3 style gap-vs-time curve from a JSONL trace written with -trace")
	tracePath := flag.String("trace", "", "write a JSONL event trace of the searches to this file")
	metricsDump := flag.Bool("metrics", false, "print a Prometheus-style metrics dump on exit")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof, expvar and /metrics on this address (e.g. localhost:6060)")
	engineFlag := flag.String("engine", "auto", "LP simplex engine: dense, sparse, or auto (identical answers)")
	flag.Parse()
	csvDir = *csvOut
	if engine, err := lp.ParseEngine(*engineFlag); err != nil {
		log.Fatal(err)
	} else {
		lp.SetDefaultEngine(engine)
	}

	if *fromTrace != "" {
		if err := figFromTrace(*fromTrace); err != nil {
			log.Fatalf("fromtrace: %v", err)
		}
		return 0
	}

	tracer, finishObs, err := obs.SetupCLI(*tracePath, *metricsDump, *pprofAddr, os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	defer finishObs()

	// First signal cancels the running searches cooperatively (each returns
	// its best-so-far incumbent); restoring the default disposition lets a
	// second signal kill the process hard.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	go func() {
		<-ctx.Done()
		stopSignals()
	}()

	// finish reports how a figure ended. An error after an interrupt is the
	// interrupt's doing (a cancelled search can miss incumbents a full run
	// finds), so partial output plus the SUMMARY line beats dying silently.
	finish := func(name string, err error) int {
		if ctx.Err() != nil {
			if err != nil {
				fmt.Printf("figure %s aborted: %v\n", name, err)
			}
			fmt.Printf("SUMMARY fig=%s status=interrupted (rows above are best-so-far)\n", name)
			return exitInterrupted
		}
		if err != nil {
			log.Fatalf("figure %s: %v", name, err)
		}
		return 0
	}

	cfg := experiments.Config{Budget: *budget, Pairs: *pairs, Paths: *paths, Seed: *seed,
		Tracer: tracer, Workers: *workers, WarmStart: *warmStart, Ctx: ctx}
	runners := map[string]func(experiments.Config) error{
		"1": fig1, "2": fig2, "3": fig3, "4a": fig4a, "4b": fig4b,
		"5a": fig5a, "5b": fig5b, "6": fig6,
	}
	if *fig == "all" {
		for _, name := range []string{"1", "2", "3", "4a", "4b", "5a", "5b", "6"} {
			fmt.Printf("==== figure %s ====\n", name)
			if code := finish(name, runners[name](cfg)); code != 0 {
				return code
			}
			fmt.Println()
		}
		return 0
	}
	runner, ok := runners[*fig]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
		return 2
	}
	return finish(*fig, runner(cfg))
}

// figFromTrace replots the Figure-3 gap-versus-time curve from a JSONL
// event trace: one row per incumbent improvement, plus the terminal bound.
// Any trace written with a -trace flag (gapfinder, tesolve, figures) works.
func figFromTrace(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	recs, err := obs.ReadTrace(f)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d events\n", path, len(recs))
	fmt.Printf("%-10s %10s %12s %10s %8s\n", "seconds", "gap", "bound", "source", "nodes")
	var rows [][]string
	for _, r := range recs {
		switch r.Kind {
		case obs.KindIncumbent.String(), obs.KindSolveDone.String():
			src := r.Source
			if r.Kind == obs.KindSolveDone.String() {
				src = "done/" + r.Status
			}
			fmt.Printf("%-10.3f %10.4f %12.4f %10s %8d\n",
				r.T, r.Objective, r.Bound, src, r.Nodes)
			rows = append(rows, []string{
				fmt.Sprintf("%.4f", r.T),
				fmt.Sprintf("%.6f", r.Objective),
				fmt.Sprintf("%.6f", r.Bound),
				src, fmt.Sprint(r.Nodes)})
		}
	}
	if len(rows) == 0 {
		fmt.Println("(no incumbent events in trace)")
		return nil
	}
	return writeCSV("fromtrace", []string{"seconds", "gap", "bound", "source", "nodes"}, rows)
}

func fig1(experiments.Config) error {
	r, err := experiments.Figure1()
	if err != nil {
		return err
	}
	fmt.Printf("OPT=%.0f  DP=%.0f  gap=%.0f (%.1f%% of OPT)\n",
		r.Opt, r.DP, r.Gap, 100*r.Gap/r.Opt)
	return nil
}

func fig2(experiments.Config) error {
	// The rectangle example is analytic: the KKT system of
	// min w^2+l^2 s.t. 2(w+l) >= P solves to w = l = lambda = P/4.
	for _, P := range []float64{4.0, 10.0} {
		fmt.Printf("P=%-4g  w=l=lambda=%g  diameter^2=%g\n", P, P/4, 2*(P/4)*(P/4))
	}
	fmt.Println("(mechanized check: internal/kkt TestFigure2Rectangle and TestFigure2LinearAnalog)")
	return nil
}

func fig3(cfg experiments.Config) error {
	for _, heur := range []string{"dp", "pop"} {
		points, err := experiments.Figure3(heur, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("heuristic=%s on B4 (gap normalized by total capacity)\n", heur)
		fmt.Printf("%-10s %12s %10s\n", "method", "time", "norm-gap")
		var rows [][]string
		for _, p := range points {
			fmt.Printf("%-10s %12v %10.4f\n", p.Method, p.Elapsed.Round(time.Millisecond), p.NormGap)
			rows = append(rows, []string{p.Method,
				fmt.Sprintf("%.3f", p.Elapsed.Seconds()), fmt.Sprintf("%.6f", p.NormGap)})
		}
		if err := writeCSV("fig3_"+heur, []string{"method", "seconds", "norm_gap"}, rows); err != nil {
			return err
		}
	}
	return nil
}

func fig4a(cfg experiments.Config) error {
	rows, err := experiments.Figure4a(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %12s %10s\n", "topology", "threshold", "norm-gap")
	var recs [][]string
	for _, r := range rows {
		fmt.Printf("%-10s %11.1f%% %10.4f\n", r.Topology, 100*r.Threshold, r.NormGap)
		recs = append(recs, []string{r.Topology,
			fmt.Sprintf("%.3f", r.Threshold), fmt.Sprintf("%.6f", r.NormGap)})
	}
	return writeCSV("fig4a", []string{"topology", "threshold_frac", "norm_gap"}, recs)
}

func fig4b(cfg experiments.Config) error {
	rows, err := experiments.Figure4b(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("%-14s %12s %10s\n", "circle", "avg-path-len", "norm-gap")
	var recs [][]string
	for _, r := range rows {
		fmt.Printf("n=%-3d m=%-6d %12.2f %10.4f\n", r.Nodes, r.Neighbors, r.AvgPathLen, r.NormGap)
		recs = append(recs, []string{fmt.Sprint(r.Nodes), fmt.Sprint(r.Neighbors),
			fmt.Sprintf("%.4f", r.AvgPathLen), fmt.Sprintf("%.6f", r.NormGap)})
	}
	return writeCSV("fig4b", []string{"nodes", "neighbors", "avg_path_len", "norm_gap"}, recs)
}

func fig5a(cfg experiments.Config) error {
	rows, err := experiments.Figure5a(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("%-15s %10s %13s %9s\n", "instantiations", "train-gap", "transfer-gap", "retained")
	var recs [][]string
	for _, r := range rows {
		fmt.Printf("%-15d %10.2f %13.2f %8.0f%%\n",
			r.Instantiations, r.TrainGap, r.TransferGap, 100*r.TransferGap/r.TrainGap)
		recs = append(recs, []string{fmt.Sprint(r.Instantiations),
			fmt.Sprintf("%.4f", r.TrainGap), fmt.Sprintf("%.4f", r.TransferGap)})
	}
	return writeCSV("fig5a", []string{"instantiations", "train_gap", "transfer_gap"}, recs)
}

func fig5b(cfg experiments.Config) error {
	rows, err := experiments.Figure5b(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("%-11s %6s %10s\n", "partitions", "paths", "norm-gap")
	var recs [][]string
	for _, r := range rows {
		fmt.Printf("%-11d %6d %10.4f\n", r.Partitions, r.Paths, r.NormGap)
		recs = append(recs, []string{fmt.Sprint(r.Partitions), fmt.Sprint(r.Paths),
			fmt.Sprintf("%.6f", r.NormGap)})
	}
	return writeCSV("fig5b", []string{"partitions", "paths", "norm_gap"}, recs)
}

func fig6(cfg experiments.Config) error {
	rows, err := experiments.Figure6(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("%-14s %8s %8s %8s %12s\n", "problem", "vars", "linear", "SOS", "latency")
	var recs [][]string
	for _, r := range rows {
		fmt.Printf("%-14s %8d %8d %8d %12v\n",
			r.Problem, r.Vars, r.Linear, r.SOS, r.Latency.Round(time.Millisecond))
		recs = append(recs, []string{r.Problem, fmt.Sprint(r.Vars), fmt.Sprint(r.Linear),
			fmt.Sprint(r.SOS), fmt.Sprintf("%.4f", r.Latency.Seconds())})
	}
	return writeCSV("fig6", []string{"problem", "vars", "linear", "sos", "latency_s"}, recs)
}
