// Command gapbench runs the canonical benchmark fixtures under a seeded
// deterministic harness and writes a BENCH_<date>.json ledger (the
// internal/benchstore schema): per-fixture wall-clock and allocation
// metrics, deterministic effort counters, and the per-phase obs histogram
// deltas (lp_phase1/lp_phase2/lp_warm_repair/bnb_wave seconds) that say
// where the time went.
//
// With -against BENCH_<prev>.json it also emits a comparison report with
// per-metric verdicts: deterministic counters (nodes, pivots, fallbacks,
// histogram counts) gate exactly — any increase fails — while wall-clock
// metrics gate through a relative tolerance. Exit status: 0 clean, 1 gate
// failed, 2 harness error.
//
// Usage:
//
//	gapbench                                  # run everything, write BENCH_<today>.json
//	gapbench -against BENCH_2026-08-08.json   # ...and gate against a baseline
//	gapbench -fixtures smoke_b4_dp -reps 1 -hard-only -against BENCH_2026-08-08.json  # the CI gate
//	gapbench -list                            # show the fixture suite
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/benchstore"
	"repro/internal/obs"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		out       = flag.String("out", "", "output ledger path (default BENCH_<today>.json)")
		against   = flag.String("against", "", "baseline BENCH_*.json to compare and gate against")
		filter    = flag.String("fixtures", "", "comma-separated fixture names (or substrings) to run; default all")
		reps      = flag.Int("reps", 3, "measurement repetitions per fixture (soft metrics use the best rep)")
		seed      = flag.Int64("seed", 1, "harness seed; fixture RNG seeds derive from it by fixed offsets")
		softTol   = flag.Float64("soft-tol", benchstore.DefaultSoftTolerance, "relative tolerance for wall-clock metrics in -against mode")
		softFloor = flag.Float64("soft-floor", benchstore.DefaultSoftFloor, "absolute wall-clock change below which soft metrics never gate (negative disables)")
		hardOnly  = flag.Bool("hard-only", false, "gate only on deterministic counters (CI mode: baseline timings come from a different machine)")
		note      = flag.String("note", "", "free-form note recorded in the ledger")
		list      = flag.Bool("list", false, "list fixtures and exit")
		quiet     = flag.Bool("q", false, "suppress per-fixture progress")
	)
	flag.Parse()

	suite := fixtures()
	if *list {
		for _, fx := range suite {
			fmt.Printf("%-22s %s\n", fx.name, fx.desc)
		}
		return 0
	}
	selected := selectFixtures(suite, *filter)
	if len(selected) == 0 {
		fmt.Fprintf(os.Stderr, "gapbench: no fixtures match %q\n", *filter)
		return 2
	}

	file := &benchstore.File{
		Schema: benchstore.SchemaVersion,
		Date:   time.Now().UTC().Format("2006-01-02"),
		Seed:   *seed,
		Note:   *note,
	}
	for _, b := range obs.HistogramBounds() {
		file.HistBounds = append(file.HistBounds, benchstore.Float(b))
	}

	for _, fx := range selected {
		rec, err := runFixture(fx, *seed, *reps)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gapbench: fixture %s: %v\n", fx.name, err)
			return 2
		}
		file.Fixtures = append(file.Fixtures, *rec)
		if !*quiet {
			secs := softValue(rec, "seconds_per_op")
			fmt.Printf("%-22s %8.3fs/op  reps=%d  hard=%d metrics  hist=%d\n",
				fx.name, secs, rec.Reps, len(rec.Hard), len(rec.Histograms))
		}
	}

	outPath := *out
	if outPath == "" {
		outPath = "BENCH_" + file.Date + ".json"
	}
	enc, err := benchstore.Encode(file)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gapbench: encode: %v\n", err)
		return 2
	}
	if err := os.WriteFile(outPath, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "gapbench: %v\n", err)
		return 2
	}
	if !*quiet {
		fmt.Printf("wrote %s (%d fixtures)\n", outPath, len(file.Fixtures))
	}

	if *against == "" {
		return 0
	}
	baseRaw, err := os.ReadFile(*against)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gapbench: %v\n", err)
		return 2
	}
	baseline, err := benchstore.Decode(baseRaw)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gapbench: baseline: %v\n", err)
		return 2
	}
	if baseline.Seed != *seed {
		fmt.Fprintf(os.Stderr, "gapbench: warning: baseline seed %d != harness seed %d; fingerprint checks will catch tree changes\n",
			baseline.Seed, *seed)
	}
	// A partial run (-fixtures) must not count unselected baseline fixtures
	// as missing: restrict the baseline to what actually ran.
	if *filter != "" {
		var kept []benchstore.Fixture
		for _, bf := range baseline.Fixtures {
			if file.FindFixture(bf.Name) != nil {
				kept = append(kept, bf)
			}
		}
		baseline.Fixtures = kept
	}
	rep, err := benchstore.Compare(baseline, file, benchstore.Options{SoftTolerance: *softTol, SoftFloor: *softFloor})
	if err != nil {
		fmt.Fprintf(os.Stderr, "gapbench: compare: %v\n", err)
		return 2
	}
	if err := rep.WriteText(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "gapbench: %v\n", err)
		return 2
	}
	if n := len(rep.HardFailures()); n > 0 {
		fmt.Printf("\nGATE FAILED: %d deterministic regression(s)/missing metric(s)\n", n)
		return 1
	}
	if !*hardOnly {
		if n := len(rep.SoftRegressions()); n > 0 {
			fmt.Printf("\nGATE FAILED: %d wall-clock metric(s) beyond ±%.0f%% (rerun or bless with -hard-only if expected)\n",
				n, 100**softTol)
			return 1
		}
	}
	fmt.Println("\ngate clean")
	return 0
}

func selectFixtures(suite []fixture, filter string) []fixture {
	if filter == "" {
		return suite
	}
	var keep []fixture
	for _, pat := range strings.Split(filter, ",") {
		pat = strings.TrimSpace(pat)
		if pat == "" {
			continue
		}
		for _, fx := range suite {
			if fx.name == pat || strings.Contains(fx.name, pat) {
				if !containsFixture(keep, fx.name) {
					keep = append(keep, fx)
				}
			}
		}
	}
	return keep
}

func containsFixture(s []fixture, name string) bool {
	for _, fx := range s {
		if fx.name == name {
			return true
		}
	}
	return false
}

func softValue(fx *benchstore.Fixture, name string) float64 {
	for _, v := range fx.Soft {
		if v.Name == name {
			return float64(v.Value)
		}
	}
	return 0
}

// runFixture executes one fixture reps times. The first rep is bracketed by
// obs registry exports and memory stats (its metric deltas become the
// fixture's counters and histograms); later reps only contribute timing and
// must reproduce the first rep's deterministic counters exactly — any drift
// is a harness error, because it would poison every future comparison.
func runFixture(fx fixture, seed int64, reps int) (*benchstore.Fixture, error) {
	runtime.GC()
	var (
		first              = true
		outcome            *runOutcome
		before, after      obs.Export
		msBefore, msAfter  runtime.MemStats
		firstObjectiveHard []benchstore.Counter
	)
	timing, err := benchstore.Measure(reps, func() error {
		// Each rep gets a fresh tracer so elapsed stamps restart; the sink
		// writes into obs.Default, same as the CLI tools.
		tr := obs.NewTracer(obs.NewMetricsSink(nil))
		if first {
			runtime.ReadMemStats(&msBefore)
			before = obs.Default.Export()
		}
		o, err := fx.run(seed, tr)
		if err != nil {
			return err
		}
		if first {
			after = obs.Default.Export()
			runtime.ReadMemStats(&msAfter)
			outcome = o
			firstObjectiveHard = o.hard
			first = false
			return nil
		}
		return sameHard(fx.name, firstObjectiveHard, o.hard, outcome.fingerprint, o.fingerprint)
	})
	if err != nil {
		return nil, err
	}

	rec := &benchstore.Fixture{
		Name:        fx.name,
		Fingerprint: benchstore.Fingerprint(outcome.fingerprint),
		Reps:        timing.Reps,
		Hard:        append([]benchstore.Counter(nil), outcome.hard...),
	}
	counters, hists := diffExports(before, after)
	rec.Soft = []benchstore.Value{
		{Name: "seconds_per_op", Value: benchstore.Float(timing.BestSeconds())},
		{Name: "allocs_per_op", Value: benchstore.Float(float64(msAfter.Mallocs - msBefore.Mallocs))},
		{Name: "bytes_per_op", Value: benchstore.Float(float64(msAfter.TotalAlloc - msBefore.TotalAlloc))},
	}
	if fx.registrySoft {
		// Registry-level call counts are scheduling-dependent here (see the
		// fixture's registrySoft doc): record them as soft values so they
		// inform without gating exactly. The solver's own result counters in
		// rec.Hard still gate exactly — the tree is deterministic.
		for _, c := range counters {
			rec.Soft = append(rec.Soft, benchstore.Value{Name: c.Name, Value: benchstore.Float(float64(c.Value))})
		}
		for _, h := range hists {
			rec.Soft = append(rec.Soft,
				benchstore.Value{Name: h.Name + "_count", Value: benchstore.Float(float64(h.Count))},
				benchstore.Value{Name: h.Name + "_sum", Value: h.Sum})
		}
	} else {
		rec.Hard = append(rec.Hard, counters...)
		rec.Histograms = hists
	}
	return rec, nil
}

// sameHard enforces in-process determinism across reps: same fingerprint,
// same counters, same values.
func sameHard(name string, a, b []benchstore.Counter, fpA, fpB uint64) error {
	if fpA != fpB {
		return fmt.Errorf("determinism violation in %s: fingerprint %s vs %s across reps",
			name, benchstore.Fingerprint(fpA), benchstore.Fingerprint(fpB))
	}
	if len(a) != len(b) {
		return fmt.Errorf("determinism violation in %s: %d vs %d hard counters across reps", name, len(a), len(b))
	}
	bv := make(map[string]int64, len(b))
	for _, c := range b {
		bv[c.Name] = c.Value
	}
	for _, c := range a {
		got, ok := bv[c.Name]
		if !ok {
			return fmt.Errorf("determinism violation in %s: counter %s missing on a later rep", name, c.Name)
		}
		if got != c.Value {
			return fmt.Errorf("determinism violation in %s: counter %s = %d then %d", name, c.Name, c.Value, got)
		}
	}
	return nil
}

// diffExports turns two obs.Default exports into the fixture's share of the
// registry: counter deltas (all deterministic under the harness's
// budget-free options) and histogram deltas (counts deterministic, sums and
// bucket placements wall-clock). Metrics untouched by the fixture (zero
// delta) are dropped.
func diffExports(before, after obs.Export) ([]benchstore.Counter, []benchstore.Histogram) {
	prevC := make(map[string]int64, len(before.Counters))
	for _, c := range before.Counters {
		prevC[c.Name] = c.Value
	}
	var counters []benchstore.Counter
	for _, c := range after.Counters {
		if d := c.Value - prevC[c.Name]; d != 0 {
			counters = append(counters, benchstore.Counter{Name: c.Name, Value: d})
		}
	}
	prevH := make(map[string]obs.HistogramValue, len(before.Histograms))
	for _, h := range before.Histograms {
		prevH[h.Name] = h
	}
	var hists []benchstore.Histogram
	for _, h := range after.Histograms {
		p := prevH[h.Name]
		if h.Count == p.Count {
			continue
		}
		bh := benchstore.Histogram{
			Name:  h.Name,
			Count: h.Count - p.Count,
			Sum:   benchstore.Float(h.Sum - p.Sum),
		}
		for i, b := range h.Buckets {
			var pb uint64
			if len(p.Buckets) == len(h.Buckets) {
				pb = p.Buckets[i]
			}
			bh.Buckets = append(bh.Buckets, b-pb)
		}
		hists = append(hists, bh)
	}
	sort.Slice(counters, func(i, j int) bool { return counters[i].Name < counters[j].Name })
	sort.Slice(hists, func(i, j int) bool { return hists[i].Name < hists[j].Name })
	return counters, hists
}
