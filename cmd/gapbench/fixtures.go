package main

// The canonical benchmark fixtures. Every fixture is deterministic: node
// budgets (MaxNodes) bound the searches instead of wall-clock budgets, all
// randomness flows from the harness seed through fixed documented offsets,
// and no fixture sets TimeLimit or StallWindow. The wall-clock-budgeted
// experiments (Figure 3's gap-vs-time race, the Figure 4-6 sweeps) are
// deliberately absent — their explored trees depend on machine speed, so
// they cannot be gated; `go test -bench` still covers them for eyeballing.
//
// With the default seed (1) the derived seeds reproduce the documented
// numbers: the warm/parallel meta problem uses demand seed 7 (matching
// bench_test.go's parallelMetaProblem) and the smoke fixture uses demand
// seed 5 (matching the CI smoke run of cmd/gapfinder).

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/benchstore"
	"repro/internal/core"
	"repro/internal/demand"
	"repro/internal/experiments"
	"repro/internal/lp"
	"repro/internal/mcf"
	"repro/internal/milp"
	"repro/internal/obs"
	"repro/internal/topology"
)

// runOutcome is what one fixture execution reports back to the harness:
// the solver's search fingerprint plus fixture-level deterministic
// counters. The harness adds obs registry deltas, histograms, and timing.
type runOutcome struct {
	fingerprint uint64
	hard        []benchstore.Counter
}

type fixture struct {
	name string
	desc string
	run  func(seed int64, tr *obs.Tracer) (*runOutcome, error)
	// registrySoft marks fixtures whose obs-registry deltas are not exactly
	// reproducible and must be recorded as soft metrics. No canonical
	// fixture sets it today: the polish price cache used to tolerate a
	// benign race where two workers priced the same fresh demand vector,
	// costing an extra registry-counted LP solve on some schedules, but
	// priceCache (core/dp.go) now single-flights fresh keys, so the raw LP
	// call count equals the set of unique demand vectors and is
	// schedule-independent. The field stays for future fixtures whose
	// registry deltas are genuinely nondeterministic (the one remaining
	// cache caveat — FIFO eviction past the entry cap — would qualify, but
	// canonical workloads stay far under it).
	registrySoft bool
}

// fixtures returns the canonical suite in display order (main sorts them
// before writing, so order here is cosmetic).
func fixtures() []fixture {
	return []fixture{
		{
			name: "figure1",
			desc: "motivating example end to end: two LP solves, gap must be exactly 100",
			run:  runFigure1,
		},
		{
			name: "figure2_kkt",
			desc: "rectangle example's LP analog through the full KKT machinery",
			run:  runFigure2,
		},
		{
			name: "ablation_baseline",
			desc: "figure-1 DP gap search, reference configuration (phase-2 encoding, SOS branching, polish)",
			run:  ablationFixture(func(pr *core.DPGapProblem, o *milp.Options) {}),
		},
		{
			name: "ablation_kkt_opt",
			desc: "OPT side certified with a full KKT system instead of primal-only",
			run:  ablationFixture(func(pr *core.DPGapProblem, o *milp.Options) { pr.FullKKTOpt = true }),
		},
		{
			name: "ablation_bigm",
			desc: "big-M indicator rows instead of SOS1 branching",
			run:  ablationFixture(func(pr *core.DPGapProblem, o *milp.Options) { pr.BigMComplementarity = 1000 }),
		},
		{
			name: "ablation_quantized",
			desc: "demands quantized to a 5-level grid",
			run: ablationFixture(func(pr *core.DPGapProblem, o *milp.Options) {
				pr.Input.Levels = []float64{0, 25, 50, 75, 100}
			}),
		},
		{
			name: "ablation_depth_first",
			desc: "depth-first node order instead of best-bound",
			run:  ablationFixture(func(pr *core.DPGapProblem, o *milp.Options) { o.DepthFirst = true }),
		},
		{
			name: "warm_off",
			desc: "B4 meta problem (12 pairs), serial, Batch 8, 64 nodes, cold LP resolves",
			run:  metaFixture(1, false),
		},
		{
			name: "warm_on",
			desc: "identical tree to warm_off, node LPs warm-started from the parent basis",
			run:  metaFixture(1, true),
		},
		{
			name: "parallel_w4",
			desc: "identical tree to warm_off solved by 4 wave workers (solver counters must match warm_off)",
			// Registry deltas gate hard since the polish price cache went
			// single-flight: every unique demand vector prices exactly once
			// regardless of worker schedule, so even the raw LP-call
			// counters reproduce bit-for-bit at w=4.
			run: metaFixture(4, false),
		},
		{
			name: "smoke_b4_dp",
			desc: "the CI gate: B4, dp heuristic, 4 pairs, searched to optimality with warm starts",
			run:  runSmoke,
		},
		{
			name: "smoke_b4_dp_sparse",
			desc: "the smoke search on the sparse LP engine; hard-asserts gap/nodes/lp_solves/lp_iters identical to an in-fixture dense run",
			run:  runSmokeSparse,
		},
		{
			name: "warm_on_sparse",
			desc: "the warm_on meta fixture on the sparse engine; hard-asserts solver counters identical to an in-fixture dense run",
			run:  metaFixtureSparse,
		},
		{
			name: "ablation_sparse_pivot",
			desc: "large sparse LP solved by both engines: identical answer required, per-pivot wall time must drop >= 2x on the sparse engine",
			run:  runSparsePivotAblation,
		},
	}
}

// gapMilli converts a verified gap to an exact integer counter (milli-units)
// so it gates as a hard metric: the found adversarial gap is part of the
// determinism contract, and a change is a correctness signal, not noise.
func gapMilli(gap float64) int64 { return int64(math.Round(gap * 1000)) }

// solverCounters flattens a gap-search result into the fixture's hard
// counters.
func solverCounters(res *core.Result) []benchstore.Counter {
	out := []benchstore.Counter{{Name: "gap_milli", Value: gapMilli(res.Gap)}}
	if s := res.Solver; s != nil {
		out = append(out,
			benchstore.Counter{Name: "nodes", Value: int64(s.Nodes)},
			benchstore.Counter{Name: "lp_solves", Value: int64(s.LPSolves)},
			benchstore.Counter{Name: "lp_iters", Value: int64(s.LPIters)},
			benchstore.Counter{Name: "warm_lp_solves", Value: int64(s.WarmLPSolves)},
			benchstore.Counter{Name: "warm_lp_fallbacks", Value: int64(s.WarmLPFallbacks)},
		)
	}
	return out
}

func runFigure1(seed int64, tr *obs.Tracer) (*runOutcome, error) {
	r, err := experiments.Figure1()
	if err != nil {
		return nil, err
	}
	if gapMilli(r.Gap) != 100_000 {
		return nil, fmt.Errorf("figure1: gap %v, want 100", r.Gap)
	}
	return &runOutcome{hard: []benchstore.Counter{{Name: "gap_milli", Value: gapMilli(r.Gap)}}}, nil
}

func runFigure2(seed int64, tr *obs.Tracer) (*runOutcome, error) {
	if err := experiments.Figure2LinearAnalog(); err != nil {
		return nil, err
	}
	return &runOutcome{}, nil
}

// figure1Problem mirrors bench_test.go: the small DP gap problem on the
// motivating topology, provably optimal in well under a second.
func figure1Problem() (*core.DPGapProblem, error) {
	g := topology.Figure1()
	set := demand.NewSet([]demand.Pair{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 0, Dst: 2}})
	inst, err := mcf.NewInstance(g, set, 2)
	if err != nil {
		return nil, err
	}
	return &core.DPGapProblem{
		Inst: inst, Threshold: 50,
		Input: core.InputConstraints{MaxDemand: 100},
	}, nil
}

func ablationFixture(mutate func(*core.DPGapProblem, *milp.Options)) func(int64, *obs.Tracer) (*runOutcome, error) {
	return func(seed int64, tr *obs.Tracer) (*runOutcome, error) {
		pr, err := figure1Problem()
		if err != nil {
			return nil, err
		}
		opts := milp.Options{Tracer: tr}
		mutate(pr, &opts)
		res, err := pr.Solve(opts)
		if err != nil {
			return nil, err
		}
		if res.Solver.Status != milp.StatusOptimal || res.Gap < 99.99 {
			return nil, fmt.Errorf("ablation: status=%v gap=%v, want optimal with gap >= 99.99", res.Solver.Status, res.Gap)
		}
		return &runOutcome{fingerprint: res.Solver.Fingerprint, hard: solverCounters(res)}, nil
	}
}

// metaProblem mirrors bench_test.go's parallelMetaProblem: B4 with 12
// random demand pairs (demand seed = harness seed + 6, i.e. 7 by default)
// gives 70+ SOS pairs, enough simplex work per wave for parallelism and
// warm starts to show.
func metaProblem(seed int64) (*core.DPGapProblem, error) {
	g := topology.B4()
	set := demand.RandomPairs(g, 12, rand.New(rand.NewSource(seed+6)))
	inst, err := mcf.NewInstance(g, set, 2)
	if err != nil {
		return nil, err
	}
	pr := &core.DPGapProblem{
		Inst: inst, Threshold: 5,
		Input: core.InputConstraints{MaxDemand: 100},
	}
	st, err := pr.Stats()
	if err != nil {
		return nil, err
	}
	if st.SOSPairs < 64 {
		return nil, fmt.Errorf("meta problem too small: %d SOS pairs, want >= 64", st.SOSPairs)
	}
	return pr, nil
}

func metaFixture(workers int, warm bool) func(int64, *obs.Tracer) (*runOutcome, error) {
	return func(seed int64, tr *obs.Tracer) (*runOutcome, error) {
		pr, err := metaProblem(seed)
		if err != nil {
			return nil, err
		}
		opts := milp.Options{Workers: workers, Batch: 8, MaxNodes: 64, WarmStart: warm, Tracer: tr}
		res, err := pr.Solve(opts)
		if err != nil {
			return nil, err
		}
		if res.Solver.Nodes == 0 {
			return nil, fmt.Errorf("meta search explored no nodes")
		}
		if warm && res.Solver.WarmLPSolves == 0 {
			return nil, fmt.Errorf("warm-start fixture took zero warm solves")
		}
		return &runOutcome{fingerprint: res.Solver.Fingerprint, hard: solverCounters(res)}, nil
	}
}

// smokeSearch runs the smoke fixture's gap search on the given lp engine.
func smokeSearch(seed int64, tr *obs.Tracer, engine lp.Engine) (*core.Result, error) {
	g := topology.B4()
	set := demand.RandomPairs(g, 4, rand.New(rand.NewSource(seed+4)))
	inst, err := mcf.NewInstance(g, set, 2)
	if err != nil {
		return nil, err
	}
	pr := &core.DPGapProblem{
		Inst: inst, Threshold: 5,
		Input: core.InputConstraints{MaxDemand: 100},
	}
	opts := milp.Options{DepthFirst: true, WarmStart: true, Workers: 1, Engine: engine, Tracer: tr}
	res, err := pr.Solve(opts)
	if err != nil {
		return nil, err
	}
	if res.Solver.Status != milp.StatusOptimal {
		return nil, fmt.Errorf("smoke(%v): status %v, want optimal", engine, res.Solver.Status)
	}
	return res, nil
}

// runSmokeSparse is the engine-parity gate: the smoke search must explore
// the bit-identical tree on the sparse engine — same fingerprint, gap,
// nodes, lp_solves and lp_iters as a dense run performed in-fixture — and
// the sparse counters are ALSO recorded as hard metrics against the ledger.
func runSmokeSparse(seed int64, tr *obs.Tracer) (*runOutcome, error) {
	dense, err := smokeSearch(seed, nil, lp.EngineDense)
	if err != nil {
		return nil, err
	}
	sparse, err := smokeSearch(seed, tr, lp.EngineSparse)
	if err != nil {
		return nil, err
	}
	if err := sameSearch("smoke_b4_dp_sparse", dense, sparse); err != nil {
		return nil, err
	}
	return &runOutcome{fingerprint: sparse.Solver.Fingerprint, hard: solverCounters(sparse)}, nil
}

// sameSearch hard-asserts engine parity on everything the ledger gates.
func sameSearch(name string, dense, sparse *core.Result) error {
	if gapMilli(dense.Gap) != gapMilli(sparse.Gap) {
		return fmt.Errorf("%s: gap %v (sparse) vs %v (dense)", name, sparse.Gap, dense.Gap)
	}
	d, s := dense.Solver, sparse.Solver
	if d.Fingerprint != s.Fingerprint {
		return fmt.Errorf("%s: search fingerprint %x (sparse) vs %x (dense)", name, s.Fingerprint, d.Fingerprint)
	}
	if d.Nodes != s.Nodes || d.LPSolves != s.LPSolves || d.LPIters != s.LPIters ||
		d.WarmLPSolves != s.WarmLPSolves || d.WarmLPFallbacks != s.WarmLPFallbacks {
		return fmt.Errorf("%s: counters diverged: nodes %d/%d lp_solves %d/%d lp_iters %d/%d warm %d/%d fallbacks %d/%d (sparse/dense)",
			name, s.Nodes, d.Nodes, s.LPSolves, d.LPSolves, s.LPIters, d.LPIters,
			s.WarmLPSolves, d.WarmLPSolves, s.WarmLPFallbacks, d.WarmLPFallbacks)
	}
	return nil
}

// metaFixtureSparse mirrors warm_on on the sparse engine, with the same
// in-fixture dense parity assertion as the sparse smoke gate.
func metaFixtureSparse(seed int64, tr *obs.Tracer) (*runOutcome, error) {
	solveMeta := func(engine lp.Engine, tr *obs.Tracer) (*core.Result, error) {
		pr, err := metaProblem(seed)
		if err != nil {
			return nil, err
		}
		opts := milp.Options{Workers: 1, Batch: 8, MaxNodes: 64, WarmStart: true, Engine: engine, Tracer: tr}
		return pr.Solve(opts)
	}
	dense, err := solveMeta(lp.EngineDense, nil)
	if err != nil {
		return nil, err
	}
	sparse, err := solveMeta(lp.EngineSparse, tr)
	if err != nil {
		return nil, err
	}
	if sparse.Solver.WarmLPSolves == 0 {
		return nil, fmt.Errorf("warm_on_sparse: zero warm solves")
	}
	if err := sameSearch("warm_on_sparse", dense, sparse); err != nil {
		return nil, err
	}
	return &runOutcome{fingerprint: sparse.Solver.Fingerprint, hard: solverCounters(sparse)}, nil
}

// buildAblationLP constructs the pivot-ablation LP: a capacitated-path
// shape (1200 path variables, 150 capacity edges, each path on 2-4 random
// edges, ~2% density) that is large enough for per-pivot cost to dominate.
func buildAblationLP(seed int64) *lp.Problem {
	rng := rand.New(rand.NewSource(seed + 13))
	p := lp.NewProblem("pivot-ablation", lp.Maximize)
	const nPaths, nEdges = 1200, 150
	paths := make([]lp.VarID, nPaths)
	onEdge := make([][]lp.VarID, nEdges)
	for i := range paths {
		paths[i] = p.AddVar("f", 0, lp.Inf)
		p.SetObj(paths[i], 1+rng.Float64())
		k := 2 + rng.Intn(3)
		for e := 0; e < k; e++ {
			idx := rng.Intn(nEdges)
			onEdge[idx] = append(onEdge[idx], paths[i])
		}
	}
	for e, vs := range onEdge {
		if len(vs) == 0 {
			continue
		}
		expr := lp.NewExpr()
		for _, v := range vs {
			expr = expr.Add(v, 1)
		}
		p.AddConstraint("cap", expr, lp.LE, 20+float64(e%17))
	}
	return p
}

// runSparsePivotAblation is the headline perf claim, measured: a large
// sparse LP (capacitated-path shape, ~2% density) is solved by both
// engines. The answers and pivot counts must agree exactly (hard), and the
// wall time per pivot on the sparse engine must be at least 2x lower — the
// dense tableau pays O(rows*cols) per pivot where the revised simplex pays
// roughly O(nnz). The ratio is asserted with margin in-fixture rather than
// recorded, since wall time is machine-dependent.
func runSparsePivotAblation(seed int64, tr *obs.Tracer) (*runOutcome, error) {
	build := func() *lp.Problem { return buildAblationLP(seed) }
	type timed struct {
		sol  *lp.Solution
		secs float64
	}
	solve := func(engine lp.Engine) (timed, error) {
		p := build()
		start := time.Now()
		sol, err := p.SolveWith(lp.SolveOptions{Engine: engine})
		elapsed := time.Since(start)
		if err != nil {
			return timed{}, err
		}
		if sol.Status != lp.StatusOptimal {
			return timed{}, fmt.Errorf("pivot ablation (%v): status %v", engine, sol.Status)
		}
		return timed{sol: sol, secs: elapsed.Seconds()}, nil
	}
	dense, err := solve(lp.EngineDense)
	if err != nil {
		return nil, err
	}
	sparse, err := solve(lp.EngineSparse)
	if err != nil {
		return nil, err
	}
	if math.Abs(dense.sol.Objective-sparse.sol.Objective) > 1e-9*(1+math.Abs(dense.sol.Objective)) {
		return nil, fmt.Errorf("pivot ablation: objective %v (sparse) vs %v (dense)", sparse.sol.Objective, dense.sol.Objective)
	}
	if dense.sol.Iterations != sparse.sol.Iterations {
		return nil, fmt.Errorf("pivot ablation: pivots %d (sparse) vs %d (dense)", sparse.sol.Iterations, dense.sol.Iterations)
	}
	densePer := dense.secs / float64(dense.sol.Iterations)
	sparsePer := sparse.secs / float64(sparse.sol.Iterations)
	if sparsePer*2 > densePer {
		return nil, fmt.Errorf("pivot ablation: sparse %.3gs/pivot vs dense %.3gs/pivot — less than the promised 2x drop",
			sparsePer, densePer)
	}
	return &runOutcome{hard: []benchstore.Counter{
		{Name: "lp_iters", Value: int64(sparse.sol.Iterations)},
	}}, nil
}

// runSmoke is the CI gate fixture: the same search the workflow's smoke job
// drives through cmd/gapfinder (B4, dp, 4 pairs, demand seed = harness seed
// + 4 → 5 by default, threshold 5), run to proven optimality with warm
// starts on. Nodes and lp_iters from this fixture are the regression gate.
func runSmoke(seed int64, tr *obs.Tracer) (*runOutcome, error) {
	g := topology.B4()
	set := demand.RandomPairs(g, 4, rand.New(rand.NewSource(seed+4)))
	inst, err := mcf.NewInstance(g, set, 2)
	if err != nil {
		return nil, err
	}
	pr := &core.DPGapProblem{
		Inst: inst, Threshold: 5,
		Input: core.InputConstraints{MaxDemand: 100},
	}
	opts := milp.Options{DepthFirst: true, WarmStart: true, Workers: 1, Tracer: tr}
	res, err := pr.Solve(opts)
	if err != nil {
		return nil, err
	}
	if res.Solver.Status != milp.StatusOptimal {
		return nil, fmt.Errorf("smoke: status %v, want optimal", res.Solver.Status)
	}
	return &runOutcome{fingerprint: res.Solver.Fingerprint, hard: solverCounters(res)}, nil
}
