// Command gapvet is the project's multichecker: it runs the gapvet
// analyzer suite (detrand, walltime, floateq, maporder, tracecover,
// ctxflow) over the given package patterns and exits nonzero on any finding, optionally
// running stock `go vet` first so one invocation covers both layers.
//
// Usage:
//
//	go run ./cmd/gapvet ./...
//	go run ./cmd/gapvet -vet -only detrand,floateq ./internal/...
//
// Findings are silenced case by case with a //gapvet:allow <analyzer>
// <reason> comment on the offending line or the line above; the reason is
// mandatory. See DESIGN.md ("Static enforcement of the determinism
// contract") for each analyzer's rationale and the suppression policy.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"repro/internal/analysis"
)

func main() {
	var (
		only = flag.String("only", "", "comma-separated analyzer subset to run (default: all)")
		vet  = flag.Bool("vet", false, "also run `go vet` on the same patterns first")
		list = flag.Bool("list", false, "list analyzers and exit")
	)
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-11s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	analyzers := analysis.All()
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "gapvet: unknown analyzer %q (use -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	failed := false
	if *vet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			failed = true
		}
	}

	pkgs, err := analysis.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gapvet: %v\n", err)
		os.Exit(2)
	}
	diags, err := analysis.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gapvet: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if failed || len(diags) > 0 {
		os.Exit(1)
	}
}
