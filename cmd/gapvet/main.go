// Command gapvet is the project's multichecker: it runs the gapvet
// analyzer suite (detrand, walltime, floateq, maporder, tracecover,
// ctxflow, hotalloc, sharedstate, errcontract) over the given package
// patterns and exits nonzero on any finding, optionally running stock
// `go vet` first so one invocation covers both layers.
//
// Usage:
//
//	go run ./cmd/gapvet ./...
//	go run ./cmd/gapvet -vet -only detrand,floateq ./internal/...
//	go run ./cmd/gapvet -json ./...            # machine-readable findings
//	go run ./cmd/gapvet -stale-allows ./...    # also fail on dead suppressions
//
// Findings are silenced case by case with a //gapvet:allow <analyzer>
// <reason> comment on the offending line or the line above; the reason is
// mandatory. -stale-allows audits those comments: an allow that no longer
// silences any finding is reported (and fails the run), so suppressions
// cannot outlive the contract deviations they documented. It only composes
// with the full suite — under -only a stale allow is indistinguishable from
// one whose analyzer was deselected, so the combination is rejected.
//
// See DESIGN.md ("Static enforcement of the determinism contract") for
// each analyzer's rationale and the suppression policy.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"repro/internal/analysis"
)

func main() {
	var (
		only        = flag.String("only", "", "comma-separated analyzer subset to run (default: all)")
		vet         = flag.Bool("vet", false, "also run `go vet` on the same patterns first")
		list        = flag.Bool("list", false, "list analyzers and exit")
		jsonOut     = flag.Bool("json", false, "emit findings as a JSON array on stdout")
		staleAllows = flag.Bool("stale-allows", false, "also report //gapvet:allow comments that no longer silence any finding (full suite only)")
	)
	flag.Parse()

	if *list {
		listAnalyzers(os.Stdout)
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	analyzers := analysis.All()
	if *only != "" {
		if *staleAllows {
			fmt.Fprintln(os.Stderr, "gapvet: -stale-allows needs the full suite; it cannot be combined with -only")
			os.Exit(2)
		}
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "gapvet: unknown analyzer %q; available analyzers:\n", name)
				listAnalyzers(os.Stderr)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	failed := false
	if *vet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			failed = true
		}
	}

	pkgs, err := analysis.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gapvet: %v\n", err)
		os.Exit(2)
	}
	res, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "gapvet: %v\n", err)
		os.Exit(2)
	}
	diags := res.Findings
	if *staleAllows {
		diags = append(diags, res.Stale...)
	}
	if *jsonOut {
		if err := writeJSON(os.Stdout, diags); err != nil {
			fmt.Fprintf(os.Stderr, "gapvet: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if failed || len(diags) > 0 {
		os.Exit(1)
	}
}

func listAnalyzers(w *os.File) {
	for _, a := range analysis.All() {
		fmt.Fprintf(w, "%-11s %s\n", a.Name, a.Doc)
	}
}

// jsonDiag is the machine-readable finding shape CI consumes to emit
// GitHub error annotations. Paths are kept exactly as reported (absolute
// or relative to the working directory, per the loader).
type jsonDiag struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

func writeJSON(w *os.File, diags []analysis.Diagnostic) error {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{
			Analyzer: d.Analyzer,
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
