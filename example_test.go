package metaopt_test

import (
	"fmt"
	"math/rand"

	metaopt "repro"
)

// ExampleFindDPGap reproduces the paper's Figure 1: the worst-case gap
// between the optimal flow allocation and Demand Pinning on the 3-node
// example is exactly 100 flow units.
func ExampleFindDPGap() {
	g := metaopt.Figure1()
	set := metaopt.NewDemandSet([]metaopt.Pair{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 0, Dst: 2},
	})
	inst, err := metaopt.NewInstance(g, set, 2)
	if err != nil {
		panic(err)
	}
	res, err := metaopt.FindDPGap(inst, 50,
		metaopt.InputConstraints{MaxDemand: 100}, metaopt.SearchOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("gap=%.0f OPT=%.0f DP=%.0f status=%v\n",
		res.Gap, res.OptValue, res.HeurValue, res.Solver.Status)
	// Output: gap=100 OPT=250 DP=150 status=optimal
}

// ExampleSolveDemandPinning prices the heuristic directly on a hand-built
// traffic matrix.
func ExampleSolveDemandPinning() {
	g := metaopt.Figure1()
	set := metaopt.NewDemandSet([]metaopt.Pair{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 0, Dst: 2},
	})
	set.SetVolumes([]float64{100, 100, 50})
	inst, _ := metaopt.NewInstance(g, set, 2)

	opt, _ := metaopt.SolveMaxFlow(inst)
	dp, _ := metaopt.SolveDemandPinning(inst, 50)
	fmt.Printf("OPT=%.0f DP=%.0f\n", opt.Total, dp.Total)
	// Output: OPT=250 DP=150
}

// ExampleSolvePOP shows the randomized POP heuristic with a seeded
// generator (runs are reproducible).
func ExampleSolvePOP() {
	g := metaopt.Figure1()
	set := metaopt.NewDemandSet([]metaopt.Pair{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 0, Dst: 2},
	})
	set.SetVolumes([]float64{100, 100, 50})
	inst, _ := metaopt.NewInstance(g, set, 2)

	pop, err := metaopt.SolvePOP(inst, metaopt.POPOptions{
		Partitions: 1, // a single partition is exactly OPT
		Rng:        rand.New(rand.NewSource(1)),
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("POP(1)=%.0f\n", pop.Total)
	// Output: POP(1)=250
}

// ExampleDemandPinningFeasible demonstrates the Section-5 infeasibility:
// pinned demands can oversubscribe a shared link.
func ExampleDemandPinningFeasible() {
	g := metaopt.Figure1()
	set := metaopt.NewDemandSet([]metaopt.Pair{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 0, Dst: 2},
	})
	// Both 0->1 (60) and 0->2 (60, via 0-1-2) are pinned at threshold 60
	// and share edge 0->1 with capacity 100.
	set.SetVolumes([]float64{60, 0, 60})
	inst, _ := metaopt.NewInstance(g, set, 2)
	fmt.Println(metaopt.DemandPinningFeasible(inst, 60))
	fmt.Println(metaopt.DemandPinningFeasible(inst, 50)) // nothing pinned
	// Output:
	// false
	// true
}
