package mcf

import (
	"fmt"

	"repro/internal/lp"
)

// Pinned reports which demands Demand Pinning routes on their shortest path:
// those with volume at or below the threshold (the paper pins "demands at or
// below a configuration threshold T_d").
func Pinned(inst *Instance, threshold float64) []bool {
	pinned := make([]bool, inst.Demands.Len())
	for k := range pinned {
		pinned[k] = inst.Demands.Volume(k) <= threshold
	}
	return pinned
}

// DemandPinningFeasible reports whether pinning is capacity-feasible: the
// pinned demands, forced onto their shortest paths, must not oversubscribe
// any link. The paper's Section 5 notes DP has genuinely infeasible inputs.
func DemandPinningFeasible(inst *Instance, threshold float64) bool {
	_, ok := residualAfterPinning(inst, threshold)
	return ok
}

// residualAfterPinning subtracts pinned flows from edge capacities.
func residualAfterPinning(inst *Instance, threshold float64) ([]float64, bool) {
	residual := make([]float64, inst.G.NumEdges())
	for e := range residual {
		residual[e] = inst.G.Edge(e).Capacity
	}
	const tol = 1e-9
	for k := 0; k < inst.Demands.Len(); k++ {
		v := inst.Demands.Volume(k)
		if v > threshold {
			continue
		}
		for _, e := range inst.ShortestPath(k).Edges {
			residual[e] -= v
			if residual[e] < -tol {
				return nil, false
			}
			if residual[e] < 0 {
				residual[e] = 0
			}
		}
	}
	return residual, true
}

// SolveDemandPinning solves DemPinMaxFlow (5): demands at or below the
// threshold are fixed to their shortest path; the remaining demands are
// routed jointly optimally over the residual capacities. Returns
// ErrInfeasible when the pinned flows alone exceed some link capacity.
func SolveDemandPinning(inst *Instance, threshold float64) (*Flow, error) {
	residual, ok := residualAfterPinning(inst, threshold)
	if !ok {
		return nil, fmt.Errorf("%w: pinned demands oversubscribe a link", ErrInfeasible)
	}
	out := newFlow(inst)
	vols := inst.Demands.Volumes()
	pinned := Pinned(inst, threshold)
	for k, isPinned := range pinned {
		if isPinned {
			out.add(k, 0, vols[k])
		}
	}

	// Phase 2: joint optimization of the unpinned demands — the speedup the
	// heuristic exists for, since this LP has far fewer demand variables.
	anyFree := false
	for k := range pinned {
		if !pinned[k] {
			anyFree = true
			break
		}
	}
	if !anyFree {
		return out, nil
	}
	p := lp.NewProblem("dp-phase2", lp.Maximize)
	varOf := make(map[[2]int]lp.VarID)
	for k, ps := range inst.Paths {
		if pinned[k] {
			continue
		}
		e := lp.NewExpr()
		for pi := range ps {
			v := p.AddVar(fmt.Sprintf("f%d.%d", k, pi), 0, lp.Inf)
			p.SetObj(v, 1)
			varOf[[2]int{k, pi}] = v
			e = e.Add(v, 1)
		}
		p.AddConstraint(fmt.Sprintf("dem%d", k), e, lp.LE, vols[k])
	}
	for e := 0; e < inst.G.NumEdges(); e++ {
		expr := lp.NewExpr()
		for k, ps := range inst.Paths {
			if pinned[k] {
				continue
			}
			for pi, path := range ps {
				if path.Contains(e) {
					expr = expr.Add(varOf[[2]int{k, pi}], 1)
				}
			}
		}
		if len(expr.Terms) > 0 {
			p.AddConstraint(fmt.Sprintf("cap%d", e), expr, lp.LE, residual[e])
		}
	}
	sol, err := p.SolveWith(oneShotOpts())
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.StatusOptimal {
		return nil, fmt.Errorf("mcf: DP phase-2 LP %v", sol.Status)
	}
	// Extract in demand/path order: map iteration order would perturb the
	// floating-point summation of Total between runs, which breaks the
	// determinism the seeded black-box searches rely on.
	for k, ps := range inst.Paths {
		if pinned[k] {
			continue
		}
		for pi := range ps {
			out.add(k, pi, sol.X[varOf[[2]int{k, pi}]])
		}
	}
	return out, nil
}
