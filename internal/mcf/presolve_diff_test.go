package mcf

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/demand"
	"repro/internal/kkt"
	"repro/internal/lp"
	"repro/internal/topology"
)

// objectiveAt evaluates the problem's objective at x.
func objectiveAt(p *lp.Problem, x []float64) float64 {
	obj := 0.0
	for v := 0; v < p.NumVars(); v++ {
		obj += p.Obj(lp.VarID(v)) * x[v]
	}
	return obj
}

// checkFeasible asserts x satisfies every variable bound and constraint of
// p within a small tolerance.
func checkFeasible(t *testing.T, p *lp.Problem, x []float64) {
	t.Helper()
	const tol = 1e-7
	for v := 0; v < p.NumVars(); v++ {
		lo, hi := p.Bounds(lp.VarID(v))
		if x[v] < lo-tol || x[v] > hi+tol {
			t.Errorf("X[%d] = %v outside bounds [%v, %v]", v, x[v], lo, hi)
		}
	}
	for c := 0; c < p.NumConstraints(); c++ {
		expr, rel, rhs := p.Constraint(lp.ConID(c))
		lhs := 0.0
		for _, tm := range expr.Terms {
			lhs += tm.Coef * x[tm.Var]
		}
		scale := 1 + math.Abs(rhs)
		switch rel {
		case lp.LE:
			if lhs > rhs+tol*scale {
				t.Errorf("constraint %s violated: %v > %v", p.ConName(lp.ConID(c)), lhs, rhs)
			}
		case lp.GE:
			if lhs < rhs-tol*scale {
				t.Errorf("constraint %s violated: %v < %v", p.ConName(lp.ConID(c)), lhs, rhs)
			}
		default:
			if math.Abs(lhs-rhs) > tol*scale {
				t.Errorf("constraint %s violated: %v != %v", p.ConName(lp.ConID(c)), lhs, rhs)
			}
		}
	}
}

// randomInstance draws a seeded random demand support with volumes in
// (0, 100] — the same input class the gap searches explore.
func randomInstance(t *testing.T, g *topology.Graph, pairs int, paths int, seed int64) *Instance {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	set := demand.RandomPairs(g, pairs, rng)
	vols := make([]float64, set.Len())
	for k := range vols {
		vols[k] = float64(1+rng.Intn(100)) * (0.5 + 0.5*rng.Float64())
	}
	set.SetVolumes(vols)
	inst, err := NewInstance(g, set, paths)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// dpPhase2Problem reconstructs the DP phase-2 residual LP exactly as
// SolveDemandPinning builds it, so the differential can cover that shape
// without exporting the builder.
func dpPhase2Problem(t *testing.T, inst *Instance, threshold float64) *lp.Problem {
	t.Helper()
	residual, ok := residualAfterPinning(inst, threshold)
	if !ok {
		t.Fatalf("pinning infeasible at threshold %g", threshold)
	}
	pinned := Pinned(inst, threshold)
	vols := inst.Demands.Volumes()
	p := lp.NewProblem("dp-phase2", lp.Maximize)
	varOf := make(map[[2]int]lp.VarID)
	for k, ps := range inst.Paths {
		if pinned[k] {
			continue
		}
		e := lp.NewExpr()
		for pi := range ps {
			v := p.AddVar(fmt.Sprintf("f%d.%d", k, pi), 0, lp.Inf)
			p.SetObj(v, 1)
			varOf[[2]int{k, pi}] = v
			e = e.Add(v, 1)
		}
		p.AddConstraint(fmt.Sprintf("dem%d", k), e, lp.LE, vols[k])
	}
	for e := 0; e < inst.G.NumEdges(); e++ {
		expr := lp.NewExpr()
		for k, ps := range inst.Paths {
			if pinned[k] {
				continue
			}
			for pi, path := range ps {
				if path.Contains(e) {
					expr = expr.Add(varOf[[2]int{k, pi}], 1)
				}
			}
		}
		if len(expr.Terms) > 0 {
			p.AddConstraint(fmt.Sprintf("cap%d", e), expr, lp.LE, residual[e])
		}
	}
	return p
}

// TestOneShotPresolveDifferential seals the presolve wiring of the
// heuristic-side one-shot LPs (oneShotOpts): on every LP shape this package
// solves cold — the OPT/tesolve inner max-flow, the POP per-partition inner
// with fractional capacities and a restricted support, and the DP phase-2
// residual LP — a presolved solve must agree with the unpresolved reference
// on everything the gap pipeline consumes: the status, the objective value,
// a primal X that is feasible and attains that value, and duals that
// certify it (strong duality). Coordinatewise X equality is deliberately
// NOT asserted: these flow LPs have degenerate optimal faces, and
// lp.SolveOptions.Presolve documents that a presolved solve may return a
// different vertex of the same face — which is exactly why presolve stays
// out of the branch-and-bound path (DESIGN.md) and is confined to these
// one-shot value queries, whose downstream consumers (gap values, polish
// pricing, duality certificates) read only the quantities pinned here.
func TestOneShotPresolveDifferential(t *testing.T) {
	type namedLP struct {
		name string
		p    *lp.Problem
		xs   []lp.VarID
	}
	var corpus []namedLP
	addInner := func(name string, in *kkt.InnerLP) {
		t.Helper()
		p, xs, err := innerProblem(in)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		corpus = append(corpus, namedLP{name: name, p: p, xs: xs})
	}

	fig1 := figure1Instance(t)
	vols := fig1.Demands.Volumes()
	addInner("figure1-opt", BuildInnerMaxFlow("opt", fig1, func(k int) kkt.AffineRHS {
		return kkt.Constant(vols[k])
	}, 1, nil, 0).LP)

	b4 := randomInstance(t, topology.B4(), 8, 2, 11)
	b4vols := b4.Demands.Volumes()
	addInner("b4-opt", BuildInnerMaxFlow("opt", b4, func(k int) kkt.AffineRHS {
		return kkt.Constant(b4vols[k])
	}, 1, nil, 0).LP)

	// POP partition shape: halved capacities, only half the demands active —
	// presolve's fixed/empty-column elimination actually fires here.
	swan := randomInstance(t, topology.SWAN(), 10, 3, 7)
	swanVols := swan.Demands.Volumes()
	addInner("swan-pop-partition", BuildInnerMaxFlow("pop0", swan, func(k int) kkt.AffineRHS {
		return kkt.Constant(swanVols[k])
	}, 0.5, func(k int) bool { return k%2 == 0 }, 0).LP)

	abi := randomInstance(t, topology.Abilene(), 6, 2, 3)
	abiVols := abi.Demands.Volumes()
	addInner("abilene-opt", BuildInnerMaxFlow("opt", abi, func(k int) kkt.AffineRHS {
		return kkt.Constant(abiVols[k])
	}, 1, nil, 0).LP)

	corpus = append(corpus, namedLP{name: "b4-dp-phase2", p: dpPhase2Problem(t, b4, 30)})

	for _, engine := range []lp.Engine{lp.EngineDense, lp.EngineSparse} {
		for _, tc := range corpus {
			t.Run(fmt.Sprintf("%s/%s", tc.name, engine), func(t *testing.T) {
				ref, err := tc.p.SolveWith(lp.SolveOptions{Engine: engine})
				if err != nil {
					t.Fatal(err)
				}
				pre, err := tc.p.SolveWith(lp.SolveOptions{Engine: engine, Presolve: true})
				if err != nil {
					t.Fatal(err)
				}
				if pre.Status != ref.Status {
					t.Fatalf("status with presolve %v, without %v", pre.Status, ref.Status)
				}
				if ref.Status != lp.StatusOptimal {
					t.Fatalf("reference solve not optimal: %v", ref.Status)
				}
				objTol := 1e-9 * (1 + math.Abs(ref.Objective))
				if math.Abs(pre.Objective-ref.Objective) > objTol {
					t.Errorf("objective with presolve %v, without %v (delta %g)",
						pre.Objective, ref.Objective, pre.Objective-ref.Objective)
				}
				if len(pre.X) != len(ref.X) {
					t.Fatalf("X length with presolve %d, without %d", len(pre.X), len(ref.X))
				}
				// The presolved X must be a genuine optimum of the ORIGINAL
				// problem: feasible against every constraint and bound, and
				// attaining the reference objective value.
				checkFeasible(t, tc.p, pre.X)
				if got := objectiveAt(tc.p, pre.X); math.Abs(got-ref.Objective) > 1e-6*(1+math.Abs(ref.Objective)) {
					t.Errorf("objective evaluated at presolved X = %v, want %v", got, ref.Objective)
				}
				// Both dual vectors must certify their claimed objective by
				// strong duality. Coordinatewise equality is not required:
				// on a degenerate face the optimal multipliers are not
				// unique, and presolve may legitimately return a different
				// certifying vector.
				if len(pre.Dual) != len(ref.Dual) {
					t.Fatalf("dual length with presolve %d, without %d", len(pre.Dual), len(ref.Dual))
				}
				for _, c := range []struct {
					name string
					sol  *lp.Solution
				}{{"presolved", pre}, {"reference", ref}} {
					name, sol := c.name, c.sol
					dobj, err := tc.p.DualObjective(sol)
					if err != nil {
						t.Fatalf("%s duals do not certify: %v", name, err)
					}
					if math.Abs(dobj-sol.Objective) > 1e-6*(1+math.Abs(sol.Objective)) {
						t.Errorf("%s dual objective %v, primal %v", name, dobj, sol.Objective)
					}
				}
			})
		}
	}
}
