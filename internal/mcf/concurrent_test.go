package mcf

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/demand"
	"repro/internal/topology"
)

func TestMaxConcurrentLine(t *testing.T) {
	// Two demands share one 100-capacity link: d0 = 100, d1 = 100.
	// Max concurrent lambda = 0.5 (each gets 50).
	g := topology.Line(2)
	set := demand.NewSet([]demand.Pair{{Src: 0, Dst: 1}})
	set.SetVolumes([]float64{200})
	inst, err := NewInstance(g, set, 1)
	if err != nil {
		t.Fatal(err)
	}
	f, lam, err := SolveMaxConcurrent(inst)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(lam, 0.5) || !almost(f.Total, 100) {
		t.Fatalf("lambda=%v total=%v, want 0.5/100", lam, f.Total)
	}
}

func TestMaxConcurrentFullySatisfiable(t *testing.T) {
	g := topology.Figure1()
	set := demand.NewSet([]demand.Pair{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 0, Dst: 2}})
	set.SetVolumes([]float64{50, 50, 25})
	inst, err := NewInstance(g, set, 2)
	if err != nil {
		t.Fatal(err)
	}
	_, lam, err := SolveMaxConcurrent(inst)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(lam, 1) {
		t.Fatalf("lambda=%v, want 1 (demands fit)", lam)
	}
}

func TestMaxConcurrentZeroVolumesIgnored(t *testing.T) {
	g := topology.Figure1()
	set := demand.NewSet([]demand.Pair{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 0, Dst: 2}})
	set.SetVolumes([]float64{0, 100, 0})
	inst, err := NewInstance(g, set, 2)
	if err != nil {
		t.Fatal(err)
	}
	f, lam, err := SolveMaxConcurrent(inst)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(lam, 1) || !almost(f.Total, 100) {
		t.Fatalf("lambda=%v total=%v", lam, f.Total)
	}
}

func TestDPConcurrentFigure1(t *testing.T) {
	// Figure-1 demands: pinning 0->2 (50) on the 2-hop path leaves 50/50
	// residual for the two big demands => lambda = 0.5. The concurrent OPT
	// achieves lambda = 1 using the direct link.
	inst := figure1Instance(t)
	_, lamOpt, err := SolveMaxConcurrent(inst)
	if err != nil {
		t.Fatal(err)
	}
	dpFlow, lamDP, err := SolveDemandPinningConcurrent(inst, 50)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(lamOpt, 1) {
		t.Fatalf("OPT lambda=%v, want 1", lamOpt)
	}
	if !almost(lamDP, 0.5) {
		t.Fatalf("DP lambda=%v, want 0.5", lamDP)
	}
	if err := dpFlow.Check(inst, 1e-5); err != nil {
		t.Fatal(err)
	}
}

func TestDPConcurrentInfeasible(t *testing.T) {
	g := topology.Line(2)
	set := demand.NewSet([]demand.Pair{{Src: 0, Dst: 1}})
	set.SetVolumes([]float64{150})
	inst, err := NewInstance(g, set, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := SolveDemandPinningConcurrent(inst, 200); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err=%v, want ErrInfeasible", err)
	}
}

func TestDPConcurrentAllPinned(t *testing.T) {
	g := topology.Line(3)
	set := demand.NewSet([]demand.Pair{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}})
	set.SetVolumes([]float64{30, 30})
	inst, err := NewInstance(g, set, 1)
	if err != nil {
		t.Fatal(err)
	}
	f, lam, err := SolveDemandPinningConcurrent(inst, 30)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(lam, 1) || !almost(f.Total, 60) {
		t.Fatalf("lambda=%v total=%v", lam, f.Total)
	}
}

// TestQuickConcurrentDominance: OPT's lambda dominates DP's lambda, and both
// flows are feasible, across random instances.
func TestQuickConcurrentDominance(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := topology.Circle(5+rng.Intn(3), 1)
		set := demand.AllPairs(g)
		set.Uniform(rng, 1, 60)
		inst, err := NewInstance(g, set, 2)
		if err != nil {
			return false
		}
		fOpt, lamOpt, err := SolveMaxConcurrent(inst)
		if err != nil || fOpt.Check(inst, 1e-5) != nil {
			return false
		}
		th := rng.Float64() * 20
		if !DemandPinningFeasible(inst, th) {
			return true
		}
		fDP, lamDP, err := SolveDemandPinningConcurrent(inst, th)
		if err != nil || fDP.Check(inst, 1e-5) != nil {
			t.Logf("seed %d: dp err=%v", seed, err)
			return false
		}
		if lamDP > lamOpt+1e-5 {
			t.Logf("seed %d: DP lambda %v beats OPT %v", seed, lamDP, lamOpt)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
