package mcf

import (
	"errors"
	"math"
	"testing"

	"repro/internal/demand"
	"repro/internal/topology"
)

// badCapGraph builds a 2-node graph whose single edge capacity is patched
// to cap after construction (AddEdge itself rejects invalid capacities, so
// the patch goes through WithCapacities' unexported sibling: direct slice
// surgery on a copy).
func badCapGraph(cap float64) *topology.Graph {
	g := topology.New("bad", 2)
	g.AddEdge(0, 1, 1)
	g.Edges()[0].Capacity = cap
	return g
}

func TestNewInstanceRejectsNaNCapacity(t *testing.T) {
	g := badCapGraph(math.NaN())
	set := demand.NewSet([]demand.Pair{{Src: 0, Dst: 1}})
	var ve *ValidationError
	if _, err := NewInstance(g, set, 1); !errors.As(err, &ve) {
		t.Fatalf("NaN capacity accepted: %v", err)
	} else if ve.What != "edge capacity" || ve.Index != 0 {
		t.Fatalf("wrong rejection: %+v", ve)
	}
}

func TestNewInstanceRejectsInfCapacity(t *testing.T) {
	g := badCapGraph(math.Inf(1))
	set := demand.NewSet([]demand.Pair{{Src: 0, Dst: 1}})
	var ve *ValidationError
	if _, err := NewInstance(g, set, 1); !errors.As(err, &ve) {
		t.Fatalf("+Inf capacity accepted: %v", err)
	}
}

func TestNewInstanceRejectsNegativeCapacity(t *testing.T) {
	g := badCapGraph(-3)
	set := demand.NewSet([]demand.Pair{{Src: 0, Dst: 1}})
	var ve *ValidationError
	if _, err := NewInstance(g, set, 1); !errors.As(err, &ve) {
		t.Fatalf("negative capacity accepted: %v", err)
	} else if ve.Value != -3 {
		t.Fatalf("wrong value reported: %+v", ve)
	}
}

// badVolumeSet bypasses the demand setters' own validation by aliasing the
// volume slice Volumes() exposes.
func badVolumeSet(v float64) *demand.Set {
	set := demand.NewSet([]demand.Pair{{Src: 0, Dst: 1}})
	set.Volumes()[0] = v
	return set
}

func TestNewInstanceRejectsNaNVolume(t *testing.T) {
	g := topology.New("g", 2)
	g.AddEdge(0, 1, 100)
	var ve *ValidationError
	if _, err := NewInstance(g, badVolumeSet(math.NaN()), 1); !errors.As(err, &ve) {
		t.Fatalf("NaN volume accepted: %v", err)
	} else if ve.What != "demand volume" || ve.Index != 0 {
		t.Fatalf("wrong rejection: %+v", ve)
	}
}

func TestNewInstanceRejectsInfVolume(t *testing.T) {
	g := topology.New("g", 2)
	g.AddEdge(0, 1, 100)
	var ve *ValidationError
	if _, err := NewInstance(g, badVolumeSet(math.Inf(1)), 1); !errors.As(err, &ve) {
		t.Fatalf("+Inf volume accepted: %v", err)
	}
}

func TestNewInstanceRejectsNegativeVolume(t *testing.T) {
	g := topology.New("g", 2)
	g.AddEdge(0, 1, 100)
	var ve *ValidationError
	if _, err := NewInstance(g, badVolumeSet(-1), 1); !errors.As(err, &ve) {
		t.Fatalf("negative volume accepted: %v", err)
	}
}

func TestNewInstanceAcceptsValidInputs(t *testing.T) {
	g := topology.New("g", 2)
	g.AddEdge(0, 1, 100)
	set := demand.NewSet([]demand.Pair{{Src: 0, Dst: 1}})
	set.SetVolume(0, 42)
	if _, err := NewInstance(g, set, 1); err != nil {
		t.Fatalf("valid instance rejected: %v", err)
	}
}

func TestValidationErrorMessage(t *testing.T) {
	e := &ValidationError{What: "edge capacity", Index: 3, Value: math.NaN()}
	if e.Error() == "" {
		t.Fatal("empty message")
	}
}
