package mcf

import (
	"fmt"

	"repro/internal/lp"
)

// Max-concurrent-flow objective: maximize the fraction lambda such that
// every demand simultaneously receives at least lambda of its volume. This
// is the classic fairness-flavored TE objective the paper's Section 2 lists
// alongside total flow ("max-min fairness") — included to show the library
// generalizes across inner objectives.
//
// Note: the gap finder's white-box rewrite needs inner constraint
// coefficients that are constant with respect to the outer variables; the
// concurrent objective's rows couple lambda with the demand volumes
// (lambda * d_k), so adversarial inputs against it are searched with the
// black-box methods (blackbox.GapFunc composes directly).

// SolveMaxConcurrent maximizes lambda subject to each demand k receiving
// flow >= lambda * d_k within capacities. Demands with zero volume are
// ignored. Returns the flow at the optimal lambda and lambda itself;
// lambda is capped at 1 (serving more than the demand has no value).
func SolveMaxConcurrent(inst *Instance) (*Flow, float64, error) {
	p := lp.NewProblem("concurrent", lp.Maximize)
	lam := p.AddVar("lambda", 0, 1)
	p.SetObj(lam, 1)
	varOf := make(map[[2]int]lp.VarID)
	vols := inst.Demands.Volumes()
	for k, ps := range inst.Paths {
		if vols[k] == 0 {
			continue
		}
		e := lp.NewExpr().Add(lam, -vols[k])
		for pi := range ps {
			v := p.AddVar(fmt.Sprintf("f%d.%d", k, pi), 0, lp.Inf)
			varOf[[2]int{k, pi}] = v
			e = e.Add(v, 1)
		}
		p.AddConstraint(fmt.Sprintf("dem%d", k), e, lp.GE, 0)
		// Do not overserve: flow <= volume.
		cap := lp.NewExpr()
		for pi := range ps {
			cap = cap.Add(varOf[[2]int{k, pi}], 1)
		}
		p.AddConstraint(fmt.Sprintf("vol%d", k), cap, lp.LE, vols[k])
	}
	for e := 0; e < inst.G.NumEdges(); e++ {
		expr := lp.NewExpr()
		for k, ps := range inst.Paths {
			if vols[k] == 0 {
				continue
			}
			for pi, path := range ps {
				if path.Contains(e) {
					expr = expr.Add(varOf[[2]int{k, pi}], 1)
				}
			}
		}
		if len(expr.Terms) > 0 {
			p.AddConstraint(fmt.Sprintf("cap%d", e), expr, lp.LE, inst.G.Edge(e).Capacity)
		}
	}
	sol, err := p.SolveWith(oneShotOpts())
	if err != nil {
		return nil, 0, err
	}
	if sol.Status != lp.StatusOptimal {
		return nil, 0, fmt.Errorf("mcf: concurrent LP %v", sol.Status)
	}
	out := newFlow(inst)
	for k, ps := range inst.Paths {
		if vols[k] == 0 {
			continue
		}
		for pi := range ps {
			out.add(k, pi, sol.X[varOf[[2]int{k, pi}]])
		}
	}
	return out, sol.X[lam], nil
}

// SolveDemandPinningConcurrent runs DP with the concurrent objective:
// demands at or below the threshold are pinned to their shortest paths
// (their lambda is therefore 1 if they fit), and the remaining demands
// maximize the common fraction lambda on the residual capacities. Returns
// ErrInfeasible when the pinned flows oversubscribe a link.
func SolveDemandPinningConcurrent(inst *Instance, threshold float64) (*Flow, float64, error) {
	residual, ok := residualAfterPinning(inst, threshold)
	if !ok {
		return nil, 0, fmt.Errorf("%w: pinned demands oversubscribe a link", ErrInfeasible)
	}
	out := newFlow(inst)
	vols := inst.Demands.Volumes()
	pinned := Pinned(inst, threshold)
	anyFree := false
	for k, isPinned := range pinned {
		if isPinned {
			out.add(k, 0, vols[k])
		} else if vols[k] > 0 {
			anyFree = true
		}
	}
	if !anyFree {
		return out, 1, nil
	}

	p := lp.NewProblem("dp-concurrent", lp.Maximize)
	lam := p.AddVar("lambda", 0, 1)
	p.SetObj(lam, 1)
	varOf := make(map[[2]int]lp.VarID)
	for k, ps := range inst.Paths {
		if pinned[k] || vols[k] == 0 {
			continue
		}
		e := lp.NewExpr().Add(lam, -vols[k])
		cap := lp.NewExpr()
		for pi := range ps {
			v := p.AddVar(fmt.Sprintf("f%d.%d", k, pi), 0, lp.Inf)
			varOf[[2]int{k, pi}] = v
			e = e.Add(v, 1)
			cap = cap.Add(v, 1)
		}
		p.AddConstraint(fmt.Sprintf("dem%d", k), e, lp.GE, 0)
		p.AddConstraint(fmt.Sprintf("vol%d", k), cap, lp.LE, vols[k])
	}
	for e := 0; e < inst.G.NumEdges(); e++ {
		expr := lp.NewExpr()
		for k, ps := range inst.Paths {
			if pinned[k] || vols[k] == 0 {
				continue
			}
			for pi, path := range ps {
				if path.Contains(e) {
					expr = expr.Add(varOf[[2]int{k, pi}], 1)
				}
			}
		}
		if len(expr.Terms) > 0 {
			p.AddConstraint(fmt.Sprintf("cap%d", e), expr, lp.LE, residual[e])
		}
	}
	sol, err := p.SolveWith(oneShotOpts())
	if err != nil {
		return nil, 0, err
	}
	if sol.Status != lp.StatusOptimal {
		return nil, 0, fmt.Errorf("mcf: DP concurrent LP %v", sol.Status)
	}
	for k, ps := range inst.Paths {
		if pinned[k] || vols[k] == 0 {
			continue
		}
		for pi := range ps {
			out.add(k, pi, sol.X[varOf[[2]int{k, pi}]])
		}
	}
	return out, sol.X[lam], nil
}
