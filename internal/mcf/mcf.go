// Package mcf implements the multi-commodity-flow traffic-engineering
// formulations of the paper's Section 2: the feasible-flow polytope (2),
// the optimal total-flow objective OptMaxFlow (3), the Demand Pinning
// heuristic (4)-(5) in production use, and the POP heuristic (6) with the
// client-splitting extension of Appendix A.
//
// Each formulation comes in two forms: a direct solver (used on its own and
// by the black-box searches) and an inner-LP builder whose right-hand sides
// may reference outer variables (used by the gap finder's KKT rewrite).
package mcf

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/demand"
	"repro/internal/kkt"
	"repro/internal/lp"
	"repro/internal/topology"
)

// ErrInfeasible is returned when a heuristic admits no feasible flow for
// the given demands — e.g. Demand Pinning when pinned demands oversubscribe
// a link on their shared shortest path (the paper's Section 5 case).
var ErrInfeasible = errors.New("mcf: infeasible")

// ValidationError reports an input value a TE instance cannot be built
// from: a NaN, infinite or negative edge capacity or demand volume. A NaN
// in particular would silently poison every downstream LP (NaN satisfies no
// comparison, so the simplex method's ratio tests misbehave instead of
// failing), which is why construction is where it must be stopped.
type ValidationError struct {
	What  string // "edge capacity" or "demand volume"
	Index int    // edge id or demand index
	Value float64
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("mcf: invalid %s %g at index %d (must be finite and >= 0)", e.What, e.Value, e.Index)
}

// validateInputs rejects NaN/Inf/negative capacities and volumes at
// instance-construction time.
func validateInputs(g *topology.Graph, set *demand.Set) error {
	for _, e := range g.Edges() {
		if math.IsNaN(e.Capacity) || math.IsInf(e.Capacity, 0) || e.Capacity < 0 {
			return &ValidationError{What: "edge capacity", Index: e.ID, Value: e.Capacity}
		}
	}
	for k := 0; k < set.Len(); k++ {
		if v := set.Volume(k); math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return &ValidationError{What: "demand volume", Index: k, Value: v}
		}
	}
	return nil
}

// Instance is a TE problem instance: a topology, a demand set, and the
// pre-chosen paths per demand (the paper defaults to 2 paths per pair).
// Paths[k][0] is always the weight-shortest path, the one Demand Pinning
// pins to.
type Instance struct {
	G       *topology.Graph
	Demands *demand.Set
	Paths   [][]topology.Path
}

// NewInstance computes up to numPaths shortest paths for every demand pair.
// It fails if some pair has no path at all, and rejects NaN, infinite or
// negative capacities and volumes with a typed *ValidationError.
func NewInstance(g *topology.Graph, set *demand.Set, numPaths int) (*Instance, error) {
	if numPaths < 1 {
		return nil, fmt.Errorf("mcf: numPaths %d < 1", numPaths)
	}
	if err := validateInputs(g, set); err != nil {
		return nil, err
	}
	inst := &Instance{G: g, Demands: set, Paths: make([][]topology.Path, set.Len())}
	for k := 0; k < set.Len(); k++ {
		pr := set.Pair(k)
		paths := g.KShortestPaths(pr.Src, pr.Dst, numPaths)
		if len(paths) == 0 {
			return nil, fmt.Errorf("mcf: no path for demand %v", pr)
		}
		inst.Paths[k] = paths
	}
	return inst, nil
}

// NumFlowVars returns the total number of per-path flow variables.
func (inst *Instance) NumFlowVars() int {
	n := 0
	for _, ps := range inst.Paths {
		n += len(ps)
	}
	return n
}

// ShortestPath returns the pinning path of demand k.
func (inst *Instance) ShortestPath(k int) topology.Path { return inst.Paths[k][0] }

// WithVolumes returns a shallow copy of the instance carrying different
// demand volumes over the same pairs and paths.
func (inst *Instance) WithVolumes(v []float64) *Instance {
	return &Instance{G: inst.G, Demands: inst.Demands.WithVolumes(v), Paths: inst.Paths}
}

// Flow is a flow assignment for an instance.
type Flow struct {
	// PerPath[k][p] is the flow of demand k on its p-th path.
	PerPath [][]float64
	// PerDemand[k] is the total flow carried for demand k.
	PerDemand []float64
	// Total is the total carried flow — the OptMaxFlow objective.
	Total float64
}

func newFlow(inst *Instance) *Flow {
	f := &Flow{
		PerPath:   make([][]float64, len(inst.Paths)),
		PerDemand: make([]float64, len(inst.Paths)),
	}
	for k, ps := range inst.Paths {
		f.PerPath[k] = make([]float64, len(ps))
	}
	return f
}

// add accumulates flow x for demand k on path p.
func (f *Flow) add(k, p int, x float64) {
	f.PerPath[k][p] += x
	f.PerDemand[k] += x
	f.Total += x
}

// EdgeLoads sums per-edge utilization of the flow.
func (f *Flow) EdgeLoads(inst *Instance) []float64 {
	loads := make([]float64, inst.G.NumEdges())
	for k, ps := range inst.Paths {
		for p, path := range ps {
			x := f.PerPath[k][p]
			if x == 0 {
				continue
			}
			for _, e := range path.Edges {
				loads[e] += x
			}
		}
	}
	return loads
}

// Check verifies demand and capacity constraints within tolerance tol,
// returning a descriptive error for the first violation.
func (f *Flow) Check(inst *Instance, tol float64) error {
	for k := range inst.Paths {
		if f.PerDemand[k] > inst.Demands.Volume(k)+tol {
			return fmt.Errorf("mcf: demand %d overserved: %g > %g",
				k, f.PerDemand[k], inst.Demands.Volume(k))
		}
		for p, x := range f.PerPath[k] {
			if x < -tol {
				return fmt.Errorf("mcf: negative flow %g on demand %d path %d", x, k, p)
			}
		}
	}
	for e, load := range f.EdgeLoads(inst) {
		if load > inst.G.Edge(e).Capacity+tol {
			return fmt.Errorf("mcf: edge %d over capacity: %g > %g",
				e, load, inst.G.Edge(e).Capacity)
		}
	}
	return nil
}

// InnerFlow is an inner max-flow LP plus the bookkeeping to interpret its
// variables: Index[k][p] gives the inner variable carrying demand k's flow
// on path p, or -1 when demand k is excluded (POP partitions).
type InnerFlow struct {
	LP         *kkt.InnerLP
	Index      [][]int
	DemandRows []int // row index of "flow <= volume" per demand (-1 if excluded)
	CapRows    []int // row index of the capacity row per edge
}

// BuildInnerMaxFlow constructs the FeasibleFlow polytope (2) with objective
// (3) as an InnerLP. demandRHS gives each demand's volume as an affine
// function of outer variables (or a constant); capFrac scales every edge
// capacity (POP uses 1/partitions); include selects the demand subset (nil
// means all).
//
// demandUB, when positive, is a proved upper bound on every demand volume
// and activates the relaxation tighteners the meta optimization relies on:
// per-row dual bounds of 1 (sound here because this is a unit-objective
// max-flow with a 0/1 constraint matrix: capping an optimal dual at 1
// keeps it optimal and complementary), slack bounds (a demand row's slack
// is at most the demand bound, a capacity row's at most the capacity), and
// per-variable flow bounds for the McCormick cuts.
func BuildInnerMaxFlow(name string, inst *Instance, demandRHS func(k int) kkt.AffineRHS,
	capFrac float64, include func(k int) bool, demandUB float64) *InnerFlow {

	fl := &InnerFlow{
		LP:         &kkt.InnerLP{Name: name},
		Index:      make([][]int, len(inst.Paths)),
		DemandRows: make([]int, len(inst.Paths)),
		CapRows:    make([]int, inst.G.NumEdges()),
	}
	nv := 0
	for k, ps := range inst.Paths {
		fl.Index[k] = make([]int, len(ps))
		fl.DemandRows[k] = -1
		for p := range ps {
			fl.Index[k][p] = -1
			if include != nil && !include(k) {
				continue
			}
			fl.Index[k][p] = nv
			nv++
		}
	}
	fl.LP.NumVars = nv
	fl.LP.Obj = make([]float64, nv)
	if demandUB > 0 {
		fl.LP.VarUB = make([]float64, nv)
	}
	for k := range inst.Paths {
		if fl.Index[k][0] == -1 {
			continue
		}
		// Demand row: sum_p f_k^p <= d_k. Total-flow objective gets +1 on
		// every path variable.
		row := kkt.Row{Name: fmt.Sprintf("dem%d", k), Rel: lp.LE, RHS: demandRHS(k)}
		if demandUB > 0 {
			row.DualUB = 1
			row.SlackUB = demandUB
		}
		for p := range inst.Paths[k] {
			v := fl.Index[k][p]
			fl.LP.Obj[v] = 1
			row.Terms = append(row.Terms, kkt.InnerTerm{Var: v, Coef: 1})
			if demandUB > 0 {
				ub := demandUB
				for _, e := range inst.Paths[k][p].Edges {
					if c := inst.G.Edge(e).Capacity * capFrac; c < ub {
						ub = c
					}
				}
				fl.LP.VarUB[v] = ub
			}
		}
		fl.DemandRows[k] = fl.LP.AddRow(row)
	}
	for e := 0; e < inst.G.NumEdges(); e++ {
		row := kkt.Row{
			Name: fmt.Sprintf("cap%d", e),
			Rel:  lp.LE,
			RHS:  kkt.Constant(inst.G.Edge(e).Capacity * capFrac),
		}
		if demandUB > 0 {
			row.DualUB = 1
			row.SlackUB = inst.G.Edge(e).Capacity * capFrac
		}
		for k, ps := range inst.Paths {
			for p, path := range ps {
				if fl.Index[k][p] == -1 {
					continue
				}
				if path.Contains(e) {
					row.Terms = append(row.Terms, kkt.InnerTerm{Var: fl.Index[k][p], Coef: 1})
				}
			}
		}
		fl.CapRows[e] = fl.LP.AddRow(row)
	}
	return fl
}

// innerProblem lowers an InnerLP whose RHS entries are all constants into a
// standalone lp.Problem.
func innerProblem(in *kkt.InnerLP) (*lp.Problem, []lp.VarID, error) {
	p := lp.NewProblem(in.Name, lp.Maximize)
	xs := make([]lp.VarID, in.NumVars)
	for j := range xs {
		xs[j] = p.AddVar(fmt.Sprintf("x%d", j), 0, lp.Inf)
		p.SetObj(xs[j], in.Obj[j])
	}
	for _, r := range in.Rows {
		if len(r.RHS.Terms) != 0 {
			return nil, nil, fmt.Errorf("mcf: inner LP %s has outer terms; cannot solve directly", in.Name)
		}
		e := lp.NewExpr()
		for _, t := range r.Terms {
			e = e.Add(xs[t.Var], t.Coef)
		}
		p.AddConstraint(r.Name, e, r.Rel, r.RHS.Const)
	}
	return p, xs, nil
}

// oneShotOpts are the SolveOptions for every heuristic-side one-shot LP in
// this package (direct OPT/DP/POP pricing, the tesolve OPT inner LP, the
// concurrent-flow variants). Presolve is on: these LPs are solved cold,
// exactly once, with no warm-start basis to preserve, so the Andersen
// reduction is pure profit — unlike the B&B node relaxations, where
// DESIGN.md keeps presolve off because a presolved solve may report a
// different vertex of a degenerate optimal face and steer branching. The
// engine stays EngineAuto so the process default (CLI -engine flag,
// REPRO_LP_ENGINE) keeps applying. Sealed by TestOneShotPresolveDifferential.
func oneShotOpts() lp.SolveOptions { return lp.SolveOptions{Presolve: true} }

// solveInner solves an InnerLP whose RHS entries are all constants and
// returns the LP solution.
func solveInner(in *kkt.InnerLP) (*lp.Solution, []lp.VarID, error) {
	p, xs, err := innerProblem(in)
	if err != nil {
		return nil, nil, err
	}
	sol, err := p.SolveWith(oneShotOpts())
	if err != nil {
		return nil, nil, err
	}
	return sol, xs, nil
}

// WarmStartReport summarizes the warm-start self-check of WarmStartSelfCheck.
type WarmStartReport struct {
	ColdIters int     // pivots of the cold child solve
	WarmIters int     // pivots of the warm child solve (dual repair + cleanup)
	ObjDelta  float64 // warm child objective minus cold child objective
	WarmUsed  bool    // true when the warm path produced the answer (no fallback)
}

// WarmStartSelfCheck exercises the lp warm-start path on a real instance: it
// solves the OPT max-flow inner LP cold while capturing the terminal basis,
// then pins the largest path-flow variable at its optimal value — exactly the
// shape of a branch-and-bound child — and solves that child both cold and
// warm from the captured basis. The two children must agree; the report
// carries their pivot counts so a CLI can print the warm-start saving.
func WarmStartSelfCheck(inst *Instance) (*WarmStartReport, error) {
	vols := inst.Demands.Volumes()
	fl := BuildInnerMaxFlow("opt", inst, func(k int) kkt.AffineRHS {
		return kkt.Constant(vols[k])
	}, 1, nil, 0)
	p, xs, err := innerProblem(fl.LP)
	if err != nil {
		return nil, err
	}
	parent, err := p.SolveWith(lp.SolveOptions{CaptureBasis: true})
	if err != nil {
		return nil, err
	}
	if parent.Status != lp.StatusOptimal || parent.Basis == nil {
		return nil, fmt.Errorf("mcf: warm-start self-check parent LP %v", parent.Status)
	}
	pin := xs[0]
	for _, x := range xs[1:] {
		if parent.X[x] > parent.X[pin] {
			pin = x
		}
	}
	ov := map[lp.VarID][2]float64{pin: {parent.X[pin], parent.X[pin]}}
	cold, err := p.SolveWith(lp.SolveOptions{BoundOverride: ov})
	if err != nil {
		return nil, err
	}
	warm, err := p.SolveWith(lp.SolveOptions{BoundOverride: ov, WarmStart: parent.Basis})
	if err != nil {
		return nil, err
	}
	if warm.Status != cold.Status {
		return nil, fmt.Errorf("mcf: warm child status %v, cold %v", warm.Status, cold.Status)
	}
	return &WarmStartReport{
		ColdIters: cold.Iterations,
		WarmIters: warm.Iterations,
		ObjDelta:  warm.Objective - cold.Objective,
		WarmUsed:  warm.Warm,
	}, nil
}

// SolveMaxFlow solves OptMaxFlow (3): the optimal total flow.
func SolveMaxFlow(inst *Instance) (*Flow, error) {
	vols := inst.Demands.Volumes()
	fl := BuildInnerMaxFlow("opt", inst, func(k int) kkt.AffineRHS {
		return kkt.Constant(vols[k])
	}, 1, nil, 0)
	sol, xs, err := solveInner(fl.LP)
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.StatusOptimal {
		return nil, fmt.Errorf("mcf: max-flow LP %v", sol.Status)
	}
	out := newFlow(inst)
	for k, ps := range inst.Paths {
		for p := range ps {
			out.add(k, p, sol.X[xs[fl.Index[k][p]]])
		}
	}
	return out, nil
}
