package mcf

import (
	"fmt"
	"math/rand"

	"repro/internal/kkt"
	"repro/internal/lp"
)

// POPOptions configures the POP heuristic (6). Partitions is the number of
// subproblems c; Rng drives the uniform random assignment of clients to
// partitions (required, so runs are reproducible). ClientSplit enables the
// Appendix-A extension: demands at or above SplitThreshold are halved
// repeatedly (at most MaxSplits times per client) before partitioning,
// reducing the damage a single large demand can do to one partition.
type POPOptions struct {
	Partitions     int
	Rng            *rand.Rand
	ClientSplit    bool
	SplitThreshold float64
	MaxSplits      int
}

func (o *POPOptions) validate(inst *Instance) error {
	if o.Partitions < 1 {
		return fmt.Errorf("mcf: POP needs >= 1 partition, got %d", o.Partitions)
	}
	if o.Rng == nil {
		return fmt.Errorf("mcf: POP needs a seeded Rng for reproducible partitions")
	}
	if o.ClientSplit && (o.SplitThreshold <= 0 || o.MaxSplits < 1) {
		return fmt.Errorf("mcf: client splitting needs SplitThreshold > 0 and MaxSplits >= 1")
	}
	_ = inst
	return nil
}

// Client is a unit of partitioning: a demand index and the volume this
// client carries. Without client splitting every demand is one client.
type Client struct {
	Demand int
	Volume float64
}

// SplitClients implements Appendix A's client splitting: each demand whose
// volume is at or above threshold is halved until it drops below the
// threshold or has been split maxSplits times, yielding 2^s equal clients.
func SplitClients(vols []float64, threshold float64, maxSplits int) []Client {
	var out []Client
	for k, v := range vols {
		splits := 0
		vol := v
		for vol >= threshold && splits < maxSplits {
			vol /= 2
			splits++
		}
		n := 1 << splits
		for i := 0; i < n; i++ {
			out = append(out, Client{Demand: k, Volume: vol})
		}
	}
	return out
}

// PartitionClients assigns clients uniformly at random to partitions and
// returns, per partition, the aggregate volume per demand index (clients of
// the same demand landing in the same partition pool their volume — the
// flow LP cannot tell them apart).
func PartitionClients(clients []Client, partitions int, numDemands int, rng *rand.Rand) [][]float64 {
	assign := RandomAssignment(len(clients), partitions, rng)
	return AggregateAssigned(clients, assign, partitions, numDemands)
}

// RandomAssignment draws a uniform partition index for each of n clients —
// the randomness POP's guarantees hinge on. Separating the draw from the
// solve lets the gap finder optimize against fixed instantiations and then
// test the found input on fresh ones (Figure 5a).
func RandomAssignment(n, partitions int, rng *rand.Rand) []int {
	a := make([]int, n)
	for i := range a {
		a[i] = rng.Intn(partitions)
	}
	return a
}

// AggregateAssigned pools client volumes per (partition, demand) under a
// fixed client-to-partition assignment.
func AggregateAssigned(clients []Client, assign []int, partitions, numDemands int) [][]float64 {
	per := make([][]float64, partitions)
	for c := range per {
		per[c] = make([]float64, numDemands)
	}
	for i, cl := range clients {
		per[assign[i]][cl.Demand] += cl.Volume
	}
	return per
}

// SolvePOPAssigned solves POP under a fixed client-to-partition assignment.
func SolvePOPAssigned(inst *Instance, clients []Client, assign []int, partitions int) (*Flow, error) {
	if len(assign) != len(clients) {
		return nil, fmt.Errorf("mcf: %d assignments for %d clients", len(assign), len(clients))
	}
	per := AggregateAssigned(clients, assign, partitions, inst.Demands.Len())
	out := newFlow(inst)
	capFrac := 1 / float64(partitions)
	for c := 0; c < partitions; c++ {
		pv := per[c]
		fl := BuildInnerMaxFlow(fmt.Sprintf("pop%d", c), inst, func(k int) kkt.AffineRHS {
			return kkt.Constant(pv[k])
		}, capFrac, func(k int) bool { return pv[k] > 0 }, 0)
		if fl.LP.NumVars == 0 {
			continue
		}
		sol, xs, err := solveInner(fl.LP)
		if err != nil {
			return nil, err
		}
		if sol.Status != lp.StatusOptimal {
			return nil, fmt.Errorf("mcf: POP partition %d LP %v", c, sol.Status)
		}
		for k, ps := range inst.Paths {
			for p := range ps {
				if idx := fl.Index[k][p]; idx != -1 {
					out.add(k, p, sol.X[xs[idx]])
				}
			}
		}
	}
	return out, nil
}

// Clients materializes the client list for an instance under the options:
// one client per demand, or the Appendix-A split set.
func Clients(inst *Instance, opts POPOptions) []Client {
	vols := inst.Demands.Volumes()
	if opts.ClientSplit {
		return SplitClients(vols, opts.SplitThreshold, opts.MaxSplits)
	}
	clients := make([]Client, len(vols))
	for k, v := range vols {
		clients[k] = Client{Demand: k, Volume: v}
	}
	return clients
}

// SolvePOP solves POPMaxFlow (6): clients are partitioned uniformly at
// random, each partition solves OptMaxFlow over its own demands with every
// edge capacity divided by the partition count, and the flows are unioned.
func SolvePOP(inst *Instance, opts POPOptions) (*Flow, error) {
	if err := opts.validate(inst); err != nil {
		return nil, err
	}
	clients := Clients(inst, opts)
	assign := RandomAssignment(len(clients), opts.Partitions, opts.Rng)
	return SolvePOPAssigned(inst, clients, assign, opts.Partitions)
}

// ExpectedPOPTotal estimates E[POP total flow] over rounds independent
// random partitionings — the deterministic descriptor the paper optimizes
// against in expectation mode.
func ExpectedPOPTotal(inst *Instance, opts POPOptions, rounds int) (float64, error) {
	if rounds < 1 {
		return 0, fmt.Errorf("mcf: need >= 1 round")
	}
	sum := 0.0
	for r := 0; r < rounds; r++ {
		f, err := SolvePOP(inst, opts)
		if err != nil {
			return 0, err
		}
		sum += f.Total
	}
	return sum / float64(rounds), nil
}
