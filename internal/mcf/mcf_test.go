package mcf

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/demand"
	"repro/internal/kkt"
	"repro/internal/topology"
)

const eps = 1e-6

func almost(a, b float64) bool { return math.Abs(a-b) <= eps*(1+math.Abs(a)+math.Abs(b)) }

// figure1Instance builds the paper's Figure-1 scenario (see DESIGN.md for
// the reconstruction): demands 0->1: 100, 1->2: 100, 0->2: 50 on the
// 3-node topology, with 2 paths per pair.
func figure1Instance(t *testing.T) *Instance {
	t.Helper()
	g := topology.Figure1()
	set := demand.NewSet([]demand.Pair{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 0, Dst: 2}})
	set.SetVolumes([]float64{100, 100, 50})
	inst, err := NewInstance(g, set, 2)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestFigure1Opt(t *testing.T) {
	inst := figure1Instance(t)
	f, err := SolveMaxFlow(inst)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(f.Total, 250) {
		t.Fatalf("OPT=%v, want 250", f.Total)
	}
	if err := f.Check(inst, 1e-6); err != nil {
		t.Fatal(err)
	}
}

func TestFigure1DemandPinning(t *testing.T) {
	inst := figure1Instance(t)
	f, err := SolveDemandPinning(inst, 50)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(f.Total, 150) {
		t.Fatalf("DP=%v, want 150", f.Total)
	}
	// The pinned demand (0->2, 50 units) must sit entirely on its shortest
	// path (via node 1).
	if !almost(f.PerPath[2][0], 50) {
		t.Fatalf("pinned flow=%v on shortest path, want 50", f.PerPath[2][0])
	}
	if err := f.Check(inst, 1e-6); err != nil {
		t.Fatal(err)
	}
}

func TestFigure1Gap(t *testing.T) {
	// The headline of Figure 1: a 100-unit gap, over 38% of OPT.
	inst := figure1Instance(t)
	opt, err := SolveMaxFlow(inst)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := SolveDemandPinning(inst, 50)
	if err != nil {
		t.Fatal(err)
	}
	gap := opt.Total - dp.Total
	if !almost(gap, 100) {
		t.Fatalf("gap=%v, want 100", gap)
	}
	if gap/opt.Total < 0.38 {
		t.Fatalf("gap fraction %v, want > 0.38", gap/opt.Total)
	}
}

func TestDemandPinningThresholdZeroPinsNothing(t *testing.T) {
	inst := figure1Instance(t)
	dp, err := SolveDemandPinning(inst, -1) // below every volume: nothing pinned
	if err != nil {
		t.Fatal(err)
	}
	opt, _ := SolveMaxFlow(inst)
	if !almost(dp.Total, opt.Total) {
		t.Fatalf("unpinned DP=%v should equal OPT=%v", dp.Total, opt.Total)
	}
}

func TestDemandPinningAllPinnedBoundary(t *testing.T) {
	// Threshold at the max volume pins everything (paper pins "at or
	// below"). On Figure 1 that is infeasible: pinned 0->1 (100) and pinned
	// 0->2 (50, via 0-1-2) share edge 0->1 with capacity 100 — exactly the
	// Section-5 infeasibility DP can run into.
	inst := figure1Instance(t)
	if _, err := SolveDemandPinning(inst, 100); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err=%v, want ErrInfeasible", err)
	}
}

func TestDemandPinningInfeasible(t *testing.T) {
	// Two small demands pinned onto one shared link exceeding its capacity:
	// the Section-5 infeasibility case.
	g := topology.Line(2) // nodes 0,1; capacity 100 each direction
	set := demand.NewSet([]demand.Pair{{Src: 0, Dst: 1}})
	set.SetVolumes([]float64{150})
	inst, err := NewInstance(g, set, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SolveDemandPinning(inst, 200); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err=%v, want ErrInfeasible", err)
	}
	if DemandPinningFeasible(inst, 200) {
		t.Fatal("feasibility check disagrees")
	}
	if !DemandPinningFeasible(inst, 100) {
		t.Fatal("threshold below volume must be feasible (nothing pinned)")
	}
}

func TestPinnedClassification(t *testing.T) {
	inst := figure1Instance(t)
	pinned := Pinned(inst, 50)
	want := []bool{false, false, true}
	for i := range want {
		if pinned[i] != want[i] {
			t.Fatalf("pinned=%v, want %v", pinned, want)
		}
	}
}

func TestMaxFlowRespectsCapacity(t *testing.T) {
	g := topology.Abilene()
	set := demand.AllPairs(g)
	rng := rand.New(rand.NewSource(42))
	set.Uniform(rng, 0, 40)
	inst, err := NewInstance(g, set, 2)
	if err != nil {
		t.Fatal(err)
	}
	f, err := SolveMaxFlow(inst)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Check(inst, 1e-5); err != nil {
		t.Fatal(err)
	}
	if f.Total <= 0 || f.Total > set.Total() {
		t.Fatalf("total=%v out of (0, %v]", f.Total, set.Total())
	}
}

func TestDPNeverBeatsOpt(t *testing.T) {
	g := topology.SWAN()
	set := demand.AllPairs(g)
	rng := rand.New(rand.NewSource(7))
	set.Uniform(rng, 0, 30)
	inst, err := NewInstance(g, set, 2)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := SolveMaxFlow(inst)
	if err != nil {
		t.Fatal(err)
	}
	for _, th := range []float64{0, 2.5, 5, 10, 20} {
		if !DemandPinningFeasible(inst, th) {
			continue
		}
		dp, err := SolveDemandPinning(inst, th)
		if err != nil {
			t.Fatal(err)
		}
		if dp.Total > opt.Total+1e-5 {
			t.Fatalf("threshold %v: DP %v beats OPT %v", th, dp.Total, opt.Total)
		}
		if err := dp.Check(inst, 1e-5); err != nil {
			t.Fatalf("threshold %v: %v", th, err)
		}
	}
}

func TestPOPValidation(t *testing.T) {
	inst := figure1Instance(t)
	if _, err := SolvePOP(inst, POPOptions{Partitions: 0, Rng: rand.New(rand.NewSource(1))}); err == nil {
		t.Fatal("expected error for 0 partitions")
	}
	if _, err := SolvePOP(inst, POPOptions{Partitions: 2}); err == nil {
		t.Fatal("expected error for nil rng")
	}
	if _, err := SolvePOP(inst, POPOptions{Partitions: 2, Rng: rand.New(rand.NewSource(1)), ClientSplit: true}); err == nil {
		t.Fatal("expected error for bad client-split config")
	}
}

func TestPOPOnePartitionEqualsOpt(t *testing.T) {
	inst := figure1Instance(t)
	opt, _ := SolveMaxFlow(inst)
	pop, err := SolvePOP(inst, POPOptions{Partitions: 1, Rng: rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(pop.Total, opt.Total) {
		t.Fatalf("POP(1)=%v, want OPT=%v", pop.Total, opt.Total)
	}
}

func TestPOPNeverBeatsOptAndIsFeasible(t *testing.T) {
	g := topology.B4()
	set := demand.AllPairs(g)
	rng := rand.New(rand.NewSource(11))
	set.Uniform(rng, 0, 25)
	inst, err := NewInstance(g, set, 2)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := SolveMaxFlow(inst)
	if err != nil {
		t.Fatal(err)
	}
	for _, parts := range []int{2, 3, 4} {
		pop, err := SolvePOP(inst, POPOptions{Partitions: parts, Rng: rand.New(rand.NewSource(5))})
		if err != nil {
			t.Fatal(err)
		}
		if pop.Total > opt.Total+1e-5 {
			t.Fatalf("%d partitions: POP %v beats OPT %v", parts, pop.Total, opt.Total)
		}
		if err := pop.Check(inst, 1e-5); err != nil {
			t.Fatalf("%d partitions: %v", parts, err)
		}
	}
}

func TestSplitClients(t *testing.T) {
	// Volume 40, threshold 10, max 3 splits: 40 -> 20 -> 10 -> 5: 8 clients
	// of 5. Volume 8 stays a single client.
	clients := SplitClients([]float64{40, 8}, 10, 3)
	count := map[int]int{}
	total := map[int]float64{}
	for _, c := range clients {
		count[c.Demand]++
		total[c.Demand] += c.Volume
	}
	if count[0] != 8 || !almost(total[0], 40) {
		t.Fatalf("demand 0: %d clients total %v, want 8/40", count[0], total[0])
	}
	if count[1] != 1 || !almost(total[1], 8) {
		t.Fatalf("demand 1: %d clients total %v, want 1/8", count[1], total[1])
	}
	// Max splits bites: volume 100, threshold 1, 2 splits => 4 clients of 25.
	clients = SplitClients([]float64{100}, 1, 2)
	if len(clients) != 4 || !almost(clients[0].Volume, 25) {
		t.Fatalf("clients=%v", clients)
	}
}

func TestPartitionClientsConservesVolume(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	clients := SplitClients([]float64{40, 8, 13}, 10, 3)
	per := PartitionClients(clients, 3, 3, rng)
	for k, want := range []float64{40, 8, 13} {
		got := 0.0
		for c := range per {
			got += per[c][k]
		}
		if !almost(got, want) {
			t.Fatalf("demand %d: partitioned total %v, want %v", k, got, want)
		}
	}
}

func TestPOPClientSplitRuns(t *testing.T) {
	g := topology.SWAN()
	set := demand.AllPairs(g)
	rng := rand.New(rand.NewSource(13))
	set.Uniform(rng, 0, 60)
	inst, err := NewInstance(g, set, 2)
	if err != nil {
		t.Fatal(err)
	}
	opt, _ := SolveMaxFlow(inst)
	pop, err := SolvePOP(inst, POPOptions{
		Partitions: 2, Rng: rand.New(rand.NewSource(5)),
		ClientSplit: true, SplitThreshold: 20, MaxSplits: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := pop.Check(inst, 1e-5); err != nil {
		t.Fatal(err)
	}
	if pop.Total > opt.Total+1e-5 {
		t.Fatalf("POP+split %v beats OPT %v", pop.Total, opt.Total)
	}
	// Client splitting should not hurt on average: compare expectations.
	plain, err := ExpectedPOPTotal(inst, POPOptions{Partitions: 2, Rng: rand.New(rand.NewSource(9))}, 5)
	if err != nil {
		t.Fatal(err)
	}
	split, err := ExpectedPOPTotal(inst, POPOptions{
		Partitions: 2, Rng: rand.New(rand.NewSource(9)),
		ClientSplit: true, SplitThreshold: 20, MaxSplits: 3,
	}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if split < plain-0.15*plain {
		t.Fatalf("client splitting collapsed value: %v vs %v", split, plain)
	}
}

func TestExpectedPOPTotalValidation(t *testing.T) {
	inst := figure1Instance(t)
	if _, err := ExpectedPOPTotal(inst, POPOptions{Partitions: 2, Rng: rand.New(rand.NewSource(1))}, 0); err == nil {
		t.Fatal("expected error for 0 rounds")
	}
}

func TestNewInstanceValidation(t *testing.T) {
	g := topology.New("disc", 3)
	g.AddEdge(0, 1, 10)
	set := demand.NewSet([]demand.Pair{{Src: 0, Dst: 2}})
	if _, err := NewInstance(g, set, 2); err == nil {
		t.Fatal("expected error for unreachable pair")
	}
	g2 := topology.Line(3)
	if _, err := NewInstance(g2, demand.AllPairs(g2), 0); err == nil {
		t.Fatal("expected error for 0 paths")
	}
}

func TestInstanceHelpers(t *testing.T) {
	inst := figure1Instance(t)
	// Figure 1 is directed: 0->1 and 1->2 each have a single loopless path;
	// only 0->2 has two.
	if inst.NumFlowVars() != 1+1+2 {
		t.Fatalf("flow vars=%d, want 4", inst.NumFlowVars())
	}
	sp := inst.ShortestPath(2)
	if sp.Hops() != 2 {
		t.Fatalf("shortest path of 0->2 should be 2 hops, got %d", sp.Hops())
	}
	w := inst.WithVolumes([]float64{1, 2, 3})
	if w.Demands.Total() != 6 || inst.Demands.Total() != 250 {
		t.Fatal("WithVolumes aliases or mutates")
	}
}

// TestQuickHeuristicsNeverBeatOpt is the core sanity property across random
// inputs: OPT dominates both heuristics, and all flows are feasible.
func TestQuickHeuristicsNeverBeatOpt(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := topology.Circle(5+rng.Intn(3), 1)
		set := demand.AllPairs(g)
		set.Uniform(rng, 0, 50)
		inst, err := NewInstance(g, set, 2)
		if err != nil {
			return false
		}
		opt, err := SolveMaxFlow(inst)
		if err != nil || opt.Check(inst, 1e-5) != nil {
			return false
		}
		th := rng.Float64() * 20
		if DemandPinningFeasible(inst, th) {
			dp, err := SolveDemandPinning(inst, th)
			if err != nil || dp.Check(inst, 1e-5) != nil {
				t.Logf("seed %d: dp err=%v", seed, err)
				return false
			}
			if dp.Total > opt.Total+1e-4 {
				t.Logf("seed %d: DP %v > OPT %v", seed, dp.Total, opt.Total)
				return false
			}
		}
		pop, err := SolvePOP(inst, POPOptions{Partitions: 1 + rng.Intn(3), Rng: rng})
		if err != nil || pop.Check(inst, 1e-5) != nil {
			t.Logf("seed %d: pop err=%v", seed, err)
			return false
		}
		if pop.Total > opt.Total+1e-4 {
			t.Logf("seed %d: POP %v > OPT %v", seed, pop.Total, opt.Total)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildInnerMaxFlowBookkeeping(t *testing.T) {
	inst := figure1Instance(t)
	vols := inst.Demands.Volumes()
	// Include only demand 2 (the 2-path pair), as POP partitions do.
	fl := BuildInnerMaxFlow("sub", inst, func(k int) kkt.AffineRHS {
		return kkt.Constant(vols[k])
	}, 0.5, func(k int) bool { return k == 2 }, 100)
	if fl.LP.NumVars != 2 {
		t.Fatalf("vars=%d, want 2 (two paths of demand 2)", fl.LP.NumVars)
	}
	for k := 0; k < 2; k++ {
		if fl.DemandRows[k] != -1 || fl.Index[k][0] != -1 {
			t.Fatalf("excluded demand %d has rows/vars", k)
		}
	}
	if fl.DemandRows[2] == -1 {
		t.Fatal("included demand has no row")
	}
	// Capacity rows exist for every edge, scaled by capFrac.
	for e := 0; e < inst.G.NumEdges(); e++ {
		row := fl.LP.Rows[fl.CapRows[e]]
		want := inst.G.Edge(e).Capacity * 0.5
		if row.RHS.Const != want {
			t.Fatalf("edge %d cap RHS %v, want %v", e, row.RHS.Const, want)
		}
		if row.DualUB != 1 || row.SlackUB != want {
			t.Fatalf("edge %d bounds not set: %+v", e, row)
		}
	}
	// VarUB: flow on the direct path (edge cap 50*0.5=25) vs 2-hop (50).
	direct := fl.LP.VarUB[fl.Index[2][1]]
	twoHop := fl.LP.VarUB[fl.Index[2][0]]
	if direct != 25 || twoHop != 50 {
		t.Fatalf("VarUB direct=%v twoHop=%v, want 25/50", direct, twoHop)
	}
}

func TestFlowEdgeLoadsAndCheckErrors(t *testing.T) {
	inst := figure1Instance(t)
	f, err := SolveMaxFlow(inst)
	if err != nil {
		t.Fatal(err)
	}
	loads := f.EdgeLoads(inst)
	if len(loads) != inst.G.NumEdges() {
		t.Fatalf("loads len=%d", len(loads))
	}
	total := 0.0
	for _, l := range loads {
		total += l
	}
	if total <= 0 {
		t.Fatal("no load recorded")
	}
	// Corrupt the flow: overserve a demand.
	f.PerDemand[0] = inst.Demands.Volume(0) + 5
	if err := f.Check(inst, 1e-6); err == nil {
		t.Fatal("Check missed overserved demand")
	}
	f2, _ := SolveMaxFlow(inst)
	f2.PerPath[0][0] = -1
	if err := f2.Check(inst, 1e-6); err == nil {
		t.Fatal("Check missed negative flow")
	}
	f3, _ := SolveMaxFlow(inst)
	f3.PerPath[2][0] += 1000
	f3.PerDemand[2] = 0 // keep demand check quiet; capacity must trip
	if err := f3.Check(inst, 1e-6); err == nil {
		t.Fatal("Check missed capacity violation")
	}
}
