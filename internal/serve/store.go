package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"

	"repro/internal/core"
)

// StoredResult is one completed gap search in the results store, keyed by
// the cache key (fingerprint + solve options). Float fields are formatted
// strings rather than JSON numbers because ±Inf is legitimate solver state
// (an infeasible job's bound) and JSON has no encoding for it; Float64
// round-trips every value exactly at 'g'/-1 precision.
type StoredResult struct {
	Key         string          `json:"key"`         // %016x cache key
	Fingerprint string          `json:"fingerprint"` // %016x milp search fingerprint
	Status      string          `json:"status"`
	Gap         string          `json:"gap"`
	Normalized  string          `json:"normalized_gap"`
	OptValue    string          `json:"opt_value"`
	HeurValue   string          `json:"heur_value"`
	Bound       string          `json:"bound"`
	Nodes       int64           `json:"nodes"`
	LPSolves    int64           `json:"lp_solves"`
	LPIters     int64           `json:"lp_iters"`
	WarmSolves  int64           `json:"warm_solves"`
	WarmFallbks int64           `json:"warm_fallbacks"`
	WallSec     string          `json:"wall_sec"`
	Demands     []string        `json:"demands,omitempty"`
	Spec        json.RawMessage `json:"spec"`
}

func ff(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// newStoredResult projects a verified core result onto its wire form.
// WallSec is the solver's own elapsed time (deterministic inputs produce
// nondeterministic wall times; everything else in the record is a pure
// function of the cache key).
func newStoredResult(key, fp uint64, spec *Spec, res *core.Result) *StoredResult {
	sr := &StoredResult{
		Key:         fmt.Sprintf("%016x", key),
		Fingerprint: fmt.Sprintf("%016x", fp),
		Status:      res.Solver.Status.String(),
		Gap:         ff(res.Gap),
		Normalized:  ff(res.NormalizedGap),
		OptValue:    ff(res.OptValue),
		HeurValue:   ff(res.HeurValue),
		Bound:       ff(res.Solver.Bound),
		Nodes:       int64(res.Solver.Nodes),
		LPSolves:    int64(res.Solver.LPSolves),
		LPIters:     int64(res.Solver.LPIters),
		WarmSolves:  int64(res.Solver.WarmLPSolves),
		WarmFallbks: int64(res.Solver.WarmLPFallbacks),
		WallSec:     ff(res.Solver.Elapsed.Seconds()),
		Spec:        json.RawMessage(spec.canonicalJSON()),
	}
	if res.Demands != nil {
		sr.Demands = make([]string, len(res.Demands))
		for i, d := range res.Demands {
			sr.Demands[i] = ff(d)
		}
	}
	return sr
}

// store is the durable results ledger: an in-memory map mirrored to one JSON
// file (sorted by key, rewritten atomically via temp + rename) on every
// insert. Reads after a daemon restart hit the reloaded map, which is what
// turns a repeat sweep into cache hits across process lifetimes.
type store struct {
	mu      sync.Mutex
	path    string
	results map[uint64]*StoredResult
}

func openStore(path string) (*store, error) {
	st := &store{path: path, results: make(map[uint64]*StoredResult)}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return st, nil
	}
	if err != nil {
		return nil, err
	}
	var list []*StoredResult
	if err := json.Unmarshal(data, &list); err != nil {
		return nil, fmt.Errorf("serve: results store %s: %w", path, err)
	}
	for _, sr := range list {
		k, err := strconv.ParseUint(sr.Key, 16, 64)
		if err != nil {
			return nil, fmt.Errorf("serve: results store %s: bad key %q", path, sr.Key)
		}
		st.results[k] = sr
	}
	return st, nil
}

// get returns the stored result for key, or nil.
func (s *store) get(key uint64) *StoredResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.results[key]
}

// put inserts (or overwrites) the result and rewrites the ledger file. A
// failed flush rolls the in-memory insert back: otherwise the unflushed
// result would be served as a cache hit while the job that produced it
// reports a persistence failure.
func (s *store) put(key uint64, sr *StoredResult) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	prev, had := s.results[key]
	s.results[key] = sr
	if err := s.flushLocked(); err != nil {
		if had {
			s.results[key] = prev
		} else {
			delete(s.results, key)
		}
		return err
	}
	return nil
}

func (s *store) flushLocked() error {
	keys := make([]uint64, 0, len(s.results))
	for k := range s.results {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	list := make([]*StoredResult, len(keys))
	for i, k := range keys {
		list[i] = s.results[k]
	}
	data, err := json.MarshalIndent(list, "", "  ")
	if err != nil {
		return err
	}
	f, err := os.CreateTemp(filepath.Dir(s.path), ".results-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, s.path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// len reports how many results are stored.
func (s *store) len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.results)
}
