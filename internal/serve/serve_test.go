package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/obs"
)

// figure1Spec is the fast fixture: the paper's Figure-1 example solves to
// proven optimality (gap 10) in tens of milliseconds, so tests that only
// exercise the daemon's plumbing stay quick even under the race detector.
func figure1Spec() *Spec {
	return &Spec{Topology: "figure1", Heuristic: "dp", Pairs: -1, BudgetSec: 30}
}

func testConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		StateDir:      t.TempDir(),
		Workers:       2,
		QueueDepth:    8,
		DefaultBudget: 30 * time.Second,
		MaxBudget:     2 * time.Minute,
	}
}

func newServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s
}

// waitTerminal polls until the job leaves queued/running or the deadline
// passes.
func waitTerminal(t *testing.T, s *Server, id string, timeout time.Duration) *job {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		j := s.jobByID(id)
		if j == nil {
			t.Fatalf("job %s disappeared", id)
		}
		switch j.getState() {
		case stateDone, stateFailed:
			return j
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %v", id, j.getState(), timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestSubmitAndSolveOverHTTP(t *testing.T) {
	s := newServer(t, testConfig(t))
	s.Start()
	ts := httptest.NewServer(s)
	defer ts.Close()

	body, _ := json.Marshal(figure1Spec())
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	var view JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatalf("decode: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d, want 202 (%+v)", resp.StatusCode, view)
	}
	j := waitTerminal(t, s, view.ID, 60*time.Second)
	if j.getState() != stateDone {
		t.Fatalf("job state %s: %s", j.getState(), j.errMsg)
	}

	resp, err = http.Get(ts.URL + "/v1/jobs/" + view.ID)
	if err != nil {
		t.Fatalf("get job: %v", err)
	}
	var done JobView
	json.NewDecoder(resp.Body).Decode(&done)
	resp.Body.Close()
	if done.State != stateDone || done.Result == nil {
		t.Fatalf("job view not done: %+v", done)
	}
	if done.Result.Status != "optimal" || done.Result.Gap != "10" {
		t.Fatalf("figure1 answer wrong: status=%s gap=%s", done.Result.Status, done.Result.Gap)
	}

	// The result is addressable by its cache key too.
	resp, err = http.Get(ts.URL + "/v1/results/" + done.Key)
	if err != nil {
		t.Fatalf("get result: %v", err)
	}
	var sr StoredResult
	json.NewDecoder(resp.Body).Decode(&sr)
	resp.Body.Close()
	if sr.Gap != "10" || sr.Key != done.Key {
		t.Fatalf("result by key wrong: %+v", sr)
	}

	// The event stream ends with a solve_done record once the job is over.
	resp, err = http.Get(ts.URL + "/v1/jobs/" + view.ID + "/events")
	if err != nil {
		t.Fatalf("get events: %v", err)
	}
	events, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(events), `"kind":"solve_done"`) {
		t.Fatalf("event stream lacks solve_done:\n%s", events)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("get metrics: %v", err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(prom), "serve_jobs_completed_total 1") {
		t.Fatalf("metrics missing completion count:\n%s", prom)
	}
}

// TestDuplicateJobHitsCache is the acceptance property: submitting the same
// job twice runs the solver exactly once — the second submission is answered
// from the results store, asserted through the obs counters.
func TestDuplicateJobHitsCache(t *testing.T) {
	s := newServer(t, testConfig(t))
	s.Start()

	j1, err := s.submit(figure1Spec())
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitTerminal(t, s, j1.id, 60*time.Second)
	if runs := s.met.solverRuns.Value(); runs != 1 {
		t.Fatalf("first job took %d solver runs, want 1", runs)
	}

	j2, err := s.submit(figure1Spec())
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if j2.getState() != stateDone {
		t.Fatalf("duplicate not answered at admission: state %s", j2.getState())
	}
	if j2.key != j1.key {
		t.Fatalf("duplicate got a different key: %016x vs %016x", j2.key, j1.key)
	}
	if runs := s.met.solverRuns.Value(); runs != 1 {
		t.Fatalf("duplicate triggered a solver run: %d total, want 1", runs)
	}
	if hits, misses := s.met.cacheHits.Value(), s.met.cacheMisses.Value(); hits != 1 || misses != 1 {
		t.Fatalf("cache counters hits=%d misses=%d, want 1/1", hits, misses)
	}
	if j2.result.Gap != j1.result.Gap || j2.result.Nodes != j1.result.Nodes {
		t.Fatalf("cached result differs: %+v vs %+v", j2.result, j1.result)
	}
	// A solve-determining option change must MISS: same model, different key.
	warm := figure1Spec()
	warm.WarmStart = true
	j3, err := s.submit(warm)
	if err != nil {
		t.Fatalf("warm submit: %v", err)
	}
	if j3.key == j1.key {
		t.Fatal("warm-start flag did not change the cache key")
	}
	waitTerminal(t, s, j3.id, 60*time.Second)
	if runs := s.met.solverRuns.Value(); runs != 2 {
		t.Fatalf("warm variant should have solved: %d runs, want 2", runs)
	}
}

// TestConcurrentDuplicateSubmissions hammers admission and the pool with
// duplicate keys from many goroutines: every job must land done, and each
// unique key must be solved exactly once (singleflight + store).
func TestConcurrentDuplicateSubmissions(t *testing.T) {
	s := newServer(t, testConfig(t))
	s.Start()

	const uniques, dups = 3, 3
	var wg sync.WaitGroup
	ids := make(chan string, uniques*dups)
	for u := 0; u < uniques; u++ {
		for d := 0; d < dups; d++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				spec := &Spec{Topology: "figure1", Heuristic: "dp", Pairs: 3, Seed: seed, BudgetSec: 30}
				j, err := s.submit(spec)
				if err != nil {
					t.Errorf("submit seed %d: %v", seed, err)
					return
				}
				ids <- j.id
			}(int64(u + 1))
		}
	}
	wg.Wait()
	close(ids)
	for id := range ids {
		j := waitTerminal(t, s, id, 60*time.Second)
		if j.getState() != stateDone {
			t.Fatalf("job %s: %s (%s)", id, j.getState(), j.errMsg)
		}
	}
	if runs := s.met.solverRuns.Value(); runs != uniques {
		t.Fatalf("%d solver runs for %d unique keys", runs, uniques)
	}
	if s.store.len() != uniques {
		t.Fatalf("store holds %d results, want %d", s.store.len(), uniques)
	}
	if hits := s.met.cacheHits.Value(); hits != uniques*(dups-1) {
		t.Fatalf("%d cache hits, want %d", hits, uniques*(dups-1))
	}
}

// TestAdmissionRejectsWhenQueueFull: with the pool not started, the bounded
// queue fills and the next submission is answered 429.
func TestAdmissionRejectsWhenQueueFull(t *testing.T) {
	cfg := testConfig(t)
	cfg.QueueDepth = 2
	s := newServer(t, cfg) // Start deliberately not called: nothing drains the queue
	ts := httptest.NewServer(s)
	defer ts.Close()

	for seed := int64(1); seed <= 2; seed++ {
		spec := &Spec{Topology: "figure1", Heuristic: "dp", Pairs: 3, Seed: seed}
		if _, err := s.submit(spec); err != nil {
			t.Fatalf("submit %d: %v", seed, err)
		}
	}
	body, _ := json.Marshal(&Spec{Topology: "figure1", Heuristic: "dp", Pairs: 3, Seed: 3})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if rej := s.met.jobsRejected.Value(); rej != 1 {
		t.Fatalf("rejected counter %d, want 1", rej)
	}
	// Bad specs are 400, not 429, and also count as rejections.
	body, _ = json.Marshal(&Spec{Topology: "b4", Heuristic: "nope"})
	resp, err = http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec status %d, want 400", resp.StatusCode)
	}
}

// TestDeadlineExpiryMidSolve: a job whose budget cannot reach optimality
// completes as done with the solver's budget-limited status instead of
// hanging or failing.
func TestDeadlineExpiryMidSolve(t *testing.T) {
	s := newServer(t, testConfig(t))
	s.Start()
	spec := &Spec{Topology: "b4", Heuristic: "dp", Pairs: 12, Seed: 1, BudgetSec: 0.25}
	j, err := s.submit(spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	j = waitTerminal(t, s, j.id, 60*time.Second)
	if j.getState() != stateDone {
		t.Fatalf("deadline-limited job %s: %s", j.getState(), j.errMsg)
	}
	if j.result.Status == "optimal" {
		t.Fatalf("b4/12-pair job proved optimality in %.2fs — budget did not bind", spec.BudgetSec)
	}
	if j.result.Status != "feasible" && j.result.Status != "interrupted" {
		t.Fatalf("unexpected budget-limited status %q", j.result.Status)
	}
}

// TestDrainPersistsQueuedJobs: jobs admitted but never started survive a
// drain as JobQueued ledger entries and complete after a restart.
func TestDrainPersistsQueuedJobs(t *testing.T) {
	cfg := testConfig(t)
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	var ids []string
	for seed := int64(1); seed <= 2; seed++ {
		j, err := s.submit(&Spec{Topology: "figure1", Heuristic: "dp", Pairs: 3, Seed: seed})
		if err != nil {
			t.Fatalf("submit %d: %v", seed, err)
		}
		ids = append(ids, j.id)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	snap, err := checkpoint.Load(filepath.Join(cfg.StateDir, "queue.ckpt"))
	if err != nil {
		t.Fatalf("load ledger: %v", err)
	}
	if snap.Queue == nil || len(snap.Queue.Jobs) != 2 {
		t.Fatalf("ledger wrong: %+v", snap.Queue)
	}
	for _, rec := range snap.Queue.Jobs {
		if rec.State != checkpoint.JobQueued {
			t.Fatalf("job %s persisted as %d, want queued", rec.ID, rec.State)
		}
	}

	// Submissions during a drain are refused.
	if _, err := s.submit(figure1Spec()); err == nil {
		t.Fatal("drain accepted a submission")
	}

	s2 := newServer(t, cfg) // same StateDir: the ledger re-admits both jobs
	s2.Start()
	for _, id := range ids {
		j := waitTerminal(t, s2, id, 60*time.Second)
		if j.getState() != stateDone {
			t.Fatalf("restored job %s: %s (%s)", id, j.getState(), j.errMsg)
		}
	}
	if s2.store.len() != 2 {
		t.Fatalf("store holds %d results after restart, want 2", s2.store.len())
	}
}

// TestDrainMidSolveResumesBitIdentical is the crash-safety acceptance
// property at the daemon level: drain a job mid-search, restart the daemon
// on the same state dir, and the resumed job must report the bit-identical
// gap, bound, and node count of an uninterrupted run of the same spec.
func TestDrainMidSolveResumesBitIdentical(t *testing.T) {
	// b4/3-pairs/seed-5 proves optimality in ~10s under the race detector
	// across ~50 waves (batch 4), so a checkpoint exists almost immediately
	// and the drain lands mid-search.
	spec := func() *Spec {
		return &Spec{Topology: "b4", Heuristic: "dp", Pairs: 3, Seed: 5, Workers: 2, BudgetSec: 120}
	}

	// Reference: the uninterrupted run, on its own state dir.
	refCfg := testConfig(t)
	ref := newServer(t, refCfg)
	ref.Start()
	rj, err := ref.submit(spec())
	if err != nil {
		t.Fatalf("reference submit: %v", err)
	}
	refJob := waitTerminal(t, ref, rj.id, 120*time.Second)
	if refJob.getState() != stateDone || refJob.result.Status != "optimal" {
		t.Fatalf("reference run did not reach optimality: %+v", refJob.result)
	}

	// Interrupted run: drain as soon as a checkpoint exists.
	cfg := testConfig(t)
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	s.Start()
	j, err := s.submit(spec())
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	ckpt := s.ckptPath(j.key)
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := os.Stat(ckpt); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint appeared within 30s")
		}
		time.Sleep(10 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if st := s.jobByID(j.id).getState(); st != stateQueued {
		t.Fatalf("drained job is %s, want queued (job finished before the drain landed?)", st)
	}

	s2 := newServer(t, cfg)
	s2.Start()
	j2 := waitTerminal(t, s2, j.id, 120*time.Second)
	if j2.getState() != stateDone {
		t.Fatalf("resumed job: %s (%s)", j2.getState(), j2.errMsg)
	}
	got, want := j2.result, refJob.result
	if got.Status != want.Status || got.Gap != want.Gap || got.Bound != want.Bound ||
		got.Nodes != want.Nodes || got.LPSolves != want.LPSolves {
		t.Fatalf("resumed answer diverged:\n got status=%s gap=%s bound=%s nodes=%d lp=%d\nwant status=%s gap=%s bound=%s nodes=%d lp=%d",
			got.Status, got.Gap, got.Bound, got.Nodes, got.LPSolves,
			want.Status, want.Gap, want.Bound, want.Nodes, want.LPSolves)
	}
	if fmt.Sprintf("%v", got.Demands) != fmt.Sprintf("%v", want.Demands) {
		t.Fatalf("resumed demands diverged:\n got %v\nwant %v", got.Demands, want.Demands)
	}
	// The resumed daemon must actually have resumed, not restarted: its
	// checkpoint file is consumed on completion.
	if _, err := os.Stat(ckpt); !os.IsNotExist(err) {
		t.Fatalf("checkpoint not cleaned up after completion: %v", err)
	}
}

func TestSpecCanonicalization(t *testing.T) {
	s := &Spec{Topology: "b4", Heuristic: "dp"}
	eng, pricing, err := s.canonicalize(30*time.Second, time.Minute)
	if err != nil {
		t.Fatalf("canonicalize: %v", err)
	}
	if s.Pairs != 12 || s.Paths != 2 || s.Seed != 1 || s.Threshold != 5 ||
		s.MaxDemand != 100 || s.Workers != 1 || s.BudgetSec != 30 {
		t.Fatalf("defaults not filled: %+v", s)
	}
	if s.Engine != eng.String() || s.Pricing != pricing.String() {
		t.Fatalf("resolved names not recorded: %+v", s)
	}
	over := &Spec{Topology: "b4", Heuristic: "dp", BudgetSec: 3600}
	if _, _, err := over.canonicalize(30*time.Second, time.Minute); err != nil {
		t.Fatalf("canonicalize: %v", err)
	}
	if over.BudgetSec != 60 {
		t.Fatalf("budget not clamped: %g", over.BudgetSec)
	}
	for _, bad := range []*Spec{
		{Topology: "nope", Heuristic: "dp"},
		{Topology: "b4", Heuristic: "greedy"},
		{Topology: "b4", Heuristic: "dp", Engine: "spares"},
		{Topology: "b4", Heuristic: "dp", Pricing: "steepest"},
		{Topology: "b4", Heuristic: "dp", Workers: -1},
		{Topology: "b4", Heuristic: "dp", BudgetSec: -5},
	} {
		if _, _, err := bad.canonicalize(30*time.Second, time.Minute); err == nil {
			t.Fatalf("bad spec accepted: %+v", bad)
		}
	}
}

func TestCacheKeyComposition(t *testing.T) {
	mk := func(mut func(*Spec)) uint64 {
		spec := figure1Spec()
		mut(spec)
		if _, _, err := spec.canonicalize(30*time.Second, time.Minute); err != nil {
			t.Fatalf("canonicalize: %v", err)
		}
		pr, err := spec.problem()
		if err != nil {
			t.Fatalf("problem: %v", err)
		}
		fp, err := pr.Fingerprint(spec.options(nil))
		if err != nil {
			t.Fatalf("fingerprint: %v", err)
		}
		return cacheKey(spec, fp)
	}
	base := mk(func(*Spec) {})
	if mk(func(*Spec) {}) != base {
		t.Fatal("cache key not deterministic")
	}
	for name, mut := range map[string]func(*Spec){
		"engine":    func(s *Spec) { s.Engine = otherEngine(t) },
		"pricing":   func(s *Spec) { s.Pricing = "devex" },
		"warmstart": func(s *Spec) { s.WarmStart = true },
		"workers":   func(s *Spec) { s.Workers = 4 }, // resolved batch moves the fingerprint
		"topology":  func(s *Spec) { s.Topology = "b4"; s.Pairs = 4 },
		// Same model SHAPE, different instance: only the spec layer of the
		// key separates these — the milp fingerprint alone would alias.
		"seed": func(s *Spec) { s.Pairs = 3; s.Seed = 2 },
	} {
		if mk(mut) == base {
			t.Fatalf("%s change did not move the cache key", name)
		}
	}
	// Budget is a deadline, not a solve-determining option at fixed tree:
	// it deliberately shares the key. (Sound because only budget-independent
	// terminal results are stored — see cacheable and
	// TestTruncatedResultNotCached.)
	if mk(func(s *Spec) { s.BudgetSec = 60 }) != base {
		t.Fatal("budget changed the cache key")
	}
}

// TestTruncatedResultNotCached: a budget-limited (non-terminal) result is
// reported to its own client but never stored — the cache key excludes the
// budget, so storing it would serve the truncation to every bigger-budget
// resubmission forever. The resubmission must re-run the solver instead of
// hitting the cache.
func TestTruncatedResultNotCached(t *testing.T) {
	s := newServer(t, testConfig(t))
	s.Start()
	spec := func(budget float64) *Spec {
		return &Spec{Topology: "b4", Heuristic: "dp", Pairs: 12, Seed: 1, BudgetSec: budget}
	}
	j1, err := s.submit(spec(0.25))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	j1 = waitTerminal(t, s, j1.id, 60*time.Second)
	if j1.getState() != stateDone {
		t.Fatalf("budget-limited job %s: %s", j1.getState(), j1.errMsg)
	}
	if j1.result.Status == "optimal" {
		t.Fatal("b4/12-pair job proved optimality in 0.25s — budget did not bind")
	}
	if s.store.len() != 0 {
		t.Fatalf("budget-truncated %s result was stored", j1.result.Status)
	}
	// A bigger-budget resubmission of the same key is not answered from the
	// cache: it runs (or resumes) the search.
	j2, err := s.submit(spec(0.5))
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if j2.key != j1.key {
		t.Fatalf("budget moved the cache key: %016x vs %016x", j2.key, j1.key)
	}
	if j2.getState() == stateDone {
		t.Fatal("truncated result served as a cache hit at admission")
	}
	waitTerminal(t, s, j2.id, 60*time.Second)
	if runs := s.met.solverRuns.Value(); runs != 2 {
		t.Fatalf("resubmission after truncation took %d solver runs, want 2", runs)
	}
	if hits := s.met.cacheHits.Value(); hits != 0 {
		t.Fatalf("truncated result produced %d cache hits, want 0", hits)
	}
}

// TestSingleflightLeaderFailure: when the singleflight leader fails, waiting
// followers must re-claim leadership and run the solve themselves — this
// fall-through used to modify s.inflight unlocked and then unlock an
// unlocked mutex, crashing the daemon.
func TestSingleflightLeaderFailure(t *testing.T) {
	cfg := testConfig(t)
	s := newServer(t, cfg)
	// Break result persistence: the store's flush renames onto a directory
	// and fails, so every leader solves and then fails, forcing followers
	// through the leader-failed path.
	s.store.path = cfg.StateDir
	s.Start()
	var jobs []*job
	for i := 0; i < 3; i++ {
		j, err := s.submit(figure1Spec())
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		jobs = append(jobs, j)
	}
	for _, j := range jobs {
		got := waitTerminal(t, s, j.id, 60*time.Second)
		if got.getState() != stateFailed {
			t.Fatalf("job %s reached %s with a broken store, want failed", got.id, got.getState())
		}
		if !strings.Contains(got.errMsg, "persist result") {
			t.Fatalf("job %s failed for the wrong reason: %s", got.id, got.errMsg)
		}
	}
}

// TestRestoreQueueBeyondDepth: a ledger written by a daemon killed under
// full load holds more queued records than QueueDepth (running jobs persist
// as queued). The restarted daemon must re-admit all of them — refusing to
// start would strand the ledger — while new submissions stay capped.
func TestRestoreQueueBeyondDepth(t *testing.T) {
	cfg := testConfig(t)
	cfg.QueueDepth = 2
	qs := &checkpoint.QueueState{NextSeq: 3}
	for seed := int64(1); seed <= 3; seed++ {
		spec := &Spec{Topology: "figure1", Heuristic: "dp", Pairs: 3, Seed: seed, BudgetSec: 30}
		if _, _, err := spec.canonicalize(cfg.DefaultBudget, cfg.MaxBudget); err != nil {
			t.Fatalf("canonicalize: %v", err)
		}
		qs.Jobs = append(qs.Jobs, checkpoint.JobRecord{
			ID: fmt.Sprintf("j%06d", seed), Seq: uint64(seed), State: checkpoint.JobQueued,
			Key: uint64(seed), Spec: spec.canonicalJSON(), EnqueuedUnixNano: time.Now().UnixNano(),
		})
	}
	w := &checkpoint.Writer{Path: filepath.Join(cfg.StateDir, "queue.ckpt")}
	if err := w.Save(&checkpoint.Snapshot{Queue: qs}); err != nil {
		t.Fatalf("save ledger: %v", err)
	}
	s := newServer(t, cfg)
	if got := len(s.queue); got != 3 {
		t.Fatalf("restored queue holds %d jobs, want 3", got)
	}
	// Admission still enforces QueueDepth against the restored backlog.
	if _, err := s.submit(figure1Spec()); err == nil {
		t.Fatal("submission above QueueDepth accepted")
	}
	s.Start()
	for _, id := range []string{"j000001", "j000002", "j000003"} {
		j := waitTerminal(t, s, id, 60*time.Second)
		if j.getState() != stateDone {
			t.Fatalf("restored job %s: %s (%s)", id, j.getState(), j.errMsg)
		}
	}
}

// TestEventStreamReportsDroppedEvents: when a job's event buffer overflows,
// the NDJSON stream ends with an events_dropped trailer so a truncated
// stream is distinguishable from a complete one.
func TestEventStreamReportsDroppedEvents(t *testing.T) {
	s := newServer(t, testConfig(t))
	s.Start()
	j, err := s.submit(figure1Spec())
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitTerminal(t, s, j.id, 60*time.Second)
	for i := 0; i < maxBufferedEvents+7; i++ {
		j.events.Emit(obs.Event{Kind: obs.KindIncumbent})
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + j.id + "/events")
	if err != nil {
		t.Fatalf("get events: %v", err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	var trailer struct {
		Kind    string `json:"kind"`
		Dropped int    `json:"dropped"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &trailer); err != nil {
		t.Fatalf("last stream line is not JSON: %v\n%s", err, lines[len(lines)-1])
	}
	if trailer.Kind != "events_dropped" || trailer.Dropped < 7 {
		t.Fatalf("overflowed stream did not end with a dropped trailer: %+v", trailer)
	}
}

// TestRetryAfterOnRejection: 429 (queue full) and 503 (draining) responses
// carry a Retry-After header so a resilient client (gapsweep) can pace its
// retries off the daemon's own hint instead of guessing.
func TestRetryAfterOnRejection(t *testing.T) {
	cfg := testConfig(t)
	cfg.QueueDepth = 2
	s := newServer(t, cfg) // pool not started: nothing drains the queue
	ts := httptest.NewServer(s)
	defer ts.Close()

	post := func() *http.Response {
		t.Helper()
		body, _ := json.Marshal(&Spec{Topology: "figure1", Heuristic: "dp", Pairs: 3, Seed: int64(len(s.order) + 1)})
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("post: %v", err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}
	for i := 0; i < 2; i++ {
		if resp := post(); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("fill %d: status %d", i, resp.StatusCode)
		}
	}
	resp := post()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 || ra > 30 {
		t.Fatalf("429 Retry-After %q, want an integer in [1, 30]", resp.Header.Get("Retry-After"))
	}
	// The hint scales with the backlog: 2 queued jobs over 2 workers → 2s.
	if want := 1 + cfg.QueueDepth/cfg.Workers; ra != want {
		t.Fatalf("429 Retry-After %d, want %d (1 + queued/workers)", ra, want)
	}

	// Draining: 503 with the restart-scale hint.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	resp = post()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("drain status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "1" {
		t.Fatalf("drain Retry-After %q, want \"1\"", resp.Header.Get("Retry-After"))
	}
}

// TestReadyzSplitsFromHealthz: /healthz stays an unconditional liveness "ok"
// while /readyz flips to 503 before restore completes and once a drain
// begins.
func TestReadyzSplitsFromHealthz(t *testing.T) {
	s := newServer(t, testConfig(t))
	ts := httptest.NewServer(s)
	defer ts.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("get %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, strings.TrimSpace(string(body))
	}

	if code, body := get("/readyz"); code != 200 || body != "ok" {
		t.Fatalf("fresh readyz = %d %q, want 200 ok", code, body)
	}
	// Before restoreQueue completes the server is alive but not ready; the
	// window is not reachable over HTTP in-process (New returns only after
	// restore), so flip the gate directly to pin the handler's contract.
	s.ready.Store(false)
	if code, body := get("/readyz"); code != 503 || body != "not ready" {
		t.Fatalf("unrestored readyz = %d %q, want 503 \"not ready\"", code, body)
	}
	if code, body := get("/healthz"); code != 200 || body != "ok" {
		t.Fatalf("healthz while not ready = %d %q, want 200 ok", code, body)
	}
	s.ready.Store(true)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	code, body := get("/readyz")
	if code != 503 || body != "draining" {
		t.Fatalf("draining readyz = %d %q, want 503 \"draining\"", code, body)
	}
	if code, body := get("/healthz"); code != 200 || body != "ok" {
		t.Fatalf("healthz while draining = %d %q, want 200 ok (liveness must not flap a drain)", code, body)
	}
}

// TestKillSkipsDrainPersistence: Kill is the SIGKILL stand-in — the ledger
// holds the admission-time persist (job queued), not a drain-time update, and
// a restart on the same StateDir re-admits and completes the job.
func TestKillSkipsDrainPersistence(t *testing.T) {
	cfg := testConfig(t)
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	j, err := s.submit(&Spec{Topology: "figure1", Heuristic: "dp", Pairs: 3, Seed: 9})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	s.Kill() // pool never started; the job is still queued in the ledger
	snap, err := checkpoint.Load(filepath.Join(cfg.StateDir, "queue.ckpt"))
	if err != nil || snap.Queue == nil || len(snap.Queue.Jobs) != 1 {
		t.Fatalf("ledger after Kill: %+v, %v", snap, err)
	}
	if snap.Queue.Jobs[0].State != checkpoint.JobQueued {
		t.Fatalf("job persisted as %d, want queued", snap.Queue.Jobs[0].State)
	}
	s2 := newServer(t, cfg)
	s2.Start()
	got := waitTerminal(t, s2, j.id, 60*time.Second)
	if got.getState() != stateDone {
		t.Fatalf("re-admitted job %s: %s (%s)", j.id, got.getState(), got.errMsg)
	}
}

// otherEngine names an engine different from the process default, so the
// key-composition test moves the engine axis regardless of environment.
func otherEngine(t *testing.T) string {
	t.Helper()
	spec := figure1Spec()
	if _, _, err := spec.canonicalize(30*time.Second, time.Minute); err != nil {
		t.Fatalf("canonicalize: %v", err)
	}
	if spec.Engine == "dense" {
		return "sparse"
	}
	return "dense"
}
