package serve

import "repro/internal/obs"

// metrics is the daemon's instrument bundle, registered on one obs.Registry
// per server so tests can assert counter deltas in isolation. The solver-run
// counter is the load-bearing one: a cache hit must leave it untouched,
// which is how "same job twice = one solve" is verified.
type metrics struct {
	jobsSubmitted *obs.Counter
	jobsCompleted *obs.Counter
	jobsFailed    *obs.Counter
	jobsRejected  *obs.Counter
	cacheHits     *obs.Counter
	cacheMisses   *obs.Counter
	solverRuns    *obs.Counter
	queueDepth    *obs.Gauge
	workersBusy   *obs.Gauge
	jobSeconds    *obs.Histogram
	buildSeconds  *obs.Histogram
	solveSeconds  *obs.Histogram
	verifySeconds *obs.Histogram
}

func newMetrics(r *obs.Registry) *metrics {
	return &metrics{
		jobsSubmitted: r.Counter("serve_jobs_submitted_total"),
		jobsCompleted: r.Counter("serve_jobs_completed_total"),
		jobsFailed:    r.Counter("serve_jobs_failed_total"),
		jobsRejected:  r.Counter("serve_jobs_rejected_total"),
		cacheHits:     r.Counter("serve_cache_hits_total"),
		cacheMisses:   r.Counter("serve_cache_misses_total"),
		solverRuns:    r.Counter("serve_solver_runs_total"),
		queueDepth:    r.Gauge("serve_queue_depth"),
		workersBusy:   r.Gauge("serve_workers_busy"),
		jobSeconds:    r.Histogram("serve_job_seconds"),
		buildSeconds:  r.Histogram("serve_phase_build_seconds"),
		solveSeconds:  r.Histogram("serve_phase_solve_seconds"),
		verifySeconds: r.Histogram("serve_phase_verify_seconds"),
	}
}
