package serve

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math/rand"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/demand"
	"repro/internal/lp"
	"repro/internal/mcf"
	"repro/internal/milp"
	"repro/internal/obs"
	"repro/internal/topology"
)

// Spec is one gap-search job as submitted over the wire. The zero value of
// every optional field selects the same default cmd/gapfinder uses, so a
// job body can be as small as {"topology":"b4","heuristic":"dp"}.
type Spec struct {
	// Topology names a builtin: b4, abilene, swan, figure1, circle-N-M.
	Topology string `json:"topology"`
	// Heuristic is dp or pop.
	Heuristic string `json:"heuristic"`
	// Pairs is the demand-support size (-1 = all reachable pairs; default 12).
	Pairs int `json:"pairs,omitempty"`
	// Paths is the number of paths per pair (default 2).
	Paths int `json:"paths,omitempty"`
	// Seed draws the demand support (and POP assignments, offset by 7 —
	// the gapfinder convention).
	Seed int64 `json:"seed,omitempty"`
	// Threshold is DP's pinning threshold (default 5).
	Threshold float64 `json:"threshold,omitempty"`
	// Partitions and Instantiations configure POP (defaults 2 and 3).
	Partitions     int `json:"partitions,omitempty"`
	Instantiations int `json:"instantiations,omitempty"`
	// MaxDemand bounds each demand (default 100).
	MaxDemand float64 `json:"max_demand,omitempty"`
	// BudgetSec is the solve budget in seconds; it is clamped to the
	// server's MaxBudget (default: the server's DefaultBudget).
	BudgetSec float64 `json:"budget_sec,omitempty"`
	// TargetGap, when > 0, stops at the first input with gap >= TargetGap —
	// the "is there a gap above the threshold" query.
	TargetGap float64 `json:"target_gap,omitempty"`
	// Engine selects the LP simplex engine: auto, dense, sparse. "auto" is
	// resolved to the process default at admission so the cache key is
	// explicit about which engine priced the job.
	Engine string `json:"engine,omitempty"`
	// Pricing selects the sparse engine's pivot rule: auto, dantzig, devex.
	Pricing string `json:"pricing,omitempty"`
	// WarmStart warm-starts node relaxations from the parent basis.
	WarmStart bool `json:"warm_start,omitempty"`
	// Workers sets the solver's wave-pool size (default 1). Note the
	// resolved batch — and therefore the explored tree and the search
	// fingerprint — depends on it (batch = 2*Workers when Workers > 1).
	Workers int `json:"workers,omitempty"`
}

// canonicalize fills defaults in place and validates every field, returning
// the parsed engine/pricing. It is the single admission gate: a Spec that
// canonicalizes once never fails to build later in a worker.
func (s *Spec) canonicalize(defaultBudget, maxBudget time.Duration) (lp.Engine, lp.Pricing, error) {
	if _, err := topology.ByName(s.Topology); err != nil {
		return 0, 0, err
	}
	switch s.Heuristic {
	case "dp", "pop":
	default:
		return 0, 0, fmt.Errorf("serve: unknown heuristic %q (want dp or pop)", s.Heuristic)
	}
	if s.Pairs == 0 {
		s.Pairs = 12
	}
	if s.Pairs < -1 {
		return 0, 0, fmt.Errorf("serve: pairs %d out of range", s.Pairs)
	}
	if s.Paths == 0 {
		s.Paths = 2
	}
	if s.Paths < 1 {
		return 0, 0, fmt.Errorf("serve: paths %d out of range", s.Paths)
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Threshold == 0 {
		s.Threshold = 5
	}
	if s.Threshold < 0 {
		return 0, 0, fmt.Errorf("serve: negative threshold %g", s.Threshold)
	}
	if s.Partitions == 0 {
		s.Partitions = 2
	}
	if s.Partitions < 1 {
		return 0, 0, fmt.Errorf("serve: partitions %d out of range", s.Partitions)
	}
	if s.Instantiations == 0 {
		s.Instantiations = 3
	}
	if s.Instantiations < 1 {
		return 0, 0, fmt.Errorf("serve: instantiations %d out of range", s.Instantiations)
	}
	if s.MaxDemand == 0 {
		s.MaxDemand = 100
	}
	if s.MaxDemand < 0 {
		return 0, 0, fmt.Errorf("serve: negative max_demand %g", s.MaxDemand)
	}
	if s.BudgetSec == 0 {
		s.BudgetSec = defaultBudget.Seconds()
	}
	if s.BudgetSec < 0 {
		return 0, 0, fmt.Errorf("serve: negative budget_sec %g", s.BudgetSec)
	}
	if max := maxBudget.Seconds(); s.BudgetSec > max {
		s.BudgetSec = max
	}
	if s.TargetGap < 0 {
		return 0, 0, fmt.Errorf("serve: negative target_gap %g", s.TargetGap)
	}
	if s.Workers == 0 {
		s.Workers = 1
	}
	if s.Workers < 1 || s.Workers > 64 {
		return 0, 0, fmt.Errorf("serve: workers %d out of range", s.Workers)
	}
	eng, err := lp.ParseEngine(s.Engine)
	if err != nil {
		return 0, 0, err
	}
	if eng == lp.EngineAuto {
		eng = lp.DefaultEngine()
	}
	s.Engine = eng.String()
	pricing, err := lp.ParsePricing(s.Pricing)
	if err != nil {
		return 0, 0, err
	}
	s.Pricing = pricing.String()
	return eng, pricing, nil
}

// budget is the per-job solve budget.
func (s *Spec) budget() time.Duration {
	return time.Duration(s.BudgetSec * float64(time.Second))
}

// gapProblem is the slice of core.DPGapProblem / core.POPGapProblem the
// daemon drives. Both types satisfy it.
type gapProblem interface {
	Fingerprint(opts milp.Options) (uint64, error)
	Solve(opts milp.Options) (*core.Result, error)
	Resume(st *checkpoint.BnBState, opts milp.Options) (*core.Result, error)
}

// problem constructs a fresh gap problem from the canonical spec. It must be
// called once per Fingerprint/Solve/Resume invocation: the POP problem's
// build consumes draws from its Rng, so a shared value would fingerprint one
// model and solve another.
func (s *Spec) problem() (gapProblem, error) {
	g, err := topology.ByName(s.Topology)
	if err != nil {
		return nil, err
	}
	var set *demand.Set
	if s.Pairs < 0 {
		set = demand.ReachablePairs(g)
	} else {
		set = demand.RandomPairs(g, s.Pairs, rand.New(rand.NewSource(s.Seed)))
	}
	inst, err := mcf.NewInstance(g, set, s.Paths)
	if err != nil {
		return nil, err
	}
	input := core.InputConstraints{MaxDemand: s.MaxDemand}
	switch s.Heuristic {
	case "dp":
		return &core.DPGapProblem{Inst: inst, Threshold: s.Threshold, Input: input}, nil
	case "pop":
		return &core.POPGapProblem{
			Inst: inst, Partitions: s.Partitions, Instantiations: s.Instantiations,
			Rng: rand.New(rand.NewSource(s.Seed + 7)), Input: input,
		}, nil
	default:
		return nil, fmt.Errorf("serve: unknown heuristic %q", s.Heuristic)
	}
}

// options builds the solver options for this spec, mirroring cmd/gapfinder's
// whitebox settings (depth-first, stall rule at budget/3) so a job solved
// through the daemon reports the same SUMMARY the CLI would.
func (s *Spec) options(tracer *obs.Tracer) milp.Options {
	eng, _ := lp.ParseEngine(s.Engine)
	pricing, _ := lp.ParsePricing(s.Pricing)
	budget := s.budget()
	opts := milp.Options{
		TimeLimit:    budget,
		DepthFirst:   true,
		StallWindow:  budget / 3,
		StallImprove: 0.005,
		Workers:      s.Workers,
		WarmStart:    s.WarmStart,
		Engine:       eng,
		Pricing:      pricing,
		Tracer:       tracer,
	}
	if s.TargetGap > 0 {
		t := s.TargetGap
		opts.Target = &t
	}
	return opts
}

// cacheKey composes the result-store key from three layers:
//
//   - the milp search fingerprint (model shape + resolved batch +
//     depth-first — what determines the explored tree);
//   - the canonical spec with the budget zeroed. The fingerprint alone is
//     NOT sufficient: it hashes the model's shape, not its coefficients, so
//     two seeds drawing different demand pairs of the same count would
//     alias. The spec pins the exact instance — and carries the
//     solve-determining options (engine, pricing, warm-start) the ledger
//     key must distinguish because they change effort counters. The budget
//     is excluded deliberately: it is a deadline, not a different search.
//     The exclusion is sound because only budget-independent answers are
//     ever stored (see cacheable) — a truncated solve leaves its
//     checkpoint behind instead of a store entry, so a bigger-budget
//     resubmission resumes the search rather than inheriting the
//     truncation as a permanent cache hit;
//   - the presolve setting of the heuristic-side one-shot LPs (a constant
//     in this build, recorded so a future toggle cannot silently alias).
//
// Two submissions with the same key are the same solve — same answer, same
// effort counters — which is what makes a cache hit indistinguishable from
// a re-run. The spec must already be canonicalized.
func cacheKey(spec *Spec, fp uint64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], fp)
	h.Write(buf[:])
	keyed := *spec
	keyed.BudgetSec = 0
	h.Write([]byte(keyed.canonicalJSON()))
	const presolveOneShots = 1 // internal/mcf oneShotOpts: always on
	h.Write([]byte{presolveOneShots})
	return h.Sum64()
}

// canonicalJSON is the spec's canonical wire form — fields in struct order,
// defaults filled — used both for queue persistence and for echoing the job
// back to clients.
func (s *Spec) canonicalJSON() string {
	b, err := json.Marshal(s)
	if err != nil {
		// A Spec is plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("serve: marshal spec: %v", err))
	}
	return string(b)
}
