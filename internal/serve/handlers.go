package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// JobView is the wire form of a job's state — what POST /v1/jobs and
// GET /v1/jobs/{id} return. Exported so HTTP clients (internal/sweep) decode
// the same shape the daemon encodes instead of shadowing it.
type JobView struct {
	ID       string          `json:"id"`
	State    string          `json:"state"`
	Key      string          `json:"key"`
	Spec     json.RawMessage `json:"spec"`
	Enqueued string          `json:"enqueued"`
	Error    string          `json:"error,omitempty"`
	Result   *StoredResult   `json:"result,omitempty"`
}

func (s *Server) viewOf(j *job) JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobView{
		ID:       j.id,
		State:    j.state,
		Key:      fmt.Sprintf("%016x", j.key),
		Spec:     json.RawMessage(j.spec.canonicalJSON()),
		Enqueued: j.enqueued.UTC().Format(time.RFC3339Nano),
		Error:    j.errMsg,
		Result:   j.result,
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

func (s *Server) initMux() {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("GET /v1/results/{key}", s.handleGetResult)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	// /healthz is liveness — "this process is up" — and stays unconditional:
	// a draining daemon is alive and must not be restarted by its supervisor
	// mid-drain. /readyz is readiness — "this process will accept a job" —
	// and goes 503 before the restored backlog is re-admitted and again the
	// moment a drain begins, so clients and balancers route elsewhere.
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		s.cfg.Registry.WriteProm(w)
	})
	s.mux = mux
}

// ServeHTTP makes the Server an http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		s.met.jobsRejected.Inc()
		writeError(w, http.StatusBadRequest, fmt.Sprintf("serve: bad job spec: %v", err))
		return
	}
	j, err := s.submit(&spec)
	if err != nil {
		var se *submitError
		if errors.As(err, &se) {
			if se.retryAfter > 0 {
				w.Header().Set("Retry-After", strconv.Itoa(int(se.retryAfter.Round(time.Second)/time.Second)))
			}
			writeError(w, se.code, se.msg)
		} else {
			writeError(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	code := http.StatusAccepted
	if j.getState() == stateDone {
		code = http.StatusOK // answered from the results store
	}
	writeJSON(w, code, s.viewOf(j))
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := append([]*job(nil), s.order...)
	s.mu.Unlock()
	views := make([]JobView, len(jobs))
	for i, j := range jobs {
		views[i] = s.viewOf(j)
	}
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) jobByID(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "serve: no such job")
		return
	}
	writeJSON(w, http.StatusOK, s.viewOf(j))
}

// handleJobEvents streams the job's solver events as NDJSON (the obs JSONL
// record form), following the job until it reaches a terminal state or the
// client goes away.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j := s.jobByID(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "serve: no such job")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	idx := 0
	ticker := time.NewTicker(100 * time.Millisecond)
	defer ticker.Stop()
	for {
		recs, total := j.events.snapshot(idx)
		for _, rec := range recs {
			if err := enc.Encode(rec); err != nil {
				return
			}
		}
		idx = total
		if len(recs) > 0 && flusher != nil {
			flusher.Flush()
		}
		select {
		case <-j.done:
			// Drain anything emitted between the snapshot and the close.
			recs, _ := j.events.snapshot(idx)
			for _, rec := range recs {
				enc.Encode(rec)
			}
			// Overflow trailer: without it a stream truncated by the event
			// buffer cap would be indistinguishable from a complete one.
			if n := j.events.droppedCount(); n > 0 {
				enc.Encode(struct {
					Kind    string `json:"kind"`
					Dropped int    `json:"dropped"`
				}{"events_dropped", n})
			}
			return
		case <-r.Context().Done():
			return
		case <-s.baseCtx.Done():
			return
		case <-ticker.C:
		}
	}
}

func (s *Server) handleGetResult(w http.ResponseWriter, r *http.Request) {
	key, err := strconv.ParseUint(r.PathValue("key"), 16, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "serve: bad result key (want 16 hex digits)")
		return
	}
	sr := s.store.get(key)
	if sr == nil {
		writeError(w, http.StatusNotFound, "serve: no result for key")
		return
	}
	writeJSON(w, http.StatusOK, sr)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.stats())
}

// handleReadyz answers readiness: 503 with a Retry-After hint while the
// daemon is not accepting jobs (drain in progress, or the persisted backlog
// not yet re-admitted), plain "ok" otherwise.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		w.Header().Set("Retry-After", "1")
		msg := "not ready\n"
		if draining {
			msg = "draining\n"
		}
		http.Error(w, strings.TrimSuffix(msg, "\n"), http.StatusServiceUnavailable)
		return
	}
	w.Write([]byte("ok\n"))
}
