// Package serve is the gap-search daemon behind cmd/gapserved: a
// stdlib-only HTTP front end over the white-box gap search. It layers, from
// the outside in:
//
//   - admission: POST /v1/jobs canonicalizes the spec, computes the cache
//     key, and either answers from the results store (cache hit), rejects
//     when the queue is full (429), or enqueues;
//   - a bounded worker pool that solves jobs with per-job deadlines,
//     checkpointing through internal/checkpoint on the configured cadence
//     so a killed daemon resumes mid-search;
//   - a durable results store keyed by the milp search fingerprint extended
//     with the solve-determining options (engine, pricing, warm-start,
//     presolve) — see cacheKey;
//   - a durable job queue (checkpoint.QueueState) persisted on every
//     mutation, so queued and in-flight jobs survive a crash or drain and
//     re-run to their bit-identical answers.
//
// Every decision is surfaced through an obs.Registry (cache hits/misses,
// queue depth, worker utilization, per-phase timings) and each job's solver
// events stream as NDJSON via /v1/jobs/{id}/events.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/milp"
	"repro/internal/obs"
)

// Config tunes a Server. Zero values select the documented defaults.
type Config struct {
	// StateDir holds the durable state: queue.ckpt, results.json, and one
	// ckpt-<key>.ckpt per in-flight job. Required.
	StateDir string
	// Workers is the pool size (default 1). Each worker runs one job at a
	// time; the job's own solver parallelism is Spec.Workers.
	Workers int
	// QueueDepth caps the jobs waiting for a worker; submissions beyond it
	// are rejected with 429 (default 64).
	QueueDepth int
	// DefaultBudget is the solve budget for jobs that do not set one
	// (default 30s); MaxBudget clamps every job's budget (default 10m).
	DefaultBudget time.Duration
	MaxBudget     time.Duration
	// DeadlineGrace is added to a job's budget to form its hard context
	// deadline — the backstop for a solver that overruns its TimeLimit
	// (default 10s).
	DeadlineGrace time.Duration
	// CheckpointEvery is the milp checkpoint cadence in waves (0 = every
	// wave boundary).
	CheckpointEvery int
	// Registry receives the daemon's metrics (nil = a fresh registry,
	// exposed at /metrics either way).
	Registry *obs.Registry
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

func (c *Config) fill() error {
	if c.StateDir == "" {
		return fmt.Errorf("serve: Config.StateDir is required")
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.DefaultBudget <= 0 {
		c.DefaultBudget = 30 * time.Second
	}
	if c.MaxBudget <= 0 {
		c.MaxBudget = 10 * time.Minute
	}
	if c.DeadlineGrace <= 0 {
		c.DeadlineGrace = 10 * time.Second
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
	return nil
}

func (c *Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// Job states as reported over the wire.
const (
	stateQueued  = "queued"
	stateRunning = "running"
	stateDone    = "done"
	stateFailed  = "failed"
)

// job is one admitted gap search.
type job struct {
	id   string
	seq  uint64
	spec *Spec
	key  uint64 // cache key (fingerprint + solve options)
	fp   uint64 // milp search fingerprint

	events *eventBuffer

	mu       sync.Mutex
	state    string
	errMsg   string
	result   *StoredResult
	enqueued time.Time
	done     chan struct{} // closed when the job reaches done/failed
}

func (j *job) getState() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

func (j *job) setRunning() {
	j.mu.Lock()
	j.state = stateRunning
	j.mu.Unlock()
}

// requeued flips a drained running job back to queued (the persisted ledger
// re-admits it on restart; its checkpoint file carries the search state).
func (j *job) requeued() {
	j.mu.Lock()
	j.state = stateQueued
	j.mu.Unlock()
}

func (j *job) finish(sr *StoredResult) {
	j.mu.Lock()
	j.state = stateDone
	j.result = sr
	close(j.done)
	j.mu.Unlock()
}

func (j *job) fail(msg string) {
	j.mu.Lock()
	j.state = stateFailed
	j.errMsg = msg
	close(j.done)
	j.mu.Unlock()
}

// ledgerState projects the live state onto the persisted JobState: running
// jobs persist as queued (they re-run — resuming from their checkpoint —
// after a restart).
func (j *job) ledgerState() checkpoint.JobState {
	switch j.getState() {
	case stateDone:
		return checkpoint.JobDone
	case stateFailed:
		return checkpoint.JobFailed
	default:
		return checkpoint.JobQueued
	}
}

// eventBuffer is a Sink that retains each job's solver events as JSONL
// records for the /v1/jobs/{id}/events stream. The per-node LP chatter
// (lp_solve_start/end, node_explored/pruned/branched, polish attempts) is
// filtered out: the stream is incumbent progress, not a solver trace. The
// cap bounds a runaway job's memory; overflow drops newest-first and is
// reported by the handler.
type eventBuffer struct {
	mu      sync.Mutex
	recs    []obs.Record
	dropped int
}

const maxBufferedEvents = 4096

func (b *eventBuffer) Emit(e obs.Event) {
	switch e.Kind {
	case obs.KindIncumbent, obs.KindStall, obs.KindPhaseStart, obs.KindPhaseEnd,
		obs.KindSolveDone, obs.KindCheckpointWrite, obs.KindResume, obs.KindFaultInjected:
	default:
		return
	}
	b.mu.Lock()
	if len(b.recs) < maxBufferedEvents {
		b.recs = append(b.recs, obs.NewRecord(e))
	} else {
		b.dropped++
	}
	b.mu.Unlock()
}

// snapshot returns the records from index from on, plus the total retained.
func (b *eventBuffer) snapshot(from int) ([]obs.Record, int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if from > len(b.recs) {
		from = len(b.recs)
	}
	return b.recs[from:], len(b.recs)
}

// droppedCount reports how many events overflowed the buffer.
func (b *eventBuffer) droppedCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// Server is the daemon: admission, queue, pool, store, and handlers behind
// one http.Handler. Create with New, start the pool with Start, and stop
// with Shutdown (which drains gracefully: in-flight jobs checkpoint and
// re-queue, the ledger persists).
type Server struct {
	cfg Config
	met *metrics

	store *store
	qw    *checkpoint.Writer
	// persistMu serializes ledger snapshot+write pairs; see persistQueue.
	persistMu sync.Mutex

	mu       sync.Mutex
	jobs     map[string]*job
	order    []*job          // admission order
	queue    chan *job       // bounded buffer between admission and the pool
	inflight map[uint64]*job // cache-key singleflight: key -> solving job
	nextSeq  uint64
	draining bool

	busy       atomic.Int64
	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup
	started    bool

	// ready gates /readyz: false until restoreQueue has re-admitted the
	// persisted backlog, false again the moment a drain (or Kill) begins.
	// /healthz stays an unconditional liveness "ok" — the split lets a load
	// balancer stop routing to a draining daemon it should not yet restart.
	ready atomic.Bool

	// OnJobDone, when non-nil, is called after a job reaches done (not on
	// cache hits at admission) — cmd/gapserved prints SUMMARY lines with it.
	OnJobDone func(id string, sr *StoredResult)

	mux *http.ServeMux
}

// New builds a Server over cfg.StateDir, reloading the results store and the
// persisted job queue (jobs in state queued — including jobs that were
// running at the crash — are re-admitted in their original order).
func New(cfg Config) (*Server, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(cfg.StateDir, 0o755); err != nil {
		return nil, err
	}
	st, err := openStore(filepath.Join(cfg.StateDir, "results.json"))
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		met:        newMetrics(cfg.Registry),
		store:      st,
		qw:         &checkpoint.Writer{Path: filepath.Join(cfg.StateDir, "queue.ckpt")},
		jobs:       make(map[string]*job),
		queue:      make(chan *job, cfg.QueueDepth),
		inflight:   make(map[uint64]*job),
		baseCtx:    ctx,
		baseCancel: cancel,
	}
	s.initMux()
	if err := s.restoreQueue(); err != nil {
		cancel()
		return nil, err
	}
	s.ready.Store(true)
	return s, nil
}

// restoreQueue reloads the persisted ledger: terminal jobs reappear with
// their stored results, queued ones go back on the queue in Seq order.
func (s *Server) restoreQueue() error {
	snap, err := checkpoint.Load(s.qw.Path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("serve: queue ledger: %w", err)
	}
	if snap.Queue == nil {
		return fmt.Errorf("serve: %s does not hold a queue snapshot", s.qw.Path)
	}
	s.nextSeq = snap.Queue.NextSeq
	// Running jobs persist as JobQueued, so a daemon killed under full load
	// leaves up to QueueDepth+Workers queued records. Grow the channel to
	// re-admit all of them — refusing to start would strand the ledger —
	// while submit keeps capping NEW admissions at cfg.QueueDepth.
	queued := 0
	for _, rec := range snap.Queue.Jobs {
		if rec.State != checkpoint.JobDone && rec.State != checkpoint.JobFailed {
			queued++
		}
	}
	if queued > cap(s.queue) {
		s.queue = make(chan *job, queued)
	}
	for _, rec := range snap.Queue.Jobs {
		var spec Spec
		if err := json.Unmarshal([]byte(rec.Spec), &spec); err != nil {
			return fmt.Errorf("serve: queue ledger job %s: %w", rec.ID, err)
		}
		j := &job{
			id: rec.ID, seq: rec.Seq, spec: &spec, key: rec.Key,
			events: &eventBuffer{}, done: make(chan struct{}),
			enqueued: time.Unix(0, rec.EnqueuedUnixNano),
		}
		if rec.State == checkpoint.JobQueued {
			// Recompute the milp fingerprint the worker will validate its
			// checkpoint against: the spec is canonical, so the rebuilt
			// model is the one the pre-restart daemon was solving.
			pr, err := spec.problem()
			if err != nil {
				return fmt.Errorf("serve: queue ledger job %s: %w", rec.ID, err)
			}
			if j.fp, err = pr.Fingerprint(spec.options(nil)); err != nil {
				return fmt.Errorf("serve: queue ledger job %s: %w", rec.ID, err)
			}
		}
		switch rec.State {
		case checkpoint.JobDone:
			j.state = stateDone
			// Nil for a job that finished budget-truncated: such results
			// are deliberately never stored (see cacheable), so after a
			// restart the job reads done with no result attached.
			j.result = s.store.get(rec.Key)
			close(j.done)
		case checkpoint.JobFailed:
			j.state = stateFailed
			j.errMsg = "failed before restart"
			close(j.done)
		default:
			j.state = stateQueued
			s.queue <- j // cannot block: the channel was sized to the queued count above
		}
		s.jobs[j.id] = j
		s.order = append(s.order, j)
	}
	s.met.queueDepth.Set(float64(len(s.queue)))
	return nil
}

// Start launches the worker pool. Safe to call once.
func (s *Server) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.mu.Unlock()
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.workerLoop()
		}()
	}
}

// Shutdown drains the daemon: new submissions are rejected, running jobs
// are cancelled at the next wave boundary (their checkpoints hold the
// search state), and the job ledger is persisted so a restarted daemon
// re-admits everything unfinished. It returns when the pool has stopped or
// ctx expires.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.ready.Store(false)
	s.baseCancel()
	stopped := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(stopped)
	}()
	var err error
	select {
	case <-stopped:
	case <-ctx.Done():
		err = ctx.Err()
	}
	if perr := s.persistQueue(); perr != nil && err == nil {
		err = perr
	}
	return err
}

// Kill stops the server abruptly, WITHOUT the drain-time queue persistence —
// the in-process approximation of SIGKILL for crash tests. The durable state
// is whatever the last mutation-time persist and wave-cadence checkpoints
// already wrote, which is exactly the guarantee a real kill -9 leaves behind:
// a New on the same StateDir re-admits the queue and resumes the searches.
func (s *Server) Kill() {
	s.ready.Store(false)
	s.baseCancel()
	s.wg.Wait()
}

// persistQueue writes the job ledger (every admitted job, in admission
// order) through the atomic checkpoint writer. persistMu spans the snapshot
// AND the write: checkpoint.Writer has no internal lock, so two concurrent
// persists could otherwise rename out of order and leave the older snapshot
// on disk, dropping the most recent state transition.
func (s *Server) persistQueue() error {
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	s.mu.Lock()
	qs := &checkpoint.QueueState{NextSeq: s.nextSeq, Jobs: make([]checkpoint.JobRecord, 0, len(s.order))}
	for _, j := range s.order {
		qs.Jobs = append(qs.Jobs, checkpoint.JobRecord{
			ID: j.id, Seq: j.seq, State: j.ledgerState(), Key: j.key,
			Spec: j.spec.canonicalJSON(), EnqueuedUnixNano: j.enqueued.UnixNano(),
		})
	}
	s.mu.Unlock()
	return s.qw.Save(&checkpoint.Snapshot{Queue: qs})
}

// submitError is an admission failure with its HTTP status. retryAfter,
// when positive, becomes a Retry-After header: 429/503 rejections are
// transient, and the hint spares well-behaved clients from guessing a
// backoff against a queue whose depth they cannot see.
type submitError struct {
	code       int
	msg        string
	retryAfter time.Duration
}

func (e *submitError) Error() string { return e.msg }

// retryAfterHint estimates when a rejected submission is worth retrying. For
// a full queue it is a coarse queue-drain guess — one second per queued job
// per worker, clamped to [1s, 30s]; the daemon cannot know job durations, so
// the hint is pacing advice, not a promise. A draining daemon answers 1s
// flat: the operator is restarting it, and "come back in a second" is the
// honest schedule for a supervised restart.
func (s *Server) retryAfterHint(queued int) time.Duration {
	d := time.Duration(1+queued/s.cfg.Workers) * time.Second
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d
}

// submit admits a job spec: canonicalize, compute the cache key, answer
// from the store when possible, reject when the queue is full, enqueue
// otherwise. Returns the job (terminal immediately on a cache hit).
func (s *Server) submit(spec *Spec) (*job, error) {
	s.met.jobsSubmitted.Inc()
	_, _, err := spec.canonicalize(s.cfg.DefaultBudget, s.cfg.MaxBudget)
	if err != nil {
		s.met.jobsRejected.Inc()
		return nil, &submitError{code: 400, msg: err.Error()}
	}
	// The fingerprint requires building the meta model once; admission pays
	// that cost (milliseconds at these model sizes) so cache hits never
	// touch a worker.
	pr, err := spec.problem()
	if err != nil {
		s.met.jobsRejected.Inc()
		return nil, &submitError{code: 400, msg: err.Error()}
	}
	fp, err := pr.Fingerprint(spec.options(nil))
	if err != nil {
		s.met.jobsRejected.Inc()
		return nil, &submitError{code: 400, msg: err.Error()}
	}
	key := cacheKey(spec, fp)

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.met.jobsRejected.Inc()
		return nil, &submitError{code: 503, msg: "serve: draining", retryAfter: time.Second}
	}
	s.nextSeq++
	j := &job{
		id: fmt.Sprintf("j%06d", s.nextSeq), seq: s.nextSeq, spec: spec,
		key: key, fp: fp, events: &eventBuffer{}, done: make(chan struct{}),
		enqueued: time.Now(), state: stateQueued,
	}
	if sr := s.store.get(key); sr != nil {
		// Cache hit at admission: the job is born terminal, no worker runs.
		j.state = stateDone
		j.result = sr
		close(j.done)
		s.jobs[j.id] = j
		s.order = append(s.order, j)
		s.mu.Unlock()
		s.met.cacheHits.Inc()
		s.cfg.logf("job %s: cache hit (key %016x)", j.id, key)
		if err := s.persistQueue(); err != nil {
			s.cfg.logf("job %s: persist queue: %v", j.id, err)
		}
		return j, nil
	}
	// The admission cap is cfg.QueueDepth even when restoreQueue grew the
	// channel past it to re-admit a crashed daemon's backlog. Checking len
	// under s.mu is race-free: submit is the only concurrent sender, so the
	// queue can only drain between the check and the send — which also
	// makes the send below non-blocking (len < QueueDepth <= cap).
	if queued := len(s.queue); queued >= s.cfg.QueueDepth {
		s.nextSeq-- // not admitted; reuse the seq
		s.mu.Unlock()
		s.met.jobsRejected.Inc()
		return nil, &submitError{
			code: 429, msg: fmt.Sprintf("serve: queue full (%d jobs waiting)", s.cfg.QueueDepth),
			retryAfter: s.retryAfterHint(queued),
		}
	}
	s.queue <- j
	s.jobs[j.id] = j
	s.order = append(s.order, j)
	s.mu.Unlock()
	s.met.queueDepth.Set(float64(len(s.queue)))
	s.cfg.logf("job %s: queued (key %016x, budget %s)", j.id, key, spec.budget())
	if err := s.persistQueue(); err != nil {
		s.cfg.logf("job %s: persist queue: %v", j.id, err)
	}
	return j, nil
}

func (s *Server) workerLoop() {
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case j := <-s.queue:
			s.met.queueDepth.Set(float64(len(s.queue)))
			s.met.workersBusy.Set(float64(s.busy.Add(1)))
			s.runJob(j)
			s.met.workersBusy.Set(float64(s.busy.Add(-1)))
		}
	}
}

// ckptPath is the per-cache-key checkpoint file: two jobs with the same key
// are the same search, so a follower resumed after a crash picks up the
// leader's waves.
func (s *Server) ckptPath(key uint64) string {
	return filepath.Join(s.cfg.StateDir, fmt.Sprintf("ckpt-%016x.ckpt", key))
}

func (s *Server) runJob(j *job) {
	// Cache fast path: a duplicate submitted while this job sat in the
	// queue may already have a stored answer.
	if sr := s.store.get(j.key); sr != nil {
		s.met.cacheHits.Inc()
		j.finish(sr)
		s.notifyDone(j, sr)
		return
	}
	// Singleflight: while the same key is solving on another worker, wait
	// for the leader and serve its result instead of duplicating the
	// search. A leader can finish without a stored answer (failure, or a
	// budget-truncated solve — see cacheable), so a woken follower that
	// finds the store empty loops to claim leadership itself, re-acquiring
	// s.mu each iteration; another follower may have claimed first, in
	// which case it waits on that one.
	s.mu.Lock()
	for {
		leader, dup := s.inflight[j.key]
		if !dup {
			break
		}
		s.mu.Unlock()
		select {
		case <-leader.done:
		case <-s.baseCtx.Done():
			j.requeued() // drained while waiting; the ledger re-admits it
			return
		}
		if sr := s.store.get(j.key); sr != nil {
			s.met.cacheHits.Inc()
			j.finish(sr)
			s.notifyDone(j, sr)
			return
		}
		s.mu.Lock()
	}
	s.inflight[j.key] = j
	s.mu.Unlock()
	// clearInflight releases the key BEFORE the job signals done/failed, so
	// a waiting follower that finds no stored result can claim leadership
	// immediately instead of spinning on a map entry that is about to
	// vanish. The defer is the panic backstop; the delete is idempotent.
	clearInflight := func() {
		s.mu.Lock()
		delete(s.inflight, j.key)
		s.mu.Unlock()
	}
	defer clearInflight()

	s.met.cacheMisses.Inc()
	j.setRunning()
	start := time.Now()
	res, err := s.solve(j)
	if err != nil {
		if s.baseCtx.Err() != nil {
			j.requeued()
			s.cfg.logf("job %s: drained mid-solve (%v); will resume from checkpoint", j.id, err)
			return
		}
		s.met.jobsFailed.Inc()
		clearInflight()
		j.fail(err.Error())
		s.cfg.logf("job %s: failed: %v", j.id, err)
		if perr := s.persistQueue(); perr != nil {
			s.cfg.logf("job %s: persist queue: %v", j.id, perr)
		}
		return
	}
	if res.Solver.Status == milp.StatusInterrupted && s.baseCtx.Err() != nil {
		// Drain: the checkpoint written at the last wave boundary carries
		// the search; the restarted daemon re-admits the job and resumes.
		j.requeued()
		s.cfg.logf("job %s: drained at %d nodes; checkpoint retained", j.id, res.Solver.Nodes)
		return
	}
	sr := newStoredResult(j.key, j.fp, j.spec, res)
	if cacheable(j.spec, res) {
		if err := s.store.put(j.key, sr); err != nil {
			s.met.jobsFailed.Inc()
			clearInflight()
			j.fail(fmt.Sprintf("serve: persist result: %v", err))
			return
		}
		os.Remove(s.ckptPath(j.key)) // the stored result supersedes the snapshot
	} else {
		// A budget-truncated answer is reported to this job's client but
		// never stored: the cache key excludes the budget, so storing it
		// would serve the truncation to every later resubmission no matter
		// how large its budget. The checkpoint stays on disk instead, so
		// the next submission of this key resumes the search.
		s.cfg.logf("job %s: %s result not cached (budget-truncated); checkpoint retained", j.id, sr.Status)
	}
	s.met.jobsCompleted.Inc()
	s.met.jobSeconds.ObserveDuration(time.Since(start))
	s.met.buildSeconds.ObserveDuration(res.Timings.Build)
	s.met.solveSeconds.ObserveDuration(res.Timings.Solve)
	s.met.verifySeconds.ObserveDuration(res.Timings.Verify)
	clearInflight()
	j.finish(sr)
	s.cfg.logf("job %s: %s gap=%s nodes=%d in %s", j.id, sr.Status, sr.Gap, sr.Nodes, time.Since(start).Round(time.Millisecond))
	if err := s.persistQueue(); err != nil {
		s.cfg.logf("job %s: persist queue: %v", j.id, err)
	}
	s.notifyDone(j, sr)
}

// cacheable reports whether res is a budget-independent answer that may be
// stored and replayed to every later submission of the same cache key (the
// key deliberately excludes the budget — see cacheKey). Optimal,
// infeasible, and unbounded closures hold under any budget. A feasible stop
// is budget-independent only when it reached the spec's TargetGap: the
// deterministic wave order stops such a search at the same node under every
// budget that gets that far. A feasible stop from the time or stall rule —
// like an interrupted or no-incumbent one — is a truncation of this
// particular budget, so caching it would freeze the search forever.
func cacheable(spec *Spec, res *core.Result) bool {
	switch res.Solver.Status {
	case milp.StatusOptimal, milp.StatusInfeasible, milp.StatusUnbounded:
		return true
	case milp.StatusFeasible:
		return spec.TargetGap > 0 && res.Gap >= spec.TargetGap
	default: // interrupted, no-incumbent
		return false
	}
}

func (s *Server) notifyDone(j *job, sr *StoredResult) {
	if s.OnJobDone != nil {
		s.OnJobDone(j.id, sr)
	}
}

// solve runs (or resumes) the job's search under its deadline, counting the
// solver invocation. The checkpoint file is keyed by the cache key and
// validated by the milp fingerprint, so a stale or foreign snapshot falls
// back to a fresh solve instead of poisoning the search.
func (s *Server) solve(j *job) (*core.Result, error) {
	ctx, cancel := context.WithTimeout(s.baseCtx, j.spec.budget()+s.cfg.DeadlineGrace)
	defer cancel()
	opts := j.spec.options(obs.NewTracer(j.events))
	opts.Ctx = ctx
	opts.Checkpoint = s.ckptPath(j.key)
	opts.CheckpointEvery = s.cfg.CheckpointEvery

	pr, err := j.spec.problem()
	if err != nil {
		return nil, err
	}
	s.met.solverRuns.Inc()
	if snap, lerr := checkpoint.Load(opts.Checkpoint); lerr == nil && snap.BnB != nil && snap.BnB.Fingerprint == j.fp {
		s.cfg.logf("job %s: resuming from checkpoint (%d nodes done)", j.id, snap.BnB.Nodes)
		return pr.Resume(snap.BnB, opts)
	}
	return pr.Solve(opts)
}

// Stats is the /v1/stats payload.
type Stats struct {
	Jobs        map[string]int `json:"jobs"` // count per state
	QueueDepth  int            `json:"queue_depth"`
	WorkersBusy int64          `json:"workers_busy"`
	Results     int            `json:"results"`
	Draining    bool           `json:"draining"`
}

func (s *Server) stats() Stats {
	s.mu.Lock()
	st := Stats{
		Jobs:        map[string]int{},
		QueueDepth:  len(s.queue),
		WorkersBusy: s.busy.Load(),
		Draining:    s.draining,
	}
	for _, j := range s.order {
		st.Jobs[j.getState()]++
	}
	s.mu.Unlock()
	st.Results = s.store.len()
	return st
}
