package demand

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

func TestAllPairsCount(t *testing.T) {
	g := topology.Line(4)
	s := AllPairs(g)
	if s.Len() != 12 {
		t.Fatalf("len=%d, want 12", s.Len())
	}
	seen := map[Pair]bool{}
	for _, p := range s.Pairs() {
		if p.Src == p.Dst {
			t.Fatalf("degenerate pair %v", p)
		}
		if seen[p] {
			t.Fatalf("duplicate pair %v", p)
		}
		seen[p] = true
	}
}

func TestNewSetPanics(t *testing.T) {
	for _, pairs := range [][]Pair{
		{{0, 0}},
		{{0, 1}, {0, 1}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			NewSet(pairs)
		}()
	}
}

func TestVolumesRoundTrip(t *testing.T) {
	s := NewSet([]Pair{{0, 1}, {1, 2}})
	s.SetVolumes([]float64{3, 4})
	if s.Volume(0) != 3 || s.Volume(1) != 4 || s.Total() != 7 {
		t.Fatalf("volumes broken: %v", s.Volumes())
	}
	s.SetVolume(0, 5)
	if s.Total() != 9 {
		t.Fatalf("SetVolume broken")
	}
	cp := s.CopyVolumes()
	cp[0] = 99
	if s.Volume(0) == 99 {
		t.Fatal("CopyVolumes aliases")
	}
	c := s.Clone()
	c.SetVolume(1, 0)
	if s.Volume(1) != 4 {
		t.Fatal("Clone aliases")
	}
	w := s.WithVolumes([]float64{1, 1})
	if w.Total() != 2 || s.Total() != 9 {
		t.Fatal("WithVolumes wrong")
	}
}

func TestSetVolumesValidates(t *testing.T) {
	s := NewSet([]Pair{{0, 1}})
	for _, fn := range []func(){
		func() { s.SetVolumes([]float64{1, 2}) },
		func() { s.SetVolumes([]float64{-1}) },
		func() { s.SetVolume(0, -2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestUniformWithinRange(t *testing.T) {
	g := topology.Circle(6, 1)
	s := AllPairs(g)
	rng := rand.New(rand.NewSource(1))
	s.Uniform(rng, 2, 9)
	for _, v := range s.Volumes() {
		if v < 2 || v > 9 {
			t.Fatalf("volume %v out of [2,9]", v)
		}
	}
	if s.MaxVolume() > 9 {
		t.Fatalf("max=%v", s.MaxVolume())
	}
}

func TestGravityScalesToPeak(t *testing.T) {
	g := topology.B4()
	s := AllPairs(g)
	rng := rand.New(rand.NewSource(2))
	s.Gravity(rng, g, 50)
	if max := s.MaxVolume(); max < 49.999 || max > 50.001 {
		t.Fatalf("peak=%v, want 50", max)
	}
	for _, v := range s.Volumes() {
		if v <= 0 {
			t.Fatalf("gravity volume %v not positive", v)
		}
	}
}

func TestRandomPairsDistinct(t *testing.T) {
	g := topology.B4()
	rng := rand.New(rand.NewSource(3))
	s := RandomPairs(g, 10, rng)
	if s.Len() != 10 {
		t.Fatalf("len=%d", s.Len())
	}
	// Asking for more than available clamps.
	s2 := RandomPairs(topology.Line(3), 100, rng)
	if s2.Len() != 6 {
		t.Fatalf("clamped len=%d, want 6", s2.Len())
	}
}

func TestQuickTotalMatchesSum(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := topology.Circle(5+rng.Intn(4), 1)
		s := AllPairs(g)
		s.Uniform(rng, 0, 10)
		sum := 0.0
		for k := 0; k < s.Len(); k++ {
			sum += s.Volume(k)
		}
		return sum == s.Total()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestReachablePairsDirected(t *testing.T) {
	// Figure 1 is directed with edges 0->1, 1->2, 0->2: exactly three
	// reachable ordered pairs.
	g := topology.Figure1()
	s := ReachablePairs(g)
	if s.Len() != 3 {
		t.Fatalf("len=%d, want 3 (directed reachability)", s.Len())
	}
	rng := rand.New(rand.NewSource(4))
	rp := RandomPairs(g, 10, rng)
	if rp.Len() != 3 {
		t.Fatalf("RandomPairs sampled unreachable pairs: %v", rp.Pairs())
	}
}
