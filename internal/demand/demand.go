// Package demand models traffic demands between node pairs and provides
// the synthetic generators (uniform, gravity) that stand in for the
// historically observed demands the paper uses as goalposts.
package demand

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/topology"
)

// Pair is an ordered source/target node pair.
type Pair struct {
	Src, Dst topology.Node
}

func (p Pair) String() string { return fmt.Sprintf("%d->%d", p.Src, p.Dst) }

// Set is an ordered collection of demands: pairs plus volumes. The k-th
// element corresponds to demand k throughout the repository (flow variables,
// adversarial demand vectors, goalposts all index by this order).
type Set struct {
	pairs   []Pair
	volumes []float64
}

// NewSet builds a set over the given pairs with zero volumes. Duplicate or
// degenerate (src == dst) pairs panic: they would create ill-posed TE
// instances.
func NewSet(pairs []Pair) *Set {
	seen := make(map[Pair]bool, len(pairs))
	for _, p := range pairs {
		if p.Src == p.Dst {
			panic(fmt.Sprintf("demand: degenerate pair %v", p))
		}
		if seen[p] {
			panic(fmt.Sprintf("demand: duplicate pair %v", p))
		}
		seen[p] = true
	}
	return &Set{pairs: append([]Pair(nil), pairs...), volumes: make([]float64, len(pairs))}
}

// VolumeError reports a demand volume that cannot enter a TE instance:
// NaN, infinite, or negative. It is the typed rejection the constructors
// return (and the setters panic with) so callers can distinguish bad input
// from solver failures.
type VolumeError struct {
	Index int // demand index, -1 when not applicable
	Value float64
}

func (e *VolumeError) Error() string {
	if e.Index < 0 {
		return fmt.Sprintf("demand: invalid volume %g (must be finite and >= 0)", e.Value)
	}
	return fmt.Sprintf("demand: invalid volume %g at demand %d (must be finite and >= 0)", e.Value, e.Index)
}

// validVolume rejects NaN, ±Inf and negative volumes.
func validVolume(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) && v >= 0 }

// ValidateVolumes returns a *VolumeError for the first volume that is NaN,
// infinite or negative, or nil when all are usable.
func ValidateVolumes(v []float64) error {
	for i, x := range v {
		if !validVolume(x) {
			return &VolumeError{Index: i, Value: x}
		}
	}
	return nil
}

// NewSetWithVolumes builds a set over the given pairs carrying the given
// volumes — the error-returning constructor for externally supplied (file,
// flag, or search-generated) volumes, where a panic would be the wrong
// failure mode. Pair validation panics exactly as NewSet does; volume
// validation returns a typed *VolumeError.
func NewSetWithVolumes(pairs []Pair, volumes []float64) (*Set, error) {
	if len(volumes) != len(pairs) {
		return nil, fmt.Errorf("demand: %d volumes for %d pairs", len(volumes), len(pairs))
	}
	if err := ValidateVolumes(volumes); err != nil {
		return nil, err
	}
	s := NewSet(pairs)
	copy(s.volumes, volumes)
	return s, nil
}

// AllPairs returns the set of all ordered node pairs of g — the demand
// structure of the paper's TE instances (|D| quadratic in |V|).
func AllPairs(g *topology.Graph) *Set {
	var pairs []Pair
	n := g.NumNodes()
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s != d {
				pairs = append(pairs, Pair{topology.Node(s), topology.Node(d)})
			}
		}
	}
	return NewSet(pairs)
}

// ReachablePairs returns the ordered node pairs of g that have at least one
// path — on directed topologies a strict subset of AllPairs.
func ReachablePairs(g *topology.Graph) *Set {
	var pairs []Pair
	n := g.NumNodes()
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			if _, ok := g.ShortestPath(topology.Node(s), topology.Node(d)); ok {
				pairs = append(pairs, Pair{topology.Node(s), topology.Node(d)})
			}
		}
	}
	return NewSet(pairs)
}

// RandomPairs returns a set of k distinct ordered *reachable* pairs drawn
// uniformly without replacement — the demand-support restriction used to
// scale the meta optimization down to sizes our solver handles.
func RandomPairs(g *topology.Graph, k int, rng *rand.Rand) *Set {
	all := ReachablePairs(g).pairs
	if k > len(all) {
		k = len(all)
	}
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	picked := append([]Pair(nil), all[:k]...)
	return NewSet(picked)
}

// Len returns the number of demands.
func (s *Set) Len() int { return len(s.pairs) }

// Pair returns the k-th pair.
func (s *Set) Pair(k int) Pair { return s.pairs[k] }

// Pairs returns all pairs. The returned slice must not be modified.
func (s *Set) Pairs() []Pair { return s.pairs }

// Volume returns the volume of demand k.
func (s *Set) Volume(k int) float64 { return s.volumes[k] }

// Volumes returns the volume vector. The returned slice aliases the set;
// use CopyVolumes for a private copy.
func (s *Set) Volumes() []float64 { return s.volumes }

// CopyVolumes returns a fresh copy of the volume vector.
func (s *Set) CopyVolumes() []float64 { return append([]float64(nil), s.volumes...) }

// SetVolumes replaces all volumes; the length must match Len. NaN, infinite
// or negative volumes panic with a *VolumeError (use NewSetWithVolumes or
// ValidateVolumes for an error-returning path).
func (s *Set) SetVolumes(v []float64) {
	if len(v) != len(s.pairs) {
		panic(fmt.Sprintf("demand: %d volumes for %d pairs", len(v), len(s.pairs)))
	}
	if err := ValidateVolumes(v); err != nil {
		panic(err)
	}
	copy(s.volumes, v)
}

// SetVolume sets a single demand's volume. NaN, infinite or negative
// volumes panic with a *VolumeError.
func (s *Set) SetVolume(k int, v float64) {
	if !validVolume(v) {
		panic(&VolumeError{Index: k, Value: v})
	}
	s.volumes[k] = v
}

// Total returns the sum of volumes.
func (s *Set) Total() float64 {
	t := 0.0
	for _, v := range s.volumes {
		t += v
	}
	return t
}

// Clone returns an independent copy of the set.
func (s *Set) Clone() *Set {
	c := NewSet(s.pairs)
	copy(c.volumes, s.volumes)
	return c
}

// WithVolumes returns a clone carrying the given volumes.
func (s *Set) WithVolumes(v []float64) *Set {
	c := s.Clone()
	c.SetVolumes(v)
	return c
}

// Uniform fills volumes i.i.d. uniformly in [lo, hi].
func (s *Set) Uniform(rng *rand.Rand, lo, hi float64) {
	for i := range s.volumes {
		s.volumes[i] = lo + rng.Float64()*(hi-lo)
	}
}

// Gravity fills volumes with a gravity model: each node gets a random mass
// in [0.5, 1.5], d(s,t) is proportional to mass(s)*mass(t), and the whole
// vector is scaled so the largest demand equals peak. This is the standard
// public stand-in for proprietary WAN traffic matrices.
func (s *Set) Gravity(rng *rand.Rand, g *topology.Graph, peak float64) {
	mass := make([]float64, g.NumNodes())
	for i := range mass {
		mass[i] = 0.5 + rng.Float64()
	}
	maxV := 0.0
	for i, p := range s.pairs {
		v := mass[p.Src] * mass[p.Dst]
		s.volumes[i] = v
		if v > maxV {
			maxV = v
		}
	}
	if maxV == 0 {
		return
	}
	for i := range s.volumes {
		s.volumes[i] *= peak / maxV
	}
}

// MaxVolume returns the largest volume in the set.
func (s *Set) MaxVolume() float64 {
	m := 0.0
	for _, v := range s.volumes {
		if v > m {
			m = v
		}
	}
	return m
}
