package demand

import (
	"errors"
	"math"
	"testing"
)

func pairs1() []Pair { return []Pair{{Src: 0, Dst: 1}} }

func TestNewSetWithVolumesAcceptsValid(t *testing.T) {
	s, err := NewSetWithVolumes(pairs1(), []float64{7})
	if err != nil {
		t.Fatalf("valid volumes rejected: %v", err)
	}
	if s.Volume(0) != 7 {
		t.Fatalf("volume lost: %v", s.Volume(0))
	}
}

func TestNewSetWithVolumesRejectsNaN(t *testing.T) {
	var ve *VolumeError
	if _, err := NewSetWithVolumes(pairs1(), []float64{math.NaN()}); !errors.As(err, &ve) {
		t.Fatalf("NaN accepted: %v", err)
	} else if ve.Index != 0 {
		t.Fatalf("wrong index: %+v", ve)
	}
}

func TestNewSetWithVolumesRejectsInf(t *testing.T) {
	var ve *VolumeError
	if _, err := NewSetWithVolumes(pairs1(), []float64{math.Inf(1)}); !errors.As(err, &ve) {
		t.Fatalf("+Inf accepted: %v", err)
	}
	if _, err := NewSetWithVolumes(pairs1(), []float64{math.Inf(-1)}); !errors.As(err, &ve) {
		t.Fatalf("-Inf accepted: %v", err)
	}
}

func TestNewSetWithVolumesRejectsNegative(t *testing.T) {
	var ve *VolumeError
	if _, err := NewSetWithVolumes(pairs1(), []float64{-0.5}); !errors.As(err, &ve) {
		t.Fatalf("negative accepted: %v", err)
	}
}

func TestNewSetWithVolumesRejectsLengthMismatch(t *testing.T) {
	if _, err := NewSetWithVolumes(pairs1(), []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestSettersPanicWithTypedErrorOnNonFinite(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -1} {
		for _, apply := range []func(*Set){
			func(s *Set) { s.SetVolumes([]float64{bad}) },
			func(s *Set) { s.SetVolume(0, bad) },
		} {
			s := NewSet(pairs1())
			func() {
				defer func() {
					r := recover()
					if r == nil {
						t.Fatalf("volume %v accepted", bad)
					}
					if _, ok := r.(*VolumeError); !ok {
						t.Fatalf("panic value %T is not a *VolumeError", r)
					}
				}()
				apply(s)
			}()
		}
	}
}

func TestValidateVolumesNilOnValid(t *testing.T) {
	if err := ValidateVolumes([]float64{0, 1, 2.5}); err != nil {
		t.Fatalf("valid volumes rejected: %v", err)
	}
}
