package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestSuppressionDiagnostics pins the suppression contract: a reason-less
// allow and an unknown-analyzer allow are findings of the pseudo-analyzer
// "gapvet" and do NOT silence the flagged line below them, while a
// well-formed allow does. Expectations are asserted directly because the
// gapvet findings land on the comment lines themselves, where a want
// comment cannot sit.
func TestSuppressionDiagnostics(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "src", "suppress", "a"), "gapvet/suppress/a")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunAnalyzers([]*Package{pkg}, []*Analyzer{Floateq})
	if err != nil {
		t.Fatal(err)
	}

	countWith := func(analyzer, substr string) int {
		n := 0
		for _, d := range diags {
			if d.Analyzer == analyzer && strings.Contains(d.Message, substr) {
				n++
			}
		}
		return n
	}
	if got := countWith("gapvet", "malformed suppression"); got != 1 {
		t.Errorf("malformed-suppression findings = %d, want 1", got)
	}
	if got := countWith("gapvet", `unknown analyzer "nosuchcheck"`); got != 1 {
		t.Errorf("unknown-analyzer findings = %d, want 1", got)
	}
	// The two invalid allows must not suppress their comparisons; the one
	// valid allow must. 3 comparisons in the file, so exactly 2 survive.
	if got := countWith("floateq", "exact =="); got != 2 {
		t.Errorf("surviving floateq findings = %d, want 2 (invalid allows must not suppress)", got)
	}
	if len(diags) != 4 {
		for _, d := range diags {
			t.Logf("finding: %s", d)
		}
		t.Errorf("total findings = %d, want 4", len(diags))
	}
}

// TestAllowCrossAnalyzerName checks that an allow naming a suite analyzer
// that is not part of the current run is still recognized (not reported as
// unknown): -only subsets must not invalidate existing annotations.
func TestAllowCrossAnalyzerName(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "src", "tracecover", "lp"), "gapvet/tracecover/lp")
	if err != nil {
		t.Fatal(err)
	}
	// Run only floateq over a package annotated with //gapvet:allow
	// tracecover: the annotation must not become an unknown-analyzer finding.
	diags, err := RunAnalyzers([]*Package{pkg}, []*Analyzer{Floateq})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}
}

func TestPkgTail(t *testing.T) {
	for in, want := range map[string]string{
		"repro/internal/lp":    "lp",
		"gapvet/walltime/milp": "milp",
		"lp":                   "lp",
	} {
		if got := pkgTail(in); got != want {
			t.Errorf("pkgTail(%q) = %q, want %q", in, got, want)
		}
	}
}
