package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// newInfo returns a types.Info with every map the analyzers consult.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// Load expands go-list patterns (e.g. "./...") into packages and
// type-checks each from source. Test files are excluded: gapvet's
// contracts target production code, and the timing/randomness latitude
// tests legitimately need would otherwise drown the signal.
//
// Packages are returned in dependency order (imports before importers,
// ties broken by import path), which is what lets analyzer facts exported
// while inspecting a dependency be complete before any caller of it is
// inspected — the multichecker's package load order contract.
//
// Type checking uses the standard library's source importer, so the loader
// works offline with no dependencies beyond the go toolchain itself.
func Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	metas, err := goList(patterns)
	if err != nil {
		return nil, err
	}
	metas = topoSort(metas)
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	for _, m := range metas {
		if len(m.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range m.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(m.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		conf := types.Config{Importer: imp}
		info := newInfo()
		tpkg, err := conf.Check(m.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", m.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			PkgPath: m.ImportPath,
			Dir:     m.Dir,
			Fset:    fset,
			Files:   files,
			Types:   tpkg,
			Info:    info,
		})
	}
	return pkgs, nil
}

// overlayImporter resolves the fake import paths of golden packages to the
// types.Packages already checked in this load, delegating everything else
// (the standard library) to the source importer. This is what lets a golden
// package import a sibling golden package, so the interprocedural analyzers
// can be tested across a package boundary.
type overlayImporter struct {
	overlay map[string]*types.Package
	base    types.Importer
}

func (oi *overlayImporter) Import(path string) (*types.Package, error) {
	if p, ok := oi.overlay[path]; ok {
		return p, nil
	}
	return oi.base.Import(path)
}

// LoadDirs parses and type-checks several golden packages in the order
// given, each rooted at testdata dir dirs[i] under fake import path
// paths[i]. Earlier packages are importable by later ones (under their fake
// paths), mirroring the dependency-ordered load of the real driver.
func LoadDirs(dirs, paths []string) ([]*Package, error) {
	if len(dirs) != len(paths) {
		return nil, fmt.Errorf("analysis: LoadDirs: %d dirs vs %d paths", len(dirs), len(paths))
	}
	fset := token.NewFileSet()
	oi := &overlayImporter{
		overlay: make(map[string]*types.Package),
		base:    importer.ForCompiler(fset, "source", nil),
	}
	var pkgs []*Package
	for i, dir := range dirs {
		pkg, err := loadDirWith(fset, oi, dir, paths[i])
		if err != nil {
			return nil, err
		}
		oi.overlay[pkg.PkgPath] = pkg.Types
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir parses and type-checks the single package rooted at dir under the
// given (possibly fake) import path — the analysistest entry point for
// golden packages that live outside the module's build graph.
func LoadDir(dir, pkgPath string) (*Package, error) {
	fset := token.NewFileSet()
	return loadDirWith(fset, importer.ForCompiler(fset, "source", nil), dir, pkgPath)
}

func loadDirWith(fset *token.FileSet, imp types.Importer, dir, pkgPath string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	conf := types.Config{Importer: imp}
	info := newInfo()
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", dir, err)
	}
	return &Package{
		PkgPath: pkgPath,
		Dir:     dir,
		Fset:    fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}, nil
}

type listMeta struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Imports    []string
}

// topoSort orders packages dependency-first: every package appears after
// all of its imports that are part of the same load. Children are visited
// in sorted order, so the result is a pure function of the package set.
func topoSort(metas []listMeta) []listMeta {
	byPath := make(map[string]*listMeta, len(metas))
	for i := range metas {
		byPath[metas[i].ImportPath] = &metas[i]
	}
	paths := make([]string, 0, len(metas))
	for _, m := range metas {
		paths = append(paths, m.ImportPath)
	}
	sort.Strings(paths)
	seen := make(map[string]bool, len(metas))
	var out []listMeta
	var visit func(path string)
	visit = func(path string) {
		m, ok := byPath[path]
		if !ok || seen[path] {
			return
		}
		seen[path] = true
		deps := append([]string(nil), m.Imports...)
		sort.Strings(deps)
		for _, d := range deps {
			visit(d)
		}
		out = append(out, *m)
	}
	for _, p := range paths {
		visit(p)
	}
	return out
}

// goList shells out to the go command to expand package patterns; it is the
// only process the analysis layer spawns.
func goList(patterns []string) ([]listMeta, error) {
	args := append([]string{"list", "-json=ImportPath,Dir,GoFiles,Imports"}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var metas []listMeta
	for {
		var m listMeta
		if err := dec.Decode(&m); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		metas = append(metas, m)
	}
	return metas, nil
}
