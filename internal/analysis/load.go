package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// newInfo returns a types.Info with every map the analyzers consult.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// Load expands go-list patterns (e.g. "./...") into packages and
// type-checks each from source. Test files are excluded: gapvet's
// contracts target production code, and the timing/randomness latitude
// tests legitimately need would otherwise drown the signal.
//
// Type checking uses the standard library's source importer, so the loader
// works offline with no dependencies beyond the go toolchain itself.
func Load(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	metas, err := goList(patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	for _, m := range metas {
		if len(m.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range m.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(m.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		conf := types.Config{Importer: imp}
		info := newInfo()
		tpkg, err := conf.Check(m.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", m.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			PkgPath: m.ImportPath,
			Dir:     m.Dir,
			Fset:    fset,
			Files:   files,
			Types:   tpkg,
			Info:    info,
		})
	}
	return pkgs, nil
}

// LoadDir parses and type-checks the single package rooted at dir under the
// given (possibly fake) import path — the analysistest entry point for
// golden packages that live outside the module's build graph.
func LoadDir(dir, pkgPath string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	info := newInfo()
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", dir, err)
	}
	return &Package{
		PkgPath: pkgPath,
		Dir:     dir,
		Fset:    fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}, nil
}

type listMeta struct {
	ImportPath string
	Dir        string
	GoFiles    []string
}

// goList shells out to the go command to expand package patterns; it is the
// only process the analysis layer spawns.
func goList(patterns []string) ([]listMeta, error) {
	args := append([]string{"list", "-json=ImportPath,Dir,GoFiles"}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var metas []listMeta
	for {
		var m listMeta
		if err := dec.Decode(&m); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		metas = append(metas, m)
	}
	return metas, nil
}
