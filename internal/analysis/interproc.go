package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// factProp is one fact-propagation problem over a package's call graph:
// seed nodes that exhibit a property directly, then close the property
// over statically resolved call edges, consulting the cross-package fact
// store for callees defined in already-analyzed dependencies. The result
// is deterministic: nodes are iterated in source order, the first
// fact-transmitting edge of a node (in call-site order) supplies its
// provenance, and the fixpoint loop adds facts monotonically.
type factProp struct {
	fact string
	// direct returns a non-empty provenance ("time.Now at lp.go:12") when
	// the node exhibits the property in its own body.
	direct func(*FuncNode) string
	// follow reports whether an edge transmits the fact (nil = all
	// resolved edges do). ctxflow restricts edges to exported entry-point
	// overloads; the leakage facts follow every resolved call.
	follow func(CallEdge) bool
	// external resolves the fact for a callee outside the current package
	// (nil = look it up in the pass's fact store).
	external func(p *Pass, fn *types.Func) (string, bool)
}

// run computes the fixpoint for the current package and exports the fact
// for every declared function that carries it. It returns each node's
// provenance (absent key = fact not held).
func (fp factProp) run(p *Pass) map[*FuncNode]string {
	external := fp.external
	if external == nil {
		external = func(p *Pass, fn *types.Func) (string, bool) {
			return p.Facts.Lookup(fp.fact, ObjKey(fn))
		}
	}
	details := make(map[*FuncNode]string)
	for _, n := range p.Graph.Nodes {
		if d := fp.direct(n); d != "" {
			details[n] = d
		}
	}
	// Close over call edges. The loop is bounded by the node count: each
	// useful sweep marks at least one new node.
	for changed := true; changed; {
		changed = false
		for _, n := range p.Graph.Nodes {
			if details[n] != "" {
				continue
			}
			for _, e := range n.Out {
				if fp.follow != nil && !fp.follow(e) {
					continue
				}
				var d string
				switch {
				case e.Callee != nil:
					if cd := details[e.Callee]; cd != "" {
						d = viaDetail(p, e, cd)
					}
				case e.CalleeObj != nil && e.CalleeObj.Pkg() != p.Pkg:
					if cd, ok := external(p, e.CalleeObj); ok {
						d = viaDetail(p, e, cd)
					}
				}
				if d != "" {
					details[n] = d
					changed = true
					break
				}
			}
		}
	}
	for _, n := range p.Graph.Nodes {
		if n.Obj != nil {
			if d := details[n]; d != "" {
				p.Facts.Export(fp.fact, ObjKey(n.Obj), d)
			}
		}
	}
	return details
}

// viaDetail renders a propagated provenance. The root detail is preserved
// so a diagnostic three wrappers deep still names the originating call:
// "via helper.clockNow: time.Now at util.go:12".
func viaDetail(p *Pass, e CallEdge, calleeDetail string) string {
	if strings.HasPrefix(calleeDetail, "via ") {
		return calleeDetail // keep the original root, not the whole chain
	}
	return fmt.Sprintf("via %s: %s", edgeDisplay(p, e), calleeDetail)
}

// edgeDisplay names an edge's callee for humans.
func edgeDisplay(p *Pass, e CallEdge) string {
	if e.CalleeObj != nil {
		return FuncDisplayName(ObjKey(e.CalleeObj))
	}
	if e.Callee != nil && e.Callee.Lit != nil {
		return fmt.Sprintf("a function literal at %s", p.Fset.Position(e.Callee.Lit.Pos()))
	}
	return "a function value"
}

// nodeBodyInspect walks the AST lexically owned by node — its body minus
// any nested function literal, which is its own call-graph node — and
// invokes fn on every visited node.
func nodeBodyInspect(node *FuncNode, fn func(n ast.Node) bool) {
	body := node.Body()
	if body == nil {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			fn(n) // visible as a value (capture analysis), but not descended
			return false
		}
		return fn(n)
	})
}
