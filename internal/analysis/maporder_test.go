package analysis

import "testing"

func TestMaporder(t *testing.T) {
	RunGolden(t, Maporder, "maporder/a")
}
