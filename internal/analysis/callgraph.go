package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file builds the deterministic intra-package call graph the
// interprocedural analyzers walk. The graph is syntax-directed and
// resolves only what is statically certain:
//
//   - direct calls to package-level functions and to methods whose
//     concrete receiver type is known at the call site;
//   - calls through a local variable that is assigned exactly one
//     function literal and never reassigned (the worker-body idiom);
//   - immediately-invoked function literals.
//
// Calls through interfaces, function-typed fields, parameters, and
// reassigned variables are left unresolved — deterministically: the edge
// is still recorded (with a nil callee) so analyzers can choose to be
// conservative about them, and node and edge order depend only on source
// position, never on map iteration.

// FuncNode is one function in a package's call graph: a declared function
// or method (Decl != nil) or a function literal (Lit != nil).
type FuncNode struct {
	// Obj is the declared function's object; nil for literals.
	Obj *types.Func
	// Decl / Lit: exactly one is non-nil.
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit
	// Out lists every call site lexically inside this function's body but
	// outside any nested function literal (nested literals are their own
	// nodes), in source order.
	Out []CallEdge
}

// Pos returns the node's declaration position.
func (n *FuncNode) Pos() token.Pos {
	if n.Decl != nil {
		return n.Decl.Pos()
	}
	return n.Lit.Pos()
}

// Body returns the node's body block.
func (n *FuncNode) Body() *ast.BlockStmt {
	if n.Decl != nil {
		return n.Decl.Body
	}
	return n.Lit.Body
}

// CallEdge is one call site inside a FuncNode.
type CallEdge struct {
	Site *ast.CallExpr
	// Callee is the local node when the target is declared (or is a
	// resolvable literal) in this package; nil otherwise.
	Callee *FuncNode
	// CalleeObj is the resolved callee object — set for both local and
	// imported targets when the call is statically resolvable. nil means
	// the call is dynamic (interface method, function value of unknown
	// origin, builtin) and deliberately left unresolved.
	CalleeObj *types.Func
}

// CallGraph is one package's call graph. Nodes are in source order.
type CallGraph struct {
	Nodes []*FuncNode

	byObj map[*types.Func]*FuncNode
	byLit map[*ast.FuncLit]*FuncNode
}

// NodeFor returns the node of a declared function object, or nil.
func (g *CallGraph) NodeFor(obj *types.Func) *FuncNode { return g.byObj[obj] }

// buildCallGraph constructs the call graph for one package.
func buildCallGraph(files []*ast.File, info *types.Info) *CallGraph {
	g := &CallGraph{
		byObj: make(map[*types.Func]*FuncNode),
		byLit: make(map[*ast.FuncLit]*FuncNode),
	}
	// Pass 1: create one node per declared function and per function
	// literal, in source order.
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncDecl:
				node := &FuncNode{Decl: x}
				if fn, ok := info.Defs[x.Name].(*types.Func); ok {
					node.Obj = fn
					g.byObj[fn] = node
				}
				g.Nodes = append(g.Nodes, node)
			case *ast.FuncLit:
				node := &FuncNode{Lit: x}
				g.byLit[x] = node
				g.Nodes = append(g.Nodes, node)
			}
			return true
		})
	}
	sort.Slice(g.Nodes, func(i, j int) bool { return g.Nodes[i].Pos() < g.Nodes[j].Pos() })

	// Pass 2: per enclosing function, resolve assigned-once function-literal
	// variables, then record every call site.
	for _, node := range g.Nodes {
		body := node.Body()
		if body == nil {
			continue
		}
		litVars := assignedOnceLiterals(body, info)
		ast.Inspect(body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false // nested literal: its calls belong to its own node
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			edge := CallEdge{Site: call}
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.FuncLit:
				// Immediately-invoked literal.
				edge.Callee = g.byLit[fun]
			case *ast.Ident:
				if v, ok := info.Uses[fun].(*types.Var); ok {
					if lit := litVars[v]; lit != nil {
						edge.Callee = g.byLit[lit]
						break
					}
				}
				edge.CalleeObj = resolveStaticCallee(info, fun)
			case *ast.SelectorExpr:
				edge.CalleeObj = resolveStaticCallee(info, fun)
			}
			if edge.CalleeObj != nil {
				edge.Callee = g.byObj[edge.CalleeObj]
			}
			node.Out = append(node.Out, edge)
			return true
		})
	}
	return g
}

// resolveStaticCallee resolves a call's Fun expression to a statically
// certain *types.Func: a package-level function, or a method invoked on a
// concrete (non-interface) receiver. Interface method calls and anything
// else dynamic return nil.
func resolveStaticCallee(info *types.Info, e ast.Expr) *types.Func {
	var obj types.Object
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj = info.Uses[x]
	case *ast.SelectorExpr:
		// A method call through an interface dispatches dynamically; the
		// Selection tells us whether the receiver is an interface.
		if sel, ok := info.Selections[x]; ok && sel.Kind() == types.MethodVal {
			if types.IsInterface(sel.Recv()) {
				return nil
			}
		}
		obj = info.Uses[x.Sel]
	default:
		return nil
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	return fn
}

// assignedOnceLiterals maps local variables that are bound to exactly one
// function literal and never reassigned inside body. Calls through such a
// variable resolve to that literal.
func assignedOnceLiterals(body *ast.BlockStmt, info *types.Info) map[*types.Var]*ast.FuncLit {
	bound := make(map[*types.Var]*ast.FuncLit)
	dead := make(map[*types.Var]bool) // reassigned or multiply-bound
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		obj, ok := objOf(info, id).(*types.Var)
		if !ok {
			return
		}
		lit, isLit := ast.Unparen(rhs).(*ast.FuncLit)
		if !isLit || bound[obj] != nil || dead[obj] {
			dead[obj] = true
			delete(bound, obj)
			return
		}
		bound[obj] = lit
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				if i < len(st.Rhs) {
					record(lhs, st.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			for i, name := range st.Names {
				if i < len(st.Values) {
					record(name, st.Values[i])
				}
			}
		}
		return true
	})
	return bound
}

// objOf returns the object an identifier uses or defines.
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}
