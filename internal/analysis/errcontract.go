package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Errcontract enforces the error-identity discipline the recovery layers
// depend on. The codebase signals recoverable conditions with typed
// sentinels — faultinject.ErrInjected, benchstore's *BasisVersionError —
// and both checkpoint/resume and the differential harness branch on them.
// That only works if every layer between the throw and the catch preserves
// identity:
//
//   - sentinel comparisons go through errors.Is, never == or != (a wrapped
//     sentinel compares unequal but Is-matches);
//   - typed errors are recovered with errors.As, never a direct type
//     assertion or type switch (same reason);
//   - wrapping uses fmt.Errorf with %w — %v flattens the chain and the
//     sentinel is unreachable downstream;
//   - error text is never matched (err.Error() compared or substring-
//     searched): messages are for humans and change freely.
//
// Comparisons against nil are exempt everywhere — err != nil is the
// language's error protocol, not an identity check.
var Errcontract = &Analyzer{
	Name: "errcontract",
	Doc:  "typed error sentinels must be wrapped with %w and tested via errors.Is/As — flags ==/!= against sentinels, type assertions on errors, %v-wrapping, and error-string matching",
	Run:  runErrcontract,
}

func runErrcontract(p *Pass) error {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.BinaryExpr:
				checkErrComparison(p, x)
			case *ast.TypeAssertExpr:
				checkErrAssertion(p, x)
			case *ast.TypeSwitchStmt:
				checkErrTypeSwitch(p, x)
			case *ast.CallExpr:
				checkErrorfWrap(p, x)
				checkStringMatch(p, x)
			}
			return true
		})
	}
	return nil
}

// checkErrComparison flags == / != where one side is an error sentinel or
// both sides are error-typed (nil excluded).
func checkErrComparison(p *Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	if isNilExpr(p, be.X) || isNilExpr(p, be.Y) {
		return
	}
	for _, side := range []ast.Expr{be.X, be.Y} {
		if name := sentinelErrorName(p, side); name != "" {
			p.Reportf(be.OpPos, "sentinel error %s compared with %s; use errors.Is so wrapped errors still match (error-identity contract)", name, be.Op)
			return
		}
	}
	// err.Error() == "..." handled as string matching.
	if isErrorStringCall(p, be.X) || isErrorStringCall(p, be.Y) {
		p.Reportf(be.OpPos, "error text compared with %s; match identity with errors.Is/As, not strings — messages are for humans and change freely", be.Op)
	}
}

// checkErrAssertion flags err.(*SomeError) on an error-typed operand.
func checkErrAssertion(p *Pass, ta *ast.TypeAssertExpr) {
	if ta.Type == nil {
		return // part of a type switch; handled there
	}
	if !isErrorType(p.TypeOf(ta.X)) {
		return
	}
	if t := p.TypeOf(ta.Type); t != nil && types.IsInterface(t) {
		return // asserting to another interface is a capability check, not identity
	}
	p.Reportf(ta.Pos(), "type assertion on an error; use errors.As so wrapped errors still match (error-identity contract)")
}

// checkErrTypeSwitch flags switch err.(type) with concrete error-type cases.
func checkErrTypeSwitch(p *Pass, ts *ast.TypeSwitchStmt) {
	var operand ast.Expr
	switch st := ts.Assign.(type) {
	case *ast.ExprStmt:
		if ta, ok := st.X.(*ast.TypeAssertExpr); ok {
			operand = ta.X
		}
	case *ast.AssignStmt:
		if len(st.Rhs) == 1 {
			if ta, ok := st.Rhs[0].(*ast.TypeAssertExpr); ok {
				operand = ta.X
			}
		}
	}
	if operand == nil || !isErrorType(p.TypeOf(operand)) {
		return
	}
	for _, c := range ts.Body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, texpr := range cc.List {
			t := p.TypeOf(texpr)
			if t == nil || types.IsInterface(t) {
				continue
			}
			p.Reportf(texpr.Pos(), "type switch on an error with concrete case; use errors.As so wrapped errors still match (error-identity contract)")
			return
		}
	}
}

// checkErrorfWrap flags fmt.Errorf calls that pass an error argument but
// wrap nothing — the %w is what keeps errors.Is/As working downstream.
func checkErrorfWrap(p *Pass, call *ast.CallExpr) {
	pkg, name := pkgLevelFunc(p.Info, call.Fun)
	if pkg != "fmt" || name != "Errorf" || len(call.Args) < 2 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	if strings.Contains(lit.Value, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		if isErrorType(p.TypeOf(arg)) {
			p.Reportf(call.Pos(), "fmt.Errorf formats an error without %%w; wrap with %%w so errors.Is/As can reach the sentinel (error-identity contract)")
			return
		}
	}
}

// checkStringMatch flags strings.Contains/HasPrefix/HasSuffix/Index over
// err.Error() output.
func checkStringMatch(p *Pass, call *ast.CallExpr) {
	pkg, name := pkgLevelFunc(p.Info, call.Fun)
	if pkg != "strings" {
		return
	}
	switch name {
	case "Contains", "HasPrefix", "HasSuffix", "Index", "EqualFold":
	default:
		return
	}
	for _, arg := range call.Args {
		if isErrorStringCall(p, arg) {
			p.Reportf(call.Pos(), "error text matched with strings.%s; match identity with errors.Is/As, not strings — messages are for humans and change freely", name)
			return
		}
	}
}

// sentinelErrorName identifies a package-level error variable — the sentinel
// pattern, whether named ErrFoo or EOF-style — and returns its qualified
// display name.
func sentinelErrorName(p *Pass, e ast.Expr) string {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return ""
	}
	v, ok := p.Info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return ""
	}
	if !isErrorType(v.Type()) {
		return ""
	}
	return v.Pkg().Name() + "." + v.Name()
}

// isErrorStringCall reports whether e is a call to the Error() string
// method of an error value.
func isErrorStringCall(p *Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" || len(call.Args) != 0 {
		return false
	}
	return isErrorType(p.TypeOf(sel.X))
}

// isErrorType reports whether t implements the error interface.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorIface) || types.Implements(types.NewPointer(t), errorIface)
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isNilExpr(p *Pass, e ast.Expr) bool {
	t := p.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}
