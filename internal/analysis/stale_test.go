package analysis

import "testing"

// TestStaleAllows is the golden harness for gapvet -stale-allows: the full
// suite runs, a live allow stays silent, and an allow whose finding has
// been fixed out from under it becomes the finding.
func TestStaleAllows(t *testing.T) {
	RunGoldenStale(t, "suppress/stale")
}
