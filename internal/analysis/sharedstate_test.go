package analysis

import "testing"

func TestSharedstateFlagging(t *testing.T) {
	RunGolden(t, Sharedstate, "sharedstate/a")
}
