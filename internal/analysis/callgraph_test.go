package analysis

import (
	"path/filepath"
	"testing"
)

// loadCallgraphFixture builds the call graph of the unit fixture package.
func loadCallgraphFixture(t *testing.T) (*Package, *CallGraph) {
	t.Helper()
	pkg, err := LoadDir(filepath.Join("testdata", "src", "callgraph", "a"), "gapvet/callgraph/a")
	if err != nil {
		t.Fatal(err)
	}
	return pkg, buildCallGraph(pkg.Files, pkg.Info)
}

func declNode(t *testing.T, g *CallGraph, name string) *FuncNode {
	t.Helper()
	for _, n := range g.Nodes {
		if n.Decl != nil && n.Decl.Name.Name == name {
			return n
		}
	}
	t.Fatalf("no declared node %q", name)
	return nil
}

// TestCallGraphNodeOrder pins determinism: nodes come out in source
// position order, declared functions and literals interleaved where they
// appear.
func TestCallGraphNodeOrder(t *testing.T) {
	_, g := loadCallgraphFixture(t)
	var declared []string
	lits := 0
	for i, n := range g.Nodes {
		if i > 0 && n.Pos() <= g.Nodes[i-1].Pos() {
			t.Fatalf("node %d out of source order", i)
		}
		if n.Decl != nil {
			declared = append(declared, n.Decl.Name.Name)
		} else {
			lits++
		}
	}
	wantDecls := []string{"bump", "freeFn", "callsFree", "callsMethod", "callsIface", "callsLitVar", "callsIIFE", "reassigned"}
	if len(declared) != len(wantDecls) {
		t.Fatalf("declared nodes = %v, want %v", declared, wantDecls)
	}
	for i := range wantDecls {
		if declared[i] != wantDecls[i] {
			t.Fatalf("declared nodes = %v, want %v", declared, wantDecls)
		}
	}
	if lits != 4 {
		t.Fatalf("literal nodes = %d, want 4", lits)
	}
}

// TestCallGraphResolution is the resolution rule table: what each call
// shape resolves to, and what is deterministically left unresolved.
func TestCallGraphResolution(t *testing.T) {
	_, g := loadCallgraphFixture(t)
	freeFn := declNode(t, g, "freeFn")
	bump := declNode(t, g, "bump")

	cases := []struct {
		caller string
		// wantObj is the expected resolved callee node (nil = dynamic call
		// deliberately unresolved); wantLit selects a literal callee instead.
		wantNode *FuncNode
		wantLit  bool
	}{
		{caller: "callsFree", wantNode: freeFn},
		{caller: "callsMethod", wantNode: bump},
		{caller: "callsIface", wantNode: nil},
		{caller: "callsLitVar", wantLit: true},
		{caller: "callsIIFE", wantLit: true},
		{caller: "reassigned", wantNode: nil},
	}
	for _, tc := range cases {
		node := declNode(t, g, tc.caller)
		if len(node.Out) != 1 {
			t.Errorf("%s: %d edges, want 1", tc.caller, len(node.Out))
			continue
		}
		e := node.Out[0]
		switch {
		case tc.wantLit:
			if e.Callee == nil || e.Callee.Lit == nil {
				t.Errorf("%s: call did not resolve to a literal node", tc.caller)
			}
			if e.CalleeObj != nil {
				t.Errorf("%s: literal call has a callee object", tc.caller)
			}
		case tc.wantNode == nil:
			if e.Callee != nil || e.CalleeObj != nil {
				t.Errorf("%s: dynamic call resolved to %v/%v, want unresolved", tc.caller, e.Callee, e.CalleeObj)
			}
		default:
			if e.Callee != tc.wantNode {
				t.Errorf("%s: resolved to wrong node", tc.caller)
			}
			if e.CalleeObj == nil || e.CalleeObj != tc.wantNode.Obj {
				t.Errorf("%s: callee object mismatch", tc.caller)
			}
		}
	}
	// Literal bodies own their calls: the literal inside callsLitVar has one
	// edge to freeFn; the enclosing function does not inherit it.
	litVar := declNode(t, g, "callsLitVar")
	var lit *FuncNode
	for _, n := range g.Nodes {
		if n.Lit != nil && n.Pos() > litVar.Pos() && n.Pos() < declNode(t, g, "callsIIFE").Pos() {
			lit = n
			break
		}
	}
	if lit == nil {
		t.Fatal("no literal node inside callsLitVar")
	}
	if len(lit.Out) != 1 || lit.Out[0].Callee != freeFn {
		t.Fatalf("callsLitVar literal edges wrong: %d", len(lit.Out))
	}
}

// TestFactSetKeys pins ObjKey normalization and deterministic key order.
func TestFactSetKeys(t *testing.T) {
	pkg, g := loadCallgraphFixture(t)
	_ = pkg
	bump := declNode(t, g, "bump")
	if got, want := ObjKey(bump.Obj), "gapvet/callgraph/a.(counter).bump"; got != want {
		t.Errorf("method ObjKey = %q, want %q", got, want)
	}
	free := declNode(t, g, "freeFn")
	if got, want := ObjKey(free.Obj), "gapvet/callgraph/a.freeFn"; got != want {
		t.Errorf("func ObjKey = %q, want %q", got, want)
	}
	fs := NewFactSet()
	fs.Export("f", "b.key", "first")
	fs.Export("f", "a.key", "x")
	fs.Export("f", "b.key", "second") // first provenance wins
	if d, ok := fs.Lookup("f", "b.key"); !ok || d != "first" {
		t.Errorf("Lookup = %q,%v want first,true", d, ok)
	}
	keys := fs.Keys("f")
	if len(keys) != 2 || keys[0] != "a.key" || keys[1] != "b.key" {
		t.Errorf("Keys = %v, want sorted [a.key b.key]", keys)
	}
}
