package analysis

import (
	"fmt"
	"os"
	"path"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// wantRe matches golden-file expectation comments: // want "regexp" ...
var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// quotedRe extracts the double-quoted regexps of a want comment.
var quotedRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// RunGolden runs one analyzer over the golden package at
// testdata/src/<rel> through the full driver — suppression comments
// included — and compares the surviving findings against `// want "re"`
// comments in the golden files. Every want must be matched by a finding on
// its line and every finding must be matched by a want, mirroring
// golang.org/x/tools/go/analysis/analysistest semantics.
//
// The package is type-checked under the fake import path gapvet/<rel>, so
// a golden package's path tail (e.g. testdata/src/walltime/milp) drives
// the same per-package gating as the real tree.
func RunGolden(t testing.TB, a *Analyzer, rel string) {
	t.Helper()
	runGolden(t, []*Analyzer{a}, []string{rel}, false)
}

// RunGoldenMulti is RunGolden over several golden packages analyzed in the
// order given — dependencies first, exactly like the real driver's
// dependency-ordered load. Later packages may import earlier ones by their
// fake gapvet/<rel> paths, which is how the interprocedural analyzers are
// exercised across a package boundary: the dependency exports facts, the
// importer's call sites get flagged.
func RunGoldenMulti(t testing.TB, a *Analyzer, rels ...string) {
	t.Helper()
	runGolden(t, []*Analyzer{a}, rels, false)
}

// RunGoldenStale runs the full suite over the golden packages and compares
// the combined findings-plus-stale-suppression diagnostics against the
// want comments — the golden harness for `gapvet -stale-allows`.
func RunGoldenStale(t testing.TB, rels ...string) {
	t.Helper()
	runGolden(t, All(), rels, true)
}

func runGolden(t testing.TB, analyzers []*Analyzer, rels []string, includeStale bool) {
	t.Helper()
	dirs := make([]string, len(rels))
	paths := make([]string, len(rels))
	for i, rel := range rels {
		dirs[i] = filepath.Join("testdata", "src", filepath.FromSlash(rel))
		paths[i] = path.Join("gapvet", rel)
	}
	pkgs, err := LoadDirs(dirs, paths)
	if err != nil {
		t.Fatalf("loading %v: %v", dirs, err)
	}
	res, err := Run(pkgs, analyzers)
	if err != nil {
		t.Fatalf("running on %v: %v", dirs, err)
	}
	diags := res.Findings
	if includeStale {
		diags = append(diags, res.Stale...)
	}

	type want struct {
		file    string
		line    int
		re      *regexp.Regexp
		matched bool
	}
	var wants []*want
	for _, dir := range dirs {
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ents {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			for i, line := range strings.Split(string(data), "\n") {
				m := wantRe.FindStringSubmatch(line)
				if m == nil {
					continue
				}
				qs := quotedRe.FindAllString(m[1], -1)
				if len(qs) == 0 {
					t.Fatalf("%s:%d: want comment carries no quoted regexp", e.Name(), i+1)
				}
				for _, q := range qs {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want string %s: %v", e.Name(), i+1, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", e.Name(), i+1, pat, err)
					}
					wants = append(wants, &want{file: e.Name(), line: i + 1, re: re})
				}
			}
		}
	}

	var errs []string
	for _, d := range diags {
		base := filepath.Base(d.Pos.Filename)
		matched := false
		for _, w := range wants {
			if !w.matched && w.file == base && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			errs = append(errs, fmt.Sprintf("unexpected finding at %s:%d: %s: %s", base, d.Pos.Line, d.Analyzer, d.Message))
		}
	}
	for _, w := range wants {
		if !w.matched {
			errs = append(errs, fmt.Sprintf("no finding matched want %q at %s:%d", w.re, w.file, w.line))
		}
	}
	for _, e := range errs {
		t.Error(e)
	}
}
