package analysis

import (
	"go/ast"
	"go/types"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Tracecover keeps the observability layer from rotting: every exported
// Solve/Run-shaped entry point in the solver packages must be able to
// receive the obs tracer — either as a direct parameter or as a field of an
// options struct it accepts — so new solve paths stay traceable without
// API surgery. Entry points are matched by name (Solve*, Run*) and by
// shape (first result a *Result), covering HillClimb-style searches that
// return the package's Result type under another name.
var Tracecover = &Analyzer{
	Name: "tracecover",
	Doc:  "exported Solve/Run-shaped entry points in solver packages must accept the obs tracer (parameter or options field)",
	Run:  runTracecover,
}

// tracecoverTargets keys the packages (by path tail) whose entry points
// carry the obligation.
var tracecoverTargets = map[string]bool{
	"lp":       true,
	"milp":     true,
	"blackbox": true,
}

func runTracecover(p *Pass) error {
	if !tracecoverTargets[pkgTail(p.Pkg.Path())] {
		return nil
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !fd.Name.IsExported() {
				continue
			}
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sig := fn.Type().(*types.Signature)
			if !entryPointShaped(fd.Name.Name, sig) {
				continue
			}
			if signatureHasTracer(sig) {
				continue
			}
			p.Reportf(fd.Name.Pos(), "exported entry point %s takes no obs tracer; accept one (parameter or options-struct field) so the solve stays observable", fd.Name.Name)
		}
	}
	return nil
}

// entryPointShaped reports whether a function looks like a solver entry
// point: named Solve*/Run*, or returning the package's *Result first.
func entryPointShaped(name string, sig *types.Signature) bool {
	for _, prefix := range []string{"Solve", "Run"} {
		if rest, ok := strings.CutPrefix(name, prefix); ok {
			if rest == "" {
				return true
			}
			if r, _ := utf8.DecodeRuneInString(rest); unicode.IsUpper(r) {
				return true
			}
		}
	}
	if res := sig.Results(); res.Len() > 0 {
		if ptr, ok := res.At(0).Type().(*types.Pointer); ok {
			if named, ok := ptr.Elem().(*types.Named); ok && named.Obj().Name() == "Result" {
				return true
			}
		}
	}
	return false
}

// signatureHasTracer reports whether any parameter gives access to a
// tracer: the parameter itself, a field of a struct parameter, or a field
// of a struct it embeds.
func signatureHasTracer(sig *types.Signature) bool {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if typeReachesTracer(params.At(i).Type(), 2) {
			return true
		}
	}
	return false
}

func typeReachesTracer(t types.Type, depth int) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		if named.Obj().Name() == "Tracer" {
			return true
		}
	}
	if depth == 0 {
		return false
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if typeReachesTracer(f.Type(), 0) {
			return true
		}
		if f.Embedded() && typeReachesTracer(f.Type(), depth-1) {
			return true
		}
	}
	return false
}
