package analysis

import (
	"fmt"
	"go/ast"
)

// Detrand enforces the injected-RNG contract from PR 2: every random draw
// in the tree flows through a *rand.Rand that the caller seeded, so any
// search, partitioning, or topology generation is a pure function of its
// seed. Two things break that and are flagged:
//
//  1. package-level math/rand (or math/rand/v2) functions — rand.Intn,
//     rand.Float64, rand.Shuffle, ... — which draw from shared global
//     state no caller controls;
//  2. generators seeded from the clock — rand.NewSource(time.Now()...)
//     and friends — which are injected in form but irreproducible in fact.
//
// Constructors (New, NewSource, NewZipf, NewPCG, NewChaCha8) with
// data-derived seeds are the sanctioned way to mint an RNG.
//
// The analyzer is interprocedural: every function that transitively draws
// from global math/rand state (through helpers, methods, and assigned-once
// function literals) exports a "draws-global-rand" fact, and any call from
// another package into such a function is flagged at the call site — so a
// utility wrapper cannot launder a global draw across a package boundary.
// An annotated draw (//gapvet:allow detrand <reason>) is sanctioned all
// the way up its call chain.
var Detrand = &Analyzer{
	Name: "detrand",
	Doc:  "flags global math/rand state and time-seeded generators, including draws wrapped in helpers (interprocedural); all randomness must flow through an injected, explicitly seeded *rand.Rand",
	Run:  runDetrand,
}

var detrandConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

func isRandPkg(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

func runDetrand(p *Pass) error {
	// Fact generation: a function draws global randomness when a global
	// math/rand selector sits lexically in its body (outside any nested
	// literal) without an annotation; the fact propagates through every
	// statically resolved call.
	factProp{
		fact: FactGlobalRand,
		direct: func(n *FuncNode) string {
			detail := ""
			nodeBodyInspect(n, func(nd ast.Node) bool {
				if detail != "" {
					return false
				}
				sel, ok := nd.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				pkg, name := pkgLevelFunc(p.Info, sel)
				if isRandPkg(pkg) && !detrandConstructors[name] && !p.Allowed("detrand", sel.Pos()) {
					detail = fmt.Sprintf("%s.%s at %s", pkg, name, p.Fset.Position(sel.Pos()))
					return false
				}
				return true
			})
			return detail
		},
	}.run(p)

	// Interprocedural flagging: a cross-package call into a function that
	// draws global randomness. The draw itself was already flagged in its
	// defining package, so same-package calls are not re-flagged.
	for _, node := range p.Graph.Nodes {
		for _, e := range node.Out {
			fn := e.CalleeObj
			if fn == nil || fn.Pkg() == nil || fn.Pkg() == p.Pkg {
				continue
			}
			if prov, ok := p.Facts.Lookup(FactGlobalRand, ObjKey(fn)); ok {
				p.Reportf(e.Site.Pos(), "call to %s draws from global math/rand (%s); draw from an injected *rand.Rand instead (injected-RNG contract)",
					FuncDisplayName(ObjKey(fn)), prov)
			}
		}
	}

	for _, f := range p.Files {
		// flaggedClock tracks constructor calls already reported for clock
		// seeding, so rand.New(rand.NewSource(time.Now()...)) yields one
		// finding for the outermost call, not one per nested constructor.
		var flaggedClock []*ast.CallExpr
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				pkg, name := pkgLevelFunc(p.Info, x.Fun)
				if isRandPkg(pkg) && detrandConstructors[name] && exprReadsClock(p, x) {
					for _, outer := range flaggedClock {
						if x.Pos() >= outer.Pos() && x.End() <= outer.End() {
							return true
						}
					}
					flaggedClock = append(flaggedClock, x)
					p.Reportf(x.Pos(), "rand.%s seeded from the wall clock; derive the seed from configuration so runs are reproducible", name)
				}
			case *ast.SelectorExpr:
				pkg, name := pkgLevelFunc(p.Info, x)
				if isRandPkg(pkg) && !detrandConstructors[name] {
					p.Reportf(x.Pos(), "use of global %s.%s; draw from an injected *rand.Rand instead (injected-RNG contract)", pkg, name)
				}
			}
			return true
		})
	}
	return nil
}

// exprReadsClock reports whether the subtree calls time.Now or reads any
// other wall-clock source.
func exprReadsClock(p *Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if pkg, name := pkgLevelFunc(p.Info, call.Fun); pkg == "time" && (name == "Now" || name == "Since") {
			found = true
			return false
		}
		return true
	})
	return found
}
