package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// Ctxflow guards the cancellation contract introduced with crash-safe
// search: every exported Solve/Run-shaped entry point in the solver
// packages must be able to receive a context.Context — either as a direct
// parameter or as a field of an options struct it accepts (embedded
// options structs count) — so new solve paths stay cancellable without API
// surgery. Entry points are matched exactly like tracecover: by name
// (Solve*, Run*) and by shape (first result a *Result).
//
// The check is interprocedural: every function whose signature can receive
// a context exports an "accepts-ctx" fact, and the fact propagates along
// call chains restricted to exported entry-point overloads. An entry point
// without its own context access is therefore compliant when it delegates
// to a sibling overload that has it — the zero-options convenience wrapper
// Solve() { return SolveWith(SolveOptions{}) } — because the cancellable
// path exists and the wrapper adds no new solve logic. A wrapper calling
// only ctx-less code is still flagged.
var Ctxflow = &Analyzer{
	Name: "ctxflow",
	Doc:  "exported Solve/Run-shaped entry points in solver packages must accept a context.Context (parameter, options field, or delegation to an overload that does)",
	Run:  runCtxflow,
}

// ctxflowTargets keys the packages (by path tail) whose entry points carry
// the obligation — the same set tracecover gates.
var ctxflowTargets = map[string]bool{
	"lp":       true,
	"milp":     true,
	"blackbox": true,
}

// ctxDelegationEdge reports whether a call edge can discharge the
// cancellation obligation: the target must be an exported entry-point
// overload the caller's own caller could have used directly. Anything
// else (unexported helpers, literals, dynamic calls) does not count —
// delegating the contract to an internal function hides it, not honors it.
func ctxDelegationEdge(e CallEdge) bool {
	fn := e.CalleeObj
	if fn == nil || !fn.Exported() {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && entryPointShaped(fn.Name(), sig)
}

func runCtxflow(p *Pass) error {
	// Fact generation runs in every package (not just targets): a wrapper
	// in one solver package may delegate to an entry point of another, and
	// the fact must already be exported when the caller is analyzed.
	reaches := factProp{
		fact: FactAcceptsCtx,
		direct: func(n *FuncNode) string {
			if n.Obj == nil {
				return ""
			}
			if sig, ok := n.Obj.Type().(*types.Signature); ok && signatureHasContext(sig) {
				return fmt.Sprintf("%s accepts a context.Context", n.Obj.Name())
			}
			return ""
		},
		follow: ctxDelegationEdge,
		external: func(p *Pass, fn *types.Func) (string, bool) {
			if d, ok := p.Facts.Lookup(FactAcceptsCtx, ObjKey(fn)); ok {
				return d, true
			}
			// Dependencies outside the analysis scope still expose their
			// signatures; a direct context parameter there counts.
			if sig, ok := fn.Type().(*types.Signature); ok && signatureHasContext(sig) {
				return fmt.Sprintf("%s accepts a context.Context", fn.Name()), true
			}
			return "", false
		},
	}.run(p)

	if !ctxflowTargets[pkgTail(p.Pkg.Path())] {
		return nil
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !fd.Name.IsExported() {
				continue
			}
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sig := fn.Type().(*types.Signature)
			if !entryPointShaped(fd.Name.Name, sig) {
				continue
			}
			if node := p.Graph.NodeFor(fn); node != nil && reaches[node] != "" {
				continue // direct access or delegation to an overload that has it
			}
			p.Reportf(fd.Name.Pos(), "exported entry point %s takes no context.Context; accept one (parameter or options-struct field) or delegate to an overload that does, so the solve stays cancellable", fd.Name.Name)
		}
	}
	return nil
}

// signatureHasContext reports whether any parameter gives access to a
// context.Context: the parameter itself, a field of a struct parameter, or
// a field of a struct it embeds.
func signatureHasContext(sig *types.Signature) bool {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if typeReachesContext(params.At(i).Type(), 2) {
			return true
		}
	}
	return false
}

func typeReachesContext(t types.Type, depth int) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context" {
			return true
		}
	}
	if depth == 0 {
		return false
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if typeReachesContext(f.Type(), 0) {
			return true
		}
		if f.Embedded() && typeReachesContext(f.Type(), depth-1) {
			return true
		}
	}
	return false
}
