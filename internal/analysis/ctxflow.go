package analysis

import (
	"go/ast"
	"go/types"
)

// Ctxflow guards the cancellation contract introduced with crash-safe
// search: every exported Solve/Run-shaped entry point in the solver
// packages must be able to receive a context.Context — either as a direct
// parameter or as a field of an options struct it accepts (embedded
// options structs count) — so new solve paths stay cancellable without API
// surgery. Entry points are matched exactly like tracecover: by name
// (Solve*, Run*) and by shape (first result a *Result).
var Ctxflow = &Analyzer{
	Name: "ctxflow",
	Doc:  "exported Solve/Run-shaped entry points in solver packages must accept a context.Context (parameter or options field)",
	Run:  runCtxflow,
}

// ctxflowTargets keys the packages (by path tail) whose entry points carry
// the obligation — the same set tracecover gates.
var ctxflowTargets = map[string]bool{
	"lp":       true,
	"milp":     true,
	"blackbox": true,
}

func runCtxflow(p *Pass) error {
	if !ctxflowTargets[pkgTail(p.Pkg.Path())] {
		return nil
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !fd.Name.IsExported() {
				continue
			}
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sig := fn.Type().(*types.Signature)
			if !entryPointShaped(fd.Name.Name, sig) {
				continue
			}
			if signatureHasContext(sig) {
				continue
			}
			p.Reportf(fd.Name.Pos(), "exported entry point %s takes no context.Context; accept one (parameter or options-struct field) so the solve stays cancellable", fd.Name.Name)
		}
	}
	return nil
}

// signatureHasContext reports whether any parameter gives access to a
// context.Context: the parameter itself, a field of a struct parameter, or
// a field of a struct it embeds.
func signatureHasContext(sig *types.Signature) bool {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if typeReachesContext(params.At(i).Type(), 2) {
			return true
		}
	}
	return false
}

func typeReachesContext(t types.Type, depth int) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context" {
			return true
		}
	}
	if depth == 0 {
		return false
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if typeReachesContext(f.Type(), 0) {
			return true
		}
		if f.Embedded() && typeReachesContext(f.Type(), depth-1) {
			return true
		}
	}
	return false
}
