package analysis

import "testing"

func TestCtxflowFlagging(t *testing.T) {
	RunGolden(t, Ctxflow, "ctxflow/milp")
}

func TestCtxflowNonTargetPackage(t *testing.T) {
	RunGolden(t, Ctxflow, "ctxflow/other")
}

// TestCtxflowDelegation pins the delegation rule: Solve() delegating to
// SolveWith(Options{Ctx...}) is compliant; an entry point reaching only
// unexported ctx-less code is not.
func TestCtxflowDelegation(t *testing.T) {
	RunGolden(t, Ctxflow, "ctxflow/delegate/lp")
}
