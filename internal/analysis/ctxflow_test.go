package analysis

import "testing"

func TestCtxflowFlagging(t *testing.T) {
	RunGolden(t, Ctxflow, "ctxflow/milp")
}

func TestCtxflowNonTargetPackage(t *testing.T) {
	RunGolden(t, Ctxflow, "ctxflow/other")
}
