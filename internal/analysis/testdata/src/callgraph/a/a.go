// Package a is the call-graph unit fixture: one construct per resolution
// rule. callgraph_test.go pins node order and per-edge resolution against
// this file by function name, so positions here are load-bearing only in
// their relative order.
package a

type counter struct{ n int }

func (c *counter) bump() { c.n++ }

type ticker interface{ tick() }

func freeFn() {}

func callsFree() { freeFn() }

func callsMethod(c *counter) { c.bump() }

func callsIface(t ticker) { t.tick() }

func callsLitVar() {
	f := func() { freeFn() }
	f()
}

func callsIIFE() {
	func() { freeFn() }()
}

func reassigned() {
	f := func() {}
	f = func() { freeFn() }
	f()
}
