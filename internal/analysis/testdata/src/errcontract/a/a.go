// Package a exercises errcontract: sentinel identity goes through
// errors.Is, typed recovery through errors.As, wrapping through %w, and
// error text is never matched.
package a

import (
	"errors"
	"fmt"
	"strings"
)

var ErrStall = errors.New("stall detected")

type VersionError struct{ Want, Got int }

func (e *VersionError) Error() string {
	return fmt.Sprintf("basis version: want %d got %d", e.Want, e.Got)
}

func CompareEq(err error) bool {
	return err == ErrStall // want "sentinel error a.ErrStall compared with =="
}

func CompareNeq(err error) bool {
	return err != ErrStall // want "sentinel error a.ErrStall compared with !="
}

func CompareIs(err error) bool { return errors.Is(err, ErrStall) }

func NilCheck(err error) bool { return err != nil }

func Assert(err error) (*VersionError, bool) {
	ve, ok := err.(*VersionError) // want "type assertion on an error; use errors.As"
	return ve, ok
}

func AsRecover(err error) (*VersionError, bool) {
	var ve *VersionError
	ok := errors.As(err, &ve)
	return ve, ok
}

func Switch(err error) int {
	switch err.(type) {
	case *VersionError: // want "type switch on an error with concrete case"
		return 1
	default:
		return 0
	}
}

func WrapFlat(err error) error {
	return fmt.Errorf("solve failed: %v", err) // want "fmt.Errorf formats an error without %w"
}

func WrapKeep(err error) error {
	return fmt.Errorf("solve failed: %w", err)
}

func FormatNoError(n int) error {
	return fmt.Errorf("bad count %d", n) // clean: nothing to wrap
}

func TextSearch(err error) bool {
	return strings.Contains(err.Error(), "stall") // want "error text matched with strings.Contains"
}

func TextEq(err error) bool {
	return err.Error() == "stall detected" // want "error text compared with =="
}

func Allowed(err error) bool {
	//gapvet:allow errcontract golden file: identity intentionally exact at the fault boundary
	return err == ErrStall
}
