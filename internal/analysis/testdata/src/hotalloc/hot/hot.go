// Package hot is the importing half of the cross-package hotalloc golden
// pair: its annotated function calls into util, and the "allocates" fact
// makes the Format call a finding while Scale stays clean.
package hot

import "gapvet/hotalloc/util"

//gapvet:hotpath golden file: per-pivot kernel
func Kernel(x float64) float64 {
	_ = util.Format(x) // want "call to util.Format allocates .fmt.Sprintf call at "
	return util.Scale(x)
}
