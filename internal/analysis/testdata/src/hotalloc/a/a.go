// Package a exercises hotalloc within one package: only functions
// annotated //gapvet:hotpath carry the no-allocation obligation, and every
// allocation class the analyzer knows has a sanctioned counterpart.
package a

import "fmt"

type solver struct {
	buf []float64
}

//gapvet:hotpath golden file: per-pivot kernel
func AppendNoEvidence(x float64) []float64 {
	var out []float64
	out = append(out, x) // want "append to out without preallocation evidence"
	return out
}

//gapvet:hotpath golden file: per-pivot kernel
func AppendWithMake(n int, x float64) []float64 {
	out := make([]float64, 0, n)
	out = append(out, x)
	return out
}

//gapvet:hotpath golden file: per-pivot kernel
func AppendReuse(buf []float64, x float64) []float64 {
	return append(buf[:0], x)
}

//gapvet:hotpath golden file: per-pivot kernel
func (s *solver) AppendToReceiver(x float64) {
	s.buf = append(s.buf, x)
}

//gapvet:hotpath golden file: per-pivot kernel
func Literals(k string) int {
	m := map[string]int{k: 1} // want "map literal in hotpath function Literals"
	sl := []int{1, 2}         // want "slice literal in hotpath function Literals"
	return m[k] + sl[0]
}

//gapvet:hotpath golden file: per-pivot kernel
func Stringify(x float64) string {
	return fmt.Sprintf("%v", x) // want "fmt.Sprintf call in hotpath function Stringify"
}

//gapvet:hotpath golden file: per-pivot kernel
func Capture(n int) func() int {
	return func() int { return n } // want "function literal capturing n"
}

//gapvet:hotpath golden file: per-pivot kernel
func NoCapture() func() int {
	return func() int { return 42 }
}

func box(v any) {}

//gapvet:hotpath golden file: per-pivot kernel
func Boxes(x int) {
	box(x) // want "interface boxing of argument x"
}

//gapvet:hotpath golden file: per-pivot kernel
func NoBox(v any) {
	box(v) // clean: already an interface, no boxing at this site
}

func allocHelper() []int {
	var xs []int
	xs = append(xs, 1)
	return xs
}

//gapvet:hotpath golden file: per-pivot kernel
func CallsHelper() []int {
	return allocHelper() // want "call to a.allocHelper allocates"
}

func cleanHelper(dst []int) []int { return append(dst, 1) }

//gapvet:hotpath golden file: per-pivot kernel
func CallsClean(dst []int) []int { return cleanHelper(dst) }

//gapvet:hotpath golden file: per-pivot kernel
func Amortized() []int {
	var xs []int
	//gapvet:allow hotalloc golden file: amortized growth audited
	xs = append(xs, 1)
	return xs
}

func sanctionedHelper() []int {
	var xs []int
	//gapvet:allow hotalloc golden file: startup-only growth
	xs = append(xs, 1)
	return xs
}

//gapvet:hotpath golden file: per-pivot kernel
func CallsSanctioned() []int { return sanctionedHelper() }

// FreeAlloc has no annotation: it may allocate at will.
func FreeAlloc() []int {
	return []int{1, 2, 3}
}
