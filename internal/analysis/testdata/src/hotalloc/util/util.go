// Package util is the dependency half of the cross-package hotalloc golden
// pair: Format allocates (fmt.Sprintf), exporting an "allocates" fact the
// importing hot package's annotated function trips over.
package util

import "fmt"

func Format(x float64) string { return fmt.Sprintf("%v", x) }

// Scale is allocation-free; callers are clean.
func Scale(x float64) float64 { return 2 * x }
