// Package a exercises floateq: exact ==/!= between computed float
// expressions is flagged, while constant-sentinel checks, infinity
// sentinels, tolerance comparisons, and integer equality stay silent.
package a

import "math"

const tol = 1e-9

func exactEq(a, b float64) bool {
	return a == b // want "exact == between floating-point expressions"
}

func exactNeq(xs []float64) bool {
	return xs[0] != xs[1] // want "exact != between floating-point expressions"
}

func sentinelZero(x float64) bool { return x == 0 }

func sentinelPivot(piv float64) bool { return piv == 1.0 }

func infSentinel(gap float64) bool { return gap == math.Inf(-1) }

func tolerant(a, b float64) bool { return math.Abs(a-b) <= tol }

func intsExact(i, j int) bool { return i == j }

func allowedExact(a, b float64) bool {
	return a == b //gapvet:allow floateq golden file: exact equality audited and justified
}
