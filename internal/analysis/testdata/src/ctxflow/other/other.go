// Package other carries a path tail outside ctxflow's target set, so its
// context-less entry points are not obligated. Nothing here may be
// flagged.
package other

type Result struct {
	Value float64
}

func SolveAnything(n int) (*Result, error) {
	_ = n
	return &Result{}, nil
}

func RunForever() error {
	return nil
}
