// Package milp carries a targeted path tail, so ctxflow demands that
// every exported Solve/Run-shaped entry point can receive a
// context.Context — directly, via an options struct, or via an embedded
// options struct.
package milp

import "context"

type Result struct {
	Objective float64
}

type Options struct {
	MaxNodes int
	Ctx      context.Context
}

type LegacyOptions struct {
	MaxNodes int
}

type SAOptions struct {
	Options
	Temp float64
}

type Model struct{}

func SolveBare(n int) (*Result, error) { // want "exported entry point SolveBare takes no context.Context"
	_ = n
	return &Result{}, nil
}

func Run(n int) error { // want "exported entry point Run takes no context.Context"
	_ = n
	return nil
}

func SolveWithLegacy(opts LegacyOptions) (*Result, error) { // want "exported entry point SolveWithLegacy takes no context.Context"
	_ = opts
	return &Result{}, nil
}

func (m *Model) Solve() (*Result, error) { // want "exported entry point Solve takes no context.Context"
	return &Result{}, nil
}

func Climb(budget int) (*Result, error) { // want "exported entry point Climb takes no context.Context"
	_ = budget
	return &Result{}, nil
}

func SolveWith(opts Options) (*Result, error) {
	_ = opts
	return &Result{}, nil
}

func SolveEmbedded(opts SAOptions) (*Result, error) {
	_ = opts
	return &Result{}, nil
}

func SolveDirect(ctx context.Context, n int) (*Result, error) {
	_, _ = ctx, n
	return &Result{}, nil
}

func solveInternal(n int) (*Result, error) {
	_ = n
	return &Result{}, nil
}

func Solvent(s string) string { // not Solve-shaped: lower-case rune after the prefix
	return s
}

//gapvet:allow ctxflow golden file: legacy entry point kept for compatibility, migration tracked
func SolveLegacy(n int) (*Result, error) {
	_ = n
	return &Result{}, nil
}
