// Package lp pins ctxflow's delegation rule: a zero-options convenience
// wrapper is compliant when it delegates to an exported entry-point
// overload that can receive a context, and an entry point reaching only
// ctx-less internal code is still flagged.
package lp

import "context"

type Result struct{ ok bool }

// Options carries the context as a field — the options-struct shape.
type Options struct{ Ctx context.Context }

// SolveWith has direct context access via its options parameter.
func SolveWith(o Options) *Result { return &Result{ok: true} }

// Solve is the zero-options wrapper: no context of its own, but it
// delegates to an exported overload that has one. Clean.
func Solve() *Result { return SolveWith(Options{}) }

// RunBare reaches only an unexported ctx-less helper; delegation to
// internal code does not discharge the contract.
func RunBare() *Result { // want "exported entry point RunBare takes no context.Context"
	return runInner()
}

func runInner() *Result { return &Result{} }
