// Package other carries a path tail outside tracecover's target set, so
// its tracer-less entry points are not obligated. Nothing here may be
// flagged.
package other

type Result struct {
	Value float64
}

func SolveAnything(n int) (*Result, error) {
	_ = n
	return &Result{}, nil
}

func RunForever() error {
	return nil
}
