// Package lp carries a targeted path tail, so tracecover demands that
// every exported Solve/Run-shaped entry point can receive a tracer —
// directly, via an options struct, or via an embedded options struct.
package lp

type Tracer struct{}

type Result struct {
	Objective float64
}

type Options struct {
	MaxIters int
	Tracer   *Tracer
}

type LegacyOptions struct {
	MaxIters int
}

type SAOptions struct {
	Options
	Temp float64
}

type Problem struct{}

func SolveBare(n int) (*Result, error) { // want "exported entry point SolveBare takes no obs tracer"
	_ = n
	return &Result{}, nil
}

func Run(n int) error { // want "exported entry point Run takes no obs tracer"
	_ = n
	return nil
}

func SolveWithLegacy(opts LegacyOptions) (*Result, error) { // want "exported entry point SolveWithLegacy takes no obs tracer"
	_ = opts
	return &Result{}, nil
}

func (p *Problem) Solve() (*Result, error) { // want "exported entry point Solve takes no obs tracer"
	return &Result{}, nil
}

func Climb(budget int) (*Result, error) { // want "exported entry point Climb takes no obs tracer"
	_ = budget
	return &Result{}, nil
}

func SolveWith(opts Options) (*Result, error) {
	_ = opts
	return &Result{}, nil
}

func SolveEmbedded(opts SAOptions) (*Result, error) {
	_ = opts
	return &Result{}, nil
}

func SolveDirect(tr *Tracer, n int) (*Result, error) {
	_, _ = tr, n
	return &Result{}, nil
}

func solveInternal(n int) (*Result, error) {
	_ = n
	return &Result{}, nil
}

func Solvent(s string) string { // not Solve-shaped: lower-case rune after the prefix
	return s
}

//gapvet:allow tracecover golden file: legacy entry point kept for compatibility, migration tracked
func SolveLegacy(n int) (*Result, error) {
	_ = n
	return &Result{}, nil
}
