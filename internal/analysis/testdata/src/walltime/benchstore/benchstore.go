// Package benchstore mirrors the real benchmark-ledger package: its path
// tail is on walltime's denied list even though measuring wall clock is its
// purpose. The contract is that the stopwatch sites carry an annotation
// naming themselves as such; an unannotated clock read — say, one sneaking
// into the codec or the comparison engine — must still fail vet.
package benchstore

import "time"

type timing struct {
	best time.Duration
}

// measure is the sanctioned shape: both clock reads annotated as the
// ledger's stopwatch.
func measure(reps int, f func()) timing {
	best := time.Duration(0)
	for i := 0; i < reps; i++ {
		//gapvet:allow walltime benchmark stopwatch: measuring wall clock is this package's purpose
		start := time.Now()
		f()
		d := time.Since(start) //gapvet:allow walltime benchmark stopwatch: measuring wall clock is this package's purpose
		if best == 0 || d < best {
			best = d
		}
	}
	return timing{best: best}
}

// compareish is the failure mode the denied-list entry exists to catch: a
// clock read with no annotation, off the stopwatch path.
func compareish() int64 {
	stamp := time.Now() // want "time.Now in solver package"
	return stamp.UnixNano()
}

func stale(t0 time.Time) bool {
	return time.Since(t0) > time.Second // want "time.Since in solver package"
}

func deadlineGuard(deadline time.Time) bool {
	return time.Now().After(deadline)
}
