// Package util is the dependency half of the interprocedural walltime
// golden pair: a non-denied utility package that wraps clock reads. No
// findings land here — util is not on the denied list — but StampNow and
// Wrapped export "calls-wall-clock" facts that the importing milp golden
// package trips over at its call sites.
package util

import "time"

// StampNow wraps a bare clock read one level deep.
func StampNow() time.Time { return time.Now() }

// Wrapped wraps it a second level; provenance must still name the root
// time.Now, not just the intermediate hop.
func Wrapped() time.Time { return StampNow() }

// Deadline is the sanctioned structural shape — a clock read feeding only
// an After guard — and must carry no fact.
func Deadline(d time.Time) bool { return time.Now().After(d) }

// Sanctioned documents its clock read with an allow, which sanctions the
// whole call chain: callers in denied packages stay clean.
func Sanctioned() time.Time {
	//gapvet:allow walltime golden file: sanctioned timing context for reporting
	return time.Now()
}
