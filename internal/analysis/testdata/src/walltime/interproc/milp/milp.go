// Package milp is the denied half of the interprocedural walltime golden
// pair: its path tail puts it on the denied list, so calls into util
// functions that carry the "calls-wall-clock" fact are findings at the
// call site — wrapping time.Now in a helper package no longer hides it.
package milp

import (
	"time"

	"gapvet/walltime/util"
)

func UseWrapped() time.Time {
	return util.StampNow() // want "call to util.StampNow reads the wall clock"
}

func UseDoubleWrapped() time.Time {
	return util.Wrapped() // want "call to util.Wrapped reads the wall clock .via util.StampNow: time.Now at "
}

func UseDeadline(d time.Time) bool {
	return util.Deadline(d) // clean: deadline guards carry no fact
}

func UseSanctioned() time.Time {
	return util.Sanctioned() // clean: the allow at the read sanctions the chain
}

func AllowedCall() time.Time {
	//gapvet:allow walltime golden file: latency stamp for reporting only
	return util.StampNow()
}
