// Package obs carries a path tail outside walltime's denied set — it
// models the timing layer itself, which exists to read the clock. Nothing
// here may be flagged.
package obs

import "time"

func stamp() time.Time {
	return time.Now()
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0)
}
