// Package milp lives under a denied path tail, so walltime treats it as a
// solver package: bare clock reads are contraband, structural deadline
// guards and annotated timing contexts are sanctioned.
package milp

import "time"

type result struct {
	elapsed time.Duration
}

func solveish(work func()) result {
	start := time.Now() // want "time.Now in solver package"
	work()
	return result{elapsed: time.Since(start)} // want "time.Since in solver package"
}

func deadlineGuard(deadline time.Time, work func()) {
	for !time.Now().After(deadline) {
		work()
	}
}

func notYet(deadline time.Time) bool {
	return time.Now().Before(deadline)
}

func annotatedStall() time.Time {
	//gapvet:allow walltime golden file: deliberate wall-clock policy, documented at the call site
	return time.Now()
}
