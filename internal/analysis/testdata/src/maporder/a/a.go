// Package a exercises maporder: ranging a map into an outer slice,
// formatted output, or trace emission is flagged unless a sort follows;
// order-insensitive reductions and loop-local slices stay silent.
package a

import (
	"fmt"
	"sort"
)

type emitter struct{}

func (emitter) Emit(ev string) {}

func leakKeys(m map[string]int) []string {
	var keys []string
	for k := range m { // want "map iteration order leaks into a slice"
		keys = append(keys, k)
	}
	return keys
}

func collectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func leakPrint(m map[string]int) {
	for k, v := range m { // want "map iteration order leaks into formatted output"
		fmt.Println(k, v)
	}
}

func leakConstraintNames(m map[int]float64, add func(string, float64)) {
	for node, load := range m { // want "map iteration order leaks into formatted output"
		add(fmt.Sprintf("hose.out%d", node), load)
	}
}

func leakTrace(m map[string]int, e emitter) {
	for k := range m { // want "map iteration order leaks into emitted trace events"
		e.Emit(k)
	}
}

func reduce(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func loopLocal(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}

func allowedLeak(m map[string]int) []string {
	var keys []string
	//gapvet:allow maporder golden file: result order deliberately unspecified here
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
