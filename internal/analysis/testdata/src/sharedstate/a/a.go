// Package a exercises sharedstate: goroutine-launched closures may read
// captured state freely, but writes must be mutex-guarded or the results
// handed back over a channel; deliberately disjoint slot writes carry an
// allow naming the safety argument.
package a

import "sync"

func UnguardedWrite() int {
	total := 0
	var wg sync.WaitGroup
	wg.Add(2)
	for i := 0; i < 2; i++ {
		go func() {
			defer wg.Done()
			total++ // want "goroutine closure writes captured variable total"
		}()
	}
	wg.Wait()
	return total
}

func GuardedWrite() int {
	total := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(2)
	for i := 0; i < 2; i++ {
		go func() {
			defer wg.Done()
			mu.Lock()
			total++
			mu.Unlock()
		}()
	}
	wg.Wait()
	return total
}

func DeferGuardedWrite() int {
	total := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(2)
	for i := 0; i < 2; i++ {
		go func() {
			defer wg.Done()
			mu.Lock()
			defer mu.Unlock()
			total++
		}()
	}
	wg.Wait()
	return total
}

func UnlockThenWrite() int {
	total := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		mu.Lock()
		total++
		mu.Unlock()
		total++ // want "goroutine closure writes captured variable total"
	}()
	wg.Wait()
	return total
}

func ChannelOwned() int {
	out := make(chan int, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	for i := 0; i < 2; i++ {
		go func(k int) {
			defer wg.Done()
			out <- k // clean: channel sends are the sanctioned hand-back
		}(i)
	}
	wg.Wait()
	return <-out + <-out
}

func WorkerLocal() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		local := 0
		local++ // clean: declared inside the closure
		_ = local
	}()
	wg.Wait()
}

func SlotWrite() []int {
	results := make([]int, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	for i := 0; i < 2; i++ {
		go func(k int) {
			defer wg.Done()
			results[k] = k * k // want "goroutine closure writes captured variable results"
		}(i)
	}
	wg.Wait()
	return results
}

func SlotWriteAllowed() []int {
	results := make([]int, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	for i := 0; i < 2; i++ {
		go func(k int) {
			defer wg.Done()
			//gapvet:allow sharedstate golden file: each worker owns slot k exclusively
			results[k] = k * k
		}(i)
	}
	wg.Wait()
	return results
}
