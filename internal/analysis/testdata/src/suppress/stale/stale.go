// Package stale exercises -stale-allows: an allow that still silences a
// finding is live; one whose finding has been fixed out from under it is
// reported, so suppressions cannot outlive the deviations they documented.
package stale

import "math/rand"

func Live() int {
	//gapvet:allow detrand golden file: sanctioned bootstrap draw
	return rand.Intn(10)
}

// Fixed draws from an injected RNG — the deviation its allow once
// documented is gone, so the allow itself is now the finding.
func Fixed(r *rand.Rand) int {
	//gapvet:allow detrand golden file: the draw this silenced is gone // want "stale suppression: //gapvet:allow detrand no longer silences any finding"
	return r.Intn(10)
}
