// Package a exercises the suppression machinery itself: a reason-less
// allow and an unknown-analyzer allow are findings in their own right and
// do NOT silence the line they sit on; a well-formed allow does. The
// expectations live in TestSuppressionDiagnostics rather than want
// comments, because the findings land on the comment lines themselves.
package a

func missingReason(a, b float64) bool {
	//gapvet:allow floateq
	return a == b
}

func unknownAnalyzer(a, b float64) bool {
	//gapvet:allow nosuchcheck exact equality audited
	return a == b
}

func validSuppression(a, b float64) bool {
	//gapvet:allow floateq golden file: exact equality audited and justified
	return a == b
}
