// Package caller is the importing half of the interprocedural detrand
// golden pair: calls into util functions carrying the "draws-global-rand"
// fact are findings at the call site, so a helper cannot launder a global
// draw across a package boundary.
package caller

import "gapvet/detrand/util"

func UseDraw() int {
	return util.Draw() // want "call to util.Draw draws from global math/rand"
}

func UseDoubleWrap() int {
	return util.DoubleWrap() // want "call to util.DoubleWrap draws from global math/rand .via util.Draw: math/rand.Intn at "
}

func UseSanctioned() int {
	return util.Sanctioned() // clean: the allow at the draw sanctions the chain
}
