// Package util is the dependency half of the interprocedural detrand
// golden pair: the global draw is flagged here at its source, and the
// "draws-global-rand" fact it exports makes every cross-package caller's
// call site a finding too.
package util

import "math/rand"

func Draw() int {
	return rand.Intn(10) // want "use of global math/rand.Intn"
}

// DoubleWrap adds a hop. Same-package calls are not re-flagged — the draw
// above already was — but the fact still propagates out.
func DoubleWrap() int { return Draw() }

// Sanctioned documents its draw, which suppresses the fact: callers are
// clean.
func Sanctioned() int {
	//gapvet:allow detrand golden file: sanctioned bootstrap shuffle
	return rand.Intn(10)
}
