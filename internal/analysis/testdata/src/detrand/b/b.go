// Package b is the clean counterpart: every draw flows through an
// injected *rand.Rand minted from an explicit seed, which is exactly the
// contract detrand enforces. Nothing here may be flagged.
package b

import "math/rand"

type sampler struct {
	rng *rand.Rand
}

func newSampler(seed int64) *sampler {
	return &sampler{rng: rand.New(rand.NewSource(seed))}
}

func (s *sampler) draw(n int) int {
	return s.rng.Intn(n)
}

func (s *sampler) perturb(xs []float64) {
	s.rng.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}
