// Package a reproduces the seed-state randomness patterns detrand exists
// to catch: global math/rand draws and clock-seeded generators.
package a

import (
	"math/rand"
	"time"
)

func globalDraw() int {
	return rand.Intn(10) // want "use of global math/rand.Intn"
}

func globalShuffle(xs []int) float64 {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "use of global math/rand.Shuffle"
	return rand.Float64()                                                 // want "use of global math/rand.Float64"
}

func timeSeeded() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want "rand.New seeded from the wall clock"
}

func sinceSeeded(t0 time.Time) rand.Source {
	return rand.NewSource(int64(time.Since(t0))) // want "rand.NewSource seeded from the wall clock"
}

func allowedGlobal() int {
	//gapvet:allow detrand golden file: demonstrates a justified, reasoned suppression
	return rand.Intn(3)
}
