package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Maporder flags loops that range over a map while doing something
// order-sensitive: appending to a slice that outlives the loop, writing
// output, or emitting trace events. Go randomizes map iteration order per
// run, so any of those leaks nondeterminism straight into solver results,
// JSONL traces, or golden files.
//
// The established repair is the collect-then-sort idiom (range the map into
// a slice, sort it, then act), which the analyzer recognizes: a sort.* or
// slices.Sort* call in any enclosing statement list after the loop
// sanitizes it. Writes into other maps, counters, and similar
// order-insensitive reductions are never flagged.
var Maporder = &Analyzer{
	Name: "maporder",
	Doc:  "flags map-range loops that append to outer slices, write output, or emit events without a subsequent sort",
	Run:  runMaporder,
}

func runMaporder(p *Pass) error {
	for _, f := range p.Files {
		par := parents(f)
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			sink := orderSensitiveSink(p, rs)
			if sink == "" {
				return true
			}
			if sortedAfter(p, par, rs) {
				return true
			}
			p.Reportf(rs.Pos(), "map iteration order leaks into %s; collect keys and sort first (or sort the result before it is observed)", sink)
			return true
		})
	}
	return nil
}

// orderSensitiveSink scans the range body and names the first
// order-sensitive effect it finds, or returns "".
func orderSensitiveSink(p *Pass, rs *ast.RangeStmt) string {
	sink := ""
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin && id.Name == "append" && len(call.Args) > 0 {
				if declaredOutside(p, call.Args[0], rs) {
					sink = "a slice built up across iterations"
				}
				return true
			}
		}
		if pkg, name := pkgLevelFunc(p.Info, call.Fun); pkg == "fmt" &&
			(strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") || strings.HasPrefix(name, "Sprint")) {
			sink = "formatted output"
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Emit" {
			sink = "emitted trace events"
			return true
		}
		return true
	})
	return sink
}

// declaredOutside reports whether the root identifier of e names an object
// declared outside the range statement (so mutations survive the loop).
// Selector targets (struct fields) always count as outside.
func declaredOutside(p *Pass, e ast.Expr, rs *ast.RangeStmt) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := p.Info.Uses[x]
		if obj == nil {
			obj = p.Info.Defs[x]
		}
		if obj == nil {
			return true // unresolved: stay conservative and flag
		}
		return obj.Pos() < rs.Pos() || obj.Pos() > rs.End()
	case *ast.SelectorExpr, *ast.IndexExpr:
		return true
	default:
		return true
	}
}

// sortedAfter reports whether any statement after the range loop, in any
// enclosing statement list, performs a sort — the tail half of the
// collect-then-sort idiom.
func sortedAfter(p *Pass, par map[ast.Node]ast.Node, rs *ast.RangeStmt) bool {
	var child ast.Node = rs
	for node := par[rs]; node != nil; child, node = node, par[node] {
		var list []ast.Stmt
		switch b := node.(type) {
		case *ast.BlockStmt:
			list = b.List
		case *ast.CaseClause:
			list = b.Body
		case *ast.CommClause:
			list = b.Body
		default:
			continue
		}
		idx := -1
		for i, st := range list {
			if st == child {
				idx = i
				break
			}
		}
		for i := idx + 1; idx >= 0 && i < len(list); i++ {
			if containsSortCall(p, list[i]) {
				return true
			}
		}
	}
	return false
}

func containsSortCall(p *Pass, st ast.Stmt) bool {
	found := false
	ast.Inspect(st, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		pkg, name := pkgLevelFunc(p.Info, call.Fun)
		if pkg == "sort" || (pkg == "slices" && strings.HasPrefix(name, "Sort")) {
			found = true
			return false
		}
		return true
	})
	return found
}
