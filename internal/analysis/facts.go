package analysis

import (
	"fmt"
	"go/types"
	"sort"
	"strings"
)

// The fact store is how analyzers see across function and package
// boundaries. An analyzer running on package P exports facts about P's
// functions ("calls the wall clock", "allocates", "accepts a context");
// when the driver later analyzes a package that imports P, the same store
// answers queries about P's objects. RunAnalyzers feeds packages through
// in dependency order (Load topologically sorts the build graph), so by
// the time a call site is inspected, its callee's facts are final —
// the in-process equivalent of the x/tools Facts export/import cycle.
//
// Facts are keyed by a stable string derived from the object (package
// path, receiver type, name) rather than by object identity: the offline
// source importer re-type-checks dependencies, so the *types.Func seen
// from an importing package is a different object than the one the
// defining package's pass saw. The string key is identical in both
// universes.

// Fact names used by the suite.
const (
	// FactWallClock marks a function that (transitively) reads the wall
	// clock outside a deadline guard or an annotated timing context.
	FactWallClock = "calls-wall-clock"
	// FactGlobalRand marks a function that (transitively) draws from
	// global math/rand state.
	FactGlobalRand = "draws-global-rand"
	// FactAcceptsCtx marks a function whose signature can receive a
	// context.Context (parameter or options-struct field).
	FactAcceptsCtx = "accepts-ctx"
	// FactAllocates marks a function that (transitively) allocates on a
	// path hotalloc polices.
	FactAllocates = "allocates"
)

// FactSet is the shared store. One instance lives for a whole
// RunAnalyzers invocation, visible to every analyzer on every package.
type FactSet struct {
	m map[string]map[string]string // fact name -> obj key -> provenance
}

// NewFactSet returns an empty store.
func NewFactSet() *FactSet {
	return &FactSet{m: make(map[string]map[string]string)}
}

// ObjKey returns the stable cross-package key of a function object:
// "path.Func" for package-level functions, "path.(Recv).Method" for
// methods (pointer receivers normalized away).
func ObjKey(fn *types.Func) string {
	path := ""
	if fn.Pkg() != nil {
		path = fn.Pkg().Path()
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		rt := sig.Recv().Type()
		if ptr, ok := rt.(*types.Pointer); ok {
			rt = ptr.Elem()
		}
		recv := rt.String()
		if named, ok := rt.(*types.Named); ok {
			recv = named.Obj().Name()
		}
		return fmt.Sprintf("%s.(%s).%s", path, recv, fn.Name())
	}
	return path + "." + fn.Name()
}

// Export records fact -> key with a human-readable provenance chain
// (shown in diagnostics: "via solveClock, which calls time.Now at ...").
// A key's first provenance wins, keeping messages independent of
// re-export order.
func (fs *FactSet) Export(fact, key, provenance string) {
	byKey := fs.m[fact]
	if byKey == nil {
		byKey = make(map[string]string)
		fs.m[fact] = byKey
	}
	if _, ok := byKey[key]; !ok {
		byKey[key] = provenance
	}
}

// Lookup reports whether fact is recorded for key, with its provenance.
func (fs *FactSet) Lookup(fact, key string) (provenance string, ok bool) {
	p, ok := fs.m[fact][key]
	return p, ok
}

// Has reports whether the object carries the fact.
func (fs *FactSet) Has(fact string, fn *types.Func) bool {
	_, ok := fs.m[fact][ObjKey(fn)]
	return ok
}

// Provenance returns the object's provenance string for fact ("" if absent).
func (fs *FactSet) Provenance(fact string, fn *types.Func) string {
	p, _ := fs.m[fact][ObjKey(fn)]
	return p
}

// Keys returns the sorted keys carrying fact — the deterministic
// enumeration used by tests and debug output.
func (fs *FactSet) Keys(fact string) []string {
	var out []string
	for k := range fs.m[fact] {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// FuncDisplayName renders an object key back into the short form used in
// diagnostics: "pkgtail.Func" or "pkgtail.(Recv).Method".
func FuncDisplayName(key string) string {
	// The key is path-qualified; trim to the path tail for readability.
	if i := strings.LastIndexByte(key, '/'); i >= 0 {
		return key[i+1:]
	}
	return key
}
