package analysis

import "testing"

func TestTracecoverFlagging(t *testing.T) {
	RunGolden(t, Tracecover, "tracecover/lp")
}

func TestTracecoverNonTargetPackage(t *testing.T) {
	RunGolden(t, Tracecover, "tracecover/other")
}
