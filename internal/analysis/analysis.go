// Package analysis is gapvet's static-analysis suite: a family of
// project-specific analyzers that enforce the solver stack's determinism,
// float-safety, and observability contracts at compile time.
//
// The contracts it guards are the ones the reproduction's results rest on:
//
//   - detrand: all randomness flows through an injected *rand.Rand (the
//     PR 2 reproducibility contract). Global math/rand state and
//     time-seeded generators are contraband.
//   - walltime: wall-clock reads (time.Now / time.Since) stay inside
//     allowlisted deadline/observability contexts and never silently feed
//     result-affecting values in solver packages.
//   - floateq: no raw == / != between computed floating-point expressions;
//     comparisons go through the tolerance constants (pivotTol, feasTol,
//     intTol, ...) unless one side is an exact sentinel constant.
//   - maporder: map iteration order never leaks into slices, output, or
//     trace events without a subsequent sort.
//   - tracecover: exported Solve/Run-shaped entry points in the solver
//     packages accept the obs tracer, so PR 1's observability layer cannot
//     rot out of new code paths.
//   - ctxflow: the same entry points accept a context.Context (parameter
//     or options-struct field), so the crash-safe-search cancellation
//     contract cannot rot out of new solve paths either.
//
// The vocabulary (Analyzer, Pass, Diagnostic) deliberately mirrors
// golang.org/x/tools/go/analysis so the suite can be ported to a stock
// multichecker wholesale; it is reimplemented here on the standard library
// alone (go/parser + go/types + the source importer) because this build
// environment is offline and the module vendors nothing.
//
// Suppression: a finding is silenced by an adjacent comment of the form
//
//	//gapvet:allow <analyzer> <reason>
//
// on the flagged line or the line directly above it. The reason is
// mandatory; a malformed or unknown-analyzer allow comment is itself a
// finding, so suppressions stay auditable.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named check. Run inspects a single type-checked package
// and reports findings through the Pass.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one package's syntax and type information to an analyzer,
// plus the interprocedural context: the package's call graph and the
// suite-wide fact store (already populated for every dependency, because
// the driver feeds packages through in build order).
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	Graph    *CallGraph
	Facts    *FactSet

	allowed map[allowKey]bool
	diags   *[]Diagnostic
}

// Allowed reports whether a //gapvet:allow comment for the named analyzer
// covers pos. Fact-generating analyzers consult this so an annotated
// violation is sanctioned all the way up its call chain, not just at the
// flagged line.
func (p *Pass) Allowed(analyzer string, pos token.Pos) bool {
	position := p.Fset.Position(pos)
	return p.allowed[allowKey{file: position.Filename, line: position.Line, analyzer: analyzer}]
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// Diagnostic is one finding, already resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// All returns the full gapvet suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{Detrand, Walltime, Floateq, Maporder, Tracecover, Ctxflow, Hotalloc, Sharedstate, Errcontract}
}

// Result is one full driver run: the surviving findings plus the stale
// //gapvet:allow comments (allows that no raw finding needed). Stale is
// only meaningful when the full suite ran — a subset run cannot tell a
// stale allow from one whose analyzer simply was not selected.
type Result struct {
	Findings []Diagnostic
	Stale    []Diagnostic
}

// RunAnalyzers runs every analyzer over every package, applies
// //gapvet:allow suppressions, and returns the surviving findings sorted by
// position. Malformed suppression comments are returned as findings of the
// pseudo-analyzer "gapvet".
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	res, err := Run(pkgs, analyzers)
	if err != nil {
		return nil, err
	}
	return res.Findings, nil
}

// Run is the full driver. Packages must be in dependency order (Load
// guarantees this) so facts exported while analyzing a package are in
// place before any importer of that package is inspected.
func Run(pkgs []*Package, analyzers []*Analyzer) (*Result, error) {
	// Suppressions may name any analyzer in the suite, not just the ones
	// selected for this run (-only must not turn valid allows into findings).
	known := make(map[string]bool)
	for _, a := range All() {
		known[a.Name] = true
	}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	facts := NewFactSet()
	var out []Diagnostic
	var sites []allowSite
	used := make(map[allowKey]bool)
	for _, pkg := range pkgs {
		pkgSites, bad := suppressions(pkg, known)
		allowed := make(map[allowKey]bool)
		for _, s := range pkgSites {
			for _, line := range []int{s.pos.Line, s.pos.Line + 1} {
				allowed[allowKey{file: s.pos.Filename, line: line, analyzer: s.analyzer}] = true
			}
		}
		graph := buildCallGraph(pkg.Files, pkg.Info)
		var raw []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Graph:    graph,
				Facts:    facts,
				allowed:  allowed,
				diags:    &raw,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.PkgPath, err)
			}
		}
		for _, d := range raw {
			k := allowKey{file: d.Pos.Filename, line: d.Pos.Line, analyzer: d.Analyzer}
			if allowed[k] {
				used[k] = true
				continue
			}
			out = append(out, d)
		}
		out = append(out, bad...)
		sites = append(sites, pkgSites...)
	}
	var stale []Diagnostic
	for _, s := range sites {
		live := false
		for _, line := range []int{s.pos.Line, s.pos.Line + 1} {
			if used[allowKey{file: s.pos.Filename, line: line, analyzer: s.analyzer}] {
				live = true
				break
			}
		}
		if !live {
			stale = append(stale, Diagnostic{
				Analyzer: "gapvet",
				Pos:      s.pos,
				Message:  fmt.Sprintf("stale suppression: //gapvet:allow %s no longer silences any finding; remove it (or the contract it documented has rotted)", s.analyzer),
			})
		}
	}
	sortDiags(out)
	sortDiags(stale)
	return &Result{Findings: out, Stale: stale}, nil
}

func sortDiags(out []Diagnostic) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

type allowKey struct {
	file     string
	line     int
	analyzer string
}

// allowRe captures "//gapvet:allow <analyzer> <reason>"; reason may be any
// non-empty trailing text.
var allowRe = regexp.MustCompile(`^//gapvet:allow\s+(\S+)(?:\s+(.*))?$`)

// allowSite is one well-formed //gapvet:allow comment: its position and the
// analyzer it silences (on the comment's line and the line below).
type allowSite struct {
	pos      token.Position
	analyzer string
}

// suppressions scans a package's comments for //gapvet:allow markers. A
// marker on line L silences the named analyzer on lines L and L+1 of the
// same file (end-of-line and line-above placement). Markers lacking a
// reason or naming an unknown analyzer are returned as findings.
func suppressions(pkg *Package, known map[string]bool) ([]allowSite, []Diagnostic) {
	var sites []allowSite
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, "//gapvet:allow") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				m := allowRe.FindStringSubmatch(text)
				if m == nil || strings.TrimSpace(m[2]) == "" {
					bad = append(bad, Diagnostic{
						Analyzer: "gapvet",
						Pos:      pos,
						Message:  "malformed suppression: want //gapvet:allow <analyzer> <reason>",
					})
					continue
				}
				if !known[m[1]] {
					bad = append(bad, Diagnostic{
						Analyzer: "gapvet",
						Pos:      pos,
						Message:  fmt.Sprintf("suppression names unknown analyzer %q", m[1]),
					})
					continue
				}
				sites = append(sites, allowSite{pos: pos, analyzer: m[1]})
			}
		}
	}
	return sites, bad
}

// pkgLevelFunc resolves e (a call's Fun or a bare reference) to a
// package-level function and returns its package path and name; it returns
// ("", "") for methods, builtins, locals, and non-functions.
func pkgLevelFunc(info *types.Info, e ast.Expr) (pkgPath, name string) {
	e = ast.Unparen(e)
	var obj types.Object
	switch x := e.(type) {
	case *ast.SelectorExpr:
		obj = info.Uses[x.Sel]
	case *ast.Ident:
		obj = info.Uses[x]
	default:
		return "", ""
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", ""
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return "", "" // method, not a package-level func
	}
	return fn.Pkg().Path(), fn.Name()
}

// pkgTail returns the last slash-separated element of a package path —
// the unit the per-package allow/deny lists are keyed on, so the same
// analyzers gate both real solver packages and analysistest golden
// packages (whose fake paths end in the same tails).
func pkgTail(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// isFloat reports whether t's underlying type is a floating-point basic.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// parents builds a child -> parent node map for a file, used by analyzers
// that need the enclosing statement context of a match.
func parents(f *ast.File) map[ast.Node]ast.Node {
	m := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			m[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return m
}
