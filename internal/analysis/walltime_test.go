package analysis

import "testing"

func TestWalltimeFlagging(t *testing.T) {
	RunGolden(t, Walltime, "walltime/milp")
}

func TestWalltimeNonDeniedPackage(t *testing.T) {
	RunGolden(t, Walltime, "walltime/obs")
}
