package analysis

import "testing"

func TestWalltimeFlagging(t *testing.T) {
	RunGolden(t, Walltime, "walltime/milp")
}

func TestWalltimeNonDeniedPackage(t *testing.T) {
	RunGolden(t, Walltime, "walltime/obs")
}

// TestWalltimeBenchstore pins the benchmark-ledger discipline: benchstore is
// on the denied list, so its annotated stopwatch sites pass while any bare
// clock read (e.g. in codec or comparison code) still fails.
func TestWalltimeBenchstore(t *testing.T) {
	RunGolden(t, Walltime, "walltime/benchstore")
}

// TestWalltimeInterprocedural pins the fact path: util wraps time.Now one
// and two levels deep, and the denied milp golden package is flagged at
// its call sites — including provenance that names the root read — while
// deadline guards and annotated reads propagate no fact.
func TestWalltimeInterprocedural(t *testing.T) {
	RunGoldenMulti(t, Walltime, "walltime/util", "walltime/interproc/milp")
}
