package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Sharedstate guards the deterministic-parallelism contract: the parallel
// wave pool in milp and the restart workers in blackbox promise bit-identical
// results at any worker count, which only holds if goroutines never race on
// captured state. The analyzer inspects every closure launched with a go
// statement and flags writes to variables captured from the enclosing
// function unless the write is sanctioned by one of the disciplines the
// codebase actually uses:
//
//   - mutex-guarded: the write sits lexically between a sync Lock/RLock and
//     its Unlock (a deferred Unlock holds to the end of the closure);
//   - channel-owned: results handed back over a channel (a send statement
//     is not a write to captured state);
//   - read-only capture: reads are always fine.
//
// Writes that are deliberately disjoint — each worker owning one slot of a
// preallocated results slice, coordinated by an atomic cursor — are real
// code in the wave pool, but the safety argument lives in the indexing
// scheme, not the syntax; such sites carry a
// //gapvet:allow sharedstate <reason> annotation naming that argument.
var Sharedstate = &Analyzer{
	Name: "sharedstate",
	Doc:  "flags goroutine closures writing captured variables outside a held mutex; shared state in worker pools must be read-only, mutex-guarded, or channel-owned",
	Run:  runSharedstate,
}

func runSharedstate(p *Pass) error {
	for _, node := range p.Graph.Nodes {
		nodeBodyInspect(node, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
			if !ok {
				return true // go someFunc(...): arguments are copied, not captured
			}
			checkGoroutineLit(p, node, lit)
			return true
		})
	}
	return nil
}

// checkGoroutineLit flags unguarded writes to captured variables inside one
// goroutine-launched literal.
func checkGoroutineLit(p *Pass, encl *FuncNode, lit *ast.FuncLit) {
	held := mutexRegions(p, lit.Body)
	report := func(pos token.Pos, v *types.Var) {
		p.Reportf(pos, "goroutine closure writes captured variable %s outside a held mutex; worker-pool state must be read-only, mutex-guarded, or channel-owned (deterministic-parallelism contract)", v.Name())
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.FuncLit); ok && inner != lit {
			return false // nested launches are their own check
		}
		switch st := n.(type) {
		case *ast.GoStmt:
			if innerLit, ok := ast.Unparen(st.Call.Fun).(*ast.FuncLit); ok {
				checkGoroutineLit(p, encl, innerLit)
			}
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				if v := capturedWriteTarget(p, encl, lit, lhs); v != nil && !held.covers(st.Pos()) {
					report(lhs.Pos(), v)
				}
			}
		case *ast.IncDecStmt:
			if v := capturedWriteTarget(p, encl, lit, st.X); v != nil && !held.covers(st.Pos()) {
				report(st.X.Pos(), v)
			}
		}
		return true
	})
}

// capturedWriteTarget resolves a write destination to the captured local it
// mutates, or nil when the destination is closure-local (or not captured
// state at all). Writes through a captured slice/map/pointer root count:
// results[i] = x mutates memory every worker can reach.
func capturedWriteTarget(p *Pass, encl *FuncNode, lit *ast.FuncLit, dest ast.Expr) *types.Var {
	obj := rootObject(p, dest)
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	if v.Parent() == nil || v.Parent() == p.Pkg.Scope() {
		return nil // package-level state is floateq/maporder territory, not capture
	}
	// Declared inside the literal (including its params): worker-local.
	if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
		return nil
	}
	// Declared inside the enclosing function: captured.
	if body := encl.Body(); body != nil && v.Pos() >= encl.Pos() && v.Pos() <= body.End() {
		return v
	}
	return nil
}

// lockRegion is a lexical [Lock, Unlock) span; end == token.NoPos means the
// lock is released by defer and holds to the end of the body.
type lockRegion struct {
	start, end token.Pos
}

type lockRegions []lockRegion

func (rs lockRegions) covers(pos token.Pos) bool {
	for _, r := range rs {
		if pos > r.start && (r.end == token.NoPos || pos < r.end) {
			return true
		}
	}
	return false
}

// mutexRegions scans a closure body for sync Lock/Unlock pairs and returns
// the lexical regions where a mutex is held. The matching is positional,
// which is exactly right for the two idioms the codebase uses —
// mu.Lock(); defer mu.Unlock() and mu.Lock(); ...; mu.Unlock() — and
// conservative for anything fancier.
func mutexRegions(p *Pass, body *ast.BlockStmt) lockRegions {
	var regions lockRegions
	open := -1 // index into regions of the last unmatched Lock
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if d, ok := n.(*ast.DeferStmt); ok {
			// defer mu.Unlock() keeps the region open to the body's end.
			if isSyncCall(p, d.Call, "Unlock", "RUnlock") && open >= 0 {
				open = -1
			}
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case isSyncCall(p, call, "Lock", "RLock"):
			regions = append(regions, lockRegion{start: call.Pos(), end: token.NoPos})
			open = len(regions) - 1
		case isSyncCall(p, call, "Unlock", "RUnlock"):
			if open >= 0 {
				regions[open].end = call.Pos()
				open = -1
			}
		}
		return true
	})
	return regions
}

// isSyncCall reports whether call invokes a sync-package method with one of
// the given names (sync.Mutex, sync.RWMutex, or anything satisfying
// sync.Locker).
func isSyncCall(p *Pass, call *ast.CallExpr, names ...string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	for _, name := range names {
		if fn.Name() == name {
			return true
		}
	}
	return false
}
