package analysis

import "testing"

func TestHotallocFlagging(t *testing.T) {
	RunGolden(t, Hotalloc, "hotalloc/a")
}

// TestHotallocCrossPackage pins the fact path: util.Format's allocation is
// discovered when util is analyzed, and the annotated caller in hot is
// flagged at its call site via the imported "allocates" fact.
func TestHotallocCrossPackage(t *testing.T) {
	RunGoldenMulti(t, Hotalloc, "hotalloc/util", "hotalloc/hot")
}
