package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Hotalloc enforces the zero-allocation contract on the solver's hot
// paths. A function annotated
//
//	//gapvet:hotpath <reason>
//
// (in its doc comment) sits inside the per-pivot working set — FTRAN/BTRAN
// solves, eta application, pricing loops — where a single heap allocation
// per call multiplies into millions per search and shows up directly in
// the bench ledger's ns/pivot. Inside such a function the analyzer flags:
//
//   - append whose destination shows no preallocation evidence: the
//     destination must be built by make with an explicit length/capacity
//     in the same function, or be caller-owned (a parameter, or a field
//     reached through the receiver or a parameter, whose capacity is
//     amortized by the caller);
//   - map and slice composite literals;
//   - fmt.Sprint/Sprintf/Errorf-family calls;
//   - function literals that capture local variables (closure allocation);
//   - interface boxing at call sites (a concrete value passed to an
//     interface parameter);
//   - transitively, calls to any function that allocates by the same
//     rules — through helpers, methods, and other packages, via
//     "allocates" facts.
//
// Deliberate, amortized allocations (periodic refactorization, error
// paths) are annotated //gapvet:allow hotalloc <reason> at the site.
var Hotalloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "functions annotated //gapvet:hotpath may not allocate: flags appends without preallocation evidence, map/slice literals, Sprintf, capturing closures, interface boxing, and calls into allocating code (interprocedural)",
	Run:  runHotalloc,
}

// hotpathMarker is the annotation that opts a function into the contract.
const hotpathMarker = "//gapvet:hotpath"

// isHotpath reports whether a declared function carries the marker in its
// doc comment.
func isHotpath(fd *ast.FuncDecl) bool {
	if fd == nil || fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), hotpathMarker) {
			return true
		}
	}
	return false
}

func runHotalloc(p *Pass) error {
	// Fact generation in every package: each function's own allocation
	// sites (annotated ones excluded), closed over resolved calls.
	details := factProp{
		fact: FactAllocates,
		direct: func(n *FuncNode) string {
			for _, s := range allocSites(p, n) {
				if !p.Allowed("hotalloc", s.pos) {
					return fmt.Sprintf("%s at %s", s.what, p.Fset.Position(s.pos))
				}
			}
			return ""
		},
	}.run(p)

	// Flagging: only annotated functions carry the obligation.
	for _, node := range p.Graph.Nodes {
		if node.Decl == nil || !isHotpath(node.Decl) {
			continue
		}
		for _, s := range allocSites(p, node) {
			p.Reportf(s.pos, "%s in hotpath function %s; hot loops must not allocate — preallocate, hoist, or annotate the amortized exception", s.what, node.Decl.Name.Name)
		}
		// Transitive: calls into allocating code. A callee that is itself
		// hotpath-annotated reports its own sites; no need to re-flag here.
		for _, e := range node.Out {
			switch {
			case e.Callee != nil:
				if e.Callee.Decl != nil && isHotpath(e.Callee.Decl) {
					continue
				}
				if d := details[e.Callee]; d != "" {
					p.Reportf(e.Site.Pos(), "call to %s allocates (%s) in hotpath function %s", edgeDisplay(p, e), d, node.Decl.Name.Name)
				}
			case e.CalleeObj != nil && e.CalleeObj.Pkg() != p.Pkg:
				if prov, ok := p.Facts.Lookup(FactAllocates, ObjKey(e.CalleeObj)); ok {
					p.Reportf(e.Site.Pos(), "call to %s allocates (%s) in hotpath function %s", FuncDisplayName(ObjKey(e.CalleeObj)), prov, node.Decl.Name.Name)
				}
			}
		}
	}
	return nil
}

// allocSite is one allocation inside a function body.
type allocSite struct {
	pos  token.Pos
	what string
}

// allocSites lists the allocation sites lexically owned by node, in
// source order. Nested function literals are not descended into (their
// bodies are their own call-graph nodes); a literal that captures local
// state is itself a site.
func allocSites(p *Pass, node *FuncNode) []allocSite {
	callerOwned := callerOwnedObjects(p, node)

	// Preallocation evidence: destinations assigned from make(T, n) or
	// make(T, 0, n) in this function, keyed by their rendered path
	// ("buf", "et.idx").
	prealloc := make(map[string]bool)
	recordMake := func(lhs, rhs ast.Expr) {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || len(call.Args) < 2 {
			return
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if b, isB := p.Info.Uses[id].(*types.Builtin); isB && b.Name() == "make" {
				if path := exprPath(lhs); path != "" {
					prealloc[path] = true
				}
			}
		}
	}
	nodeBodyInspect(node, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				if i < len(st.Rhs) {
					recordMake(lhs, st.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			for i, name := range st.Names {
				if i < len(st.Values) {
					recordMake(name, st.Values[i])
				}
			}
		}
		return true
	})

	var sites []allocSite
	add := func(pos token.Pos, format string, args ...any) {
		sites = append(sites, allocSite{pos: pos, what: fmt.Sprintf(format, args...)})
	}
	nodeBodyInspect(node, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			if captured := capturedLocal(p, node, x); captured != "" {
				add(x.Pos(), "function literal capturing %s", captured)
			}
			return true
		case *ast.CompositeLit:
			switch p.TypeOf(x).Underlying().(type) {
			case *types.Map:
				add(x.Pos(), "map literal")
			case *types.Slice:
				add(x.Pos(), "slice literal")
			}
			return true
		case *ast.CallExpr:
			// append without preallocation evidence.
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
				if b, isB := p.Info.Uses[id].(*types.Builtin); isB {
					if b.Name() == "append" && len(x.Args) > 0 {
						dest := x.Args[0]
						path := exprPath(dest)
						if !prealloc[path] && !callerOwned[rootObject(p, dest)] {
							add(x.Pos(), "append to %s without preallocation evidence", describeDest(path))
						}
					}
					return true
				}
			}
			if pkg, name := pkgLevelFunc(p.Info, x.Fun); pkg == "fmt" && (strings.HasPrefix(name, "Sprint") || name == "Errorf") {
				add(x.Pos(), "fmt.%s call", name)
				return true
			}
			// Interface boxing at the call site.
			for _, box := range boxedArgs(p, x) {
				add(box.Pos(), "interface boxing of argument %s", renderExpr(box))
			}
			return true
		}
		return true
	})
	return sites
}

// callerOwnedObjects returns the parameter and receiver objects of a
// function — roots whose storage (and spare capacity) the caller manages.
func callerOwnedObjects(p *Pass, node *FuncNode) map[types.Object]bool {
	owned := make(map[types.Object]bool)
	var ft *ast.FuncType
	if node.Decl != nil {
		ft = node.Decl.Type
		if node.Decl.Recv != nil {
			for _, f := range node.Decl.Recv.List {
				for _, name := range f.Names {
					owned[objOf(p.Info, name)] = true
				}
			}
		}
	} else {
		ft = node.Lit.Type
	}
	if ft.Params != nil {
		for _, f := range ft.Params.List {
			for _, name := range f.Names {
				owned[objOf(p.Info, name)] = true
			}
		}
	}
	// An unresolved root must never read as caller-owned.
	delete(owned, nil)
	return owned
}

// rootObject resolves the leftmost identifier of a destination expression.
func rootObject(p *Pass, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return objOf(p.Info, x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			// append(buf[:0], ...) reuses buf's storage; the root owns it.
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// exprPath renders a destination as a stable path string: "buf",
// "et.idx", "lu.rows". Expressions with calls or indexing render as "".
func exprPath(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := exprPath(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	case *ast.SliceExpr:
		// buf[:0] names the same storage as buf.
		return exprPath(x.X)
	default:
		return ""
	}
}

func describeDest(path string) string {
	if path == "" {
		return "a computed destination"
	}
	return path
}

// capturedLocal names the first function-local variable a literal captures
// from its enclosing function ("" when the literal is capture-free).
// Package-level variables are referenced directly, not via a closure
// context, so they do not force the allocation.
func capturedLocal(p *Pass, encl *FuncNode, lit *ast.FuncLit) string {
	name := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := p.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() == nil || v.Parent() == p.Pkg.Scope() || v.Parent().Parent() == types.Universe {
			return true // package-level or universe
		}
		// Declared outside the literal but inside the enclosing function.
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			if v.Pos() >= encl.Pos() && v.Pos() <= encl.Body().End() {
				name = v.Name()
				return false
			}
		}
		return true
	})
	return name
}

// boxedArgs returns the call arguments that box a concrete value into an
// interface parameter.
func boxedArgs(p *Pass, call *ast.CallExpr) []ast.Expr {
	tv, ok := p.Info.Types[call.Fun]
	if !ok || tv.IsType() { // conversions are not calls
		return nil
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return nil
	}
	params := sig.Params()
	if params.Len() == 0 {
		return nil
	}
	var out []ast.Expr
	for i, arg := range call.Args {
		var pt types.Type
		if sig.Variadic() && i >= params.Len()-1 {
			if call.Ellipsis.IsValid() {
				continue // s... forwards an existing slice, no boxing here
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		} else if i < params.Len() {
			pt = params.At(i).Type()
		} else {
			break
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := p.TypeOf(arg)
		if at == nil || types.IsInterface(at) {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		out = append(out, arg)
	}
	return out
}

// renderExpr gives a short display of an expression for diagnostics.
func renderExpr(e ast.Expr) string {
	if path := exprPath(e); path != "" {
		return path
	}
	return "value"
}
