package analysis

import (
	"fmt"
	"go/ast"
)

// Walltime polices wall-clock reads in the solver packages. The explored
// branch-and-bound tree and the black-box restart sequence are contractually
// pure functions of their inputs; a time.Now or time.Since on a result path
// silently voids that. Inside the packages listed in walltimeDenied the
// only sanctioned uses are:
//
//   - deadline guards — time.Now().After(d) / time.Now().Before(d) — which
//     decide when to stop, not what to answer, and are recognized
//     structurally;
//   - sites annotated //gapvet:allow walltime <reason>, which documents
//     every deliberate wall-clock dependency (latency budgets, the paper's
//     stall rule, elapsed-time reporting) at the point it happens.
//
// The analyzer is interprocedural: every package (except the obs timing
// layer, whose clock reads are its purpose) exports a "calls-wall-clock"
// fact for each function that transitively reaches an unguarded,
// unannotated clock read — through helpers, methods, and assigned-once
// function literals alike. A denied package then flags any call into a
// non-denied package whose target carries the fact, so wrapping time.Now
// one helper deep in a utility package no longer hides it.
//
// The obs package (the timing layer itself), the experiments harness, test
// files, and the CLIs are out of scope for direct findings; obs is also
// fact-exempt, which is what keeps tracer.Emit timestamps sanctioned.
var Walltime = &Analyzer{
	Name: "walltime",
	Doc:  "flags time.Now/time.Since in solver packages outside deadline guards and annotated timing contexts, including wall-clock reads wrapped in helpers (interprocedural)",
	Run:  runWalltime,
}

// walltimeDenied keys the solver packages (by path tail) where wall time is
// contraband. obs, experiments, cmd/* and examples/* are intentionally
// absent: they exist to measure and report time. benchstore IS denied even
// though measuring is its purpose — the discipline there is that every
// stopwatch site carries an annotation naming itself as one, so a clock
// read sneaking into the codec or comparison logic still fails vet.
var walltimeDenied = map[string]bool{
	"lp":         true,
	"benchstore": true,
	"milp":       true,
	"kkt":        true,
	"core":       true,
	"mcf":        true,
	"sortnet":    true,
	"blackbox":   true,
	"demand":     true,
	"topology":   true,
}

// walltimeFactExempt names the packages whose clock reads never generate
// facts: obs is the sanctioned timing layer — every tracer timestamp and
// phase stopwatch lives there by design, and propagating facts out of it
// would flag every Emit call in the solvers.
var walltimeFactExempt = map[string]bool{
	"obs": true,
}

func runWalltime(p *Pass) error {
	tail := pkgTail(p.Pkg.Path())
	if walltimeFactExempt[tail] {
		return nil
	}
	denied := walltimeDenied[tail]

	// Structural pass: collect clock reads that only feed a deadline guard.
	guarded := make(map[*ast.CallExpr]bool)
	clockReads := make(map[*ast.CallExpr]string) // unguarded read -> "Now"/"Since"
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "After" && sel.Sel.Name != "Before") {
				return true
			}
			if inner, ok := ast.Unparen(sel.X).(*ast.CallExpr); ok {
				if pkg, name := pkgLevelFunc(p.Info, inner.Fun); pkg == "time" && name == "Now" {
					guarded[inner] = true
				}
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, name := pkgLevelFunc(p.Info, call.Fun)
			if pkg != "time" || (name != "Now" && name != "Since") {
				return true
			}
			if guarded[call] {
				return true
			}
			clockReads[call] = name
			if denied {
				p.Reportf(call.Pos(), "time.%s in solver package %q; wall clock must not shape results — use a deadline guard or annotate the timing context", name, p.Pkg.Path())
			}
			return true
		})
	}

	// Fact generation: a function owns a clock read when an unguarded,
	// unannotated time.Now/Since sits lexically in its body (nested
	// literals belong to their own nodes); the fact then propagates
	// through every statically resolved call edge.
	factProp{
		fact: FactWallClock,
		direct: func(n *FuncNode) string {
			detail := ""
			nodeBodyInspect(n, func(nd ast.Node) bool {
				if detail != "" {
					return false
				}
				call, ok := nd.(*ast.CallExpr)
				if !ok {
					return true
				}
				name, isRead := clockReads[call]
				if !isRead || p.Allowed("walltime", call.Pos()) {
					return true
				}
				detail = fmt.Sprintf("time.%s at %s", name, p.Fset.Position(call.Pos()))
				return false
			})
			return detail
		},
	}.run(p)

	if !denied {
		return nil
	}

	// Interprocedural flagging: calls out of a denied package into a
	// non-denied one whose target reaches the clock. Calls whose target is
	// in a denied package are not re-flagged — the originating read was
	// flagged there directly.
	for _, node := range p.Graph.Nodes {
		for _, e := range node.Out {
			fn := e.CalleeObj
			if fn == nil || fn.Pkg() == nil || fn.Pkg() == p.Pkg {
				continue
			}
			if walltimeDenied[pkgTail(fn.Pkg().Path())] {
				continue
			}
			if prov, ok := p.Facts.Lookup(FactWallClock, ObjKey(fn)); ok {
				p.Reportf(e.Site.Pos(), "call to %s reads the wall clock (%s); wall clock must not shape results in solver package %q — use a deadline guard or annotate the timing context",
					FuncDisplayName(ObjKey(fn)), prov, p.Pkg.Path())
			}
		}
	}
	return nil
}
