package analysis

import (
	"go/ast"
)

// Walltime polices wall-clock reads in the solver packages. The explored
// branch-and-bound tree and the black-box restart sequence are contractually
// pure functions of their inputs; a time.Now or time.Since on a result path
// silently voids that. Inside the packages listed in walltimeDenied the
// only sanctioned uses are:
//
//   - deadline guards — time.Now().After(d) / time.Now().Before(d) — which
//     decide when to stop, not what to answer, and are recognized
//     structurally;
//   - sites annotated //gapvet:allow walltime <reason>, which documents
//     every deliberate wall-clock dependency (latency budgets, the paper's
//     stall rule, elapsed-time reporting) at the point it happens.
//
// The obs package (the timing layer itself), the experiments harness, test
// files, and the CLIs are out of scope.
var Walltime = &Analyzer{
	Name: "walltime",
	Doc:  "flags time.Now/time.Since in solver packages outside deadline guards and annotated timing contexts",
	Run:  runWalltime,
}

// walltimeDenied keys the solver packages (by path tail) where wall time is
// contraband. obs, experiments, cmd/* and examples/* are intentionally
// absent: they exist to measure and report time. benchstore IS denied even
// though measuring is its purpose — the discipline there is that every
// stopwatch site carries an annotation naming itself as one, so a clock
// read sneaking into the codec or comparison logic still fails vet.
var walltimeDenied = map[string]bool{
	"lp":         true,
	"benchstore": true,
	"milp":       true,
	"kkt":        true,
	"core":       true,
	"mcf":        true,
	"sortnet":    true,
	"blackbox":   true,
	"demand":     true,
	"topology":   true,
}

func runWalltime(p *Pass) error {
	if !walltimeDenied[pkgTail(p.Pkg.Path())] {
		return nil
	}
	for _, f := range p.Files {
		// First pass: collect clock reads that only feed a deadline guard.
		guarded := make(map[*ast.CallExpr]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "After" && sel.Sel.Name != "Before") {
				return true
			}
			if inner, ok := ast.Unparen(sel.X).(*ast.CallExpr); ok {
				if pkg, name := pkgLevelFunc(p.Info, inner.Fun); pkg == "time" && name == "Now" {
					guarded[inner] = true
				}
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, name := pkgLevelFunc(p.Info, call.Fun)
			if pkg != "time" || (name != "Now" && name != "Since") {
				return true
			}
			if guarded[call] {
				return true
			}
			p.Reportf(call.Pos(), "time.%s in solver package %q; wall clock must not shape results — use a deadline guard or annotate the timing context", name, p.Pkg.Path())
			return true
		})
	}
	return nil
}
