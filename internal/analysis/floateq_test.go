package analysis

import "testing"

func TestFloateq(t *testing.T) {
	RunGolden(t, Floateq, "floateq/a")
}
