package analysis

import (
	"go/ast"
	"go/token"
)

// Floateq flags == and != between two computed floating-point expressions.
// After a simplex pivot or a KKT reformulation, two mathematically equal
// quantities differ in ulps, so exact equality silently degrades into
// "sometimes"; comparisons belong behind the tolerance constants the solver
// already defines (pivotTol, feasTol, optTol, intTol, complTol, boundTol).
//
// Comparisons against compile-time constants are exempt: `x == 0` or
// `piv == 1` checks an exact sentinel the code itself assigned, which is
// the established idiom in the simplex kernel. Comparisons with math.Inf
// or math.NaN calls are likewise sentinel checks (though math.IsInf /
// math.IsNaN read better and are preferred in review).
var Floateq = &Analyzer{
	Name: "floateq",
	Doc:  "flags exact ==/!= between computed float expressions; compare through the solver's tolerance constants",
	Run:  runFloateq,
}

func runFloateq(p *Pass) error {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isComputedFloat(p, be.X) || !isComputedFloat(p, be.Y) {
				return true
			}
			p.Reportf(be.Pos(), "exact %s between floating-point expressions; compare with a tolerance (pivotTol-style) or annotate why exact equality is sound", be.Op)
			return true
		})
	}
	return nil
}

// isComputedFloat reports whether e is float-typed and neither a
// compile-time constant nor an explicit infinity/NaN sentinel.
func isComputedFloat(p *Pass, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value != nil || tv.Type == nil || !isFloat(tv.Type) {
		return false
	}
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		if pkg, name := pkgLevelFunc(p.Info, call.Fun); pkg == "math" && (name == "Inf" || name == "NaN") {
			return false
		}
	}
	return true
}
