package analysis

import "testing"

func TestDetrandFlagging(t *testing.T) {
	RunGolden(t, Detrand, "detrand/a")
}

func TestDetrandClean(t *testing.T) {
	RunGolden(t, Detrand, "detrand/b")
}

// TestDetrandInterprocedural pins the fact path: the global draw is
// flagged at its source in util, and every cross-package call into the
// wrapping helpers is flagged at the call site with root provenance.
func TestDetrandInterprocedural(t *testing.T) {
	RunGoldenMulti(t, Detrand, "detrand/util", "detrand/caller")
}
