package analysis

import "testing"

func TestDetrandFlagging(t *testing.T) {
	RunGolden(t, Detrand, "detrand/a")
}

func TestDetrandClean(t *testing.T) {
	RunGolden(t, Detrand, "detrand/b")
}
