package analysis

import "testing"

func TestErrcontractFlagging(t *testing.T) {
	RunGolden(t, Errcontract, "errcontract/a")
}
