package lp

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/obs"
)

// Process-wide LP counters, bumped once per solve (not per pivot) so the
// cost is three atomic adds regardless of problem size. They cover every
// SolveWith call in the process: direct heuristic pricing, KKT relaxations,
// and branch-and-bound nodes alike.
var (
	lpSolves     = obs.Default.Counter("lp_solves_total")
	lpIters      = obs.Default.Counter("lp_iterations_total")
	lpDegenerate = obs.Default.Counter("lp_degenerate_pivots_total")
)

// Tolerances for the simplex method. They are package-level constants rather
// than options because every consumer in this repository operates on
// similarly scaled data (capacities and demands in the 1..1e4 range).
const (
	pivotTol = 1e-9 // smallest usable pivot element
	feasTol  = 1e-7 // feasibility / phase-1 residual tolerance
	optTol   = 1e-9 // reduced-cost optimality tolerance
)

// errNumerics is returned when the tableau degrades beyond repair.
var errNumerics = errors.New("lp: numerical failure in simplex")

// stdForm is the computational form: minimize c'x subject to Ax = b, x >= 0,
// with b >= 0. It also remembers how to map a standard solution back to the
// user's variables and duals.
type stdForm struct {
	m, n int // rows, structural+slack+artificial columns

	a [][]float64 // m x n
	b []float64   // m
	c []float64   // n, phase-2 costs (0 for slacks/artificials)

	nStruct int // columns 0..nStruct-1 are structural (user-derived)
	artFrom int // columns >= artFrom are artificials

	// rowUnit[i] is a column that is a (+/-)1 unit vector for row i,
	// used to read duals off the reduced-cost row; rowUnitSign is its sign.
	rowUnit     []int
	rowUnitSign []float64

	// rowFlip[i] is -1 if user row i was negated to make b >= 0, else +1.
	// Only the first len(p.cons) rows correspond to user constraints.
	rowFlip []float64

	// varMap describes how each user variable maps onto structural columns:
	// x_user = shift + sign*x[col] (+ negPart handling for free variables).
	varMap []stdVarMap

	objConst float64 // constant folded out of the objective by shifts
	negate   bool    // true when the user problem was Maximize
}

type stdVarMap struct {
	col    int     // primary structural column
	negCol int     // second column for free variables (-1 if none)
	shift  float64 // additive shift
	sign   float64 // +1 or -1 (mirrored upper-bounded variables)
}

// buildStandard converts p (with optional bound overrides) to standard form.
func buildStandard(p *Problem, override map[VarID][2]float64) (*stdForm, error) {
	s := &stdForm{negate: p.sense == Maximize}
	s.varMap = make([]stdVarMap, len(p.vars))

	bounds := func(v int) (float64, float64) {
		if override != nil {
			if b, ok := override[VarID(v)]; ok {
				return b[0], b[1]
			}
		}
		return p.vars[v].lo, p.vars[v].hi
	}

	// Assign structural columns.
	type upperRow struct {
		col int
		rhs float64
	}
	var uppers []upperRow
	ncols := 0
	for j := range p.vars {
		lo, hi := bounds(j)
		if lo > hi {
			return nil, fmt.Errorf("lp: variable %q has lo %g > hi %g", p.vars[j].name, lo, hi)
		}
		vm := stdVarMap{col: ncols, negCol: -1, sign: 1}
		switch {
		case math.IsInf(lo, -1) && math.IsInf(hi, 1):
			vm.negCol = ncols + 1
			ncols += 2
		case math.IsInf(lo, -1):
			// x = hi - x', x' >= 0.
			vm.shift = hi
			vm.sign = -1
			ncols++
		default:
			// x = lo + x', x' >= 0, optionally x' <= hi-lo.
			vm.shift = lo
			ncols++
			if !math.IsInf(hi, 1) {
				uppers = append(uppers, upperRow{col: vm.col, rhs: hi - lo})
			}
		}
		s.varMap[j] = vm
	}
	s.nStruct = ncols

	objSign := 1.0
	if s.negate {
		objSign = -1
	}

	// Dense rows over structural columns first; slacks/artificials appended.
	nUser := len(p.cons)
	m := nUser + len(uppers)
	rows := make([][]float64, m)
	rhs := make([]float64, m)
	rels := make([]Rel, m)
	for i, con := range p.cons {
		row := make([]float64, ncols)
		r := con.rhs
		for _, t := range con.expr.Terms {
			vm := s.varMap[t.Var]
			if vm.negCol >= 0 {
				row[vm.col] += t.Coef
				row[vm.negCol] -= t.Coef
				continue
			}
			row[vm.col] += t.Coef * vm.sign
			r -= t.Coef * vm.shift
		}
		rows[i], rhs[i], rels[i] = row, r, con.rel
	}
	for k, u := range uppers {
		row := make([]float64, ncols)
		row[u.col] = 1
		rows[nUser+k], rhs[nUser+k], rels[nUser+k] = row, u.rhs, LE
	}

	// Objective over structural columns.
	s.c = make([]float64, ncols)
	for j := range p.vars {
		cj := p.vars[j].obj * objSign
		if cj == 0 {
			continue
		}
		vm := s.varMap[j]
		if vm.negCol >= 0 {
			s.c[vm.col] += cj
			s.c[vm.negCol] -= cj
			continue
		}
		s.c[vm.col] += cj * vm.sign
		s.objConst += cj * vm.shift
	}

	// Normalize b >= 0, then append slack/surplus and artificial columns.
	s.rowFlip = make([]float64, m)
	s.rowUnit = make([]int, m)
	s.rowUnitSign = make([]float64, m)
	type extra struct {
		row  int
		coef float64
		art  bool
	}
	var extras []extra
	for i := 0; i < m; i++ {
		s.rowFlip[i] = 1
		if rhs[i] < 0 {
			s.rowFlip[i] = -1
			rhs[i] = -rhs[i]
			for j := range rows[i] {
				rows[i][j] = -rows[i][j]
			}
			switch rels[i] {
			case LE:
				rels[i] = GE
			case GE:
				rels[i] = LE
			}
		}
		switch rels[i] {
		case LE:
			extras = append(extras, extra{row: i, coef: 1})
		case GE:
			extras = append(extras, extra{row: i, coef: -1})
			extras = append(extras, extra{row: i, coef: 1, art: true})
		case EQ:
			extras = append(extras, extra{row: i, coef: 1, art: true})
		}
	}
	nSlack := 0
	for _, e := range extras {
		if !e.art {
			nSlack++
		}
	}
	total := ncols + len(extras)
	s.artFrom = total // adjusted below once artificial columns are placed
	// Place non-artificial slacks first, then artificials, so that
	// "column >= artFrom" identifies artificials.
	colOf := make([]int, len(extras))
	next := ncols
	for k, e := range extras {
		if !e.art {
			colOf[k] = next
			next++
		}
	}
	s.artFrom = next
	for k, e := range extras {
		if e.art {
			colOf[k] = next
			next++
		}
	}

	s.m, s.n = m, total
	s.a = make([][]float64, m)
	for i := 0; i < m; i++ {
		row := make([]float64, total)
		copy(row, rows[i])
		s.a[i] = row
	}
	s.b = rhs
	cfull := make([]float64, total)
	copy(cfull, s.c)
	s.c = cfull

	for k, e := range extras {
		col := colOf[k]
		s.a[e.row][col] = e.coef
		// Unit columns with +1 give the cleanest dual read-off; prefer the
		// artificial when present (GE rows), else the slack.
		if e.coef > 0 || s.rowUnit[e.row] == 0 && s.rowUnitSign[e.row] == 0 {
			s.rowUnit[e.row] = col
			s.rowUnitSign[e.row] = e.coef
		}
	}
	return s, nil
}

// tableau carries the mutable simplex state.
type tableau struct {
	s        *stdForm
	basis    []int     // basic column per row
	inBasis  []bool    // column -> basic?
	r        []float64 // reduced costs for the current phase
	obj      float64   // current phase objective value
	iters    int
	phase1   int // pivots spent in phase 1
	degen    int // pivots that left the phase objective unchanged
	max      int
	blocked  []bool    // columns forbidden from entering (artificials in phase 2)
	deadline time.Time // zero means none
}

// solution constructs a Solution carrying the tableau's effort counters.
func (t *tableau) solution(st Status) *Solution {
	return &Solution{
		Status:           st,
		Iterations:       t.iters,
		Phase1Iterations: t.phase1,
		DegeneratePivots: t.degen,
	}
}

// SolveWith solves the problem with the given options, records the solve
// in the process-wide metrics registry, and — when opts.Tracer is set —
// brackets it with LP solve events.
func (p *Problem) SolveWith(opts SolveOptions) (*Solution, error) {
	opts.Tracer.Emit(obs.Event{Kind: obs.KindLPSolveStart, Detail: p.Name})
	sol, err := p.solveWith(opts)
	if sol != nil {
		lpSolves.Inc()
		lpIters.Add(int64(sol.Iterations))
		lpDegenerate.Add(int64(sol.DegeneratePivots))
		opts.Tracer.Emit(obs.Event{Kind: obs.KindLPSolveEnd, Iters: sol.Iterations,
			Degenerate: sol.DegeneratePivots, Status: sol.Status.String()})
	} else {
		opts.Tracer.Emit(obs.Event{Kind: obs.KindLPSolveEnd, Status: "error"})
	}
	return sol, err
}

func (p *Problem) solveWith(opts SolveOptions) (*Solution, error) {
	s, err := buildStandard(p, opts.BoundOverride)
	if err != nil {
		return nil, err
	}
	t := &tableau{s: s, deadline: opts.Deadline}
	t.max = opts.MaxIters
	if t.max <= 0 {
		t.max = 2000 + 60*(s.m+s.n)
	}
	t.basis = make([]int, s.m)
	t.inBasis = make([]bool, s.n)
	t.blocked = make([]bool, s.n)

	// Initial basis: for each row pick its +1 unit column (slack for LE,
	// artificial for GE/EQ).
	// Initial basis. Each slack/artificial column touches exactly one row
	// by construction, so a +1 entry in row i identifies row i's own column.
	// Prefer a slack (+1); otherwise try a crash pivot on a singleton
	// structural column (KKT rewrites produce one explicit slack variable
	// per inner row, which lands here and avoids an artificial); only then
	// fall back to the artificial.
	needCrash := false
	for i := 0; i < s.m; i++ {
		t.basis[i] = -1
		for j := s.nStruct; j < s.artFrom; j++ {
			if s.a[i][j] == 1 && !t.inBasis[j] {
				t.basis[i] = j
				t.inBasis[j] = true
				break
			}
		}
		if t.basis[i] == -1 {
			needCrash = true
		}
	}
	if needCrash {
		// Count structural nonzeros per column to find singletons.
		rowOf := make([]int, s.nStruct)
		count := make([]int, s.nStruct)
		for i := 0; i < s.m; i++ {
			row := s.a[i]
			for j := 0; j < s.nStruct; j++ {
				if row[j] != 0 {
					count[j]++
					rowOf[j] = i
				}
			}
		}
		for j := 0; j < s.nStruct; j++ {
			i := rowOf[j]
			if count[j] != 1 || t.basis[i] != -1 || s.a[i][j] <= pivotTol {
				continue
			}
			// The column is zero outside row i, so this pivot only rescales
			// row i: O(n) rather than O(m*n).
			t.pivot2(i, j)
			t.basis[i] = j
			t.inBasis[j] = true
		}
	}
	hasArt := false
	for i := 0; i < s.m; i++ {
		if t.basis[i] != -1 {
			continue
		}
		col := -1
		for j := s.artFrom; j < s.n; j++ {
			if s.a[i][j] == 1 && !t.inBasis[j] {
				col = j
				break
			}
		}
		if col == -1 {
			return nil, errNumerics
		}
		hasArt = true
		t.basis[i] = col
		t.inBasis[col] = true
	}

	// Phase 1: minimize the sum of artificial variables.
	if hasArt {
		phase1 := make([]float64, s.n)
		for j := s.artFrom; j < s.n; j++ {
			phase1[j] = 1
		}
		t.resetCosts(phase1)
		st := t.run()
		t.phase1 = t.iters
		if st == StatusIterLimit {
			return t.solution(StatusIterLimit), nil
		}
		if st != StatusOptimal || t.obj > feasTol {
			return t.solution(StatusInfeasible), nil
		}
		// Drive remaining artificials out of the basis where possible.
		for i := 0; i < s.m; i++ {
			if t.basis[i] < s.artFrom {
				continue
			}
			pivoted := false
			for j := 0; j < s.artFrom; j++ {
				if !t.inBasis[j] && math.Abs(s.a[i][j]) > pivotTol {
					t.pivot(i, j)
					pivoted = true
					break
				}
			}
			_ = pivoted // a fully zero row is redundant; its artificial stays at 0
		}
	}
	// Artificial columns must never enter again — even when phase 1 was
	// skipped entirely (crash basis), they exist in the tableau with zero
	// cost and would otherwise re-enter and fake feasibility.
	for j := s.artFrom; j < s.n; j++ {
		t.blocked[j] = true
	}

	// Phase 2: the real objective.
	t.resetCosts(s.c)
	st := t.run()

	sol := t.solution(st)
	if st == StatusUnbounded {
		return sol, nil
	}
	if st == StatusIterLimit {
		return sol, nil
	}

	// Recover the standard-form primal point.
	xs := make([]float64, s.n)
	for i, col := range t.basis {
		xs[col] = s.b[i]
	}
	// Map back to user variables.
	sol.X = make([]float64, len(p.vars))
	for j := range p.vars {
		vm := s.varMap[j]
		v := vm.shift + vm.sign*xs[vm.col]
		if vm.negCol >= 0 {
			v = xs[vm.col] - xs[vm.negCol]
		}
		sol.X[j] = v
	}
	objStd := t.obj + s.objConst
	if s.negate {
		sol.Objective = -objStd
	} else {
		sol.Objective = objStd
	}

	// Duals: y_i = -(reduced cost of row i's +1 unit column) in the
	// standardized min problem; map through row flips and problem sense.
	sol.Dual = make([]float64, len(p.cons))
	for i := range p.cons {
		col := s.rowUnit[i]
		y := -t.r[col] / s.rowUnitSign[i]
		y *= s.rowFlip[i]
		if s.negate {
			y = -y
		}
		sol.Dual[i] = y
	}
	return sol, nil
}

// resetCosts installs a cost vector and recomputes reduced costs and the
// objective for the current basis.
func (t *tableau) resetCosts(c []float64) {
	s := t.s
	t.r = make([]float64, s.n)
	copy(t.r, c)
	t.obj = 0
	for i, col := range t.basis {
		cb := c[col]
		if cb == 0 {
			continue
		}
		t.obj += cb * s.b[i]
		row := s.a[i]
		for j := 0; j < s.n; j++ {
			t.r[j] -= cb * row[j]
		}
	}
	// Basic columns have exactly zero reduced cost by definition.
	for _, col := range t.basis {
		t.r[col] = 0
	}
}

// pivot2 normalizes row pr so that column pc becomes 1. Valid only when
// column pc is zero outside row pr (crash pivots on singleton columns), so
// no other row or the cost row needs updating.
func (t *tableau) pivot2(pr, pc int) {
	s := t.s
	prow := s.a[pr]
	piv := prow[pc]
	if piv == 1 {
		return
	}
	inv := 1 / piv
	for j := 0; j < s.n; j++ {
		prow[j] *= inv
	}
	prow[pc] = 1
	s.b[pr] *= inv
}

// run iterates pivots until optimality, unboundedness, or the iteration cap.
func (t *tableau) run() Status {
	s := t.s
	stall := 0
	for {
		if t.iters >= t.max {
			return StatusIterLimit
		}
		if !t.deadline.IsZero() && t.iters%128 == 0 && time.Now().After(t.deadline) {
			return StatusIterLimit
		}
		bland := stall > 2*(s.m+8)
		pc := t.price(bland)
		if pc == -1 {
			return StatusOptimal
		}
		pr := t.ratio(pc)
		if pr == -1 {
			return StatusUnbounded
		}
		before := t.obj
		t.pivot(pr, pc)
		t.iters++
		if t.obj < before-optTol {
			stall = 0
		} else {
			stall++
			t.degen++
		}
	}
}

// price selects the entering column, or -1 at optimality.
func (t *tableau) price(bland bool) int {
	best, bestVal := -1, -optTol
	for j := 0; j < t.s.n; j++ {
		if t.inBasis[j] || t.blocked[j] {
			continue
		}
		if r := t.r[j]; r < bestVal {
			if bland {
				return j
			}
			best, bestVal = j, r
		}
	}
	return best
}

// ratio selects the leaving row for entering column pc, or -1 if unbounded.
// Ties prefer rows whose basic variable is artificial (driving them out),
// then the smallest basic column index (Bland-compatible).
func (t *tableau) ratio(pc int) int {
	s := t.s
	best := -1
	bestRatio := math.Inf(1)
	for i := 0; i < s.m; i++ {
		aij := s.a[i][pc]
		if aij <= pivotTol {
			continue
		}
		ratio := s.b[i] / aij
		switch {
		case ratio < bestRatio-feasTol:
			best, bestRatio = i, ratio
		case ratio <= bestRatio+feasTol:
			// Tie-break.
			bi, bb := t.basis[i], t.basis[best]
			iArt, bArt := bi >= s.artFrom, bb >= s.artFrom
			if iArt && !bArt || (iArt == bArt && bi < bb) {
				best, bestRatio = i, math.Min(bestRatio, ratio)
			}
		}
	}
	return best
}

// pivot performs a pivot on (pr, pc), updating rows, rhs, reduced costs,
// objective, and the basis.
func (t *tableau) pivot(pr, pc int) {
	s := t.s
	prow := s.a[pr]
	piv := prow[pc]
	inv := 1 / piv
	for j := 0; j < s.n; j++ {
		prow[j] *= inv
	}
	prow[pc] = 1
	s.b[pr] *= inv
	if s.b[pr] < 0 && s.b[pr] > -feasTol {
		s.b[pr] = 0
	}
	for i := 0; i < s.m; i++ {
		if i == pr {
			continue
		}
		f := s.a[i][pc]
		if f == 0 {
			continue
		}
		row := s.a[i]
		for j := 0; j < s.n; j++ {
			row[j] -= f * prow[j]
		}
		row[pc] = 0
		s.b[i] -= f * s.b[pr]
		if s.b[i] < 0 && s.b[i] > -feasTol {
			s.b[i] = 0
		}
	}
	if f := t.r[pc]; f != 0 {
		for j := 0; j < s.n; j++ {
			t.r[j] -= f * prow[j]
		}
		t.r[pc] = 0
		// The entering variable takes value b[pr] (already rescaled); the
		// objective moves by its pre-pivot reduced cost times that value.
		t.obj += f * s.b[pr]
	}
	t.inBasis[t.basis[pr]] = false
	t.basis[pr] = pc
	t.inBasis[pc] = true
}
