package lp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/obs"
)

// Process-wide LP counters, bumped once per solve (not per pivot) so the
// cost is three atomic adds regardless of problem size. They cover every
// SolveWith call in the process: direct heuristic pricing, KKT relaxations,
// and branch-and-bound nodes alike.
var (
	lpSolves     = obs.Default.Counter("lp_solves_total")
	lpIters      = obs.Default.Counter("lp_iterations_total")
	lpDegenerate = obs.Default.Counter("lp_degenerate_pivots_total")
	// Warm-start accounting: lp_warm_solves_total counts solves completed by
	// the basis-reinstall + dual-repair path, lp_warm_fallbacks_total counts
	// solves where a warm start was requested but the cold two-phase method
	// produced the answer (structure mismatch, singular basis, or a repair
	// that did not converge). lp_solves_total covers both kinds.
	lpWarmSolves    = obs.Default.Counter("lp_warm_solves_total")
	lpWarmFallbacks = obs.Default.Counter("lp_warm_fallbacks_total")
	// Engine accounting: lp_sparse_solves_total counts solves answered by
	// the sparse revised simplex, lp_sparse_fallbacks_total counts solves
	// where the sparse engine hit an unrecoverable numerical failure and
	// the dense tableau produced the answer instead. lp_solves_total covers
	// every engine.
	lpSparseSolves    = obs.Default.Counter("lp_sparse_solves_total")
	lpSparseFallbacks = obs.Default.Counter("lp_sparse_fallbacks_total")
)

// Per-phase attribution: where simplex time and pivots go, not just how
// much. The histograms record one observation per phase execution (seconds);
// the counters split total pivots into phase-1 (feasibility), phase-2
// (optimality + tie-break), warm repair (dual + cleanup + tie-break), and
// blocked-column eviction. All of it is observability output only — nothing
// here feeds back into a solve — which is what the gapvet:allow walltime
// annotations at the measurement sites assert.
var (
	lpPhase1Seconds     = obs.Default.Histogram("lp_phase1_seconds")
	lpPhase2Seconds     = obs.Default.Histogram("lp_phase2_seconds")
	lpWarmRepairSeconds = obs.Default.Histogram("lp_warm_repair_seconds")

	lpPhase1Pivots     = obs.Default.Counter("lp_phase1_pivots_total")
	lpPhase2Pivots     = obs.Default.Counter("lp_phase2_pivots_total")
	lpWarmRepairPivots = obs.Default.Counter("lp_warm_repair_pivots_total")
	lpWarmEvictPivots  = obs.Default.Counter("lp_warm_evict_pivots_total")
)

// Tolerances for the simplex method. They are package-level constants rather
// than options because every consumer in this repository operates on
// similarly scaled data (capacities and demands in the 1..1e4 range).
const (
	pivotTol = 1e-9 // smallest usable pivot element
	feasTol  = 1e-7 // feasibility / phase-1 residual tolerance
	optTol   = 1e-9 // reduced-cost optimality tolerance

	// tieTol is the selection-stability window shared by every pivot-choice
	// rule (pricing, dual leaving row, dual ratio test): a candidate only
	// displaces the incumbent when it wins by more than this margin, so the
	// ascending scan order breaks near-ties by index. Without the window a
	// tie split by accumulated roundoff (~1e-15) would send the dense and
	// sparse engines — whose arithmetics round differently — down different
	// pivot paths on degenerate problems; with it, both engines make
	// identical choices whenever their computed quantities agree to well
	// under the window, which is what the pivot-for-pivot differential
	// gates rely on.
	tieTol = 1e-7
)

// errNumerics is returned when the tableau degrades beyond repair.
var errNumerics = errors.New("lp: numerical failure in simplex")

// statusWarmAbort is an internal sentinel: the warm-start path gave up and
// the cold two-phase solve must produce the canonical answer. Never escapes
// this package.
const statusWarmAbort Status = -1

// warmDualTol bounds how negative a reduced cost may be after reinstalling
// a parent basis before the snapshot is declared unusable. The parent basis
// is dual feasible for the child in exact arithmetic (A and c are shared),
// so anything beyond refactorization noise means the basis does not fit.
const warmDualTol = 1e-7

// Basis is an opaque snapshot of a terminal simplex basis: the set of basic
// columns of the standard form, plus a signature of that form's shape so a
// later solve can tell whether the snapshot is transplantable. Create one
// with SolveOptions.CaptureBasis; consume it with SolveOptions.WarmStart.
// A Basis is immutable after creation and safe to share across goroutines
// (branch-and-bound hands one parent snapshot to both children).
type Basis struct {
	cols   []int32 // basic columns, ascending
	sig    uint64  // structure signature of the originating stdForm
	engine Engine  // engine that captured the snapshot (provenance only)
}

// NumBasic reports how many basic columns the snapshot holds (the row count
// of the standard form it was taken from).
func (b *Basis) NumBasic() int { return len(b.cols) }

// Engine reports which engine captured the snapshot. Both engines share one
// standard-form column layout, so a basis reinstalls into either engine
// regardless of provenance; the tag exists for diagnostics and the
// versioned wire codec (basisio). EngineAuto means unknown (a legacy blob).
func (b *Basis) Engine() Engine { return b.engine }

func newBasis(basis []int, sig uint64, eng Engine) *Basis {
	cols := make([]int32, len(basis))
	for i, c := range basis {
		cols[i] = int32(c)
	}
	sort.Slice(cols, func(i, j int) bool { return cols[i] < cols[j] })
	return &Basis{cols: cols, sig: sig, engine: eng}
}

// stdForm is the computational form: minimize c'x subject to Ax = b, x >= 0,
// with b >= 0. It also remembers how to map a standard solution back to the
// user's variables and duals.
type stdForm struct {
	m, n int // rows, structural+slack+artificial columns

	a [][]float64 // m x n
	b []float64   // m
	c []float64   // n, phase-2 costs (0 for slacks/artificials)

	nStruct int // columns 0..nStruct-1 are structural (user-derived)
	artFrom int // columns >= artFrom are artificials

	// rowUnit[i] is a column that is a (+/-)1 unit vector for row i,
	// used to read duals off the reduced-cost row; rowUnitSign is its sign.
	rowUnit     []int
	rowUnitSign []float64

	// rowFlip[i] is -1 if user row i was negated to make b >= 0, else +1.
	// Only the first len(p.cons) rows correspond to user constraints.
	rowFlip []float64

	// varMap describes how each user variable maps onto structural columns:
	// x_user = shift + sign*x[col] (+ negPart handling for free variables).
	varMap []stdVarMap

	// fixed lists structural columns pinned at zero by a bound override that
	// fixes a variable whose base problem is unbounded above. Pinning via
	// column blocking (instead of an upper row) keeps the standard form's
	// shape independent of such overrides, which is what makes a parent
	// basis transplantable onto a child that fixes one more variable.
	fixed []int

	// sig is a hash of everything that determines the standard form's shape
	// (row/column counts and the column layout), deliberately excluding the
	// fixed set and all numeric values. Two forms with equal sig from the
	// same Problem have identical column meanings, so a basis from one is
	// well-defined in the other.
	sig uint64

	objConst float64 // constant folded out of the objective by shifts
	negate   bool    // true when the user problem was Maximize
}

type stdVarMap struct {
	col    int     // primary structural column
	negCol int     // second column for free variables (-1 if none)
	shift  float64 // additive shift
	sign   float64 // +1 or -1 (mirrored upper-bounded variables)
}

// buildStandard converts p (with optional bound overrides) to standard form.
func buildStandard(p *Problem, override map[VarID][2]float64) (*stdForm, error) {
	s := &stdForm{negate: p.sense == Maximize}
	s.varMap = make([]stdVarMap, len(p.vars))

	bounds := func(v int) (float64, float64) {
		if override != nil {
			if b, ok := override[VarID(v)]; ok {
				return b[0], b[1]
			}
		}
		return p.vars[v].lo, p.vars[v].hi
	}

	// Assign structural columns.
	type upperRow struct {
		col int
		rhs float64
	}
	var uppers []upperRow
	ncols := 0
	for j := range p.vars {
		lo, hi := bounds(j)
		if lo > hi {
			return nil, fmt.Errorf("lp: variable %q has lo %g > hi %g", p.vars[j].name, lo, hi)
		}
		vm := stdVarMap{col: ncols, negCol: -1, sign: 1}
		switch {
		case math.IsInf(lo, -1) && math.IsInf(hi, 1):
			vm.negCol = ncols + 1
			ncols += 2
		case math.IsInf(lo, -1):
			// x = hi - x', x' >= 0.
			vm.shift = hi
			vm.sign = -1
			ncols++
		default:
			// x = lo + x', x' >= 0, optionally x' <= hi-lo.
			vm.shift = lo
			ncols++
			switch {
			//gapvet:allow floateq branch-and-bound fixings store identical endpoints, so equality is exact
			case lo == hi && math.IsInf(p.vars[j].hi, 1) && !math.IsInf(p.vars[j].lo, -1):
				// Fixed by an override while the base problem is unbounded
				// above: pin the column at zero (it may never enter the
				// basis) instead of adding an upper row with zero rhs. The
				// standard form then keeps the base problem's shape — the
				// warm-start transplant depends on that.
				s.fixed = append(s.fixed, vm.col)
			case !math.IsInf(hi, 1):
				uppers = append(uppers, upperRow{col: vm.col, rhs: hi - lo})
			}
		}
		s.varMap[j] = vm
	}
	s.nStruct = ncols

	objSign := 1.0
	if s.negate {
		objSign = -1
	}

	// Dense rows over structural columns first; slacks/artificials appended.
	nUser := len(p.cons)
	m := nUser + len(uppers)
	rows := make([][]float64, m)
	rhs := make([]float64, m)
	rels := make([]Rel, m)
	for i, con := range p.cons {
		row := make([]float64, ncols)
		r := con.rhs
		for _, t := range con.expr.Terms {
			vm := s.varMap[t.Var]
			if vm.negCol >= 0 {
				row[vm.col] += t.Coef
				row[vm.negCol] -= t.Coef
				continue
			}
			row[vm.col] += t.Coef * vm.sign
			r -= t.Coef * vm.shift
		}
		rows[i], rhs[i], rels[i] = row, r, con.rel
	}
	for k, u := range uppers {
		row := make([]float64, ncols)
		row[u.col] = 1
		rows[nUser+k], rhs[nUser+k], rels[nUser+k] = row, u.rhs, LE
	}

	// Objective over structural columns.
	s.c = make([]float64, ncols)
	for j := range p.vars {
		cj := p.vars[j].obj * objSign
		if cj == 0 {
			continue
		}
		vm := s.varMap[j]
		if vm.negCol >= 0 {
			s.c[vm.col] += cj
			s.c[vm.negCol] -= cj
			continue
		}
		s.c[vm.col] += cj * vm.sign
		s.objConst += cj * vm.shift
	}

	// Normalize b >= 0, then append slack/surplus and artificial columns.
	s.rowFlip = make([]float64, m)
	s.rowUnit = make([]int, m)
	for i := range s.rowUnit {
		s.rowUnit[i] = -1 // -1 = no unit column yet; 0 is a real column index
	}
	s.rowUnitSign = make([]float64, m)
	type extra struct {
		row  int
		coef float64
		art  bool
	}
	var extras []extra
	for i := 0; i < m; i++ {
		s.rowFlip[i] = 1
		if rhs[i] < 0 {
			s.rowFlip[i] = -1
			rhs[i] = -rhs[i]
			for j := range rows[i] {
				rows[i][j] = -rows[i][j]
			}
			switch rels[i] {
			case LE:
				rels[i] = GE
			case GE:
				rels[i] = LE
			}
		}
		switch rels[i] {
		case LE:
			extras = append(extras, extra{row: i, coef: 1})
		case GE:
			extras = append(extras, extra{row: i, coef: -1})
			extras = append(extras, extra{row: i, coef: 1, art: true})
		case EQ:
			extras = append(extras, extra{row: i, coef: 1, art: true})
		}
	}
	nSlack := 0
	for _, e := range extras {
		if !e.art {
			nSlack++
		}
	}
	total := ncols + len(extras)
	s.artFrom = total // adjusted below once artificial columns are placed
	// Place non-artificial slacks first, then artificials, so that
	// "column >= artFrom" identifies artificials.
	colOf := make([]int, len(extras))
	next := ncols
	for k, e := range extras {
		if !e.art {
			colOf[k] = next
			next++
		}
	}
	s.artFrom = next
	for k, e := range extras {
		if e.art {
			colOf[k] = next
			next++
		}
	}

	s.m, s.n = m, total
	s.a = make([][]float64, m)
	for i := 0; i < m; i++ {
		row := make([]float64, total)
		copy(row, rows[i])
		s.a[i] = row
	}
	s.b = rhs
	cfull := make([]float64, total)
	copy(cfull, s.c)
	s.c = cfull

	for k, e := range extras {
		col := colOf[k]
		s.a[e.row][col] = e.coef
		// Unit columns with +1 give the cleanest dual read-off; prefer the
		// artificial when present (GE rows), else the slack.
		if e.coef > 0 || s.rowUnit[e.row] == -1 {
			s.rowUnit[e.row] = col
			s.rowUnitSign[e.row] = e.coef
		}
	}

	// Structure signature: everything that fixes the shape and column layout
	// of the standard form (never numeric values, never the fixed set — a
	// child that pins one more column must still match its parent). FNV-1a
	// over the layout-determining integers.
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	mix := func(v uint64) {
		h ^= v
		h *= fnvPrime
	}
	mix(uint64(s.m))
	mix(uint64(s.n))
	mix(uint64(s.nStruct))
	mix(uint64(s.artFrom))
	mix(uint64(nUser))
	for _, vm := range s.varMap {
		mix(uint64(vm.col))
		mix(uint64(int64(vm.negCol)))
		mix(math.Float64bits(vm.sign))
	}
	for _, u := range uppers {
		mix(uint64(u.col))
	}
	for i := 0; i < m; i++ {
		mix(math.Float64bits(s.rowFlip[i]))
	}
	s.sig = h
	return s, nil
}

// tableau carries the mutable simplex state.
type tableau struct {
	s        *stdForm
	basis    []int     // basic column per row
	inBasis  []bool    // column -> basic?
	r        []float64 // reduced costs for the current phase
	obj      float64   // current phase objective value
	iters    int
	phase1   int // pivots spent in phase 1
	degen    int // pivots that left the phase objective unchanged
	max      int
	blocked  []bool          // columns forbidden from entering (artificials in phase 2)
	deadline time.Time       // zero means none
	ctx      context.Context // nil means uncancellable
}

// interrupted polls the solve's context on the same iteration cadence as the
// deadline check. Cooperative: the current pivot always completes first.
func (t *tableau) interrupted() bool {
	return t.ctx != nil && t.iters%128 == 0 && t.ctx.Err() != nil
}

// solution constructs a Solution carrying the tableau's effort counters.
func (t *tableau) solution(st Status) *Solution {
	return &Solution{
		Status:           st,
		Iterations:       t.iters,
		Phase1Iterations: t.phase1,
		DegeneratePivots: t.degen,
	}
}

// SolveWith solves the problem with the given options, records the solve
// in the process-wide metrics registry, and — when opts.Tracer is set —
// brackets it with LP solve events.
func (p *Problem) SolveWith(opts SolveOptions) (*Solution, error) {
	opts.Tracer.Emit(obs.Event{Kind: obs.KindLPSolveStart, Detail: p.Name})
	sol, err := p.solveWith(opts)
	if sol != nil {
		lpSolves.Inc()
		lpIters.Add(int64(sol.Iterations))
		lpDegenerate.Add(int64(sol.DegeneratePivots))
		mode := ""
		switch {
		case sol.Warm:
			lpWarmSolves.Inc()
			mode = "warm"
		case sol.WarmFallback:
			lpWarmFallbacks.Inc()
			mode = "warm-fallback"
		}
		opts.Tracer.Emit(obs.Event{Kind: obs.KindLPSolveEnd, Iters: sol.Iterations,
			Degenerate: sol.DegeneratePivots, Status: sol.Status.String(), Detail: mode})
	} else {
		opts.Tracer.Emit(obs.Event{Kind: obs.KindLPSolveEnd, Status: "error"})
	}
	return sol, err
}

// solveWith resolves the engine and presolve knobs and dispatches. The
// dense tableau is the reference: the sparse engine either reproduces its
// observable answer or (on an unrecoverable numerical failure) hands the
// solve to it outright, so callers never see an engine-dependent result.
func (p *Problem) solveWith(opts SolveOptions) (*Solution, error) {
	eng := opts.Engine.resolve()
	if opts.Presolve && opts.WarmStart == nil {
		return p.solvePresolved(opts, eng)
	}
	if eng == EngineSparse {
		sol, err := p.solveSparse(opts)
		if err == nil && sol != nil {
			lpSparseSolves.Inc()
			sol.EngineUsed = EngineSparse
			return sol, nil
		}
		if err != nil && !errors.Is(err, errNumerics) {
			return nil, err
		}
		lpSparseFallbacks.Inc()
		sol, err = p.solveDense(opts)
		if sol != nil {
			sol.EngineUsed = EngineDense
			sol.SparseFallback = true
		}
		return sol, err
	}
	sol, err := p.solveDense(opts)
	if sol != nil {
		sol.EngineUsed = EngineDense
	}
	return sol, err
}

// solveDense is the dense tableau path: build the standard form, try the
// warm transplant when a compatible snapshot is offered, and fall back to
// the canonical cold two-phase method.
func (p *Problem) solveDense(opts SolveOptions) (*Solution, error) {
	s, err := buildStandard(p, opts.BoundOverride)
	if err != nil {
		return nil, err
	}
	if ws := opts.WarmStart; ws != nil {
		if ws.sig == s.sig && len(ws.cols) == s.m {
			if sol := p.solveWarm(s, opts); sol != nil {
				return sol, nil
			}
			// The warm attempt pivots the standard form in place; rebuild it
			// so the cold solve starts from pristine data and produces exactly
			// the answer it would have produced with no warm start at all.
			if s, err = buildStandard(p, opts.BoundOverride); err != nil {
				return nil, err
			}
		}
		sol, err := p.solveCold(s, opts)
		if sol != nil {
			sol.WarmFallback = true
		}
		return sol, err
	}
	return p.solveCold(s, opts)
}

// newTableau prepares the mutable solver state for a standard form: iteration
// budget, deadline, and the blocked set (columns pinned by fixing overrides
// may never enter a basis).
func newTableau(s *stdForm, opts SolveOptions) *tableau {
	t := &tableau{s: s, deadline: opts.Deadline, ctx: opts.Ctx}
	t.max = opts.MaxIters
	if t.max <= 0 {
		t.max = 2000 + 60*(s.m+s.n)
	}
	t.basis = make([]int, s.m)
	t.inBasis = make([]bool, s.n)
	t.blocked = make([]bool, s.n)
	for _, j := range s.fixed {
		t.blocked[j] = true
	}
	return t
}

// solveCold runs the canonical two-phase primal simplex on s. Every result a
// caller can observe — status, point, duals, explored-tree decisions made on
// top of them — is defined by this path; the warm path must either reproduce
// it or fall back to it.
func (p *Problem) solveCold(s *stdForm, opts SolveOptions) (*Solution, error) {
	t := newTableau(s, opts)

	// Initial basis: for each row pick its +1 unit column (slack for LE,
	// artificial for GE/EQ).
	// Initial basis. Each slack/artificial column touches exactly one row
	// by construction, so a +1 entry in row i identifies row i's own column.
	// Prefer a slack (+1); otherwise try a crash pivot on a singleton
	// structural column (KKT rewrites produce one explicit slack variable
	// per inner row, which lands here and avoids an artificial); only then
	// fall back to the artificial.
	needCrash := false
	for i := 0; i < s.m; i++ {
		t.basis[i] = -1
		for j := s.nStruct; j < s.artFrom; j++ {
			if s.a[i][j] == 1 && !t.inBasis[j] {
				t.basis[i] = j
				t.inBasis[j] = true
				break
			}
		}
		if t.basis[i] == -1 {
			needCrash = true
		}
	}
	if needCrash {
		// Count structural nonzeros per column to find singletons.
		rowOf := make([]int, s.nStruct)
		count := make([]int, s.nStruct)
		for i := 0; i < s.m; i++ {
			row := s.a[i]
			for j := 0; j < s.nStruct; j++ {
				if row[j] != 0 {
					count[j]++
					rowOf[j] = i
				}
			}
		}
		for j := 0; j < s.nStruct; j++ {
			i := rowOf[j]
			if count[j] != 1 || t.basis[i] != -1 || s.a[i][j] <= pivotTol || t.blocked[j] {
				continue
			}
			// The column is zero outside row i, so this pivot only rescales
			// row i: O(n) rather than O(m*n).
			t.pivot2(i, j)
			t.basis[i] = j
			t.inBasis[j] = true
		}
	}
	hasArt := false
	for i := 0; i < s.m; i++ {
		if t.basis[i] != -1 {
			continue
		}
		col := -1
		for j := s.artFrom; j < s.n; j++ {
			if s.a[i][j] == 1 && !t.inBasis[j] {
				col = j
				break
			}
		}
		if col == -1 {
			return nil, errNumerics
		}
		hasArt = true
		t.basis[i] = col
		t.inBasis[col] = true
	}

	// Phase 1: minimize the sum of artificial variables.
	if hasArt {
		phase1 := make([]float64, s.n)
		for j := s.artFrom; j < s.n; j++ {
			phase1[j] = 1
		}
		t.resetCosts(phase1)
		p1Start := time.Now() //gapvet:allow walltime phase-1 time attribution; observed into an obs histogram, never read by the solve
		st := t.run()
		t.phase1 = t.iters
		lpPhase1Seconds.ObserveDuration(time.Since(p1Start)) //gapvet:allow walltime phase-1 time attribution; observed into an obs histogram, never read by the solve
		lpPhase1Pivots.Add(int64(t.phase1))
		if st == StatusIterLimit || st == StatusDeadline || st == StatusInterrupted {
			return t.solution(st), nil
		}
		if st != StatusOptimal || t.obj > feasTol {
			return t.solution(StatusInfeasible), nil
		}
		// Drive remaining artificials out of the basis where possible.
		for i := 0; i < s.m; i++ {
			if t.basis[i] < s.artFrom {
				continue
			}
			pivoted := false
			for j := 0; j < s.artFrom; j++ {
				if !t.inBasis[j] && !t.blocked[j] && math.Abs(s.a[i][j]) > pivotTol {
					t.pivot(i, j)
					pivoted = true
					break
				}
			}
			_ = pivoted // a fully zero row is redundant; its artificial stays at 0
		}
	}
	// Artificial columns must never enter again — even when phase 1 was
	// skipped entirely (crash basis), they exist in the tableau with zero
	// cost and would otherwise re-enter and fake feasibility.
	for j := s.artFrom; j < s.n; j++ {
		t.blocked[j] = true
	}

	// Phase 2: the real objective, then the canonical-vertex tie-break.
	t.resetCosts(s.c)
	p2Start := time.Now() //gapvet:allow walltime phase-2 time attribution; observed into an obs histogram, never read by the solve
	st := t.run()
	if st == StatusOptimal {
		st = t.tiebreak()
	}
	lpPhase2Seconds.ObserveDuration(time.Since(p2Start)) //gapvet:allow walltime phase-2 time attribution; observed into an obs histogram, never read by the solve
	lpPhase2Pivots.Add(int64(t.iters - t.phase1))
	return finishSolution(p, t, st, opts), nil
}

// termState is the engine-neutral snapshot of a terminal simplex state:
// everything finishTerm needs to turn "the pivots stopped" into a Solution.
// The dense tableau produces one via tableau.term (bval aliases the pivoted
// right-hand side); the sparse engine assembles one from its factorized
// basis (bval is the basic-value vector xB, r the maintained reduced costs).
type termState struct {
	s      *stdForm
	basis  []int     // basic column per row
	bval   []float64 // current value of each row's basic variable
	r      []float64 // phase-2 reduced costs of the terminal basis
	obj    float64   // phase-2 objective of the terminal basis
	iters  int
	phase1 int
	degen  int
}

func (t *tableau) term() termState {
	return termState{s: t.s, basis: t.basis, bval: t.s.b, r: t.r, obj: t.obj,
		iters: t.iters, phase1: t.phase1, degen: t.degen}
}

// finishSolution turns a terminal dense tableau into a Solution.
func finishSolution(p *Problem, t *tableau, st Status, opts SolveOptions) *Solution {
	return finishTerm(p, t.term(), st, opts, EngineDense)
}

// finishTerm turns a terminal simplex state into a Solution: effort counters
// always; primal point, objective, duals and (optionally) the basis snapshot
// only when the status is optimal, per the Solution contract.
//
// Primal extraction is canonical: the tie-break phase (tableau.tiebreak) has
// already driven the tableau to the unique secondary-weight-minimal vertex of
// the optimal face, and the point and objective are then recomputed by
// refactorizing the pristine standard form onto a deterministic completion of
// that vertex's support. X and Objective are therefore a pure function of
// (problem data, overrides) — never of the pivot history — which is what lets
// branch and bound promise an identical explored tree with warm starting on
// or off. Duals and the captured basis intentionally come from the terminal
// state instead: its basis is dual feasible (a valid certificate and a
// transplantable warm start), at the price of being path-dependent in the
// last bits. Nothing that steers the search consumes them.
//
// Both engines funnel through this one function, so the answer-defining
// extraction — support selection, canonical refactorization, variable
// mapping — is literally shared code: when the two pivot paths stop on the
// same vertex (the tiebreak phase drives both to the weight-minimal vertex
// of the optimal face), the reported X and Objective are identical floats.
func finishTerm(p *Problem, term termState, st Status, opts SolveOptions, eng Engine) *Solution {
	sol := &Solution{
		Status:           st,
		Iterations:       term.iters,
		Phase1Iterations: term.phase1,
		DegeneratePivots: term.degen,
	}
	if st != StatusOptimal {
		return sol
	}
	s := term.s

	// Duals from the terminal state: y_i = -(reduced cost of row i's +1
	// unit column) in the standardized min problem; map through row flips and
	// problem sense.
	sol.Dual = make([]float64, len(p.cons))
	for i := range p.cons {
		col := s.rowUnit[i]
		if col < 0 {
			// No unit column for this row. Unreachable with the current
			// builder (every row receives a slack or an artificial), but a
			// zero dual is the safe read-off if that ever changes.
			continue
		}
		y := -term.r[col] / s.rowUnitSign[i]
		y *= s.rowFlip[i]
		if s.negate {
			y = -y
		}
		sol.Dual[i] = y
	}
	if opts.CaptureBasis {
		sol.Basis = newBasis(term.basis, s.sig, eng)
	}

	// Support of the terminal vertex: the basic columns carrying genuinely
	// positive values. Degenerate basic columns (value ~0) are excluded so
	// the canonical completion below does not depend on which of a vertex's
	// many bases the pivot path happened to stop at.
	var support []int
	for i, col := range term.basis {
		if term.bval[i] > feasTol {
			support = append(support, col)
		}
	}
	sort.Ints(support)
	basis, bval, obj := term.basis, term.bval, term.obj
	if s2, err := buildStandard(p, opts.BoundOverride); err == nil {
		t2 := newTableau(s2, opts)
		for j := s2.artFrom; j < s2.n; j++ {
			t2.blocked[j] = true
		}
		if t2.installCanonical(support) {
			t2.resetCosts(s2.c)
			// Refactorization dust: basic values that came out a hair negative
			// are exactly zero at the vertex the search terminated on.
			for i := range s2.b {
				if s2.b[i] < 0 && s2.b[i] > -feasTol {
					s2.b[i] = 0
				}
			}
			basis, bval, obj, s = t2.basis, s2.b, t2.obj, s2
		}
		// On a (numerically) singular refactorization fall back to the
		// terminal state itself — still correct, merely not canonical.
	}

	// Recover the standard-form primal point.
	xs := make([]float64, s.n)
	for i, col := range basis {
		xs[col] = bval[i]
	}
	// Map back to user variables.
	sol.X = make([]float64, len(p.vars))
	for j := range p.vars {
		vm := s.varMap[j]
		v := vm.shift + vm.sign*xs[vm.col]
		if vm.negCol >= 0 {
			v = xs[vm.col] - xs[vm.negCol]
		}
		sol.X[j] = v
	}
	objStd := obj + s.objConst
	if s.negate {
		sol.Objective = -objStd
	} else {
		sol.Objective = objStd
	}
	return sol
}

// resetCosts installs a cost vector and recomputes reduced costs and the
// objective for the current basis.
func (t *tableau) resetCosts(c []float64) {
	s := t.s
	t.r = make([]float64, s.n)
	copy(t.r, c)
	t.obj = 0
	for i, col := range t.basis {
		cb := c[col]
		if cb == 0 {
			continue
		}
		t.obj += cb * s.b[i]
		row := s.a[i]
		for j := 0; j < s.n; j++ {
			t.r[j] -= cb * row[j]
		}
	}
	// Basic columns have exactly zero reduced cost by definition.
	for _, col := range t.basis {
		t.r[col] = 0
	}
}

// pivot2 normalizes row pr so that column pc becomes 1. Valid only when
// column pc is zero outside row pr (crash pivots on singleton columns), so
// no other row or the cost row needs updating.
func (t *tableau) pivot2(pr, pc int) {
	s := t.s
	prow := s.a[pr]
	piv := prow[pc]
	if piv == 1 {
		return
	}
	inv := 1 / piv
	for j := 0; j < s.n; j++ {
		prow[j] *= inv
	}
	prow[pc] = 1
	s.b[pr] *= inv
}

// run iterates pivots until optimality, unboundedness, or the iteration cap.
func (t *tableau) run() Status {
	s := t.s
	stall := 0
	for {
		if t.iters >= t.max {
			return StatusIterLimit
		}
		if !t.deadline.IsZero() && t.iters%128 == 0 && time.Now().After(t.deadline) {
			return StatusDeadline
		}
		if t.interrupted() {
			return StatusInterrupted
		}
		bland := stall > 2*(s.m+8)
		pc := t.price(bland)
		if pc == -1 {
			return StatusOptimal
		}
		pr := t.ratio(pc)
		if pr == -1 {
			return StatusUnbounded
		}
		before := t.obj
		t.pivot(pr, pc)
		t.iters++
		if t.obj < before-optTol {
			stall = 0
		} else {
			stall++
			t.degen++
		}
	}
}

// price selects the entering column, or -1 at optimality. Among candidates
// whose reduced costs are within tieTol of the most negative seen so far,
// the smallest column index wins (the incumbent is kept).
func (t *tableau) price(bland bool) int {
	best, bestVal := -1, 0.0
	for j := 0; j < t.s.n; j++ {
		if t.inBasis[j] || t.blocked[j] {
			continue
		}
		r := t.r[j]
		if r >= -optTol {
			continue
		}
		if bland {
			return j
		}
		if best == -1 || r < bestVal-tieTol {
			best, bestVal = j, r
		}
	}
	return best
}

// ratio selects the leaving row for entering column pc, or -1 if unbounded.
// Ties prefer rows whose basic variable is artificial (driving them out),
// then the smallest basic column index (Bland-compatible).
func (t *tableau) ratio(pc int) int {
	s := t.s
	best := -1
	bestRatio := math.Inf(1)
	for i := 0; i < s.m; i++ {
		aij := s.a[i][pc]
		if aij <= pivotTol {
			continue
		}
		ratio := s.b[i] / aij
		switch {
		case ratio < bestRatio-feasTol:
			best, bestRatio = i, ratio
		case ratio <= bestRatio+feasTol:
			// Tie-break.
			bi, bb := t.basis[i], t.basis[best]
			iArt, bArt := bi >= s.artFrom, bb >= s.artFrom
			if iArt && !bArt || (iArt == bArt && bi < bb) {
				best, bestRatio = i, math.Min(bestRatio, ratio)
			}
		}
	}
	return best
}

// pivot performs a pivot on (pr, pc), updating rows, rhs, reduced costs,
// objective, and the basis.
func (t *tableau) pivot(pr, pc int) {
	s := t.s
	prow := s.a[pr]
	piv := prow[pc]
	inv := 1 / piv
	for j := 0; j < s.n; j++ {
		prow[j] *= inv
	}
	prow[pc] = 1
	s.b[pr] *= inv
	if s.b[pr] < 0 && s.b[pr] > -feasTol {
		s.b[pr] = 0
	}
	for i := 0; i < s.m; i++ {
		if i == pr {
			continue
		}
		f := s.a[i][pc]
		if f == 0 {
			continue
		}
		row := s.a[i]
		for j := 0; j < s.n; j++ {
			row[j] -= f * prow[j]
		}
		row[pc] = 0
		s.b[i] -= f * s.b[pr]
		if s.b[i] < 0 && s.b[i] > -feasTol {
			s.b[i] = 0
		}
	}
	if f := t.r[pc]; f != 0 {
		for j := 0; j < s.n; j++ {
			t.r[j] -= f * prow[j]
		}
		t.r[pc] = 0
		// The entering variable takes value b[pr] (already rescaled); the
		// objective moves by its pre-pivot reduced cost times that value.
		t.obj += f * s.b[pr]
	}
	t.inBasis[t.basis[pr]] = false
	t.basis[pr] = pc
	t.inBasis[pc] = true
}

// tiebreakWeight returns the fixed secondary weight of column j: a generic
// positive value in [1, 2) derived from the column index alone (splitmix64
// finalizer), so every solve of every problem uses the same weights. The
// genericity is what makes the weight-minimal vertex of an optimal face
// unique in practice.
func tiebreakWeight(j int) float64 {
	z := (uint64(j) + 1) * 0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return 1 + float64(z>>11)/(1<<53)
}

// tiebreak drives an optimal tableau to a canonical vertex of its optimal
// face: the one minimizing the fixed secondary weights of tiebreakWeight.
// Alternate optima are the reason a warm-started solve can legitimately end
// at a different vertex than the cold solve — degenerate flow LPs have many
// optimal flow splits — and branch and bound steers by the vertex, so both
// paths must agree on which one to report. Entering columns are restricted
// to reduced cost <= optTol (the optimal face at the current basis; the
// reduced costs were just refreshed by resetCosts, so dust is one
// refactorization deep), which keeps the primary objective optimal while the
// secondary weights strictly improve. A weight-decreasing ray cannot exist
// (the weights are positive over x >= 0), so the walk ends at a vertex.
func (t *tableau) tiebreak() Status {
	s := t.s
	// Refresh reduced costs from the current basis: the face test below
	// compares r against optTol, so accumulated pivot dust must go.
	t.resetCosts(s.c)
	rw := make([]float64, s.n)
	for j := range rw {
		rw[j] = tiebreakWeight(j)
	}
	for i, col := range t.basis {
		wb := tiebreakWeight(col)
		row := s.a[i]
		for j := 0; j < s.n; j++ {
			rw[j] -= wb * row[j]
		}
	}
	for _, col := range t.basis {
		rw[col] = 0
	}
	stall := 0
	for {
		if t.iters >= t.max {
			return StatusIterLimit
		}
		if !t.deadline.IsZero() && t.iters%128 == 0 && time.Now().After(t.deadline) {
			return StatusDeadline
		}
		if t.interrupted() {
			return StatusInterrupted
		}
		bland := stall > 2*(s.m+8)
		pc, bestVal := -1, 0.0
		for j := 0; j < s.n; j++ {
			if t.inBasis[j] || t.blocked[j] || t.r[j] > optTol || rw[j] >= -optTol {
				continue
			}
			if bland {
				pc = j
				break // smallest-index candidate
			}
			if pc == -1 || rw[j] < bestVal-tieTol {
				pc, bestVal = j, rw[j]
			}
		}
		if pc == -1 {
			return StatusOptimal
		}
		pr := t.ratio(pc)
		if pr == -1 {
			// No leaving row would mean a weight-decreasing ray, which the
			// positive weights rule out: numerical noise. Stop here.
			return StatusOptimal
		}
		f := rw[pc]
		t.pivot(pr, pc)
		t.iters++
		prow := s.a[pr]
		for j := 0; j < s.n; j++ {
			rw[j] -= f * prow[j]
		}
		rw[pc] = 0
		if s.b[pr] > feasTol {
			stall = 0
		} else {
			stall++
			t.degen++
		}
	}
}

// solveWarm attempts to solve s starting from the parent basis in
// opts.WarmStart: reinstall the basis by refactorization, then repair primal
// feasibility with a dual-simplex phase. It returns nil whenever the snapshot
// turns out to be unusable — the caller then rebuilds the standard form (the
// attempt pivots s in place) and runs the cold path, so the observable answer
// never depends on whether a warm start was tried.
//
// The install pivots are refactorization, not search: the cold solver pays
// for them implicitly by keeping its tableau up to date across phase 1, so
// they are deliberately not counted in Iterations. Only dual-repair, blocked-
// eviction and primal-cleanup pivots count.
func (p *Problem) solveWarm(s *stdForm, opts SolveOptions) *Solution {
	t := newTableau(s, opts)
	// Attribute the whole warm attempt — reinstall, dual-feasibility check,
	// dual repair, eviction, cleanup — to lp_warm_repair_seconds, including
	// aborted attempts (the caller then also pays the cold phases, and the
	// ledger should show both costs). Pivot accounting mirrors that: t.iters
	// at exit covers dual-repair + eviction + cleanup + tie-break pivots.
	repairStart := time.Now() //gapvet:allow walltime warm-repair time attribution; observed into an obs histogram, never read by the solve
	defer func() {
		lpWarmRepairSeconds.ObserveDuration(time.Since(repairStart)) //gapvet:allow walltime warm-repair time attribution; observed into an obs histogram, never read by the solve
		lpWarmRepairPivots.Add(int64(t.iters))
	}()
	// Artificials may sit in a parent basis (redundant rows hold them at
	// zero) but must never enter during the repair.
	for j := s.artFrom; j < s.n; j++ {
		t.blocked[j] = true
	}
	if !t.install(opts.WarmStart.cols) {
		return nil
	}
	t.resetCosts(s.c)
	// The parent's terminal reduced costs remain valid for the child: A and c
	// are shared, only b differs (bound overrides move through shifts and
	// upper-row right-hand sides). A negative reduced cost beyond
	// refactorization noise therefore means the snapshot does not fit.
	for j := 0; j < s.n; j++ {
		if t.inBasis[j] || t.blocked[j] {
			continue
		}
		if t.r[j] < -warmDualTol {
			return nil
		}
	}
	switch st := t.runDual(); st {
	case statusWarmAbort, StatusIterLimit:
		// Abort covers both dual cycling and a row with no entering column.
		// The latter is a primal-infeasibility certificate, but the cold
		// phase-1 stays the canonical feasibility oracle; an iteration cap
		// must likewise produce exactly the cold solver's capped outcome.
		return nil
	case StatusDeadline, StatusInterrupted:
		sol := t.solution(st)
		sol.Warm = true
		return sol
	}
	// Primal feasible and dual feasible over the unblocked columns. Evict
	// blocked columns still basic at zero so the cleanup below cannot move a
	// fixed variable, let the primal method mop up reduced-cost drift from
	// the refactorization (usually zero pivots), then walk to the canonical
	// vertex exactly as the cold path does.
	lpWarmEvictPivots.Add(int64(t.evictBlocked()))
	st := t.run()
	if st == StatusOptimal {
		st = t.tiebreak()
	}
	switch st {
	case StatusDeadline, StatusInterrupted:
		sol := t.solution(st)
		sol.Warm = true
		return sol
	case StatusOptimal, StatusUnbounded:
		sol := finishSolution(p, t, st, opts)
		sol.Warm = true
		return sol
	default:
		return nil
	}
}

// install refactorizes the tableau onto the given basic column set using
// Gauss-Jordan elimination with partial pivoting. The snapshot stores a set,
// not a row pairing: for each column the pivot row is chosen as the unassigned
// row with the largest magnitude, which both reconstructs a valid pairing
// whenever one exists and keeps the elimination numerically sane. Returns
// false when the set is singular (or numerically unusable) for this tableau.
func (t *tableau) install(cols []int32) bool {
	s := t.s
	if len(cols) != s.m {
		return false
	}
	for i := range t.basis {
		t.basis[i] = -1
	}
	assigned := make([]bool, s.m)
	for _, c32 := range cols {
		j := int(c32)
		if j < 0 || j >= s.n || t.inBasis[j] {
			return false
		}
		best, bestAbs := -1, pivotTol
		for i := 0; i < s.m; i++ {
			if assigned[i] {
				continue
			}
			if ab := math.Abs(s.a[i][j]); ab > bestAbs {
				best, bestAbs = i, ab
			}
		}
		if best == -1 {
			return false
		}
		t.gauss(best, j)
		t.basis[best] = j
		t.inBasis[j] = true
		assigned[best] = true
	}
	return true
}

// installCanonical refactorizes the tableau onto the canonical basis of a
// vertex given its support: the support columns are pivoted in first (they
// are independent at a vertex), then the basis is completed by scanning all
// columns in ascending index — unblocked columns first, blocked/artificial
// filler only for rows nothing else can cover (redundant rows). The result
// is a pure function of (tableau data, support set), which is what makes the
// extraction in finishSolution independent of pivot history. Returns false
// when the support is not extendable to a basis (numerics); the caller then
// falls back to the terminal tableau.
func (t *tableau) installCanonical(support []int) bool {
	s := t.s
	for i := range t.basis {
		t.basis[i] = -1
	}
	assigned := make([]bool, s.m)
	placed := 0
	place := func(j int) bool {
		best, bestAbs := -1, pivotTol
		for i := 0; i < s.m; i++ {
			if assigned[i] {
				continue
			}
			if ab := math.Abs(s.a[i][j]); ab > bestAbs {
				best, bestAbs = i, ab
			}
		}
		if best == -1 {
			return false
		}
		t.gauss(best, j)
		t.basis[best] = j
		t.inBasis[j] = true
		assigned[best] = true
		placed++
		return true
	}
	for _, j := range support {
		if j < 0 || j >= s.n || t.inBasis[j] || !place(j) {
			return false
		}
	}
	for j := 0; j < s.n && placed < s.m; j++ {
		if t.inBasis[j] || t.blocked[j] {
			continue
		}
		place(j)
	}
	for j := 0; j < s.n && placed < s.m; j++ {
		if t.inBasis[j] {
			continue
		}
		place(j)
	}
	return placed == s.m
}

// gauss pivots on (pr, pc) updating only the matrix and right-hand side —
// no reduced-cost or objective bookkeeping, which does not exist yet during
// install. Negative b entries are expected output: they are exactly the
// primal infeasibilities the dual phase repairs.
func (t *tableau) gauss(pr, pc int) {
	s := t.s
	prow := s.a[pr]
	inv := 1 / prow[pc]
	for j := 0; j < s.n; j++ {
		prow[j] *= inv
	}
	prow[pc] = 1
	s.b[pr] *= inv
	for i := 0; i < s.m; i++ {
		if i == pr {
			continue
		}
		f := s.a[i][pc]
		if f == 0 {
			continue
		}
		row := s.a[i]
		for j := 0; j < s.n; j++ {
			row[j] -= f * prow[j]
		}
		row[pc] = 0
		s.b[i] -= f * s.b[pr]
	}
}

// runDual repairs primal feasibility while maintaining dual feasibility — a
// generalized dual simplex. A row is violated when its basic value is
// negative (the classic case) or when its basic column is blocked with a
// positive value (a fixed variable that must be driven back to zero — the
// "up" case, which is how a child node pivots out the variable its branching
// fixed while it was basic in the parent). Every choice below is a pure
// function of the tableau data: largest violation with smallest-row ties,
// min-ratio entering with smallest-column ties.
func (t *tableau) runDual() Status {
	s := t.s
	stall := 0
	for {
		if t.iters >= t.max {
			return StatusIterLimit
		}
		if !t.deadline.IsZero() && t.iters%128 == 0 && time.Now().After(t.deadline) {
			return StatusDeadline
		}
		if t.interrupted() {
			return StatusInterrupted
		}
		pr, viol, up := -1, 0.0, false
		for i := 0; i < s.m; i++ {
			var v float64
			var u bool
			switch {
			case s.b[i] < -feasTol:
				v, u = -s.b[i], false
			case s.b[i] > feasTol && t.blocked[t.basis[i]]:
				v, u = s.b[i], true
			default:
				continue
			}
			if pr == -1 || v > viol+tieTol {
				pr, viol, up = i, v, u
			}
		}
		if pr == -1 {
			return StatusOptimal
		}
		// Entering column: min ratio r[j]/|a[pr][j]| over candidates that move
		// the leaving variable the right way — a[pr][j] < 0 for the classic
		// case (variable increases from negative), a[pr][j] > 0 for "up"
		// (variable decreases to zero). The min-ratio rule keeps r >= 0.
		dir := 1.0
		if up {
			dir = -1
		}
		row := s.a[pr]
		pc, bestRatio := -1, math.Inf(1)
		for j := 0; j < s.n; j++ {
			if t.inBasis[j] || t.blocked[j] {
				continue
			}
			d := dir * row[j]
			if d > -pivotTol {
				continue
			}
			if ratio := t.r[j] / -d; pc == -1 || ratio < bestRatio-tieTol {
				pc, bestRatio = j, ratio
			}
		}
		if pc == -1 {
			// No column can repair the violated row: a primal-infeasibility
			// certificate. Let the cold phase 1 pronounce it.
			return statusWarmAbort
		}
		before := t.obj
		t.pivot(pr, pc)
		t.iters++
		if math.Abs(t.obj-before) <= optTol {
			t.degen++
			stall++
		} else {
			stall = 0
		}
		if stall > 4*(s.m+s.n) {
			return statusWarmAbort
		}
	}
}

// evictBlocked pivots blocked columns that remain basic (at ~zero after the
// dual repair) out of the basis, so later primal pivots cannot move a fixed
// variable off its fixing. A row with no usable replacement keeps its blocked
// column: every unblocked coefficient there is ~zero, so no later pivot can
// change that row's value meaningfully. Returns the number of eviction
// pivots performed (they also count toward t.iters and t.degen).
func (t *tableau) evictBlocked() int {
	s := t.s
	evicted := 0
	for i := 0; i < s.m; i++ {
		if !t.blocked[t.basis[i]] {
			continue
		}
		for j := 0; j < s.n; j++ {
			if t.inBasis[j] || t.blocked[j] || math.Abs(s.a[i][j]) <= pivotTol {
				continue
			}
			t.pivot(i, j)
			t.iters++
			t.degen++
			evicted++
			break
		}
	}
	return evicted
}
