package lp

import (
	"testing"
)

// The REPRO_LP_ENGINE override must resolve valid values to the named
// engine, map absent/auto to the dense default, and reject typos with an
// error instead of silently falling back (the bug: a CI leg exporting
// REPRO_LP_ENGINE=spares ran the whole suite on the dense engine while
// claiming to force sparse).
func TestEngineFromEnv(t *testing.T) {
	cases := []struct {
		in      string
		want    Engine
		wantErr bool
	}{
		{"", EngineDense, false},
		{"auto", EngineDense, false},
		{"dense", EngineDense, false},
		{"sparse", EngineSparse, false},
		{"spares", EngineDense, true}, // the motivating typo
		{"SPARSE", EngineDense, true}, // values are case-sensitive
		{"devex", EngineDense, true},  // a pricing name is not an engine
	}
	for _, tc := range cases {
		got, err := engineFromEnv(tc.in)
		if got != tc.want {
			t.Errorf("engineFromEnv(%q) engine = %v, want %v", tc.in, got, tc.want)
		}
		if (err != nil) != tc.wantErr {
			t.Errorf("engineFromEnv(%q) err = %v, wantErr %v", tc.in, err, tc.wantErr)
		}
	}
}

// A rejected override must stay observable: the fallback engine comes up,
// and the rejected value plus its parse error are retrievable.
func TestDefaultEngineDiagnostics(t *testing.T) {
	// The test process was (in CI's sparse leg) started with a VALID or
	// absent REPRO_LP_ENGINE, so the live diagnostics must be clean.
	if rej, err := DefaultEngineDiagnostics(); rej != "" || err != nil {
		t.Fatalf("DefaultEngineDiagnostics() = (%q, %v) under a valid environment, want (\"\", nil)", rej, err)
	}
	// Simulate what init does with a bad value and check the plumbing
	// end to end, restoring the clean state afterwards.
	eng, err := engineFromEnv("spares")
	if err == nil {
		t.Fatal("engineFromEnv(\"spares\") returned no error")
	}
	if eng != EngineDense {
		t.Fatalf("engineFromEnv(\"spares\") engine = %v, want the dense fallback", eng)
	}
	envDiag.mu.Lock()
	envDiag.rejected, envDiag.err = "spares", err
	envDiag.mu.Unlock()
	defer func() {
		envDiag.mu.Lock()
		envDiag.rejected, envDiag.err = "", nil
		envDiag.mu.Unlock()
	}()
	rej, derr := DefaultEngineDiagnostics()
	if rej != "spares" || derr == nil {
		t.Fatalf("DefaultEngineDiagnostics() = (%q, %v), want (\"spares\", parse error)", rej, derr)
	}
}

func TestParsePricing(t *testing.T) {
	cases := []struct {
		in      string
		want    Pricing
		wantErr bool
	}{
		{"", PricingAuto, false},
		{"auto", PricingAuto, false},
		{"dantzig", PricingDantzig, false},
		{"devex", PricingDevex, false},
		{"steepest", PricingAuto, true},
		{"dense", PricingAuto, true},
	}
	for _, tc := range cases {
		got, err := ParsePricing(tc.in)
		if got != tc.want {
			t.Errorf("ParsePricing(%q) = %v, want %v", tc.in, got, tc.want)
		}
		if (err != nil) != tc.wantErr {
			t.Errorf("ParsePricing(%q) err = %v, wantErr %v", tc.in, err, tc.wantErr)
		}
	}
	// Round trip: every Pricing's String parses back to itself.
	for _, pr := range []Pricing{PricingAuto, PricingDantzig, PricingDevex} {
		back, err := ParsePricing(pr.String())
		if err != nil || back != pr {
			t.Errorf("ParsePricing(%v.String()) = (%v, %v), want (%v, nil)", pr, back, err, pr)
		}
	}
	var zero Pricing
	if zero != PricingAuto {
		t.Fatalf("zero Pricing = %v, want PricingAuto", zero)
	}
}
