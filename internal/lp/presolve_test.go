package lp

import (
	"math"
	"testing"
)

// Presolve golden instances: each test hand-builds a problem whose reduction
// is fully predictable, then checks the reduced dimensions (via the
// PresolveRows/PresolveCols counters), the exact postsolved point, the exact
// postsolved duals, and the strong-duality certificate — under both engines,
// since presolve hands the reduced problem to whichever engine was asked
// for.

func presolveBothEngines(t *testing.T, name string, build func() *Problem, check func(t *testing.T, sol *Solution, p *Problem)) {
	t.Helper()
	for _, eng := range []Engine{EngineDense, EngineSparse} {
		t.Run(name+"/"+eng.String(), func(t *testing.T) {
			p := build()
			sol, err := p.SolveWith(SolveOptions{Presolve: true, Engine: eng})
			if err != nil {
				t.Fatalf("solve: %v", err)
			}
			check(t, sol, p)
		})
	}
}

func wantFloat(t *testing.T, what string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
		t.Fatalf("%s = %.15g, want %.15g", what, got, want)
	}
}

func certify(t *testing.T, p *Problem, sol *Solution) {
	t.Helper()
	dual, err := p.DualObjective(sol)
	if err != nil {
		t.Fatalf("dual certificate: %v", err)
	}
	if math.Abs(dual-sol.Objective) > 1e-7*(1+math.Abs(sol.Objective)) {
		t.Fatalf("strong duality violated: primal %v, dual %v", sol.Objective, dual)
	}
}

// TestPresolveEmptyRow: a row whose coefficients all cancel is removed with
// dual exactly 0; a contradictory empty row is infeasible outright.
func TestPresolveEmptyRow(t *testing.T) {
	presolveBothEngines(t, "consistent", func() *Problem {
		p := NewProblem("empty-row", Maximize)
		x := p.AddVar("x", 0, 5)
		p.SetObj(x, 2)
		// The two x terms cancel: an empty row with rhs 3 >= 0, harmless.
		p.AddConstraint("zero", NewExpr().Add(x, 1).Add(x, -1), LE, 3)
		p.AddConstraint("cap", NewExpr().Add(x, 1), LE, 4)
		return p
	}, func(t *testing.T, sol *Solution, p *Problem) {
		if sol.Status != StatusOptimal {
			t.Fatalf("status %v", sol.Status)
		}
		// The empty row goes first; "cap" is itself a singleton row, so the
		// cascade folds it into the box and eliminates x too.
		if sol.PresolveRows != 2 || sol.PresolveCols != 1 {
			t.Fatalf("presolve removed %d rows / %d cols, want 2/1", sol.PresolveRows, sol.PresolveCols)
		}
		wantFloat(t, "X", sol.X[0], 4)
		wantFloat(t, "objective", sol.Objective, 8)
		wantFloat(t, "dual[zero]", sol.Dual[0], 0)
		wantFloat(t, "dual[cap]", sol.Dual[1], 2)
		certify(t, p, sol)
	})

	presolveBothEngines(t, "contradictory", func() *Problem {
		p := NewProblem("empty-row-bad", Minimize)
		x := p.AddVar("x", 0, 5)
		p.SetObj(x, 1)
		// 0 >= 3: infeasible before any simplex runs.
		p.AddConstraint("impossible", NewExpr().Add(x, 1).Add(x, -1), GE, 3)
		return p
	}, func(t *testing.T, sol *Solution, p *Problem) {
		if sol.Status != StatusInfeasible {
			t.Fatalf("status %v, want infeasible", sol.Status)
		}
		if sol.Iterations != 0 {
			t.Fatalf("presolve-detected infeasibility took %d pivots, want 0", sol.Iterations)
		}
	})
}

// TestPresolveSingletonRow: 2x <= 8 folds into x <= 4; the row then being
// the binding constraint, its dual is recovered from the reduced cost as
// rc/coef = 3/2.
func TestPresolveSingletonRow(t *testing.T) {
	presolveBothEngines(t, "binding", func() *Problem {
		p := NewProblem("singleton-row", Maximize)
		x := p.AddVar("x", 0, 10)
		p.SetObj(x, 3)
		p.AddConstraint("cap", NewExpr().Add(x, 2), LE, 8)
		return p
	}, func(t *testing.T, sol *Solution, p *Problem) {
		if sol.Status != StatusOptimal {
			t.Fatalf("status %v", sol.Status)
		}
		// The singleton row folds away, which empties the column: the whole
		// problem presolves to nothing.
		if sol.PresolveRows != 1 || sol.PresolveCols != 1 {
			t.Fatalf("removed %d rows / %d cols, want 1/1", sol.PresolveRows, sol.PresolveCols)
		}
		wantFloat(t, "X", sol.X[0], 4)
		wantFloat(t, "objective", sol.Objective, 12)
		wantFloat(t, "dual[cap]", sol.Dual[0], 1.5)
		certify(t, p, sol)
	})

	// Non-binding singleton: the implied bound is slack at the optimum, so
	// the removed row's dual must stay 0.
	presolveBothEngines(t, "slack", func() *Problem {
		p := NewProblem("singleton-slack", Maximize)
		x := p.AddVar("x", 0, 3)
		p.SetObj(x, 3)
		p.AddConstraint("loose", NewExpr().Add(x, 2), LE, 100)
		return p
	}, func(t *testing.T, sol *Solution, p *Problem) {
		if sol.Status != StatusOptimal {
			t.Fatalf("status %v", sol.Status)
		}
		wantFloat(t, "X", sol.X[0], 3)
		wantFloat(t, "objective", sol.Objective, 9)
		wantFloat(t, "dual[loose]", sol.Dual[0], 0)
		certify(t, p, sol)
	})
}

// TestPresolveSingletonColumnChain: a variable appearing only in a
// singleton row is eliminated twice over — row folds to a bound, column
// empties, value pinned by objective sign — leaving a reduced problem in
// the remaining variable only.
func TestPresolveSingletonColumnChain(t *testing.T) {
	presolveBothEngines(t, "chain", func() *Problem {
		p := NewProblem("singleton-col", Maximize)
		x := p.AddVar("x", 0, 10) // only in its own singleton row
		y := p.AddVar("y", 0, 6)
		p.SetObj(x, 3)
		p.SetObj(y, 1)
		p.AddConstraint("xcap", NewExpr().Add(x, 2), LE, 8)
		p.AddConstraint("ycap", NewExpr().Add(y, 1), LE, 5)
		return p
	}, func(t *testing.T, sol *Solution, p *Problem) {
		if sol.Status != StatusOptimal {
			t.Fatalf("status %v", sol.Status)
		}
		if sol.PresolveRows != 2 || sol.PresolveCols != 2 {
			t.Fatalf("removed %d rows / %d cols, want 2/2", sol.PresolveRows, sol.PresolveCols)
		}
		wantFloat(t, "X[x]", sol.X[0], 4)
		wantFloat(t, "X[y]", sol.X[1], 5)
		wantFloat(t, "objective", sol.Objective, 17)
		wantFloat(t, "dual[xcap]", sol.Dual[0], 1.5)
		wantFloat(t, "dual[ycap]", sol.Dual[1], 1)
		certify(t, p, sol)
	})
}

// TestPresolveFixedColumn: lo == hi substitutes the variable out of every
// row; the remaining LP sees the adjusted rhs and the postsolved point
// restores the pinned value and the full objective.
func TestPresolveFixedColumn(t *testing.T) {
	presolveBothEngines(t, "fixed", func() *Problem {
		p := NewProblem("fixed-col", Maximize)
		x := p.AddVar("x", 2, 2)
		y := p.AddVar("y", 0, 6)
		p.SetObj(x, 10)
		p.SetObj(y, 1)
		p.AddConstraint("c", NewExpr().Add(x, 1).Add(y, 1), LE, 7)
		return p
	}, func(t *testing.T, sol *Solution, p *Problem) {
		if sol.Status != StatusOptimal {
			t.Fatalf("status %v", sol.Status)
		}
		// Substituting x out turns the row into a singleton on y, so the
		// cascade consumes the entire problem: 1 row, both columns.
		if sol.PresolveRows != 1 || sol.PresolveCols != 2 {
			t.Fatalf("removed %d rows / %d cols, want 1/2", sol.PresolveRows, sol.PresolveCols)
		}
		wantFloat(t, "X[x]", sol.X[0], 2)
		wantFloat(t, "X[y]", sol.X[1], 5)
		wantFloat(t, "objective", sol.Objective, 25)
		wantFloat(t, "dual[c]", sol.Dual[0], 1)
		certify(t, p, sol)
	})
}

// TestPresolveRedundantRow: a row that can never bind by activity bounds is
// dropped with dual exactly 0 — and the answer matches the unpresolved
// solve.
func TestPresolveRedundantRow(t *testing.T) {
	presolveBothEngines(t, "redundant", func() *Problem {
		p := NewProblem("redundant-row", Maximize)
		x := p.AddVar("x", 0, 10)
		y := p.AddVar("y", 0, 10)
		p.SetObj(x, 1)
		p.SetObj(y, 2)
		p.AddConstraint("loose", NewExpr().Add(x, 1).Add(y, 1), LE, 1000)
		p.AddConstraint("tight", NewExpr().Add(x, 1).Add(y, 1), LE, 12)
		return p
	}, func(t *testing.T, sol *Solution, p *Problem) {
		if sol.Status != StatusOptimal {
			t.Fatalf("status %v", sol.Status)
		}
		if sol.PresolveRows != 1 {
			t.Fatalf("removed %d rows, want 1 (the loose row)", sol.PresolveRows)
		}
		wantFloat(t, "X[x]", sol.X[0], 2)
		wantFloat(t, "X[y]", sol.X[1], 10)
		wantFloat(t, "objective", sol.Objective, 22)
		wantFloat(t, "dual[loose]", sol.Dual[0], 0)
		wantFloat(t, "dual[tight]", sol.Dual[1], 1)
		certify(t, p, sol)
	})
}

// TestPresolveInfeasibleByBounds: two singleton rows squeeze a variable's
// interval empty; presolve proves infeasibility without a single pivot.
func TestPresolveInfeasibleByBounds(t *testing.T) {
	presolveBothEngines(t, "squeeze", func() *Problem {
		p := NewProblem("infeasible-bounds", Minimize)
		x := p.AddVar("x", 0, Inf)
		p.SetObj(x, 1)
		p.AddConstraint("hi", NewExpr().Add(x, 2), LE, 6) // x <= 3
		p.AddConstraint("lo", NewExpr().Add(x, 1), GE, 5) // x >= 5
		return p
	}, func(t *testing.T, sol *Solution, p *Problem) {
		if sol.Status != StatusInfeasible {
			t.Fatalf("status %v, want infeasible", sol.Status)
		}
		if sol.Iterations != 0 {
			t.Fatalf("bound infeasibility took %d pivots, want 0", sol.Iterations)
		}
	})
}

// TestPresolveUnboundedAfterElimination: eliminating rows leaves a column
// with an improving infinite bound; the combined verdict must be unbounded,
// not the reduced problem's local optimum.
func TestPresolveUnboundedAfterElimination(t *testing.T) {
	presolveBothEngines(t, "unbounded", func() *Problem {
		p := NewProblem("unbounded-after", Maximize)
		free := p.AddVar("free", 0, Inf) // appears in no constraint at all
		y := p.AddVar("y", 0, 10)
		p.SetObj(free, 1)
		p.SetObj(y, 1)
		p.AddConstraint("ycap", NewExpr().Add(y, 1), LE, 5)
		return p
	}, func(t *testing.T, sol *Solution, p *Problem) {
		if sol.Status != StatusUnbounded {
			t.Fatalf("status %v, want unbounded", sol.Status)
		}
	})

	// Same shape but the leftover rows are themselves infeasible: the
	// "unbounded if feasible" flag must NOT override a genuine infeasibility.
	presolveBothEngines(t, "unbounded-vs-infeasible", func() *Problem {
		p := NewProblem("unbounded-infeasible", Maximize)
		free := p.AddVar("free", 0, Inf)
		y := p.AddVar("y", 0, 1)
		z := p.AddVar("z", 0, 1)
		p.SetObj(free, 1)
		p.AddConstraint("need", NewExpr().Add(y, 1).Add(z, 1), GE, 5)
		return p
	}, func(t *testing.T, sol *Solution, p *Problem) {
		if sol.Status != StatusInfeasible {
			t.Fatalf("status %v, want infeasible", sol.Status)
		}
	})
}

// TestPresolveSkippedUnderWarmStart: a warm start targets the full-space
// standard form, so Presolve must quietly stand down rather than hand the
// snapshot a reduced problem it cannot fit.
func TestPresolveSkippedUnderWarmStart(t *testing.T) {
	p := NewProblem("warm-skip", Maximize)
	x := p.AddVar("x", 0, 10)
	p.SetObj(x, 3)
	p.AddConstraint("cap", NewExpr().Add(x, 2), LE, 8)
	capt, err := p.SolveWith(SolveOptions{CaptureBasis: true})
	if err != nil || capt.Basis == nil {
		t.Fatalf("capture: %v", err)
	}
	warm, err := p.SolveWith(SolveOptions{Presolve: true, WarmStart: capt.Basis})
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	if warm.PresolveRows != 0 || warm.PresolveCols != 0 {
		t.Fatalf("presolve ran under a warm start (removed %d/%d)", warm.PresolveRows, warm.PresolveCols)
	}
	if !warm.Warm || warm.Status != StatusOptimal {
		t.Fatalf("warm path skipped: warm=%t status=%v", warm.Warm, warm.Status)
	}
	wantFloat(t, "objective", warm.Objective, 12)
}
