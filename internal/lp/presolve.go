package lp

// Presolve: Andersen & Andersen (1995)-style reductions applied to the user
// problem before it ever reaches a simplex engine, with a journal that maps
// the reduced answer back to the original variable and constraint spaces.
//
// The reductions are deliberately restricted to the set with an exact dual
// postsolve: empty rows (dual 0), strictly redundant rows by activity bounds
// (dual 0), singleton rows folded into variable bounds (dual recovered from
// the variable's reduced cost when the folded bound is the binding one),
// fixed columns substituted out, and empty columns pinned by objective sign.
// General multi-variable bound propagation is used only as an infeasibility
// probe — it never modifies bounds — because an implied bound that becomes
// binding has no clean constraint dual to hand back. The result: a presolved
// solve reports the same status and objective as an unpresolved one and
// duals that pass the DualObjective strong-duality certificate, though on a
// degenerate optimal face it may report a different (equally optimal)
// vertex.

import (
	"math"
)

type psKind int

const (
	psEmptyRow psKind = iota // removed row, dual 0
	psRedundantRow
	psSingletonRow // removed row folded into a bound on one variable
	psFixedCol     // variable substituted at a fixed value
	psEmptyCol     // variable pinned by objective sign
)

// psEntry is one journal record. Postsolve replays the journal in reverse.
type psEntry struct {
	kind  psKind
	row   int     // original constraint index (row kinds)
	col   int     // original variable index (psSingletonRow and column kinds)
	coef  float64 // psSingletonRow: the row's single coefficient
	val   float64 // column kinds: the pinned value; psSingletonRow: the implied bound
	upper bool    // psSingletonRow: implied bound is an upper bound
}

// presolveState is the working reduction state over the original problem.
type presolveState struct {
	p        *Problem
	lo, hi   []float64
	terms    [][]Term // deduplicated per row, zero coefficients dropped
	rhs      []float64
	rel      []Rel
	rowAlive []bool
	colAlive []bool
	journal  []psEntry

	infeasible bool
	// unboundedIfFeasible is set when an empty column's certifying bound is
	// infinite: the problem is unbounded provided the rest is feasible, which
	// only the reduced solve can decide.
	unboundedIfFeasible bool
}

func newPresolveState(p *Problem) *presolveState {
	ps := &presolveState{p: p}
	n, m := len(p.vars), len(p.cons)
	ps.lo = make([]float64, n)
	ps.hi = make([]float64, n)
	ps.colAlive = make([]bool, n)
	for j, v := range p.vars {
		ps.lo[j], ps.hi[j] = v.lo, v.hi
		ps.colAlive[j] = true
	}
	ps.terms = make([][]Term, m)
	ps.rhs = make([]float64, m)
	ps.rel = make([]Rel, m)
	ps.rowAlive = make([]bool, m)
	for i, con := range p.cons {
		sum := make(map[VarID]float64, len(con.expr.Terms))
		for _, t := range con.expr.Terms {
			sum[t.Var] += t.Coef
		}
		// Rebuild in first-appearance order (never map order) so the reduced
		// constraint matrix is a pure function of the input problem.
		seen := make(map[VarID]bool, len(sum))
		for _, t := range con.expr.Terms {
			if seen[t.Var] {
				continue
			}
			seen[t.Var] = true
			if c := sum[t.Var]; c != 0 {
				ps.terms[i] = append(ps.terms[i], Term{Var: t.Var, Coef: c})
			}
		}
		ps.rhs[i] = con.rhs
		ps.rel[i] = con.rel
		ps.rowAlive[i] = true
	}
	return ps
}

// tightenLo/tightenHi fold an implied bound in, reporting infeasibility when
// the interval empties beyond tolerance (a sub-tolerance crossing snaps).
func (ps *presolveState) tightenLo(j int, v float64) {
	if v <= ps.lo[j] {
		return
	}
	if v > ps.hi[j]+feasTol {
		ps.infeasible = true
		return
	}
	ps.lo[j] = math.Min(v, ps.hi[j])
}

func (ps *presolveState) tightenHi(j int, v float64) {
	if v >= ps.hi[j] {
		return
	}
	if v < ps.lo[j]-feasTol {
		ps.infeasible = true
		return
	}
	ps.hi[j] = math.Max(v, ps.lo[j])
}

// activityBounds returns the min/max of a row's left-hand side over the
// current bounds.
func (ps *presolveState) activityBounds(i int) (minAct, maxAct float64) {
	for _, t := range ps.terms[i] {
		if !ps.colAlive[int(t.Var)] {
			continue
		}
		lo, hi := ps.lo[t.Var], ps.hi[t.Var]
		if t.Coef > 0 {
			minAct += t.Coef * lo
			maxAct += t.Coef * hi
		} else {
			minAct += t.Coef * hi
			maxAct += t.Coef * lo
		}
	}
	return minAct, maxAct
}

// reduce runs reduction passes to a fixpoint (bounded by the problem size —
// every pass that changes anything removes a row or column or tightens a
// bound through a removed row).
func (ps *presolveState) reduce() {
	maxPasses := len(ps.rowAlive) + len(ps.colAlive) + 2
	for pass := 0; pass < maxPasses; pass++ {
		if ps.infeasible {
			return
		}
		changed := false
		if ps.reduceRows() {
			changed = true
		}
		if ps.infeasible {
			return
		}
		if ps.reduceCols() {
			changed = true
		}
		if !changed {
			break
		}
	}
	if !ps.infeasible {
		ps.probeInfeasibility()
	}
}

// liveTerms returns the alive terms of row i.
func (ps *presolveState) liveTerms(i int) []Term {
	out := ps.terms[i][:0:0]
	for _, t := range ps.terms[i] {
		if ps.colAlive[int(t.Var)] {
			out = append(out, t)
		}
	}
	return out
}

func (ps *presolveState) reduceRows() bool {
	changed := false
	for i := range ps.rowAlive {
		if !ps.rowAlive[i] || ps.infeasible {
			continue
		}
		live := ps.liveTerms(i)
		switch len(live) {
		case 0:
			// Empty row: 0 rel rhs must hold on its own.
			ok := true
			switch ps.rel[i] {
			case LE:
				ok = ps.rhs[i] >= -feasTol
			case GE:
				ok = ps.rhs[i] <= feasTol
			case EQ:
				ok = math.Abs(ps.rhs[i]) <= feasTol
			}
			if !ok {
				ps.infeasible = true
				continue
			}
			ps.rowAlive[i] = false
			ps.journal = append(ps.journal, psEntry{kind: psEmptyRow, row: i})
			changed = true
		case 1:
			t := live[0]
			j := int(t.Var)
			v := ps.rhs[i] / t.Coef
			switch {
			case ps.rel[i] == EQ:
				ps.tightenLo(j, v)
				ps.tightenHi(j, v)
				ps.journal = append(ps.journal, psEntry{kind: psSingletonRow, row: i, col: j, coef: t.Coef, val: v, upper: true})
			case (ps.rel[i] == LE) == (t.Coef > 0):
				// a·x <= rhs with a>0, or a·x >= rhs with a<0: upper bound.
				ps.tightenHi(j, v)
				ps.journal = append(ps.journal, psEntry{kind: psSingletonRow, row: i, col: j, coef: t.Coef, val: v, upper: true})
			default:
				ps.tightenLo(j, v)
				ps.journal = append(ps.journal, psEntry{kind: psSingletonRow, row: i, col: j, coef: t.Coef, val: v, upper: false})
			}
			ps.rowAlive[i] = false
			changed = true
		default:
			// Strict redundancy by activity bounds: the row can never bind,
			// so its dual is exactly zero. (A row tight only at the activity
			// extreme is kept — it may carry a dual.)
			minAct, maxAct := ps.activityBounds(i)
			redundant := false
			switch ps.rel[i] {
			case LE:
				redundant = maxAct <= ps.rhs[i]-feasTol
			case GE:
				redundant = minAct >= ps.rhs[i]+feasTol
			}
			if redundant {
				ps.rowAlive[i] = false
				ps.journal = append(ps.journal, psEntry{kind: psRedundantRow, row: i})
				changed = true
			}
		}
	}
	return changed
}

func (ps *presolveState) reduceCols() bool {
	changed := false
	// Count live appearances per column.
	appears := make([]int, len(ps.colAlive))
	for i := range ps.rowAlive {
		if !ps.rowAlive[i] {
			continue
		}
		for _, t := range ps.terms[i] {
			if ps.colAlive[int(t.Var)] {
				appears[t.Var]++
			}
		}
	}
	objSign := 1.0
	if ps.p.sense == Maximize {
		objSign = -1
	}
	for j := range ps.colAlive {
		if !ps.colAlive[j] || ps.infeasible {
			continue
		}
		lo, hi := ps.lo[j], ps.hi[j]
		if lo >= hi {
			// Fixed column: substitute into every live row.
			v := lo
			for i := range ps.rowAlive {
				if !ps.rowAlive[i] {
					continue
				}
				for _, t := range ps.terms[i] {
					if int(t.Var) == j {
						ps.rhs[i] -= t.Coef * v
					}
				}
			}
			ps.colAlive[j] = false
			ps.journal = append(ps.journal, psEntry{kind: psFixedCol, col: j, val: v})
			changed = true
			continue
		}
		if appears[j] > 0 {
			continue
		}
		// Empty column: pinned by its objective coefficient alone.
		cmin := ps.p.vars[j].obj * objSign // cost in the minimize sense
		var v float64
		switch {
		case cmin > 0:
			v = lo
			if math.IsInf(lo, -1) {
				ps.unboundedIfFeasible = true
			}
		case cmin < 0:
			v = hi
			if math.IsInf(hi, 1) {
				ps.unboundedIfFeasible = true
			}
		default:
			switch {
			case !math.IsInf(lo, -1):
				v = lo
			case !math.IsInf(hi, 1):
				v = hi
			default:
				v = 0
			}
		}
		ps.colAlive[j] = false
		ps.journal = append(ps.journal, psEntry{kind: psEmptyCol, col: j, val: v})
		changed = true
	}
	return changed
}

// probeInfeasibility runs one constraint-propagation sweep purely as a
// feasibility check: an implied interval that is empty beyond tolerance
// proves infeasibility. Bounds are never modified (see the package comment —
// implied bounds have no clean dual postsolve).
func (ps *presolveState) probeInfeasibility() {
	for i := range ps.rowAlive {
		if !ps.rowAlive[i] {
			continue
		}
		minAct, maxAct := ps.activityBounds(i)
		switch ps.rel[i] {
		case LE:
			if minAct > ps.rhs[i]+feasTol {
				ps.infeasible = true
				return
			}
		case GE:
			if maxAct < ps.rhs[i]-feasTol {
				ps.infeasible = true
				return
			}
		case EQ:
			if minAct > ps.rhs[i]+feasTol || maxAct < ps.rhs[i]-feasTol {
				ps.infeasible = true
				return
			}
		}
	}
}

// buildReduced assembles the reduced Problem plus the column/row maps into
// the original spaces.
func (ps *presolveState) buildReduced() (q *Problem, colMap []int, rowMap []int) {
	p := ps.p
	q = NewProblem(p.Name, p.sense)
	colMap = make([]int, len(p.vars)) // original -> reduced, -1 if removed
	for j := range colMap {
		colMap[j] = -1
	}
	for j, v := range p.vars {
		if !ps.colAlive[j] {
			continue
		}
		id := q.AddVar(v.name, ps.lo[j], ps.hi[j])
		q.SetObj(id, v.obj)
		colMap[j] = int(id)
	}
	for i, con := range p.cons {
		if !ps.rowAlive[i] {
			continue
		}
		var e Expr
		for _, t := range ps.terms[i] {
			if cj := colMap[int(t.Var)]; cj >= 0 {
				e = e.Add(VarID(cj), t.Coef)
			}
		}
		q.AddConstraint(con.name, e, ps.rel[i], ps.rhs[i])
		rowMap = append(rowMap, i)
	}
	return q, colMap, rowMap
}

// postsolve maps the reduced solution back to the original spaces in place
// on sol: X for every original variable, duals for every original row —
// removed rows recover theirs from the journal in reverse order.
func (ps *presolveState) postsolve(sol *Solution, reduced *Solution, colMap, rowMap []int) {
	p := ps.p
	sol.X = make([]float64, len(p.vars))
	sol.Dual = make([]float64, len(p.cons))
	for j := range p.vars {
		if cj := colMap[j]; cj >= 0 {
			sol.X[j] = reduced.X[cj]
		}
	}
	for k, i := range rowMap {
		sol.Dual[i] = reduced.Dual[k]
	}
	// Reverse-replay the journal: restore pinned values first, then recover
	// singleton-row duals against the progressively completed dual vector.
	for e := len(ps.journal) - 1; e >= 0; e-- {
		en := ps.journal[e]
		switch en.kind {
		case psFixedCol, psEmptyCol:
			sol.X[en.col] = en.val
		case psSingletonRow:
			// The folded bound carries a multiplier exactly when it is the
			// binding bound at the solution and the variable's reduced cost
			// (under the duals recovered so far) is nonzero; assigning
			// rc/coef to the row zeroes the reduced cost, so stacked
			// singleton rows on one variable settle one at a time.
			if math.Abs(sol.X[en.col]-en.val) > 1e-6 {
				continue
			}
			rc := p.vars[en.col].obj
			for i, con := range p.cons {
				if sol.Dual[i] == 0 {
					continue
				}
				for _, t := range con.expr.Terms {
					if int(t.Var) == en.col {
						rc -= sol.Dual[i] * t.Coef
					}
				}
			}
			if math.Abs(rc) <= optTol {
				continue
			}
			sol.Dual[en.row] = rc / en.coef
		}
	}
}

// solvePresolved is the Presolve dispatch: reduce, solve the reduced problem
// with the requested engine, and postsolve the answer. Presolve-detected
// infeasibility or unboundedness short-circuits the simplex entirely.
func (p *Problem) solvePresolved(opts SolveOptions, eng Engine) (*Solution, error) {
	ps := newPresolveState(p)
	ps.reduce()
	removedRows, removedCols := 0, 0
	for _, alive := range ps.rowAlive {
		if !alive {
			removedRows++
		}
	}
	for _, alive := range ps.colAlive {
		if !alive {
			removedCols++
		}
	}
	if ps.infeasible {
		return &Solution{Status: StatusInfeasible, EngineUsed: eng,
			PresolveRows: removedRows, PresolveCols: removedCols}, nil
	}
	q, colMap, rowMap := ps.buildReduced()
	inner := opts
	inner.Presolve = false
	inner.Engine = eng
	inner.CaptureBasis = false // a reduced-space basis must not leak out
	inner.WarmStart = nil
	inner.Tracer = nil
	reduced, err := q.solveWith(inner)
	if err != nil {
		return nil, err
	}
	sol := &Solution{
		Status:           reduced.Status,
		Iterations:       reduced.Iterations,
		Phase1Iterations: reduced.Phase1Iterations,
		DegeneratePivots: reduced.DegeneratePivots,
		EngineUsed:       reduced.EngineUsed,
		SparseFallback:   reduced.SparseFallback,
		PresolveRows:     removedRows,
		PresolveCols:     removedCols,
	}
	if ps.unboundedIfFeasible {
		// An empty column rides to infinity as soon as the rest is feasible.
		switch reduced.Status {
		case StatusOptimal, StatusUnbounded:
			sol.Status = StatusUnbounded
		}
		return sol, nil
	}
	if reduced.Status != StatusOptimal {
		return sol, nil
	}
	ps.postsolve(sol, reduced, colMap, rowMap)
	objConst := 0.0
	for j := range p.vars {
		if colMap[j] == -1 {
			objConst += p.vars[j].obj * sol.X[j]
		}
	}
	sol.Objective = reduced.Objective + objConst
	return sol, nil
}
