package lp

import (
	"math"
	"testing"
)

const testEps = 1e-6

func almost(a, b float64) bool { return math.Abs(a-b) <= testEps*(1+math.Abs(a)+math.Abs(b)) }

func mustSolve(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := p.Solve()
	if err != nil {
		t.Fatalf("%s: solve error: %v", p.Name, err)
	}
	return sol
}

func requireOptimal(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol := mustSolve(t, p)
	if sol.Status != StatusOptimal {
		t.Fatalf("%s: status = %v, want optimal", p.Name, sol.Status)
	}
	return sol
}

func TestMaximizeSingleVar(t *testing.T) {
	p := NewProblem("max-x", Maximize)
	x := p.AddVar("x", 0, Inf)
	p.SetObj(x, 1)
	p.AddConstraint("cap", NewExpr().Add(x, 1), LE, 5)
	sol := requireOptimal(t, p)
	if !almost(sol.Objective, 5) || !almost(sol.X[x], 5) {
		t.Fatalf("obj=%v x=%v, want 5", sol.Objective, sol.X[x])
	}
	if !almost(sol.Dual[0], 1) {
		t.Fatalf("dual=%v, want 1 (LE row in a max problem)", sol.Dual[0])
	}
}

func TestMinimizeWithGE(t *testing.T) {
	p := NewProblem("min-x", Minimize)
	x := p.AddVar("x", 0, Inf)
	p.SetObj(x, 3)
	p.AddConstraint("floor", NewExpr().Add(x, 1), GE, 4)
	sol := requireOptimal(t, p)
	if !almost(sol.Objective, 12) || !almost(sol.X[x], 4) {
		t.Fatalf("obj=%v x=%v, want 12/4", sol.Objective, sol.X[x])
	}
	// Minimize with GE row: dual >= 0 and strong duality 3*4 = y*4.
	if !almost(sol.Dual[0], 3) {
		t.Fatalf("dual=%v, want 3", sol.Dual[0])
	}
}

func TestTwoVarProduction(t *testing.T) {
	// Classic: max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18.
	// Optimum at (2, 6) with value 36.
	p := NewProblem("production", Maximize)
	x := p.AddVar("x", 0, Inf)
	y := p.AddVar("y", 0, Inf)
	p.SetObj(x, 3)
	p.SetObj(y, 5)
	p.AddConstraint("c1", NewExpr().Add(x, 1), LE, 4)
	p.AddConstraint("c2", NewExpr().Add(y, 2), LE, 12)
	p.AddConstraint("c3", NewExpr().Add(x, 3).Add(y, 2), LE, 18)
	sol := requireOptimal(t, p)
	if !almost(sol.Objective, 36) {
		t.Fatalf("obj=%v, want 36", sol.Objective)
	}
	if !almost(sol.X[x], 2) || !almost(sol.X[y], 6) {
		t.Fatalf("x=%v y=%v, want (2,6)", sol.X[x], sol.X[y])
	}
	// Known duals: y1=0, y2=3/2, y3=1.
	if !almost(sol.Dual[0], 0) || !almost(sol.Dual[1], 1.5) || !almost(sol.Dual[2], 1) {
		t.Fatalf("duals=%v, want [0 1.5 1]", sol.Dual)
	}
}

func TestEqualityConstraint(t *testing.T) {
	p := NewProblem("eq", Minimize)
	x := p.AddVar("x", 0, Inf)
	y := p.AddVar("y", 0, Inf)
	p.SetObj(x, 2)
	p.SetObj(y, 1)
	p.AddConstraint("sum", NewExpr().Add(x, 1).Add(y, 1), EQ, 10)
	sol := requireOptimal(t, p)
	if !almost(sol.Objective, 10) || !almost(sol.X[y], 10) || !almost(sol.X[x], 0) {
		t.Fatalf("got obj=%v x=%v y=%v", sol.Objective, sol.X[x], sol.X[y])
	}
}

func TestFreeVariable(t *testing.T) {
	// min x subject to x >= -7 with x free: the constraint binds from below.
	p := NewProblem("free", Minimize)
	x := p.AddVar("x", math.Inf(-1), Inf)
	p.SetObj(x, 1)
	p.AddConstraint("floor", NewExpr().Add(x, 1), GE, -7)
	sol := requireOptimal(t, p)
	if !almost(sol.X[x], -7) {
		t.Fatalf("x=%v, want -7", sol.X[x])
	}
}

func TestUpperBoundedVariable(t *testing.T) {
	p := NewProblem("ub", Maximize)
	x := p.AddVar("x", 1, 3)
	p.SetObj(x, 2)
	sol := requireOptimal(t, p)
	if !almost(sol.X[x], 3) || !almost(sol.Objective, 6) {
		t.Fatalf("x=%v obj=%v, want 3/6", sol.X[x], sol.Objective)
	}
}

func TestMirroredVariable(t *testing.T) {
	// x in (-inf, 2], maximize x => 2.
	p := NewProblem("mirror", Maximize)
	x := p.AddVar("x", math.Inf(-1), 2)
	p.SetObj(x, 1)
	sol := requireOptimal(t, p)
	if !almost(sol.X[x], 2) {
		t.Fatalf("x=%v, want 2", sol.X[x])
	}
}

func TestNegativeLowerBound(t *testing.T) {
	p := NewProblem("neglo", Minimize)
	x := p.AddVar("x", -5, 5)
	p.SetObj(x, 1)
	p.AddConstraint("c", NewExpr().Add(x, 1), GE, -3)
	sol := requireOptimal(t, p)
	if !almost(sol.X[x], -3) {
		t.Fatalf("x=%v, want -3", sol.X[x])
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem("infeasible", Maximize)
	x := p.AddVar("x", 0, Inf)
	p.SetObj(x, 1)
	p.AddConstraint("a", NewExpr().Add(x, 1), LE, 1)
	p.AddConstraint("b", NewExpr().Add(x, 1), GE, 2)
	sol := mustSolve(t, p)
	if sol.Status != StatusInfeasible {
		t.Fatalf("status=%v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem("unbounded", Maximize)
	x := p.AddVar("x", 0, Inf)
	p.SetObj(x, 1)
	p.AddConstraint("floor", NewExpr().Add(x, 1), GE, 1)
	sol := mustSolve(t, p)
	if sol.Status != StatusUnbounded {
		t.Fatalf("status=%v, want unbounded", sol.Status)
	}
}

func TestDegenerate(t *testing.T) {
	// Multiple constraints meeting at the optimum; classic cycling-prone form.
	p := NewProblem("degenerate", Maximize)
	x := p.AddVar("x", 0, Inf)
	y := p.AddVar("y", 0, Inf)
	p.SetObj(x, 1)
	p.SetObj(y, 1)
	p.AddConstraint("a", NewExpr().Add(x, 1).Add(y, 1), LE, 1)
	p.AddConstraint("b", NewExpr().Add(x, 1), LE, 1)
	p.AddConstraint("c", NewExpr().Add(y, 1), LE, 1)
	p.AddConstraint("d", NewExpr().Add(x, 2).Add(y, 1), LE, 2)
	sol := requireOptimal(t, p)
	if !almost(sol.Objective, 1) {
		t.Fatalf("obj=%v, want 1", sol.Objective)
	}
}

func TestRepeatedTermsAreSummed(t *testing.T) {
	p := NewProblem("dup-terms", Maximize)
	x := p.AddVar("x", 0, Inf)
	p.SetObj(x, 1)
	// 0.5x + 0.5x <= 3  =>  x <= 3.
	p.AddConstraint("c", NewExpr().Add(x, 0.5).Add(x, 0.5), LE, 3)
	sol := requireOptimal(t, p)
	if !almost(sol.X[x], 3) {
		t.Fatalf("x=%v, want 3", sol.X[x])
	}
}

func TestBoundOverride(t *testing.T) {
	p := NewProblem("override", Maximize)
	x := p.AddVar("x", 0, 10)
	p.SetObj(x, 1)
	sol, err := p.SolveWith(SolveOptions{BoundOverride: map[VarID][2]float64{x: {0, 4}}})
	if err != nil || sol.Status != StatusOptimal {
		t.Fatalf("err=%v status=%v", err, sol.Status)
	}
	if !almost(sol.X[x], 4) {
		t.Fatalf("x=%v, want 4 under override", sol.X[x])
	}
	// The problem itself must be untouched.
	if lo, hi := p.Bounds(x); lo != 0 || hi != 10 {
		t.Fatalf("bounds mutated to [%v,%v]", lo, hi)
	}
	sol2 := requireOptimal(t, p)
	if !almost(sol2.X[x], 10) {
		t.Fatalf("x=%v after override removed, want 10", sol2.X[x])
	}
}

func TestFixedVariableViaOverride(t *testing.T) {
	p := NewProblem("fix", Maximize)
	x := p.AddVar("x", 0, 10)
	y := p.AddVar("y", 0, 10)
	p.SetObj(x, 1)
	p.SetObj(y, 1)
	p.AddConstraint("c", NewExpr().Add(x, 1).Add(y, 1), LE, 12)
	sol, err := p.SolveWith(SolveOptions{BoundOverride: map[VarID][2]float64{x: {0, 0}}})
	if err != nil || sol.Status != StatusOptimal {
		t.Fatalf("err=%v status=%v", err, sol.Status)
	}
	if !almost(sol.X[x], 0) || !almost(sol.X[y], 10) {
		t.Fatalf("x=%v y=%v, want 0/10", sol.X[x], sol.X[y])
	}
}

func TestClone(t *testing.T) {
	p := NewProblem("orig", Maximize)
	x := p.AddVar("x", 0, 5)
	p.SetObj(x, 1)
	p.AddConstraint("c", NewExpr().Add(x, 1), LE, 3)
	q := p.Clone()
	q.SetBounds(x, 0, 1)
	q.AddConstraint("extra", NewExpr().Add(x, 1), GE, 0)
	if p.NumConstraints() != 1 {
		t.Fatalf("clone mutation leaked into original")
	}
	sol := requireOptimal(t, p)
	if !almost(sol.X[x], 3) {
		t.Fatalf("x=%v, want 3", sol.X[x])
	}
}

func TestNegativeRHS(t *testing.T) {
	// -x <= -4 is x >= 4.
	p := NewProblem("negrhs", Minimize)
	x := p.AddVar("x", 0, Inf)
	p.SetObj(x, 1)
	p.AddConstraint("c", NewExpr().Add(x, -1), LE, -4)
	sol := requireOptimal(t, p)
	if !almost(sol.X[x], 4) {
		t.Fatalf("x=%v, want 4", sol.X[x])
	}
}

func TestStrongDualityOnTransport(t *testing.T) {
	// Small transportation problem: 2 sources (supply 20, 30),
	// 3 sinks (demand 10, 25, 15), costs c[i][j].
	cost := [2][3]float64{{8, 6, 10}, {9, 12, 13}}
	supply := [2]float64{20, 30}
	demand := [3]float64{10, 25, 15}
	p := NewProblem("transport", Minimize)
	var xs [2][3]VarID
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			v := p.AddVar("x", 0, Inf)
			p.SetObj(v, cost[i][j])
			xs[i][j] = v
		}
	}
	for i := 0; i < 2; i++ {
		e := NewExpr()
		for j := 0; j < 3; j++ {
			e = e.Add(xs[i][j], 1)
		}
		p.AddConstraint("supply", e, LE, supply[i])
	}
	for j := 0; j < 3; j++ {
		e := NewExpr()
		for i := 0; i < 2; i++ {
			e = e.Add(xs[i][j], 1)
		}
		p.AddConstraint("demand", e, GE, demand[j])
	}
	sol := requireOptimal(t, p)
	// Primal feasibility.
	for i := 0; i < 2; i++ {
		tot := 0.0
		for j := 0; j < 3; j++ {
			tot += sol.X[xs[i][j]]
		}
		if tot > supply[i]+testEps {
			t.Fatalf("supply %d violated: %v > %v", i, tot, supply[i])
		}
	}
	// Strong duality: obj == y'b over all rows.
	dualObj := 0.0
	rhs := []float64{20, 30, 10, 25, 15}
	for i, y := range sol.Dual {
		dualObj += y * rhs[i]
	}
	if !almost(sol.Objective, dualObj) {
		t.Fatalf("strong duality violated: primal=%v dual=%v (duals %v)",
			sol.Objective, dualObj, sol.Dual)
	}
}

func TestSolutionStringer(t *testing.T) {
	s := &Solution{Status: StatusOptimal, Objective: 1.5, Iterations: 3}
	if got := s.String(); got == "" {
		t.Fatal("empty String()")
	}
}

func TestSenseAndRelStrings(t *testing.T) {
	if Minimize.String() != "minimize" || Maximize.String() != "maximize" {
		t.Fatal("Sense.String broken")
	}
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "==" {
		t.Fatal("Rel.String broken")
	}
	for _, st := range []Status{StatusOptimal, StatusInfeasible, StatusUnbounded, StatusIterLimit} {
		if st.String() == "" {
			t.Fatal("Status.String broken")
		}
	}
}

func TestAddVarPanicsOnBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for lo > hi")
		}
	}()
	p := NewProblem("bad", Minimize)
	p.AddVar("x", 2, 1)
}

func TestExprEval(t *testing.T) {
	e := NewExpr().Add(0, 2).Add(1, -1)
	if got := e.Eval([]float64{3, 4}); !almost(got, 2) {
		t.Fatalf("eval=%v, want 2", got)
	}
	e2 := NewExpr().AddExpr(e, 2)
	if got := e2.Eval([]float64{3, 4}); !almost(got, 4) {
		t.Fatalf("scaled eval=%v, want 4", got)
	}
}
