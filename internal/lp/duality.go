package lp

import (
	"fmt"
	"math"
)

// dualityTol is the reduced-cost magnitude below which a variable is treated
// as having no bound contribution, so a free variable with numerically-zero
// reduced cost does not spuriously fail DualObjective.
const dualityTol = 1e-7

// DualObjective evaluates the dual objective implied by sol.Dual against the
// problem data, in the problem's own sense:
//
//	dual = sum_i y_i*rhs_i + sum_j d_j*b_j
//
// where d_j = c_j - sum_i y_i*a_ij is the reduced cost of variable j and b_j
// is the variable bound its sign makes active (for Maximize the dual
// relaxation pays hi_j when d_j > 0 and lo_j when d_j < 0; Minimize flips).
// By LP strong duality an optimal solution satisfies
// DualObjective == sol.Objective, so the pair (primal simplex answer, dual
// multipliers) is a self-checking certificate: any silent pivoting or
// pricing bug breaks the equality. It returns an error if a needed bound is
// infinite while the reduced cost is meaningfully nonzero — that means the
// multipliers do not certify the claimed objective at all.
func (p *Problem) DualObjective(sol *Solution) (float64, error) {
	if sol == nil || len(sol.Dual) != len(p.cons) {
		return 0, fmt.Errorf("lp: %s: solution carries %d duals, want %d",
			p.Name, len(sol.Dual), len(p.cons))
	}
	// Reduced costs: d = c - A'y, accumulating repeated terms like the
	// solver does.
	d := make([]float64, len(p.vars))
	for j, v := range p.vars {
		d[j] = v.obj
	}
	dual := 0.0
	for i, c := range p.cons {
		y := sol.Dual[i]
		dual += y * c.rhs
		if y == 0 {
			continue
		}
		for _, t := range c.expr.Terms {
			d[t.Var] -= y * t.Coef
		}
	}
	for j, v := range p.vars {
		if math.Abs(d[j]) <= dualityTol {
			continue
		}
		b := v.lo
		if (p.sense == Minimize) != (d[j] > 0) {
			b = v.hi
		}
		if math.IsInf(b, 0) {
			return 0, fmt.Errorf("lp: %s: variable %q has reduced cost %g but its certifying bound is infinite",
				p.Name, v.name, d[j])
		}
		dual += d[j] * b
	}
	return dual, nil
}
