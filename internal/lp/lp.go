// Package lp provides a linear-programming model and a dense two-phase
// primal simplex solver built entirely on the standard library.
//
// The package plays the role Gurobi's LP core plays in the paper: every
// inner problem (OptMaxFlow, DemandPinning, POP partitions) and every
// branch-and-bound node of the meta optimization is solved through it.
//
// A Problem is built incrementally from variables (with lower/upper bounds,
// possibly infinite) and linear constraints (<=, >=, ==). Solve converts the
// problem to standard computational form (minimize c'x, Ax = b, x >= 0),
// runs phase-1/phase-2 simplex, and maps the result back, including dual
// values for every user constraint.
package lp

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/obs"
)

// Sense is the optimization direction of a Problem.
type Sense int

const (
	// Minimize asks for the smallest objective value.
	Minimize Sense = iota
	// Maximize asks for the largest objective value.
	Maximize
)

func (s Sense) String() string {
	if s == Maximize {
		return "maximize"
	}
	return "minimize"
}

// Rel is the relation of a linear constraint.
type Rel int

const (
	// LE is "less than or equal".
	LE Rel = iota
	// GE is "greater than or equal".
	GE
	// EQ is "equal".
	EQ
)

func (r Rel) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	default:
		return "=="
	}
}

// Inf is positive infinity, usable as a variable bound.
var Inf = math.Inf(1)

// VarID identifies a variable within a Problem.
type VarID int

// ConID identifies a constraint within a Problem.
type ConID int

// Term is one coefficient*variable entry of a linear expression.
type Term struct {
	Var  VarID
	Coef float64
}

// Expr is a linear expression: a sum of terms. The zero value is the empty
// expression. Expressions are value types; Add returns the receiver to allow
// chaining but mutates in place for efficiency.
type Expr struct {
	Terms []Term
}

// NewExpr returns an expression holding the given terms.
func NewExpr(terms ...Term) Expr { return Expr{Terms: terms} }

// Add appends coef*v to the expression and returns it.
func (e Expr) Add(v VarID, coef float64) Expr {
	e.Terms = append(e.Terms, Term{Var: v, Coef: coef})
	return e
}

// AddExpr appends all terms of o (scaled by scale) and returns the result.
func (e Expr) AddExpr(o Expr, scale float64) Expr {
	for _, t := range o.Terms {
		e.Terms = append(e.Terms, Term{Var: t.Var, Coef: t.Coef * scale})
	}
	return e
}

// Eval computes the value of the expression under assignment x.
func (e Expr) Eval(x []float64) float64 {
	s := 0.0
	for _, t := range e.Terms {
		s += t.Coef * x[t.Var]
	}
	return s
}

type varInfo struct {
	name string
	lo   float64
	hi   float64
	obj  float64
}

type conInfo struct {
	name string
	expr Expr
	rel  Rel
	rhs  float64
}

// Problem is a linear program under construction. Not safe for concurrent
// mutation; Solve does not mutate the problem and may be called from multiple
// goroutines on the same Problem.
type Problem struct {
	Name  string
	sense Sense
	vars  []varInfo
	cons  []conInfo
}

// NewProblem returns an empty problem with the given name and sense.
func NewProblem(name string, sense Sense) *Problem {
	return &Problem{Name: name, sense: sense}
}

// Sense reports the optimization direction.
func (p *Problem) Sense() Sense { return p.sense }

// NumVars reports the number of variables added so far.
func (p *Problem) NumVars() int { return len(p.vars) }

// NumConstraints reports the number of constraints added so far.
func (p *Problem) NumConstraints() int { return len(p.cons) }

// AddVar adds a variable with bounds [lo, hi] and zero objective coefficient.
// Use -Inf/+Inf for unbounded sides. It panics if lo > hi.
func (p *Problem) AddVar(name string, lo, hi float64) VarID {
	if lo > hi {
		panic(fmt.Sprintf("lp: variable %q has lo %g > hi %g", name, lo, hi))
	}
	p.vars = append(p.vars, varInfo{name: name, lo: lo, hi: hi})
	return VarID(len(p.vars) - 1)
}

// SetObj sets the objective coefficient of v, replacing any previous value.
func (p *Problem) SetObj(v VarID, coef float64) { p.vars[v].obj = coef }

// Obj returns the objective coefficient of v.
func (p *Problem) Obj(v VarID) float64 { return p.vars[v].obj }

// VarName returns the name of v.
func (p *Problem) VarName(v VarID) string { return p.vars[v].name }

// Bounds returns the bounds of v.
func (p *Problem) Bounds(v VarID) (lo, hi float64) { return p.vars[v].lo, p.vars[v].hi }

// SetBounds replaces the bounds of v. It panics if lo > hi.
func (p *Problem) SetBounds(v VarID, lo, hi float64) {
	if lo > hi {
		panic(fmt.Sprintf("lp: variable %q set lo %g > hi %g", p.vars[v].name, lo, hi))
	}
	p.vars[v].lo, p.vars[v].hi = lo, hi
}

// AddConstraint adds the constraint expr rel rhs and returns its id.
// Terms referencing the same variable are summed during solving.
func (p *Problem) AddConstraint(name string, expr Expr, rel Rel, rhs float64) ConID {
	p.cons = append(p.cons, conInfo{name: name, expr: expr, rel: rel, rhs: rhs})
	return ConID(len(p.cons) - 1)
}

// ConName returns the name of c.
func (p *Problem) ConName(c ConID) string { return p.cons[c].name }

// Constraint returns the expression, relation and right-hand side of c.
func (p *Problem) Constraint(c ConID) (Expr, Rel, float64) {
	ci := p.cons[c]
	return ci.expr, ci.rel, ci.rhs
}

// Clone returns a deep copy of the problem. Constraint expressions are
// copied so the clone can be mutated independently.
func (p *Problem) Clone() *Problem {
	q := &Problem{Name: p.Name, sense: p.sense}
	q.vars = append([]varInfo(nil), p.vars...)
	q.cons = make([]conInfo, len(p.cons))
	for i, c := range p.cons {
		cc := c
		cc.expr.Terms = append([]Term(nil), c.expr.Terms...)
		q.cons[i] = cc
	}
	return q
}

// Status reports the outcome of a solve.
type Status int

const (
	// StatusOptimal means an optimal solution was found.
	StatusOptimal Status = iota
	// StatusInfeasible means no feasible point exists.
	StatusInfeasible
	// StatusUnbounded means the objective is unbounded in the problem's sense.
	StatusUnbounded
	// StatusIterLimit means the iteration cap was hit before convergence.
	StatusIterLimit
	// StatusDeadline means SolveOptions.Deadline passed before convergence.
	// It is deliberately distinct from StatusIterLimit so callers can tell a
	// timed-out solve (the whole search is out of wall clock) from a node
	// that merely exhausted its pivot budget.
	StatusDeadline
	// StatusInterrupted means SolveOptions.Ctx was cancelled before
	// convergence (operator signal or a parent search shutting down). Like
	// StatusDeadline it carries effort counters only — no point, no duals.
	StatusInterrupted
)

func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	case StatusDeadline:
		return "deadline"
	case StatusInterrupted:
		return "interrupted"
	default:
		return "iteration-limit"
	}
}

// Solution is the result of solving a Problem.
//
// Contract: X, Dual and Objective are populated only when Status is
// StatusOptimal. On every other status — StatusInfeasible, StatusUnbounded,
// StatusIterLimit, StatusDeadline, StatusInterrupted — X and Dual are nil
// and Objective is zero; only the Status and the effort counters are
// meaningful. Callers must nil-check X/Dual before indexing into them on
// non-optimal solves.
type Solution struct {
	Status    Status
	Objective float64   // in the problem's own sense; valid only when optimal
	X         []float64 // one value per variable, in AddVar order; nil unless optimal
	// Dual holds one multiplier per user constraint such that, at optimality,
	// Objective == sum(Dual[i]*rhs[i]) + contributions of finite variable
	// bounds. Signs follow the convention: for Maximize, duals of LE rows are
	// >= 0 and duals of GE rows are <= 0; for Minimize the signs flip.
	// Nil unless Status is StatusOptimal.
	Dual       []float64
	Iterations int
	// Phase1Iterations is how many of Iterations were spent restoring
	// feasibility (phase 1); zero when the crash basis was already feasible.
	Phase1Iterations int
	// DegeneratePivots counts pivots that did not improve the phase
	// objective — the solver's stalling indicator.
	DegeneratePivots int
	// Basis is an opaque snapshot of the terminal simplex basis, populated
	// only when SolveOptions.CaptureBasis is set and the solve ended
	// StatusOptimal. Hand it to a later solve of the same Problem (with
	// different BoundOverride) through SolveOptions.WarmStart. A Basis is
	// immutable and safe to share across goroutines.
	Basis *Basis
	// Warm reports that the solve was completed by the warm-start path
	// (basis reinstall plus dual-simplex repair) rather than the cold
	// two-phase method.
	Warm bool
	// WarmFallback reports that a warm start was requested but the solve
	// fell back to the cold path (incompatible standard-form structure,
	// singular basis, lost dual feasibility, or a repair that failed to
	// converge). The result is then exactly the cold solve's.
	WarmFallback bool
	// EngineUsed is the engine that produced this solution after resolving
	// EngineAuto and any sparse-to-dense fallback.
	EngineUsed Engine
	// SparseFallback reports that the sparse engine was requested but an
	// internal numerical failure (singular refactorization the eta file
	// could not absorb) handed the solve to the dense engine. The result is
	// then exactly the dense solve's.
	SparseFallback bool
	// PresolveRows and PresolveCols count the constraint rows and variable
	// columns eliminated by the presolve pass (zero when SolveOptions.
	// Presolve was off or nothing reduced). X and Dual are always reported
	// in the original problem's spaces regardless.
	PresolveRows int
	PresolveCols int
}

// String renders the solution compactly for debugging.
func (s *Solution) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "status=%s obj=%.6g iters=%d", s.Status, s.Objective, s.Iterations)
	return b.String()
}

// SolveOptions tunes the simplex solver. The zero value selects defaults.
type SolveOptions struct {
	// MaxIters caps the total simplex pivots across both phases.
	// 0 selects a size-dependent default.
	MaxIters int
	// BoundOverride, if non-nil, replaces the bounds of select variables for
	// this solve only, leaving the Problem unmodified. Used by branch and
	// bound to fix variables without cloning the constraint matrix.
	BoundOverride map[VarID][2]float64
	// Deadline, when non-zero, aborts the solve (StatusDeadline) once the
	// wall clock passes it; checked every few hundred pivots.
	Deadline time.Time
	// Ctx, when non-nil, is polled on the same cadence as Deadline; once it
	// is cancelled the solve aborts with StatusInterrupted. Cancellation is
	// cooperative: the solver finishes its current pivot first, so the
	// tableau is never torn.
	Ctx context.Context
	// CaptureBasis asks the solver to snapshot the terminal basis into
	// Solution.Basis on optimal solves, for use as a later WarmStart. Off by
	// default: the snapshot allocates one int32 per row.
	CaptureBasis bool
	// WarmStart, if non-nil, is a Basis captured from a previous solve of
	// the same Problem (typically the parent node of a branch-and-bound
	// tree, whose BoundOverride differs only in the fixed variables). The
	// solver reinstalls the basis against this solve's overrides and repairs
	// primal feasibility with a dual-simplex phase; whenever the basis is
	// structurally incompatible or the repair fails it falls back to the
	// cold two-phase solve, so the answer never depends on whether a warm
	// start was attempted — only the iteration counters do.
	WarmStart *Basis
	// Tracer, when non-nil, receives a KindLPSolveStart/KindLPSolveEnd pair
	// bracketing the solve, with pivot and degeneracy counts on the end
	// event. Branch and bound deliberately does not forward its tracer
	// here: node relaxations run on concurrent workers, so milp emits its
	// LP events on the coordinator in deterministic apply order instead.
	Tracer *obs.Tracer
	// Engine selects the simplex implementation. EngineAuto (the zero
	// value) resolves to the process default — the dense tableau unless
	// SetDefaultEngine or REPRO_LP_ENGINE says otherwise. Both engines
	// return identical answers; see Engine.
	Engine Engine
	// Pricing selects the sparse engine's entering-column rule; the dense
	// engine ignores it. PricingAuto/PricingDantzig reproduce the dense
	// pivot sequence; PricingDevex trades that parity for fewer pivots.
	Pricing Pricing
	// Presolve runs the Andersen-style reduction pass (empty/singleton row
	// elimination, fixed and empty column removal, redundant-row removal,
	// singleton-row bound tightening) before the simplex and maps the
	// answer back to the original spaces afterwards. Off by default. A
	// presolved solve returns the same status and objective as an
	// unpresolved one and duals that certify it (DualObjective), but on a
	// degenerate optimal face it may legitimately report a different
	// optimal vertex — so the warm-start transplant and the canonical
	// cold==warm vertex contract apply within a fixed Presolve setting,
	// not across them. When a WarmStart basis is supplied, Presolve is
	// skipped for that solve: the snapshot is pinned to the unreduced
	// standard form, and warm continuity is worth more than the reduction.
	Presolve bool
}

// Solve solves the problem with default options.
//
//gapvet:allow tracecover zero-options convenience wrapper; SolveWith accepts the tracer
func (p *Problem) Solve() (*Solution, error) { return p.SolveWith(SolveOptions{}) }
