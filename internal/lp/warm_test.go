package lp

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// warmChild solves p with the given overrides twice — cold and warm from
// parentBasis — and asserts the observable outcome (status, objective, point,
// duals) is identical within tolerance. It returns the two solutions.
func warmChild(t *testing.T, p *Problem, parentBasis *Basis,
	ov map[VarID][2]float64) (cold, warm *Solution) {
	t.Helper()
	cold, err := p.SolveWith(SolveOptions{BoundOverride: ov})
	if err != nil {
		t.Fatalf("cold child solve: %v", err)
	}
	warm, err = p.SolveWith(SolveOptions{BoundOverride: ov, WarmStart: parentBasis})
	if err != nil {
		t.Fatalf("warm child solve: %v", err)
	}
	if warm.Status != cold.Status {
		t.Fatalf("status diverged: warm %v vs cold %v", warm.Status, cold.Status)
	}
	if cold.Status != StatusOptimal {
		return cold, warm
	}
	tol := 1e-6 * (1 + math.Abs(cold.Objective))
	if math.Abs(warm.Objective-cold.Objective) > tol {
		t.Fatalf("objective diverged: warm %v vs cold %v (warm=%v fallback=%v)",
			warm.Objective, cold.Objective, warm.Warm, warm.WarmFallback)
	}
	// The warm point must satisfy the overridden bounds and every row; X and
	// Dual themselves may differ between alternate optimal bases, so the
	// objective (above) and feasibility are the right identity checks.
	// (DualObjective certifies against the Problem's own bounds, which the
	// override replaces — it is not a valid oracle here.)
	checkFeasible := func(sol *Solution) {
		for j := 0; j < p.NumVars(); j++ {
			lo, hi := p.Bounds(VarID(j))
			if b, ok := ov[VarID(j)]; ok {
				lo, hi = b[0], b[1]
			}
			if sol.X[j] < lo-1e-6 || sol.X[j] > hi+1e-6 {
				t.Fatalf("warm=%v: var %d=%v out of [%v,%v]", sol.Warm, j, sol.X[j], lo, hi)
			}
		}
		for ci := 0; ci < p.NumConstraints(); ci++ {
			expr, rel, rhs := p.Constraint(ConID(ci))
			v := expr.Eval(sol.X)
			switch rel {
			case LE:
				if v > rhs+1e-5 {
					t.Fatalf("warm=%v: row %d violated: %v > %v", sol.Warm, ci, v, rhs)
				}
			case GE:
				if v < rhs-1e-5 {
					t.Fatalf("warm=%v: row %d violated: %v < %v", sol.Warm, ci, v, rhs)
				}
			case EQ:
				if math.Abs(v-rhs) > 1e-5 {
					t.Fatalf("warm=%v: row %d violated: %v != %v", sol.Warm, ci, v, rhs)
				}
			}
		}
	}
	checkFeasible(cold)
	checkFeasible(warm)
	return cold, warm
}

// TestWarmCaptureOnlyWhenRequested pins the snapshot contract: Basis is nil
// unless CaptureBasis is set, and non-nil (with one basic column per row of
// the standard form) when it is.
func TestWarmCaptureOnlyWhenRequested(t *testing.T) {
	p, _ := randomLP(rand.New(rand.NewSource(1)), 4, 4)
	sol, err := p.Solve()
	if err != nil || sol.Status != StatusOptimal {
		t.Fatalf("solve: %v %v", err, sol.Status)
	}
	if sol.Basis != nil {
		t.Fatalf("Basis captured without CaptureBasis")
	}
	sol, err = p.SolveWith(SolveOptions{CaptureBasis: true})
	if err != nil || sol.Status != StatusOptimal {
		t.Fatalf("solve: %v %v", err, sol.Status)
	}
	if sol.Basis == nil || sol.Basis.NumBasic() == 0 {
		t.Fatalf("CaptureBasis produced no snapshot")
	}
}

// TestWarmFixedUnboundedVarStaysFixed exercises the column-blocking path: a
// variable with an infinite upper bound is basic (positive) in the parent and
// then fixed to [0,0] in the child — exactly what branch-and-bound's
// complementarity branching does. The warm solve must keep it at zero and
// agree with the cold solve.
func TestWarmFixedUnboundedVarStaysFixed(t *testing.T) {
	p := NewProblem("fix", Maximize)
	u := p.AddVar("u", 0, Inf)
	v := p.AddVar("v", 0, Inf)
	w := p.AddVar("w", 0, 6)
	p.SetObj(u, 3)
	p.SetObj(v, 2)
	p.SetObj(w, 1)
	p.AddConstraint("cap", NewExpr().Add(u, 1).Add(v, 1).Add(w, 1), LE, 10)
	p.AddConstraint("mix", NewExpr().Add(u, 1).Add(v, -1), LE, 4)

	parent, err := p.SolveWith(SolveOptions{CaptureBasis: true})
	if err != nil || parent.Status != StatusOptimal {
		t.Fatalf("parent: %v %v", err, parent.Status)
	}
	if parent.X[u] <= 1 {
		t.Fatalf("test premise broken: u=%v not basic-positive in parent", parent.X[u])
	}
	ov := map[VarID][2]float64{u: {0, 0}}
	cold, warm := warmChild(t, p, parent.Basis, ov)
	if !warm.Warm {
		t.Fatalf("warm path not taken (fallback=%v); the blocking rule should make the parent basis transplantable", warm.WarmFallback)
	}
	if math.Abs(warm.X[u]) > 1e-7 || math.Abs(cold.X[u]) > 1e-7 {
		t.Fatalf("fixed variable moved: warm u=%v cold u=%v", warm.X[u], cold.X[u])
	}
	if math.Abs(warm.X[v]-cold.X[v]) > 1e-6 || math.Abs(warm.X[w]-cold.X[w]) > 1e-6 {
		t.Fatalf("points diverged: warm (%v,%v) cold (%v,%v)", warm.X[v], warm.X[w], cold.X[v], cold.X[w])
	}
}

// TestWarmMatchesColdRandom sweeps random LPs: capture the parent basis, fix
// a random subset of variables at their parent values (bounded vars, so the
// child differs only in upper-row right-hand sides and shifts), and require
// warm and cold child solves to agree. At least some of the children must
// actually complete on the warm path — otherwise the test is vacuous.
func TestWarmMatchesColdRandom(t *testing.T) {
	warmUsed := 0
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p, _ := randomLP(rng, 2+rng.Intn(6), 2+rng.Intn(6))
		parent, err := p.SolveWith(SolveOptions{CaptureBasis: true})
		if err != nil {
			t.Fatalf("seed %d parent: %v", seed, err)
		}
		if parent.Status != StatusOptimal {
			continue
		}
		ov := map[VarID][2]float64{}
		for j := 0; j < p.NumVars(); j++ {
			if rng.Float64() < 0.4 {
				val := math.Max(0, parent.X[j])
				ov[VarID(j)] = [2]float64{val, val}
			}
		}
		if len(ov) == 0 {
			ov[VarID(0)] = [2]float64{0, 0}
		}
		_, warm := warmChild(t, p, parent.Basis, ov)
		if warm.Warm {
			warmUsed++
		}
	}
	if warmUsed == 0 {
		t.Fatalf("warm path never completed a child solve across the sweep")
	}
	t.Logf("warm path completed %d child solves", warmUsed)
}

// TestWarmStructureMismatchFallsBack hands a basis from a differently-shaped
// problem to the solver: it must ignore it (signature mismatch), answer via
// the cold path, and mark the solution as a fallback.
func TestWarmStructureMismatchFallsBack(t *testing.T) {
	a, _ := randomLP(rand.New(rand.NewSource(3)), 5, 5)
	b, _ := randomLP(rand.New(rand.NewSource(4)), 3, 6)
	solA, err := a.SolveWith(SolveOptions{CaptureBasis: true})
	if err != nil || solA.Status != StatusOptimal {
		t.Fatalf("a: %v %v", err, solA.Status)
	}
	cold, err := b.Solve()
	if err != nil {
		t.Fatal(err)
	}
	warm, err := b.SolveWith(SolveOptions{WarmStart: solA.Basis})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Warm || !warm.WarmFallback {
		t.Fatalf("foreign basis accepted: warm=%v fallback=%v", warm.Warm, warm.WarmFallback)
	}
	if warm.Status != cold.Status || math.Abs(warm.Objective-cold.Objective) > 1e-9 {
		t.Fatalf("fallback result differs from cold: %v/%v vs %v/%v",
			warm.Status, warm.Objective, cold.Status, cold.Objective)
	}
}

// TestWarmRepeatSolveIsPivotFree re-solves the identical problem from its own
// terminal basis: the dual repair has nothing to do, so the warm solve must
// succeed with zero iterations.
func TestWarmRepeatSolveIsPivotFree(t *testing.T) {
	p, _ := randomLP(rand.New(rand.NewSource(9)), 6, 6)
	parent, err := p.SolveWith(SolveOptions{CaptureBasis: true})
	if err != nil || parent.Status != StatusOptimal {
		t.Fatalf("parent: %v %v", err, parent.Status)
	}
	again, err := p.SolveWith(SolveOptions{WarmStart: parent.Basis})
	if err != nil {
		t.Fatal(err)
	}
	if !again.Warm {
		t.Fatalf("identical re-solve fell back to cold")
	}
	if again.Iterations != 0 {
		t.Fatalf("identical re-solve took %d pivots, want 0", again.Iterations)
	}
	if math.Abs(again.Objective-parent.Objective) > 1e-9 {
		t.Fatalf("objective drifted on re-solve: %v vs %v", again.Objective, parent.Objective)
	}
}

// TestWarmDeadline checks the warm path honors an expired deadline with
// StatusDeadline and a nil point, like the cold path.
func TestWarmDeadline(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	p, _ := randomLP(rng, 8, 8)
	parent, err := p.SolveWith(SolveOptions{CaptureBasis: true})
	if err != nil || parent.Status != StatusOptimal {
		t.Fatalf("parent: %v %v", err, parent.Status)
	}
	sol, err := p.SolveWith(SolveOptions{
		WarmStart: parent.Basis,
		Deadline:  time.Now().Add(-time.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusDeadline {
		t.Fatalf("status=%v, want deadline", sol.Status)
	}
	if sol.X != nil || sol.Dual != nil {
		t.Fatalf("X/Dual must be nil on deadline per the Solution contract")
	}
}

// dualCheckProblem builds one LP whose duals are known in closed form:
//
//	max 5x + 4y
//	s.t.  x + y == 4      (EQ row, dual 4)
//	      x - y >= -2     (GE row with negative rhs => the builder flips it)
//	     -x     >= -3     (upper bound written as a flipped GE row, dual 1)
//
// Optimum at x=3, y=1: objective 19. Duals follow the package convention (for
// Maximize, GE rows have duals <= 0): EQ row 4 (rhs 4->5 moves the optimum
// 19->23), the slack GE row 0 (x-y = 2 > -2), the binding -x >= -3 row -1
// (rhs -3->-2 tightens x <= 2, optimum 19->18).
func dualCheckProblem() (*Problem, VarID, VarID) {
	p := NewProblem("dualcheck", Maximize)
	x := p.AddVar("x", 0, Inf)
	y := p.AddVar("y", 0, Inf)
	p.SetObj(x, 5)
	p.SetObj(y, 4)
	p.AddConstraint("eq", NewExpr().Add(x, 1).Add(y, 1), EQ, 4)
	p.AddConstraint("ge-neg", NewExpr().Add(x, 1).Add(y, -1), GE, -2)
	p.AddConstraint("cap", NewExpr().Add(x, -1), GE, -3)
	return p, x, y
}

// TestRowUnitDualsEQGEFlipped is the regression for the rowUnit sentinel fix:
// with 0 as the "unset" marker, a row whose unit column genuinely is column 0
// was indistinguishable from an unset row. The closed-form instance below
// exercises EQ rows, GE rows, and rows the builder flips for a negative rhs,
// and pins the exact dual values.
func TestRowUnitDualsEQGEFlipped(t *testing.T) {
	p, x, y := dualCheckProblem()
	sol, err := p.Solve()
	if err != nil || sol.Status != StatusOptimal {
		t.Fatalf("solve: %v %v", err, sol.Status)
	}
	if math.Abs(sol.X[x]-3) > 1e-7 || math.Abs(sol.X[y]-1) > 1e-7 {
		t.Fatalf("point (%v,%v), want (3,1)", sol.X[x], sol.X[y])
	}
	if math.Abs(sol.Objective-19) > 1e-7 {
		t.Fatalf("objective %v, want 19", sol.Objective)
	}
	want := []float64{4, 0, -1}
	for i, w := range want {
		if math.Abs(sol.Dual[i]-w) > 1e-7 {
			t.Fatalf("dual[%d]=%v, want %v (all: %v)", i, sol.Dual[i], w, sol.Dual)
		}
	}
	// And the generic certificate agrees.
	dual, err := p.DualObjective(sol)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dual-19) > 1e-7 {
		t.Fatalf("dual objective %v, want 19", dual)
	}
}

// TestRowUnitDualsRandomEQGE cross-checks the dual read-off on random
// EQ/GE-heavy instances via strong duality — the property that broke when
// rowUnit's sentinel collided with column 0.
func TestRowUnitDualsRandomEQGE(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed ^ 0xd0a1))
		nVars := 2 + rng.Intn(5)
		p := NewProblem("eqge", Minimize)
		x0 := make([]float64, nVars)
		vars := make([]VarID, nVars)
		for j := range vars {
			x0[j] = rng.Float64() * 5
			vars[j] = p.AddVar("x", 0, 15)
			p.SetObj(vars[j], rng.Float64()*3)
		}
		nRows := 1 + rng.Intn(4)
		for i := 0; i < nRows; i++ {
			e := NewExpr()
			lhs := 0.0
			for j := 0; j < nVars; j++ {
				coef := rng.Float64()*4 - 2 // mixed signs => some rows get flipped
				e = e.Add(vars[j], coef)
				lhs += coef * x0[j]
			}
			if rng.Float64() < 0.5 {
				p.AddConstraint("eq", e, EQ, lhs)
			} else {
				p.AddConstraint("ge", e, GE, lhs-rng.Float64())
			}
		}
		sol, err := p.Solve()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if sol.Status != StatusOptimal {
			t.Fatalf("seed %d: status %v on feasible-by-construction LP", seed, sol.Status)
		}
		dual, err := p.DualObjective(sol)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if math.Abs(dual-sol.Objective) > 1e-5*(1+math.Abs(sol.Objective)) {
			t.Fatalf("seed %d: strong duality violated: primal %v dual %v",
				seed, sol.Objective, dual)
		}
	}
}
