package lp

// Devex pricing for the sparse engine (Forrest–Goldfarb reference-framework
// approximation of steepest edge). The default Dantzig rule reproduces the
// dense engine's pivot sequence; devex is the opt-in throughput rule for
// large degenerate LPs: it weighs each reduced cost by an approximate edge
// norm, so the walk takes fewer, better pivots. Answers are unchanged — the
// tiebreak phase still lands both engines on the same canonical vertex —
// only the pivot path (and so the iteration counters) differs.

// devexReset starts a fresh reference framework: every column weight 1.
// Called whenever the cost vector changes (resetCosts) and whenever the
// weights have grown past devexResetBound.
func (sp *sparseSolver) devexReset() {
	if sp.gamma == nil {
		sp.gamma = make([]float64, sp.s.n)
	}
	for j := range sp.gamma {
		sp.gamma[j] = 1
	}
}

// devexResetBound caps weight growth; beyond it the approximation has
// drifted too far from the current basis and the framework restarts.
const devexResetBound = 1e10

// priceDevex selects the entering column maximizing r_j²/γ_j over the
// negative-reduced-cost candidates, or -1 at optimality. Ascending scan with
// a strict maximum keeps the choice deterministic.
//
//gapvet:hotpath full column scan once per pivot under devex
func (sp *sparseSolver) priceDevex() int {
	best, bestScore := -1, 0.0
	for j := 0; j < sp.s.n; j++ {
		if sp.inBasis[j] || sp.blocked[j] {
			continue
		}
		r := sp.r[j]
		if r >= -optTol {
			continue
		}
		if score := r * r / sp.gamma[j]; score > bestScore {
			best, bestScore = j, score
		}
	}
	return best
}

// devexUpdate propagates the reference weights through the pivot (pr, pc),
// using the pivot row α already computed for the reduced-cost update. Called
// from pivotApply before the basis swap, so sp.basis[pr] is still the
// leaving column.
//
//gapvet:hotpath full column scan once per pivot under devex
func (sp *sparseSolver) devexUpdate(pr, pc int, invPiv float64) {
	if sp.gamma == nil {
		sp.devexReset()
	}
	gq := sp.gamma[pc]
	if gq < 1 {
		gq = 1
	}
	maxG := 0.0
	for j := 0; j < sp.s.n; j++ {
		if j == pc || sp.inBasis[j] || sp.blocked[j] {
			continue
		}
		aj := sp.alpha[j]
		if aj == 0 {
			continue
		}
		t := aj * invPiv
		if cand := t * t * gq; cand > sp.gamma[j] {
			sp.gamma[j] = cand
		}
		if sp.gamma[j] > maxG {
			maxG = sp.gamma[j]
		}
	}
	gl := gq * invPiv * invPiv
	if gl < 1 {
		gl = 1
	}
	sp.gamma[sp.basis[pr]] = gl
	if maxG > devexResetBound {
		sp.devexReset()
	}
}
