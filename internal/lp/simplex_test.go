package lp

import (
	"math/rand"
	"testing"
	"time"
)

// TestCrashBasisOnExplicitSlackForm exercises the singleton-column crash:
// KKT-style rows "a'x + s = b" with explicit slack variables must solve
// without phase-1 artificials dominating the work.
func TestCrashBasisOnExplicitSlackForm(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := NewProblem("slack-form", Maximize)
	n := 14
	xs := make([]VarID, n)
	for j := range xs {
		xs[j] = p.AddVar("x", 0, Inf)
		p.SetObj(xs[j], 1+rng.Float64())
	}
	for i := 0; i < 10; i++ {
		s := p.AddVar("s", 0, Inf) // explicit slack: singleton column
		e := NewExpr().Add(s, 1)
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.5 {
				e = e.Add(xs[j], 0.5+rng.Float64())
			}
		}
		p.AddConstraint("row", e, EQ, 5+rng.Float64()*20)
	}
	sol := requireOptimal(t, p)
	// Feasibility of the equality rows.
	for ci := 0; ci < p.NumConstraints(); ci++ {
		expr, _, rhs := p.Constraint(ConID(ci))
		if v := expr.Eval(sol.X); v < rhs-1e-5 || v > rhs+1e-5 {
			t.Fatalf("row %d: %v != %v", ci, v, rhs)
		}
	}
}

// TestCrashBasisRejectsNegativeSingleton: a singleton column with a negative
// coefficient (post-flip) cannot seed the basis; the artificial path must
// still produce the right answer.
func TestCrashBasisRejectsNegativeSingleton(t *testing.T) {
	p := NewProblem("neg-singleton", Minimize)
	x := p.AddVar("x", 0, Inf)
	y := p.AddVar("y", 0, Inf)
	p.SetObj(x, 1)
	p.SetObj(y, 1)
	// y appears once with coefficient -1: x - y = 3 => x = 3 + y.
	p.AddConstraint("eq", NewExpr().Add(x, 1).Add(y, -1), EQ, 3)
	sol := requireOptimal(t, p)
	if !almost(sol.X[x], 3) || !almost(sol.X[y], 0) {
		t.Fatalf("x=%v y=%v, want 3/0", sol.X[x], sol.X[y])
	}
}

func TestDeadlineAborts(t *testing.T) {
	// A big LP with an already-expired deadline must return quickly with
	// StatusDeadline — not StatusIterLimit, which callers treat as "this node
	// ran out of pivots", a recoverable per-node condition.
	rng := rand.New(rand.NewSource(7))
	p := NewProblem("deadline", Maximize)
	n := 60
	vars := make([]VarID, n)
	for j := range vars {
		vars[j] = p.AddVar("x", 0, 50)
		p.SetObj(vars[j], rng.Float64())
	}
	for i := 0; i < 60; i++ {
		e := NewExpr()
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.4 {
				e = e.Add(vars[j], rng.Float64())
			}
		}
		if len(e.Terms) > 0 {
			p.AddConstraint("c", e, LE, 10+rng.Float64()*50)
		}
	}
	sol, err := p.SolveWith(SolveOptions{Deadline: time.Now().Add(-time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusDeadline {
		t.Fatalf("status=%v, want deadline on expired deadline", sol.Status)
	}
	if sol.X != nil || sol.Dual != nil {
		t.Fatalf("X/Dual must be nil on a deadline abort per the Solution contract")
	}
}

func TestMaxItersReturnsIterLimit(t *testing.T) {
	p := NewProblem("cap", Maximize)
	x := p.AddVar("x", 0, Inf)
	y := p.AddVar("y", 0, Inf)
	p.SetObj(x, 1)
	p.SetObj(y, 1)
	p.AddConstraint("a", NewExpr().Add(x, 1).Add(y, 2), LE, 10)
	p.AddConstraint("b", NewExpr().Add(x, 2).Add(y, 1), LE, 10)
	sol, err := p.SolveWith(SolveOptions{MaxIters: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusIterLimit && sol.Status != StatusOptimal {
		t.Fatalf("status=%v", sol.Status)
	}
}

// TestLargeMaxFlowStyleLP solves a synthetic max-flow-shaped LP of the size
// the meta optimization produces per node, as a performance smoke test.
func TestLargeMaxFlowStyleLP(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p := NewProblem("large", Maximize)
	const flows = 300
	const caps = 60
	vars := make([]VarID, flows)
	for j := range vars {
		vars[j] = p.AddVar("f", 0, Inf)
		p.SetObj(vars[j], 1)
	}
	rows := make([]Expr, caps)
	for j := 0; j < flows; j++ {
		// Each flow crosses 2-4 capacity rows.
		k := 2 + rng.Intn(3)
		for c := 0; c < k; c++ {
			r := rng.Intn(caps)
			rows[r] = rows[r].Add(vars[j], 1)
		}
	}
	for r := range rows {
		if len(rows[r].Terms) > 0 {
			p.AddConstraint("cap", rows[r], LE, 100)
		}
	}
	for j := 0; j < flows; j += 1 {
		p.AddConstraint("dem", NewExpr().Add(vars[j], 1), LE, 30)
	}
	start := time.Now()
	sol := requireOptimal(t, p)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("large LP took %v", elapsed)
	}
	if sol.Objective <= 0 {
		t.Fatal("degenerate solution")
	}
}

// TestDualSignsMinimizeGE: for Minimize with GE rows duals are >= 0 under
// our documented convention... the convention says for Minimize the signs
// flip relative to Maximize: GE rows get >= 0 multipliers.
func TestDualSignsMinimizeGE(t *testing.T) {
	p := NewProblem("signs", Minimize)
	x := p.AddVar("x", 0, Inf)
	y := p.AddVar("y", 0, Inf)
	p.SetObj(x, 2)
	p.SetObj(y, 3)
	p.AddConstraint("c1", NewExpr().Add(x, 1).Add(y, 1), GE, 4)
	p.AddConstraint("c2", NewExpr().Add(y, 1), GE, 1)
	sol := requireOptimal(t, p)
	// Optimum: y=1 (forced), x=3 => obj 9. Duals: y1 from c1 = 2 (raising
	// rhs by 1 costs 2 more units of x), y2 = 1 (y costs 3, saves 2 via c1).
	if !almost(sol.Objective, 9) {
		t.Fatalf("obj=%v", sol.Objective)
	}
	if !almost(sol.Dual[0], 2) || !almost(sol.Dual[1], 1) {
		t.Fatalf("duals=%v, want [2 1]", sol.Dual)
	}
	// Strong duality.
	if !almost(sol.Dual[0]*4+sol.Dual[1]*1, sol.Objective) {
		t.Fatalf("strong duality violated")
	}
}

// TestBealeCycling solves Beale's classic cycling example; Dantzig pricing
// with textbook tie-breaking cycles forever on it, so this exercises the
// stall detection and Bland fallback.
func TestBealeCycling(t *testing.T) {
	// min -0.75x4 + 150x5 - 0.02x6 + 6x7
	// s.t. 0.25x4 - 60x5 - 0.04x6 + 9x7 <= 0
	//      0.5x4  - 90x5 - 0.02x6 + 3x7 <= 0
	//      x6 <= 1
	// Optimum: -0.05 at x4 = 0.04/0.8... known optimal objective -1/20.
	p := NewProblem("beale", Minimize)
	x4 := p.AddVar("x4", 0, Inf)
	x5 := p.AddVar("x5", 0, Inf)
	x6 := p.AddVar("x6", 0, Inf)
	x7 := p.AddVar("x7", 0, Inf)
	p.SetObj(x4, -0.75)
	p.SetObj(x5, 150)
	p.SetObj(x6, -0.02)
	p.SetObj(x7, 6)
	p.AddConstraint("r1", NewExpr().Add(x4, 0.25).Add(x5, -60).Add(x6, -1.0/25).Add(x7, 9), LE, 0)
	p.AddConstraint("r2", NewExpr().Add(x4, 0.5).Add(x5, -90).Add(x6, -1.0/50).Add(x7, 3), LE, 0)
	p.AddConstraint("r3", NewExpr().Add(x6, 1), LE, 1)
	sol := requireOptimal(t, p)
	if !almost(sol.Objective, -0.05) {
		t.Fatalf("obj=%v, want -0.05", sol.Objective)
	}
}

// TestKleeMintyStaysSane: a 3-dimensional Klee-Minty cube — worst case for
// Dantzig pricing — must still terminate at the optimum.
func TestKleeMinty3(t *testing.T) {
	p := NewProblem("klee-minty", Maximize)
	n := 3
	xs := make([]VarID, n)
	for j := range xs {
		xs[j] = p.AddVar("x", 0, Inf)
	}
	// max sum 2^{n-j-1} x_j s.t. nested constraints.
	for j := 0; j < n; j++ {
		p.SetObj(xs[j], float64(int(1)<<(n-j-1)))
	}
	for i := 0; i < n; i++ {
		e := NewExpr()
		for j := 0; j < i; j++ {
			e = e.Add(xs[j], float64(int(1)<<(i-j+1)))
		}
		e = e.Add(xs[i], 1)
		p.AddConstraint("km", e, LE, float64(pow5(i+1)))
	}
	sol := requireOptimal(t, p)
	// Known optimum: x_n = 5^n, objective 5^n.
	if !almost(sol.Objective, float64(pow5(n))) {
		t.Fatalf("obj=%v, want %v", sol.Objective, pow5(n))
	}
}

func pow5(k int) int {
	out := 1
	for i := 0; i < k; i++ {
		out *= 5
	}
	return out
}
