package lp

// Sparse basis factorization for the revised simplex engine: a CSC view of
// the standard-form constraint matrix, an LU factorization of the basis with
// partial pivoting, and a product-form eta file absorbing basis changes
// between periodic refactorizations.
//
// Index spaces, fixed once and used everywhere in sparse.go:
//
//   - "row space": original standard-form rows 0..m-1. Right-hand sides and
//     dual vectors (BTRAN output) live here.
//   - "position space": basis positions 0..m-1, which the sparse engine pins
//     to dense tableau rows — position i holds basic column basis[i], exactly
//     the dense invariant. Basic values xB, FTRAN output, and eta updates
//     live here.
//
// FTRAN solves B·z = v (v in row space, z in position space); BTRAN solves
// Bᵀ·y = c (c in position space, y in row space). The LU factors columns in
// position order, so elimination step k handles position k; perm[k] is the
// pivot row it chose.

// cscMatrix is a compressed-sparse-column view of stdForm.a. It is built
// once per solve from the dense rows and never mutated — the revised
// simplex works off B⁻¹ products instead of transforming A in place, which
// is the whole point of the engine.
type cscMatrix struct {
	m, n   int
	colPtr []int32 // n+1 offsets into rowIdx/val
	rowIdx []int32
	val    []float64
}

// buildCSC compresses the standard form's dense rows. Sharing the exact
// float values with the dense tableau's pristine matrix is deliberate: both
// engines then price and ratio-test the same numbers.
func buildCSC(s *stdForm) *cscMatrix {
	c := &cscMatrix{m: s.m, n: s.n}
	nnz := 0
	for i := 0; i < s.m; i++ {
		row := s.a[i]
		for j := 0; j < s.n; j++ {
			if row[j] != 0 {
				nnz++
			}
		}
	}
	c.colPtr = make([]int32, s.n+1)
	c.rowIdx = make([]int32, 0, nnz)
	c.val = make([]float64, 0, nnz)
	for j := 0; j < s.n; j++ {
		c.colPtr[j] = int32(len(c.rowIdx))
		for i := 0; i < s.m; i++ {
			if v := s.a[i][j]; v != 0 {
				c.rowIdx = append(c.rowIdx, int32(i))
				c.val = append(c.val, v)
			}
		}
	}
	c.colPtr[s.n] = int32(len(c.rowIdx))
	return c
}

// scatter adds column j into the dense row-space vector x.
//
//gapvet:hotpath inner loop of every FTRAN column build
func (c *cscMatrix) scatter(j int, x []float64) {
	for k := c.colPtr[j]; k < c.colPtr[j+1]; k++ {
		x[c.rowIdx[k]] += c.val[k]
	}
}

// dot returns ρᵀA_j for a dense row-space vector ρ.
//
//gapvet:hotpath called n times per pivot row and per cost reset
func (c *cscMatrix) dot(j int, rho []float64) float64 {
	s := 0.0
	for k := c.colPtr[j]; k < c.colPtr[j+1]; k++ {
		s += rho[c.rowIdx[k]] * c.val[k]
	}
	return s
}

// eta is one product-form basis update: after the pivot (pr, pc) with
// entering representation d = B_old⁻¹·A_pc, the new inverse is E·B_old⁻¹
// with E = I + (e_pr − d)·(1/d_pr)·e_prᵀ. FTRAN applies etas oldest-first
// after the LU solve; BTRAN applies Eᵀ newest-first before it.
type eta struct {
	pr     int32
	invPiv float64 // 1/d[pr]
	idx    []int32 // positions i != pr with d[i] != 0
	val    []float64
}

// luFactor is a sparse LU factorization of the basis matrix with partial
// pivoting, columns processed in position order. L is stored by column with
// original-row indices (the rows were unpivoted when the column was
// eliminated); U is stored by column with elimination-position indices.
type luFactor struct {
	m    int
	perm []int32 // elimination step k -> pivot row p_k
	lptr []int32 // m+1 offsets into lrow/lval
	lrow []int32
	lval []float64
	uptr []int32 // m+1 offsets into upos/uval (strictly above diagonal)
	upos []int32
	uval []float64
	udia []float64

	etas []eta

	// scratch, row-space sized
	work    []float64
	touched []int32
}

// factorize builds the LU of the basis columns cols (position order) from a.
// Pivot selection scans unpivoted rows in ascending order keeping a strict
// maximum with a pivotTol floor — in exact arithmetic the transformed
// entries are the same Schur-complement values the dense install() sees, so
// the row pairing (and hence every downstream tie-break on basis[i]) agrees
// with the dense engine. Returns false when the column set is singular or
// numerically unusable.
func (lu *luFactor) factorize(a *cscMatrix, cols []int) bool {
	m := a.m
	lu.m = m
	lu.perm = lu.perm[:0]
	lu.lptr = append(lu.lptr[:0], 0)
	lu.lrow = lu.lrow[:0]
	lu.lval = lu.lval[:0]
	lu.uptr = append(lu.uptr[:0], 0)
	lu.upos = lu.upos[:0]
	lu.uval = lu.uval[:0]
	lu.udia = lu.udia[:0]
	lu.etas = lu.etas[:0]
	if len(cols) != m {
		return false
	}
	if cap(lu.work) < m {
		lu.work = make([]float64, m)
		lu.touched = make([]int32, 0, m)
	}
	x := lu.work[:m]
	for i := range x {
		x[i] = 0
	}
	pivoted := make([]bool, m)
	for k := 0; k < m; k++ {
		j := cols[k]
		if j < 0 || j >= a.n {
			return false
		}
		a.scatter(j, x)
		// Left-looking elimination: apply the L columns of earlier steps in
		// order; skipping exact zeros is what keeps this sparse.
		for kk := 0; kk < k; kk++ {
			t := x[lu.perm[kk]]
			if t == 0 {
				continue
			}
			for q := lu.lptr[kk]; q < lu.lptr[kk+1]; q++ {
				x[lu.lrow[q]] -= t * lu.lval[q]
			}
		}
		// Partial pivoting over unpivoted rows: ascending scan, strict
		// maximum, pivotTol floor (mirrors dense install()).
		best, bestAbs := -1, pivotTol
		for i := 0; i < m; i++ {
			if pivoted[i] {
				continue
			}
			ab := x[i]
			if ab < 0 {
				ab = -ab
			}
			if ab > bestAbs {
				best, bestAbs = i, ab
			}
		}
		if best == -1 {
			return false
		}
		piv := x[best]
		// Harvest U (entries at already-pivoted rows) and L (unpivoted rows
		// scaled by the pivot), clearing x as we go.
		for kk := 0; kk < k; kk++ {
			p := lu.perm[kk]
			if v := x[p]; v != 0 {
				lu.upos = append(lu.upos, int32(kk))
				lu.uval = append(lu.uval, v)
				x[p] = 0
			}
		}
		for i := 0; i < m; i++ {
			if x[i] == 0 || i == best {
				continue
			}
			lu.lrow = append(lu.lrow, int32(i))
			lu.lval = append(lu.lval, x[i]/piv)
			x[i] = 0
		}
		x[best] = 0
		pivoted[best] = true
		lu.perm = append(lu.perm, int32(best))
		lu.udia = append(lu.udia, piv)
		lu.lptr = append(lu.lptr, int32(len(lu.lrow)))
		lu.uptr = append(lu.uptr, int32(len(lu.upos)))
	}
	return true
}

// ftran solves B·z = v. v is row-space input, z position-space output; the
// two may alias distinct buffers of the caller. v is left zeroed.
//
//gapvet:hotpath one FTRAN per pivot and per pricing probe; a heap allocation here multiplies into millions per search
func (lu *luFactor) ftran(v, z []float64) {
	m := lu.m
	// Forward: y_k = v[p_k] after applying earlier L columns.
	for k := 0; k < m; k++ {
		t := v[lu.perm[k]]
		z[k] = t
		if t == 0 {
			continue
		}
		for q := lu.lptr[k]; q < lu.lptr[k+1]; q++ {
			v[lu.lrow[q]] -= t * lu.lval[q]
		}
	}
	for k := 0; k < m; k++ {
		v[lu.perm[k]] = 0
	}
	// Backward: solve U·z = y, column-oriented.
	for k := m - 1; k >= 0; k-- {
		zk := z[k] / lu.udia[k]
		z[k] = zk
		if zk == 0 {
			continue
		}
		for q := lu.uptr[k]; q < lu.uptr[k+1]; q++ {
			z[lu.upos[q]] -= zk * lu.uval[q]
		}
	}
	// Product-form updates, oldest first.
	for e := range lu.etas {
		et := &lu.etas[e]
		t := z[et.pr] * et.invPiv
		z[et.pr] = t
		if t == 0 {
			continue
		}
		for q, i := range et.idx {
			z[i] -= et.val[q] * t
		}
	}
}

// btran solves Bᵀ·y = c. c is position-space input (consumed: left zeroed),
// y row-space output.
//
//gapvet:hotpath one BTRAN per pivot; a heap allocation here multiplies into millions per search
func (lu *luFactor) btran(c, y []float64) {
	m := lu.m
	// Eta transposes, newest first: (Eᵀv)[pr] = (v[pr] − Σ d_i·v_i)/d_pr.
	for e := len(lu.etas) - 1; e >= 0; e-- {
		et := &lu.etas[e]
		dot := 0.0
		for q, i := range et.idx {
			dot += et.val[q] * c[i]
		}
		c[et.pr] = (c[et.pr] - dot) * et.invPiv
	}
	// Solve Uᵀ·w = c: Uᵀ is lower triangular in position order, U stored by
	// column, so w_k = (c_k − Σ_{(kk,u)∈U_k} u·w_kk)/udia[k], ascending k.
	for k := 0; k < m; k++ {
		w := c[k]
		for q := lu.uptr[k]; q < lu.uptr[k+1]; q++ {
			w -= lu.uval[q] * c[lu.upos[q]]
		}
		c[k] = w / lu.udia[k]
	}
	// Lᵀ backward solve with the permutation scatter fused in: processing
	// k = m-1..0, v_k = w_k − Σ_{(i,l)∈L_k} l·v_pos(i). Every row in L_k was
	// unpivoted at step k, so it is the pivot row of some later step whose
	// result already sits in y — the row-space lookup is the position lookup.
	for k := m - 1; k >= 0; k-- {
		v := c[k]
		for q := lu.lptr[k]; q < lu.lptr[k+1]; q++ {
			v -= lu.lval[q] * y[lu.lrow[q]]
		}
		y[lu.perm[k]] = v
	}
	for k := 0; k < m; k++ {
		c[k] = 0
	}
}

// appendEta absorbs the pivot (position pr, entering representation d) into
// the eta file. d is position-space and not retained. The nonzeros are
// counted first so both eta arrays are sized exactly — one pass of
// arithmetic buys out the append regrowth copies on every pivot.
//
//gapvet:hotpath one eta append per pivot; regrowth copies here were visible in ns/pivot
func (lu *luFactor) appendEta(pr int, d []float64) {
	nz := 0
	for i, v := range d {
		if v != 0 && i != pr {
			nz++
		}
	}
	et := eta{pr: int32(pr), invPiv: 1 / d[pr]}
	et.idx = make([]int32, 0, nz)
	et.val = make([]float64, 0, nz)
	for i, v := range d {
		if v != 0 && i != pr {
			et.idx = append(et.idx, int32(i))
			et.val = append(et.val, v)
		}
	}
	lu.etas = append(lu.etas, et)
}
