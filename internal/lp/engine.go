package lp

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
)

// Engine selects the simplex implementation behind Solve. Both engines
// honor the full SolveOptions contract (bound overrides, deadlines, ctx
// cancellation, warm starts, basis capture) and are observationally
// identical on every answer a caller can read: status, objective, X,
// duals, and therefore every branch-and-bound decision made on top of
// them. The dense tableau is the reference implementation — the oracle the
// differential test harness holds the sparse engine to.
type Engine int

const (
	// EngineAuto selects the process default engine: the dense tableau
	// unless overridden by SetDefaultEngine or the REPRO_LP_ENGINE
	// environment variable ("dense" or "sparse" — the CI matrix leg forces
	// the whole test suite through the sparse engine this way).
	EngineAuto Engine = iota
	// EngineDense is the dense two-phase tableau simplex: O(rows*cols) per
	// pivot, numerically transparent, the reference for everything.
	EngineDense
	// EngineSparse is the revised simplex: CSC-stored constraint matrix,
	// LU-factorized basis with product-form eta updates and periodic
	// refactorization, pivot decisions mirroring the dense rules exactly.
	// On any internal numerical failure it transparently re-solves with
	// the dense engine (Solution.SparseFallback reports this).
	EngineSparse
)

func (e Engine) String() string {
	switch e {
	case EngineAuto:
		return "auto"
	case EngineDense:
		return "dense"
	case EngineSparse:
		return "sparse"
	default:
		return fmt.Sprintf("engine(%d)", int(e))
	}
}

// ParseEngine converts a CLI flag value into an Engine.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "", "auto":
		return EngineAuto, nil
	case "dense":
		return EngineDense, nil
	case "sparse":
		return EngineSparse, nil
	default:
		return EngineAuto, fmt.Errorf("lp: unknown engine %q (want dense or sparse)", s)
	}
}

// Pricing selects the entering-column rule of the sparse engine's primal
// phases. The dense engine always prices with the Dantzig rule; the sparse
// engine defaults to the same rule so the two pivot paths stay comparable
// (the differential harness and the benchmark gates rely on that). Devex is
// the throughput option: fewer, better pivots on large degenerate LPs, at
// the price of a pivot sequence (and iteration count) that no longer tracks
// the dense oracle — answers still do.
type Pricing int

const (
	// PricingAuto selects Dantzig, the oracle-identical rule.
	PricingAuto Pricing = iota
	// PricingDantzig picks the most negative reduced cost (Bland's rule
	// under stalling), exactly like the dense tableau.
	PricingDantzig
	// PricingDevex prices with approximate steepest-edge (devex) reference
	// weights. Sparse engine only; the dense engine ignores it.
	PricingDevex
)

func (pr Pricing) String() string {
	switch pr {
	case PricingAuto:
		return "auto"
	case PricingDantzig:
		return "dantzig"
	case PricingDevex:
		return "devex"
	default:
		return fmt.Sprintf("pricing(%d)", int(pr))
	}
}

// ParsePricing converts a CLI flag or job-spec value into a Pricing.
func ParsePricing(s string) (Pricing, error) {
	switch s {
	case "", "auto":
		return PricingAuto, nil
	case "dantzig":
		return PricingDantzig, nil
	case "devex":
		return PricingDevex, nil
	default:
		return PricingAuto, fmt.Errorf("lp: unknown pricing %q (want dantzig or devex)", s)
	}
}

// defaultEngine holds the process-wide resolution of EngineAuto. It is
// atomic so tests and CLIs may flip it while solves run on other
// goroutines (each solve reads it exactly once, at dispatch).
var defaultEngine atomic.Int32

// envDiag records what init saw in REPRO_LP_ENGINE, so a misconfigured
// environment is inspectable after the fact (DefaultEngineDiagnostics)
// instead of being silently replaced by the dense fallback.
var envDiag struct {
	mu       sync.Mutex
	rejected string
	err      error
}

// engineFromEnv resolves an REPRO_LP_ENGINE value to the engine init should
// install. An unparsable value is NOT forgiven: the dense fallback is still
// returned (the process must come up), but the error travels with it so
// init can warn and DefaultEngineDiagnostics can report it. Split from init
// for testability.
func engineFromEnv(v string) (Engine, error) {
	eng, err := ParseEngine(v)
	if err != nil {
		return EngineDense, err
	}
	if eng == EngineAuto {
		return EngineDense, nil
	}
	return eng, nil
}

func init() {
	// The environment override exists for the CI matrix leg that forces the
	// whole existing test suite through the sparse engine without touching
	// any call site. It changes which implementation computes the answer,
	// never the answer itself — exactly like the WarmStart knob. A value
	// that does not parse (REPRO_LP_ENGINE=spares) used to be silently
	// swallowed, un-forcing the sparse leg without a word; now it fails
	// loudly on stderr and is kept for DefaultEngineDiagnostics.
	v := os.Getenv("REPRO_LP_ENGINE")
	eng, err := engineFromEnv(v)
	defaultEngine.Store(int32(eng))
	if err != nil {
		envDiag.mu.Lock()
		envDiag.rejected = v
		envDiag.err = err
		envDiag.mu.Unlock()
		fmt.Fprintf(os.Stderr, "lp: ignoring REPRO_LP_ENGINE=%q: %v (using %s)\n", v, err, eng)
	}
}

// DefaultEngine reports what EngineAuto currently resolves to.
func DefaultEngine() Engine { return Engine(defaultEngine.Load()) }

// DefaultEngineDiagnostics reports whether the REPRO_LP_ENGINE environment
// override was rejected at startup: the verbatim rejected value and the
// parse error, or ("", nil) when the variable was absent or valid. CLIs and
// the daemon surface this so a typo'd override cannot silently run the
// whole process on the fallback engine.
func DefaultEngineDiagnostics() (rejected string, err error) {
	envDiag.mu.Lock()
	defer envDiag.mu.Unlock()
	return envDiag.rejected, envDiag.err
}

// SetDefaultEngine changes what EngineAuto resolves to, process-wide, and
// returns the previous default. CLIs use it to honor an -engine flag in
// layers that build zero-value SolveOptions; tests use it to scope a
// sparse-engine run (restore the returned value when done).
func SetDefaultEngine(e Engine) Engine {
	if e == EngineAuto {
		e = EngineDense
	}
	return Engine(defaultEngine.Swap(int32(e)))
}

// resolve maps EngineAuto to the process default.
func (e Engine) resolve() Engine {
	if e == EngineAuto {
		return DefaultEngine()
	}
	return e
}
