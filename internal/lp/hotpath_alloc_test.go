package lp

import "testing"

// The //gapvet:hotpath annotations on the sparse engine's per-pivot
// kernels are a static promise; this test seals the two solve kernels with
// the runtime's own counter. ftran and btran run once per pivot (and ftran
// again per pricing probe), so a single heap allocation in either would
// multiply into millions per search — AllocsPerRun must read exactly zero
// once the factor's buffers exist. appendEta is excluded on purpose: it
// allocates its exactly-sized eta arrays by design (the hotalloc evidence
// rule), so its cost shows up in the eta-file growth benchmarks instead.
func TestHotpathSolveKernelsDoNotAllocate(t *testing.T) {
	a := denseCSC(3,
		[]float64{0, 2, 1},
		[]float64{3, 1, 0},
		[]float64{1, 0, 4},
	)
	var lu luFactor
	if !lu.factorize(a, []int{0, 1, 2}) {
		t.Fatal("factorize failed on a nonsingular basis")
	}
	// One eta in the file so the update loops run too.
	lu.appendEta(1, []float64{0.5, 2, -1})

	rhs := []float64{5, -2, 3}
	v := make([]float64, 3)
	z := make([]float64, 3)
	if allocs := testing.AllocsPerRun(100, func() {
		copy(v, rhs)
		lu.ftran(v, z)
	}); allocs != 0 {
		t.Errorf("ftran allocates %.0f times per run, want 0 (//gapvet:hotpath contract)", allocs)
	}

	cost := []float64{-1, 4, 2}
	c := make([]float64, 3)
	y := make([]float64, 3)
	if allocs := testing.AllocsPerRun(100, func() {
		copy(c, cost)
		lu.btran(c, y)
	}); allocs != 0 {
		t.Errorf("btran allocates %.0f times per run, want 0 (//gapvet:hotpath contract)", allocs)
	}
}
