package lp

import (
	"math"
	"math/rand"
	"testing"
)

// Differential oracle: the dense tableau engine is the reference
// implementation, and every fixture below is solved by both engines and
// compared field by field. Both engines funnel terminal states through the
// same canonical answer extraction (finishTerm + tiebreak), so agreement is
// demanded at certificate precision (1e-9), not loose test tolerance —
// a sparse-engine bug that lands on a different vertex of the optimal face,
// or perturbs one dual, fails here even when the objective agrees.

// diffTol is the engine-agreement tolerance. Deliberately far tighter than
// the feasibility tolerances: the engines share answer extraction, so any
// real divergence is a pivoting bug, not roundoff.
const diffTol = 1e-9

// lpFixtures enumerates the differential corpus: one builder per shape the
// solver supports (senses, relations, bound patterns, degeneracy, the
// classic cycling instances, infeasible and unbounded outcomes). Builders
// return a fresh Problem each call so tests can mutate freely.
func lpFixtures() map[string]func() *Problem {
	return map[string]func() *Problem{
		"single-var-max": func() *Problem {
			p := NewProblem("single-var-max", Maximize)
			x := p.AddVar("x", 0, 10)
			p.SetObj(x, 3)
			p.AddConstraint("cap", NewExpr().Add(x, 2), LE, 8)
			return p
		},
		"min-ge": func() *Problem {
			p := NewProblem("min-ge", Minimize)
			x := p.AddVar("x", 0, Inf)
			y := p.AddVar("y", 0, Inf)
			p.SetObj(x, 2)
			p.SetObj(y, 3)
			p.AddConstraint("need", NewExpr().Add(x, 1).Add(y, 2), GE, 4)
			return p
		},
		"production": func() *Problem {
			p := NewProblem("production", Maximize)
			x := p.AddVar("x", 0, Inf)
			y := p.AddVar("y", 0, Inf)
			p.SetObj(x, 3)
			p.SetObj(y, 5)
			p.AddConstraint("m1", NewExpr().Add(x, 1), LE, 4)
			p.AddConstraint("m2", NewExpr().Add(y, 2), LE, 12)
			p.AddConstraint("m3", NewExpr().Add(x, 3).Add(y, 2), LE, 18)
			return p
		},
		"equality": func() *Problem {
			p := NewProblem("equality", Minimize)
			x := p.AddVar("x", 0, Inf)
			y := p.AddVar("y", 0, Inf)
			p.SetObj(x, 1)
			p.SetObj(y, 2)
			p.AddConstraint("eq", NewExpr().Add(x, 1).Add(y, 1), EQ, 5)
			p.AddConstraint("floor", NewExpr().Add(y, 1), GE, 1)
			return p
		},
		"free-var": func() *Problem {
			p := NewProblem("free-var", Minimize)
			x := p.AddVar("x", math.Inf(-1), Inf)
			p.SetObj(x, 1)
			p.AddConstraint("floor", NewExpr().Add(x, 1), GE, -7)
			return p
		},
		"negative-bounds": func() *Problem {
			p := NewProblem("negative-bounds", Minimize)
			x := p.AddVar("x", -5, 5)
			y := p.AddVar("y", -2, 2)
			p.SetObj(x, 1)
			p.SetObj(y, -1)
			p.AddConstraint("c", NewExpr().Add(x, 1).Add(y, 1), GE, -3)
			return p
		},
		"fixed-var": func() *Problem {
			// lo == hi pins the column; the sparse engine must keep it blocked
			// out of the basis entirely, not just price it last.
			p := NewProblem("fixed-var", Maximize)
			x := p.AddVar("x", 2, 2)
			y := p.AddVar("y", 0, 6)
			p.SetObj(x, 10)
			p.SetObj(y, 1)
			p.AddConstraint("c", NewExpr().Add(x, 1).Add(y, 1), LE, 7)
			return p
		},
		"degenerate": func() *Problem {
			p := NewProblem("degenerate", Maximize)
			x := p.AddVar("x", 0, Inf)
			y := p.AddVar("y", 0, Inf)
			p.SetObj(x, 1)
			p.SetObj(y, 1)
			p.AddConstraint("a", NewExpr().Add(x, 1).Add(y, 1), LE, 1)
			p.AddConstraint("b", NewExpr().Add(x, 1), LE, 1)
			p.AddConstraint("c", NewExpr().Add(y, 1), LE, 1)
			p.AddConstraint("d", NewExpr().Add(x, 2).Add(y, 1), LE, 2)
			return p
		},
		"beale": func() *Problem {
			// Beale's cycling example; exercises the Bland fallback identically
			// in both engines.
			p := NewProblem("beale", Minimize)
			x1 := p.AddVar("x1", 0, Inf)
			x2 := p.AddVar("x2", 0, Inf)
			x3 := p.AddVar("x3", 0, Inf)
			p.SetObj(x1, -0.75)
			p.SetObj(x2, 150)
			p.SetObj(x3, -0.02)
			x4 := p.AddVar("x4", 0, Inf)
			p.SetObj(x4, 6)
			p.AddConstraint("r1", NewExpr().Add(x1, 0.25).Add(x2, -60).Add(x3, -0.04).Add(x4, 9), LE, 0)
			p.AddConstraint("r2", NewExpr().Add(x1, 0.5).Add(x2, -90).Add(x3, -0.02).Add(x4, 3), LE, 0)
			p.AddConstraint("r3", NewExpr().Add(x3, 1), LE, 1)
			return p
		},
		"klee-minty-3": func() *Problem {
			p := NewProblem("klee-minty-3", Maximize)
			xs := make([]VarID, 3)
			for j := range xs {
				xs[j] = p.AddVar("x", 0, Inf)
				p.SetObj(xs[j], math.Pow(2, float64(2-j)))
			}
			for i := 0; i < 3; i++ {
				e := NewExpr()
				for j := 0; j < i; j++ {
					e = e.Add(xs[j], math.Pow(2, float64(i-j+1)))
				}
				e = e.Add(xs[i], 1)
				p.AddConstraint("km", e, LE, math.Pow(5, float64(i+1)))
			}
			return p
		},
		"transport": func() *Problem {
			// Balanced 2x3 transportation problem: equality-heavy, degenerate,
			// with a dual vector worth certifying.
			p := NewProblem("transport", Minimize)
			cost := [2][3]float64{{4, 6, 9}, {5, 3, 8}}
			supply := [2]float64{30, 25}
			demand := [3]float64{15, 20, 20}
			var xv [2][3]VarID
			for i := 0; i < 2; i++ {
				for j := 0; j < 3; j++ {
					xv[i][j] = p.AddVar("x", 0, Inf)
					p.SetObj(xv[i][j], cost[i][j])
				}
			}
			for i := 0; i < 2; i++ {
				e := NewExpr()
				for j := 0; j < 3; j++ {
					e = e.Add(xv[i][j], 1)
				}
				p.AddConstraint("supply", e, EQ, supply[i])
			}
			for j := 0; j < 3; j++ {
				e := NewExpr()
				for i := 0; i < 2; i++ {
					e = e.Add(xv[i][j], 1)
				}
				p.AddConstraint("demand", e, EQ, demand[j])
			}
			return p
		},
		"infeasible": func() *Problem {
			p := NewProblem("infeasible", Maximize)
			x := p.AddVar("x", 0, Inf)
			p.SetObj(x, 1)
			p.AddConstraint("a", NewExpr().Add(x, 1), LE, 1)
			p.AddConstraint("b", NewExpr().Add(x, 1), GE, 2)
			return p
		},
		"unbounded": func() *Problem {
			p := NewProblem("unbounded", Maximize)
			x := p.AddVar("x", 0, Inf)
			p.SetObj(x, 1)
			p.AddConstraint("floor", NewExpr().Add(x, 1), GE, 1)
			return p
		},
		"negative-rhs": func() *Problem {
			p := NewProblem("negative-rhs", Maximize)
			x := p.AddVar("x", 0, 10)
			y := p.AddVar("y", 0, 10)
			p.SetObj(x, 1)
			p.SetObj(y, 2)
			p.AddConstraint("flip", NewExpr().Add(x, -1).Add(y, -1), GE, -8)
			return p
		},
		"maxflow-ish": func() *Problem {
			// The shape the paper's OPT solves take: many path variables, LE
			// capacity rows, a sparse incidence structure.
			p := NewProblem("maxflow-ish", Maximize)
			rng := rand.New(rand.NewSource(7))
			const nPaths, nEdges = 24, 10
			paths := make([]VarID, nPaths)
			onEdge := make([][]VarID, nEdges)
			for i := range paths {
				paths[i] = p.AddVar("f", 0, Inf)
				p.SetObj(paths[i], 1)
				// each path crosses 2-4 random edges
				k := 2 + rng.Intn(3)
				for e := 0; e < k; e++ {
					idx := rng.Intn(nEdges)
					onEdge[idx] = append(onEdge[idx], paths[i])
				}
			}
			for e, vs := range onEdge {
				if len(vs) == 0 {
					continue
				}
				expr := NewExpr()
				for _, v := range vs {
					expr = expr.Add(v, 1)
				}
				p.AddConstraint("cap", expr, LE, 10+float64(e))
			}
			return p
		},
	}
}

// assertPrimalIdentical compares status, objective, point and support at
// certificate precision. Duals are checked separately: on primal-degenerate
// problems several dual vectors certify the same canonical vertex, and which
// one a solve reports depends on the terminal basis (warm vs cold may
// legitimately differ) — but two engines on the SAME path must still match.
func assertPrimalIdentical(t *testing.T, name string, ref, got *Solution) {
	t.Helper()
	if got.Status != ref.Status {
		t.Fatalf("%s: status %v vs reference %v", name, got.Status, ref.Status)
	}
	if ref.Status != StatusOptimal {
		return
	}
	if math.Abs(got.Objective-ref.Objective) > diffTol*(1+math.Abs(ref.Objective)) {
		t.Fatalf("%s: objective %.15g vs reference %.15g", name, got.Objective, ref.Objective)
	}
	if len(got.X) != len(ref.X) {
		t.Fatalf("%s: |X| %d vs %d", name, len(got.X), len(ref.X))
	}
	for j := range ref.X {
		if math.Abs(got.X[j]-ref.X[j]) > diffTol*(1+math.Abs(ref.X[j])) {
			t.Fatalf("%s: X[%d] = %.15g vs reference %.15g", name, j, got.X[j], ref.X[j])
		}
		// Support identity is stricter than closeness on degenerate faces:
		// the tiebreak must land both engines on the same vertex.
		if (math.Abs(got.X[j]) > feasTol) != (math.Abs(ref.X[j]) > feasTol) {
			t.Fatalf("%s: X[%d] support differs: %.15g vs %.15g", name, j, got.X[j], ref.X[j])
		}
	}
}

// assertSolutionsIdentical is the full contract — primal identity plus an
// identical dual vector.
func assertSolutionsIdentical(t *testing.T, name string, ref, got *Solution) {
	t.Helper()
	assertPrimalIdentical(t, name, ref, got)
	if ref.Status != StatusOptimal {
		return
	}
	if len(got.Dual) != len(ref.Dual) {
		t.Fatalf("%s: |duals| %d vs %d", name, len(got.Dual), len(ref.Dual))
	}
	for i := range ref.Dual {
		if math.Abs(got.Dual[i]-ref.Dual[i]) > diffTol*(1+math.Abs(ref.Dual[i])) {
			t.Fatalf("%s: dual[%d] = %.15g vs reference %.15g", name, i, got.Dual[i], ref.Dual[i])
		}
	}
}

// TestDifferentialColdDenseVsSparse runs every fixture cold through both
// engines and requires identical observable behavior, including the pivot
// count — the sparse engine replays the dense pivot sequence, it does not
// merely reach the same answer.
func TestDifferentialColdDenseVsSparse(t *testing.T) {
	for name, build := range lpFixtures() {
		t.Run(name, func(t *testing.T) {
			dense, err := build().SolveWith(SolveOptions{Engine: EngineDense, CaptureBasis: true})
			if err != nil {
				t.Fatalf("dense: %v", err)
			}
			sparse, err := build().SolveWith(SolveOptions{Engine: EngineSparse, CaptureBasis: true})
			if err != nil {
				t.Fatalf("sparse: %v", err)
			}
			if dense.EngineUsed != EngineDense || sparse.EngineUsed != EngineSparse {
				t.Fatalf("engines used: %v / %v", dense.EngineUsed, sparse.EngineUsed)
			}
			if sparse.SparseFallback {
				t.Fatalf("sparse engine fell back to dense on a plain fixture")
			}
			assertSolutionsIdentical(t, name, dense, sparse)
			if sparse.Iterations != dense.Iterations {
				t.Fatalf("pivot counts diverged: sparse %d vs dense %d", sparse.Iterations, dense.Iterations)
			}
			if dense.Status == StatusOptimal {
				if (dense.Basis == nil) != (sparse.Basis == nil) {
					t.Fatalf("basis capture mismatch: dense %v, sparse %v", dense.Basis, sparse.Basis)
				}
				if dense.Basis != nil {
					dc, sc := dense.Basis.cols, sparse.Basis.cols
					if len(dc) != len(sc) {
						t.Fatalf("basis sizes: %d vs %d", len(dc), len(sc))
					}
					for i := range dc {
						if dc[i] != sc[i] {
							t.Fatalf("terminal bases differ at %d: %d vs %d", i, dc[i], sc[i])
						}
					}
				}
			}
		})
	}
}

// TestDifferentialWarmDenseVsSparse branches every optimal fixture the way
// branch-and-bound does — fix one variable at its relaxation value — and
// checks all four capture/reinstall engine pairings: each warm child must
// match the dense cold child on status, objective and canonical point, and
// all four warm runs must match EACH OTHER exactly (duals included) — they
// start from the same snapshot, so any spread between them is an engine
// divergence, not dual multiplicity.
func TestDifferentialWarmDenseVsSparse(t *testing.T) {
	engines := []Engine{EngineDense, EngineSparse}
	for name, build := range lpFixtures() {
		t.Run(name, func(t *testing.T) {
			probe, err := build().SolveWith(SolveOptions{Engine: EngineDense})
			if err != nil {
				t.Fatalf("probe: %v", err)
			}
			if probe.Status != StatusOptimal {
				t.Skip("warm differential needs an optimal parent")
			}
			// Branch on the first fractional-ish variable, else the first.
			bv := VarID(0)
			for j, v := range probe.X {
				if math.Abs(v-math.Round(v)) > 1e-6 {
					bv = VarID(j)
					break
				}
			}
			fix := math.Floor(probe.X[bv])
			ov := map[VarID][2]float64{bv: {fix, fix}}
			coldChild, err := build().SolveWith(SolveOptions{Engine: EngineDense, BoundOverride: ov})
			if err != nil {
				t.Fatalf("cold child: %v", err)
			}
			var warmRef *Solution
			for _, capEng := range engines {
				capt, err := build().SolveWith(SolveOptions{Engine: capEng, CaptureBasis: true})
				if err != nil || capt.Basis == nil {
					t.Fatalf("capture under %v: %v", capEng, err)
				}
				for _, warmEng := range engines {
					warm, err := build().SolveWith(SolveOptions{
						Engine: warmEng, BoundOverride: ov, WarmStart: capt.Basis,
					})
					if err != nil {
						t.Fatalf("warm %v->%v: %v", capEng, warmEng, err)
					}
					if warm.Status != coldChild.Status {
						t.Fatalf("warm %v->%v: status %v vs cold %v", capEng, warmEng, warm.Status, coldChild.Status)
					}
					if coldChild.Status != StatusOptimal {
						continue
					}
					assertPrimalIdentical(t, name+" (vs cold)", coldChild, warm)
					if warmRef == nil {
						warmRef = warm
					} else {
						assertSolutionsIdentical(t, name+" (warm spread)", warmRef, warm)
					}
				}
			}
		})
	}
}

// TestDifferentialRandomLPs sweeps seeded random instances through both
// engines — the property-test analogue of the fixture table, catching
// divergence on shapes nobody thought to enshrine.
func TestDifferentialRandomLPs(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nVars := 1 + rng.Intn(9)
		nCons := 1 + rng.Intn(9)
		p, _ := randomLP(rng, nVars, nCons)
		dense, err := p.SolveWith(SolveOptions{Engine: EngineDense})
		if err != nil {
			t.Fatalf("seed %d dense: %v", seed, err)
		}
		sparse, err := p.SolveWith(SolveOptions{Engine: EngineSparse})
		if err != nil {
			t.Fatalf("seed %d sparse: %v", seed, err)
		}
		assertSolutionsIdentical(t, "random", dense, sparse)
		if sparse.Iterations != dense.Iterations {
			t.Fatalf("seed %d: pivot counts diverged: sparse %d vs dense %d", seed, sparse.Iterations, dense.Iterations)
		}
	}
}

// TestDifferentialPresolve runs every fixture with presolve on and requires
// the same status and objective as the raw dense solve, with the returned
// duals still certifying optimality exactly (strong duality). Presolve may
// legitimately report a different vertex of a degenerate optimal face, so
// the point itself is only checked for feasibility-by-certificate, not
// equality.
func TestDifferentialPresolve(t *testing.T) {
	for name, build := range lpFixtures() {
		t.Run(name, func(t *testing.T) {
			ref, err := build().SolveWith(SolveOptions{Engine: EngineDense})
			if err != nil {
				t.Fatalf("reference: %v", err)
			}
			for _, eng := range []Engine{EngineDense, EngineSparse} {
				p := build()
				pre, err := p.SolveWith(SolveOptions{Engine: eng, Presolve: true})
				if err != nil {
					t.Fatalf("presolve(%v): %v", eng, err)
				}
				if pre.Status != ref.Status {
					t.Fatalf("presolve(%v): status %v vs %v", eng, pre.Status, ref.Status)
				}
				if ref.Status != StatusOptimal {
					return
				}
				if math.Abs(pre.Objective-ref.Objective) > 1e-7*(1+math.Abs(ref.Objective)) {
					t.Fatalf("presolve(%v): objective %.15g vs %.15g", eng, pre.Objective, ref.Objective)
				}
				dual, err := p.DualObjective(pre)
				if err != nil {
					t.Fatalf("presolve(%v): dual certificate: %v", eng, err)
				}
				if math.Abs(dual-pre.Objective) > 1e-6*(1+math.Abs(pre.Objective)) {
					t.Fatalf("presolve(%v): strong duality violated: primal %v dual %v", eng, pre.Objective, dual)
				}
			}
		})
	}
}
