package lp

// The sparse revised simplex engine. It solves the exact same standard form
// as the dense tableau (internal/lp/simplex.go) with the exact same pivot
// rules — Dantzig pricing with Bland fallback after the same stall
// threshold, the same ratio-test tie window and tie-breaks, the same
// right-hand-side snapping, the same phase structure, iteration budget, and
// deadline/ctx polling cadence — but instead of transforming an m×n tableau
// on every pivot (O(m·n)) it keeps the basis LU-factorized and reconstructs
// only what a pivot decision needs: the entering column representation
// d = B⁻¹·A_pc (one FTRAN), the pivot row α = e_prᵀ·B⁻¹·A (one BTRAN plus a
// pass over A's nonzeros), and incremental updates to the reduced costs and
// basic values. Basis changes accumulate in a product-form eta file that is
// periodically collapsed by refactorization.
//
// The dense tableau remains the reference engine. Answers (status,
// objective, X, duals) agree by construction: both engines stop on the same
// canonical vertex (the tiebreak phase) and extract the answer through the
// shared finishTerm. Pivot-for-pivot agreement is not guaranteed in exact
// float semantics — the two arithmetics round differently — but the shared
// rules and tolerances make the pivot sequences match in practice, which the
// differential tests and the hard benchmark gates verify on every fixture.
// On an unrecoverable numerical failure (a basis the LU cannot factorize)
// the dispatcher transparently re-solves with the dense engine.

import (
	"context"
	"math"
	"time"
)

// etaLimit caps the product-form eta file; reaching it triggers a
// refactorization of the current basis. 64 keeps FTRAN/BTRAN cost bounded
// while amortizing the factorization over many pivots.
const etaLimit = 64

// sparseSolver carries the mutable revised-simplex state. Field names mirror
// the dense tableau where the meaning is identical.
type sparseSolver struct {
	s  *stdForm
	a  *cscMatrix
	lu luFactor

	basis   []int     // basic column per position (== dense tableau row)
	inBasis []bool    // column -> basic?
	blocked []bool    // columns forbidden from entering
	xB      []float64 // basic values per position (== dense s.b)
	r       []float64 // reduced costs for the current phase
	obj     float64   // current phase objective value

	iters     int
	phase1    int
	degen     int
	max       int
	refactors int  // factorizations forced by eta-file growth
	failed    bool // latched on any numerical failure; caller falls back

	deadline time.Time
	ctx      context.Context // nil means uncancellable

	pricing Pricing
	gamma   []float64 // devex reference weights (PricingDevex only)

	// Scratch buffers. rowBuf and posBuf are kept all-zero between uses
	// (ftran/btran restore their input buffers).
	rowBuf []float64 // m, row space
	posBuf []float64 // m, position space
	d      []float64 // m, entering column representation B⁻¹A_pc
	rho    []float64 // m, BTRAN output (row space)
	alpha  []float64 // n, pivot row e_prᵀB⁻¹A
}

func newSparseSolver(s *stdForm, opts SolveOptions) *sparseSolver {
	sp := &sparseSolver{s: s, a: buildCSC(s), deadline: opts.Deadline, ctx: opts.Ctx}
	sp.max = opts.MaxIters
	if sp.max <= 0 {
		sp.max = 2000 + 60*(s.m+s.n)
	}
	sp.pricing = opts.Pricing
	sp.basis = make([]int, s.m)
	sp.inBasis = make([]bool, s.n)
	sp.blocked = make([]bool, s.n)
	for _, j := range s.fixed {
		sp.blocked[j] = true
	}
	sp.xB = make([]float64, s.m)
	sp.rowBuf = make([]float64, s.m)
	sp.posBuf = make([]float64, s.m)
	sp.d = make([]float64, s.m)
	sp.rho = make([]float64, s.m)
	sp.alpha = make([]float64, s.n)
	return sp
}

// interrupted polls the solve's context on the same iteration cadence as the
// deadline check, exactly like the dense engine.
func (sp *sparseSolver) interrupted() bool {
	return sp.ctx != nil && sp.iters%128 == 0 && sp.ctx.Err() != nil
}

func (sp *sparseSolver) term() termState {
	return termState{s: sp.s, basis: sp.basis, bval: sp.xB, r: sp.r, obj: sp.obj,
		iters: sp.iters, phase1: sp.phase1, degen: sp.degen}
}

// factorize (re)builds the LU of the current basis, position order. On
// failure the failed latch sends the whole solve to the dense engine.
func (sp *sparseSolver) factorize() bool {
	if !sp.lu.factorize(sp.a, sp.basis) {
		sp.failed = true
		return false
	}
	return true
}

// computeXB sets the basic values to B⁻¹b from the pristine right-hand side.
//
//gapvet:hotpath runs after every refactorization
func (sp *sparseSolver) computeXB() {
	copy(sp.rowBuf, sp.s.b)
	sp.lu.ftran(sp.rowBuf, sp.xB)
}

// ftranCol computes d = B⁻¹·A_j into sp.d.
//
//gapvet:hotpath one per pivot
func (sp *sparseSolver) ftranCol(j int) {
	sp.a.scatter(j, sp.rowBuf)
	sp.lu.ftran(sp.rowBuf, sp.d)
}

// btranRow computes the pivot row of position pr: ρ = B⁻ᵀe_pr into sp.rho
// and α_j = ρᵀA_j for every column into sp.alpha.
//
//gapvet:hotpath one per pivot
func (sp *sparseSolver) btranRow(pr int) {
	sp.posBuf[pr] = 1
	sp.lu.btran(sp.posBuf, sp.rho)
	for j := 0; j < sp.s.n; j++ {
		sp.alpha[j] = sp.a.dot(j, sp.rho)
	}
}

// resetCosts installs a cost vector and recomputes reduced costs and the
// objective for the current basis: y = BTRAN(c_B), r = c − yᵀA. The dense
// engine computes the same quantities by accumulating its transformed rows.
func (sp *sparseSolver) resetCosts(c []float64) {
	s := sp.s
	if sp.r == nil {
		sp.r = make([]float64, s.n)
	}
	sp.obj = 0
	for i, col := range sp.basis {
		sp.posBuf[i] = c[col]
		sp.obj += c[col] * sp.xB[i]
	}
	sp.lu.btran(sp.posBuf, sp.rho)
	for j := 0; j < s.n; j++ {
		sp.r[j] = c[j] - sp.a.dot(j, sp.rho)
	}
	// Basic columns have exactly zero reduced cost by definition.
	for _, col := range sp.basis {
		sp.r[col] = 0
	}
	if sp.pricing == PricingDevex {
		sp.devexReset()
	}
}

// pivotApply performs the state update of a pivot at (pr, pc), given the
// entering representation sp.d and the pivot row sp.alpha (both already
// computed). It mirrors tableau.pivot line for line: rescale and snap the
// leaving position, update and snap the other basic values, update the
// reduced costs from the (scaled) pivot row, move the objective by the
// entering reduced cost times the entering value, and swap the basis. The
// basis change is absorbed into the eta file, refactorizing when full.
// Returns the leaving column and 1/pivot for callers that maintain a
// secondary cost row (tiebreak).
//
//gapvet:hotpath the per-pivot state update; allocation here is the ns/pivot budget's whole margin
func (sp *sparseSolver) pivotApply(pr, pc int) (leaving int, invPiv float64) {
	s := sp.s
	piv := sp.d[pr]
	if !(piv > pivotTol || piv < -pivotTol) { // also catches NaN
		sp.failed = true
		return sp.basis[pr], 0
	}
	invPiv = 1 / piv
	sp.xB[pr] *= invPiv
	if sp.xB[pr] < 0 && sp.xB[pr] > -feasTol {
		sp.xB[pr] = 0
	}
	for i := range sp.xB {
		if i == pr {
			continue
		}
		di := sp.d[i]
		if di == 0 {
			continue
		}
		sp.xB[i] -= di * sp.xB[pr]
		if sp.xB[i] < 0 && sp.xB[i] > -feasTol {
			sp.xB[i] = 0
		}
	}
	leaving = sp.basis[pr]
	if f := sp.r[pc]; f != 0 {
		scale := f * invPiv
		for j := 0; j < s.n; j++ {
			if aj := sp.alpha[j]; aj != 0 {
				sp.r[j] -= scale * aj
			}
		}
		// The dense tableau's pivot row holds an exact 1 in the leaving
		// column and exact 0s in the other basic columns; pin the same
		// values here instead of trusting α's rounding.
		for _, col := range sp.basis {
			sp.r[col] = 0
		}
		sp.r[leaving] = -scale
		sp.r[pc] = 0
		sp.obj += f * sp.xB[pr]
	}
	if sp.pricing == PricingDevex {
		sp.devexUpdate(pr, pc, invPiv)
	}
	sp.lu.appendEta(pr, sp.d)
	sp.inBasis[leaving] = false
	sp.basis[pr] = pc
	sp.inBasis[pc] = true
	sp.r[pc] = 0
	if len(sp.lu.etas) >= etaLimit {
		sp.refactors++
		sp.factorize()
	}
	return leaving, invPiv
}

// run iterates primal pivots until optimality, unboundedness, or a budget —
// the sparse twin of tableau.run.
func (sp *sparseSolver) run() Status {
	s := sp.s
	stall := 0
	for {
		if sp.failed {
			return StatusIterLimit // caller checks the latch before the status
		}
		if sp.iters >= sp.max {
			return StatusIterLimit
		}
		if !sp.deadline.IsZero() && sp.iters%128 == 0 && time.Now().After(sp.deadline) {
			return StatusDeadline
		}
		if sp.interrupted() {
			return StatusInterrupted
		}
		bland := stall > 2*(s.m+8)
		pc := sp.price(bland)
		if pc == -1 {
			return StatusOptimal
		}
		sp.ftranCol(pc)
		pr := sp.ratio()
		if pr == -1 {
			return StatusUnbounded
		}
		sp.btranRow(pr)
		before := sp.obj
		sp.pivotApply(pr, pc)
		sp.iters++
		if sp.obj < before-optTol {
			stall = 0
		} else {
			stall++
			sp.degen++
		}
	}
}

// price selects the entering column, or -1 at optimality. The Dantzig path
// is byte-identical to the dense rule; devex is the opt-in alternative.
//
//gapvet:hotpath full column scan once per pivot
func (sp *sparseSolver) price(bland bool) int {
	if sp.pricing == PricingDevex && !bland {
		return sp.priceDevex()
	}
	best, bestVal := -1, 0.0
	for j := 0; j < sp.s.n; j++ {
		if sp.inBasis[j] || sp.blocked[j] {
			continue
		}
		r := sp.r[j]
		if r >= -optTol {
			continue
		}
		if bland {
			return j
		}
		if best == -1 || r < bestVal-tieTol {
			best, bestVal = j, r
		}
	}
	return best
}

// ratio selects the leaving position for the entering column held in sp.d,
// or -1 if unbounded. Identical rule and tie-breaks to tableau.ratio —
// positions are dense tableau rows, so even the scan order matches.
//
//gapvet:hotpath full row scan once per pivot
func (sp *sparseSolver) ratio() int {
	s := sp.s
	best := -1
	bestRatio := math.Inf(1)
	for i := 0; i < s.m; i++ {
		aij := sp.d[i]
		if aij <= pivotTol {
			continue
		}
		ratio := sp.xB[i] / aij
		switch {
		case ratio < bestRatio-feasTol:
			best, bestRatio = i, ratio
		case ratio <= bestRatio+feasTol:
			bi, bb := sp.basis[i], sp.basis[best]
			iArt, bArt := bi >= s.artFrom, bb >= s.artFrom
			if iArt && !bArt || (iArt == bArt && bi < bb) {
				best = i
				if ratio < bestRatio {
					bestRatio = ratio
				}
			}
		}
	}
	return best
}

// tiebreak drives an optimal solver state to the canonical vertex of its
// optimal face, mirroring tableau.tiebreak: entering restricted to the
// optimal face (r <= optTol), steered by the fixed secondary weights.
func (sp *sparseSolver) tiebreak() Status {
	s := sp.s
	sp.resetCosts(s.c)
	rw := make([]float64, s.n)
	for i, col := range sp.basis {
		sp.posBuf[i] = tiebreakWeight(col)
	}
	sp.lu.btran(sp.posBuf, sp.rho)
	for j := 0; j < s.n; j++ {
		rw[j] = tiebreakWeight(j) - sp.a.dot(j, sp.rho)
	}
	for _, col := range sp.basis {
		rw[col] = 0
	}
	stall := 0
	for {
		if sp.failed {
			return StatusIterLimit
		}
		if sp.iters >= sp.max {
			return StatusIterLimit
		}
		if !sp.deadline.IsZero() && sp.iters%128 == 0 && time.Now().After(sp.deadline) {
			return StatusDeadline
		}
		if sp.interrupted() {
			return StatusInterrupted
		}
		bland := stall > 2*(s.m+8)
		pc, bestVal := -1, 0.0
		for j := 0; j < s.n; j++ {
			if sp.inBasis[j] || sp.blocked[j] || sp.r[j] > optTol || rw[j] >= -optTol {
				continue
			}
			if bland {
				pc = j
				break // smallest-index candidate
			}
			if pc == -1 || rw[j] < bestVal-tieTol {
				pc, bestVal = j, rw[j]
			}
		}
		if pc == -1 {
			return StatusOptimal
		}
		sp.ftranCol(pc)
		pr := sp.ratio()
		if pr == -1 {
			// A weight-decreasing ray cannot exist (positive weights):
			// numerical noise. Stop here, exactly like the dense path.
			return StatusOptimal
		}
		sp.btranRow(pr)
		f := rw[pc]
		leaving, invPiv := sp.pivotApply(pr, pc)
		sp.iters++
		if sp.failed {
			return StatusIterLimit
		}
		scale := f * invPiv
		for j := 0; j < s.n; j++ {
			if aj := sp.alpha[j]; aj != 0 {
				rw[j] -= scale * aj
			}
		}
		rw[leaving] = -scale
		rw[pc] = 0
		for _, col := range sp.basis {
			rw[col] = 0
		}
		if sp.xB[pr] > feasTol {
			stall = 0
		} else {
			stall++
			sp.degen++
		}
	}
}

// runDual is the sparse twin of tableau.runDual: repair primal feasibility
// while keeping dual feasibility, handling both the classic negative-value
// case and the blocked-basic "up" case. Row and column selections replicate
// the dense rules over the same position ordering.
func (sp *sparseSolver) runDual() Status {
	s := sp.s
	stall := 0
	for {
		if sp.failed {
			return statusWarmAbort
		}
		if sp.iters >= sp.max {
			return StatusIterLimit
		}
		if !sp.deadline.IsZero() && sp.iters%128 == 0 && time.Now().After(sp.deadline) {
			return StatusDeadline
		}
		if sp.interrupted() {
			return StatusInterrupted
		}
		pr, viol, up := -1, 0.0, false
		for i := 0; i < s.m; i++ {
			var v float64
			var u bool
			switch {
			case sp.xB[i] < -feasTol:
				v, u = -sp.xB[i], false
			case sp.xB[i] > feasTol && sp.blocked[sp.basis[i]]:
				v, u = sp.xB[i], true
			default:
				continue
			}
			if pr == -1 || v > viol+tieTol {
				pr, viol, up = i, v, u
			}
		}
		if pr == -1 {
			return StatusOptimal
		}
		dir := 1.0
		if up {
			dir = -1
		}
		sp.btranRow(pr)
		pc, bestRatio := -1, math.Inf(1)
		for j := 0; j < s.n; j++ {
			if sp.inBasis[j] || sp.blocked[j] {
				continue
			}
			dj := dir * sp.alpha[j]
			if dj > -pivotTol {
				continue
			}
			if ratio := sp.r[j] / -dj; pc == -1 || ratio < bestRatio-tieTol {
				pc, bestRatio = j, ratio
			}
		}
		if pc == -1 {
			return statusWarmAbort
		}
		sp.ftranCol(pc)
		before := sp.obj
		sp.pivotApply(pr, pc)
		sp.iters++
		diff := sp.obj - before
		if diff < 0 {
			diff = -diff
		}
		if diff <= optTol {
			sp.degen++
			stall++
		} else {
			stall = 0
		}
		if stall > 4*(s.m+s.n) {
			return statusWarmAbort
		}
	}
}

// evictBlocked pivots blocked columns still basic (at ~zero) out of the
// basis, the sparse twin of tableau.evictBlocked.
func (sp *sparseSolver) evictBlocked() int {
	s := sp.s
	evicted := 0
	for i := 0; i < s.m; i++ {
		if sp.failed {
			return evicted
		}
		if !sp.blocked[sp.basis[i]] {
			continue
		}
		sp.btranRow(i)
		for j := 0; j < s.n; j++ {
			if sp.inBasis[j] || sp.blocked[j] {
				continue
			}
			aij := sp.alpha[j]
			if aij < 0 {
				aij = -aij
			}
			if aij <= pivotTol {
				continue
			}
			sp.ftranCol(j)
			sp.pivotApply(i, j)
			sp.iters++
			sp.degen++
			evicted++
			break
		}
	}
	return evicted
}

// crash builds the initial basis with exactly the dense engine's choices:
// each row's +1 slack when it has one, then singleton structural columns
// (the KKT rewrites' explicit slack variables), artificials last. Unlike the
// dense path there is no tableau to rescale — the LU absorbs the pivots —
// so the scans read the pristine CSC data, which is the same matrix the
// dense scans see (its crash pivots only touch rows already assigned).
// Reports whether any artificial entered the basis; a false second return
// means a row could not be covered at all (numerical failure).
func (sp *sparseSolver) crash() (hasArt, ok bool) {
	s := sp.s
	for i := range sp.basis {
		sp.basis[i] = -1
	}
	// Slacks: columns in [nStruct, artFrom) hold one entry each (+1 for LE
	// slacks, -1 for GE surplus); a +1 claims its row.
	for j := s.nStruct; j < s.artFrom; j++ {
		p, q := sp.a.colPtr[j], sp.a.colPtr[j+1]
		if q-p != 1 || sp.a.val[p] != 1 {
			continue
		}
		i := int(sp.a.rowIdx[p])
		if sp.basis[i] == -1 {
			sp.basis[i] = j
			sp.inBasis[j] = true
		}
	}
	// Crash pivots on singleton structural columns.
	needCrash := false
	for i := 0; i < s.m; i++ {
		if sp.basis[i] == -1 {
			needCrash = true
		}
	}
	if needCrash {
		for j := 0; j < s.nStruct; j++ {
			p, q := sp.a.colPtr[j], sp.a.colPtr[j+1]
			if q-p != 1 {
				continue
			}
			i := int(sp.a.rowIdx[p])
			if sp.basis[i] != -1 || sp.a.val[p] <= pivotTol || sp.blocked[j] {
				continue
			}
			sp.basis[i] = j
			sp.inBasis[j] = true
		}
	}
	for i := 0; i < s.m; i++ {
		if sp.basis[i] != -1 {
			continue
		}
		col := -1
		for j := s.artFrom; j < s.n; j++ {
			p, q := sp.a.colPtr[j], sp.a.colPtr[j+1]
			if q-p == 1 && sp.a.val[p] == 1 && int(sp.a.rowIdx[p]) == i && !sp.inBasis[j] {
				col = j
				break
			}
		}
		if col == -1 {
			return hasArt, false
		}
		hasArt = true
		sp.basis[i] = col
		sp.inBasis[col] = true
	}
	return hasArt, true
}

// driveOutArtificials mirrors the dense phase-1 epilogue: every artificial
// still basic after a feasible phase 1 is pivoted out onto the first usable
// non-artificial column; a row with none is redundant and keeps its
// artificial at zero. Drive-out pivots are refactorization, not search, so
// they do not count toward Iterations — same as the dense path.
func (sp *sparseSolver) driveOutArtificials() {
	s := sp.s
	for i := 0; i < s.m; i++ {
		if sp.failed {
			return
		}
		if sp.basis[i] < s.artFrom {
			continue
		}
		sp.btranRow(i)
		for j := 0; j < s.artFrom; j++ {
			if sp.inBasis[j] || sp.blocked[j] {
				continue
			}
			aij := sp.alpha[j]
			if aij < 0 {
				aij = -aij
			}
			if aij <= pivotTol {
				continue
			}
			sp.ftranCol(j)
			sp.pivotApply(i, j)
			break
		}
	}
}

// sparseCold runs the canonical two-phase method on the revised simplex —
// the sparse twin of solveCold, phase for phase, including the per-phase
// time and pivot attribution.
func (p *Problem) sparseCold(s *stdForm, opts SolveOptions) (*Solution, error) {
	sp := newSparseSolver(s, opts)
	hasArt, ok := sp.crash()
	if !ok || !sp.factorize() {
		return nil, errNumerics
	}
	sp.computeXB()

	if hasArt {
		phase1 := make([]float64, s.n)
		for j := s.artFrom; j < s.n; j++ {
			phase1[j] = 1
		}
		sp.resetCosts(phase1)
		p1Start := time.Now() //gapvet:allow walltime phase-1 time attribution; observed into an obs histogram, never read by the solve
		st := sp.run()
		sp.phase1 = sp.iters
		lpPhase1Seconds.ObserveDuration(time.Since(p1Start)) //gapvet:allow walltime phase-1 time attribution; observed into an obs histogram, never read by the solve
		lpPhase1Pivots.Add(int64(sp.phase1))
		if sp.failed {
			return nil, errNumerics
		}
		if st == StatusIterLimit || st == StatusDeadline || st == StatusInterrupted {
			return finishTerm(p, sp.term(), st, opts, EngineSparse), nil
		}
		if st != StatusOptimal || sp.obj > feasTol {
			return finishTerm(p, sp.term(), StatusInfeasible, opts, EngineSparse), nil
		}
		sp.driveOutArtificials()
		if sp.failed {
			return nil, errNumerics
		}
	}
	for j := s.artFrom; j < s.n; j++ {
		sp.blocked[j] = true
	}

	sp.resetCosts(s.c)
	p2Start := time.Now() //gapvet:allow walltime phase-2 time attribution; observed into an obs histogram, never read by the solve
	st := sp.run()
	if st == StatusOptimal {
		st = sp.tiebreak()
	}
	lpPhase2Seconds.ObserveDuration(time.Since(p2Start)) //gapvet:allow walltime phase-2 time attribution; observed into an obs histogram, never read by the solve
	lpPhase2Pivots.Add(int64(sp.iters - sp.phase1))
	if sp.failed {
		return nil, errNumerics
	}
	return finishTerm(p, sp.term(), st, opts, EngineSparse), nil
}

// sparseWarm is the sparse twin of solveWarm: reinstall the parent basis by
// factorization, check dual feasibility, repair primal feasibility with the
// dual method, evict blocked columns, clean up, and walk to the canonical
// vertex. Returns nil whenever the snapshot is unusable; the caller then
// runs the sparse cold path (which, unlike the dense engine, needs no
// rebuild — the revised method never mutates the standard form).
func (p *Problem) sparseWarm(s *stdForm, opts SolveOptions) *Solution {
	sp := newSparseSolver(s, opts)
	repairStart := time.Now() //gapvet:allow walltime warm-repair time attribution; observed into an obs histogram, never read by the solve
	defer func() {
		lpWarmRepairSeconds.ObserveDuration(time.Since(repairStart)) //gapvet:allow walltime warm-repair time attribution; observed into an obs histogram, never read by the solve
		lpWarmRepairPivots.Add(int64(sp.iters))
	}()
	for j := s.artFrom; j < s.n; j++ {
		sp.blocked[j] = true
	}
	// Install: factorizing the snapshot columns in their stored (ascending)
	// order with ascending-scan partial pivoting reproduces the dense
	// install()'s row pairing — both pick the largest-magnitude entry of the
	// same Schur complement. The pairing fixes basis[row]; a second
	// factorization in position order then backs FTRAN/BTRAN.
	cols := make([]int, len(opts.WarmStart.cols))
	for k, c := range opts.WarmStart.cols {
		j := int(c)
		if j < 0 || j >= s.n || sp.inBasis[j] {
			return nil
		}
		sp.inBasis[j] = true
		cols[k] = j
	}
	for _, j := range cols {
		sp.inBasis[j] = false
	}
	if !sp.lu.factorize(sp.a, cols) {
		return nil
	}
	for k, row := range sp.lu.perm {
		sp.basis[row] = cols[k]
		sp.inBasis[cols[k]] = true
	}
	if !sp.factorize() {
		return nil
	}
	sp.computeXB()
	sp.resetCosts(s.c)
	for j := 0; j < s.n; j++ {
		if sp.inBasis[j] || sp.blocked[j] {
			continue
		}
		if sp.r[j] < -warmDualTol {
			return nil
		}
	}
	switch st := sp.runDual(); st {
	case statusWarmAbort, StatusIterLimit:
		return nil
	case StatusDeadline, StatusInterrupted:
		sol := finishTerm(p, sp.term(), st, opts, EngineSparse)
		sol.Warm = true
		return sol
	}
	if sp.failed {
		return nil
	}
	lpWarmEvictPivots.Add(int64(sp.evictBlocked()))
	st := sp.run()
	if st == StatusOptimal {
		st = sp.tiebreak()
	}
	if sp.failed {
		return nil
	}
	switch st {
	case StatusDeadline, StatusInterrupted, StatusOptimal, StatusUnbounded:
		sol := finishTerm(p, sp.term(), st, opts, EngineSparse)
		sol.Warm = true
		return sol
	default:
		return nil
	}
}

// solveSparse is the sparse engine's dispatch, the twin of solveDense. An
// errNumerics return sends the solve to the dense engine (see solveWith);
// warm-start failures stay engine-internal and fall back to the sparse cold
// path, exactly as the dense engine falls back to its own cold path.
func (p *Problem) solveSparse(opts SolveOptions) (*Solution, error) {
	s, err := buildStandard(p, opts.BoundOverride)
	if err != nil {
		return nil, err
	}
	if ws := opts.WarmStart; ws != nil {
		if ws.sig == s.sig && len(ws.cols) == s.m {
			if sol := p.sparseWarm(s, opts); sol != nil {
				return sol, nil
			}
		}
		sol, err := p.sparseCold(s, opts)
		if sol != nil {
			sol.WarmFallback = true
		}
		return sol, err
	}
	return p.sparseCold(s, opts)
}
