package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomLP builds a random feasible-by-construction LP: pick a point x0 >= 0,
// random A, set b = A x0 + slackPad so x0 is strictly feasible, random c.
// Maximizing over the (bounded) box keeps the problem bounded.
func randomLP(rng *rand.Rand, nVars, nCons int) (*Problem, []float64) {
	p := NewProblem("random", Maximize)
	x0 := make([]float64, nVars)
	vars := make([]VarID, nVars)
	for j := 0; j < nVars; j++ {
		x0[j] = rng.Float64() * 10
		vars[j] = p.AddVar("x", 0, 25)
		p.SetObj(vars[j], rng.Float64()*4-1)
	}
	for i := 0; i < nCons; i++ {
		e := NewExpr()
		lhs := 0.0
		for j := 0; j < nVars; j++ {
			if rng.Float64() < 0.5 {
				continue
			}
			coef := rng.Float64()*2 - 0.5
			e = e.Add(vars[j], coef)
			lhs += coef * x0[j]
		}
		if len(e.Terms) == 0 {
			continue
		}
		p.AddConstraint("c", e, LE, lhs+rng.Float64()*5)
	}
	return p, x0
}

// TestQuickRandomFeasibleLPs checks, over many random instances, that the
// solver (a) declares optimality, (b) returns a primal-feasible point, and
// (c) satisfies strong duality against the reported dual vector.
func TestQuickRandomFeasibleLPs(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nVars := 1 + rng.Intn(8)
		nCons := 1 + rng.Intn(8)
		p, _ := randomLP(rng, nVars, nCons)
		sol, err := p.Solve()
		if err != nil {
			t.Logf("seed %d: error %v", seed, err)
			return false
		}
		if sol.Status != StatusOptimal {
			t.Logf("seed %d: status %v (feasible by construction)", seed, sol.Status)
			return false
		}
		// Primal feasibility.
		for ci := 0; ci < p.NumConstraints(); ci++ {
			expr, rel, rhs := p.Constraint(ConID(ci))
			v := expr.Eval(sol.X)
			switch rel {
			case LE:
				if v > rhs+1e-5 {
					t.Logf("seed %d: constraint %d violated: %v > %v", seed, ci, v, rhs)
					return false
				}
			case GE:
				if v < rhs-1e-5 {
					return false
				}
			case EQ:
				if math.Abs(v-rhs) > 1e-5 {
					return false
				}
			}
		}
		for j := 0; j < p.NumVars(); j++ {
			lo, hi := p.Bounds(VarID(j))
			if sol.X[j] < lo-1e-5 || sol.X[j] > hi+1e-5 {
				t.Logf("seed %d: var %d=%v out of [%v,%v]", seed, j, sol.X[j], lo, hi)
				return false
			}
		}
		// Objective must match c'x.
		obj := 0.0
		for j := 0; j < p.NumVars(); j++ {
			obj += p.Obj(VarID(j)) * sol.X[j]
		}
		if math.Abs(obj-sol.Objective) > 1e-5*(1+math.Abs(obj)) {
			t.Logf("seed %d: objective mismatch %v vs %v", seed, obj, sol.Objective)
			return false
		}
		// Strong duality: the reported multipliers certify the optimum.
		dual, err := p.DualObjective(sol)
		if err != nil {
			t.Logf("seed %d: dual certificate: %v", seed, err)
			return false
		}
		if math.Abs(dual-sol.Objective) > 1e-5*(1+math.Abs(sol.Objective)) {
			t.Logf("seed %d: strong duality violated: primal %v dual %v", seed, sol.Objective, dual)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDualityGap verifies weak/strong duality on random LPs that have
// only LE rows and bounded variables: primal obj == sum_i y_i b_i +
// sum_j over binding upper bounds. We avoid reconstructing bound duals by
// instead checking complementary slackness of the reported row duals.
func TestQuickDualityComplementarySlackness(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		p, _ := randomLP(rng, 1+rng.Intn(6), 1+rng.Intn(6))
		sol, err := p.Solve()
		if err != nil || sol.Status != StatusOptimal {
			return err == nil && sol.Status == StatusOptimal
		}
		// For a max problem with LE rows: y_i >= 0 and y_i*(b_i - a_i'x) == 0.
		for ci := 0; ci < p.NumConstraints(); ci++ {
			expr, _, rhs := p.Constraint(ConID(ci))
			slack := rhs - expr.Eval(sol.X)
			y := sol.Dual[ci]
			if y < -1e-6 {
				t.Logf("seed %d: negative dual %v on LE row in max problem", seed, y)
				return false
			}
			if y*slack > 1e-4*(1+math.Abs(rhs)) {
				t.Logf("seed %d: complementary slackness violated: y=%v slack=%v", seed, y, slack)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEqualityLPs exercises the phase-1 artificial machinery: random
// equality-constrained LPs built around a known feasible point.
func TestQuickEqualityLPs(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed ^ 0xea117))
		nVars := 2 + rng.Intn(6)
		nEq := 1 + rng.Intn(nVars)
		p := NewProblem("eq-random", Minimize)
		x0 := make([]float64, nVars)
		vars := make([]VarID, nVars)
		for j := range vars {
			x0[j] = rng.Float64() * 5
			vars[j] = p.AddVar("x", 0, 20)
			p.SetObj(vars[j], rng.Float64()*3)
		}
		for i := 0; i < nEq; i++ {
			e := NewExpr()
			lhs := 0.0
			for j := 0; j < nVars; j++ {
				coef := rng.Float64() * 2
				e = e.Add(vars[j], coef)
				lhs += coef * x0[j]
			}
			p.AddConstraint("eq", e, EQ, lhs)
		}
		sol, err := p.Solve()
		if err != nil {
			return false
		}
		if sol.Status != StatusOptimal {
			t.Logf("seed %d: status %v on feasible equality LP", seed, sol.Status)
			return false
		}
		for ci := 0; ci < p.NumConstraints(); ci++ {
			expr, _, rhs := p.Constraint(ConID(ci))
			if math.Abs(expr.Eval(sol.X)-rhs) > 1e-5*(1+math.Abs(rhs)) {
				return false
			}
		}
		// The optimum can be no worse than the known feasible point.
		feasObj := 0.0
		for j, v := range vars {
			feasObj += p.Obj(v) * x0[j]
		}
		if sol.Objective > feasObj+1e-6*(1+math.Abs(feasObj)) {
			return false
		}
		// Strong duality holds through the phase-1 machinery too.
		dual, err := p.DualObjective(sol)
		if err != nil {
			t.Logf("seed %d: dual certificate: %v", seed, err)
			return false
		}
		return math.Abs(dual-sol.Objective) <= 1e-5*(1+math.Abs(sol.Objective))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
