package lp

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"testing"
)

// basisFixture solves a small LP with basis capture on and returns the
// terminal basis.
func basisFixture(t *testing.T) *Basis {
	t.Helper()
	p := NewProblem("basis-io", Maximize)
	x := p.AddVar("x", 0, 4)
	y := p.AddVar("y", 0, 4)
	p.SetObj(x, 3)
	p.SetObj(y, 2)
	p.AddConstraint("c", NewExpr().Add(x, 1).Add(y, 1), LE, 6)
	sol, err := p.SolveWith(SolveOptions{CaptureBasis: true})
	if err != nil || sol.Status != StatusOptimal {
		t.Fatalf("solve: %v %v", err, sol)
	}
	if sol.Basis == nil {
		t.Fatal("no basis captured")
	}
	return sol.Basis
}

func TestBasisMarshalRoundTrip(t *testing.T) {
	b := basisFixture(t)
	data, err := b.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	back, err := UnmarshalBasis(data)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.sig != b.sig || len(back.cols) != len(b.cols) {
		t.Fatalf("basis lost: %+v vs %+v", back, b)
	}
	for i := range b.cols {
		if back.cols[i] != b.cols[i] {
			t.Fatalf("cols[%d] = %d, want %d", i, back.cols[i], b.cols[i])
		}
	}
	again, err := back.MarshalBinary()
	if err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
	if !bytes.Equal(data, again) {
		t.Fatal("round trip is not canonical")
	}
}

func TestUnmarshalBasisRejectsCorruption(t *testing.T) {
	b := basisFixture(t)
	data, err := b.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	for n := 0; n < len(data); n++ {
		if _, err := UnmarshalBasis(data[:n]); err == nil {
			t.Fatalf("truncated basis (%d bytes) unmarshalled", n)
		}
	}
	if _, err := UnmarshalBasis(append(append([]byte(nil), data...), 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

// TestUnmarshalBasisLegacyFormat hand-builds a blob in the original
// versionless wire format (raw signature, uvarint count, delta columns) and
// checks it still decodes — checkpoints written before the codec was
// versioned must keep resuming. Provenance of a legacy blob is unknown, so
// it decodes as EngineAuto.
func TestUnmarshalBasisLegacyFormat(t *testing.T) {
	want := basisFixture(t)
	legacy := binary.LittleEndian.AppendUint64(nil, want.sig)
	legacy = binary.AppendUvarint(legacy, uint64(len(want.cols)))
	prev := int32(0)
	for _, c := range want.cols {
		legacy = binary.AppendUvarint(legacy, uint64(c-prev))
		prev = c
	}
	got, err := UnmarshalBasis(legacy)
	if err != nil {
		t.Fatalf("legacy blob rejected: %v", err)
	}
	if got.sig != want.sig || len(got.cols) != len(want.cols) {
		t.Fatalf("legacy decode lost data: %+v vs %+v", got, want)
	}
	for i := range want.cols {
		if got.cols[i] != want.cols[i] {
			t.Fatalf("cols[%d] = %d, want %d", i, got.cols[i], want.cols[i])
		}
	}
	if got.Engine() != EngineAuto {
		t.Fatalf("legacy blob engine = %v, want EngineAuto (unknown)", got.Engine())
	}
}

// TestUnmarshalBasisVersionError checks that a blob from a future codec
// version fails loudly with the typed error rather than being misparsed.
func TestUnmarshalBasisVersionError(t *testing.T) {
	data, err := basisFixture(t).MarshalBinary()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	data[4] = basisVersion + 1
	_, err = UnmarshalBasis(data)
	var verr *BasisVersionError
	if !errors.As(err, &verr) {
		t.Fatalf("future version decoded with err=%v, want *BasisVersionError", err)
	}
	if verr.Version != basisVersion+1 {
		t.Fatalf("version in error = %d, want %d", verr.Version, basisVersion+1)
	}
	if verr.Error() == "" {
		t.Fatal("empty error message")
	}
}

// TestUnmarshalBasisRejectsBadEngineTag: the engine byte is validated so a
// corrupted header cannot smuggle an impossible provenance through.
func TestUnmarshalBasisRejectsBadEngineTag(t *testing.T) {
	data, err := basisFixture(t).MarshalBinary()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	data[5] = 0xEE
	if _, err := UnmarshalBasis(data); err == nil {
		t.Fatal("bad engine tag accepted")
	}
}

// TestBasisCrossEngineRoundTrip captures a basis under each engine, pushes
// it through the wire codec, and reinstalls it as a warm start into the
// *other* engine. Both engines share one standard-form layout, so the warm
// start must actually take (Warm=true, no fallback) and reproduce the
// optimal objective in either direction.
func TestBasisCrossEngineRoundTrip(t *testing.T) {
	build := func() *Problem {
		p := NewProblem("cross-engine", Maximize)
		x := p.AddVar("x", 0, 9)
		y := p.AddVar("y", 0, 9)
		z := p.AddVar("z", 0, 9)
		p.SetObj(x, 3)
		p.SetObj(y, 5)
		p.SetObj(z, 4)
		p.AddConstraint("c1", NewExpr().Add(x, 2).Add(y, 3), LE, 12)
		p.AddConstraint("c2", NewExpr().Add(y, 2).Add(z, 5), LE, 10)
		p.AddConstraint("c3", NewExpr().Add(x, 3).Add(y, 2).Add(z, 4), LE, 15)
		return p
	}
	engines := []Engine{EngineDense, EngineSparse}
	for _, capture := range engines {
		for _, reinstall := range engines {
			p := build()
			capt, err := p.SolveWith(SolveOptions{Engine: capture, CaptureBasis: true})
			if err != nil || capt.Status != StatusOptimal || capt.Basis == nil {
				t.Fatalf("capture under %v: %v %v", capture, err, capt.Status)
			}
			if capt.Basis.Engine() != capture {
				t.Fatalf("captured basis engine = %v, want %v", capt.Basis.Engine(), capture)
			}
			blob, err := capt.Basis.MarshalBinary()
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			wire, err := UnmarshalBasis(blob)
			if err != nil {
				t.Fatalf("unmarshal: %v", err)
			}
			if wire.Engine() != capture {
				t.Fatalf("wire engine = %v, want %v", wire.Engine(), capture)
			}
			warm, err := p.SolveWith(SolveOptions{Engine: reinstall, WarmStart: wire})
			if err != nil {
				t.Fatalf("%v basis into %v engine: %v", capture, reinstall, err)
			}
			if warm.Status != StatusOptimal || !warm.Warm || warm.WarmFallback {
				t.Fatalf("%v basis into %v engine: status=%v warm=%v fallback=%v",
					capture, reinstall, warm.Status, warm.Warm, warm.WarmFallback)
			}
			if diff := warm.Objective - capt.Objective; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("%v basis into %v engine: objective %v, want %v",
					capture, reinstall, warm.Objective, capt.Objective)
			}
		}
	}
}

func TestSolveWithCancelledContext(t *testing.T) {
	p := NewProblem("ctx", Maximize)
	x := p.AddVar("x", 0, 10)
	p.SetObj(x, 1)
	p.AddConstraint("c", NewExpr().Add(x, 1), LE, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sol, err := p.SolveWith(SolveOptions{Ctx: ctx})
	if err != nil {
		t.Fatalf("cancelled solve errored: %v", err)
	}
	if sol.Status != StatusInterrupted {
		t.Fatalf("status = %v, want interrupted", sol.Status)
	}
	if sol.Status.String() != "interrupted" {
		t.Fatalf("status string = %q", sol.Status.String())
	}
	// A live context leaves the solve untouched.
	sol, err = p.SolveWith(SolveOptions{Ctx: context.Background()})
	if err != nil || sol.Status != StatusOptimal {
		t.Fatalf("background-ctx solve: %v %v", err, sol.Status)
	}
}
