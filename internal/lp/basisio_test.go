package lp

import (
	"bytes"
	"context"
	"testing"
)

// basisFixture solves a small LP with basis capture on and returns the
// terminal basis.
func basisFixture(t *testing.T) *Basis {
	t.Helper()
	p := NewProblem("basis-io", Maximize)
	x := p.AddVar("x", 0, 4)
	y := p.AddVar("y", 0, 4)
	p.SetObj(x, 3)
	p.SetObj(y, 2)
	p.AddConstraint("c", NewExpr().Add(x, 1).Add(y, 1), LE, 6)
	sol, err := p.SolveWith(SolveOptions{CaptureBasis: true})
	if err != nil || sol.Status != StatusOptimal {
		t.Fatalf("solve: %v %v", err, sol)
	}
	if sol.Basis == nil {
		t.Fatal("no basis captured")
	}
	return sol.Basis
}

func TestBasisMarshalRoundTrip(t *testing.T) {
	b := basisFixture(t)
	data, err := b.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	back, err := UnmarshalBasis(data)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.sig != b.sig || len(back.cols) != len(b.cols) {
		t.Fatalf("basis lost: %+v vs %+v", back, b)
	}
	for i := range b.cols {
		if back.cols[i] != b.cols[i] {
			t.Fatalf("cols[%d] = %d, want %d", i, back.cols[i], b.cols[i])
		}
	}
	again, err := back.MarshalBinary()
	if err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
	if !bytes.Equal(data, again) {
		t.Fatal("round trip is not canonical")
	}
}

func TestUnmarshalBasisRejectsCorruption(t *testing.T) {
	b := basisFixture(t)
	data, err := b.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	for n := 0; n < len(data); n++ {
		if _, err := UnmarshalBasis(data[:n]); err == nil {
			t.Fatalf("truncated basis (%d bytes) unmarshalled", n)
		}
	}
	if _, err := UnmarshalBasis(append(append([]byte(nil), data...), 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestSolveWithCancelledContext(t *testing.T) {
	p := NewProblem("ctx", Maximize)
	x := p.AddVar("x", 0, 10)
	p.SetObj(x, 1)
	p.AddConstraint("c", NewExpr().Add(x, 1), LE, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sol, err := p.SolveWith(SolveOptions{Ctx: ctx})
	if err != nil {
		t.Fatalf("cancelled solve errored: %v", err)
	}
	if sol.Status != StatusInterrupted {
		t.Fatalf("status = %v, want interrupted", sol.Status)
	}
	if sol.Status.String() != "interrupted" {
		t.Fatalf("status string = %q", sol.Status.String())
	}
	// A live context leaves the solve untouched.
	sol, err = p.SolveWith(SolveOptions{Ctx: context.Background()})
	if err != nil || sol.Status != StatusOptimal {
		t.Fatalf("background-ctx solve: %v %v", err, sol.Status)
	}
}
