package lp

import (
	"math"
	"testing"
)

// FuzzSimplexConsistency decodes fuzz bytes into a small LP and checks the
// solver never panics and, when it claims optimality, returns a feasible
// point whose objective matches c'x.
func FuzzSimplexConsistency(f *testing.F) {
	f.Add([]byte{10, 20, 30, 40, 50, 60, 70, 80})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{255, 1, 128, 7, 9, 200, 33, 21, 90, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		// Decode: first byte picks shape, rest become coefficients in [-6, 6].
		nVars := 1 + int(data[0]%4)
		nCons := 1 + int(data[1]%4)
		sense := Minimize
		if data[2]%2 == 1 {
			sense = Maximize
		}
		vals := data[3:]
		at := 0
		next := func() float64 {
			if at >= len(vals) {
				return 1
			}
			v := float64(int(vals[at])%13 - 6)
			at++
			return v
		}
		p := NewProblem("fuzz", sense)
		vars := make([]VarID, nVars)
		for j := range vars {
			vars[j] = p.AddVar("x", 0, 20) // bounded box keeps it solvable
			p.SetObj(vars[j], next())
		}
		for i := 0; i < nCons; i++ {
			e := NewExpr()
			for j := 0; j < nVars; j++ {
				if c := next(); c != 0 {
					e = e.Add(vars[j], c)
				}
			}
			if len(e.Terms) == 0 {
				continue
			}
			rel := []Rel{LE, GE, EQ}[int(vals[at%max(len(vals), 1)]%3)]
			p.AddConstraint("c", e, rel, next()*3)
		}
		sol, err := p.Solve()
		if err != nil {
			t.Fatalf("solver error: %v", err)
		}
		if sol.Status != StatusOptimal {
			return // infeasible/unbounded are legitimate outcomes
		}
		// Feasibility within tolerance.
		for ci := 0; ci < p.NumConstraints(); ci++ {
			expr, rel, rhs := p.Constraint(ConID(ci))
			v := expr.Eval(sol.X)
			switch rel {
			case LE:
				if v > rhs+1e-4 {
					t.Fatalf("LE row violated: %v > %v", v, rhs)
				}
			case GE:
				if v < rhs-1e-4 {
					t.Fatalf("GE row violated: %v < %v", v, rhs)
				}
			case EQ:
				if math.Abs(v-rhs) > 1e-4 {
					t.Fatalf("EQ row violated: %v != %v", v, rhs)
				}
			}
		}
		obj := 0.0
		for j := range vars {
			if sol.X[j] < -1e-6 || sol.X[j] > 20+1e-6 {
				t.Fatalf("variable out of box: %v", sol.X[j])
			}
			obj += p.Obj(vars[j]) * sol.X[j]
		}
		if math.Abs(obj-sol.Objective) > 1e-4*(1+math.Abs(obj)) {
			t.Fatalf("objective mismatch: %v vs %v", obj, sol.Objective)
		}
		// Strong duality: the returned multipliers must certify the optimal
		// objective exactly (silent pivoting bugs fail here long before they
		// corrupt a feasibility check).
		dual, err := p.DualObjective(sol)
		if err != nil {
			t.Fatalf("dual certificate: %v", err)
		}
		if math.Abs(dual-sol.Objective) > 1e-4*(1+math.Abs(sol.Objective)) {
			t.Fatalf("strong duality violated: primal %v vs dual %v", sol.Objective, dual)
		}
		// Engine consistency: the sparse revised simplex must reproduce the
		// dense tableau's answer at certificate precision (shared canonical
		// extraction) on every instance the generator can produce. Both
		// engines are forced explicitly so the oracle survives the CI leg
		// that flips the process default to sparse.
		dense, err := p.SolveWith(SolveOptions{Engine: EngineDense})
		if err != nil {
			t.Fatalf("dense engine: %v", err)
		}
		sparse, err := p.SolveWith(SolveOptions{Engine: EngineSparse})
		if err != nil {
			t.Fatalf("sparse engine: %v", err)
		}
		if sparse.Status != dense.Status {
			t.Fatalf("sparse status %v, dense %v", sparse.Status, dense.Status)
		}
		if dense.Status == StatusOptimal {
			if math.Abs(sparse.Objective-dense.Objective) > 1e-9*(1+math.Abs(dense.Objective)) {
				t.Fatalf("sparse objective %v, dense %v", sparse.Objective, dense.Objective)
			}
			for j := range dense.X {
				if math.Abs(sparse.X[j]-dense.X[j]) > 1e-9*(1+math.Abs(dense.X[j])) {
					t.Fatalf("sparse X[%d]=%v, dense %v", j, sparse.X[j], dense.X[j])
				}
			}
			// Pivot counts are NOT compared here: on degenerate ties the two
			// engines' different roundoff (incremental tableau vs FTRAN) can
			// legitimately split a pricing tie and cost a pivot either way.
			// The answer stays identical by canonical extraction; exact pivot
			// parity is asserted only on the curated differential fixtures.
		}
		// Warm-start consistency: capture the basis, fix one variable at its
		// optimal value (a branch-and-bound style child), and require the warm
		// path to agree with a cold solve of the same child — same status and,
		// when optimal, the same objective.
		capt, err := p.SolveWith(SolveOptions{CaptureBasis: true})
		if err != nil || capt.Status != StatusOptimal || capt.Basis == nil {
			t.Fatalf("capture re-solve failed: %v status=%v basis=%v", err, capt.Status, capt.Basis)
		}
		j := int(data[0]) % nVars
		v := capt.X[j]
		ov := map[VarID][2]float64{vars[j]: {v, v}}
		coldChild, err := p.SolveWith(SolveOptions{BoundOverride: ov})
		if err != nil {
			t.Fatalf("cold child: %v", err)
		}
		warmChild, err := p.SolveWith(SolveOptions{BoundOverride: ov, WarmStart: capt.Basis})
		if err != nil {
			t.Fatalf("warm child: %v", err)
		}
		if warmChild.Status != coldChild.Status {
			t.Fatalf("warm child status %v, cold %v", warmChild.Status, coldChild.Status)
		}
		if coldChild.Status == StatusOptimal &&
			math.Abs(warmChild.Objective-coldChild.Objective) > 1e-6*(1+math.Abs(coldChild.Objective)) {
			t.Fatalf("warm child objective %v diverged from cold %v (warm=%v fallback=%v)",
				warmChild.Objective, coldChild.Objective, warmChild.Warm, warmChild.WarmFallback)
		}
	})
}
