package lp

import (
	"encoding/binary"
	"fmt"
)

// Basis wire codec.
//
// The original (legacy) encoding was versionless: 8-byte LE signature,
// uvarint count, delta-encoded sorted columns. The engine split surfaced the
// latent assumption baked into that format: the signature and column set
// describe the dense tableau's standard-form layout with nothing saying so.
// Both engines deliberately share one standard form, so the layout itself is
// engine-portable — but the blob must say which engine captured it, and must
// be able to evolve if an engine ever gains a layout of its own. Version 2
// therefore adds a magic header and an engine provenance byte, and the
// decoder keeps reading legacy blobs (old checkpoints resume fine; they
// decode with EngineAuto provenance, meaning unknown). Unknown versions fail
// loudly with *BasisVersionError instead of being misread as column data.

// basisMagic introduces a versioned basis blob. A legacy blob starts with
// the raw signature instead; the decoder tells them apart by this prefix.
var basisMagic = [4]byte{'L', 'P', 'B', 'S'}

// basisVersion is the current wire version.
const basisVersion = 2

// BasisVersionError reports a basis blob whose version this build does not
// understand. Callers (checkpoint resume, tooling) can detect it with
// errors.As and degrade to a cold solve instead of failing the whole load.
type BasisVersionError struct {
	Version byte
}

func (e *BasisVersionError) Error() string {
	return fmt.Sprintf("lp: basis blob version %d not supported (max %d)", e.Version, basisVersion)
}

// MarshalBinary serializes the basis snapshot for checkpointing: magic,
// version, capturing engine, the structure signature, and the sorted
// basic-column set, varint delta-encoded. Integrity (checksums) remains the
// surrounding checkpoint format's job.
func (b *Basis) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, 4+2+8+binary.MaxVarintLen64*(len(b.cols)+1))
	buf = append(buf, basisMagic[:]...)
	buf = append(buf, basisVersion, byte(b.engine))
	buf = binary.LittleEndian.AppendUint64(buf, b.sig)
	buf = binary.AppendUvarint(buf, uint64(len(b.cols)))
	prev := int32(0)
	for _, c := range b.cols {
		buf = binary.AppendUvarint(buf, uint64(c-prev))
		prev = c
	}
	return buf, nil
}

// UnmarshalBasis reconstructs a Basis written by MarshalBinary — current or
// legacy versionless format — validating shape (sorted, non-negative
// columns) so a corrupted checkpoint cannot smuggle an unusable snapshot
// into the warm-start path. A versioned blob with an unknown version is a
// *BasisVersionError.
func UnmarshalBasis(data []byte) (*Basis, error) {
	engine := EngineAuto // legacy blobs carry no provenance
	if len(data) >= 6 && data[0] == basisMagic[0] && data[1] == basisMagic[1] &&
		data[2] == basisMagic[2] && data[3] == basisMagic[3] {
		if data[4] != basisVersion {
			return nil, &BasisVersionError{Version: data[4]}
		}
		switch Engine(data[5]) {
		case EngineAuto, EngineDense, EngineSparse:
			engine = Engine(data[5])
		default:
			return nil, fmt.Errorf("lp: basis blob has unknown engine tag %d", data[5])
		}
		data = data[6:]
	}
	if len(data) < 8 {
		return nil, fmt.Errorf("lp: basis blob truncated (%d bytes)", len(data))
	}
	sig := binary.LittleEndian.Uint64(data[:8])
	rest := data[8:]
	n, k := binary.Uvarint(rest)
	if k <= 0 || n > uint64(1<<30) {
		return nil, fmt.Errorf("lp: basis blob has bad column count")
	}
	rest = rest[k:]
	cols := make([]int32, n)
	prev := int64(0)
	for i := range cols {
		d, k := binary.Uvarint(rest)
		if k <= 0 {
			return nil, fmt.Errorf("lp: basis blob truncated at column %d", i)
		}
		rest = rest[k:]
		prev += int64(d)
		if prev > int64(1<<31-1) {
			return nil, fmt.Errorf("lp: basis column %d overflows", i)
		}
		cols[i] = int32(prev)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("lp: basis blob has %d trailing bytes", len(rest))
	}
	return &Basis{cols: cols, sig: sig, engine: engine}, nil
}
