package lp

import (
	"encoding/binary"
	"fmt"
)

// MarshalBinary serializes the basis snapshot for checkpointing: the
// structure signature followed by the sorted basic-column set, varint
// delta-encoded. The encoding is versionless on purpose — the surrounding
// checkpoint format owns versioning and integrity.
func (b *Basis) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, 8+binary.MaxVarintLen64*(len(b.cols)+1))
	buf = binary.LittleEndian.AppendUint64(buf, b.sig)
	buf = binary.AppendUvarint(buf, uint64(len(b.cols)))
	prev := int32(0)
	for _, c := range b.cols {
		buf = binary.AppendUvarint(buf, uint64(c-prev))
		prev = c
	}
	return buf, nil
}

// UnmarshalBasis reconstructs a Basis written by MarshalBinary, validating
// shape (sorted, non-negative columns) so a corrupted checkpoint cannot
// smuggle an unusable snapshot into the warm-start path.
func UnmarshalBasis(data []byte) (*Basis, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("lp: basis blob truncated (%d bytes)", len(data))
	}
	sig := binary.LittleEndian.Uint64(data[:8])
	rest := data[8:]
	n, k := binary.Uvarint(rest)
	if k <= 0 || n > uint64(1<<30) {
		return nil, fmt.Errorf("lp: basis blob has bad column count")
	}
	rest = rest[k:]
	cols := make([]int32, n)
	prev := int64(0)
	for i := range cols {
		d, k := binary.Uvarint(rest)
		if k <= 0 {
			return nil, fmt.Errorf("lp: basis blob truncated at column %d", i)
		}
		rest = rest[k:]
		prev += int64(d)
		if prev > int64(1<<31-1) {
			return nil, fmt.Errorf("lp: basis column %d overflows", i)
		}
		cols[i] = int32(prev)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("lp: basis blob has %d trailing bytes", len(rest))
	}
	return &Basis{cols: cols, sig: sig}, nil
}
