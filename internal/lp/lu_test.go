package lp

import (
	"math"
	"math/rand"
	"testing"
)

// LU factorization numerics: correctness of FTRAN/BTRAN against direct
// multiplication, rejection of singular and sub-pivot-tolerance bases, eta
// algebra consistency, refactorization under eta-file growth, and a fuzz
// harness asserting the reconstruction residual |B·B⁻¹ − I| stays under
// tolerance for random nonsingular bases.

// denseCSC builds a cscMatrix from a dense m x n column-major matrix given
// as columns.
func denseCSC(m int, cols ...[]float64) *cscMatrix {
	c := &cscMatrix{m: m, n: len(cols)}
	c.colPtr = make([]int32, len(cols)+1)
	for j, col := range cols {
		c.colPtr[j] = int32(len(c.rowIdx))
		for i := 0; i < m; i++ {
			if col[i] != 0 {
				c.rowIdx = append(c.rowIdx, int32(i))
				c.val = append(c.val, col[i])
			}
		}
		_ = j
	}
	c.colPtr[len(cols)] = int32(len(c.rowIdx))
	return c
}

// mulBasis computes B·z (row space) for the basis given by cols, z in
// position space.
func mulBasis(a *cscMatrix, cols []int, z []float64) []float64 {
	out := make([]float64, a.m)
	for k, j := range cols {
		if z[k] == 0 {
			continue
		}
		for q := a.colPtr[j]; q < a.colPtr[j+1]; q++ {
			out[a.rowIdx[q]] += a.val[q] * z[k]
		}
	}
	return out
}

// mulBasisT computes Bᵀ·y (position space) for y in row space.
func mulBasisT(a *cscMatrix, cols []int, y []float64) []float64 {
	out := make([]float64, len(cols))
	for k, j := range cols {
		out[k] = a.dot(j, y)
	}
	return out
}

func maxAbsDiff(a, b []float64) float64 {
	worst := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

func TestLUSolvesKnownSystem(t *testing.T) {
	// A 3x3 basis requiring actual row pivoting (leading zero in column 0).
	a := denseCSC(3,
		[]float64{0, 2, 1},
		[]float64{3, 1, 0},
		[]float64{1, 0, 4},
	)
	var lu luFactor
	if !lu.factorize(a, []int{0, 1, 2}) {
		t.Fatal("factorize failed on a nonsingular basis")
	}
	cols := []int{0, 1, 2}
	// FTRAN: B·z = v for a few right-hand sides.
	for _, v := range [][]float64{{1, 0, 0}, {0, 1, 0}, {5, -2, 3}} {
		vin := append([]float64(nil), v...)
		z := make([]float64, 3)
		lu.ftran(vin, z)
		if res := maxAbsDiff(mulBasis(a, cols, z), v); res > 1e-12 {
			t.Fatalf("FTRAN residual %g for rhs %v", res, v)
		}
		for i := range vin {
			if vin[i] != 0 {
				t.Fatalf("ftran left input dirty at %d: %v", i, vin)
			}
		}
	}
	// BTRAN: Bᵀ·y = c.
	for _, c := range [][]float64{{1, 0, 0}, {0, 0, 1}, {-1, 4, 2}} {
		cin := append([]float64(nil), c...)
		y := make([]float64, 3)
		lu.btran(cin, y)
		if res := maxAbsDiff(mulBasisT(a, cols, y), c); res > 1e-12 {
			t.Fatalf("BTRAN residual %g for c %v", res, c)
		}
		for i := range cin {
			if cin[i] != 0 {
				t.Fatalf("btran left input dirty at %d: %v", i, cin)
			}
		}
	}
}

func TestLURejectsSingularBasis(t *testing.T) {
	// Column 2 = column 0 + column 1: rank 2.
	a := denseCSC(3,
		[]float64{1, 0, 1},
		[]float64{0, 1, 1},
		[]float64{1, 1, 2},
	)
	var lu luFactor
	if lu.factorize(a, []int{0, 1, 2}) {
		t.Fatal("factorize accepted a singular basis")
	}
	// Repeated column is singular too.
	if lu.factorize(a, []int{0, 0, 1}) {
		t.Fatal("factorize accepted a repeated column")
	}
	// Wrong cardinality is rejected outright.
	if lu.factorize(a, []int{0, 1}) {
		t.Fatal("factorize accepted a short basis")
	}
}

func TestLURejectsSubToleranceBasis(t *testing.T) {
	// The only candidate pivot for the last column is below pivotTol: the
	// basis is numerically singular even though det != 0 in exact arithmetic.
	tiny := pivotTol / 2
	a := denseCSC(2,
		[]float64{1, 0},
		[]float64{0, tiny},
	)
	var lu luFactor
	if lu.factorize(a, []int{0, 1}) {
		t.Fatal("factorize accepted a sub-pivot-tolerance basis")
	}
}

func TestLUNearDegenerateBasisStaysAccurate(t *testing.T) {
	// Nearly parallel columns (condition number ~1e6): the factorization must
	// still reconstruct B·B⁻¹ = I well under the feasibility tolerance.
	e := 1e-6
	a := denseCSC(2,
		[]float64{1, 1},
		[]float64{1, 1 + e},
	)
	var lu luFactor
	if !lu.factorize(a, []int{0, 1}) {
		t.Fatal("factorize failed on an ill-conditioned but usable basis")
	}
	cols := []int{0, 1}
	for i := 0; i < 2; i++ {
		ei := make([]float64, 2)
		ei[i] = 1
		z := make([]float64, 2)
		lu.ftran(append([]float64(nil), ei...), z)
		if res := maxAbsDiff(mulBasis(a, cols, z), ei); res > 1e-9 {
			t.Fatalf("|B·B⁻¹−I| column %d residual %g", i, res)
		}
	}
}

// TestLUEtaUpdateMatchesRefactorization pivots a column into the basis via
// the product-form eta file and cross-checks every FTRAN/BTRAN against a
// from-scratch factorization of the updated basis.
func TestLUEtaUpdateMatchesRefactorization(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const m = 6
	cols := make([][]float64, m+3)
	for j := range cols {
		cols[j] = make([]float64, m)
		for i := range cols[j] {
			if rng.Float64() < 0.6 {
				cols[j][i] = rng.NormFloat64()
			}
		}
		cols[j][rng.Intn(m)] += 2 // keep things comfortably nonsingular
	}
	a := denseCSC(m, cols...)
	basis := []int{0, 1, 2, 3, 4, 5}
	var lu luFactor
	if !lu.factorize(a, basis) {
		t.Skip("random basis happened to be singular")
	}
	// Pivot columns 6, 7, 8 into positions 1, 3, 0 via etas.
	for step, sub := range []struct{ pr, pc int }{{1, 6}, {3, 7}, {0, 8}} {
		v := make([]float64, m)
		a.scatter(sub.pc, v)
		d := make([]float64, m)
		lu.ftran(v, d)
		if math.Abs(d[sub.pr]) < pivotTol {
			t.Skipf("step %d: pivot too small to be a fair test", step)
		}
		lu.appendEta(sub.pr, d)
		basis[sub.pr] = sub.pc

		var fresh luFactor
		if !fresh.factorize(a, basis) {
			t.Fatalf("step %d: updated basis singular on refactorization", step)
		}
		for i := 0; i < m; i++ {
			ei := make([]float64, m)
			ei[i] = 1
			zEta := make([]float64, m)
			lu.ftran(append([]float64(nil), ei...), zEta)
			if res := maxAbsDiff(mulBasis(a, basis, zEta), ei); res > 1e-8 {
				t.Fatalf("step %d: eta FTRAN residual %g on column %d", step, res, i)
			}
			ci := make([]float64, m)
			ci[i] = 1
			yEta := make([]float64, m)
			lu.btran(ci, yEta)
			if res := maxAbsDiff(mulBasisT(a, basis, yEta), append(make([]float64, i), append([]float64{1}, make([]float64, m-i-1)...)...)); res > 1e-8 {
				t.Fatalf("step %d: eta BTRAN residual %g on row %d", step, res, i)
			}
		}
	}
}

// TestSparseRefactorizesUnderEtaGrowth drives the sparse engine down the
// Klee–Minty exponential path (2^n − 1 pivots) so the eta file crosses
// etaLimit several times, and checks refactorization both happened and left
// the terminal factorization consistent: |B·B⁻¹ − I| under tolerance on the
// terminal basis.
func TestSparseRefactorizesUnderEtaGrowth(t *testing.T) {
	const n = 8 // 255 pivots >> etaLimit
	p := NewProblem("km-eta", Maximize)
	xs := make([]VarID, n)
	for j := range xs {
		xs[j] = p.AddVar("x", 0, Inf)
		p.SetObj(xs[j], math.Pow(2, float64(n-1-j)))
	}
	for i := 0; i < n; i++ {
		e := NewExpr()
		for j := 0; j < i; j++ {
			e = e.Add(xs[j], math.Pow(2, float64(i-j+1)))
		}
		e = e.Add(xs[i], 1)
		p.AddConstraint("km", e, LE, math.Pow(5, float64(i+1)))
	}
	s, err := buildStandard(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	sp := newSparseSolver(s, SolveOptions{})
	if _, ok := sp.crash(); !ok {
		t.Fatal("crash failed")
	}
	if !sp.factorize() {
		t.Fatal("initial factorization failed")
	}
	sp.computeXB()
	sp.resetCosts(s.c)
	if st := sp.run(); st != StatusOptimal || sp.failed {
		t.Fatalf("run: status %v failed=%t", st, sp.failed)
	}
	if sp.iters <= etaLimit {
		t.Fatalf("only %d pivots; instance no longer exercises eta growth", sp.iters)
	}
	if sp.refactors == 0 {
		t.Fatalf("%d pivots but no refactorization (etaLimit=%d)", sp.iters, etaLimit)
	}
	// Terminal consistency: probe B·B⁻¹ against identity columns.
	for i := 0; i < s.m; i++ {
		ei := make([]float64, s.m)
		ei[i] = 1
		z := make([]float64, s.m)
		sp.lu.ftran(append([]float64(nil), ei...), z)
		if res := maxAbsDiff(mulBasis(sp.a, sp.basis, z), ei); res > 1e-7 {
			t.Fatalf("terminal |B·B⁻¹−I| residual %g on column %d", res, i)
		}
	}
	// And the dense engine agrees on the answer (belt and braces: the
	// differential suite covers this, but this instance is the stress case).
	dense, err := p.SolveWith(SolveOptions{Engine: EngineDense})
	if err != nil || dense.Status != StatusOptimal {
		t.Fatalf("dense: %v %v", err, dense.Status)
	}
	sparse, err := p.SolveWith(SolveOptions{Engine: EngineSparse})
	if err != nil || sparse.Status != StatusOptimal {
		t.Fatalf("sparse: %v %v", err, sparse.Status)
	}
	if math.Abs(dense.Objective-sparse.Objective) > 1e-9*(1+math.Abs(dense.Objective)) {
		t.Fatalf("objectives diverged: %v vs %v", sparse.Objective, dense.Objective)
	}
}

// FuzzLUReconstruction: random sparse bases either factorize with
// |B·B⁻¹ − I| under tolerance or are rejected — never a silently wrong
// factorization. Run with `go test -fuzz=FuzzLUReconstruction ./internal/lp`.
func FuzzLUReconstruction(f *testing.F) {
	f.Add(int64(1), uint8(4))
	f.Add(int64(99), uint8(7))
	f.Add(int64(-3), uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, mByte uint8) {
		m := 1 + int(mByte%8)
		rng := rand.New(rand.NewSource(seed))
		cols := make([][]float64, m)
		scale := math.Pow(10, float64(rng.Intn(7)-3)) // 1e-3 .. 1e3
		for j := range cols {
			cols[j] = make([]float64, m)
			for i := range cols[j] {
				if rng.Float64() < 0.5 {
					cols[j][i] = rng.NormFloat64() * scale
				}
			}
		}
		a := denseCSC(m, cols...)
		basis := make([]int, m)
		for k := range basis {
			basis[k] = k
		}
		var lu luFactor
		if !lu.factorize(a, basis) {
			return // rejection is a legitimate outcome for random matrices
		}
		// Accepted: the reconstruction must be accurate relative to the
		// matrix scale and the smallest pivot it accepted.
		minPiv := math.Inf(1)
		for _, d := range lu.udia {
			if v := math.Abs(d); v < minPiv {
				minPiv = v
			}
		}
		tol := 1e-10 * (1 + scale*scale/minPiv) * float64(m)
		for i := 0; i < m; i++ {
			ei := make([]float64, m)
			ei[i] = 1
			z := make([]float64, m)
			lu.ftran(append([]float64(nil), ei...), z)
			if res := maxAbsDiff(mulBasis(a, basis, z), ei); res > tol {
				t.Fatalf("m=%d scale=%g: |B·B⁻¹−I| residual %g > %g on column %d",
					m, scale, res, tol, i)
			}
			ci := make([]float64, m)
			ci[i] = 1
			y := make([]float64, m)
			lu.btran(ci, y)
			got := mulBasisT(a, basis, y)
			want := make([]float64, m)
			want[i] = 1
			if res := maxAbsDiff(got, want); res > tol {
				t.Fatalf("m=%d scale=%g: |BᵀB⁻ᵀ−I| residual %g > %g on row %d",
					m, scale, res, tol, i)
			}
		}
	})
}
