package kkt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/lp"
	"repro/internal/milp"
)

// buildBoundedInner creates a random max-flow-shaped inner LP (unit
// objective, 0/1 rows) with DualUB/SlackUB/VarUB set, mimicking what
// mcf.BuildInnerMaxFlow emits for the meta optimization.
func buildBoundedInner(rng *rand.Rand, nVars, nRows int) *InnerLP {
	in := &InnerLP{Name: "bounded", NumVars: nVars}
	in.Obj = make([]float64, nVars)
	in.VarUB = make([]float64, nVars)
	for j := 0; j < nVars; j++ {
		in.Obj[j] = 1
		in.VarUB[j] = 10
	}
	covered := make([]bool, nVars)
	for i := 0; i < nRows; i++ {
		r := Row{Name: "r", Rel: lp.LE, RHS: Constant(2 + rng.Float64()*8),
			DualUB: 1, SlackUB: 10}
		for j := 0; j < nVars; j++ {
			if rng.Float64() < 0.6 {
				r.Terms = append(r.Terms, InnerTerm{j, 1})
				covered[j] = true
			}
		}
		in.AddRow(r)
	}
	for j, c := range covered {
		if !c {
			in.AddRow(Row{Name: "cover", Rel: lp.LE, DualUB: 1, SlackUB: 10,
				Terms: []InnerTerm{{j, 1}}, RHS: Constant(2 + rng.Float64()*8)})
		}
	}
	return in
}

// TestQuickBoundsPreserveCertifiedOptimum is the soundness property of the
// tighteners: adding dual bounds and McCormick cuts must not change the
// certified inner optimum (they only cut relaxation space, never the
// optimal KKT points of unit-objective 0/1 max-flow LPs).
func TestQuickBoundsPreserveCertifiedOptimum(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nVars := 1 + rng.Intn(5)
		nRows := 1 + rng.Intn(4)
		in := buildBoundedInner(rng, nVars, nRows)

		// Direct solve for the truth.
		direct := lp.NewProblem("direct", lp.Maximize)
		dx := make([]lp.VarID, nVars)
		for j := range dx {
			dx[j] = direct.AddVar("x", 0, lp.Inf)
			direct.SetObj(dx[j], 1)
		}
		for _, r := range in.Rows {
			e := lp.NewExpr()
			for _, tm := range r.Terms {
				e = e.Add(dx[tm.Var], tm.Coef)
			}
			direct.AddConstraint(r.Name, e, r.Rel, r.RHS.Const)
		}
		dsol, err := direct.Solve()
		if err != nil || dsol.Status != lp.StatusOptimal {
			return false
		}

		// Certified system under an adversarial minimizer, with bounds+cuts.
		p := lp.NewProblem("meta", lp.Minimize)
		m := milp.NewModel(p)
		res, err := Emit(m, in, true)
		if err != nil {
			return false
		}
		for j := 0; j < nVars; j++ {
			p.SetObj(res.X[j], 1)
		}
		msol, err := milp.Solve(m, milp.Options{MaxNodes: 20000})
		if err != nil || msol.Status != milp.StatusOptimal {
			t.Logf("seed %d: err=%v status=%v", seed, err, msol.Status)
			return false
		}
		got := res.Obj.Eval(msol.X)
		if got < dsol.Objective-1e-5 || got > dsol.Objective+1e-5 {
			t.Logf("seed %d: certified %v != direct %v (with bounds+cuts)", seed, got, dsol.Objective)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestCutsTightenRelaxation verifies the point of the McCormick cuts: the
// LP relaxation (complementarity dropped) of a bounded certified system
// admits a smaller "fake" inner objective without cuts than with them.
func TestCutsTightenRelaxation(t *testing.T) {
	build := func(withBounds bool) float64 {
		in := &InnerLP{Name: "tight", NumVars: 2, Obj: []float64{1, 1}}
		row := Row{Name: "cap", Rel: lp.LE, RHS: Constant(10),
			Terms: []InnerTerm{{0, 1}, {1, 1}}}
		rows := []Row{row,
			{Name: "d0", Rel: lp.LE, RHS: Constant(8), Terms: []InnerTerm{{0, 1}}},
			{Name: "d1", Rel: lp.LE, RHS: Constant(8), Terms: []InnerTerm{{1, 1}}},
		}
		if withBounds {
			for i := range rows {
				rows[i].DualUB = 1
				rows[i].SlackUB = 10
			}
			in.VarUB = []float64{8, 8}
		}
		in.Rows = rows
		p := lp.NewProblem("meta", lp.Minimize)
		m := milp.NewModel(p)
		res, err := Emit(m, in, true)
		if err != nil {
			t.Fatal(err)
		}
		p.SetObj(res.X[0], 1)
		p.SetObj(res.X[1], 1)
		// LP relaxation only: solve the bare LP, ignoring complementarity.
		sol, err := p.Solve()
		if err != nil || sol.Status != lp.StatusOptimal {
			t.Fatalf("relaxation: %v %v", err, sol.Status)
		}
		return sol.Objective
	}
	loose := build(false)
	tight := build(true)
	// True inner optimum is 10; the unbounded relaxation lets the adversary
	// push the inner objective to 0, the cuts must force it up.
	if loose > 1e-6 {
		t.Fatalf("unbounded relaxation unexpectedly tight: %v", loose)
	}
	if tight < 5 {
		t.Fatalf("cuts did not tighten the relaxation: %v (want >= 5, true optimum 10)", tight)
	}
}

// TestReducedCostHardBound: when every row touching a variable has a dual
// bound, the emitted reduced-cost variable gets a finite upper bound.
func TestReducedCostHardBound(t *testing.T) {
	in := &InnerLP{Name: "rc", NumVars: 1, Obj: []float64{1}, VarUB: []float64{5}}
	in.AddRow(Row{Name: "cap", Rel: lp.LE, RHS: Constant(5), DualUB: 1, SlackUB: 5,
		Terms: []InnerTerm{{0, 1}}})
	p := lp.NewProblem("meta", lp.Maximize)
	m := milp.NewModel(p)
	res, err := Emit(m, in, true)
	if err != nil {
		t.Fatal(err)
	}
	_, hi := p.Bounds(res.ReducedCosts[0])
	// rc = dual - 1 <= 1*1 - 1 = 0: the bound should pin rc to zero.
	if hi != 0 {
		t.Fatalf("rc upper bound %v, want 0", hi)
	}
	// And the system still certifies: dual must equal exactly 1, x = 5.
	sol, err := milp.Solve(m, milp.Options{})
	if err != nil || sol.Status != milp.StatusOptimal {
		t.Fatalf("err=%v status=%v", err, sol.Status)
	}
	if x := sol.X[res.X[0]]; x < 5-1e-6 {
		t.Fatalf("x=%v, want 5", x)
	}
}
