package kkt

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/lp"
	"repro/internal/milp"
)

const eps = 1e-5

func almost(a, b float64) bool { return math.Abs(a-b) <= eps*(1+math.Abs(a)+math.Abs(b)) }

// TestCertifyForcesInnerOptimum is the crux of the rewrite: even when the
// meta objective *minimizes* the inner objective, a certified system only
// admits inner-optimal points. Inner: max x s.t. x <= 5. Meta: min x.
// Without certification min x = 0; with KKT the only feasible x is 5.
func TestCertifyForcesInnerOptimum(t *testing.T) {
	build := func(certify bool) float64 {
		p := lp.NewProblem("meta", lp.Minimize)
		m := milp.NewModel(p)
		in := &InnerLP{Name: "inner", NumVars: 1, Obj: []float64{1}}
		in.AddRow(Row{Name: "cap", Terms: []InnerTerm{{0, 1}}, Rel: lp.LE, RHS: Constant(5)})
		res, err := Emit(m, in, certify)
		if err != nil {
			t.Fatal(err)
		}
		p.SetObj(res.X[0], 1) // minimize the inner variable
		sol, err := milp.Solve(m, milp.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != milp.StatusOptimal {
			t.Fatalf("certify=%v: status %v", certify, sol.Status)
		}
		return sol.X[res.X[0]]
	}
	if x := build(false); !almost(x, 0) {
		t.Fatalf("uncertified min x = %v, want 0", x)
	}
	if x := build(true); !almost(x, 5) {
		t.Fatalf("certified min x = %v, want 5 (inner optimum)", x)
	}
}

// TestFigure2Rectangle checks the paper's Figure 2 analytically: for the
// quadratic problem min w^2 + l^2 s.t. 2(w+l) >= P, the KKT system
// 2w = 2lambda, 2l = 2lambda, lambda*(w + l - P/2) = 0, lambda >= 0 has the
// unique solution w = l = lambda = P/4.
func TestFigure2Rectangle(t *testing.T) {
	for _, P := range []float64{1, 4, 10, 36.5} {
		w, l, lam := P/4, P/4, P/4
		// Stationarity.
		if !almost(2*w, 2*lam) || !almost(2*l, 2*lam) {
			t.Fatalf("P=%v: stationarity fails", P)
		}
		// Primal feasibility.
		if 2*(w+l) < P-eps {
			t.Fatalf("P=%v: primal infeasible", P)
		}
		// Complementary slackness.
		if !almost(lam*(w+l-P/2), 0) {
			t.Fatalf("P=%v: complementary slackness fails", P)
		}
		// And the point is the true minimizer: any feasible (w',l') has
		// w'^2 + l'^2 >= P^2/8 by Cauchy-Schwarz; check a few.
		best := w*w + l*l
		for _, d := range []float64{0.1, 0.5, 1} {
			alt := (w+d)*(w+d) + (l-d)*(l-d) // still feasible (same perimeter)
			if alt < best-eps {
				t.Fatalf("P=%v: found better feasible point", P)
			}
		}
	}
}

// TestFigure2LinearAnalog runs the machinery on the LP analog of Figure 2:
// inner problem min w + l s.t. 2(w+l) >= P with P an outer variable.
// As a max problem: max -(w+l). KKT forces w + l = P/2 exactly, even though
// the meta objective pushes w + l up.
func TestFigure2LinearAnalog(t *testing.T) {
	p := lp.NewProblem("meta", lp.Maximize)
	m := milp.NewModel(p)
	P := p.AddVar("P", 3, 3) // fixed perimeter parameter
	in := &InnerLP{Name: "rect", NumVars: 2, Obj: []float64{-1, -1}}
	in.AddRow(Row{
		Name:  "perimeter",
		Terms: []InnerTerm{{0, 2}, {1, 2}},
		Rel:   lp.GE,
		RHS:   Var(P, 1, 0),
	})
	res, err := Emit(m, in, true)
	if err != nil {
		t.Fatal(err)
	}
	// Meta tries to maximize w + l; certification must hold it at P/2.
	p.SetObj(res.X[0], 1)
	p.SetObj(res.X[1], 1)
	sol, err := milp.Solve(m, milp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != milp.StatusOptimal {
		t.Fatalf("status %v", sol.Status)
	}
	if got := sol.X[res.X[0]] + sol.X[res.X[1]]; !almost(got, 1.5) {
		t.Fatalf("w+l = %v, want P/2 = 1.5", got)
	}
}

// TestOuterVariableRHS exercises an outer variable on the inner RHS with an
// outer objective that trades off against the inner optimum:
// inner(b): max x s.t. x <= b; meta: choose b in [0,10] minimizing
// 3b - inner(b) = 3b - b = 2b => b = 0.
func TestOuterVariableRHS(t *testing.T) {
	p := lp.NewProblem("meta", lp.Minimize)
	m := milp.NewModel(p)
	b := p.AddVar("b", 0, 10)
	in := &InnerLP{Name: "inner", NumVars: 1, Obj: []float64{1}}
	in.AddRow(Row{Name: "cap", Terms: []InnerTerm{{0, 1}}, Rel: lp.LE, RHS: Var(b, 1, 0)})
	res, err := Emit(m, in, true)
	if err != nil {
		t.Fatal(err)
	}
	p.SetObj(b, 3)
	p.SetObj(res.X[0], -1)
	sol, err := milp.Solve(m, milp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != milp.StatusOptimal || !almost(sol.Objective, 0) {
		t.Fatalf("status=%v obj=%v, want optimal/0", sol.Status, sol.Objective)
	}
	// And flipping the trade-off: minimize 0.5b - inner(b) = -0.5b => b = 10,
	// and the certified inner value must track b.
	p.SetObj(b, 0.5)
	sol, err = milp.Solve(m, milp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(sol.X[b], 10) || !almost(sol.X[res.X[0]], 10) {
		t.Fatalf("b=%v inner=%v, want both 10", sol.X[b], sol.X[res.X[0]])
	}
}

// TestEqualityRowsGetFreeDuals uses an inner problem with an equality row:
// max x1 s.t. x1 + x2 = 4 (x >= 0). Optimum x1 = 4. A meta-minimizer over
// x1 must still land on 4.
func TestEqualityRowsGetFreeDuals(t *testing.T) {
	p := lp.NewProblem("meta", lp.Minimize)
	m := milp.NewModel(p)
	in := &InnerLP{Name: "eq", NumVars: 2, Obj: []float64{1, 0}}
	in.AddRow(Row{Name: "sum", Terms: []InnerTerm{{0, 1}, {1, 1}}, Rel: lp.EQ, RHS: Constant(4)})
	res, err := Emit(m, in, true)
	if err != nil {
		t.Fatal(err)
	}
	p.SetObj(res.X[0], 1)
	sol, err := milp.Solve(m, milp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != milp.StatusOptimal || !almost(sol.X[res.X[0]], 4) {
		t.Fatalf("status=%v x1=%v, want optimal/4", sol.Status, sol.X[res.X[0]])
	}
	if res.Slacks[0] != -1 {
		t.Fatalf("equality row should have no slack")
	}
}

// TestGERowCanonicalization: inner max -x s.t. x >= 2 has optimum x = 2.
func TestGERowCanonicalization(t *testing.T) {
	p := lp.NewProblem("meta", lp.Maximize)
	m := milp.NewModel(p)
	in := &InnerLP{Name: "ge", NumVars: 1, Obj: []float64{-1}}
	in.AddRow(Row{Name: "floor", Terms: []InnerTerm{{0, 1}}, Rel: lp.GE, RHS: Constant(2)})
	res, err := Emit(m, in, true)
	if err != nil {
		t.Fatal(err)
	}
	p.SetObj(res.X[0], 1) // meta pushes x up; KKT must pin it at 2
	sol, err := milp.Solve(m, milp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(sol.X[res.X[0]], 2) {
		t.Fatalf("x=%v, want 2", sol.X[res.X[0]])
	}
}

func TestEmitValidation(t *testing.T) {
	p := lp.NewProblem("meta", lp.Maximize)
	m := milp.NewModel(p)
	in := &InnerLP{Name: "bad", NumVars: 2, Obj: []float64{1}}
	if _, err := Emit(m, in, true); err == nil {
		t.Fatal("expected error for mismatched objective length")
	}
	in2 := &InnerLP{Name: "bad2", NumVars: 1, Obj: []float64{1}}
	in2.AddRow(Row{Name: "oops", Terms: []InnerTerm{{5, 1}}, Rel: lp.LE, RHS: Constant(1)})
	if _, err := Emit(m, in2, true); err == nil {
		t.Fatal("expected error for out-of-range var")
	}
}

func TestPairCountMatchesFigure6Accounting(t *testing.T) {
	// Pairs = #LE rows + #vars (EQ rows contribute none).
	p := lp.NewProblem("meta", lp.Maximize)
	m := milp.NewModel(p)
	in := &InnerLP{Name: "count", NumVars: 3, Obj: []float64{1, 1, 1}}
	in.AddRow(Row{Name: "a", Terms: []InnerTerm{{0, 1}}, Rel: lp.LE, RHS: Constant(1)})
	in.AddRow(Row{Name: "b", Terms: []InnerTerm{{1, 1}}, Rel: lp.GE, RHS: Constant(0)})
	in.AddRow(Row{Name: "c", Terms: []InnerTerm{{2, 1}}, Rel: lp.EQ, RHS: Constant(1)})
	res, err := Emit(m, in, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pairs != 2+3 {
		t.Fatalf("pairs=%d, want 5", res.Pairs)
	}
	if m.NumComplementarities() != res.Pairs {
		t.Fatalf("model pairs=%d, result pairs=%d", m.NumComplementarities(), res.Pairs)
	}
}

// TestQuickCertifiedEqualsDirect is the property at the heart of the
// framework: for random inner LPs with a random fixed RHS, minimizing or
// maximizing any linear meta objective over the certified KKT system must
// yield an inner objective value equal to the directly solved optimum.
func TestQuickCertifiedEqualsDirect(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nVars := 1 + rng.Intn(4)
		nRows := 1 + rng.Intn(4)

		in := &InnerLP{Name: "rand", NumVars: nVars}
		for j := 0; j < nVars; j++ {
			in.Obj = append(in.Obj, rng.Float64()*3)
		}
		// Random LE rows with nonnegative coefficients and positive RHS keep
		// the inner problem feasible (x=0) and bounded whenever every
		// variable with positive objective appears in some row; force that.
		covered := make([]bool, nVars)
		for i := 0; i < nRows; i++ {
			r := Row{Name: "r", Rel: lp.LE, RHS: Constant(1 + rng.Float64()*9)}
			for j := 0; j < nVars; j++ {
				if rng.Float64() < 0.6 {
					r.Terms = append(r.Terms, InnerTerm{j, 0.3 + rng.Float64()})
					covered[j] = true
				}
			}
			in.AddRow(r)
		}
		for j, c := range covered {
			if !c {
				in.AddRow(Row{Name: "cover", Rel: lp.LE,
					Terms: []InnerTerm{{j, 1}}, RHS: Constant(1 + rng.Float64()*9)})
			}
		}

		// Direct solve.
		direct := lp.NewProblem("direct", lp.Maximize)
		dx := make([]lp.VarID, nVars)
		for j := range dx {
			dx[j] = direct.AddVar("x", 0, lp.Inf)
			direct.SetObj(dx[j], in.Obj[j])
		}
		for _, r := range in.Rows {
			e := lp.NewExpr()
			for _, tm := range r.Terms {
				e = e.Add(dx[tm.Var], tm.Coef)
			}
			direct.AddConstraint(r.Name, e, r.Rel, r.RHS.Const)
		}
		dsol, err := direct.Solve()
		if err != nil || dsol.Status != lp.StatusOptimal {
			t.Logf("seed %d: direct err=%v status=%v", seed, err, dsol.Status)
			return false
		}

		// Certified system with an adversarial (minimizing) meta objective.
		p := lp.NewProblem("meta", lp.Minimize)
		m := milp.NewModel(p)
		res, err := Emit(m, in, true)
		if err != nil {
			return false
		}
		for j := 0; j < nVars; j++ {
			p.SetObj(res.X[j], in.Obj[j]) // meta minimizes the inner objective
		}
		msol, err := milp.Solve(m, milp.Options{MaxNodes: 20000})
		if err != nil || msol.Status != milp.StatusOptimal {
			t.Logf("seed %d: meta err=%v status=%v", seed, err, msol.Status)
			return false
		}
		innerVal := res.Obj.Eval(msol.X)
		if !almost(innerVal, dsol.Objective) {
			t.Logf("seed %d: certified inner %v != direct %v", seed, innerVal, dsol.Objective)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
