// Package kkt rewrites inner linear programs into KKT feasibility systems,
// the transformation at the core of the paper's Section 3.1: a two-stage
// Stackelberg problem "outer picks input I, inner solves a convex program"
// becomes a single-shot problem by replacing the inner argmax with its
// KKT conditions — primal feasibility, dual feasibility, stationarity, and
// complementary slackness. The complementary-slackness products are exactly
// the multiplicative ("SOS") constraints the paper attributes the solver
// latency to; here they become milp.Model complementarity pairs.
//
// An InnerLP is a data-level description: maximize c'x subject to rows
// A x (<=|=) b, x >= 0, where each right-hand side is affine in the *outer*
// problem's variables. Emit instantiates the system inside a milp.Model.
package kkt

import (
	"fmt"

	"repro/internal/lp"
	"repro/internal/milp"
)

// AffineRHS is an affine function of outer (meta) variables: Const + sum of
// Terms over variables that already exist in the meta model.
type AffineRHS struct {
	Const float64
	Terms []lp.Term
}

// Constant returns an AffineRHS with no outer terms.
func Constant(c float64) AffineRHS { return AffineRHS{Const: c} }

// Var returns an AffineRHS equal to coef*v plus c.
func Var(v lp.VarID, coef, c float64) AffineRHS {
	return AffineRHS{Const: c, Terms: []lp.Term{{Var: v, Coef: coef}}}
}

// InnerTerm is a coefficient on an inner variable (indices local to the
// InnerLP, 0..NumVars-1).
type InnerTerm struct {
	Var  int
	Coef float64
}

// Row is one inner constraint. Rel may be LE, GE or EQ; GE rows are
// canonicalized to LE during Emit.
//
// DualUB and SlackUB, when positive, are *proved* upper bounds on an
// optimal dual multiplier and on the row's slack, and unlock two relaxation
// tighteners during a certified Emit: hard bounds on the dual/slack
// variables and a McCormick cut dual/DualUB + slack/SlackUB <= 1 for the
// complementarity pair (valid because at least one factor of u*v = 0 is
// zero). For unit-objective max-flow LPs with 0/1 constraint matrices —
// every inner problem in this repository — an optimal dual capped at 1
// remains optimal and satisfies the same complementary slackness, so
// DualUB = 1 is always sound there.
type Row struct {
	Name    string
	Terms   []InnerTerm
	Rel     lp.Rel
	RHS     AffineRHS
	DualUB  float64
	SlackUB float64
}

// InnerLP describes "maximize Obj'x subject to Rows, x >= 0" with
// NumVars inner variables. Variable upper bounds, if any, must be expressed
// as rows (the TE formulations only need f >= 0 plus rows); VarUB, when
// non-nil, additionally records proved bounds used for McCormick cuts on
// the (reduced cost, variable) pairs.
type InnerLP struct {
	Name    string
	NumVars int
	Obj     []float64
	Rows    []Row
	VarUB   []float64
}

// AddRow appends a row and returns its index.
func (in *InnerLP) AddRow(r Row) int {
	in.Rows = append(in.Rows, r)
	return len(in.Rows) - 1
}

// Result maps the emitted system back to meta-model variables.
type Result struct {
	// X are the inner primal variables, one per InnerLP variable.
	X []lp.VarID
	// Obj is the inner objective c'x as an expression over X.
	Obj lp.Expr
	// Slacks holds the slack variable of each LE row (-1 for EQ rows).
	Slacks []lp.VarID
	// Duals holds the dual variable of each row (>=0 for LE, free for EQ).
	// Empty when Emit ran with certify=false.
	Duals []lp.VarID
	// ReducedCosts holds the nonnegativity multiplier of each inner
	// variable. Empty when certify=false.
	ReducedCosts []lp.VarID
	// Pairs is the number of complementarity pairs added (the paper's
	// "SOS constraints" count for this inner problem).
	Pairs int
}

// Emit instantiates the inner LP inside the meta model.
//
// With certify=false only primal feasibility is emitted: any assignment
// satisfying the meta model gives a *feasible* inner point. This suffices
// when the inner objective appears with a positive sign in an outer max —
// the outer optimizer itself drives c'x to the inner optimum (used for the
// OPT side of the gap problem).
//
// With certify=true the full KKT system is emitted: duals, stationarity,
// and complementary slackness. Any satisfying assignment is then an inner
// *optimal* point, which is required when the inner value appears with a
// negative sign (the Heuristic side), where the outer optimizer would
// otherwise understate it.
func Emit(m *milp.Model, in *InnerLP, certify bool) (*Result, error) {
	if len(in.Obj) != in.NumVars {
		return nil, fmt.Errorf("kkt: %s: %d objective coefficients for %d vars",
			in.Name, len(in.Obj), in.NumVars)
	}
	p := m.P
	res := &Result{}

	// Inner primal variables, x >= 0.
	res.X = make([]lp.VarID, in.NumVars)
	for j := 0; j < in.NumVars; j++ {
		res.X[j] = p.AddVar(fmt.Sprintf("%s.x%d", in.Name, j), 0, lp.Inf)
	}
	for j, c := range in.Obj {
		if c != 0 {
			res.Obj = res.Obj.Add(res.X[j], c)
		}
	}

	// Canonicalize rows: GE becomes LE with negated terms and RHS. The
	// caller's DualUB/SlackUB refer to the canonical LE form and carry over.
	rows := make([]Row, len(in.Rows))
	for i, r := range in.Rows {
		if r.Rel == lp.GE {
			nr := Row{Name: r.Name, Rel: lp.LE, DualUB: r.DualUB, SlackUB: r.SlackUB}
			nr.RHS.Const = -r.RHS.Const
			for _, t := range r.RHS.Terms {
				nr.RHS.Terms = append(nr.RHS.Terms, lp.Term{Var: t.Var, Coef: -t.Coef})
			}
			for _, t := range r.Terms {
				nr.Terms = append(nr.Terms, InnerTerm{Var: t.Var, Coef: -t.Coef})
			}
			rows[i] = nr
			continue
		}
		rows[i] = r
	}

	// Primal feasibility. LE rows get explicit slacks so complementary
	// slackness can pair (dual, slack) as two nonnegative variables.
	res.Slacks = make([]lp.VarID, len(rows))
	for i, r := range rows {
		for _, t := range r.Terms {
			if t.Var < 0 || t.Var >= in.NumVars {
				return nil, fmt.Errorf("kkt: %s: row %q references var %d of %d",
					in.Name, r.Name, t.Var, in.NumVars)
			}
		}
		e := lp.NewExpr()
		for _, t := range r.Terms {
			e = e.Add(res.X[t.Var], t.Coef)
		}
		// Move outer RHS terms to the left: a'x (+ s) - rhsTerms = rhsConst.
		for _, t := range r.RHS.Terms {
			e = e.Add(t.Var, -t.Coef)
		}
		name := fmt.Sprintf("%s.row.%s", in.Name, r.Name)
		if r.Rel == lp.EQ {
			res.Slacks[i] = -1
			p.AddConstraint(name, e, lp.EQ, r.RHS.Const)
			continue
		}
		shi := lp.Inf
		if r.SlackUB > 0 {
			shi = r.SlackUB
		}
		s := p.AddVar(fmt.Sprintf("%s.s%d", in.Name, i), 0, shi)
		res.Slacks[i] = s
		e = e.Add(s, 1)
		p.AddConstraint(name, e, lp.EQ, r.RHS.Const)
	}

	if !certify {
		return res, nil
	}

	// Dual variables: lambda_i >= 0 for LE rows, nu_i free for EQ rows.
	res.Duals = make([]lp.VarID, len(rows))
	for i, r := range rows {
		lo, hi := 0.0, lp.Inf
		if r.Rel == lp.EQ {
			lo = -lp.Inf
		} else if r.DualUB > 0 {
			hi = r.DualUB
		}
		res.Duals[i] = p.AddVar(fmt.Sprintf("%s.dual%d", in.Name, i), lo, hi)
	}

	// Stationarity: for maximize c'x with A x <= b, x >= 0 the Lagrangian
	// gradient gives mu_j = (A' lambda)_j - c_j >= 0 per variable, where
	// mu_j is the multiplier of x_j >= 0 (its "reduced cost").
	colTerms := make([][]lp.Term, in.NumVars) // per inner var: duals touching it
	for i, r := range rows {
		for _, t := range r.Terms {
			colTerms[t.Var] = append(colTerms[t.Var], lp.Term{Var: res.Duals[i], Coef: t.Coef})
		}
	}
	res.ReducedCosts = make([]lp.VarID, in.NumVars)
	for j := 0; j < in.NumVars; j++ {
		rc := p.AddVar(fmt.Sprintf("%s.rc%d", in.Name, j), 0, lp.Inf)
		res.ReducedCosts[j] = rc
		e := lp.NewExpr(colTerms[j]...).Add(rc, -1)
		p.AddConstraint(fmt.Sprintf("%s.stat%d", in.Name, j), e, lp.EQ, in.Obj[j])
	}

	// Complementary slackness: lambda_i * s_i = 0 and mu_j * x_j = 0.
	// Wherever both factors have proved bounds, also add the McCormick cut
	// u/U + v/V <= 1 — valid for any product that vanishes, and the lever
	// that makes the relaxation's heuristic value track the true optimum
	// instead of collapsing to the forced flows.
	for i, r := range rows {
		if r.Rel == lp.EQ {
			continue
		}
		m.AddComplementarity(res.Duals[i], res.Slacks[i],
			fmt.Sprintf("%s.cs-row%d", in.Name, i))
		res.Pairs++
		if r.DualUB > 0 && r.SlackUB > 0 {
			cut := lp.NewExpr().Add(res.Duals[i], 1/r.DualUB).Add(res.Slacks[i], 1/r.SlackUB)
			p.AddConstraint(fmt.Sprintf("%s.mc-row%d", in.Name, i), cut, lp.LE, 1)
		}
	}
	for j := 0; j < in.NumVars; j++ {
		m.AddComplementarity(res.ReducedCosts[j], res.X[j],
			fmt.Sprintf("%s.cs-var%d", in.Name, j))
		res.Pairs++
	}
	// Reduced-cost bounds: rc_j = sum_i a_ij*dual_i - c_j. When every row
	// with a positive coefficient on j has a proved dual bound (and j is in
	// no equality row), rc_j is bounded above, enabling both a hard bound
	// and, with VarUB, a McCormick cut on the (rc, x) pair.
	for j := 0; j < in.NumVars; j++ {
		rcMax, bounded := -in.Obj[j], true
		for i, r := range rows {
			for _, t := range r.Terms {
				if t.Var != j {
					continue
				}
				switch {
				case r.Rel == lp.EQ && t.Coef != 0:
					bounded = false
				case t.Coef > 0:
					if r.DualUB > 0 {
						rcMax += t.Coef * r.DualUB
					} else {
						bounded = false
					}
				}
			}
			if !bounded {
				break
			}
			_ = i
		}
		if !bounded {
			continue
		}
		if rcMax < 1e-9 {
			rcMax = 0
		}
		p.SetBounds(res.ReducedCosts[j], 0, rcMax)
		if rcMax > 0 && in.VarUB != nil && in.VarUB[j] > 0 {
			cut := lp.NewExpr().Add(res.ReducedCosts[j], 1/rcMax).Add(res.X[j], 1/in.VarUB[j])
			p.AddConstraint(fmt.Sprintf("%s.mc-var%d", in.Name, j), cut, lp.LE, 1)
		}
	}
	return res, nil
}
