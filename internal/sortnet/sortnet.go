// Package sortnet provides sorting networks and their MILP encodings.
//
// The paper (Section 3.2) proposes using multiple random POP instantiations
// "and a sorting network to bubble up the worst outcomes" so the gap finder
// can target a tail percentile of the randomized heuristic's value. A
// sorting network is the right tool because its comparators are oblivious:
// each max/min gate becomes a fixed MILP gadget regardless of the data.
//
// The network used is odd-even transposition (brick) sort: n rounds of
// neighbor comparators, n(n-1)/2 comparators total — quadratic, but the
// instantiation counts here are tiny (the paper uses 5).
package sortnet

import (
	"fmt"

	"repro/internal/lp"
	"repro/internal/milp"
)

// Comparator orders the wire pair (Lo, Hi): after the gate, wire Lo carries
// the smaller value and wire Hi the larger.
type Comparator struct {
	Lo, Hi int
}

// Network returns the odd-even transposition sorting network for n wires.
// Applying the comparators in order sorts any input ascending.
func Network(n int) []Comparator {
	var cs []Comparator
	for round := 0; round < n; round++ {
		for i := round % 2; i+1 < n; i += 2 {
			cs = append(cs, Comparator{Lo: i, Hi: i + 1})
		}
	}
	return cs
}

// Sort applies the network to a copy of xs and returns it sorted ascending.
// It exists to test the network and to evaluate percentiles outside MILP.
func Sort(xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	for _, c := range Network(len(out)) {
		if out[c.Lo] > out[c.Hi] {
			out[c.Lo], out[c.Hi] = out[c.Hi], out[c.Lo]
		}
	}
	return out
}

// PercentileIndex maps a percentile p in [0,1] to a sorted index for n
// values: 0 is the minimum (the heuristic's worst outcome), 1 the maximum.
func PercentileIndex(p float64, n int) int {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	i := int(p*float64(n-1) + 0.5)
	if i >= n {
		i = n - 1
	}
	return i
}

// Emit instantiates the network inside a MILP model. inputs are expressions
// over existing variables (each gets its own wire); bigM must bound every
// input's absolute value. The returned variables carry the sorted values in
// ascending order. Each comparator costs one binary, two fresh variables
// and five rows.
func Emit(m *milp.Model, name string, inputs []lp.Expr, bigM float64) []lp.VarID {
	p := m.P
	n := len(inputs)
	// Wire variables initialized to the inputs.
	wires := make([]lp.VarID, n)
	for i, in := range inputs {
		w := p.AddVar(fmt.Sprintf("%s.w%d", name, i), -lp.Inf, lp.Inf)
		e := lp.NewExpr().Add(w, 1).AddExpr(in, -1)
		p.AddConstraint(fmt.Sprintf("%s.in%d", name, i), e, lp.EQ, 0)
		wires[i] = w
	}
	for ci, c := range Network(n) {
		a, b := wires[c.Lo], wires[c.Hi]
		hi := p.AddVar(fmt.Sprintf("%s.hi%d", name, ci), -lp.Inf, lp.Inf)
		lo := p.AddVar(fmt.Sprintf("%s.lo%d", name, ci), -lp.Inf, lp.Inf)
		t := m.AddBinary(fmt.Sprintf("%s.t%d", name, ci))
		// hi >= both.
		p.AddConstraint(fmt.Sprintf("%s.c%d.ha", name, ci),
			lp.NewExpr().Add(hi, 1).Add(a, -1), lp.GE, 0)
		p.AddConstraint(fmt.Sprintf("%s.c%d.hb", name, ci),
			lp.NewExpr().Add(hi, 1).Add(b, -1), lp.GE, 0)
		// hi <= a + 2M*t, hi <= b + 2M*(1-t): hi equals one of them.
		p.AddConstraint(fmt.Sprintf("%s.c%d.ua", name, ci),
			lp.NewExpr().Add(hi, 1).Add(a, -1).Add(t, -2*bigM), lp.LE, 0)
		p.AddConstraint(fmt.Sprintf("%s.c%d.ub", name, ci),
			lp.NewExpr().Add(hi, 1).Add(b, -1).Add(t, 2*bigM), lp.LE, 2*bigM)
		// lo = a + b - hi.
		p.AddConstraint(fmt.Sprintf("%s.c%d.lo", name, ci),
			lp.NewExpr().Add(lo, 1).Add(a, -1).Add(b, -1).Add(hi, 1), lp.EQ, 0)
		wires[c.Lo], wires[c.Hi] = lo, hi
	}
	return wires
}
