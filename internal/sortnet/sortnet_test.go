package sortnet

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/lp"
	"repro/internal/milp"
)

func TestNetworkSortsAllPermutations(t *testing.T) {
	// A network sorts all inputs iff it sorts all 0/1 inputs
	// (the 0-1 principle); test exhaustively up to n = 8.
	for n := 1; n <= 8; n++ {
		for mask := 0; mask < 1<<n; mask++ {
			xs := make([]float64, n)
			for i := range xs {
				if mask&(1<<i) != 0 {
					xs[i] = 1
				}
			}
			out := Sort(xs)
			for i := 1; i < n; i++ {
				if out[i-1] > out[i] {
					t.Fatalf("n=%d mask=%b: not sorted: %v", n, mask, out)
				}
			}
		}
	}
}

func TestSortDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Sort(xs)
	if xs[0] != 3 {
		t.Fatal("Sort mutated its input")
	}
}

func TestPercentileIndex(t *testing.T) {
	cases := []struct {
		p    float64
		n, i int
	}{
		{0, 5, 0}, {1, 5, 4}, {0.5, 5, 2}, {-1, 5, 0}, {2, 5, 4}, {0.5, 2, 1},
	}
	for _, c := range cases {
		if got := PercentileIndex(c.p, c.n); got != c.i {
			t.Fatalf("PercentileIndex(%v,%d)=%d, want %d", c.p, c.n, got, c.i)
		}
	}
}

func TestEmitSortsFixedValues(t *testing.T) {
	p := lp.NewProblem("sort", lp.Maximize)
	m := milp.NewModel(p)
	vals := []float64{7, 2, 9, 4}
	var inputs []lp.Expr
	for _, v := range vals {
		x := p.AddVar("x", v, v)
		inputs = append(inputs, lp.NewExpr().Add(x, 1))
	}
	outs := Emit(m, "net", inputs, 20)
	res, err := milp.Solve(m, milp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != milp.StatusOptimal {
		t.Fatalf("status=%v", res.Status)
	}
	want := append([]float64(nil), vals...)
	sort.Float64s(want)
	for i, o := range outs {
		if math.Abs(res.X[o]-want[i]) > 1e-5 {
			t.Fatalf("output %d = %v, want %v", i, res.X[o], want[i])
		}
	}
}

func TestEmitMinIsAdversarialProof(t *testing.T) {
	// The gap finder maximizes OPT - sorted[0] (the worst outcome). Check
	// the encoding cannot cheat: maximize -min(x1,x2) with x1=3, x2=5 fixed
	// must yield -3, not something larger.
	p := lp.NewProblem("min", lp.Maximize)
	m := milp.NewModel(p)
	x1 := p.AddVar("x1", 3, 3)
	x2 := p.AddVar("x2", 5, 5)
	outs := Emit(m, "net", []lp.Expr{lp.NewExpr().Add(x1, 1), lp.NewExpr().Add(x2, 1)}, 10)
	p.SetObj(outs[0], -1)
	res, err := milp.Solve(m, milp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Objective-(-3)) > 1e-5 {
		t.Fatalf("obj=%v, want -3 (min must be exactly 3)", res.Objective)
	}
	// And the other direction: maximize +sorted[0] must also give 3 — the
	// binary forces hi to equal one input, so min cannot float up to 5.
	p.SetObj(outs[0], 1)
	res, err = milp.Solve(m, milp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Objective-3) > 1e-5 {
		t.Fatalf("obj=%v, want 3", res.Objective)
	}
}

func TestQuickEmitMatchesSort(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = math.Round(rng.Float64()*20 - 5)
		}
		p := lp.NewProblem("q", lp.Maximize)
		m := milp.NewModel(p)
		var inputs []lp.Expr
		for _, v := range vals {
			x := p.AddVar("x", v, v)
			inputs = append(inputs, lp.NewExpr().Add(x, 1))
		}
		outs := Emit(m, "net", inputs, 30)
		res, err := milp.Solve(m, milp.Options{})
		if err != nil || res.Status != milp.StatusOptimal {
			return false
		}
		want := Sort(vals)
		for i, o := range outs {
			if math.Abs(res.X[o]-want[i]) > 1e-5 {
				t.Logf("seed %d: out[%d]=%v want %v (vals %v)", seed, i, res.X[o], want[i], vals)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
