package topology

import (
	"fmt"
	"math"
	"math/rand"
)

// DefaultCapacity is the per-link capacity used by the built-in WAN
// topologies. The paper quotes thresholds and variances as percentages of
// link capacity, so only the ratio matters; 100 keeps numbers readable.
const DefaultCapacity = 100.0

// Figure1 returns the 3-node example of the paper's Figure 1, reconstructed
// so that Demand Pinning with threshold 50 loses exactly 100 units of flow
// (over 38% — here 40% of OPT):
//
//	links: 1->2 (cap 100, weight 1), 2->3 (cap 100, weight 1),
//	       1->3 (cap 50, weight 3 — a long direct link).
//
// With demands 1->2: 100, 2->3: 100, 1->3: 50, the weight-shortest path for
// 1->3 is 1->2->3 (weight 2 < 3), so DP pins 50 units across both middle
// links and carries 150 total, while OPT uses the direct link and carries
// 250. Nodes are 0-indexed: paper node 1 is node 0, and so on.
func Figure1() *Graph {
	g := New("figure1", 3)
	g.AddEdgeW(0, 1, 100, 1)
	g.AddEdgeW(1, 2, 100, 1)
	g.AddEdgeW(0, 2, 50, 3)
	return g
}

// B4 returns Google's B4 inter-datacenter WAN: 12 sites, 19 bidirectional
// links (38 directed edges), as transcribed in public TE research
// repositories from the B4 paper's figure. All links get DefaultCapacity.
func B4() *Graph {
	g := New("b4", 12)
	links := [][2]Node{
		{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3},
		{3, 4}, {3, 5}, {4, 5}, {4, 6}, {5, 7},
		{6, 7}, {6, 8}, {7, 9}, {8, 9}, {8, 10},
		{9, 11}, {10, 11}, {2, 6}, {5, 9},
	}
	for _, l := range links {
		g.AddBiEdge(l[0], l[1], DefaultCapacity)
	}
	return g
}

// Abilene returns the Internet2 Abilene research backbone: 11 PoPs and 14
// bidirectional links (28 directed edges). Node order: 0 Seattle,
// 1 Sunnyvale, 2 Los Angeles, 3 Denver, 4 Kansas City, 5 Houston,
// 6 Chicago, 7 Indianapolis, 8 Atlanta, 9 Washington DC, 10 New York.
func Abilene() *Graph {
	g := New("abilene", 11)
	links := [][2]Node{
		{0, 1},  // Seattle - Sunnyvale
		{0, 3},  // Seattle - Denver
		{1, 2},  // Sunnyvale - Los Angeles
		{1, 3},  // Sunnyvale - Denver
		{2, 5},  // Los Angeles - Houston
		{3, 4},  // Denver - Kansas City
		{4, 5},  // Kansas City - Houston
		{4, 7},  // Kansas City - Indianapolis
		{5, 8},  // Houston - Atlanta
		{6, 7},  // Chicago - Indianapolis
		{6, 10}, // Chicago - New York
		{7, 8},  // Indianapolis - Atlanta
		{8, 9},  // Atlanta - Washington DC
		{9, 10}, // Washington DC - New York
	}
	for _, l := range links {
		g.AddBiEdge(l[0], l[1], DefaultCapacity)
	}
	return g
}

// SWAN returns a SWAN-like inter-datacenter WAN. Microsoft's SWAN topology
// is not public at link level; following the paper's remark that all three
// evaluation topologies have "roughly the same number of nodes and edges",
// this is a 10-node, 17-link WAN with comparable density and diameter.
func SWAN() *Graph {
	g := New("swan", 10)
	links := [][2]Node{
		{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 4},
		{3, 4}, {3, 5}, {4, 6}, {5, 6}, {5, 7},
		{6, 8}, {7, 8}, {7, 9}, {8, 9}, {0, 3},
		{2, 6}, {4, 8},
	}
	for _, l := range links {
		g.AddBiEdge(l[0], l[1], DefaultCapacity)
	}
	return g
}

// Circle returns the synthetic family of Figure 4b: n nodes on a circle
// where each node connects (bidirectionally) to its m nearest neighbours on
// each side. Larger n/m ratios yield longer average shortest paths.
func Circle(n, m int) *Graph {
	if n < 3 {
		panic(fmt.Sprintf("topology: circle needs >= 3 nodes, got %d", n))
	}
	if m < 1 || 2*m >= n {
		panic(fmt.Sprintf("topology: circle(%d) neighbour count %d out of range", n, m))
	}
	g := New(fmt.Sprintf("circle-%d-%d", n, m), n)
	for i := 0; i < n; i++ {
		for k := 1; k <= m; k++ {
			j := (i + k) % n
			g.AddBiEdge(Node(i), Node(j), DefaultCapacity)
		}
	}
	return g
}

// Line returns a path graph with n nodes and n-1 bidirectional links.
func Line(n int) *Graph {
	g := New(fmt.Sprintf("line-%d", n), n)
	for i := 0; i+1 < n; i++ {
		g.AddBiEdge(Node(i), Node(i+1), DefaultCapacity)
	}
	return g
}

// Star returns a star with node 0 at the hub and n-1 leaves.
func Star(n int) *Graph {
	g := New(fmt.Sprintf("star-%d", n), n)
	for i := 1; i < n; i++ {
		g.AddBiEdge(0, Node(i), DefaultCapacity)
	}
	return g
}

// Grid returns an r x c grid with bidirectional links between
// 4-neighbours. Node (i,j) is index i*c+j.
func Grid(r, c int) *Graph {
	g := New(fmt.Sprintf("grid-%dx%d", r, c), r*c)
	idx := func(i, j int) Node { return Node(i*c + j) }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c {
				g.AddBiEdge(idx(i, j), idx(i, j+1), DefaultCapacity)
			}
			if i+1 < r {
				g.AddBiEdge(idx(i, j), idx(i+1, j), DefaultCapacity)
			}
		}
	}
	return g
}

// Waxman generates a random WAN with the classic Waxman model: n nodes
// placed uniformly in the unit square, a bidirectional link between each
// pair with probability alpha*exp(-dist/(beta*L)) where L is the maximum
// pairwise distance. A random spanning tree is added first so the result is
// always connected. Typical parameters: alpha 0.4, beta 0.4.
func Waxman(n int, alpha, beta float64, rng *rand.Rand) *Graph {
	if n < 2 {
		panic(fmt.Sprintf("topology: waxman needs >= 2 nodes, got %d", n))
	}
	if alpha <= 0 || alpha > 1 || beta <= 0 {
		panic(fmt.Sprintf("topology: waxman parameters alpha=%g beta=%g out of range", alpha, beta))
	}
	g := New(fmt.Sprintf("waxman-%d", n), n)
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	dist := func(a, b int) float64 {
		return math.Hypot(xs[a]-xs[b], ys[a]-ys[b])
	}
	maxDist := 0.0
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if d := dist(a, b); d > maxDist {
				maxDist = d
			}
		}
	}
	if maxDist == 0 {
		maxDist = 1
	}
	linked := make(map[[2]int]bool)
	addLink := func(a, b int) {
		if a > b {
			a, b = b, a
		}
		if linked[[2]int{a, b}] {
			return
		}
		linked[[2]int{a, b}] = true
		g.AddBiEdge(Node(a), Node(b), DefaultCapacity)
	}
	// Random spanning tree: attach each node to a random earlier node.
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		addLink(perm[i], perm[rng.Intn(i)])
	}
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if rng.Float64() < alpha*math.Exp(-dist(a, b)/(beta*maxDist)) {
				addLink(a, b)
			}
		}
	}
	return g
}

// ByName returns a built-in topology by name, for CLI use. Supported names:
// figure1, b4, abilene, swan, circle-N-M (e.g. "circle-8-1"), and
// waxman-N-SEED (a seeded random WAN, e.g. "waxman-15-3").
func ByName(name string) (*Graph, error) {
	switch name {
	case "figure1":
		return Figure1(), nil
	case "b4":
		return B4(), nil
	case "abilene":
		return Abilene(), nil
	case "swan":
		return SWAN(), nil
	}
	var n, m int
	if _, err := fmt.Sscanf(name, "circle-%d-%d", &n, &m); err == nil {
		// Validate here rather than panicking in Circle: this path is fed
		// raw CLI input.
		if n < 3 || m < 1 || 2*m >= n {
			return nil, fmt.Errorf("topology: circle-%d-%d out of range (need n >= 3, 1 <= m < n/2)", n, m)
		}
		return Circle(n, m), nil
	}
	var seed int64
	if _, err := fmt.Sscanf(name, "waxman-%d-%d", &n, &seed); err == nil {
		if n < 2 || n > 200 {
			return nil, fmt.Errorf("topology: waxman-%d out of range (need 2 <= n <= 200)", n)
		}
		return Waxman(n, 0.4, 0.4, rand.New(rand.NewSource(seed))), nil
	}
	return nil, fmt.Errorf("topology: unknown topology %q", name)
}
