package topology

import "testing"

// FuzzByName: arbitrary topology names must either resolve or fail cleanly,
// never panic (the CLI feeds user input straight into it).
func FuzzByName(f *testing.F) {
	for _, seed := range []string{"b4", "abilene", "swan", "figure1",
		"circle-8-1", "circle-3-1", "circle-0-0", "circle--1--1",
		"circle-999999999999999999999-1", "circle-4-3", "", "CIRCLE-8-1",
		"waxman-12-5", "waxman-1-1", "waxman-9999-1", "waxman--3-0"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, name string) {
		g, err := ByName(name)
		if err == nil && g == nil {
			t.Fatalf("ByName(%q): nil graph without error", name)
		}
		if g != nil {
			if g.NumNodes() <= 0 {
				t.Fatalf("ByName(%q): empty graph", name)
			}
			_ = g.TotalCapacity()
		}
	})
}

// FuzzKShortestPaths: random small graphs driven by fuzz bytes; paths must
// be loopless, connect the endpoints, and be sorted by weight.
func FuzzKShortestPaths(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6}, uint8(3))
	f.Add([]byte{0xff, 0x00, 0x80, 0x42}, uint8(5))
	f.Fuzz(func(t *testing.T, edges []byte, kRaw uint8) {
		const n = 5
		g := New("fuzz", n)
		for i := 0; i+1 < len(edges) && i < 40; i += 2 {
			from := Node(int(edges[i]) % n)
			to := Node(int(edges[i+1]) % n)
			if from == to {
				continue
			}
			g.AddEdgeW(from, to, 1, 1+float64(edges[i]%7))
		}
		k := 1 + int(kRaw%6)
		paths := g.KShortestPaths(0, n-1, k)
		if len(paths) > k {
			t.Fatalf("returned %d > k=%d paths", len(paths), k)
		}
		for i, p := range paths {
			nodes := p.Nodes(g)
			if len(nodes) == 0 || nodes[0] != 0 || nodes[len(nodes)-1] != n-1 {
				t.Fatalf("path %d endpoints wrong: %v", i, nodes)
			}
			seen := map[Node]bool{}
			for _, nd := range nodes {
				if seen[nd] {
					t.Fatalf("path %d has a loop: %v", i, nodes)
				}
				seen[nd] = true
			}
			if i > 0 && p.Weight(g) < paths[i-1].Weight(g)-1e-9 {
				t.Fatalf("paths out of order")
			}
		}
	})
}
