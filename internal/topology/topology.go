// Package topology models directed capacitated networks and the path
// machinery the TE formulations need: weighted shortest paths (Dijkstra)
// and loopless k-shortest paths (Yen's algorithm).
//
// It also ships the topologies the paper evaluates on: B4, Abilene, a
// SWAN-like WAN, the Figure-1 example, and the synthetic circle family of
// Figure 4b, plus a few extra shapes (line, star, grid) used in tests.
package topology

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// Node is a node index in [0, NumNodes).
type Node int

// Edge is a directed capacitated link. Weight is the routing metric used by
// shortest-path computations (latency-like); it defaults to 1 per hop.
type Edge struct {
	ID       int
	From, To Node
	Capacity float64
	Weight   float64
}

// Graph is a directed multigraph with capacities. The zero value is not
// usable; construct with New.
type Graph struct {
	name  string
	n     int
	edges []Edge
	out   [][]int // node -> outgoing edge ids
}

// New returns an empty graph with nodes 0..nodes-1.
func New(name string, nodes int) *Graph {
	return &Graph{name: name, n: nodes, out: make([][]int, nodes)}
}

// Name returns the graph's name.
func (g *Graph) Name() string { return g.name }

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return g.n }

// NumEdges returns the directed edge count.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Edge returns edge metadata by id.
func (g *Graph) Edge(id int) Edge { return g.edges[id] }

// Edges returns all edges. The returned slice must not be modified.
func (g *Graph) Edges() []Edge { return g.edges }

// AddEdge adds a directed edge with weight 1 and returns its id.
func (g *Graph) AddEdge(from, to Node, capacity float64) int {
	return g.AddEdgeW(from, to, capacity, 1)
}

// AddEdgeW adds a directed edge with an explicit routing weight. NaN,
// infinite or negative capacities panic: they would build an instance no
// flow solver downstream can price.
func (g *Graph) AddEdgeW(from, to Node, capacity, weight float64) int {
	if from < 0 || int(from) >= g.n || to < 0 || int(to) >= g.n {
		panic(fmt.Sprintf("topology: edge %d->%d out of range [0,%d)", from, to, g.n))
	}
	if from == to {
		panic(fmt.Sprintf("topology: self-loop at node %d", from))
	}
	if math.IsNaN(capacity) || math.IsInf(capacity, 0) || capacity < 0 {
		panic(fmt.Sprintf("topology: invalid capacity %g on edge %d->%d (must be finite and >= 0)", capacity, from, to))
	}
	id := len(g.edges)
	g.edges = append(g.edges, Edge{ID: id, From: from, To: to, Capacity: capacity, Weight: weight})
	g.out[from] = append(g.out[from], id)
	return id
}

// AddBiEdge adds a pair of opposite directed edges with the same capacity
// and weight 1, returning both ids.
func (g *Graph) AddBiEdge(a, b Node, capacity float64) (int, int) {
	return g.AddEdge(a, b, capacity), g.AddEdge(b, a, capacity)
}

// WithCapacities returns a copy of the graph carrying the given per-edge
// capacities (same nodes, edge ids, and weights). Used by the gap finder's
// Section-5 extension that searches over topology changes.
func (g *Graph) WithCapacities(caps []float64) *Graph {
	if len(caps) != len(g.edges) {
		panic(fmt.Sprintf("topology: %d capacities for %d edges", len(caps), len(g.edges)))
	}
	ng := &Graph{name: g.name, n: g.n, out: g.out}
	ng.edges = append([]Edge(nil), g.edges...)
	for i := range ng.edges {
		if math.IsNaN(caps[i]) || math.IsInf(caps[i], 0) || caps[i] < 0 {
			panic(fmt.Sprintf("topology: invalid capacity %g on edge %d (must be finite and >= 0)", caps[i], i))
		}
		ng.edges[i].Capacity = caps[i]
	}
	return ng
}

// TotalCapacity returns the sum of all directed edge capacities — the
// normalizer used by the paper's Figure 3 ("difference in carried demand
// divided by the sum of edge capacities").
func (g *Graph) TotalCapacity() float64 {
	s := 0.0
	for _, e := range g.edges {
		s += e.Capacity
	}
	return s
}

// MinCapacity returns the smallest edge capacity (useful for thresholds
// quoted as "x% of link capacity").
func (g *Graph) MinCapacity() float64 {
	m := math.Inf(1)
	for _, e := range g.edges {
		if e.Capacity < m {
			m = e.Capacity
		}
	}
	return m
}

// Path is a sequence of edge ids forming a walk from a source to a target.
type Path struct {
	Edges []int
}

// Nodes expands the path into its node sequence.
func (p Path) Nodes(g *Graph) []Node {
	if len(p.Edges) == 0 {
		return nil
	}
	nodes := []Node{g.edges[p.Edges[0]].From}
	for _, id := range p.Edges {
		nodes = append(nodes, g.edges[id].To)
	}
	return nodes
}

// Weight sums the routing weights along the path.
func (p Path) Weight(g *Graph) float64 {
	w := 0.0
	for _, id := range p.Edges {
		w += g.edges[id].Weight
	}
	return w
}

// Hops returns the number of edges in the path.
func (p Path) Hops() int { return len(p.Edges) }

// Contains reports whether the path uses the given edge id.
func (p Path) Contains(edge int) bool {
	for _, id := range p.Edges {
		if id == edge {
			return true
		}
	}
	return false
}

// Equal reports whether two paths use the same edge sequence.
func (p Path) Equal(q Path) bool {
	if len(p.Edges) != len(q.Edges) {
		return false
	}
	for i := range p.Edges {
		if p.Edges[i] != q.Edges[i] {
			return false
		}
	}
	return true
}

// String renders the path as "a->b->c (edges ...)".
func (p Path) String() string { return fmt.Sprintf("path%v", p.Edges) }

type pqItem struct {
	node Node
	dist float64
}

type pq []pqItem

func (q pq) Len() int           { return len(q) }
func (q pq) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)        { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any          { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }

// ShortestPath returns a minimum-weight path from s to t, or ok=false when t
// is unreachable. Ties are broken toward fewer hops and then lower edge ids,
// making the result deterministic.
func (g *Graph) ShortestPath(s, t Node) (Path, bool) {
	return g.shortestPathAvoiding(s, t, nil, nil)
}

// shortestPathAvoiding runs Dijkstra while treating banned edges and nodes
// (other than s itself) as removed. Used by Yen's algorithm.
func (g *Graph) shortestPathAvoiding(s, t Node, bannedEdges map[int]bool, bannedNodes map[Node]bool) (Path, bool) {
	const inf = math.MaxFloat64
	dist := make([]float64, g.n)
	hops := make([]int, g.n)
	prevEdge := make([]int, g.n)
	done := make([]bool, g.n)
	for i := range dist {
		dist[i] = inf
		prevEdge[i] = -1
	}
	dist[s] = 0
	q := &pq{{node: s}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		if u == t {
			break
		}
		for _, id := range g.out[u] {
			if bannedEdges[id] {
				continue
			}
			e := g.edges[id]
			if bannedNodes[e.To] {
				continue
			}
			nd := dist[u] + e.Weight
			nh := hops[u] + 1
			v := e.To
			better := nd < dist[v]
			//gapvet:allow floateq exact tie detection picks between equal-weight paths deterministically (fewer hops, lower edge id)
			if !better && nd == dist[v] {
				if nh < hops[v] || (nh == hops[v] && prevEdge[v] > id) {
					better = true
				}
			}
			if better {
				dist[v] = nd
				hops[v] = nh
				prevEdge[v] = id
				heap.Push(q, pqItem{node: v, dist: nd})
			}
		}
	}
	if prevEdge[t] == -1 {
		return Path{}, false
	}
	var rev []int
	for v := t; v != s; {
		id := prevEdge[v]
		rev = append(rev, id)
		v = g.edges[id].From
	}
	edges := make([]int, len(rev))
	for i := range rev {
		edges[i] = rev[len(rev)-1-i]
	}
	return Path{Edges: edges}, true
}

// KShortestPaths returns up to k loopless minimum-weight paths from s to t in
// nondecreasing weight order (Yen's algorithm). The first entry, when
// present, is the shortest path that DemandPinning pins to.
func (g *Graph) KShortestPaths(s, t Node, k int) []Path {
	if k <= 0 || s == t {
		return nil
	}
	first, ok := g.ShortestPath(s, t)
	if !ok {
		return nil
	}
	paths := []Path{first}
	var candidates []Path
	for len(paths) < k {
		prev := paths[len(paths)-1]
		prevNodes := prev.Nodes(g)
		for i := 0; i < len(prev.Edges); i++ {
			spurNode := prevNodes[i]
			rootEdges := prev.Edges[:i]
			bannedEdges := map[int]bool{}
			for _, p := range paths {
				if len(p.Edges) > i && samePrefix(p.Edges[:i], rootEdges) {
					bannedEdges[p.Edges[i]] = true
				}
			}
			bannedNodes := map[Node]bool{}
			for _, nd := range prevNodes[:i] {
				bannedNodes[nd] = true
			}
			spur, ok := g.shortestPathAvoiding(spurNode, t, bannedEdges, bannedNodes)
			if !ok {
				continue
			}
			total := Path{Edges: append(append([]int{}, rootEdges...), spur.Edges...)}
			if !containsPath(paths, total) && !containsPath(candidates, total) {
				candidates = append(candidates, total)
			}
		}
		if len(candidates) == 0 {
			break
		}
		sort.Slice(candidates, func(a, b int) bool {
			wa, wb := candidates[a].Weight(g), candidates[b].Weight(g)
			//gapvet:allow floateq Yen comparator: exact weight ties fall through to the deterministic edge-sequence order
			if wa != wb {
				return wa < wb
			}
			if len(candidates[a].Edges) != len(candidates[b].Edges) {
				return len(candidates[a].Edges) < len(candidates[b].Edges)
			}
			return lessEdgeSeq(candidates[a].Edges, candidates[b].Edges)
		})
		paths = append(paths, candidates[0])
		candidates = candidates[1:]
	}
	return paths
}

func samePrefix(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func containsPath(list []Path, p Path) bool {
	for _, q := range list {
		if q.Equal(p) {
			return true
		}
	}
	return false
}

func lessEdgeSeq(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// AvgShortestPathLen returns the mean weight of shortest paths over all
// ordered reachable pairs — the x-axis of the paper's Figure 4b.
func (g *Graph) AvgShortestPathLen() float64 {
	total, count := 0.0, 0
	for s := 0; s < g.n; s++ {
		for t := 0; t < g.n; t++ {
			if s == t {
				continue
			}
			if p, ok := g.ShortestPath(Node(s), Node(t)); ok {
				total += p.Weight(g)
				count++
			}
		}
	}
	if count == 0 {
		return 0
	}
	return total / float64(count)
}
