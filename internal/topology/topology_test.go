package topology

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddEdgeBasics(t *testing.T) {
	g := New("t", 3)
	id := g.AddEdge(0, 1, 10)
	if id != 0 || g.NumEdges() != 1 || g.NumNodes() != 3 {
		t.Fatalf("unexpected graph shape")
	}
	e := g.Edge(id)
	if e.From != 0 || e.To != 1 || e.Capacity != 10 || e.Weight != 1 {
		t.Fatalf("edge %+v", e)
	}
	a, b := g.AddBiEdge(1, 2, 5)
	if g.Edge(a).From != 1 || g.Edge(b).From != 2 {
		t.Fatalf("biedge wrong direction")
	}
	if got := g.TotalCapacity(); got != 20 {
		t.Fatalf("total capacity %v, want 20", got)
	}
	if got := g.MinCapacity(); got != 5 {
		t.Fatalf("min capacity %v, want 5", got)
	}
}

func TestAddEdgePanics(t *testing.T) {
	g := New("t", 2)
	for _, fn := range []func(){
		func() { g.AddEdge(0, 5, 1) },
		func() { g.AddEdge(-1, 0, 1) },
		func() { g.AddEdge(1, 1, 1) },
		func() { g.AddEdge(0, 1, math.NaN()) },
		func() { g.AddEdge(0, 1, math.Inf(1)) },
		func() { g.AddEdge(0, 1, -1) },
		func() { g.AddEdge(0, 1, 1); g.WithCapacities([]float64{math.NaN()}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestShortestPathLine(t *testing.T) {
	g := Line(5)
	p, ok := g.ShortestPath(0, 4)
	if !ok || p.Hops() != 4 {
		t.Fatalf("ok=%v hops=%d", ok, p.Hops())
	}
	nodes := p.Nodes(g)
	want := []Node{0, 1, 2, 3, 4}
	for i, n := range want {
		if nodes[i] != n {
			t.Fatalf("nodes=%v", nodes)
		}
	}
}

func TestShortestPathRespectsWeights(t *testing.T) {
	// Figure 1: weight-shortest path 0->2 goes through node 1, not the
	// direct (weight-3) link.
	g := Figure1()
	p, ok := g.ShortestPath(0, 2)
	if !ok {
		t.Fatal("no path")
	}
	if p.Hops() != 2 {
		t.Fatalf("hops=%d, want 2 (via node 1)", p.Hops())
	}
	if p.Weight(g) != 2 {
		t.Fatalf("weight=%v, want 2", p.Weight(g))
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := New("disc", 3)
	g.AddEdge(0, 1, 1)
	if _, ok := g.ShortestPath(0, 2); ok {
		t.Fatal("expected unreachable")
	}
	if _, ok := g.ShortestPath(2, 0); ok {
		t.Fatal("expected unreachable (directed)")
	}
}

func TestKShortestPathsFigure1(t *testing.T) {
	g := Figure1()
	paths := g.KShortestPaths(0, 2, 3)
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2", len(paths))
	}
	if paths[0].Weight(g) != 2 || paths[1].Weight(g) != 3 {
		t.Fatalf("weights %v, %v", paths[0].Weight(g), paths[1].Weight(g))
	}
	if paths[0].Equal(paths[1]) {
		t.Fatal("duplicate paths")
	}
}

func TestKShortestPathsOrderedAndLoopless(t *testing.T) {
	g := Grid(3, 3)
	paths := g.KShortestPaths(0, 8, 6)
	if len(paths) < 2 {
		t.Fatalf("got %d paths", len(paths))
	}
	for i := 1; i < len(paths); i++ {
		if paths[i].Weight(g) < paths[i-1].Weight(g) {
			t.Fatalf("paths out of order at %d", i)
		}
	}
	for _, p := range paths {
		seen := map[Node]bool{}
		for _, n := range p.Nodes(g) {
			if seen[n] {
				t.Fatalf("loop in path %v", p)
			}
			seen[n] = true
		}
		// Path connects the endpoints.
		nodes := p.Nodes(g)
		if nodes[0] != 0 || nodes[len(nodes)-1] != 8 {
			t.Fatalf("path endpoints %v", nodes)
		}
	}
	// All distinct.
	for i := range paths {
		for j := i + 1; j < len(paths); j++ {
			if paths[i].Equal(paths[j]) {
				t.Fatalf("duplicate paths %d, %d", i, j)
			}
		}
	}
}

func TestKShortestExhaustsSmallGraph(t *testing.T) {
	g := Line(3)
	paths := g.KShortestPaths(0, 2, 10)
	if len(paths) != 1 {
		t.Fatalf("line has exactly 1 loopless path, got %d", len(paths))
	}
	if g.KShortestPaths(0, 0, 3) != nil {
		t.Fatal("s==t must return nil")
	}
	if g.KShortestPaths(0, 2, 0) != nil {
		t.Fatal("k=0 must return nil")
	}
}

func TestPathHelpers(t *testing.T) {
	g := Line(4)
	p, _ := g.ShortestPath(0, 3)
	if !p.Contains(p.Edges[0]) {
		t.Fatal("Contains broken")
	}
	if p.Contains(999) {
		t.Fatal("Contains false positive")
	}
	if p.String() == "" {
		t.Fatal("empty String")
	}
	var empty Path
	if empty.Nodes(g) != nil {
		t.Fatal("empty path nodes")
	}
}

func TestBuiltinShapes(t *testing.T) {
	cases := []struct {
		g        *Graph
		nodes    int
		dirEdges int
	}{
		{Figure1(), 3, 3},
		{B4(), 12, 38},
		{Abilene(), 11, 28},
		{SWAN(), 10, 34},
		{Circle(8, 1), 8, 16},
		{Circle(8, 2), 8, 32},
		{Line(5), 5, 8},
		{Star(5), 5, 8},
		{Grid(2, 3), 6, 14},
	}
	for _, c := range cases {
		if c.g.NumNodes() != c.nodes || c.g.NumEdges() != c.dirEdges {
			t.Errorf("%s: nodes=%d edges=%d, want %d/%d",
				c.g.Name(), c.g.NumNodes(), c.g.NumEdges(), c.nodes, c.dirEdges)
		}
	}
}

func TestBuiltinsStronglyConnected(t *testing.T) {
	for _, g := range []*Graph{B4(), Abilene(), SWAN(), Circle(10, 2), Grid(3, 4)} {
		for s := 0; s < g.NumNodes(); s++ {
			for d := 0; d < g.NumNodes(); d++ {
				if s == d {
					continue
				}
				if _, ok := g.ShortestPath(Node(s), Node(d)); !ok {
					t.Fatalf("%s: %d cannot reach %d", g.Name(), s, d)
				}
			}
		}
	}
}

func TestCirclePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Circle(2, 1) },
		func() { Circle(5, 0) },
		func() { Circle(5, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestAvgShortestPathLenGrowsWithCircleSize(t *testing.T) {
	// The premise behind Figure 4b: sparser/larger circles have longer
	// average shortest paths.
	l1 := Circle(6, 1).AvgShortestPathLen()
	l2 := Circle(10, 1).AvgShortestPathLen()
	l3 := Circle(10, 2).AvgShortestPathLen()
	if !(l2 > l1) {
		t.Fatalf("avg path len should grow with n: %v vs %v", l1, l2)
	}
	if !(l3 < l2) {
		t.Fatalf("avg path len should shrink with more neighbours: %v vs %v", l3, l2)
	}
	// Circle(6,1): distances 1,2,3,2,1 per source -> avg 9/5.
	if math.Abs(l1-9.0/5.0) > 1e-9 {
		t.Fatalf("circle(6,1) avg = %v, want 1.8", l1)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"figure1", "b4", "abilene", "swan", "circle-8-2", "waxman-12-5"} {
		g, err := ByName(name)
		if err != nil || g == nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error for unknown name")
	}
}

// TestQuickKShortestAgainstBruteForce enumerates all loopless paths by DFS
// on random small graphs and checks Yen returns the k cheapest weights.
func TestQuickKShortestAgainstBruteForce(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(3)
		g := New("rand", n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && rng.Float64() < 0.45 {
					g.AddEdgeW(Node(i), Node(j), 1, 1+rng.Float64()*3)
				}
			}
		}
		s, d := Node(0), Node(n-1)

		// Brute force: all loopless path weights.
		var weights []float64
		var dfs func(u Node, visited map[Node]bool, w float64)
		dfs = func(u Node, visited map[Node]bool, w float64) {
			if u == d {
				weights = append(weights, w)
				return
			}
			visited[u] = true
			for _, id := range g.out[u] {
				e := g.Edge(id)
				if !visited[e.To] {
					dfs(e.To, visited, w+e.Weight)
				}
			}
			visited[u] = false
		}
		dfs(s, map[Node]bool{}, 0)

		k := 4
		got := g.KShortestPaths(s, d, k)
		if len(weights) == 0 {
			return len(got) == 0
		}
		// Sort brute-force weights ascending.
		for i := range weights {
			for j := i + 1; j < len(weights); j++ {
				if weights[j] < weights[i] {
					weights[i], weights[j] = weights[j], weights[i]
				}
			}
		}
		wantLen := k
		if len(weights) < k {
			wantLen = len(weights)
		}
		if len(got) != wantLen {
			t.Logf("seed %d: got %d paths, want %d", seed, len(got), wantLen)
			return false
		}
		for i, p := range got {
			if math.Abs(p.Weight(g)-weights[i]) > 1e-9 {
				t.Logf("seed %d: path %d weight %v, want %v", seed, i, p.Weight(g), weights[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestWithCapacities(t *testing.T) {
	g := Line(3)
	caps := make([]float64, g.NumEdges())
	for i := range caps {
		caps[i] = float64(10 * (i + 1))
	}
	ng := g.WithCapacities(caps)
	if ng.Edge(0).Capacity != 10 || ng.Edge(3).Capacity != 40 {
		t.Fatalf("capacities not applied: %+v", ng.Edges())
	}
	// Original untouched; structure shared.
	if g.Edge(0).Capacity != DefaultCapacity {
		t.Fatal("original graph mutated")
	}
	if ng.NumNodes() != g.NumNodes() || ng.NumEdges() != g.NumEdges() {
		t.Fatal("structure changed")
	}
	p1, _ := g.ShortestPath(0, 2)
	p2, _ := ng.ShortestPath(0, 2)
	if !p1.Equal(p2) {
		t.Fatal("paths diverged")
	}
}

func TestWithCapacitiesPanics(t *testing.T) {
	g := Line(3)
	for _, caps := range [][]float64{
		{1, 2},        // wrong length
		{-1, 1, 1, 1}, // negative
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			g.WithCapacities(caps)
		}()
	}
}

func TestWaxmanConnectedAndSeeded(t *testing.T) {
	for _, n := range []int{2, 5, 12, 25} {
		g := Waxman(n, 0.4, 0.4, rand.New(rand.NewSource(7)))
		if g.NumNodes() != n {
			t.Fatalf("nodes=%d", g.NumNodes())
		}
		// Bidirectional edges in pairs, at least a spanning tree's worth.
		if g.NumEdges() < 2*(n-1) || g.NumEdges()%2 != 0 {
			t.Fatalf("n=%d: edges=%d", n, g.NumEdges())
		}
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				if s != d {
					if _, ok := g.ShortestPath(Node(s), Node(d)); !ok {
						t.Fatalf("waxman(%d) not connected: %d->%d", n, s, d)
					}
				}
			}
		}
	}
	// Same seed, same graph.
	a := Waxman(10, 0.4, 0.4, rand.New(rand.NewSource(3)))
	b := Waxman(10, 0.4, 0.4, rand.New(rand.NewSource(3)))
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("same seed diverged: %d vs %d edges", a.NumEdges(), b.NumEdges())
	}
}

func TestWaxmanPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Waxman(1, 0.4, 0.4, rand.New(rand.NewSource(1))) },
		func() { Waxman(5, 0, 0.4, rand.New(rand.NewSource(1))) },
		func() { Waxman(5, 1.5, 0.4, rand.New(rand.NewSource(1))) },
		func() { Waxman(5, 0.4, 0, rand.New(rand.NewSource(1))) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}
