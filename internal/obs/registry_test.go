package obs

import (
	"errors"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// Same-kind re-registration must hand back the existing instance, never a
// fresh shadow: counters resolved at two different call sites must observe
// each other's increments.
func TestRegistrySameKindReturnsExistingInstance(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x_total")
	c2 := r.Counter("x_total")
	if c1 != c2 {
		t.Fatalf("Counter(%q) twice returned distinct instances", "x_total")
	}
	c1.Add(3)
	if got := c2.Value(); got != 3 {
		t.Fatalf("second handle sees %d, want 3", got)
	}
	if g1, g2 := r.Gauge("g"), r.Gauge("g"); g1 != g2 {
		t.Fatalf("Gauge(%q) twice returned distinct instances", "g")
	}
	if h1, h2 := r.Histogram("h_seconds"), r.Histogram("h_seconds"); h1 != h2 {
		t.Fatalf("Histogram(%q) twice returned distinct instances", "h_seconds")
	}
}

// Cross-kind collisions used to register both metrics and let Snapshot
// silently shadow one with the other. They now fail loudly with a typed
// error so the misregistration is caught at the call site.
func TestRegistryCrossKindCollisionPanicsTyped(t *testing.T) {
	cases := []struct {
		name     string
		first    func(r *Registry)
		second   func(r *Registry)
		existing string
		wanted   string
	}{
		{"counter-then-gauge", func(r *Registry) { r.Counter("m") }, func(r *Registry) { r.Gauge("m") }, "counter", "gauge"},
		{"counter-then-histogram", func(r *Registry) { r.Counter("m") }, func(r *Registry) { r.Histogram("m") }, "counter", "histogram"},
		{"gauge-then-counter", func(r *Registry) { r.Gauge("m") }, func(r *Registry) { r.Counter("m") }, "gauge", "counter"},
		{"histogram-then-gauge", func(r *Registry) { r.Histogram("m") }, func(r *Registry) { r.Gauge("m") }, "histogram", "gauge"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRegistry()
			tc.first(r)
			defer func() {
				rec := recover()
				if rec == nil {
					t.Fatalf("second registration of %q as %s did not panic", "m", tc.wanted)
				}
				err, ok := rec.(error)
				if !ok {
					t.Fatalf("panic value %v (%T) is not an error", rec, rec)
				}
				var dup *DuplicateMetricError
				if !errors.As(err, &dup) {
					t.Fatalf("panic error %v is not a *DuplicateMetricError", err)
				}
				if dup.Name != "m" || dup.Existing != tc.existing || dup.Requested != tc.wanted {
					t.Fatalf("DuplicateMetricError = %+v, want {m %s %s}", dup, tc.existing, tc.wanted)
				}
				if !strings.Contains(dup.Error(), "m") {
					t.Fatalf("error text %q does not name the metric", dup.Error())
				}
			}()
			tc.second(r)
		})
	}
}

// Export must be deterministically ordered — sorted by name within each
// kind — and two exports of identical state must be deeply equal, because
// benchstore serializes this structure verbatim into BENCH_*.json.
func TestExportSortedAndDeterministic(t *testing.T) {
	r := NewRegistry()
	// Register in deliberately unsorted order.
	for _, name := range []string{"z_total", "a_total", "m_total", "k_total"} {
		r.Counter(name).Add(int64(len(name)))
	}
	r.Gauge("zz").Set(2.5)
	r.Gauge("aa").Set(-1)
	r.Histogram("t2_seconds").Observe(0.02)
	r.Histogram("t1_seconds").Observe(0.5)
	r.Histogram("t1_seconds").Observe(3)

	ex := r.Export()
	if !sort.SliceIsSorted(ex.Counters, func(i, j int) bool { return ex.Counters[i].Name < ex.Counters[j].Name }) {
		t.Fatalf("counters not sorted by name: %+v", ex.Counters)
	}
	if !sort.SliceIsSorted(ex.Gauges, func(i, j int) bool { return ex.Gauges[i].Name < ex.Gauges[j].Name }) {
		t.Fatalf("gauges not sorted by name: %+v", ex.Gauges)
	}
	if !sort.SliceIsSorted(ex.Histograms, func(i, j int) bool { return ex.Histograms[i].Name < ex.Histograms[j].Name }) {
		t.Fatalf("histograms not sorted by name: %+v", ex.Histograms)
	}
	if got := len(ex.Histograms[0].Buckets); got != len(HistogramBounds())+1 {
		t.Fatalf("histogram has %d buckets, want %d (+Inf included)", got, len(HistogramBounds())+1)
	}
	if ex.Histograms[0].Name != "t1_seconds" || ex.Histograms[0].Count != 2 {
		t.Fatalf("unexpected first histogram: %+v", ex.Histograms[0])
	}
	// Cumulative convention: the +Inf bucket equals the total count.
	for _, h := range ex.Histograms {
		if last := h.Buckets[len(h.Buckets)-1]; last != h.Count {
			t.Fatalf("histogram %s: +Inf bucket %d != count %d", h.Name, last, h.Count)
		}
	}
	if !reflect.DeepEqual(ex, r.Export()) {
		t.Fatal("two exports of identical registry state differ")
	}
}

// The Prometheus text dump — the registry's other snapshot form — must list
// metric names in sorted order for stable diffing.
func TestWritePromSortedByName(t *testing.T) {
	r := NewRegistry()
	r.Counter("zeta_total").Inc()
	r.Counter("alpha_total").Inc()
	r.Gauge("beta").Set(1)
	r.Histogram("delta_seconds").Observe(0.1)
	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	order := []string{"alpha_total", "zeta_total", "beta", "delta_seconds"}
	last := -1
	for _, name := range order {
		idx := strings.Index(out, "# TYPE "+name)
		if idx < 0 {
			t.Fatalf("metric %s missing from prom dump", name)
		}
		if idx < last {
			t.Fatalf("metric %s out of order in prom dump:\n%s", name, out)
		}
		last = idx
	}
}

func TestHistogramBoundsIsACopy(t *testing.T) {
	b := HistogramBounds()
	if len(b) == 0 {
		t.Fatal("no bounds")
	}
	orig := b[0]
	b[0] = -42
	if got := HistogramBounds()[0]; got != orig {
		t.Fatalf("mutating the returned slice changed package state: %v", got)
	}
}
