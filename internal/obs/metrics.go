package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. Safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n must be >= 0).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable instantaneous value. Safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by delta atomically (CAS loop on the raw bits), so
// concurrent in-flight accounting — Add(1) on entry, Add(-1) on exit —
// never loses an update the way a racing Value+Set pair would.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// histBounds are the histogram bucket upper bounds in seconds, spanning
// 10 microseconds to 5 minutes — the range of everything from a single LP
// solve to a full meta-optimization budget.
var histBounds = [...]float64{
	1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 300,
}

// Histogram is a fixed-bucket timing histogram (seconds). Safe for
// concurrent use.
type Histogram struct {
	mu      sync.Mutex
	buckets [len(histBounds) + 1]uint64 // last bucket is +Inf
	count   uint64
	sum     float64
}

// Observe records one value in seconds.
func (h *Histogram) Observe(seconds float64) {
	i := sort.SearchFloat64s(histBounds[:], seconds)
	h.mu.Lock()
	h.buckets[i]++
	h.count++
	h.sum += seconds
	h.mu.Unlock()
}

// ObserveDuration records one duration.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns how many values were observed.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the total of all observed values, in seconds.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// snapshot returns cumulative bucket counts (Prometheus convention), the
// observation count and the sum.
func (h *Histogram) snapshot() (cum []uint64, count uint64, sum float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum = make([]uint64, len(h.buckets))
	running := uint64(0)
	for i, b := range h.buckets {
		running += b
		cum[i] = running
	}
	return cum, h.count, h.sum
}

// HistogramBounds returns a copy of the histogram bucket upper bounds in
// seconds. The final implicit bucket is +Inf, so a histogram snapshot has
// len(HistogramBounds())+1 cumulative buckets.
func HistogramBounds() []float64 {
	out := make([]float64, len(histBounds))
	copy(out, histBounds[:])
	return out
}

// DuplicateMetricError reports a metric name requested under a different
// kind than the one it was first registered with (e.g. a histogram named
// "x" after a counter "x" already exists). Same-kind re-registration is not
// an error: the registry returns the existing instance.
type DuplicateMetricError struct {
	Name      string // the colliding metric name
	Existing  string // kind it was first registered as ("counter", "gauge", "histogram")
	Requested string // kind of the conflicting request
}

func (e *DuplicateMetricError) Error() string {
	return fmt.Sprintf("obs: metric %q already registered as a %s, requested as a %s",
		e.Name, e.Existing, e.Requested)
}

// Registry holds named counters, gauges, and timing histograms. Metrics are
// created lazily on first lookup; lookups are cheap but not free, so hot
// paths should resolve their metrics once and hold the pointer.
//
// Names are unique across kinds: requesting an existing name with the same
// kind returns the existing instance, while requesting it with a different
// kind panics with a *DuplicateMetricError — the old behavior of keeping two
// same-named metrics silently produced shadowed Snapshot/export entries.
type Registry struct {
	mu       sync.Mutex
	kinds    map[string]string // name -> "counter" | "gauge" | "histogram"
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		kinds:    make(map[string]string),
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Default is the process-wide registry. The LP solver and the CLI tools'
// metric sinks write here.
var Default = NewRegistry()

// reserve claims name for kind, panicking with a *DuplicateMetricError when
// the name already belongs to a different kind. Callers hold r.mu.
func (r *Registry) reserve(name, kind string) {
	if existing, ok := r.kinds[name]; ok && existing != kind {
		panic(&DuplicateMetricError{Name: name, Existing: existing, Requested: kind})
	}
	r.kinds[name] = kind
}

// Counter returns the named counter, creating it if needed. Requesting a
// name held by a gauge or histogram panics with a *DuplicateMetricError.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		r.reserve(name, "counter")
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed. Requesting a name
// held by a counter or histogram panics with a *DuplicateMetricError.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		r.reserve(name, "gauge")
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named timing histogram, creating it if needed.
// Requesting a name held by a counter or gauge panics with a
// *DuplicateMetricError.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		r.reserve(name, "histogram")
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot flattens every metric into name -> value: counters and gauges
// directly, histograms as <name>_count and <name>_sum.
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	out := make(map[string]float64, len(counters)+len(gauges)+2*len(hists))
	for name, c := range counters {
		out[name] = float64(c.Value())
	}
	for name, g := range gauges {
		out[name] = g.Value()
	}
	for name, h := range hists {
		_, count, sum := h.snapshot()
		out[name+"_count"] = float64(count)
		out[name+"_sum"] = sum
	}
	return out
}

// CounterValue is one counter in an Export, sorted by name.
type CounterValue struct {
	Name  string
	Value int64
}

// GaugeValue is one gauge in an Export, sorted by name.
type GaugeValue struct {
	Name  string
	Value float64
}

// HistogramValue is one histogram in an Export: cumulative bucket counts in
// HistogramBounds order (the final entry is the +Inf bucket), the
// observation count, and the sum of observed seconds.
type HistogramValue struct {
	Name    string
	Count   uint64
	Sum     float64
	Buckets []uint64
}

// Export is a point-in-time, deterministically ordered copy of a registry:
// every slice is sorted by metric name, so two exports of identical state
// are deeply equal and serialize byte-identically. Unlike Snapshot, it
// keeps kinds separate and carries full histogram bucket vectors — this is
// the form the benchmark ledger (internal/benchstore) persists.
type Export struct {
	Counters   []CounterValue
	Gauges     []GaugeValue
	Histograms []HistogramValue
}

// Export captures the registry's current state in deterministic (sorted)
// order.
func (r *Registry) Export() Export {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	var ex Export
	for name, c := range counters {
		ex.Counters = append(ex.Counters, CounterValue{Name: name, Value: c.Value()})
	}
	for name, g := range gauges {
		ex.Gauges = append(ex.Gauges, GaugeValue{Name: name, Value: g.Value()})
	}
	for name, h := range hists {
		cum, count, sum := h.snapshot()
		ex.Histograms = append(ex.Histograms, HistogramValue{Name: name, Count: count, Sum: sum, Buckets: cum})
	}
	sort.Slice(ex.Counters, func(i, j int) bool { return ex.Counters[i].Name < ex.Counters[j].Name })
	sort.Slice(ex.Gauges, func(i, j int) bool { return ex.Gauges[i].Name < ex.Gauges[j].Name })
	sort.Slice(ex.Histograms, func(i, j int) bool { return ex.Histograms[i].Name < ex.Histograms[j].Name })
	return ex
}

// WriteProm writes the registry in the Prometheus text exposition format,
// sorted by metric name for stable output.
func (r *Registry) WriteProm(w io.Writer) error {
	r.mu.Lock()
	cNames := make([]string, 0, len(r.counters))
	for name := range r.counters {
		cNames = append(cNames, name)
	}
	gNames := make([]string, 0, len(r.gauges))
	for name := range r.gauges {
		gNames = append(gNames, name)
	}
	hNames := make([]string, 0, len(r.hists))
	for name := range r.hists {
		hNames = append(hNames, name)
	}
	counters, gauges, hists := r.counters, r.gauges, r.hists
	r.mu.Unlock()
	sort.Strings(cNames)
	sort.Strings(gNames)
	sort.Strings(hNames)

	for _, name := range cNames {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, counters[name].Value()); err != nil {
			return err
		}
	}
	for _, name := range gNames {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", name, name, formatFloat(gauges[name].Value())); err != nil {
			return err
		}
	}
	for _, name := range hNames {
		cum, count, sum := hists[name].snapshot()
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		for i, bound := range histBounds {
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatFloat(bound), cum[i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
			name, cum[len(cum)-1], name, formatFloat(sum), name, count); err != nil {
			return err
		}
	}
	return nil
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

var expvarOnce sync.Once

// PublishExpvar exposes the default registry as the expvar variable
// "metaopt_metrics" (visible under /debug/vars). Idempotent.
func PublishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("metaopt_metrics", expvar.Func(func() any {
			return Default.Snapshot()
		}))
	})
}

// MetricsSink translates events into registry metrics. Counters are
// resolved at construction so per-event cost is one atomic add.
type MetricsSink struct {
	r *Registry

	nodes, pruned, branched  *Counter
	incumbents, bbImprove    *Counter
	stalls                   *Counter
	polishAcc, polishRej     *Counter
	restarts, moves, rejects *Counter
	solves                   *Counter
	ckptWrites, ckptErrors   *Counter
	resumes, faults          *Counter
}

// NewMetricsSink returns a sink recording into r (Default when nil).
func NewMetricsSink(r *Registry) *MetricsSink {
	if r == nil {
		r = Default
	}
	return &MetricsSink{
		r:          r,
		nodes:      r.Counter("bnb_nodes_total"),
		pruned:     r.Counter("bnb_nodes_pruned_total"),
		branched:   r.Counter("bnb_nodes_branched_total"),
		incumbents: r.Counter("bnb_incumbents_total"),
		bbImprove:  r.Counter("blackbox_improvements_total"),
		stalls:     r.Counter("bnb_stall_checks_total"),
		polishAcc:  r.Counter("bnb_polish_accepted_total"),
		polishRej:  r.Counter("bnb_polish_rejected_total"),
		restarts:   r.Counter("blackbox_restarts_total"),
		moves:      r.Counter("blackbox_accepts_total"),
		rejects:    r.Counter("blackbox_rejects_total"),
		solves:     r.Counter("bnb_solves_total"),
		ckptWrites: r.Counter("checkpoint_writes_total"),
		ckptErrors: r.Counter("checkpoint_write_errors_total"),
		resumes:    r.Counter("checkpoint_resumes_total"),
		faults:     r.Counter("fault_injected_total"),
	}
}

// isBnBSource reports whether an incumbent source string belongs to the
// branch-and-bound solver (as opposed to a black-box search method).
func isBnBSource(s string) bool {
	switch s {
	case SourceSeed, SourcePolish, SourceLeaf, SourceFinal:
		return true
	}
	return false
}

func (s *MetricsSink) Emit(e Event) {
	switch e.Kind {
	case KindNodeExplored:
		s.nodes.Inc()
	case KindNodePruned:
		s.pruned.Inc()
	case KindNodeBranched:
		s.branched.Inc()
	case KindIncumbent:
		if isBnBSource(e.Source) {
			s.incumbents.Inc()
		} else {
			s.bbImprove.Inc()
		}
	case KindStall:
		s.stalls.Inc()
	case KindPolishAccept:
		s.polishAcc.Inc()
	case KindPolishReject:
		s.polishRej.Inc()
	case KindRestart:
		s.restarts.Inc()
	case KindMoveAccept:
		s.moves.Inc()
	case KindMoveReject:
		s.rejects.Inc()
	case KindSolveDone:
		s.solves.Inc()
	case KindCheckpointWrite:
		s.ckptWrites.Inc()
		if e.Status == "error" {
			s.ckptErrors.Inc()
		}
	case KindResume:
		s.resumes.Inc()
	case KindFaultInjected:
		s.faults.Inc()
	case KindPhaseEnd:
		s.r.Histogram("phase_" + e.Phase + "_seconds").Observe(e.Dur.Seconds())
	}
}
