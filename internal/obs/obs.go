// Package obs is the solver stack's observability layer: a structured
// event system (Tracer), a process-wide metrics registry (counters, gauges,
// timing histograms with expvar publication and a Prometheus-style text
// dump), and JSONL trace export whose records are a superset of
// milp.TracePoint — so the paper's gap-versus-time plots (Figure 3) come
// straight from a trace file.
//
// The package depends only on the standard library and is designed to cost
// nothing when disabled: a nil *Tracer is a valid, inert tracer, and every
// Emit on it returns immediately without allocating.
package obs

import (
	"sync"
	"time"
)

// Kind enumerates the event taxonomy. The names returned by String are the
// stable identifiers written to JSONL traces; DESIGN.md documents each.
type Kind uint8

const (
	// KindLPSolveStart marks the start of one LP (relaxation) solve.
	KindLPSolveStart Kind = iota
	// KindLPSolveEnd carries the solve's iteration/pivot/degenerate counts
	// and terminal status.
	KindLPSolveEnd
	// KindNodeExplored marks a branch-and-bound node whose relaxation was
	// evaluated; Nodes is the running explored count.
	KindNodeExplored
	// KindNodePruned marks a node discarded by bound or infeasibility
	// before branching.
	KindNodePruned
	// KindNodeBranched marks a node split into children; Detail names the
	// branching entity.
	KindNodeBranched
	// KindIncumbent marks an incumbent improvement; Source says whether it
	// came from a seed, polish, leaf, or the final bound tightening.
	KindIncumbent
	// KindStall is one evaluation of the paper's Section-3.3 progress rule;
	// Objective carries the window's relative improvement and Status is
	// "stop" or "continue".
	KindStall
	// KindPolishAccept marks a polish (primal heuristic) value installed as
	// a new incumbent.
	KindPolishAccept
	// KindPolishReject marks a polish attempt that did not improve the
	// incumbent (or declined to produce a value).
	KindPolishReject
	// KindRestart marks a black-box local-search restart.
	KindRestart
	// KindMoveAccept marks an accepted local-search move (uphill, or a
	// lucky annealing downhill).
	KindMoveAccept
	// KindMoveReject marks a rejected local-search move.
	KindMoveReject
	// KindPhaseStart / KindPhaseEnd bracket a named phase (build, solve,
	// verify, ...); PhaseEnd carries the duration in Dur.
	KindPhaseStart
	KindPhaseEnd
	// KindSolveDone marks the end of a branch-and-bound run with its final
	// status, objective, bound, and node count.
	KindSolveDone
	// KindWarmFallback marks an LP solve where a warm start was requested but
	// the cold two-phase path produced the answer (incompatible basis, lost
	// dual feasibility, or a repair that failed to converge). Iters carries
	// the solve's pivot count.
	KindWarmFallback
	// KindCheckpointWrite marks one checkpoint snapshot attempt; Status is
	// "ok" or "error" (Detail carries the error text), Nodes the explored
	// count at capture time.
	KindCheckpointWrite
	// KindResume marks a search reconstructed from a checkpoint; Nodes,
	// Objective and Bound carry the restored counters.
	KindResume
	// KindFaultInjected marks a deterministic fault-plan trigger firing;
	// Detail names the fault operation and occurrence.
	KindFaultInjected
)

func (k Kind) String() string {
	switch k {
	case KindLPSolveStart:
		return "lp_solve_start"
	case KindLPSolveEnd:
		return "lp_solve_end"
	case KindNodeExplored:
		return "node_explored"
	case KindNodePruned:
		return "node_pruned"
	case KindNodeBranched:
		return "node_branched"
	case KindIncumbent:
		return "incumbent"
	case KindStall:
		return "stall_check"
	case KindPolishAccept:
		return "polish_accepted"
	case KindPolishReject:
		return "polish_rejected"
	case KindRestart:
		return "restart"
	case KindMoveAccept:
		return "move_accepted"
	case KindMoveReject:
		return "move_rejected"
	case KindPhaseStart:
		return "phase_start"
	case KindPhaseEnd:
		return "phase_end"
	case KindSolveDone:
		return "solve_done"
	case KindWarmFallback:
		return "warm_fallback"
	case KindCheckpointWrite:
		return "checkpoint_write"
	case KindResume:
		return "resume"
	case KindFaultInjected:
		return "fault_injected"
	default:
		return "unknown"
	}
}

// Incumbent sources. Defined here (rather than in milp) so sinks can
// classify incumbent events without importing the solver.
const (
	SourceSeed   = "seed"   // caller-provided seed solution
	SourcePolish = "polish" // polish primal heuristic
	SourceLeaf   = "leaf"   // integral + complementary B&B leaf
	SourceFinal  = "final"  // final bound tightening at solve end
)

// Event is one structured observation. Fields are a union over the event
// taxonomy; unused fields are zero. Events are plain values so emitting one
// never allocates.
type Event struct {
	Kind    Kind
	Elapsed time.Duration // stamped by the Tracer: time since tracer start

	Objective  float64       // incumbent/relaxation objective, or stall improvement
	Bound      float64       // best proven bound at emission time
	Nodes      int           // branch-and-bound nodes explored so far
	Iters      int           // LP pivots (LPSolveEnd) or black-box evaluations
	Degenerate int           // degenerate pivots (LPSolveEnd)
	Dur        time.Duration // phase duration (PhaseEnd)

	Source string // incumbent source (seed/polish/leaf/final, or search method)
	Phase  string // phase name (PhaseStart/PhaseEnd)
	Status string // LP or solver status, or stall "stop"/"continue"
	Detail string // free-form annotation (e.g. branching entity)
}

// Sink consumes events. Implementations must be safe for concurrent use
// when the Tracer they are attached to is shared across goroutines.
type Sink interface {
	Emit(Event)
}

// Tracer stamps events with elapsed time and fans them out to its sinks.
// The zero value is unusable; construct with NewTracer. A nil *Tracer is a
// valid disabled tracer: all methods are no-ops.
type Tracer struct {
	mu    sync.Mutex
	start time.Time
	sinks []Sink
}

// NewTracer returns a tracer emitting to the given sinks, with its clock
// started now.
func NewTracer(sinks ...Sink) *Tracer {
	return &Tracer{start: time.Now(), sinks: sinks}
}

// Enabled reports whether emitting has any effect — use it to skip
// constructing expensive event details.
func (t *Tracer) Enabled() bool { return t != nil && len(t.sinks) > 0 }

// With returns a tracer that additionally emits to s, sharing the
// receiver's start time. A nil receiver yields a fresh tracer over s alone.
func (t *Tracer) With(s Sink) *Tracer {
	if t == nil {
		return NewTracer(s)
	}
	nt := &Tracer{start: t.start}
	nt.sinks = append(append(nt.sinks, t.sinks...), s)
	return nt
}

// Emit stamps e.Elapsed and forwards e to every sink. Emission is
// serialized, so sinks observe a nondecreasing Elapsed sequence. On a nil
// or sink-less tracer it returns immediately and never allocates.
func (t *Tracer) Emit(e Event) {
	if t == nil || len(t.sinks) == 0 {
		return
	}
	t.mu.Lock()
	e.Elapsed = time.Since(t.start)
	for _, s := range t.sinks {
		s.Emit(e)
	}
	t.mu.Unlock()
}

// TimePhase runs f as a named phase, bracketing it with PhaseStart and
// PhaseEnd events on tr (which may be nil). It returns f's duration and
// error. Phase durations reach the metrics registry through a MetricsSink
// attached to tr.
func TimePhase(tr *Tracer, name string, f func() error) (time.Duration, error) {
	tr.Emit(Event{Kind: KindPhaseStart, Phase: name})
	t0 := time.Now()
	err := f()
	d := time.Since(t0)
	tr.Emit(Event{Kind: KindPhaseEnd, Phase: name, Dur: d})
	return d, err
}

// Collector is a Sink that records every event in memory — for tests and
// post-run analysis.
type Collector struct {
	mu     sync.Mutex
	events []Event
}

func (c *Collector) Emit(e Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

// Events returns a copy of everything recorded so far.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// Count returns how many recorded events have the given kind.
func (c *Collector) Count(k Kind) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, e := range c.events {
		if e.Kind == k {
			n++
		}
	}
	return n
}

// LogfSink adapts the legacy milp.Options.Log callback: it renders the
// human-relevant subset of events (incumbents, stalls, phases, restarts) as
// progress lines and drops high-frequency node/LP events.
type LogfSink struct {
	Logf func(format string, args ...any)
}

func (s LogfSink) Emit(e Event) {
	if s.Logf == nil {
		return
	}
	switch e.Kind {
	case KindIncumbent:
		s.Logf("bnb: node %d new incumbent %.6g (bound %.6g, %s)",
			e.Nodes, e.Objective, e.Bound, e.Source)
	case KindStall:
		if e.Status == "stop" {
			s.Logf("bnb: stalling (%.3g%% improvement in window), stopping", e.Objective*100)
		}
	case KindSolveDone:
		s.Logf("bnb: done status=%s obj=%.6g bound=%.6g nodes=%d", e.Status, e.Objective, e.Bound, e.Nodes)
	case KindPhaseEnd:
		s.Logf("phase %s: %v", e.Phase, e.Dur)
	case KindRestart:
		s.Logf("%s: restart (best %.6g after %d evals)", e.Source, e.Objective, e.Iters)
	}
}
