package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
)

// ServeDebug starts an HTTP listener on addr (e.g. "localhost:6060")
// exposing the standard pprof profiles under /debug/pprof/, expvar under
// /debug/vars, and the default metrics registry in Prometheus text format
// under /metrics. It returns the bound address (useful with a ":0" port)
// and serves in a background goroutine until the process exits.
func ServeDebug(addr string) (string, error) {
	PublishExpvar()
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = Default.WriteProm(w)
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() { _ = http.Serve(ln, mux) }()
	return ln.Addr().String(), nil
}
