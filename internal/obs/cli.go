package obs

import (
	"fmt"
	"io"
	"os"
)

// SetupCLI wires the conventional -trace/-metrics/-pprof command-line flag
// values into a tracer. It returns a nil tracer when all three are off, so
// instrumented hot loops pay nothing by default.
//
//   - tracePath != "": the file is created and every event is appended as a
//     JSONL record.
//   - metricsDump or any other flag: a MetricsSink feeding the Default
//     registry is attached, and the finish func prints a Prometheus-style
//     text dump to out when metricsDump is set.
//   - pprofAddr != "": a debug HTTP server (net/http/pprof, expvar,
//     /metrics) is started and its address printed to out.
//
// The returned finish func flushes and closes the trace file and prints the
// metrics dump; call it once before exiting normally.
func SetupCLI(tracePath string, metricsDump bool, pprofAddr string, out io.Writer) (*Tracer, func(), error) {
	if out == nil {
		out = os.Stdout
	}
	var sinks []Sink
	var tw *JSONLWriter
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return nil, nil, err
		}
		tw = NewJSONLWriter(f)
		sinks = append(sinks, tw)
	}
	if metricsDump || pprofAddr != "" || tracePath != "" {
		sinks = append(sinks, NewMetricsSink(nil))
	}
	if pprofAddr != "" {
		addr, err := ServeDebug(pprofAddr)
		if err != nil {
			if tw != nil {
				tw.Close()
			}
			return nil, nil, err
		}
		fmt.Fprintf(out, "debug server: http://%s/debug/pprof/ /debug/vars /metrics\n", addr)
	}
	var tracer *Tracer
	if len(sinks) > 0 {
		tracer = NewTracer(sinks...)
	}
	finish := func() {
		if tw != nil {
			if err := tw.Close(); err != nil {
				fmt.Fprintf(out, "trace: %v\n", err)
			}
		}
		if metricsDump {
			fmt.Fprintln(out, "--- metrics ---")
			if err := Default.WriteProm(out); err != nil {
				fmt.Fprintf(out, "metrics: %v\n", err)
			}
		}
	}
	return tracer, finish, nil
}
