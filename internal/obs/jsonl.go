package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sync"
	"time"
)

// Record is the JSONL wire form of an Event. It is a strict superset of
// milp.TracePoint: every incumbent record carries elapsed time, objective,
// bound, node count, and source, so a gap-versus-time plot (Figure 3) can be
// read straight from a trace file. Non-finite objective/bound values (the
// solver's "no incumbent yet" sentinels) are omitted rather than written,
// because JSON has no encoding for infinities.
type Record struct {
	T          float64 `json:"t"` // seconds since tracer start
	Kind       string  `json:"kind"`
	Objective  float64 `json:"objective,omitempty"`
	Bound      float64 `json:"bound,omitempty"`
	Nodes      int     `json:"nodes,omitempty"`
	Iters      int     `json:"iters,omitempty"`
	Degenerate int     `json:"degenerate,omitempty"`
	DurSec     float64 `json:"dur,omitempty"` // phase duration in seconds
	Source     string  `json:"source,omitempty"`
	Phase      string  `json:"phase,omitempty"`
	Status     string  `json:"status,omitempty"`
	Detail     string  `json:"detail,omitempty"`
}

// Event converts the record back to an in-memory event (inverse of
// recordOf, up to float-to-duration rounding).
func (r Record) Event() Event {
	k := kindFromString(r.Kind)
	return Event{
		Kind:       k,
		Elapsed:    time.Duration(r.T * float64(time.Second)),
		Objective:  r.Objective,
		Bound:      r.Bound,
		Nodes:      r.Nodes,
		Iters:      r.Iters,
		Degenerate: r.Degenerate,
		Dur:        time.Duration(r.DurSec * float64(time.Second)),
		Source:     r.Source,
		Phase:      r.Phase,
		Status:     r.Status,
		Detail:     r.Detail,
	}
}

func kindFromString(s string) Kind {
	for k := KindLPSolveStart; k <= KindFaultInjected; k++ {
		if k.String() == s {
			return k
		}
	}
	return KindFaultInjected + 1 // out-of-range marker; String() says "unknown"
}

// NewRecord converts an Event to its JSONL wire form — the same projection
// JSONLWriter applies per line. Exported for sinks that ship records over
// other transports (cmd/gapserved streams them as NDJSON HTTP responses).
func NewRecord(e Event) Record { return recordOf(e) }

func recordOf(e Event) Record {
	r := Record{
		T:          e.Elapsed.Seconds(),
		Kind:       e.Kind.String(),
		Nodes:      e.Nodes,
		Iters:      e.Iters,
		Degenerate: e.Degenerate,
		DurSec:     e.Dur.Seconds(),
		Source:     e.Source,
		Phase:      e.Phase,
		Status:     e.Status,
		Detail:     e.Detail,
	}
	if !math.IsInf(e.Objective, 0) && !math.IsNaN(e.Objective) {
		r.Objective = e.Objective
	}
	if !math.IsInf(e.Bound, 0) && !math.IsNaN(e.Bound) {
		r.Bound = e.Bound
	}
	return r
}

// JSONLWriter is a Sink that streams events as one JSON object per line.
// Writes are buffered; call Flush (or Close) before reading the output.
type JSONLWriter struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	enc *json.Encoder
	c   io.Closer
	err error
}

// NewJSONLWriter wraps w. If w is also an io.Closer, Close will close it.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	bw := bufio.NewWriter(w)
	j := &JSONLWriter{bw: bw, enc: json.NewEncoder(bw)}
	if c, ok := w.(io.Closer); ok {
		j.c = c
	}
	return j
}

func (j *JSONLWriter) Emit(e Event) {
	j.mu.Lock()
	if j.err == nil {
		j.err = j.enc.Encode(recordOf(e))
	}
	j.mu.Unlock()
}

// Flush drains the buffer and returns the first error seen on any write.
func (j *JSONLWriter) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	j.err = j.bw.Flush()
	return j.err
}

// Close flushes and, if the underlying writer is closable, closes it.
func (j *JSONLWriter) Close() error {
	ferr := j.Flush()
	if j.c != nil {
		if cerr := j.c.Close(); ferr == nil {
			ferr = cerr
		}
	}
	return ferr
}

// ReadTrace parses a JSONL trace produced by JSONLWriter. It fails on the
// first malformed line, reporting its line number.
func ReadTrace(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []Record
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(b, &rec); err != nil {
			return nil, fmt.Errorf("trace line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
