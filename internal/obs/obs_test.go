package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	tr.Emit(Event{Kind: KindIncumbent, Objective: 1}) // must not panic
	d, err := TimePhase(tr, "build", func() error { return nil })
	if err != nil || d < 0 {
		t.Fatalf("TimePhase on nil tracer: d=%v err=%v", d, err)
	}
	tr2 := tr.With(&Collector{})
	if !tr2.Enabled() {
		t.Fatal("With on nil tracer should yield an enabled tracer")
	}
}

func TestDisabledEmitDoesNotAllocate(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Emit(Event{Kind: KindNodeExplored, Nodes: 1, Objective: 2.5})
	})
	if allocs != 0 {
		t.Fatalf("nil tracer Emit allocates: %v allocs/op", allocs)
	}
}

func TestTracerStampsNondecreasingElapsed(t *testing.T) {
	c := &Collector{}
	tr := NewTracer(c)
	for i := 0; i < 50; i++ {
		tr.Emit(Event{Kind: KindNodeExplored, Nodes: i})
	}
	evs := c.Events()
	if len(evs) != 50 {
		t.Fatalf("got %d events, want 50", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Elapsed < evs[i-1].Elapsed {
			t.Fatalf("Elapsed decreased at %d: %v < %v", i, evs[i].Elapsed, evs[i-1].Elapsed)
		}
	}
}

func TestTracerConcurrentEmit(t *testing.T) {
	c := &Collector{}
	tr := NewTracer(c, NewMetricsSink(NewRegistry()))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.Emit(Event{Kind: KindNodeExplored, Nodes: i})
			}
		}()
	}
	wg.Wait()
	if n := c.Count(KindNodeExplored); n != 8*200 {
		t.Fatalf("lost events: got %d, want %d", n, 8*200)
	}
}

func TestRegistryCountersGaugesHistograms(t *testing.T) {
	r := NewRegistry()
	r.Counter("lp_solves_total").Add(3)
	r.Counter("lp_solves_total").Inc()
	r.Gauge("best_gap").Set(1.25)
	r.Histogram("phase_build_seconds").Observe(0.003)
	r.Histogram("phase_build_seconds").Observe(2.0)

	snap := r.Snapshot()
	if snap["lp_solves_total"] != 4 {
		t.Fatalf("counter = %v, want 4", snap["lp_solves_total"])
	}
	if snap["best_gap"] != 1.25 {
		t.Fatalf("gauge = %v, want 1.25", snap["best_gap"])
	}
	if snap["phase_build_seconds_count"] != 2 {
		t.Fatalf("hist count = %v, want 2", snap["phase_build_seconds_count"])
	}
	if math.Abs(snap["phase_build_seconds_sum"]-2.003) > 1e-12 {
		t.Fatalf("hist sum = %v, want 2.003", snap["phase_build_seconds_sum"])
	}

	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE lp_solves_total counter",
		"lp_solves_total 4",
		"# TYPE best_gap gauge",
		"best_gap 1.25",
		"# TYPE phase_build_seconds histogram",
		`phase_build_seconds_bucket{le="+Inf"} 2`,
		"phase_build_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom dump missing %q\n%s", want, out)
		}
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	h := &Histogram{}
	h.Observe(0.0001) // bucket le=1e-4
	h.Observe(0.02)   // bucket le=0.025
	h.Observe(1000)   // +Inf bucket
	cum, count, sum := h.snapshot()
	if count != 3 {
		t.Fatalf("count = %d", count)
	}
	if got := cum[len(cum)-1]; got != 3 {
		t.Fatalf("+Inf cumulative = %d, want 3", got)
	}
	if sum < 1000 {
		t.Fatalf("sum = %v", sum)
	}
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			t.Fatalf("cumulative counts not monotone at %d", i)
		}
	}
}

func TestMetricsSinkEventMapping(t *testing.T) {
	r := NewRegistry()
	s := NewMetricsSink(r)
	tr := NewTracer(s)
	tr.Emit(Event{Kind: KindNodeExplored})
	tr.Emit(Event{Kind: KindNodeExplored})
	tr.Emit(Event{Kind: KindNodePruned})
	tr.Emit(Event{Kind: KindNodeBranched})
	tr.Emit(Event{Kind: KindIncumbent, Source: SourceSeed})
	tr.Emit(Event{Kind: KindIncumbent, Source: SourceLeaf})
	tr.Emit(Event{Kind: KindIncumbent, Source: "hill"})
	tr.Emit(Event{Kind: KindPolishAccept, Source: SourcePolish})
	tr.Emit(Event{Kind: KindRestart, Source: "hill"})
	tr.Emit(Event{Kind: KindMoveAccept})
	tr.Emit(Event{Kind: KindMoveReject})
	tr.Emit(Event{Kind: KindStall, Status: "continue"})
	tr.Emit(Event{Kind: KindSolveDone, Status: "optimal"})
	tr.Emit(Event{Kind: KindPhaseEnd, Phase: "solve", Dur: 5 * time.Millisecond})

	snap := r.Snapshot()
	want := map[string]float64{
		"bnb_nodes_total":             2,
		"bnb_nodes_pruned_total":      1,
		"bnb_nodes_branched_total":    1,
		"bnb_incumbents_total":        2,
		"blackbox_improvements_total": 1,
		"bnb_polish_accepted_total":   1,
		"blackbox_restarts_total":     1,
		"blackbox_accepts_total":      1,
		"blackbox_rejects_total":      1,
		"bnb_stall_checks_total":      1,
		"bnb_solves_total":            1,
		"phase_solve_seconds_count":   1,
	}
	for k, v := range want {
		if snap[k] != v {
			t.Errorf("%s = %v, want %v", k, snap[k], v)
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	tr := NewTracer(w)
	tr.Emit(Event{Kind: KindIncumbent, Objective: 12.5, Bound: 20, Nodes: 7, Source: SourceLeaf})
	tr.Emit(Event{Kind: KindLPSolveEnd, Iters: 42, Degenerate: 3, Status: "optimal"})
	tr.Emit(Event{Kind: KindPhaseEnd, Phase: "verify", Dur: 1500 * time.Microsecond})
	tr.Emit(Event{Kind: KindIncumbent, Objective: math.Inf(-1), Bound: math.Inf(1), Source: SourceSeed})
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	recs, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4", len(recs))
	}
	if recs[0].Kind != "incumbent" || recs[0].Objective != 12.5 || recs[0].Bound != 20 ||
		recs[0].Nodes != 7 || recs[0].Source != "leaf" {
		t.Fatalf("record 0 mismatch: %+v", recs[0])
	}
	if recs[1].Iters != 42 || recs[1].Degenerate != 3 || recs[1].Status != "optimal" {
		t.Fatalf("record 1 mismatch: %+v", recs[1])
	}
	if recs[2].Phase != "verify" || recs[2].DurSec <= 0 {
		t.Fatalf("record 2 mismatch: %+v", recs[2])
	}
	// Infinities must be sanitized away, not break encoding.
	if recs[3].Objective != 0 || recs[3].Bound != 0 {
		t.Fatalf("infinite values not omitted: %+v", recs[3])
	}
	// T nondecreasing across the file.
	for i := 1; i < len(recs); i++ {
		if recs[i].T < recs[i-1].T {
			t.Fatalf("t decreased at record %d", i)
		}
	}
	// Round-trip back to events preserves kind.
	if recs[1].Event().Kind != KindLPSolveEnd {
		t.Fatalf("Event() kind mismatch: %v", recs[1].Event().Kind)
	}
}

func TestReadTraceRejectsMalformed(t *testing.T) {
	in := strings.NewReader("{\"t\":0,\"kind\":\"incumbent\"}\nnot json\n")
	if _, err := ReadTrace(in); err == nil {
		t.Fatal("expected error on malformed line")
	}
}

func TestKindStringsRoundTrip(t *testing.T) {
	for k := KindLPSolveStart; k <= KindSolveDone; k++ {
		s := k.String()
		if s == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
		if got := kindFromString(s); got != k {
			t.Fatalf("kindFromString(%q) = %v, want %v", s, got, k)
		}
	}
}

func TestTimePhaseEmitsStartEnd(t *testing.T) {
	c := &Collector{}
	tr := NewTracer(c)
	d, err := TimePhase(tr, "build", func() error {
		time.Sleep(time.Millisecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if d < time.Millisecond {
		t.Fatalf("duration too small: %v", d)
	}
	evs := c.Events()
	if len(evs) != 2 || evs[0].Kind != KindPhaseStart || evs[1].Kind != KindPhaseEnd {
		t.Fatalf("unexpected events: %+v", evs)
	}
	if evs[1].Dur < time.Millisecond {
		t.Fatalf("PhaseEnd Dur too small: %v", evs[1].Dur)
	}
	if evs[1].Phase != "build" {
		t.Fatalf("phase name = %q", evs[1].Phase)
	}
}

func TestPublishExpvarIdempotent(t *testing.T) {
	PublishExpvar()
	PublishExpvar() // second call must not panic
}

func TestLogfSinkRendersIncumbent(t *testing.T) {
	var lines []string
	tr := NewTracer(LogfSink{Logf: func(f string, a ...any) {
		lines = append(lines, f)
	}})
	tr.Emit(Event{Kind: KindIncumbent, Objective: 1, Source: SourceLeaf})
	tr.Emit(Event{Kind: KindNodeExplored}) // dropped: high-frequency
	tr.Emit(Event{Kind: KindStall, Status: "stop", Objective: 0.001})
	if len(lines) != 2 {
		t.Fatalf("got %d log lines, want 2", len(lines))
	}
}
