package obs

import (
	"io"
	"sync"
	"testing"
	"time"
)

// TestTracerConcurrentEmitOrdering hammers one shared Tracer from many
// goroutines — the exact shape the parallel branch-and-bound and parallel
// blackbox restarts produce — and checks the serialized guarantees hold: no
// event is lost, Elapsed stamps never decrease in arrival order, and the
// metrics and JSONL sinks downstream stay consistent. Run under -race in CI,
// this is the hot-path concurrency-safety proof for the observability stack.
func TestTracerConcurrentEmitOrdering(t *testing.T) {
	const goroutines = 8
	const perG = 500
	col := &Collector{}
	reg := NewRegistry()
	tr := NewTracer(col, NewMetricsSink(reg), NewJSONLWriter(io.Discard))

	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				tr.Emit(Event{Kind: KindLPSolveStart, Nodes: i})
				tr.Emit(Event{Kind: KindLPSolveEnd, Nodes: i, Iters: 3})
				if i%50 == 0 {
					tr.Emit(Event{Kind: KindIncumbent, Source: SourceLeaf,
						Objective: float64(g*perG + i)})
				}
			}
		}(g)
	}
	wg.Wait()

	evs := col.Events()
	want := goroutines * (2*perG + perG/50)
	if len(evs) != want {
		t.Fatalf("collector saw %d events, want %d", len(evs), want)
	}
	var last time.Duration = -1
	starts, ends := 0, 0
	for i, e := range evs {
		if e.Elapsed < last {
			t.Fatalf("event %d: Elapsed regressed (%v after %v)", i, e.Elapsed, last)
		}
		last = e.Elapsed
		switch e.Kind {
		case KindLPSolveStart:
			starts++
		case KindLPSolveEnd:
			ends++
		}
	}
	if starts != goroutines*perG || ends != goroutines*perG {
		t.Fatalf("start/end counts skewed: %d/%d, want %d each", starts, ends, goroutines*perG)
	}
	snap := reg.Snapshot()
	if got := snap["bnb_incumbents_total"]; got != float64(goroutines*(perG/50)) {
		t.Fatalf("metrics incumbents=%v, want %d", got, goroutines*(perG/50))
	}
}

// TestRegistryConcurrentAccess checks concurrent Counter/Gauge/Histogram
// lookups and updates on one shared Registry (workers share the registry the
// same way they share the tracer).
func TestRegistryConcurrentAccess(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	wg.Add(8)
	for g := 0; g < 8; g++ {
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				reg.Counter("shared_counter").Inc()
				reg.Gauge("shared_gauge").Set(float64(i))
				reg.Histogram("shared_hist").Observe(float64(i) / 1000)
			}
		}()
	}
	wg.Wait()
	if v := reg.Counter("shared_counter").Value(); v != 8000 {
		t.Fatalf("counter=%d, want 8000", v)
	}
	if c := reg.Histogram("shared_hist").Count(); c != 8000 {
		t.Fatalf("histogram count=%d, want 8000", c)
	}
}
