package benchstore

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestVerdictHardTable(t *testing.T) {
	cases := []struct {
		name     string
		old, new int64
		want     Verdict
	}{
		{"equal-is-within", 2023, 2023, VerdictWithin},
		{"zero-equal", 0, 0, VerdictWithin},
		{"any-increase-regresses", 2023, 2024, VerdictRegression},
		{"huge-increase-regresses", 10, 1000, VerdictRegression},
		{"any-decrease-improves", 2023, 2022, VerdictImprovement},
		{"to-zero-improves", 5, 0, VerdictImprovement},
	}
	for _, tc := range cases {
		if got := verdictHard(tc.old, tc.new); got != tc.want {
			t.Errorf("%s: verdictHard(%d, %d) = %s, want %s", tc.name, tc.old, tc.new, got, tc.want)
		}
	}
}

func TestVerdictSoftTable(t *testing.T) {
	cases := []struct {
		name     string
		old, new float64
		tol      float64
		want     Verdict
	}{
		{"equal-is-within", 1.0, 1.0, 0.25, VerdictWithin},
		{"just-inside-upper-band", 1.0, 1.24, 0.25, VerdictWithin},
		{"just-inside-lower-band", 1.0, 0.76, 0.25, VerdictWithin},
		{"above-band-regresses", 1.0, 1.3, 0.25, VerdictRegression},
		{"doubling-regresses", 2.0, 4.0, 0.25, VerdictRegression},
		{"below-band-improves", 1.0, 0.5, 0.25, VerdictImprovement},
		{"tight-tolerance", 100, 102, 0.01, VerdictRegression},
		{"zero-baseline-degrades-to-within", 0, 5, 0.25, VerdictWithin},
		{"negative-baseline-degrades-to-within", -1, 5, 0.25, VerdictWithin},
		{"below-absolute-floor-never-gates", 0.001, 0.009, 0.25, VerdictWithin},
		{"floor-does-not-mask-real-changes", 0.1, 0.2, 0.25, VerdictRegression},
	}
	for _, tc := range cases {
		if got := verdictSoft(tc.old, tc.new, tc.tol, 0.01); got != tc.want {
			t.Errorf("%s: verdictSoft(%g, %g, %g) = %s, want %s", tc.name, tc.old, tc.new, tc.tol, got, tc.want)
		}
	}
}

// compareInputs builds a baseline/candidate pair exercising every verdict:
// hard improvement, hard within, hard regression, soft regression, soft
// within, a missing metric, a missing fixture, a fingerprint mismatch, and
// a candidate-only fixture.
func compareInputs() (*File, *File) {
	baseline := &File{
		Schema: SchemaVersion, Date: "2026-08-08", Seed: 5,
		Fixtures: []Fixture{
			{
				Name: "smoke_b4_dp", Fingerprint: Fingerprint(0x1111), Reps: 3,
				Hard: []Counter{{Name: "nodes", Value: 2023}, {Name: "lp_iters", Value: 37123}, {Name: "warm_fallbacks", Value: 203}},
				Soft: []Value{{Name: "seconds_per_op", Value: 3.0}, {Name: "allocs_per_op", Value: 1000}},
				Histograms: []Histogram{
					{Name: "lp_phase2_seconds", Count: 2226, Sum: 2.5, Buckets: []uint64{0, 2226}},
				},
			},
			{
				Name: "warm_on", Fingerprint: Fingerprint(0x2222), Reps: 3,
				Hard: []Counter{{Name: "lp_iters", Value: 1705}, {Name: "vanishing_metric", Value: 7}},
			},
			{Name: "dropped_fixture", Reps: 1, Hard: []Counter{{Name: "nodes", Value: 64}}},
			{Name: "reshaped_fixture", Fingerprint: Fingerprint(0x3333), Reps: 1,
				Hard: []Counter{{Name: "nodes", Value: 10}}},
		},
	}
	candidate := &File{
		Schema: SchemaVersion, Date: "2026-08-09", Seed: 5,
		Fixtures: []Fixture{
			{
				Name: "smoke_b4_dp", Fingerprint: Fingerprint(0x1111), Reps: 3,
				Hard: []Counter{{Name: "nodes", Value: 2023}, {Name: "lp_iters", Value: 36000}, {Name: "warm_fallbacks", Value: 251}},
				Soft: []Value{{Name: "seconds_per_op", Value: 4.5}, {Name: "allocs_per_op", Value: 1100}},
				Histograms: []Histogram{
					{Name: "lp_phase2_seconds", Count: 2226, Sum: 2.6, Buckets: []uint64{0, 2226}},
				},
			},
			{
				Name: "warm_on", Fingerprint: Fingerprint(0x2222), Reps: 3,
				Hard: []Counter{{Name: "lp_iters", Value: 1705}},
			},
			{Name: "reshaped_fixture", Fingerprint: Fingerprint(0x4444), Reps: 1,
				Hard: []Counter{{Name: "nodes", Value: 3}}},
			{Name: "brand_new_fixture", Reps: 1, Hard: []Counter{{Name: "nodes", Value: 1}}},
		},
	}
	return baseline, candidate
}

func TestCompareVerdicts(t *testing.T) {
	baseline, candidate := compareInputs()
	rep, err := Compare(baseline, candidate, Options{SoftTolerance: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	verdictOf := func(fixture, metric string) Verdict {
		for _, d := range rep.Deltas {
			if d.Fixture == fixture && d.Metric == metric {
				return d.Verdict
			}
		}
		t.Fatalf("no delta for %s/%s", fixture, metric)
		return ""
	}
	checks := []struct {
		fixture, metric string
		want            Verdict
	}{
		{"smoke_b4_dp", "nodes", VerdictWithin},
		{"smoke_b4_dp", "lp_iters", VerdictImprovement},
		{"smoke_b4_dp", "warm_fallbacks", VerdictRegression},
		{"smoke_b4_dp", "seconds_per_op", VerdictRegression}, // 3.0 -> 4.5 is +50%, over ±25%
		{"smoke_b4_dp", "allocs_per_op", VerdictWithin},      // +10% inside the band
		{"smoke_b4_dp", "lp_phase2_seconds_count", VerdictWithin},
		{"smoke_b4_dp", "lp_phase2_seconds_sum", VerdictWithin},
		{"warm_on", "lp_iters", VerdictWithin},
		{"warm_on", "vanishing_metric", VerdictMissing},
		{"dropped_fixture", "(fixture)", VerdictMissing},
		{"reshaped_fixture", "fingerprint", VerdictMissing},
	}
	for _, c := range checks {
		if got := verdictOf(c.fixture, c.metric); got != c.want {
			t.Errorf("%s/%s: verdict %s, want %s", c.fixture, c.metric, got, c.want)
		}
	}
	// A fingerprint mismatch must suppress per-counter comparison: the
	// reshaped fixture's nodes counter (10 -> 3) would read as an
	// improvement, but the trees are not comparable.
	for _, d := range rep.Deltas {
		if d.Fixture == "reshaped_fixture" && d.Metric == "nodes" {
			t.Errorf("fingerprint mismatch did not suppress counter diffs: %+v", d)
		}
	}
	hard := rep.HardFailures()
	// warm_fallbacks regression + vanishing_metric + dropped fixture +
	// fingerprint mismatch = 4 gate failures.
	if len(hard) != 4 {
		t.Fatalf("HardFailures = %d (%+v), want 4", len(hard), hard)
	}
	if soft := rep.SoftRegressions(); len(soft) != 1 || soft[0].Metric != "seconds_per_op" {
		t.Fatalf("SoftRegressions = %+v, want just seconds_per_op", soft)
	}
	if len(rep.NewFixtures) != 1 || rep.NewFixtures[0] != "brand_new_fixture" {
		t.Fatalf("NewFixtures = %v", rep.NewFixtures)
	}
}

// TestCompareIdentityIsClean pins the acceptance criterion: comparing a
// ledger against itself yields no failures of any kind.
func TestCompareIdentityIsClean(t *testing.T) {
	b1, err := Encode(sampleFile())
	if err != nil {
		t.Fatal(err)
	}
	f1, err := Decode(b1)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Decode(b1)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Compare(f1, f2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(rep.HardFailures()); n != 0 {
		t.Fatalf("self-comparison produced %d hard failures: %+v", n, rep.HardFailures())
	}
	if n := len(rep.SoftRegressions()); n != 0 {
		t.Fatalf("self-comparison produced %d soft regressions", n)
	}
	for _, d := range rep.Deltas {
		if d.Verdict != VerdictWithin {
			t.Fatalf("self-comparison delta not within-tolerance: %+v", d)
		}
	}
}

func TestCompareReportGolden(t *testing.T) {
	baseline, candidate := compareInputs()
	rep, err := Compare(baseline, candidate, Options{SoftTolerance: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "compare_report.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/benchstore -run Golden -update` to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("report drifted from golden:\n--- got\n%s\n--- want\n%s", buf.Bytes(), want)
	}
}
