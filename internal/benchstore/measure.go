package benchstore

import (
	"fmt"
	"time"
)

// Timing is the wall-clock outcome of Measure: Best is the minimum over
// reps (the conventional benchmark statistic — least scheduler noise),
// Total the sum.
type Timing struct {
	Reps  int
	Best  time.Duration
	Total time.Duration
}

// BestSeconds returns the best rep in seconds — the value recorded as a
// fixture's soft ns_per_op / seconds metrics.
func (t Timing) BestSeconds() float64 { return t.Best.Seconds() }

// Measure runs f reps times and times each run. It is the ledger's only
// stopwatch: fixtures funnel through here so the wall-clock read sites stay
// in one annotated place. Measuring stops at the first error.
//
// benchstore is on the walltime analyzer's denied list precisely because a
// benchmark harness is wall-clock-adjacent to the solver: the annotations
// below are the audited exceptions, and any new time.Now added to this
// package without one fails `make gapvet`.
func Measure(reps int, f func() error) (Timing, error) {
	if reps < 1 {
		reps = 1
	}
	tm := Timing{Reps: reps}
	for i := 0; i < reps; i++ {
		start := time.Now() //gapvet:allow walltime benchmark stopwatch: measuring wall clock is this package's purpose; results feed the ledger, never a solve
		err := f()
		d := time.Since(start) //gapvet:allow walltime benchmark stopwatch: measuring wall clock is this package's purpose; results feed the ledger, never a solve
		if err != nil {
			return tm, fmt.Errorf("benchstore: rep %d/%d: %w", i+1, reps, err)
		}
		tm.Total += d
		if i == 0 || d < tm.Best {
			tm.Best = d
		}
	}
	return tm, nil
}
