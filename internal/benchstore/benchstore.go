// Package benchstore is the durable benchmark ledger: a versioned,
// deterministic JSON codec for BENCH_<date>.json files recording per-fixture
// effort counters, wall-clock metrics, and full obs histogram snapshots, plus
// the comparison engine that turns two ledgers into per-metric verdicts.
//
// The design splits every fixture's metrics into two classes with different
// gating rules:
//
//   - Hard metrics are deterministic effort counters — nodes, LP solves,
//     simplex pivots, warm fallbacks, histogram observation counts. Under the
//     solver's determinism contract they are a pure function of the fixture
//     and seed, so any increase versus the baseline is a real regression and
//     is gated exactly (tolerance zero).
//
//   - Soft metrics are wall-clock and allocation figures — ns/op, phase
//     second sums, bytes/op. They vary with the machine and scheduler, so
//     they gate through a relative tolerance and exist mainly to explain
//     where time went, not to fail CI on their own.
//
// Fixtures are keyed by the solver's search fingerprint (milp.Result's
// Fingerprint, the same value the checkpoint layer pins snapshots to): two
// ledgers may only have their hard counters diffed when the fingerprints
// match, because a fingerprint change means the explored tree itself changed
// shape and the counters are not comparable.
//
// Encoding is canonical: fixtures and metrics are sorted by name, floats
// use Go's shortest round-trip formatting, and non-finite values marshal as
// the JSON strings "+Inf"/"-Inf"/"NaN" (JSON has no encoding for
// infinities; the checkpoint codec solves this with raw IEEE bits, a text
// ledger solves it with sentinels). Encoding the same state twice yields
// byte-identical files, so a BENCH file diffs cleanly under git.
package benchstore

import (
	"encoding/json"
	"fmt"
	"math"
)

// SchemaVersion is the current BENCH file schema. Decode rejects files
// written under any other version rather than guessing at field semantics.
const SchemaVersion = 1

// Float is a float64 whose JSON form is ±Inf/NaN-safe: non-finite values
// marshal as the strings "+Inf", "-Inf", and "NaN" instead of failing.
type Float float64

// MarshalJSON implements json.Marshaler.
func (f Float) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON implements json.Unmarshaler, accepting both plain numbers
// and the non-finite sentinels written by MarshalJSON.
func (f *Float) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		switch s {
		case "NaN":
			*f = Float(math.NaN())
		case "+Inf", "Inf":
			*f = Float(math.Inf(1))
		case "-Inf":
			*f = Float(math.Inf(-1))
		default:
			return fmt.Errorf("benchstore: unknown float sentinel %q", s)
		}
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = Float(v)
	return nil
}

// File is one benchmark ledger: everything `gapbench` measured in one run.
type File struct {
	Schema int    `json:"schema"`
	Date   string `json:"date"` // YYYY-MM-DD, also embedded in the filename
	Seed   int64  `json:"seed"` // harness seed the fixtures ran under
	Note   string `json:"note,omitempty"`
	// HistBounds are the obs histogram bucket upper bounds (seconds) the
	// Histogram bucket vectors below are defined over; the final implicit
	// bucket is +Inf.
	HistBounds []Float   `json:"hist_bounds,omitempty"`
	Fixtures   []Fixture `json:"fixtures"`
}

// Fixture is one benchmark scenario's measured outcome.
type Fixture struct {
	Name string `json:"name"`
	// Fingerprint is the solver's search fingerprint in 0x-prefixed hex
	// (empty for fixtures that never enter branch-and-bound). Hard counters
	// are only diffed between equal fingerprints.
	Fingerprint string `json:"fingerprint,omitempty"`
	Reps        int    `json:"reps"` // measurement repetitions backing the soft metrics
	// Hard are the deterministic effort counters, gated exactly.
	Hard []Counter `json:"hard,omitempty"`
	// Soft are wall-clock/allocation metrics, gated through a tolerance.
	Soft []Value `json:"soft,omitempty"`
	// Histograms are per-phase obs timing distributions captured during the
	// fixture's first rep. Counts are deterministic (hard); sums and bucket
	// placements depend on wall clock (soft / informational).
	Histograms []Histogram `json:"histograms,omitempty"`
}

// Counter is one named deterministic counter value.
type Counter struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// Value is one named soft (wall-clock-ish) metric value.
type Value struct {
	Name  string `json:"name"`
	Value Float  `json:"value"`
}

// Histogram is one obs histogram snapshot: cumulative bucket counts over
// File.HistBounds (last entry is the +Inf bucket), total observation count,
// and sum of observations in seconds.
type Histogram struct {
	Name    string   `json:"name"`
	Count   uint64   `json:"count"`
	Sum     Float    `json:"sum"`
	Buckets []uint64 `json:"buckets,omitempty"`
}

// FindFixture returns the named fixture, or nil.
func (f *File) FindFixture(name string) *Fixture {
	for i := range f.Fixtures {
		if f.Fixtures[i].Name == name {
			return &f.Fixtures[i]
		}
	}
	return nil
}

// Fingerprint formats a solver search fingerprint in the ledger's canonical
// 0x-prefixed, zero-padded hex form.
func Fingerprint(fp uint64) string {
	if fp == 0 {
		return ""
	}
	return fmt.Sprintf("0x%016x", fp)
}
