package benchstore

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func sampleFile() *File {
	return &File{
		Schema:     SchemaVersion,
		Date:       "2026-08-08",
		Seed:       5,
		Note:       "unit fixture",
		HistBounds: []Float{1e-5, 1e-3, 0.1, 10},
		Fixtures: []Fixture{
			{
				Name:        "zeta", // deliberately unsorted vs "alpha" below
				Fingerprint: Fingerprint(0xdeadbeef),
				Reps:        3,
				Hard:        []Counter{{Name: "nodes", Value: 2023}, {Name: "lp_iters", Value: 37123}},
				Soft:        []Value{{Name: "ns_per_op", Value: 1.5e9}, {Name: "allocs", Value: 12000}},
				Histograms: []Histogram{
					{Name: "lp_phase2_seconds", Count: 7, Sum: 0.5, Buckets: []uint64{0, 3, 7, 7, 7}},
				},
			},
			{
				Name: "alpha",
				Reps: 1,
				Hard: []Counter{{Name: "nodes", Value: 1}},
				Soft: []Value{
					{Name: "weird_inf", Value: Float(math.Inf(1))},
					{Name: "weird_neg_inf", Value: Float(math.Inf(-1))},
					{Name: "weird_nan", Value: Float(math.NaN())},
				},
			},
		},
	}
}

func TestEncodeIsCanonicalAndSorted(t *testing.T) {
	f := sampleFile()
	b1, err := Encode(f)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := Encode(sampleFile())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("encoding equal states produced different bytes")
	}
	if f.Fixtures[0].Name != "alpha" || f.Fixtures[1].Name != "zeta" {
		t.Fatalf("fixtures not sorted after Encode: %s, %s", f.Fixtures[0].Name, f.Fixtures[1].Name)
	}
	if f.Fixtures[1].Hard[0].Name != "lp_iters" {
		t.Fatalf("hard metrics not sorted: %+v", f.Fixtures[1].Hard)
	}
	s := string(b1)
	for _, want := range []string{`"+Inf"`, `"-Inf"`, `"NaN"`, `"0x00000000deadbeef"`, `"schema": 1`} {
		if !strings.Contains(s, want) {
			t.Fatalf("encoded file missing %s:\n%s", want, s)
		}
	}
	if !strings.HasSuffix(s, "\n") {
		t.Fatal("encoded file lacks trailing newline")
	}
}

func TestDecodeRoundTrip(t *testing.T) {
	b1, err := Encode(sampleFile())
	if err != nil {
		t.Fatal(err)
	}
	f2, err := Decode(b1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := Encode(f2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("round trip not byte-identical:\n--- first\n%s\n--- second\n%s", b1, b2)
	}
	// The non-finite sentinels must decode back to real non-finite floats.
	alpha := f2.FindFixture("alpha")
	if alpha == nil {
		t.Fatal("alpha fixture lost in round trip")
	}
	got := map[string]float64{}
	for _, v := range alpha.Soft {
		got[v.Name] = float64(v.Value)
	}
	if !math.IsInf(got["weird_inf"], 1) || !math.IsInf(got["weird_neg_inf"], -1) || !math.IsNaN(got["weird_nan"]) {
		t.Fatalf("non-finite values lost: %+v", got)
	}
}

func TestDecodeRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"wrong-schema":      `{"schema": 99, "date": "2026-08-08", "fixtures": []}`,
		"not-json":          `{"schema": 1,`,
		"bad-sentinel":      `{"schema":1,"date":"d","fixtures":[{"name":"a","reps":1,"soft":[{"name":"x","value":"+Infinity"}]}]}`,
		"duplicate-fixture": `{"schema":1,"date":"d","fixtures":[{"name":"a","reps":1},{"name":"a","reps":1}]}`,
		"duplicate-metric":  `{"schema":1,"date":"d","fixtures":[{"name":"a","reps":1,"hard":[{"name":"n","value":1},{"name":"n","value":2}]}]}`,
		"unnamed-fixture":   `{"schema":1,"date":"d","fixtures":[{"reps":1}]}`,
	}
	for name, in := range cases {
		if _, err := Decode([]byte(in)); err == nil {
			t.Errorf("%s: Decode accepted invalid input", name)
		}
	}
}

// FuzzCodecRoundTrip feeds arbitrary bytes to Decode; whatever it accepts
// must re-encode canonically — Encode(Decode(b)) byte-identical to
// Encode(Decode(Encode(Decode(b)))) — and survive a second decode. This is
// the same self-check discipline as the GAPCKP binary codec, with JSON
// string sentinels standing in for raw IEEE bits on the non-finite floats.
func FuzzCodecRoundTrip(f *testing.F) {
	seed, err := Encode(sampleFile())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(`{"schema":1,"date":"d","fixtures":[]}`))
	f.Add([]byte(`{"schema":1,"date":"d","fixtures":[{"name":"x","reps":1,"soft":[{"name":"v","value":"NaN"}]}]}`))
	f.Add([]byte(`{"schema":2}`))
	f.Add([]byte(`not json at all`))
	f.Fuzz(func(t *testing.T, data []byte) {
		f1, err := Decode(data)
		if err != nil {
			return // invalid input is allowed to fail, never to crash
		}
		b1, err := Encode(f1)
		if err != nil {
			t.Fatalf("decoded file failed to encode: %v", err)
		}
		f2, err := Decode(b1)
		if err != nil {
			t.Fatalf("canonical encoding failed to decode: %v\n%s", err, b1)
		}
		b2, err := Encode(f2)
		if err != nil {
			t.Fatalf("second encode failed: %v", err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("canonical form unstable:\n--- first\n%s\n--- second\n%s", b1, b2)
		}
	})
}

func TestFingerprintFormat(t *testing.T) {
	if got := Fingerprint(0); got != "" {
		t.Fatalf("Fingerprint(0) = %q, want empty", got)
	}
	if got := Fingerprint(0xabc); got != "0x0000000000000abc" {
		t.Fatalf("Fingerprint(0xabc) = %q", got)
	}
}
