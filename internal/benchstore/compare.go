package benchstore

import (
	"fmt"
	"io"
	"math"
)

// Verdict classifies one metric's movement between two ledgers.
type Verdict string

const (
	// VerdictImprovement: the metric moved in the good direction (hard:
	// strictly smaller; soft: below the tolerance band).
	VerdictImprovement Verdict = "improvement"
	// VerdictWithin: unchanged (hard) or inside the tolerance band (soft).
	VerdictWithin Verdict = "within-tolerance"
	// VerdictRegression: the metric got worse (hard: any increase; soft:
	// above the tolerance band).
	VerdictRegression Verdict = "regression"
	// VerdictMissing: the baseline has the fixture/metric but the candidate
	// does not, or the fixtures' search fingerprints diverge so their hard
	// counters are not comparable. Always a hard failure: losing coverage
	// (or silently changing the tree shape) must not pass a gate.
	VerdictMissing Verdict = "missing-fixture"
)

// DefaultSoftTolerance is the relative band for soft (wall-clock) metrics:
// ±25% absorbs scheduler noise on shared CI machines while still flagging a
// genuine 2x slowdown.
const DefaultSoftTolerance = 0.25

// DefaultSoftFloor is the absolute change below which a soft metric never
// gates, regardless of relative movement. Micro-fixtures finish in
// microseconds, where a cache hiccup doubles the reading; 0.01 (10ms for
// the seconds-denominated metrics) silences that noise while leaving
// alloc-count metrics, whose values are orders of magnitude larger,
// effectively un-floored.
const DefaultSoftFloor = 0.01

// Options configures a comparison.
type Options struct {
	// SoftTolerance is the relative tolerance for soft metrics;
	// DefaultSoftTolerance when zero or negative.
	SoftTolerance float64
	// SoftFloor is the absolute soft-metric change below which the verdict
	// is always within-tolerance; DefaultSoftFloor when zero, disabled when
	// negative.
	SoftFloor float64
}

// Delta is one metric's verdict. Old/New are widened to float64 for uniform
// reporting; hard counters are exact (they are far below 2^53).
type Delta struct {
	Fixture string
	Metric  string
	Hard    bool
	Old     float64
	New     float64
	Verdict Verdict
	Note    string
}

// Report is the outcome of comparing a candidate ledger against a baseline.
// Deltas are ordered by (fixture, metric class, metric name) — the canonical
// sorted order of the underlying files — so a report is deterministic.
type Report struct {
	BaselineDate  string
	CandidateDate string
	SoftTolerance float64
	SoftFloor     float64
	Deltas        []Delta
	// NewFixtures lists candidate fixtures absent from the baseline:
	// informational, never a failure (nothing to regress against).
	NewFixtures []string
}

// Compare diffs candidate against baseline. Both files are normalized (and
// validated) first; fixtures present only in the baseline, metrics present
// only in the baseline, and fingerprint mismatches all surface as
// VerdictMissing hard failures.
func Compare(baseline, candidate *File, opt Options) (*Report, error) {
	if err := Normalize(baseline); err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	if err := Normalize(candidate); err != nil {
		return nil, fmt.Errorf("candidate: %w", err)
	}
	tol := opt.SoftTolerance
	if tol <= 0 {
		tol = DefaultSoftTolerance
	}
	floor := opt.SoftFloor
	if floor == 0 {
		floor = DefaultSoftFloor
	}
	rep := &Report{BaselineDate: baseline.Date, CandidateDate: candidate.Date, SoftTolerance: tol, SoftFloor: floor}
	for i := range baseline.Fixtures {
		bf := &baseline.Fixtures[i]
		cf := candidate.FindFixture(bf.Name)
		if cf == nil {
			rep.add(Delta{Fixture: bf.Name, Metric: "(fixture)", Hard: true,
				Verdict: VerdictMissing, Note: "fixture missing from candidate"})
			continue
		}
		if bf.Fingerprint != "" && cf.Fingerprint != "" && bf.Fingerprint != cf.Fingerprint {
			rep.add(Delta{Fixture: bf.Name, Metric: "fingerprint", Hard: true,
				Verdict: VerdictMissing,
				Note: fmt.Sprintf("search fingerprint changed (%s -> %s): tree-shaping inputs differ, counters not comparable; bless a new baseline if intentional",
					bf.Fingerprint, cf.Fingerprint)})
			continue
		}
		compareFixture(rep, bf, cf, tol, floor)
	}
	for i := range candidate.Fixtures {
		if baseline.FindFixture(candidate.Fixtures[i].Name) == nil {
			rep.NewFixtures = append(rep.NewFixtures, candidate.Fixtures[i].Name)
		}
	}
	return rep, nil
}

func compareFixture(rep *Report, bf, cf *Fixture, tol, floor float64) {
	// Hard counters: exact. Any increase is a regression — these are pure
	// functions of fixture and seed under the determinism contract.
	candHard := make(map[string]int64, len(cf.Hard))
	for _, c := range cf.Hard {
		candHard[c.Name] = c.Value
	}
	for _, b := range bf.Hard {
		nv, ok := candHard[b.Name]
		if !ok {
			rep.add(Delta{Fixture: bf.Name, Metric: b.Name, Hard: true, Old: float64(b.Value),
				Verdict: VerdictMissing, Note: "hard metric missing from candidate"})
			continue
		}
		rep.add(Delta{Fixture: bf.Name, Metric: b.Name, Hard: true,
			Old: float64(b.Value), New: float64(nv), Verdict: verdictHard(b.Value, nv)})
	}
	// Histogram observation counts are deterministic (one observation per
	// phase execution); sums are wall clock. Split them accordingly.
	candHist := make(map[string]Histogram, len(cf.Histograms))
	for _, h := range cf.Histograms {
		candHist[h.Name] = h
	}
	for _, b := range bf.Histograms {
		ch, ok := candHist[b.Name]
		if !ok {
			rep.add(Delta{Fixture: bf.Name, Metric: b.Name + "_count", Hard: true, Old: float64(b.Count),
				Verdict: VerdictMissing, Note: "histogram missing from candidate"})
			continue
		}
		rep.add(Delta{Fixture: bf.Name, Metric: b.Name + "_count", Hard: true,
			Old: float64(b.Count), New: float64(ch.Count),
			Verdict: verdictHard(int64(b.Count), int64(ch.Count))})
		rep.add(Delta{Fixture: bf.Name, Metric: b.Name + "_sum", Hard: false,
			Old: float64(b.Sum), New: float64(ch.Sum),
			Verdict: verdictSoft(float64(b.Sum), float64(ch.Sum), tol, floor)})
	}
	// Soft metrics: relative tolerance band.
	candSoft := make(map[string]float64, len(cf.Soft))
	for _, v := range cf.Soft {
		candSoft[v.Name] = float64(v.Value)
	}
	for _, b := range bf.Soft {
		nv, ok := candSoft[b.Name]
		if !ok {
			rep.add(Delta{Fixture: bf.Name, Metric: b.Name, Hard: false, Old: float64(b.Value),
				Verdict: VerdictMissing, Note: "soft metric missing from candidate"})
			continue
		}
		rep.add(Delta{Fixture: bf.Name, Metric: b.Name, Hard: false,
			Old: float64(b.Value), New: nv, Verdict: verdictSoft(float64(b.Value), nv, tol, floor)})
	}
}

func (r *Report) add(d Delta) { r.Deltas = append(r.Deltas, d) }

// verdictHard gates a deterministic counter: smaller is better, equality is
// the expected no-change outcome.
func verdictHard(old, new int64) Verdict {
	switch {
	case new > old:
		return VerdictRegression
	case new < old:
		return VerdictImprovement
	default:
		return VerdictWithin
	}
}

// verdictSoft gates a wall-clock metric through a relative tolerance band
// with an absolute floor: changes smaller than floor never gate (they are
// micro-fixture noise, not signal). A non-positive or non-finite baseline
// gives no usable scale, so the verdict degrades to within-tolerance rather
// than guessing.
func verdictSoft(old, new, tol, floor float64) Verdict {
	if old <= 0 || math.IsNaN(old) || math.IsInf(old, 0) || math.IsNaN(new) || math.IsInf(new, 0) {
		return VerdictWithin
	}
	if math.Abs(new-old) <= floor {
		return VerdictWithin
	}
	ratio := new / old
	switch {
	case ratio > 1+tol:
		return VerdictRegression
	case ratio < 1-tol:
		return VerdictImprovement
	default:
		return VerdictWithin
	}
}

// HardFailures returns every delta that must fail a gate: hard regressions
// and anything missing (fixture, metric, or comparable fingerprint).
func (r *Report) HardFailures() []Delta {
	var out []Delta
	for _, d := range r.Deltas {
		if d.Verdict == VerdictMissing || (d.Hard && d.Verdict == VerdictRegression) {
			out = append(out, d)
		}
	}
	return out
}

// SoftRegressions returns soft-metric deltas outside the tolerance band.
func (r *Report) SoftRegressions() []Delta {
	var out []Delta
	for _, d := range r.Deltas {
		if !d.Hard && d.Verdict == VerdictRegression {
			out = append(out, d)
		}
	}
	return out
}

// pct renders the relative change as a signed percentage, or "n/a" when the
// baseline gives no scale.
func pct(old, new float64) string {
	if old <= 0 || math.IsNaN(old) || math.IsInf(old, 0) {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", 100*(new-old)/old)
}

// num renders a metric value: integers exactly, floats in shortest form.
func num(v float64) string {
	if v-math.Trunc(v) == 0 && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WriteText renders the report for humans: per fixture, every delta whose
// verdict is not within-tolerance (with a within count), then a summary
// line. Output is deterministic — the golden test in compare_test.go pins
// it.
func (r *Report) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "benchstore: candidate %s vs baseline %s (soft tolerance ±%.0f%%)\n",
		r.CandidateDate, r.BaselineDate, 100*r.SoftTolerance); err != nil {
		return err
	}
	var hardReg, softReg, improved, missing, within int
	fixture := ""
	withinFixture := 0
	flushWithin := func() error {
		if withinFixture > 0 {
			if _, err := fmt.Fprintf(w, "  (%d metrics within tolerance)\n", withinFixture); err != nil {
				return err
			}
		}
		withinFixture = 0
		return nil
	}
	for _, d := range r.Deltas {
		if d.Fixture != fixture {
			if err := flushWithin(); err != nil {
				return err
			}
			fixture = d.Fixture
			if _, err := fmt.Fprintf(w, "\nfixture %s\n", fixture); err != nil {
				return err
			}
		}
		kind := "soft"
		if d.Hard {
			kind = "hard"
		}
		switch d.Verdict {
		case VerdictWithin:
			within++
			withinFixture++
			continue
		case VerdictImprovement:
			improved++
			if _, err := fmt.Fprintf(w, "  improvement %s %-28s %12s -> %-12s %s\n",
				kind, d.Metric, num(d.Old), num(d.New), pct(d.Old, d.New)); err != nil {
				return err
			}
		case VerdictRegression:
			if d.Hard {
				hardReg++
			} else {
				softReg++
			}
			if _, err := fmt.Fprintf(w, "  REGRESSION  %s %-28s %12s -> %-12s %s\n",
				kind, d.Metric, num(d.Old), num(d.New), pct(d.Old, d.New)); err != nil {
				return err
			}
		case VerdictMissing:
			missing++
			if _, err := fmt.Fprintf(w, "  MISSING     %s %-28s %s\n", kind, d.Metric, d.Note); err != nil {
				return err
			}
		}
	}
	if err := flushWithin(); err != nil {
		return err
	}
	for _, name := range r.NewFixtures {
		if _, err := fmt.Fprintf(w, "\nnew fixture %s (no baseline; informational)\n", name); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "\nsummary: %d hard regressions, %d missing, %d soft regressions, %d improvements, %d within tolerance\n",
		hardReg, missing, softReg, improved, within)
	return err
}
