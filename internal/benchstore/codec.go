package benchstore

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
)

// Encode renders f in the canonical BENCH form: schema-checked, fixtures and
// metrics sorted by name, duplicate names rejected, two-space indentation,
// trailing newline. Encoding equal states yields byte-identical output. The
// input is normalized in place (slices are sorted).
func Encode(f *File) ([]byte, error) {
	if err := Normalize(f); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(f); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decode parses a BENCH file, rejecting unknown schema versions and
// duplicate fixture/metric names, and normalizes the result so that
// Encode(Decode(b)) is canonical regardless of the input's ordering.
func Decode(b []byte) (*File, error) {
	var f File
	dec := json.NewDecoder(bytes.NewReader(b))
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("benchstore: decode: %w", err)
	}
	if err := Normalize(&f); err != nil {
		return nil, err
	}
	return &f, nil
}

// Normalize sorts f's fixtures and per-fixture metric slices by name and
// validates the file: the schema version must be current and names must be
// unique (a duplicate would make comparison verdicts ambiguous).
func Normalize(f *File) error {
	if f.Schema != SchemaVersion {
		return fmt.Errorf("benchstore: schema %d not supported (want %d)", f.Schema, SchemaVersion)
	}
	sort.Slice(f.Fixtures, func(i, j int) bool { return f.Fixtures[i].Name < f.Fixtures[j].Name })
	for i := range f.Fixtures {
		fx := &f.Fixtures[i]
		if fx.Name == "" {
			return fmt.Errorf("benchstore: fixture %d has no name", i)
		}
		if i > 0 && f.Fixtures[i-1].Name == fx.Name {
			return fmt.Errorf("benchstore: duplicate fixture %q", fx.Name)
		}
		sort.Slice(fx.Hard, func(a, b int) bool { return fx.Hard[a].Name < fx.Hard[b].Name })
		sort.Slice(fx.Soft, func(a, b int) bool { return fx.Soft[a].Name < fx.Soft[b].Name })
		sort.Slice(fx.Histograms, func(a, b int) bool { return fx.Histograms[a].Name < fx.Histograms[b].Name })
		if name, ok := dupCounter(fx.Hard); ok {
			return fmt.Errorf("benchstore: fixture %q: duplicate hard metric %q", fx.Name, name)
		}
		if name, ok := dupValue(fx.Soft); ok {
			return fmt.Errorf("benchstore: fixture %q: duplicate soft metric %q", fx.Name, name)
		}
		if name, ok := dupHistogram(fx.Histograms); ok {
			return fmt.Errorf("benchstore: fixture %q: duplicate histogram %q", fx.Name, name)
		}
	}
	return nil
}

// The three dup helpers scan sorted slices for adjacent equal names.
func dupCounter(s []Counter) (string, bool) {
	for i := 1; i < len(s); i++ {
		if s[i-1].Name == s[i].Name {
			return s[i].Name, true
		}
	}
	return "", false
}

func dupValue(s []Value) (string, bool) {
	for i := 1; i < len(s); i++ {
		if s[i-1].Name == s[i].Name {
			return s[i].Name, true
		}
	}
	return "", false
}

func dupHistogram(s []Histogram) (string, bool) {
	for i := 1; i < len(s); i++ {
		if s[i-1].Name == s[i].Name {
			return s[i].Name, true
		}
	}
	return "", false
}
