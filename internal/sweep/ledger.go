package sweep

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/checkpoint"
	"repro/internal/serve"
)

// Ledger wire format:
//
//	GAPSWEEP1 <16-hex fnv64a of payload>\n
//	<payload: JSON array of CellRecord, sorted by key>
//
// The header line makes a torn or bit-flipped ledger fail loudly
// (ErrLedgerCorrupt) instead of silently resuming a wrong sweep — the same
// contract the GAPCKP and benchstore codecs enforce for their files. Writes
// go through checkpoint.FS (temp + fsync + rename), so a crash mid-write
// leaves either the old complete ledger or the new complete ledger, never a
// prefix.
const ledgerMagic = "GAPSWEEP1"

// ErrLedgerCorrupt is wrapped by every decode failure caused by malformed
// bytes (bad magic, checksum mismatch, truncated payload, invalid JSON).
var ErrLedgerCorrupt = errors.New("sweep: corrupt ledger")

// Cell statuses recorded in the ledger. done and truncated are terminal and
// skipped on resume; retrying and exhausted are re-attempted by the next
// run (a fresh invocation gets a fresh retry budget); failed is terminal
// because its cause is deterministic.
const (
	StatusRetrying  = "retrying"
	StatusDone      = "done"
	StatusTruncated = "truncated"
	StatusExhausted = "exhausted"
	StatusFailed    = "failed"
)

// CellRecord is one grid cell's durable state.
type CellRecord struct {
	Key      string              `json:"key"`  // cellKey — the ledger's primary key
	Name     string              `json:"name"` // human-readable axis tuple
	Index    int                 `json:"index"`
	Spec     json.RawMessage     `json:"spec"`
	Status   string              `json:"status"`
	Attempts int                 `json:"attempts,omitempty"`
	Endpoint string              `json:"endpoint,omitempty"` // endpoint that answered
	Error    string              `json:"error,omitempty"`
	Result   *serve.StoredResult `json:"result,omitempty"`
}

// EncodeLedger serializes records in canonical form: sorted by key, one
// checksummed header line, then the JSON payload.
func EncodeLedger(recs []*CellRecord) ([]byte, error) {
	sorted := append([]*CellRecord(nil), recs...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	payload, err := json.MarshalIndent(sorted, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("sweep: encode ledger: %w", err)
	}
	h := fnv.New64a()
	h.Write(payload)
	header := fmt.Sprintf("%s %016x\n", ledgerMagic, h.Sum64())
	return append([]byte(header), payload...), nil
}

// DecodeLedger parses and verifies a ledger file's bytes.
func DecodeLedger(data []byte) ([]*CellRecord, error) {
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, fmt.Errorf("%w: missing header line", ErrLedgerCorrupt)
	}
	header, payload := string(data[:nl]), data[nl+1:]
	var gotSum string
	if _, err := fmt.Sscanf(header, ledgerMagic+" %16s", &gotSum); err != nil || len(header) != len(ledgerMagic)+17 {
		return nil, fmt.Errorf("%w: bad header %q", ErrLedgerCorrupt, header)
	}
	h := fnv.New64a()
	h.Write(payload)
	if want := fmt.Sprintf("%016x", h.Sum64()); gotSum != want {
		return nil, fmt.Errorf("%w: checksum %s, want %s", ErrLedgerCorrupt, gotSum, want)
	}
	var recs []*CellRecord
	if err := json.Unmarshal(payload, &recs); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrLedgerCorrupt, err)
	}
	for _, r := range recs {
		if r == nil || r.Key == "" {
			return nil, fmt.Errorf("%w: record missing key", ErrLedgerCorrupt)
		}
	}
	return recs, nil
}

// Ledger is the durable sweep state: an in-memory map mirrored to one
// checksummed file on every update.
type Ledger struct {
	mu    sync.Mutex
	path  string
	fs    checkpoint.FS
	cells map[string]*CellRecord
}

// OpenLedger loads the ledger at path, or starts empty if the file does not
// exist. A corrupt ledger is an error, not an empty ledger: silently
// restarting would resubmit the whole grid, exactly the failure mode the
// ledger exists to prevent. fs may be nil (the real filesystem).
func OpenLedger(path string, fs checkpoint.FS) (*Ledger, error) {
	if fs == nil {
		fs = checkpoint.OSFS()
	}
	l := &Ledger{path: path, fs: fs, cells: make(map[string]*CellRecord)}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return l, nil
	}
	if err != nil {
		return nil, fmt.Errorf("sweep: open ledger: %w", err)
	}
	recs, err := DecodeLedger(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	for _, r := range recs {
		l.cells[r.Key] = r
	}
	return l, nil
}

// Get returns the record for a cell key, or nil.
func (l *Ledger) Get(key string) *CellRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.cells[key]
}

// Len reports the number of recorded cells.
func (l *Ledger) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.cells)
}

// Put upserts a record and rewrites the ledger file atomically. A failed
// flush rolls the in-memory update back so memory never claims durability
// the disk does not have.
func (l *Ledger) Put(rec *CellRecord) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	prev, had := l.cells[rec.Key]
	l.cells[rec.Key] = rec
	if err := l.flushLocked(); err != nil {
		if had {
			l.cells[rec.Key] = prev
		} else {
			delete(l.cells, rec.Key)
		}
		return err
	}
	return nil
}

func (l *Ledger) flushLocked() error {
	keys := make([]string, 0, len(l.cells))
	for k := range l.cells {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	recs := make([]*CellRecord, 0, len(keys))
	for _, k := range keys {
		recs = append(recs, l.cells[k])
	}
	data, err := EncodeLedger(recs)
	if err != nil {
		return err
	}
	tmp, err := l.fs.WriteTemp(filepath.Dir(l.path), ".sweep-*", data)
	if err != nil {
		return fmt.Errorf("sweep: write ledger: %w", err)
	}
	if err := l.fs.Rename(tmp, l.path); err != nil {
		l.fs.Remove(tmp)
		return fmt.Errorf("sweep: commit ledger: %w", err)
	}
	return nil
}
