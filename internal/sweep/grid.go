// Package sweep is the fault-tolerant sweep client for gapserved: it fans a
// threshold × partitions × seed grid out over one or more daemon endpoints
// and survives every failure mode internal/faultinject can throw at the
// wire — dropped connections, injected 503s, latency spikes, and daemons
// SIGKILLed mid-solve. Three mechanisms carry the robustness story:
//
//   - a deterministic resilience policy (Policy): seeded exponential backoff
//     whose jitter comes from a pre-split per-cell RNG, so a retry schedule
//     is a pure function of (master seed, cell key) and never of wall-clock
//     or scheduling order;
//   - a durable ledger (Ledger): every cell's terminal state is committed to
//     one checksummed file via atomic temp+rename before the sweep moves on,
//     so a SIGKILLed sweep resumes without resubmitting completed cells;
//   - graceful degradation (Runner): a cancelled sweep reports the partial
//     grid with per-cell status instead of discarding completed work.
//
// Redundant solver work is impossible by construction rather than by luck:
// the daemon's cache key + singleflight dedupe resubmissions, and its
// checkpoints resume interrupted solves, so the client's retry loop can be
// aggressive without inflating serve_solver_runs_total.
package sweep

import (
	"encoding/json"
	"fmt"
	"hash/fnv"

	"repro/internal/serve"
)

// Grid is the sweep's cell space: a base job spec crossed with explicit
// threshold, partitions, and seed axes. An empty axis means "inherit the
// base value" (a single implicit point), so a DP sweep can leave Partitions
// empty and a POP sweep can leave Thresholds empty without enumerating
// meaningless variants.
type Grid struct {
	Base       serve.Spec
	Thresholds []float64
	Partitions []int
	Seeds      []int64
}

// Cell is one point of the grid: a fully-specified job spec plus the
// client-side identity the ledger is keyed by.
type Cell struct {
	// Index is the cell's position in enumeration order; reports and CSV
	// rows preserve it so output order is independent of completion order.
	Index int
	// Name is the human-readable axis tuple, e.g. "thr=5/parts=2/seed=3".
	Name string
	// Key is the 16-hex fnv64a of the cell's spec JSON. It is a client-side
	// identity (the daemon's cache key needs the model fingerprint, which
	// only the daemon can compute); two runs of the same grid derive the
	// same keys because Spec marshals in struct-field order.
	Key string
	// Spec is the job submitted for this cell.
	Spec serve.Spec
}

// Cells enumerates the grid in deterministic nested order: thresholds
// outermost, then partitions, then seeds.
func (g *Grid) Cells() []*Cell {
	thresholds := g.Thresholds
	if len(thresholds) == 0 {
		thresholds = []float64{g.Base.Threshold}
	}
	partitions := g.Partitions
	if len(partitions) == 0 {
		partitions = []int{g.Base.Partitions}
	}
	seeds := g.Seeds
	if len(seeds) == 0 {
		seeds = []int64{g.Base.Seed}
	}
	cells := make([]*Cell, 0, len(thresholds)*len(partitions)*len(seeds))
	for _, t := range thresholds {
		for _, p := range partitions {
			for _, s := range seeds {
				spec := g.Base
				spec.Threshold = t
				spec.Partitions = p
				spec.Seed = s
				cells = append(cells, &Cell{
					Index: len(cells),
					Name:  fmt.Sprintf("thr=%g/parts=%d/seed=%d", t, p, s),
					Key:   cellKey(&spec),
					Spec:  spec,
				})
			}
		}
	}
	return cells
}

// cellKey hashes the cell's canonical spec JSON. Marshal of a plain struct
// is deterministic (fields in declaration order), so the key is stable
// across processes — the property ledger resume depends on.
func cellKey(spec *serve.Spec) string {
	b, err := json.Marshal(spec)
	if err != nil {
		// A Spec is plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("sweep: marshal spec: %v", err))
	}
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("%016x", h.Sum64())
}
