package sweep

import (
	"testing"
	"time"

	"repro/internal/serve"
)

func TestGridEnumeratesDeterministically(t *testing.T) {
	g := &Grid{
		Base:       serve.Spec{Topology: "figure1", Heuristic: "dp", Pairs: -1},
		Thresholds: []float64{2, 5},
		Seeds:      []int64{1, 2, 3},
	}
	cells := g.Cells()
	if len(cells) != 6 {
		t.Fatalf("enumerated %d cells, want 6", len(cells))
	}
	if cells[0].Name != "thr=2/parts=0/seed=1" || cells[5].Name != "thr=5/parts=0/seed=3" {
		t.Fatalf("enumeration order wrong: first %q last %q", cells[0].Name, cells[5].Name)
	}
	for i, c := range cells {
		if c.Index != i {
			t.Fatalf("cell %d has index %d", i, c.Index)
		}
	}
	// Keys are stable across enumerations and unique across cells.
	again := g.Cells()
	seen := map[string]bool{}
	for i := range cells {
		if cells[i].Key != again[i].Key {
			t.Fatalf("cell %d key unstable: %s vs %s", i, cells[i].Key, again[i].Key)
		}
		if seen[cells[i].Key] {
			t.Fatalf("cell %d key %s duplicated", i, cells[i].Key)
		}
		seen[cells[i].Key] = true
	}
}

func TestGridEmptyAxesInheritBase(t *testing.T) {
	g := &Grid{Base: serve.Spec{Topology: "b4", Heuristic: "pop", Threshold: 7, Partitions: 4, Seed: 9}}
	cells := g.Cells()
	if len(cells) != 1 {
		t.Fatalf("empty axes enumerated %d cells, want 1", len(cells))
	}
	c := cells[0]
	if c.Spec.Threshold != 7 || c.Spec.Partitions != 4 || c.Spec.Seed != 9 {
		t.Fatalf("base values not inherited: %+v", c.Spec)
	}
}

func TestBackoffIsDeterministicPerCell(t *testing.T) {
	p := Policy{MaxAttempts: 8, BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second}
	var first []time.Duration
	for run := 0; run < 2; run++ {
		rng := CellRNG(42, "00000000000000aa")
		var seq []time.Duration
		for attempt := 1; attempt <= 6; attempt++ {
			seq = append(seq, p.Backoff(attempt, rng))
		}
		if run == 0 {
			first = seq
			continue
		}
		for i := range seq {
			if seq[i] != first[i] {
				t.Fatalf("attempt %d: %s vs %s across runs", i+1, seq[i], first[i])
			}
		}
	}
	// Envelope: attempt k is jitter*min(cap, base<<(k-1)) with jitter in [0.5, 1.5).
	rng := CellRNG(42, "00000000000000aa")
	for attempt := 1; attempt <= 6; attempt++ {
		base := 100 * time.Millisecond << (attempt - 1)
		if base > time.Second {
			base = time.Second
		}
		got := p.Backoff(attempt, rng)
		if got < base/2 || got >= base*3/2 {
			t.Fatalf("attempt %d backoff %s outside [%s, %s)", attempt, got, base/2, base*3/2)
		}
	}
	// Different cells draw different jitter sequences.
	a := p.Backoff(1, CellRNG(42, "00000000000000aa"))
	b := p.Backoff(1, CellRNG(42, "00000000000000bb"))
	if a == b {
		t.Log("warning: two cells drew identical first jitter (possible but unlikely)")
	}
}

func TestDelayHonorsRetryAfter(t *testing.T) {
	p := Policy{MaxAttempts: 4, BaseDelay: 10 * time.Millisecond, MaxDelay: 50 * time.Millisecond}
	rng := CellRNG(1, "cell")
	if d := p.Delay(1, 3*time.Second, rng); d != 3*time.Second {
		t.Fatalf("Retry-After ignored: delay %s, want 3s", d)
	}
	if d := p.Delay(1, 0, rng); d > 50*time.Millisecond {
		t.Fatalf("no hint should fall back to backoff, got %s", d)
	}
}
