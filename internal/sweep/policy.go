package sweep

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"time"
)

// Policy is the deterministic resilience policy: how many times a cell may
// be attempted, how long to wait between attempts, and how long any single
// HTTP exchange may take. The zero value is unusable; call Default or fill
// every field.
type Policy struct {
	// MaxAttempts bounds the retry budget per cell; once spent the cell is
	// marked exhausted with a typed terminal error (*ExhaustedError).
	MaxAttempts int
	// BaseDelay is the first backoff step; attempt k waits
	// jitter * min(MaxDelay, BaseDelay<<(k-1)).
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth.
	MaxDelay time.Duration
	// Timeout bounds each HTTP request (submit or poll), so a proxy that
	// swallows a request delays the sweep by one timeout, not forever.
	Timeout time.Duration
	// PollInterval is the job-status polling cadence while a cell solves.
	PollInterval time.Duration
}

// DefaultPolicy mirrors the cmd/gapsweep flag defaults.
func DefaultPolicy() Policy {
	return Policy{
		MaxAttempts:  8,
		BaseDelay:    100 * time.Millisecond,
		MaxDelay:     5 * time.Second,
		Timeout:      10 * time.Second,
		PollInterval: 50 * time.Millisecond,
	}
}

// Backoff returns the delay before retry number attempt (1-based count of
// failures so far), drawing one jitter factor in [0.5, 1.5) from rng. The
// rng must be the cell's pre-split RNG (see CellRNG): each cell consumes
// its own sequence, so the schedule is independent of how the scheduler
// interleaves cells and of wall-clock time — the property gapvet's detrand
// analyzer exists to protect.
func (p Policy) Backoff(attempt int, rng *rand.Rand) time.Duration {
	d := p.BaseDelay
	for i := 1; i < attempt && d < p.MaxDelay; i++ {
		d *= 2
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	jitter := 0.5 + rng.Float64()
	return time.Duration(float64(d) * jitter)
}

// Delay picks the wait before the next attempt: a server-supplied
// Retry-After hint wins outright (the daemon derives it from queue depth,
// which the client cannot estimate), otherwise seeded exponential backoff.
func (p Policy) Delay(attempt int, retryAfter time.Duration, rng *rand.Rand) time.Duration {
	if retryAfter > 0 {
		return retryAfter
	}
	return p.Backoff(attempt, rng)
}

// CellRNG derives the per-cell jitter RNG by splitting the master seed with
// the cell key. Pre-splitting (rather than sharing one RNG across workers)
// keeps every cell's draw sequence deterministic under concurrency.
func CellRNG(masterSeed int64, cellKey string) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s", masterSeed, cellKey)
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// ExhaustedError is the typed terminal error for a cell whose retry budget
// ran out. It wraps the last attempt's error so errors.Is/As reach the
// underlying cause.
type ExhaustedError struct {
	Cell     string // cell name
	Attempts int
	Last     error
}

func (e *ExhaustedError) Error() string {
	return fmt.Sprintf("sweep: cell %s exhausted after %d attempts: %v", e.Cell, e.Attempts, e.Last)
}

func (e *ExhaustedError) Unwrap() error { return e.Last }

// FatalError is the typed terminal error for a cell the daemon rejected in
// a way no retry can fix (a 400 bad spec, most commonly). Retrying would
// burn the budget on a deterministic answer.
type FatalError struct {
	Cell string
	Err  error
}

func (e *FatalError) Error() string {
	return fmt.Sprintf("sweep: cell %s failed terminally: %v", e.Cell, e.Err)
}

func (e *FatalError) Unwrap() error { return e.Err }

// ErrInterrupted marks a sweep cut short by context cancellation (SIGINT);
// the report built alongside it still carries every completed cell.
var ErrInterrupted = errors.New("sweep: interrupted")
