package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// stubDaemon fakes just enough of the gapserved job API to script failure
// sequences: answer[i] is what submit number i+1 gets; past the end every
// submit is answered 200 with a done view (the daemon cache-hit path).
type stubDaemon struct {
	mu      sync.Mutex
	submits int
	answers []stubAnswer
}

type stubAnswer struct {
	code       int
	retryAfter string
}

func doneView(spec []byte) serve.JobView {
	return serve.JobView{
		ID: "job-1", State: "done", Key: "00000000deadbeef", Spec: spec,
		Result: &serve.StoredResult{Key: "00000000deadbeef", Status: "optimal", Gap: "10", Normalized: "0.2", Nodes: 3},
	}
}

func (d *stubDaemon) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost || r.URL.Path != "/v1/jobs" {
		http.NotFound(w, r)
		return
	}
	body, _ := json.Marshal(map[string]string{"topology": "figure1"})
	d.mu.Lock()
	n := d.submits
	d.submits++
	d.mu.Unlock()
	if n < len(d.answers) {
		a := d.answers[n]
		if a.retryAfter != "" {
			w.Header().Set("Retry-After", a.retryAfter)
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(a.code)
		json.NewEncoder(w).Encode(map[string]string{"error": "scripted failure"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	json.NewEncoder(w).Encode(doneView(body))
}

func (d *stubDaemon) submitCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.submits
}

func testPolicy() Policy {
	return Policy{
		MaxAttempts:  3,
		BaseDelay:    time.Millisecond,
		MaxDelay:     5 * time.Millisecond,
		Timeout:      5 * time.Second,
		PollInterval: 5 * time.Millisecond,
	}
}

func oneCellGrid() *Grid {
	return &Grid{Base: serve.Spec{Topology: "figure1", Heuristic: "dp"}, Thresholds: []float64{5}, Seeds: []int64{1}}
}

func newTestRunner(t *testing.T, url string, grid *Grid, policy Policy) (*Runner, *Ledger) {
	t.Helper()
	led, err := OpenLedger(filepath.Join(t.TempDir(), "sweep.ledger"), nil)
	if err != nil {
		t.Fatalf("open ledger: %v", err)
	}
	return &Runner{
		Client: NewClient([]string{url}, policy),
		Ledger: led,
		Grid:   grid,
		Seed:   42,
		Logf:   t.Logf,
	}, led
}

// TestSweepHonorsRetryAfter is satellite (a)'s client half: a 503 carrying
// Retry-After: 1 must delay the retry by the server's hint, not by the
// millisecond-scale backoff the policy would otherwise draw.
func TestSweepHonorsRetryAfter(t *testing.T) {
	stub := &stubDaemon{answers: []stubAnswer{{code: http.StatusServiceUnavailable, retryAfter: "1"}}}
	ts := httptest.NewServer(stub)
	defer ts.Close()
	r, _ := newTestRunner(t, ts.URL, oneCellGrid(), testPolicy())
	start := time.Now()
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep.Done != 1 || rep.Cells[0].Attempts != 2 {
		t.Fatalf("report: %s", rep.Summary())
	}
	if elapsed := time.Since(start); elapsed < time.Second {
		t.Fatalf("sweep finished in %s; the 1s Retry-After hint was not honored", elapsed)
	}
}

func TestSweepFatalErrorDoesNotRetry(t *testing.T) {
	stub := &stubDaemon{answers: []stubAnswer{{code: http.StatusBadRequest}, {code: http.StatusBadRequest}}}
	ts := httptest.NewServer(stub)
	defer ts.Close()
	r, led := newTestRunner(t, ts.URL, oneCellGrid(), testPolicy())
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep.Failed != 1 || rep.Done != 0 {
		t.Fatalf("report: %s", rep.Summary())
	}
	if stub.submitCount() != 1 {
		t.Fatalf("a 400 was retried: %d submits", stub.submitCount())
	}
	rec := rep.Cells[0]
	if rec.Status != StatusFailed || !strings.Contains(rec.Error, "400") {
		t.Fatalf("cell record: %+v", rec)
	}
	if led.Get(rec.Key).Status != StatusFailed {
		t.Fatal("terminal failure not in the ledger")
	}
}

func TestSweepExhaustsRetryBudget(t *testing.T) {
	stub := &stubDaemon{answers: []stubAnswer{
		{code: http.StatusServiceUnavailable},
		{code: http.StatusServiceUnavailable},
		{code: http.StatusServiceUnavailable},
		{code: http.StatusServiceUnavailable},
	}}
	ts := httptest.NewServer(stub)
	defer ts.Close()
	reg := obs.NewRegistry()
	r, _ := newTestRunner(t, ts.URL, oneCellGrid(), testPolicy())
	r.Registry = reg
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep.Exhausted != 1 {
		t.Fatalf("report: %s", rep.Summary())
	}
	if stub.submitCount() != 3 {
		t.Fatalf("retry budget of 3 spent %d submits", stub.submitCount())
	}
	rec := rep.Cells[0]
	if rec.Status != StatusExhausted || rec.Attempts != 3 || !strings.Contains(rec.Error, "exhausted") {
		t.Fatalf("cell record: %+v", rec)
	}
	snap := reg.Snapshot()
	if snap["sweep_retries_total"] != 2 || snap["sweep_cells_exhausted_total"] != 1 {
		t.Fatalf("metrics: %v", snap)
	}
}

// TestSweepResumesFromLedger is the tentpole's resume property in
// miniature: a second run over the same grid and ledger never resubmits a
// terminal cell.
func TestSweepResumesFromLedger(t *testing.T) {
	grid := &Grid{
		Base:       serve.Spec{Topology: "figure1", Heuristic: "dp"},
		Thresholds: []float64{2, 5},
		Seeds:      []int64{1, 2},
	}
	stub := &stubDaemon{}
	ts := httptest.NewServer(stub)
	defer ts.Close()
	path := filepath.Join(t.TempDir(), "sweep.ledger")
	led, err := OpenLedger(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Client: NewClient([]string{ts.URL}, testPolicy()), Ledger: led, Grid: grid, Seed: 1}
	rep, err := r.Run(context.Background())
	if err != nil || rep.Done != 4 {
		t.Fatalf("first run: %v, %s", err, rep.Summary())
	}
	if stub.submitCount() != 4 {
		t.Fatalf("first run submitted %d times, want 4", stub.submitCount())
	}

	led2, err := OpenLedger(path, nil)
	if err != nil {
		t.Fatalf("reopen ledger: %v", err)
	}
	stub2 := &stubDaemon{}
	ts2 := httptest.NewServer(stub2)
	defer ts2.Close()
	r2 := &Runner{Client: NewClient([]string{ts2.URL}, testPolicy()), Ledger: led2, Grid: grid, Seed: 1}
	rep2, err := r2.Run(context.Background())
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if rep2.Resumed != 4 || rep2.Done != 4 || stub2.submitCount() != 0 {
		t.Fatalf("resume resubmitted work: %s (%d submits)", rep2.Summary(), stub2.submitCount())
	}
}

// TestSweepInterruptReportsPartialGrid: cancelling mid-sweep degrades to a
// partial report (ErrInterrupted) instead of discarding completed cells.
func TestSweepInterruptReportsPartialGrid(t *testing.T) {
	release := make(chan struct{})
	mux := http.NewServeMux()
	first := make(chan struct{}, 1)
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		select {
		case first <- struct{}{}:
			// First cell answers instantly.
			json.NewEncoder(w).Encode(doneView([]byte(`{}`)))
		default:
			// Every later cell hangs until the test ends.
			<-release
			w.WriteHeader(http.StatusServiceUnavailable)
		}
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	defer close(release)

	grid := &Grid{Base: serve.Spec{Topology: "figure1", Heuristic: "dp"}, Thresholds: []float64{1, 2, 3}, Seeds: []int64{1}}
	r, led := newTestRunner(t, ts.URL, grid, testPolicy())
	r.Workers = 1
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		// Cancel once the first cell has been recorded done.
		for led.Get(grid.Cells()[0].Key) == nil || led.Get(grid.Cells()[0].Key).Status != StatusDone {
			time.Sleep(2 * time.Millisecond)
		}
		cancel()
	}()
	rep, err := r.Run(ctx)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("run error = %v, want ErrInterrupted", err)
	}
	if !rep.Interrupted || rep.Done != 1 || rep.Done+rep.Pending != rep.Total {
		t.Fatalf("partial report wrong: %s", rep.Summary())
	}
	var csv strings.Builder
	if err := rep.WriteCSV(&csv); err != nil {
		t.Fatalf("csv: %v", err)
	}
	if lines := strings.Count(csv.String(), "\n"); lines != rep.Total+1 {
		t.Fatalf("partial CSV has %d lines, want %d", lines, rep.Total+1)
	}
}
