package sweep

import (
	"bytes"
	"encoding/json"
	"sort"
	"testing"
)

// FuzzDecodeLedger holds the codec to the same contract as the GAPCKP
// fuzzer: arbitrary bytes never panic, and anything that decodes must
// re-encode canonically — encode(decode(x)) decodes to the same records.
func FuzzDecodeLedger(f *testing.F) {
	seed, err := EncodeLedger(sampleRecords())
	if err != nil {
		f.Fatalf("encode seed: %v", err)
	}
	f.Add(seed)
	f.Add([]byte(""))
	f.Add([]byte("GAPSWEEP1 0000000000000000\n[]"))
	f.Add([]byte("GAPSWEEP1 deadbeefdeadbeef\nnull"))
	f.Add(bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := DecodeLedger(data)
		if err != nil {
			return
		}
		out, err := EncodeLedger(recs)
		if err != nil {
			t.Fatalf("re-encode of valid ledger failed: %v", err)
		}
		again, err := DecodeLedger(out)
		if err != nil {
			t.Fatalf("canonical re-encode does not decode: %v", err)
		}
		// Encode sorts by key, so compare in canonical order.
		sort.SliceStable(recs, func(i, j int) bool { return recs[i].Key < recs[j].Key })
		a, _ := json.Marshal(recs)
		b, _ := json.Marshal(again)
		if !bytes.Equal(a, b) {
			t.Fatalf("records changed across canonical round trip:\n%s\nvs\n%s", a, b)
		}
	})
}
