package sweep

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// Runner drives one sweep: it enumerates the grid, skips cells the ledger
// already holds terminal answers for, and fans the rest over the client's
// endpoints with per-cell retry loops. Workers communicate exclusively over
// channels — cells in, record snapshots out — and a single collector owns
// the ledger, so no two goroutines ever share a mutable record.
type Runner struct {
	Client *Client
	Ledger *Ledger
	Grid   *Grid
	// Seed is the master jitter seed, pre-split per cell (see CellRNG).
	Seed int64
	// Workers is the client-side concurrency (default 1).
	Workers int
	// Registry receives sweep_* metrics when non-nil.
	Registry *obs.Registry
	// Logf receives progress lines when non-nil.
	Logf func(format string, args ...any)
}

type metrics struct {
	cells, resumed, retries            *obs.Counter
	done, truncated, exhausted, failed *obs.Counter
	inflight                           *obs.Gauge
}

func newMetrics(r *obs.Registry) *metrics {
	if r == nil {
		r = obs.NewRegistry()
	}
	return &metrics{
		cells:     r.Counter("sweep_cells_total"),
		resumed:   r.Counter("sweep_cells_resumed_total"),
		retries:   r.Counter("sweep_retries_total"),
		done:      r.Counter("sweep_cells_done_total"),
		truncated: r.Counter("sweep_cells_truncated_total"),
		exhausted: r.Counter("sweep_cells_exhausted_total"),
		failed:    r.Counter("sweep_cells_failed_total"),
		inflight:  r.Gauge("sweep_cells_inflight"),
	}
}

func (r *Runner) logf(format string, args ...any) {
	if r.Logf != nil {
		r.Logf(format, args...)
	}
}

// Report is the sweep's outcome: every cell in grid-enumeration order plus
// the tallies the SUMMARY line and exit code are derived from.
type Report struct {
	Cells       []*CellRecord `json:"cells"`
	Total       int           `json:"total"`
	Done        int           `json:"done"`
	Truncated   int           `json:"truncated"`
	Exhausted   int           `json:"exhausted"`
	Failed      int           `json:"failed"`
	Pending     int           `json:"pending"` // not yet terminal when the sweep stopped
	Resumed     int           `json:"resumed"` // answered from the ledger, never resubmitted
	Attempts    int           `json:"attempts"`
	Interrupted bool          `json:"interrupted"`
}

// Run executes the sweep until the grid is terminal or ctx is cancelled.
// Cancellation is graceful degradation, not failure: the returned report
// carries every completed cell alongside ErrInterrupted, and the ledger
// already holds everything the report holds.
func (r *Runner) Run(ctx context.Context) (*Report, error) {
	met := newMetrics(r.Registry)
	workers := r.Workers
	if workers < 1 {
		workers = 1
	}
	cells := r.Grid.Cells()
	var pending []*Cell
	resumed := 0
	for _, c := range cells {
		if rec := r.Ledger.Get(c.Key); rec != nil && (rec.Status == StatusDone || rec.Status == StatusTruncated) {
			resumed++
			continue
		}
		pending = append(pending, c)
	}
	met.cells.Add(int64(len(cells)))
	met.resumed.Add(int64(resumed))
	r.logf("sweep: %d cells, %d resumed from ledger, %d to run", len(cells), resumed, len(pending))

	jobs := make(chan *Cell)
	updates := make(chan *CellRecord)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range jobs {
				met.inflight.Add(1)
				r.runCell(ctx, c, updates, met)
				met.inflight.Add(-1)
			}
		}()
	}
	go func() {
		defer close(jobs)
		for _, c := range pending {
			select {
			case jobs <- c:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(updates)
	}()

	// The collector is the only goroutine that touches the ledger while
	// workers run. A failed flush is logged and remembered, not fatal: the
	// sweep keeps answering cells, and the caller learns durability was
	// lost through the returned error.
	var ledgerErr error
	for rec := range updates {
		if err := r.Ledger.Put(rec); err != nil {
			if ledgerErr == nil {
				ledgerErr = err
			}
			r.logf("sweep: ledger write failed (continuing): %v", err)
		}
		if rec.Status != StatusRetrying {
			r.logf("sweep: cell %s %s after %d attempt(s)", rec.Name, rec.Status, rec.Attempts)
		}
	}

	rep := r.report(cells, resumed)
	for _, rec := range rep.Cells {
		switch rec.Status {
		case StatusDone:
			met.done.Inc()
		case StatusTruncated:
			met.truncated.Inc()
		case StatusExhausted:
			met.exhausted.Inc()
		case StatusFailed:
			met.failed.Inc()
		}
	}
	if ctx.Err() != nil {
		rep.Interrupted = true
		return rep, fmt.Errorf("%w: %d of %d cells terminal", ErrInterrupted, rep.Total-rep.Pending, rep.Total)
	}
	return rep, ledgerErr
}

// report assembles the final view in grid order. Cells the interrupt
// prevented from ever starting get a synthetic retrying record (attempts 0)
// so the partial-grid summary accounts for the whole grid.
func (r *Runner) report(cells []*Cell, resumed int) *Report {
	rep := &Report{Total: len(cells), Resumed: resumed}
	for _, c := range cells {
		rec := r.Ledger.Get(c.Key)
		if rec == nil {
			spec, _ := json.Marshal(c.Spec)
			rec = &CellRecord{Key: c.Key, Name: c.Name, Index: c.Index, Spec: spec, Status: StatusRetrying}
		}
		rep.Cells = append(rep.Cells, rec)
		rep.Attempts += rec.Attempts
		switch rec.Status {
		case StatusDone:
			rep.Done++
		case StatusTruncated:
			rep.Truncated++
		case StatusExhausted:
			rep.Exhausted++
		case StatusFailed:
			rep.Failed++
		default:
			rep.Pending++
		}
	}
	return rep
}

// runCell is one cell's retry loop. Every state transition is sent to the
// collector as a fresh snapshot — the durable "retrying" record written
// before each attempt is what lets a SIGKILLed client know the cell was
// in flight.
func (r *Runner) runCell(ctx context.Context, c *Cell, updates chan<- *CellRecord, met *metrics) {
	rng := CellRNG(r.Seed, c.Key)
	specJSON, err := json.Marshal(c.Spec)
	if err != nil {
		updates <- &CellRecord{Key: c.Key, Name: c.Name, Index: c.Index, Status: StatusFailed, Error: err.Error()}
		return
	}
	snap := func(status string, attempts int, endpoint, errMsg string, res *serve.StoredResult) *CellRecord {
		return &CellRecord{
			Key: c.Key, Name: c.Name, Index: c.Index, Spec: specJSON,
			Status: status, Attempts: attempts, Endpoint: endpoint, Error: errMsg, Result: res,
		}
	}
	policy := r.Client.Policy
	var last error
	for attempt := 1; attempt <= policy.MaxAttempts; attempt++ {
		if ctx.Err() != nil {
			updates <- snap(StatusRetrying, attempt-1, "", "interrupted", nil)
			return
		}
		if attempt > 1 {
			met.retries.Inc()
		}
		endpoint := r.Client.endpointFor(c.Index, attempt)
		updates <- snap(StatusRetrying, attempt, endpoint, "", nil)
		spec := c.Spec
		view, err := r.Client.RunJob(ctx, endpoint, &spec)
		if err == nil {
			updates <- snap(terminalStatus(&c.Spec, view.Result), attempt, endpoint, "", view.Result)
			return
		}
		last = err
		if ctx.Err() != nil {
			updates <- snap(StatusRetrying, attempt, endpoint, "interrupted: "+err.Error(), nil)
			return
		}
		if !retryable(err) {
			fatal := &FatalError{Cell: c.Name, Err: err}
			updates <- snap(StatusFailed, attempt, endpoint, fatal.Error(), nil)
			return
		}
		if attempt == policy.MaxAttempts {
			break
		}
		delay := policy.Delay(attempt, retryAfterOf(err), rng)
		r.logf("sweep: cell %s attempt %d failed (%v), retrying in %s", c.Name, attempt, err, delay)
		if !sleepCtx(ctx, delay) {
			updates <- snap(StatusRetrying, attempt, endpoint, "interrupted: "+err.Error(), nil)
			return
		}
	}
	ex := &ExhaustedError{Cell: c.Name, Attempts: policy.MaxAttempts, Last: last}
	updates <- snap(StatusExhausted, policy.MaxAttempts, "", ex.Error(), nil)
}

// terminalStatus maps a job's result onto the cell taxonomy: a
// budget-independent answer is done; anything the budget truncated is
// truncated (and, because the daemon never caches truncated answers, a
// later sweep with a bigger budget resumes the solve from its checkpoint).
func terminalStatus(spec *serve.Spec, res *serve.StoredResult) string {
	if res == nil {
		return StatusTruncated
	}
	switch res.Status {
	case "optimal", "infeasible", "unbounded":
		return StatusDone
	case "feasible":
		if spec.TargetGap > 0 {
			if g, err := strconv.ParseFloat(res.Gap, 64); err == nil && g >= spec.TargetGap {
				return StatusDone
			}
		}
		return StatusTruncated
	default: // interrupted, no-incumbent
		return StatusTruncated
	}
}

// sleepCtx waits d or until ctx is cancelled, reporting whether the full
// wait elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// csvHeader lists only columns that are pure functions of the cell spec —
// no wall time, no attempt counts, no endpoints — so a chaos-run CSV and a
// fault-free CSV of the same grid diff bit-identical. The nondeterministic
// telemetry lives in the JSON report instead.
var csvHeader = []string{
	"cell", "topology", "heuristic", "threshold", "partitions", "seed",
	"status", "solver_status", "gap", "normalized_gap", "opt_value",
	"heur_value", "bound", "nodes", "lp_solves", "lp_iters",
}

// WriteCSV emits the deterministic per-cell grid in enumeration order.
func (rep *Report) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, rec := range rep.Cells {
		var spec serve.Spec
		if err := json.Unmarshal(rec.Spec, &spec); err != nil {
			return fmt.Errorf("sweep: cell %s spec: %w", rec.Name, err)
		}
		row := []string{
			rec.Name, spec.Topology, spec.Heuristic,
			strconv.FormatFloat(spec.Threshold, 'g', -1, 64),
			strconv.Itoa(spec.Partitions),
			strconv.FormatInt(spec.Seed, 10),
			rec.Status,
		}
		if res := rec.Result; res != nil {
			row = append(row, res.Status, res.Gap, res.Normalized, res.OptValue,
				res.HeurValue, res.Bound,
				strconv.FormatInt(res.Nodes, 10),
				strconv.FormatInt(res.LPSolves, 10),
				strconv.FormatInt(res.LPIters, 10))
		} else {
			row = append(row, "", "", "", "", "", "", "", "", "")
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON emits the full report — including the nondeterministic fields
// (attempts, endpoints, wall seconds) the CSV deliberately omits.
func (rep *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// Summary is the one-line digest printed at the end of a sweep (complete or
// interrupted).
func (rep *Report) Summary() string {
	return fmt.Sprintf("SUMMARY cells=%d done=%d truncated=%d exhausted=%d failed=%d pending=%d resumed=%d attempts=%d interrupted=%v",
		rep.Total, rep.Done, rep.Truncated, rep.Exhausted, rep.Failed,
		rep.Pending, rep.Resumed, rep.Attempts, rep.Interrupted)
}
