package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/serve"
)

// daemonHost stands in for the daemon's network identity across process
// incarnations: the sweep client keeps one URL while the serve.Server
// behind it is SIGKILLed (Kill + severed connections) and replaced, exactly
// as a restarted daemon keeps its port.
type daemonHost struct {
	mu   sync.Mutex
	srv  *serve.Server
	down bool
}

func (h *daemonHost) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mu.Lock()
	srv, down := h.srv, h.down
	h.mu.Unlock()
	if down {
		// A dead process doesn't answer: sever the connection so the
		// fronting proxy sees a transport error, not a polite status.
		if hj, ok := w.(http.Hijacker); ok {
			if conn, _, err := hj.Hijack(); err == nil {
				conn.Close()
				return
			}
		}
		http.Error(w, "down", http.StatusBadGateway)
		return
	}
	srv.ServeHTTP(w, r)
}

// kill approximates SIGKILL: stop answering, then tear the daemon down
// without its graceful drain-time persistence.
func (h *daemonHost) kill() {
	h.mu.Lock()
	srv := h.srv
	h.down = true
	h.mu.Unlock()
	srv.Kill()
}

func (h *daemonHost) restore(s *serve.Server) {
	h.mu.Lock()
	h.srv = s
	h.down = false
	h.mu.Unlock()
}

func chaosServeConfig(stateDir string, reg *obs.Registry) serve.Config {
	return serve.Config{
		StateDir:      stateDir,
		Workers:       2,
		QueueDepth:    16,
		DefaultBudget: 30 * time.Second,
		MaxBudget:     2 * time.Minute,
		Registry:      reg,
	}
}

func chaosGrid() *Grid {
	return &Grid{
		Base:       serve.Spec{Topology: "figure1", Heuristic: "dp", Pairs: -1, BudgetSec: 30},
		Thresholds: []float64{2, 5, 8},
		Seeds:      []int64{1, 2, 3, 4},
	}
}

func statsOf(t *testing.T, url string) serve.Stats {
	t.Helper()
	resp, err := http.Get(url + "/v1/stats")
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	defer resp.Body.Close()
	var st serve.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	return st
}

func runSweep(t *testing.T, ctx context.Context, url, ledgerPath string) (*Report, error) {
	t.Helper()
	led, err := OpenLedger(ledgerPath, nil)
	if err != nil {
		t.Fatalf("open ledger: %v", err)
	}
	r := &Runner{
		Client: NewClient([]string{url}, Policy{
			MaxAttempts:  10,
			BaseDelay:    10 * time.Millisecond,
			MaxDelay:     100 * time.Millisecond,
			Timeout:      10 * time.Second,
			PollInterval: 10 * time.Millisecond,
		}),
		Ledger:  led,
		Grid:    chaosGrid(),
		Seed:    99,
		Workers: 3,
		Logf:    t.Logf,
	}
	return r.Run(ctx)
}

// TestChaosSoak is the acceptance property of the whole PR: a real grid
// pushed through a faulty proxy, with both the daemon and the client killed
// mid-sweep and resumed, must land bit-identical to a fault-free reference
// run — and the daemon's solver-run counters must prove no work was
// repeated beyond the in-flight jobs the kill destroyed.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak runs real solves")
	}
	const cells = 12 // 3 thresholds × 4 seeds

	stateDir := t.TempDir()
	reg1 := obs.NewRegistry()
	d1, err := serve.New(chaosServeConfig(stateDir, reg1))
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	d1.Start()
	host := &daemonHost{srv: d1}
	backend := httptest.NewServer(host)
	defer backend.Close()

	plan, err := faultinject.Parse("http-503:%5,http-drop:3,http-latency:%4", 7)
	if err != nil {
		t.Fatalf("parse fault plan: %v", err)
	}
	proxy, err := faultinject.NewProxy(backend.URL, plan)
	if err != nil {
		t.Fatalf("proxy: %v", err)
	}
	proxy.Latency = 30 * time.Millisecond
	proxy.Logf = t.Logf
	front := httptest.NewServer(proxy)
	defer front.Close()

	// Phase 1: sweep through the faulty proxy; once a few cells are
	// terminal, SIGKILL the daemon under the client, let the client chew on
	// the dead endpoint briefly, then kill the client too.
	ledgerPath := filepath.Join(stateDir, "sweep.ledger")
	watchLed, err := OpenLedger(ledgerPath, nil)
	if err == nil && watchLed.Len() != 0 {
		t.Fatal("ledger not empty at start")
	}
	ctx1, cancel1 := context.WithCancel(context.Background())
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		deadline := time.Now().Add(60 * time.Second)
		for time.Now().Before(deadline) {
			led, err := OpenLedger(ledgerPath, nil)
			if err == nil {
				terminal := 0
				for _, c := range chaosGrid().Cells() {
					if rec := led.Get(c.Key); rec != nil && rec.Status == StatusDone {
						terminal++
					}
				}
				if terminal >= 3 {
					host.kill()
					time.Sleep(50 * time.Millisecond)
					cancel1()
					return
				}
			}
			time.Sleep(5 * time.Millisecond)
		}
		cancel1() // failsafe: don't wedge the test if the sweep stalls
	}()
	rep1, err1 := runSweep(t, ctx1, front.URL, ledgerPath)
	<-killed
	cancel1()
	t.Logf("phase 1: %s (err=%v), proxy injected %d faults over %d requests",
		rep1.Summary(), err1, proxy.Injected(), proxy.Requests())
	if rep1.Done == rep1.Total && err1 == nil {
		t.Log("warning: sweep outran the chaos; resume phase degenerates to pure cache hits")
	}
	runs1 := int(reg1.Snapshot()["serve_solver_runs_total"])

	// Phase 2: restart the daemon on the same state dir, read how many
	// results survived, and resume the sweep from the ledger.
	reg2 := obs.NewRegistry()
	d2, err := serve.New(chaosServeConfig(stateDir, reg2))
	if err != nil {
		t.Fatalf("restart daemon: %v", err)
	}
	host.restore(d2)
	restored := statsOf(t, backend.URL).Results // via the backend: stats must not draw fault-plan fire
	d2.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		d2.Shutdown(ctx)
	}()

	rep2, err := runSweep(t, context.Background(), front.URL, ledgerPath)
	if err != nil {
		t.Fatalf("resumed sweep failed: %v", err)
	}
	if rep2.Done != cells || rep2.Pending+rep2.Exhausted+rep2.Failed != 0 {
		t.Fatalf("resumed sweep incomplete: %s", rep2.Summary())
	}
	runs2 := int(reg2.Snapshot()["serve_solver_runs_total"])

	// No redundant work: the restarted daemon solves exactly the cells whose
	// results the kill destroyed, and the two lifetimes together overshoot
	// the grid only by the in-flight solves the SIGKILL wasted.
	if runs2 != cells-restored {
		t.Errorf("restarted daemon ran %d solves with %d results restored; want exactly %d",
			runs2, restored, cells-restored)
	}
	if slack := runs1 + runs2 - cells; slack < 0 || slack > chaosServeConfig("", nil).Workers {
		t.Errorf("solver runs %d+%d for %d cells: redundancy %d exceeds the in-flight bound %d",
			runs1, runs2, cells, slack, chaosServeConfig("", nil).Workers)
	}

	// Phase 3: fault-free reference on a fresh daemon and fresh ledger.
	reg3 := obs.NewRegistry()
	refDir := t.TempDir()
	d3, err := serve.New(chaosServeConfig(refDir, reg3))
	if err != nil {
		t.Fatalf("reference daemon: %v", err)
	}
	d3.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		d3.Shutdown(ctx)
	}()
	ref := httptest.NewServer(d3)
	defer ref.Close()
	rep3, err := runSweep(t, context.Background(), ref.URL, filepath.Join(refDir, "sweep.ledger"))
	if err != nil {
		t.Fatalf("reference sweep: %v", err)
	}
	if rep3.Done != cells {
		t.Fatalf("reference sweep incomplete: %s", rep3.Summary())
	}
	if runs3 := int(reg3.Snapshot()["serve_solver_runs_total"]); runs3 != cells {
		t.Fatalf("reference daemon ran %d solves for %d cells", runs3, cells)
	}

	// The acceptance bit: the chaos grid and the fault-free grid are
	// byte-identical in every deterministic column.
	var chaosCSV, refCSV bytes.Buffer
	if err := rep2.WriteCSV(&chaosCSV); err != nil {
		t.Fatalf("chaos csv: %v", err)
	}
	if err := rep3.WriteCSV(&refCSV); err != nil {
		t.Fatalf("reference csv: %v", err)
	}
	if !bytes.Equal(chaosCSV.Bytes(), refCSV.Bytes()) {
		t.Fatalf("chaos grid diverged from fault-free reference:\n--- chaos ---\n%s\n--- reference ---\n%s",
			chaosCSV.String(), refCSV.String())
	}
	if proxy.Injected() == 0 {
		t.Error("fault proxy injected nothing; the soak proved nothing")
	}
}
