package sweep

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/serve"
)

func sampleRecords() []*CellRecord {
	return []*CellRecord{
		{
			Key: "00000000000000aa", Name: "thr=5/parts=2/seed=1", Index: 0,
			Spec: json.RawMessage(`{"topology":"figure1","heuristic":"dp"}`), Status: StatusDone, Attempts: 1,
			Endpoint: "http://127.0.0.1:1", Result: &serve.StoredResult{Key: "deadbeef", Status: "optimal", Gap: "10"},
		},
		{
			Key: "00000000000000bb", Name: "thr=8/parts=2/seed=1", Index: 1,
			Spec: json.RawMessage(`{"topology":"figure1","heuristic":"dp","threshold":8}`), Status: StatusExhausted,
			Attempts: 8, Error: "sweep: cell thr=8 exhausted",
		},
	}
}

func TestLedgerEncodeDecodeRoundTrip(t *testing.T) {
	recs := sampleRecords()
	data, err := EncodeLedger(recs)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeLedger(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	a, _ := json.Marshal(recs)
	b, _ := json.Marshal(got)
	if string(a) != string(b) {
		t.Fatalf("round trip changed records:\n%s\nvs\n%s", a, b)
	}
	// Canonical: re-encoding the decoded records reproduces the bytes.
	again, err := EncodeLedger(got)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if string(again) != string(data) {
		t.Fatal("encode is not canonical over its own round trip")
	}
}

func TestLedgerDecodeRejectsCorruption(t *testing.T) {
	good, err := EncodeLedger(sampleRecords())
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	h := fnv.New64a()
	h.Write([]byte("not json"))
	cases := map[string][]byte{
		"empty":            {},
		"no header":        []byte("[]"),
		"bad magic":        append([]byte("GAPNOPE1 0000000000000000\n"), good[27:]...),
		"short checksum":   []byte("GAPSWEEP1 00aa\n[]"),
		"truncated":        good[:len(good)-7],
		"bit flip":         append(append([]byte{}, good[:len(good)-3]...), good[len(good)-3]^1, good[len(good)-2], good[len(good)-1]),
		"payload not json": []byte(fmt.Sprintf("GAPSWEEP1 %016x\nnot json", h.Sum64())),
	}
	for name, data := range cases {
		if _, err := DecodeLedger(data); !errors.Is(err, ErrLedgerCorrupt) {
			t.Errorf("%s: err = %v, want ErrLedgerCorrupt", name, err)
		}
	}
	// A record with no key is structurally corrupt even if the checksum holds.
	noKey, _ := EncodeLedger([]*CellRecord{{Name: "x", Status: StatusDone}})
	if _, err := DecodeLedger(noKey); !errors.Is(err, ErrLedgerCorrupt) {
		t.Errorf("keyless record: err = %v, want ErrLedgerCorrupt", err)
	}
}

func TestLedgerOpenPutReload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ledger")
	l, err := OpenLedger(path, nil)
	if err != nil {
		t.Fatalf("open fresh: %v", err)
	}
	if l.Len() != 0 {
		t.Fatalf("fresh ledger has %d cells", l.Len())
	}
	for _, rec := range sampleRecords() {
		if err := l.Put(rec); err != nil {
			t.Fatalf("put %s: %v", rec.Key, err)
		}
	}
	// Status upgrade overwrites in place.
	if err := l.Put(&CellRecord{Key: "00000000000000bb", Name: "thr=8/parts=2/seed=1", Status: StatusDone, Attempts: 9}); err != nil {
		t.Fatalf("upsert: %v", err)
	}
	l2, err := OpenLedger(path, nil)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if l2.Len() != 2 {
		t.Fatalf("reloaded %d cells, want 2", l2.Len())
	}
	if got := l2.Get("00000000000000bb"); got == nil || got.Status != StatusDone || got.Attempts != 9 {
		t.Fatalf("upsert did not survive reload: %+v", got)
	}
	if l2.Get("00000000000000aa").Result.Gap != "10" {
		t.Fatal("result payload lost across reload")
	}
}

func TestLedgerOpenRejectsCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ledger")
	if err := os.WriteFile(path, []byte("GAPSWEEP1 0123456789abcdef\n[]"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenLedger(path, nil); !errors.Is(err, ErrLedgerCorrupt) {
		t.Fatalf("open corrupt ledger: err = %v, want ErrLedgerCorrupt", err)
	}
}

// TestLedgerPutRollsBackOnWriteFailure injects a write fault through the
// same checkpoint.FS seam the daemon's stores use: a failed flush must not
// leave the in-memory map claiming durability the file does not have.
func TestLedgerPutRollsBackOnWriteFailure(t *testing.T) {
	plan, err := faultinject.Parse("ckpt-write:2", 0)
	if err != nil {
		t.Fatalf("parse plan: %v", err)
	}
	path := filepath.Join(t.TempDir(), "sweep.ledger")
	l, err := OpenLedger(path, faultinject.WrapFS(nil, plan))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	recs := sampleRecords()
	if err := l.Put(recs[0]); err != nil {
		t.Fatalf("first put: %v", err)
	}
	if err := l.Put(recs[1]); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("second put survived the injected fault: %v", err)
	}
	if l.Get(recs[1].Key) != nil {
		t.Fatal("failed put left its record in memory")
	}
	l2, err := OpenLedger(path, nil)
	if err != nil {
		t.Fatalf("reopen after fault: %v", err)
	}
	if l2.Len() != 1 || l2.Get(recs[0].Key) == nil {
		t.Fatalf("on-disk ledger inconsistent after fault: %d cells", l2.Len())
	}
}
