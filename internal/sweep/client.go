package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/serve"
)

// StatusError is a non-2xx daemon answer. Retryable() encodes the sweep's
// retry taxonomy: overload and gateway failures clear up, bad requests do
// not, and a vanished job id (404 after a daemon restart re-keyed its jobs)
// is handled by resubmitting — which the daemon's cache dedupes.
type StatusError struct {
	Code       int
	Msg        string
	RetryAfter time.Duration // parsed Retry-After, 0 if absent
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("sweep: daemon answered %d: %s", e.Code, e.Msg)
}

// Retryable reports whether another attempt can change the answer.
func (e *StatusError) Retryable() bool {
	switch e.Code {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable,
		http.StatusBadGateway, http.StatusGatewayTimeout, http.StatusNotFound:
		return true
	}
	return false
}

// JobFailedError is a job that reached the daemon's failed state. The
// admission gate canonicalizes specs before queueing, so a failure is
// runtime trouble (an injected fault, a dying worker), not a bad cell —
// the sweep retries it under the normal budget.
type JobFailedError struct {
	ID  string
	Msg string
}

func (e *JobFailedError) Error() string {
	return fmt.Sprintf("sweep: job %s failed: %s", e.ID, e.Msg)
}

// retryable classifies an attempt error. Anything that is not provably
// deterministic — transport errors, timeouts, overload statuses, failed
// jobs — is worth another attempt; only a non-retryable StatusError (400
// bad spec) is fatal.
func retryable(err error) bool {
	var se *StatusError
	if errors.As(err, &se) {
		return se.Retryable()
	}
	return true
}

// retryAfterOf extracts the server's Retry-After hint from an attempt
// error, or 0.
func retryAfterOf(err error) time.Duration {
	var se *StatusError
	if errors.As(err, &se) {
		return se.RetryAfter
	}
	return 0
}

// Client speaks the gapserved job API with per-request timeouts. The zero
// value is unusable; fill Endpoints and Policy (NewClient does).
type Client struct {
	// Endpoints are daemon base URLs. A cell's attempts rotate through them
	// (cell index + attempt number), so a dead endpoint degrades the sweep
	// instead of stalling it.
	Endpoints []string
	Policy    Policy
	// HTTP is the underlying client. Per-request deadlines come from
	// context timeouts, not HTTP.Client.Timeout, so one slow exchange
	// cannot starve an unrelated poll.
	HTTP *http.Client
}

// NewClient builds a client over the given endpoints.
func NewClient(endpoints []string, policy Policy) *Client {
	return &Client{Endpoints: endpoints, Policy: policy, HTTP: &http.Client{}}
}

// endpointFor rotates attempts across endpoints deterministically.
func (c *Client) endpointFor(cellIndex, attempt int) string {
	return c.Endpoints[(cellIndex+attempt-1)%len(c.Endpoints)]
}

// do runs one HTTP exchange under the policy's per-request timeout and
// decodes the body into out (if non-nil) on 2xx. Non-2xx answers become
// *StatusError with any Retry-After hint attached.
func (c *Client) do(ctx context.Context, req *http.Request, out any) (int, error) {
	ctx, cancel := context.WithTimeout(ctx, c.Policy.Timeout)
	defer cancel()
	resp, err := c.HTTP.Do(req.WithContext(ctx))
	if err != nil {
		return 0, fmt.Errorf("sweep: %s %s: %w", req.Method, req.URL.Path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return resp.StatusCode, fmt.Errorf("sweep: read %s: %w", req.URL.Path, err)
	}
	if resp.StatusCode/100 != 2 {
		return resp.StatusCode, &StatusError{
			Code:       resp.StatusCode,
			Msg:        errorMessage(body),
			RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
		}
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			return resp.StatusCode, fmt.Errorf("sweep: decode %s: %w", req.URL.Path, err)
		}
	}
	return resp.StatusCode, nil
}

// errorMessage pulls the daemon's {"error": ...} detail out of a body,
// falling back to the raw text.
func errorMessage(body []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(body))
}

// parseRetryAfter handles the delta-seconds form the daemon emits. The
// HTTP-date form is not parsed: mapping it to a delay needs the local
// clock, and the sweep's schedule must not depend on wall-clock readings.
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// Submit posts a job spec. A 200 means the daemon answered from its results
// store; a 202 means the job was queued and must be awaited.
func (c *Client) Submit(ctx context.Context, endpoint string, spec *serve.Spec) (*serve.JobView, bool, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, false, fmt.Errorf("sweep: marshal spec: %w", err)
	}
	req, err := http.NewRequest(http.MethodPost, endpoint+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return nil, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	var view serve.JobView
	code, err := c.do(ctx, req, &view)
	if err != nil {
		return nil, false, err
	}
	return &view, code == http.StatusOK, nil
}

// GetJob fetches a job's current view.
func (c *Client) GetJob(ctx context.Context, endpoint, id string) (*serve.JobView, error) {
	req, err := http.NewRequest(http.MethodGet, endpoint+"/v1/jobs/"+id, nil)
	if err != nil {
		return nil, err
	}
	var view serve.JobView
	if _, err := c.do(ctx, req, &view); err != nil {
		return nil, err
	}
	return &view, nil
}

// RunJob submits a spec and follows it to a terminal state: the cached
// answer if the store has one, otherwise poll until done or failed. Any
// error — including a failed job — is returned for the retry loop to
// classify; a nil error always carries a view with a result.
func (c *Client) RunJob(ctx context.Context, endpoint string, spec *serve.Spec) (*serve.JobView, error) {
	view, cached, err := c.Submit(ctx, endpoint, spec)
	if err != nil {
		return nil, err
	}
	if cached || view.State == "done" {
		return view, nil
	}
	ticker := time.NewTicker(c.Policy.PollInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-ticker.C:
		}
		v, err := c.GetJob(ctx, endpoint, view.ID)
		if err != nil {
			return nil, err
		}
		switch v.State {
		case "done":
			if v.Result == nil {
				return nil, fmt.Errorf("sweep: job %s done without result", v.ID)
			}
			return v, nil
		case "failed":
			return nil, &JobFailedError{ID: v.ID, Msg: v.Error}
		}
	}
}
