package faultinject

import (
	"io"
	"log"
	"net"
	"net/http"
	"net/http/httputil"
	"net/url"
	"sync/atomic"
	"time"
)

// Proxy is a fault-injecting HTTP reverse proxy: it forwards every request
// to its target, consulting the plan's http-* ops on each one. It is the
// network analogue of WrapFS — the client and daemon under test run their
// production code paths unchanged while the wire between them misbehaves on
// a deterministic schedule.
//
// Each incoming request counts one occurrence of every http-* op the plan
// carries, in a fixed order (latency, then 503, then drop, then reset) so a
// plan that schedules several ops at the same count behaves identically
// everywhere. Latency composes with the others: a request can be delayed
// and then dropped. 503, drop, and reset are exclusive — the first that
// fires consumes the request.
//
// A request the proxy cannot deliver (target down, connection refused) is
// answered 502, which a resilient client treats like any other transient
// server failure.
type Proxy struct {
	// Latency is the http-latency delay (default 100ms).
	Latency time.Duration
	// Logf, when non-nil, receives one line per injected fault.
	Logf func(format string, args ...any)

	plan     *Plan
	rp       *httputil.ReverseProxy
	requests atomic.Int64
	injected atomic.Int64
}

// NewProxy builds a proxy forwarding to target (a base URL such as
// "http://127.0.0.1:8344"). A nil plan proxies faithfully — useful as the
// fault-free reference leg of a chaos comparison.
func NewProxy(target string, plan *Plan) (*Proxy, error) {
	u, err := url.Parse(target)
	if err != nil {
		return nil, err
	}
	p := &Proxy{plan: plan, Latency: 100 * time.Millisecond}
	rp := httputil.NewSingleHostReverseProxy(u)
	// NDJSON event streams must flow through without buffering to the end.
	rp.FlushInterval = 100 * time.Millisecond
	// The default handler logs to the global logger; keep the proxy quiet
	// (a killed daemon produces a burst of refused connections by design)
	// and answer 502 so the client sees an ordinary retryable failure.
	rp.ErrorLog = log.New(io.Discard, "", 0)
	rp.ErrorHandler = func(w http.ResponseWriter, r *http.Request, err error) {
		w.WriteHeader(http.StatusBadGateway)
	}
	p.rp = rp
	return p, nil
}

// Requests reports how many requests the proxy has seen; Injected how many
// of them had at least one fault injected.
func (p *Proxy) Requests() int64 { return p.requests.Load() }
func (p *Proxy) Injected() int64 { return p.injected.Load() }

func (p *Proxy) logf(format string, args ...any) {
	if p.Logf != nil {
		p.Logf(format, args...)
	}
}

func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	p.requests.Add(1)
	if n, fire := p.plan.Hit(OpHTTPLatency); fire {
		p.injected.Add(1)
		p.logf("faultinject: http-latency at request %d (%s %s): +%s", n, r.Method, r.URL.Path, p.Latency)
		time.Sleep(p.Latency)
	}
	if n, fire := p.plan.Hit(OpHTTP503); fire {
		p.injected.Add(1)
		p.logf("faultinject: http-503 at request %d (%s %s)", n, r.Method, r.URL.Path)
		// Deliberately no Retry-After: the client's fallback backoff is
		// under test here, not its header handling.
		http.Error(w, "faultinject: injected 503", http.StatusServiceUnavailable)
		return
	}
	if n, fire := p.plan.Hit(OpHTTPDrop); fire {
		p.injected.Add(1)
		p.logf("faultinject: http-drop at request %d (%s %s)", n, r.Method, r.URL.Path)
		p.abort(w, false)
		return
	}
	if n, fire := p.plan.Hit(OpHTTPReset); fire {
		p.injected.Add(1)
		p.logf("faultinject: http-reset at request %d (%s %s)", n, r.Method, r.URL.Path)
		p.abort(w, true)
		return
	}
	p.rp.ServeHTTP(w, r)
}

// abort kills the client connection without an HTTP response: a plain close
// for http-drop (EOF), SetLinger(0)+close for http-reset (RST). When the
// ResponseWriter cannot be hijacked (e.g. HTTP/2), it falls back to an
// empty 502 — still a failed request, just a politer one.
func (p *Proxy) abort(w http.ResponseWriter, reset bool) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		w.WriteHeader(http.StatusBadGateway)
		return
	}
	conn, _, err := hj.Hijack()
	if err != nil {
		w.WriteHeader(http.StatusBadGateway)
		return
	}
	if reset {
		if tc, ok := conn.(*net.TCPConn); ok {
			tc.SetLinger(0)
		}
	}
	conn.Close()
}
