package faultinject

import (
	"errors"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/checkpoint"
)

func TestParseFixedTriggers(t *testing.T) {
	p, err := Parse("lp-solve:7, worker-panic:3 ,ckpt-write:1,deadline:4", 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for op, want := range map[string]int{OpLPSolve: 7, OpWorkerPanic: 3, OpCheckpointWrite: 1, OpDeadline: 4} {
		if got := p.Trigger(op); got != want {
			t.Errorf("%s trigger = %d, want %d", op, got, want)
		}
	}
}

func TestParseEmptyAndErrors(t *testing.T) {
	if p, err := Parse("", 0); p != nil || err != nil {
		t.Fatalf("empty spec: %v %v", p, err)
	}
	if p, err := Parse("  , ,", 0); p != nil || err != nil {
		t.Fatalf("blank entries: %v %v", p, err)
	}
	for _, bad := range []string{
		"lp-solve",              // no trigger
		"frobnicate:3",          // unknown op
		"lp-solve:0",            // not positive
		"lp-solve:-2",           // negative
		"lp-solve:x",            // not a number
		"lp-solve:~0",           // bad seeded bound
		"lp-solve:~x",           // bad seeded bound
		"lp-solve:1,lp-solve:2", // duplicate
	} {
		if _, err := Parse(bad, 0); err == nil {
			t.Errorf("spec %q parsed", bad)
		}
	}
}

// TestParseTypedErrors pins the error taxonomy: every Parse failure unwraps
// to ErrBadPlan, an unrecognized op is an *UnknownOpError, and malformed
// syntax is a *ParseError carrying the offending entry.
func TestParseTypedErrors(t *testing.T) {
	_, err := Parse("frobnicate:3", 0)
	var uo *UnknownOpError
	if !errors.As(err, &uo) || uo.Op != "frobnicate" {
		t.Fatalf("unknown op error = %v, want *UnknownOpError{frobnicate}", err)
	}
	if !errors.Is(err, ErrBadPlan) {
		t.Fatalf("unknown-op error does not unwrap to ErrBadPlan: %v", err)
	}
	for _, bad := range []string{"http-drop", "http-503:0", "http-latency:%0", "http-reset:~x", "lp-solve:1,lp-solve:2"} {
		_, err := Parse(bad, 0)
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Errorf("spec %q: error %v, want *ParseError", bad, err)
			continue
		}
		if !errors.Is(err, ErrBadPlan) {
			t.Errorf("spec %q: error does not unwrap to ErrBadPlan", bad)
		}
		if pe.Entry == "" || pe.Reason == "" {
			t.Errorf("spec %q: ParseError missing context: %+v", bad, pe)
		}
	}
}

// TestPeriodicTriggerFiresRepeatedly: op:%k fires on every kth occurrence,
// unlike the one-shot fixed and seeded forms.
func TestPeriodicTriggerFiresRepeatedly(t *testing.T) {
	p, err := Parse("http-503:%3", 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var fired []int
	for i := 1; i <= 10; i++ {
		if n, fire := p.Hit(OpHTTP503); fire {
			fired = append(fired, n)
		}
	}
	want := []int{3, 6, 9}
	if len(fired) != len(want) {
		t.Fatalf("fired at %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired at %v, want %v", fired, want)
		}
	}
}

func TestParseSeededIsDeterministic(t *testing.T) {
	a, err := Parse("deadline:~50,lp-solve:~50", 42)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	// Different spelling order of the same plan resolves identically.
	b, err := Parse("lp-solve:~50,deadline:~50", 42)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, op := range []string{OpDeadline, OpLPSolve} {
		ta, tb := a.Trigger(op), b.Trigger(op)
		if ta != tb {
			t.Errorf("%s: order-dependent seeded trigger: %d vs %d", op, ta, tb)
		}
		if ta < 1 || ta > 50 {
			t.Errorf("%s: trigger %d outside [1, 50]", op, ta)
		}
	}
	c, _ := Parse("deadline:~50,lp-solve:~50", 43)
	if a.Trigger(OpDeadline) == c.Trigger(OpDeadline) && a.Trigger(OpLPSolve) == c.Trigger(OpLPSolve) {
		t.Log("warning: seeds 42 and 43 drew identical plans (possible but unlikely)")
	}
}

func TestHitFiresExactlyOnce(t *testing.T) {
	p, _ := Parse("lp-solve:3", 0)
	fired := 0
	for i := 1; i <= 10; i++ {
		n, fire := p.Hit(OpLPSolve)
		if n != i {
			t.Fatalf("occurrence %d counted as %d", i, n)
		}
		if fire {
			fired++
			if i != 3 {
				t.Fatalf("fired at occurrence %d, want 3", i)
			}
		}
	}
	if fired != 1 {
		t.Fatalf("fired %d times, want exactly once", fired)
	}
	if _, fire := p.Hit(OpWorkerPanic); fire {
		t.Fatal("unplanned op fired")
	}
}

func TestHitConcurrentFiresOnce(t *testing.T) {
	p, _ := Parse("lp-solve:50", 0)
	var wg sync.WaitGroup
	var mu sync.Mutex
	fired := 0
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if _, fire := p.Hit(OpLPSolve); fire {
					mu.Lock()
					fired++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if fired != 1 {
		t.Fatalf("fired %d times under concurrency, want exactly once", fired)
	}
}

func TestAtDoesNotCount(t *testing.T) {
	p, _ := Parse("worker-panic:4", 0)
	for i := 0; i < 3; i++ {
		if p.At(OpWorkerPanic, 3) {
			t.Fatal("fired at wrong index")
		}
	}
	if !p.At(OpWorkerPanic, 4) || !p.At(OpWorkerPanic, 4) {
		t.Fatal("At is not repeatable at the trigger index")
	}
}

func TestNilPlanIsInert(t *testing.T) {
	var p *Plan
	if _, fire := p.Hit(OpLPSolve); fire {
		t.Fatal("nil plan fired")
	}
	if p.At(OpDeadline, 1) {
		t.Fatal("nil plan fired")
	}
	if p.Trigger(OpLPSolve) != 0 {
		t.Fatal("nil plan has a trigger")
	}
}

func TestErrorUnwrapsToSentinel(t *testing.T) {
	err := error(&Error{Op: OpCheckpointWrite, N: 2})
	if !errors.Is(err, ErrInjected) {
		t.Fatal("injected error does not unwrap to ErrInjected")
	}
	var fe *Error
	if !errors.As(err, &fe) || fe.Op != OpCheckpointWrite {
		t.Fatal("errors.As lost the typed fault")
	}
}

func TestWrapFSInjectsWriteFault(t *testing.T) {
	plan, _ := Parse("ckpt-write:2", 0)
	fs := WrapFS(nil, plan)
	dir := t.TempDir()
	if _, err := fs.WriteTemp(dir, "a-*", []byte("one")); err != nil {
		t.Fatalf("first write failed early: %v", err)
	}
	if _, err := fs.WriteTemp(dir, "a-*", []byte("two")); !errors.Is(err, ErrInjected) {
		t.Fatalf("second write did not inject: %v", err)
	}
	if _, err := fs.WriteTemp(dir, "a-*", []byte("three")); err != nil {
		t.Fatalf("third write failed after the one-shot fault: %v", err)
	}
	// Pass-through methods reach the real filesystem.
	tmp, err := fs.WriteTemp(dir, "b-*", []byte("x"))
	if err != nil {
		t.Fatalf("write: %v", err)
	}
	dst := filepath.Join(dir, "renamed")
	if err := fs.Rename(tmp, dst); err != nil {
		t.Fatalf("rename: %v", err)
	}
	if err := fs.Remove(dst); err != nil {
		t.Fatalf("remove: %v", err)
	}
}

func TestWrapFSNilPlanReturnsInner(t *testing.T) {
	inner := checkpoint.OSFS()
	if got := WrapFS(inner, nil); got != inner {
		t.Fatal("nil plan did not pass inner through")
	}
	if got := WrapFS(nil, nil); got == nil {
		t.Fatal("nil inner did not default to the OS")
	}
}
