// Package faultinject provides a seeded, deterministic fault plan for the
// solver stack's resilience tests: the nth LP solve fails, a wave worker
// panics at wave k, a checkpoint write returns an I/O error, or the search
// deadline expires mid-wave. Faults are injected behind interfaces the
// solvers already use, so production code paths are exercised unchanged; a
// nil *Plan injects nothing and costs one nil check.
//
// A plan is parsed from a compact spec such as
//
//	lp-solve:7,worker-panic:3,ckpt-write:1,deadline:4
//
// where the number is the 1-based occurrence (lp-solve, ckpt-write, the
// http-* ops) or the wave index (worker-panic, deadline) at which the fault
// fires. A trigger of the form "op:~max" draws the firing point uniformly
// from [1, max] using the plan's seed — deterministic for a fixed
// (spec, seed) pair, which is what lets a CI matrix sweep kill points
// without hand-enumerating them. A trigger of the form "op:%k" fires on
// EVERY kth occurrence instead of exactly once — the sustained-pressure
// form the chaos soak uses to keep faults flowing through a long sweep.
//
// The http-* ops drive the Proxy in http.go: a fault-injecting HTTP reverse
// proxy that sits between a client under test (cmd/gapsweep) and the
// gapserved daemon.
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Fault operations understood by the solvers.
const (
	// OpLPSolve fails the nth node-relaxation LP (counted in deterministic
	// apply order on the branch-and-bound coordinator).
	OpLPSolve = "lp-solve"
	// OpWorkerPanic panics inside a wave worker at the given wave index,
	// exercising the pool's panic recovery and deterministic drain.
	OpWorkerPanic = "worker-panic"
	// OpCheckpointWrite fails the nth checkpoint write with an I/O error.
	OpCheckpointWrite = "ckpt-write"
	// OpDeadline forces deadline expiry at the start of the given wave.
	OpDeadline = "deadline"
	// OpHTTPDrop closes the client connection of the triggered proxied
	// request without answering — the client sees an abrupt EOF mid-request.
	OpHTTPDrop = "http-drop"
	// OpHTTPLatency delays the triggered proxied request by the proxy's
	// configured latency before forwarding it.
	OpHTTPLatency = "http-latency"
	// OpHTTP503 answers the triggered proxied request with 503 directly from
	// the proxy, deliberately WITHOUT a Retry-After header — it exercises the
	// client's fallback backoff, whereas the daemon's own 429/503 rejections
	// carry the header and exercise the Retry-After path.
	OpHTTP503 = "http-503"
	// OpHTTPReset resets (RST, not FIN) the client connection of the
	// triggered proxied request, the TCP-level failure a crashed or
	// firewalled daemon produces.
	OpHTTPReset = "http-reset"
)

var knownOps = map[string]bool{
	OpLPSolve:         true,
	OpWorkerPanic:     true,
	OpCheckpointWrite: true,
	OpDeadline:        true,
	OpHTTPDrop:        true,
	OpHTTPLatency:     true,
	OpHTTP503:         true,
	OpHTTPReset:       true,
}

// ErrInjected is the sentinel every injected fault unwraps to, so callers
// and tests can errors.Is their way past wrapping layers.
var ErrInjected = errors.New("faultinject: injected fault")

// ErrBadPlan is the sentinel every Parse failure unwraps to. The concrete
// failure is one of the typed errors below, so a caller can distinguish a
// typo'd op name from malformed trigger syntax with errors.As.
var ErrBadPlan = errors.New("faultinject: bad plan")

// UnknownOpError reports an op name Parse does not recognize.
type UnknownOpError struct {
	Op string
}

func (e *UnknownOpError) Error() string { return fmt.Sprintf("faultinject: unknown op %q", e.Op) }
func (e *UnknownOpError) Unwrap() error { return ErrBadPlan }

// ParseError reports a malformed plan entry: missing or non-positive
// trigger, bad seeded/periodic bound, or a duplicated op.
type ParseError struct {
	Entry  string // the offending spec entry, as written
	Reason string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("faultinject: entry %q: %s", e.Entry, e.Reason)
}
func (e *ParseError) Unwrap() error { return ErrBadPlan }

// Error is one fired fault: the operation and the occurrence or wave index
// it fired at.
type Error struct {
	Op string
	N  int
}

func (e *Error) Error() string { return fmt.Sprintf("faultinject: %s fault at %d", e.Op, e.N) }
func (e *Error) Unwrap() error { return ErrInjected }

// Plan is a parsed fault plan. Methods are safe for concurrent use (wave
// workers consult it in parallel). The zero of *Plan — nil — is a valid
// plan that never fires.
type Plan struct {
	mu       sync.Mutex
	trigger  map[string]int  // op -> occurrence / wave index / period (1-based)
	periodic map[string]bool // op -> trigger is a %k period, firing repeatedly
	count    map[string]int  // op -> occurrences observed so far
}

// Parse builds a plan from spec (see the package comment for the grammar).
// Seeded "op:~max" triggers are resolved with seed. An empty spec yields a
// nil plan.
func Parse(spec string, seed int64) (*Plan, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	p := &Plan{trigger: make(map[string]int), periodic: make(map[string]bool), count: make(map[string]int)}
	entries := strings.Split(spec, ",")
	// Seeded draws are resolved in sorted op order, not spec order, so two
	// spellings of the same plan fire identically.
	type seededEntry struct {
		op  string
		max int
	}
	var seeded []seededEntry
	for _, ent := range entries {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			continue
		}
		op, val, ok := strings.Cut(ent, ":")
		if !ok {
			return nil, &ParseError{Entry: ent, Reason: "want op:n, op:~max, or op:%k"}
		}
		op = strings.TrimSpace(op)
		if !knownOps[op] {
			return nil, &UnknownOpError{Op: op}
		}
		if _, dup := p.trigger[op]; dup {
			return nil, &ParseError{Entry: ent, Reason: fmt.Sprintf("duplicate op %q", op)}
		}
		val = strings.TrimSpace(val)
		if rest, rnd := strings.CutPrefix(val, "~"); rnd {
			max, err := strconv.Atoi(rest)
			if err != nil || max < 1 {
				return nil, &ParseError{Entry: ent, Reason: "bad seeded bound"}
			}
			p.trigger[op] = 0 // reserved; resolved below
			seeded = append(seeded, seededEntry{op: op, max: max})
			continue
		}
		if rest, per := strings.CutPrefix(val, "%"); per {
			k, err := strconv.Atoi(rest)
			if err != nil || k < 1 {
				return nil, &ParseError{Entry: ent, Reason: "bad period"}
			}
			p.trigger[op] = k
			p.periodic[op] = true
			continue
		}
		n, err := strconv.Atoi(val)
		if err != nil || n < 1 {
			return nil, &ParseError{Entry: ent, Reason: "trigger must be a positive integer"}
		}
		p.trigger[op] = n
	}
	if len(seeded) > 0 {
		sort.Slice(seeded, func(i, j int) bool { return seeded[i].op < seeded[j].op })
		rng := rand.New(rand.NewSource(seed))
		for _, se := range seeded {
			p.trigger[se.op] = 1 + rng.Intn(se.max)
		}
	}
	if len(p.trigger) == 0 {
		return nil, nil
	}
	return p, nil
}

// Hit counts one occurrence of op and reports whether the plan fires on it
// (occurrence-triggered ops: lp-solve, ckpt-write, the http-* ops). A fixed
// or seeded trigger fires exactly once; a periodic %k trigger fires on every
// kth occurrence.
func (p *Plan) Hit(op string) (int, bool) {
	if p == nil {
		return 0, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	n, ok := p.trigger[op]
	if !ok {
		return 0, false
	}
	p.count[op]++
	if p.periodic[op] {
		return p.count[op], p.count[op]%n == 0
	}
	return p.count[op], p.count[op] == n
}

// At reports whether the plan fires op at index k (index-triggered ops:
// worker-panic, deadline). Unlike Hit it does not count, so it may be
// consulted any number of times per wave.
func (p *Plan) At(op string, k int) bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	n, ok := p.trigger[op]
	return ok && n == k
}

// Trigger exposes the resolved firing point of op (0 when the plan has
// none) — for tests and log lines.
func (p *Plan) Trigger(op string) int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.trigger[op]
}
