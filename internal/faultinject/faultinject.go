// Package faultinject provides a seeded, deterministic fault plan for the
// solver stack's resilience tests: the nth LP solve fails, a wave worker
// panics at wave k, a checkpoint write returns an I/O error, or the search
// deadline expires mid-wave. Faults are injected behind interfaces the
// solvers already use, so production code paths are exercised unchanged; a
// nil *Plan injects nothing and costs one nil check.
//
// A plan is parsed from a compact spec such as
//
//	lp-solve:7,worker-panic:3,ckpt-write:1,deadline:4
//
// where the number is the 1-based occurrence (lp-solve, ckpt-write) or the
// wave index (worker-panic, deadline) at which the fault fires. A trigger of
// the form "op:~max" draws the firing point uniformly from [1, max] using
// the plan's seed — deterministic for a fixed (spec, seed) pair, which is
// what lets a CI matrix sweep kill points without hand-enumerating them.
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Fault operations understood by the solvers.
const (
	// OpLPSolve fails the nth node-relaxation LP (counted in deterministic
	// apply order on the branch-and-bound coordinator).
	OpLPSolve = "lp-solve"
	// OpWorkerPanic panics inside a wave worker at the given wave index,
	// exercising the pool's panic recovery and deterministic drain.
	OpWorkerPanic = "worker-panic"
	// OpCheckpointWrite fails the nth checkpoint write with an I/O error.
	OpCheckpointWrite = "ckpt-write"
	// OpDeadline forces deadline expiry at the start of the given wave.
	OpDeadline = "deadline"
)

var knownOps = map[string]bool{
	OpLPSolve:         true,
	OpWorkerPanic:     true,
	OpCheckpointWrite: true,
	OpDeadline:        true,
}

// ErrInjected is the sentinel every injected fault unwraps to, so callers
// and tests can errors.Is their way past wrapping layers.
var ErrInjected = errors.New("faultinject: injected fault")

// Error is one fired fault: the operation and the occurrence or wave index
// it fired at.
type Error struct {
	Op string
	N  int
}

func (e *Error) Error() string { return fmt.Sprintf("faultinject: %s fault at %d", e.Op, e.N) }
func (e *Error) Unwrap() error { return ErrInjected }

// Plan is a parsed fault plan. Methods are safe for concurrent use (wave
// workers consult it in parallel). The zero of *Plan — nil — is a valid
// plan that never fires.
type Plan struct {
	mu      sync.Mutex
	trigger map[string]int // op -> occurrence / wave index (1-based)
	count   map[string]int // op -> occurrences observed so far
}

// Parse builds a plan from spec (see the package comment for the grammar).
// Seeded "op:~max" triggers are resolved with seed. An empty spec yields a
// nil plan.
func Parse(spec string, seed int64) (*Plan, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	p := &Plan{trigger: make(map[string]int), count: make(map[string]int)}
	entries := strings.Split(spec, ",")
	// Seeded draws are resolved in sorted op order, not spec order, so two
	// spellings of the same plan fire identically.
	type seededEntry struct {
		op  string
		max int
	}
	var seeded []seededEntry
	for _, ent := range entries {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			continue
		}
		op, val, ok := strings.Cut(ent, ":")
		if !ok {
			return nil, fmt.Errorf("faultinject: entry %q: want op:n or op:~max", ent)
		}
		op = strings.TrimSpace(op)
		if !knownOps[op] {
			return nil, fmt.Errorf("faultinject: unknown op %q", op)
		}
		if _, dup := p.trigger[op]; dup {
			return nil, fmt.Errorf("faultinject: duplicate op %q", op)
		}
		val = strings.TrimSpace(val)
		if rest, rnd := strings.CutPrefix(val, "~"); rnd {
			max, err := strconv.Atoi(rest)
			if err != nil || max < 1 {
				return nil, fmt.Errorf("faultinject: entry %q: bad seeded bound", ent)
			}
			p.trigger[op] = 0 // reserved; resolved below
			seeded = append(seeded, seededEntry{op: op, max: max})
			continue
		}
		n, err := strconv.Atoi(val)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("faultinject: entry %q: trigger must be a positive integer", ent)
		}
		p.trigger[op] = n
	}
	if len(seeded) > 0 {
		sort.Slice(seeded, func(i, j int) bool { return seeded[i].op < seeded[j].op })
		rng := rand.New(rand.NewSource(seed))
		for _, se := range seeded {
			p.trigger[se.op] = 1 + rng.Intn(se.max)
		}
	}
	if len(p.trigger) == 0 {
		return nil, nil
	}
	return p, nil
}

// Hit counts one occurrence of op and reports whether the plan fires on it
// (occurrence-triggered ops: lp-solve, ckpt-write). It fires exactly once.
func (p *Plan) Hit(op string) (int, bool) {
	if p == nil {
		return 0, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	n, ok := p.trigger[op]
	if !ok {
		return 0, false
	}
	p.count[op]++
	return p.count[op], p.count[op] == n
}

// At reports whether the plan fires op at index k (index-triggered ops:
// worker-panic, deadline). Unlike Hit it does not count, so it may be
// consulted any number of times per wave.
func (p *Plan) At(op string, k int) bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	n, ok := p.trigger[op]
	return ok && n == k
}

// Trigger exposes the resolved firing point of op (0 when the plan has
// none) — for tests and log lines.
func (p *Plan) Trigger(op string) int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.trigger[op]
}
