package faultinject

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// echoBackend answers every request 200 with a fixed body, counting hits.
func echoBackend(t *testing.T) (*httptest.Server, *int) {
	t.Helper()
	hits := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		io.WriteString(w, "backend ok")
	}))
	t.Cleanup(ts.Close)
	return ts, &hits
}

func proxyFor(t *testing.T, target string, spec string) (*Proxy, *httptest.Server) {
	t.Helper()
	plan, err := Parse(spec, 1)
	if err != nil {
		t.Fatalf("parse %q: %v", spec, err)
	}
	p, err := NewProxy(target, plan)
	if err != nil {
		t.Fatalf("NewProxy: %v", err)
	}
	ts := httptest.NewServer(p)
	t.Cleanup(ts.Close)
	return p, ts
}

func TestProxyPassesThroughWithNilPlan(t *testing.T) {
	backend, hits := echoBackend(t)
	p, err := NewProxy(backend.URL, nil)
	if err != nil {
		t.Fatalf("NewProxy: %v", err)
	}
	front := httptest.NewServer(p)
	defer front.Close()
	for i := 0; i < 3; i++ {
		resp, err := http.Get(front.URL + "/x")
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 || string(body) != "backend ok" {
			t.Fatalf("get %d: %d %q", i, resp.StatusCode, body)
		}
	}
	if *hits != 3 || p.Requests() != 3 || p.Injected() != 0 {
		t.Fatalf("hits=%d requests=%d injected=%d, want 3/3/0", *hits, p.Requests(), p.Injected())
	}
}

func TestProxyInjects503WithoutRetryAfter(t *testing.T) {
	backend, hits := echoBackend(t)
	p, front := proxyFor(t, backend.URL, "http-503:2")
	for i := 1; i <= 3; i++ {
		resp, err := http.Get(front.URL + "/x")
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		want := 200
		if i == 2 {
			want = http.StatusServiceUnavailable
			if ra := resp.Header.Get("Retry-After"); ra != "" {
				t.Fatalf("injected 503 carries Retry-After %q; the proxy must not imitate the daemon's header", ra)
			}
		}
		if resp.StatusCode != want {
			t.Fatalf("request %d: status %d, want %d", i, resp.StatusCode, want)
		}
	}
	if *hits != 2 {
		t.Fatalf("backend saw %d requests, want 2 (the 503 one must not be forwarded)", *hits)
	}
	if p.Injected() != 1 {
		t.Fatalf("injected = %d, want 1", p.Injected())
	}
}

func TestProxyDropAndResetKillTheConnection(t *testing.T) {
	for _, tc := range []struct{ name, spec string }{
		{"drop", "http-drop:2"},
		{"reset", "http-reset:2"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			backend, hits := echoBackend(t)
			_, front := proxyFor(t, backend.URL, tc.spec)
			// Fresh client per request: a killed keep-alive connection must
			// not bleed into the next probe.
			get := func() (*http.Response, error) {
				c := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
				return c.Get(front.URL + "/x")
			}
			if resp, err := get(); err != nil || resp.StatusCode != 200 {
				t.Fatalf("request 1: %v %v", resp, err)
			} else {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			if resp, err := get(); err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				t.Fatalf("request 2 succeeded with %d; the connection should have been killed", resp.StatusCode)
			}
			if resp, err := get(); err != nil || resp.StatusCode != 200 {
				t.Fatalf("request 3 after the fault: %v %v", resp, err)
			} else {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			if *hits != 2 {
				t.Fatalf("backend saw %d requests, want 2", *hits)
			}
		})
	}
}

func TestProxyLatencyDelaysThenForwards(t *testing.T) {
	backend, _ := echoBackend(t)
	p, front := proxyFor(t, backend.URL, "http-latency:1")
	p.Latency = 150 * time.Millisecond
	start := time.Now()
	resp, err := http.Get(front.URL + "/x")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("delayed request status %d, want 200", resp.StatusCode)
	}
	if d := time.Since(start); d < p.Latency {
		t.Fatalf("request completed in %s, want >= %s", d, p.Latency)
	}
}

func TestProxyAnswers502WhenTargetIsDown(t *testing.T) {
	backend, _ := echoBackend(t)
	dead := backend.URL
	backend.Close() // the port is now refused — a SIGKILLed daemon
	p, err := NewProxy(dead, nil)
	if err != nil {
		t.Fatalf("NewProxy: %v", err)
	}
	front := httptest.NewServer(p)
	defer front.Close()
	resp, err := http.Get(front.URL + "/x")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d, want 502", resp.StatusCode)
	}
}

func TestProxyPeriodic503(t *testing.T) {
	backend, hits := echoBackend(t)
	_, front := proxyFor(t, backend.URL, "http-503:%2")
	bad := 0
	for i := 1; i <= 6; i++ {
		resp, err := http.Get(front.URL + "/x")
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			bad++
		}
	}
	if bad != 3 || *hits != 3 {
		t.Fatalf("injected %d 503s, backend saw %d; want 3/3", bad, *hits)
	}
}

func TestNewProxyRejectsBadTarget(t *testing.T) {
	if _, err := NewProxy("://nope", nil); err == nil {
		t.Fatal("bad target URL accepted")
	}
}

// TestErrBadPlanDistinctFromErrInjected guards the two sentinels against
// collapsing: a plan that fails to parse must not read as an injected fault.
func TestErrBadPlanDistinctFromErrInjected(t *testing.T) {
	_, err := Parse("http-drop:zero", 0)
	if err == nil || errors.Is(err, ErrInjected) {
		t.Fatalf("parse error %v overlaps ErrInjected", err)
	}
}
