package faultinject

import "repro/internal/checkpoint"

// faultFS wraps a checkpoint.FS, failing WriteTemp on the plan's
// ckpt-write trigger. Rename and Remove pass through: the atomicity
// guarantee under test is that a failed write never disturbs the previous
// good snapshot.
type faultFS struct {
	inner checkpoint.FS
	plan  *Plan
}

// WrapFS returns an FS that injects the plan's checkpoint-write faults in
// front of inner (the OS when nil). A nil plan returns inner unchanged.
func WrapFS(inner checkpoint.FS, plan *Plan) checkpoint.FS {
	if inner == nil {
		inner = checkpoint.OSFS()
	}
	if plan == nil {
		return inner
	}
	return &faultFS{inner: inner, plan: plan}
}

func (f *faultFS) WriteTemp(dir, pattern string, data []byte) (string, error) {
	if n, fire := f.plan.Hit(OpCheckpointWrite); fire {
		return "", &Error{Op: OpCheckpointWrite, N: n}
	}
	return f.inner.WriteTemp(dir, pattern, data)
}

func (f *faultFS) Rename(oldpath, newpath string) error { return f.inner.Rename(oldpath, newpath) }
func (f *faultFS) Remove(path string) error             { return f.inner.Remove(path) }
