package checkpoint

import (
	"bytes"
	"testing"
)

// FuzzDecode asserts two properties over arbitrary input bytes: Decode never
// panics, and anything it accepts re-encodes to the identical byte string
// (the canonical-form invariant Writer.Save's self-check relies on).
func FuzzDecode(f *testing.F) {
	if data, err := Encode(sampleBnB()); err == nil {
		f.Add(data)
	}
	if data, err := Encode(sampleBlackbox()); err == nil {
		f.Add(data)
	}
	f.Add([]byte("GAPCKP"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			return
		}
		out, err := Encode(s)
		if err != nil {
			t.Fatalf("accepted snapshot failed to re-encode: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("accepted snapshot is not canonical: %d in, %d out", len(data), len(out))
		}
	})
}
