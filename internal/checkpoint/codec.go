package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
)

// Wire format (little endian throughout):
//
//	magic "GAPCKP" | version byte | kind byte | payload | fnv64a checksum
//
// Floats are stored as raw IEEE-754 bits so the solver's ±Inf sentinels and
// any NaN survive the round trip exactly. Integers use varints; slices and
// strings are length-prefixed. The checksum covers every preceding byte, so
// a torn or bit-flipped file fails loudly instead of resuming a wrong
// search.
const (
	magic   = "GAPCKP"
	version = 1

	kindBnB      = 1
	kindBlackbox = 2
	kindQueue    = 3

	// maxLen bounds every decoded length prefix, so a corrupted count cannot
	// drive a huge allocation before the checksum is even reachable.
	maxLen = 1 << 28
)

// ErrCorrupt is wrapped by every decode failure caused by malformed bytes
// (as opposed to an unsupported version).
var ErrCorrupt = errors.New("checkpoint: corrupt snapshot")

func corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

type encoder struct{ buf []byte }

func (e *encoder) u8(v byte)   { e.buf = append(e.buf, v) }
func (e *encoder) uv(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *encoder) iv(v int64)  { e.buf = binary.AppendVarint(e.buf, v) }
func (e *encoder) f64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}
func (e *encoder) u64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *encoder) boolean(b bool) {
	if b {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

func (e *encoder) str(s string) {
	e.uv(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *encoder) blob(b []byte) {
	e.uv(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

func (e *encoder) f64s(v []float64) {
	e.uv(uint64(len(v)))
	for _, x := range v {
		e.f64(x)
	}
}

type decoder struct {
	buf []byte
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = corrupt(format, args...)
	}
}

func (d *decoder) u8() byte {
	if d.err != nil {
		return 0
	}
	if len(d.buf) < 1 {
		d.fail("truncated byte")
		return 0
	}
	v := d.buf[0]
	d.buf = d.buf[1:]
	return v
}

func (d *decoder) uv() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.fail("truncated uvarint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) iv() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		d.fail("truncated varint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if len(d.buf) < 8 {
		d.fail("truncated u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf)
	d.buf = d.buf[8:]
	return v
}

func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *decoder) boolean() bool {
	switch d.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail("bad bool byte")
		return false
	}
}

// length reads a slice-length prefix, bounding it both by the sanity cap and
// by the bytes actually remaining (each element takes >= min bytes).
func (d *decoder) length(min int) int {
	n := d.uv()
	if d.err != nil {
		return 0
	}
	if n > maxLen || (min > 0 && n > uint64(len(d.buf)/min)) {
		d.fail("implausible length %d", n)
		return 0
	}
	return int(n)
}

func (d *decoder) str() string {
	n := d.length(1)
	if d.err != nil {
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}

func (d *decoder) blob() []byte {
	n := d.length(1)
	if d.err != nil || n == 0 {
		return nil
	}
	b := append([]byte(nil), d.buf[:n]...)
	d.buf = d.buf[n:]
	return b
}

func (d *decoder) f64s() []float64 {
	n := d.length(8)
	if d.err != nil || n == 0 {
		return nil
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = d.f64()
	}
	return v
}

func encodeTrace(e *encoder, tr []TracePoint) {
	e.uv(uint64(len(tr)))
	for _, p := range tr {
		e.iv(p.ElapsedNanos)
		e.f64(p.Objective)
		e.f64(p.Bound)
		e.iv(p.Nodes)
		e.str(p.Source)
	}
}

func decodeTrace(d *decoder) []TracePoint {
	n := d.length(4)
	if d.err != nil || n == 0 {
		return nil
	}
	tr := make([]TracePoint, n)
	for i := range tr {
		tr[i] = TracePoint{
			ElapsedNanos: d.iv(),
			Objective:    d.f64(),
			Bound:        d.f64(),
			Nodes:        d.iv(),
			Source:       d.str(),
		}
	}
	return tr
}

// Encode serializes s. Exactly one of s.BnB / s.Blackbox / s.Queue must be
// set.
func Encode(s *Snapshot) ([]byte, error) {
	if s == nil {
		return nil, errors.New("checkpoint: nil snapshot")
	}
	e := &encoder{buf: make([]byte, 0, 1024)}
	e.buf = append(e.buf, magic...)
	e.u8(version)
	switch {
	case s.BnB != nil && s.Blackbox == nil && s.Queue == nil:
		e.u8(kindBnB)
		encodeBnB(e, s.BnB)
	case s.Blackbox != nil && s.BnB == nil && s.Queue == nil:
		e.u8(kindBlackbox)
		encodeBlackbox(e, s.Blackbox)
	case s.Queue != nil && s.BnB == nil && s.Blackbox == nil:
		e.u8(kindQueue)
		encodeQueue(e, s.Queue)
	default:
		return nil, errors.New("checkpoint: snapshot must hold exactly one of BnB / Blackbox / Queue")
	}
	h := fnv.New64a()
	h.Write(e.buf)
	e.u64(h.Sum64())
	return e.buf, nil
}

func encodeQueue(e *encoder, st *QueueState) {
	e.uv(st.NextSeq)
	e.uv(uint64(len(st.Jobs)))
	for _, j := range st.Jobs {
		e.str(j.ID)
		e.uv(j.Seq)
		e.u8(byte(j.State))
		e.u64(j.Key)
		e.str(j.Spec)
		e.iv(j.EnqueuedUnixNano)
	}
}

func decodeQueue(d *decoder) *QueueState {
	st := &QueueState{NextSeq: d.uv()}
	n := d.length(4)
	if n > 0 && d.err == nil {
		st.Jobs = make([]JobRecord, n)
		for i := range st.Jobs {
			st.Jobs[i] = JobRecord{
				ID:               d.str(),
				Seq:              d.uv(),
				State:            JobState(d.u8()),
				Key:              d.u64(),
				Spec:             d.str(),
				EnqueuedUnixNano: d.iv(),
			}
			if d.err != nil {
				return st
			}
		}
	}
	return st
}

func encodeBnB(e *encoder, st *BnBState) {
	e.u64(st.Fingerprint)
	e.uv(st.Waves)
	e.uv(st.NextID)
	e.iv(st.Nodes)
	e.iv(st.LPSolves)
	e.iv(st.LPIters)
	e.iv(st.WarmLPSolves)
	e.iv(st.WarmLPFallbacks)
	e.boolean(st.HasIncumbent)
	e.f64(st.Incumbent)
	e.f64s(st.IncumbentX)
	e.f64(st.BestBound)
	e.boolean(st.InfeasibleProven)
	e.iv(st.ElapsedNanos)
	e.uv(uint64(len(st.Frontier)))
	for _, nd := range st.Frontier {
		e.uv(nd.ID)
		e.f64(nd.Bound)
		e.iv(int64(nd.Depth))
		e.uv(uint64(len(nd.Overrides)))
		for _, ov := range nd.Overrides {
			e.iv(int64(ov.Var))
			e.f64(ov.Lo)
			e.f64(ov.Hi)
		}
		e.blob(nd.Basis)
	}
	encodeTrace(e, st.Trace)
}

func decodeBnB(d *decoder) *BnBState {
	st := &BnBState{
		Fingerprint:     d.u64(),
		Waves:           d.uv(),
		NextID:          d.uv(),
		Nodes:           d.iv(),
		LPSolves:        d.iv(),
		LPIters:         d.iv(),
		WarmLPSolves:    d.iv(),
		WarmLPFallbacks: d.iv(),
		HasIncumbent:    d.boolean(),
		Incumbent:       d.f64(),
	}
	st.IncumbentX = d.f64s()
	st.BestBound = d.f64()
	st.InfeasibleProven = d.boolean()
	st.ElapsedNanos = d.iv()
	n := d.length(4)
	if n > 0 && d.err == nil {
		st.Frontier = make([]FrontierNode, n)
		for i := range st.Frontier {
			nd := FrontierNode{ID: d.uv(), Bound: d.f64(), Depth: int32(d.iv())}
			no := d.length(4)
			if no > 0 && d.err == nil {
				nd.Overrides = make([]Override, no)
				for j := range nd.Overrides {
					nd.Overrides[j] = Override{Var: int32(d.iv()), Lo: d.f64(), Hi: d.f64()}
				}
			}
			nd.Basis = d.blob()
			st.Frontier[i] = nd
			if d.err != nil {
				return st
			}
		}
	}
	st.Trace = decodeTrace(d)
	return st
}

func encodeBlackbox(e *encoder, st *BlackboxState) {
	e.u64(st.Fingerprint)
	e.str(st.Method)
	e.uv(uint64(len(st.Seeds)))
	for _, s := range st.Seeds {
		e.iv(s)
	}
	e.iv(st.ElapsedNanos)
	e.uv(uint64(len(st.Completed)))
	for _, r := range st.Completed {
		e.iv(r.Index)
		e.f64(r.Gap)
		e.iv(r.Evals)
		e.boolean(r.HasBest)
		e.f64s(r.Best)
		encodeTrace(e, r.Trace)
	}
}

func decodeBlackbox(d *decoder) *BlackboxState {
	st := &BlackboxState{Fingerprint: d.u64(), Method: d.str()}
	ns := d.length(1)
	if ns > 0 && d.err == nil {
		st.Seeds = make([]int64, ns)
		for i := range st.Seeds {
			st.Seeds[i] = d.iv()
		}
	}
	st.ElapsedNanos = d.iv()
	nc := d.length(4)
	if nc > 0 && d.err == nil {
		st.Completed = make([]RestartState, nc)
		for i := range st.Completed {
			st.Completed[i] = RestartState{
				Index:   d.iv(),
				Gap:     d.f64(),
				Evals:   d.iv(),
				HasBest: d.boolean(),
				Best:    d.f64s(),
				Trace:   decodeTrace(d),
			}
			if d.err != nil {
				return st
			}
		}
	}
	return st
}

// Decode parses bytes produced by Encode, verifying magic, version, and the
// trailing checksum before trusting any payload field.
func Decode(data []byte) (*Snapshot, error) {
	if len(data) < len(magic)+2+8 {
		return nil, corrupt("short file (%d bytes)", len(data))
	}
	if string(data[:len(magic)]) != magic {
		return nil, corrupt("bad magic")
	}
	body, sum := data[:len(data)-8], binary.LittleEndian.Uint64(data[len(data)-8:])
	h := fnv.New64a()
	h.Write(body)
	if h.Sum64() != sum {
		return nil, corrupt("checksum mismatch")
	}
	d := &decoder{buf: body[len(magic):]}
	ver := d.u8()
	if ver != version {
		return nil, fmt.Errorf("checkpoint: unsupported version %d (want %d)", ver, version)
	}
	kind := d.u8()
	s := &Snapshot{}
	switch kind {
	case kindBnB:
		s.BnB = decodeBnB(d)
	case kindBlackbox:
		s.Blackbox = decodeBlackbox(d)
	case kindQueue:
		s.Queue = decodeQueue(d)
	default:
		return nil, corrupt("unknown kind %d", kind)
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.buf) != 0 {
		return nil, corrupt("%d trailing bytes", len(d.buf))
	}
	return s, nil
}
