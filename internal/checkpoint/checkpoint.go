// Package checkpoint persists in-flight search state so a killed solver can
// resume and finish with the bit-identical answer it would have produced
// uninterrupted. It knows nothing about LPs or branching: it stores the two
// state shapes the solvers export — a branch-and-bound wave snapshot and a
// black-box restart ledger — in a versioned, checksummed binary encoding
// (JSON is ruled out by the ±Inf sentinels that are legitimate solver state),
// and writes them atomically via temp-file + rename so a crash mid-write can
// never tear the previous good snapshot.
//
// The filesystem is injected through the FS interface, which is also the
// seam the deterministic fault injector (internal/faultinject) wraps to
// exercise checkpoint-write failures.
package checkpoint

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
)

// Snapshot is one persisted search state: exactly one of the fields is
// non-nil, matching the solver that wrote it.
type Snapshot struct {
	BnB      *BnBState
	Blackbox *BlackboxState
	// Queue is the gap-search daemon's job queue (cmd/gapserved): the
	// admission ledger that survives restarts so queued and in-flight jobs
	// are re-run (and resumed from their own BnB snapshots) after a crash
	// or drain.
	Queue *QueueState
}

// Override is one branch-and-bound bound fixing, keyed by the LP variable
// index. Overrides are stored sorted by Var so encoding is deterministic.
type Override struct {
	Var    int32
	Lo, Hi float64
}

// FrontierNode is one open node of the branch-and-bound heap. Basis is the
// lp.Basis wire form from (*lp.Basis).MarshalBinary, or nil when the node
// carries no warm-start snapshot.
type FrontierNode struct {
	ID        uint64
	Bound     float64
	Depth     int32
	Overrides []Override
	Basis     []byte
}

// TracePoint mirrors the solvers' incumbent-trace entries (milp.TracePoint
// and blackbox.TracePoint project onto it) so a resumed run re-emits a
// seamless trace.
type TracePoint struct {
	ElapsedNanos int64
	Objective    float64
	Bound        float64
	Nodes        int64
	Source       string
}

// BnBState is everything the wave-based branch and bound needs to continue
// exactly where it stopped: the incumbent, the open-node frontier with
// warm-start bases, the effort counters, and the wave cursor. Incumbent and
// BestBound are in the solver's internal score space (dir * objective).
//
// Portability contract: the state pins only what determines the explored
// tree — the model shape and the resolved Batch/DepthFirst (via
// Fingerprint). It deliberately does NOT pin Workers, the LP engine, the
// pricing rule, or the warm-start flag: all of those change how node
// relaxations are computed, never their answers, so a snapshot written
// under `-engine dense -workers 4` resumes under `-engine sparse
// -workers 1` (or any other combination) and still replays to the
// bit-identical incumbent, bound, and node count of the uninterrupted run.
// The frontier's warm-start basis blobs are engine-portable for the same
// reason (lp's basis wire codec round-trips across engines); an unusable
// blob only degrades that node to a cold solve. Sealed by
// TestCrossEngineResume in internal/milp.
type BnBState struct {
	// Fingerprint hashes the model shape and the tree-determining options
	// (resolved batch, depth-first flag); Resume refuses a state whose
	// fingerprint does not match the model it is handed.
	Fingerprint      uint64
	Waves            uint64
	NextID           uint64
	Nodes            int64
	LPSolves         int64
	LPIters          int64
	WarmLPSolves     int64
	WarmLPFallbacks  int64
	HasIncumbent     bool
	Incumbent        float64
	IncumbentX       []float64
	BestBound        float64
	InfeasibleProven bool
	ElapsedNanos     int64
	Frontier         []FrontierNode
	Trace            []TracePoint
}

// RestartState is one completed black-box restart: its index in the
// pre-drawn seed sequence, the best point it found, and its trace.
type RestartState struct {
	Index   int64
	Gap     float64
	Evals   int64
	HasBest bool
	Best    []float64
	Trace   []TracePoint
}

// BlackboxState is the restart ledger of a black-box search: the full
// pre-drawn per-restart seed sequence plus every completed restart. Resume
// re-runs only the missing indices and merges exactly as the uninterrupted
// engine would.
type BlackboxState struct {
	Fingerprint  uint64
	Method       string
	Seeds        []int64
	ElapsedNanos int64
	Completed    []RestartState
}

// JobState enumerates a queued job's lifecycle in the persisted queue.
// Running jobs are persisted as JobQueued: after a crash or drain they are
// re-admitted and resume from their own checkpoint file, which is exactly
// the semantics of a job that never started.
type JobState uint8

const (
	// JobQueued means the job is waiting for (or, in the live daemon,
	// currently occupying) a worker; it re-runs after a restart.
	JobQueued JobState = iota
	// JobDone means a result was persisted to the results store; kept in
	// the ledger so restarts preserve job IDs and their terminal status.
	JobDone
	// JobFailed means the job errored terminally (bad spec survived
	// admission, or the solver returned an error); it does not re-run.
	JobFailed
)

// JobRecord is one job in the daemon's persisted queue. Spec is the job's
// canonical JSON (opaque to this package), Key the solve cache key its
// results store entry is filed under, Seq the admission order (restart
// re-enqueues in Seq order so the replayed schedule matches the original),
// and EnqueuedUnixNano the wall-clock admission time (informational only).
type JobRecord struct {
	ID               string
	Seq              uint64
	State            JobState
	Key              uint64
	Spec             string
	EnqueuedUnixNano int64
}

// QueueState is the daemon's durable job ledger: the admission sequence
// counter and every job it has accepted, in admission order.
type QueueState struct {
	NextSeq uint64
	Jobs    []JobRecord
}

// MismatchError reports a checkpoint that structurally cannot resume the
// search it was handed to (different model, batch, or search options).
type MismatchError struct {
	What string
	Want uint64
	Got  uint64
}

func (e *MismatchError) Error() string {
	return fmt.Sprintf("checkpoint: %s mismatch: snapshot %#x, search %#x", e.What, e.Want, e.Got)
}

// FS abstracts the two filesystem operations the atomic writer needs. The
// default implementation is the OS; internal/faultinject wraps it to inject
// deterministic write failures.
type FS interface {
	// WriteTemp creates a uniquely named file in dir, writes data, syncs and
	// closes it, returning the file's path.
	WriteTemp(dir, pattern string, data []byte) (string, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a stray temp file after a failed rename (best effort).
	Remove(path string) error
}

type osFS struct{}

func (osFS) WriteTemp(dir, pattern string, data []byte) (string, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return "", err
	}
	name := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		return name, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return name, err
	}
	return name, f.Close()
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(path string) error             { return os.Remove(path) }

// OSFS returns the real-filesystem implementation of FS.
func OSFS() FS { return osFS{} }

// Writer saves snapshots to a fixed path, atomically: encode, self-check the
// round trip, write a temp file next to the target, then rename over it. A
// crash or injected failure at any point leaves either the previous good
// snapshot or the new one — never a torn file.
type Writer struct {
	Path string
	FS   FS // nil selects the OS
}

// Save atomically persists s to w.Path.
func (w *Writer) Save(s *Snapshot) error {
	fs := w.FS
	if fs == nil {
		fs = osFS{}
	}
	data, err := Encode(s)
	if err != nil {
		return err
	}
	// Round-trip self-check: the snapshot must decode and re-encode to the
	// same bytes before it is allowed to replace the previous good file.
	back, err := Decode(data)
	if err != nil {
		return fmt.Errorf("checkpoint: self-check decode: %w", err)
	}
	data2, err := Encode(back)
	if err != nil {
		return fmt.Errorf("checkpoint: self-check re-encode: %w", err)
	}
	if !bytes.Equal(data, data2) {
		return fmt.Errorf("checkpoint: self-check round trip diverged (%d vs %d bytes)", len(data), len(data2))
	}
	tmp, err := fs.WriteTemp(filepath.Dir(w.Path), ".ckpt-*", data)
	if err != nil {
		if tmp != "" {
			fs.Remove(tmp)
		}
		return fmt.Errorf("checkpoint: write: %w", err)
	}
	if err := fs.Rename(tmp, w.Path); err != nil {
		fs.Remove(tmp)
		return fmt.Errorf("checkpoint: rename: %w", err)
	}
	return nil
}

// Load reads and decodes a snapshot written by Writer.Save.
func Load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}
