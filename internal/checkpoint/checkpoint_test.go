package checkpoint

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func sampleBnB() *Snapshot {
	return &Snapshot{BnB: &BnBState{
		Fingerprint:      0xdeadbeefcafe,
		Waves:            17,
		NextID:           41,
		Nodes:            120,
		LPSolves:         130,
		LPIters:          4096,
		WarmLPSolves:     100,
		WarmLPFallbacks:  3,
		HasIncumbent:     true,
		Incumbent:        42.5,
		IncumbentX:       []float64{0, 1, 0.25, math.SmallestNonzeroFloat64},
		BestBound:        math.Inf(1), // legitimate solver state: root bound
		InfeasibleProven: false,
		ElapsedNanos:     987654321,
		Frontier: []FrontierNode{
			{ID: 3, Bound: 50.25, Depth: 2,
				Overrides: []Override{{Var: 1, Lo: 0, Hi: 0}, {Var: 4, Lo: 1, Hi: 1}},
				Basis:     []byte{1, 2, 3}},
			{ID: 9, Bound: math.Inf(1), Depth: 1}, // unbounded parent, no basis
		},
		Trace: []TracePoint{
			{ElapsedNanos: 5, Objective: 1, Bound: math.Inf(1), Nodes: 1, Source: "seed"},
			{ElapsedNanos: 50, Objective: 42.5, Bound: 44, Nodes: 7, Source: "leaf"},
		},
	}}
}

func sampleBlackbox() *Snapshot {
	return &Snapshot{Blackbox: &BlackboxState{
		Fingerprint:  7,
		Method:       "hill",
		Seeds:        []int64{11, -22, 33},
		ElapsedNanos: 1234,
		Completed: []RestartState{
			{Index: 0, Gap: 3.5, Evals: 200, HasBest: true, Best: []float64{1, 2},
				Trace: []TracePoint{{ElapsedNanos: 9, Objective: 3.5, Nodes: 12}}},
			{Index: 2, Gap: math.Inf(-1), Evals: 5}, // restart that never found a feasible point
		},
	}}
}

func TestRoundTripBnB(t *testing.T) {
	data, err := Encode(sampleBnB())
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	data2, err := Encode(back)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatalf("round trip diverged: %d vs %d bytes", len(data), len(data2))
	}
	st := back.BnB
	if st == nil || back.Blackbox != nil {
		t.Fatalf("wrong snapshot kind: %+v", back)
	}
	if st.Waves != 17 || st.NextID != 41 || !st.HasIncumbent || st.Incumbent != 42.5 {
		t.Fatalf("fields lost: %+v", st)
	}
	if !math.IsInf(st.BestBound, 1) {
		t.Fatalf("+Inf bound did not survive: %v", st.BestBound)
	}
	if len(st.Frontier) != 2 || len(st.Frontier[0].Overrides) != 2 || string(st.Frontier[0].Basis) != "\x01\x02\x03" {
		t.Fatalf("frontier lost: %+v", st.Frontier)
	}
	if len(st.Trace) != 2 || st.Trace[1].Source != "leaf" {
		t.Fatalf("trace lost: %+v", st.Trace)
	}
}

func TestRoundTripBlackbox(t *testing.T) {
	data, err := Encode(sampleBlackbox())
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	st := back.Blackbox
	if st == nil || back.BnB != nil {
		t.Fatalf("wrong snapshot kind: %+v", back)
	}
	if st.Method != "hill" || len(st.Seeds) != 3 || st.Seeds[1] != -22 {
		t.Fatalf("fields lost: %+v", st)
	}
	if len(st.Completed) != 2 || !math.IsInf(st.Completed[1].Gap, -1) {
		t.Fatalf("-Inf gap did not survive: %+v", st.Completed)
	}
}

func TestEncodeRejectsBadShapes(t *testing.T) {
	if _, err := Encode(&Snapshot{}); err == nil {
		t.Fatal("empty snapshot encoded")
	}
	if _, err := Encode(&Snapshot{BnB: &BnBState{}, Blackbox: &BlackboxState{}}); err == nil {
		t.Fatal("double-kind snapshot encoded")
	}
	if _, err := Encode(nil); err == nil {
		t.Fatal("nil snapshot encoded")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	data, err := Encode(sampleBnB())
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	// Truncation at every prefix length must error, never panic.
	for n := 0; n < len(data); n++ {
		if _, err := Decode(data[:n]); err == nil {
			t.Fatalf("truncated snapshot (%d bytes) decoded", n)
		}
	}
	// A flipped byte anywhere must fail the checksum (or a structural check).
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x40
		if _, err := Decode(mut); err == nil {
			t.Fatalf("corrupt snapshot (byte %d flipped) decoded", i)
		}
	}
}

func TestWriterAtomicReplace(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.ckpt")
	w := &Writer{Path: path}
	if err := w.Save(sampleBnB()); err != nil {
		t.Fatalf("save: %v", err)
	}
	first, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	second := sampleBlackbox()
	if err := w.Save(second); err != nil {
		t.Fatalf("save 2: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if got.Blackbox == nil {
		t.Fatalf("second save not visible")
	}
	if cur, _ := os.ReadFile(path); bytes.Equal(cur, first) {
		t.Fatal("file not replaced")
	}
	// No stray temp files may survive a successful save.
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("stray files left behind: %v", entries)
	}
}

type failFS struct {
	inner FS
	mode  string // "write" or "rename"
}

func (f failFS) WriteTemp(dir, pattern string, data []byte) (string, error) {
	if f.mode == "write" {
		return "", errors.New("disk full")
	}
	return f.inner.WriteTemp(dir, pattern, data)
}
func (f failFS) Rename(o, n string) error {
	if f.mode == "rename" {
		return errors.New("rename denied")
	}
	return f.inner.Rename(o, n)
}
func (f failFS) Remove(p string) error { return f.inner.Remove(p) }

func TestWriterFailedSaveKeepsPreviousSnapshot(t *testing.T) {
	for _, mode := range []string{"write", "rename"} {
		t.Run(mode, func(t *testing.T) {
			dir := t.TempDir()
			path := filepath.Join(dir, "state.ckpt")
			good := &Writer{Path: path}
			if err := good.Save(sampleBnB()); err != nil {
				t.Fatalf("seed save: %v", err)
			}
			bad := &Writer{Path: path, FS: failFS{inner: OSFS(), mode: mode}}
			if err := bad.Save(sampleBlackbox()); err == nil {
				t.Fatal("failed save reported success")
			}
			got, err := Load(path)
			if err != nil || got.BnB == nil {
				t.Fatalf("previous snapshot damaged: %v %+v", err, got)
			}
			entries, _ := os.ReadDir(dir)
			if len(entries) != 1 {
				t.Fatalf("stray files left behind after failed save: %v", entries)
			}
		})
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "absent.ckpt")); err == nil {
		t.Fatal("loading a missing file succeeded")
	}
}

func TestMismatchErrorMessage(t *testing.T) {
	err := &MismatchError{What: "search fingerprint", Want: 1, Got: 2}
	if err.Error() == "" {
		t.Fatal("empty message")
	}
}
