package checkpoint

import (
	"bytes"
	"path/filepath"
	"testing"
)

func sampleQueue() *Snapshot {
	return &Snapshot{Queue: &QueueState{
		NextSeq: 5,
		Jobs: []JobRecord{
			{ID: "j000001", Seq: 1, State: JobDone, Key: 0xfeedface, Spec: `{"topology":"b4","heuristic":"dp"}`, EnqueuedUnixNano: 1700000000000000001},
			{ID: "j000002", Seq: 2, State: JobQueued, Key: 0x1234, Spec: `{"topology":"swan","heuristic":"pop"}`, EnqueuedUnixNano: 1700000000000000002},
			{ID: "j000003", Seq: 3, State: JobFailed, Key: 0, Spec: "{}", EnqueuedUnixNano: -1},
			{ID: "j000004", Seq: 4, State: JobQueued, Key: ^uint64(0), Spec: ""},
		},
	}}
}

func TestRoundTripQueue(t *testing.T) {
	data, err := Encode(sampleQueue())
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	data2, err := Encode(back)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatalf("round trip diverged: %d vs %d bytes", len(data), len(data2))
	}
	st := back.Queue
	if st == nil || back.BnB != nil || back.Blackbox != nil {
		t.Fatalf("wrong snapshot kind: %+v", back)
	}
	if st.NextSeq != 5 || len(st.Jobs) != 4 {
		t.Fatalf("fields lost: %+v", st)
	}
	want := sampleQueue().Queue
	for i, j := range st.Jobs {
		if j != want.Jobs[i] {
			t.Fatalf("job %d: got %+v, want %+v", i, j, want.Jobs[i])
		}
	}
}

// A queue snapshot must be writable and loadable through the same atomic
// Writer path the solver snapshots use.
func TestQueueWriterRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "queue.ckpt")
	w := &Writer{Path: path}
	if err := w.Save(sampleQueue()); err != nil {
		t.Fatalf("save: %v", err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if back.Queue == nil || back.Queue.NextSeq != 5 || len(back.Queue.Jobs) != 4 {
		t.Fatalf("queue lost through writer: %+v", back)
	}
	// Overwrite with a mutated ledger: the atomic replace must win.
	mut := sampleQueue()
	mut.Queue.Jobs[1].State = JobDone
	mut.Queue.NextSeq = 6
	if err := w.Save(mut); err != nil {
		t.Fatalf("second save: %v", err)
	}
	back, err = Load(path)
	if err != nil {
		t.Fatalf("second load: %v", err)
	}
	if back.Queue.NextSeq != 6 || back.Queue.Jobs[1].State != JobDone {
		t.Fatalf("second snapshot not visible: %+v", back.Queue)
	}
}

func TestEncodeRejectsMixedQueueShapes(t *testing.T) {
	if _, err := Encode(&Snapshot{Queue: &QueueState{}, BnB: &BnBState{}}); err == nil {
		t.Fatal("queue+bnb snapshot encoded")
	}
	if _, err := Encode(&Snapshot{Queue: &QueueState{}, Blackbox: &BlackboxState{}}); err == nil {
		t.Fatal("queue+blackbox snapshot encoded")
	}
}
