package core

import (
	"math"
	"testing"

	"repro/internal/blackbox"
	"repro/internal/demand"
	"repro/internal/mcf"
	"repro/internal/milp"
	"repro/internal/topology"
)

// gridMax exhaustively evaluates the black-box gap oracle on the grid
// levels^n and returns the best gap and the demand vector achieving it.
// On tiny topologies the grid is small enough to be a ground-truth oracle
// for "the KKT search must do at least this well".
func gridMax(t *testing.T, gap blackbox.GapFunc, n int, levels []float64) (float64, []float64) {
	t.Helper()
	best := math.Inf(-1)
	var bestD []float64
	d := make([]float64, n)
	var walk func(k int)
	walk = func(k int) {
		if k == n {
			g, err := gap(d)
			if err != nil {
				t.Fatalf("grid eval at %v: %v", d, err)
			}
			if g > best {
				best = g
				bestD = append([]float64(nil), d...)
			}
			return
		}
		for _, v := range levels {
			d[k] = v
			walk(k + 1)
		}
	}
	walk(0)
	return best, bestD
}

// checkDPGapVerified recomputes OPT and DP at demands with the direct
// solvers and asserts the claimed gap matches — both search methods must
// produce mcf-verified feasible witnesses, not just model claims.
func checkDPGapVerified(t *testing.T, inst *mcf.Instance, threshold float64, demands []float64, claimed float64) {
	t.Helper()
	at := inst.WithVolumes(demands)
	dp, err := mcf.SolveDemandPinning(at, threshold)
	if err != nil {
		t.Fatalf("verifying DP at %v: %v", demands, err)
	}
	opt, err := mcf.SolveMaxFlow(at)
	if err != nil {
		t.Fatalf("verifying OPT at %v: %v", demands, err)
	}
	if g := opt.Total - dp.Total; math.Abs(g-claimed) > 1e-5 {
		t.Fatalf("claimed gap %v but direct solvers give %v at %v", claimed, g, demands)
	}
}

// TestDifferentialKKTvsGridSearch is the differential harness: on tiny
// topologies the KKT-based white-box search must find a gap at least as
// large as an exhaustive black-box grid search (it optimizes over the whole
// continuous box, which contains every grid point), and both witnesses must
// verify against the direct mcf solvers. Run serial and 4-worker to pin the
// parallel solver to the same ground truth.
func TestDifferentialKKTvsGridSearch(t *testing.T) {
	cases := []struct {
		name      string
		g         *topology.Graph
		pairs     []demand.Pair
		paths     int
		threshold float64
	}{
		{"figure1", topology.Figure1(),
			[]demand.Pair{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 0, Dst: 2}}, 2, 50},
		{"line3", topology.Line(3),
			[]demand.Pair{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 0, Dst: 2}}, 1, 30},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			set := demand.NewSet(tc.pairs)
			inst, err := mcf.NewInstance(tc.g, set, tc.paths)
			if err != nil {
				t.Fatal(err)
			}
			// Exhaustive oracle over {0, T/2, T, (T+100)/2, 100}^n.
			levels := []float64{0, tc.threshold / 2, tc.threshold, (tc.threshold + 100) / 2, 100}
			oracle := blackbox.DPGap(inst, tc.threshold)
			gridGap, gridD := gridMax(t, oracle, len(tc.pairs), levels)
			if !math.IsInf(gridGap, -1) {
				checkDPGapVerified(t, inst, tc.threshold, gridD, gridGap)
			}

			for _, workers := range []int{1, 4} {
				pr := &DPGapProblem{Inst: inst, Threshold: tc.threshold,
					Input: InputConstraints{MaxDemand: 100}}
				res, err := pr.Solve(milp.Options{Workers: workers})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if res.Solver.Status != milp.StatusOptimal {
					t.Fatalf("workers=%d: status %v", workers, res.Solver.Status)
				}
				// The white-box optimum dominates any grid point.
				if res.Gap < gridGap-1e-6 {
					t.Fatalf("workers=%d: KKT gap %v below exhaustive grid gap %v (grid witness %v)",
						workers, res.Gap, gridGap, gridD)
				}
				checkDPGapVerified(t, inst, tc.threshold, res.Demands, res.Gap)
			}
		})
	}
}

// TestCoreParallelMatchesSerial runs the full DP and POP meta problems with
// Workers=1 and Workers=4 and requires identical verified gaps — the
// acceptance criterion "same incumbent objective and final bound" at the
// meta-problem level, where Polish, seeds and tracing are all in play.
func TestCoreParallelMatchesSerial(t *testing.T) {
	g := topology.Figure1()
	set := demand.NewSet([]demand.Pair{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 0, Dst: 2}})
	inst, err := mcf.NewInstance(g, set, 2)
	if err != nil {
		t.Fatal(err)
	}
	pr := &DPGapProblem{Inst: inst, Threshold: 50, Input: InputConstraints{MaxDemand: 100}}
	serial, err := pr.Solve(milp.Options{Workers: 1, Batch: 4})
	if err != nil {
		t.Fatal(err)
	}
	par, err := pr.Solve(milp.Options{Workers: 4, Batch: 4})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Gap != par.Gap ||
		serial.Solver.Objective != par.Solver.Objective ||
		serial.Solver.Bound != par.Solver.Bound ||
		serial.Solver.Nodes != par.Solver.Nodes ||
		serial.Solver.LPSolves != par.Solver.LPSolves {
		t.Fatalf("fixed-batch runs diverged:\nserial gap=%v obj=%v bound=%v nodes=%d lp=%d\n"+
			"parallel gap=%v obj=%v bound=%v nodes=%d lp=%d",
			serial.Gap, serial.Solver.Objective, serial.Solver.Bound, serial.Solver.Nodes, serial.Solver.LPSolves,
			par.Gap, par.Solver.Objective, par.Solver.Bound, par.Solver.Nodes, par.Solver.LPSolves)
	}
}
