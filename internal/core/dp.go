package core

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/checkpoint"
	"repro/internal/kkt"
	"repro/internal/lp"
	"repro/internal/mcf"
	"repro/internal/milp"
	"repro/internal/obs"
)

// DPGapProblem searches for demands maximizing OPT - DemandPinning on an
// instance (Section 3.2, "Supporting DP").
type DPGapProblem struct {
	Inst *mcf.Instance
	// Threshold is DP's pinning threshold T_d (paper default: 5% of link
	// capacity).
	Threshold float64
	Input     InputConstraints
	// FullKKTOpt certifies the OPT side with a complete KKT system instead
	// of relying on the sign-aligned primal-only encoding — an ablation
	// that roughly doubles the SOS pair count without changing the answer.
	FullKKTOpt bool
	// DisablePolish turns off the primal heuristic that evaluates each
	// relaxation's demand vector with the direct solvers (ablation; without
	// it branch and bound must reach complementarity-feasible leaves on its
	// own before it has any incumbent).
	DisablePolish bool
	// BigMComplementarity, when > 0, replaces every complementarity pair
	// with big-M indicator rows using this constant — the second ablation.
	BigMComplementarity float64
	// LiteralEncoding uses the paper's Section-3.2 encoding verbatim: the
	// pinning "or" constraints become big-M rows *inside* the heuristic's
	// inner LP. The default instead decomposes the heuristic as
	// pinned-volume + certified residual max-flow (mathematically the same
	// optimum), whose pure 0/1 inner matrix admits proved dual bounds and
	// therefore much tighter relaxations. Ablation: BenchmarkAblationLiteral.
	LiteralEncoding bool
}

// dpBuild is the constructed meta model plus the handles needed to read a
// solution back.
type dpBuild struct {
	model   *milp.Model
	demands []lp.VarID
	pinned  []lp.VarID // z_k indicator: demand k is pinned
	optObj  lp.Expr
	heurObj lp.Expr
}

// Build constructs the single-shot optimization for (1) with OPT (3) and
// DemPinMaxFlow (5) as inner problems. Exported indirectly through
// ModelStats so Figure 6 can report sizes without solving.
func (pr *DPGapProblem) build() (*dpBuild, error) {
	n := pr.Inst.Demands.Len()
	pr.Input.fillHosePairs(pr.Inst.Demands)
	if err := pr.Input.validate(n); err != nil {
		return nil, err
	}
	p := lp.NewProblem("dp-gap", lp.Maximize)
	m := milp.NewModel(p)
	b := &dpBuild{model: m}
	b.demands = pr.Input.addDemandVars(m, n)

	// OPT side: FeasibleFlow with volumes = outer demand variables.
	optFlow := mcf.BuildInnerMaxFlow("opt", pr.Inst, func(k int) kkt.AffineRHS {
		return kkt.Var(b.demands[k], 1, 0)
	}, 1, nil, pr.Input.MaxDemand)
	optRes, err := kkt.Emit(m, optFlow.LP, pr.FullKKTOpt)
	if err != nil {
		return nil, err
	}
	b.optObj = optRes.Obj

	// Heuristic side. Pinning indicators z_k (z_k = 1 iff d_k <= T) are
	// shared by both encodings.
	b.pinned = make([]lp.VarID, n)
	for k := 0; k < n; k++ {
		b.pinned[k] = m.AddBinary(fmt.Sprintf("z%d", k))
	}
	if pr.LiteralEncoding {
		if err := pr.buildLiteralHeuristic(b); err != nil {
			return nil, err
		}
	} else {
		if err := pr.buildPhase2Heuristic(b); err != nil {
			return nil, err
		}
	}

	// Outer linking: z_k = 1 <=> d_k <= T (ambiguous only at d_k == T,
	// where the maximizer always chooses the true, pinned branch since
	// pinning can only lower the heuristic's value).
	m1 := math.Max(pr.Input.MaxDemand-pr.Threshold, 0)
	m0 := math.Max(pr.Threshold-pr.Input.MinDemand, 0)
	for k := 0; k < n; k++ {
		// z=1 => d <= T.
		p.AddConstraint(fmt.Sprintf("link.hi%d", k),
			lp.NewExpr().Add(b.demands[k], 1).Add(b.pinned[k], m1),
			lp.LE, pr.Threshold+m1)
		// z=0 => d >= T.
		p.AddConstraint(fmt.Sprintf("link.lo%d", k),
			lp.NewExpr().Add(b.demands[k], 1).Add(b.pinned[k], m0),
			lp.GE, pr.Threshold)
	}

	// Objective (1): maximize OPT value minus heuristic value.
	for _, t := range b.optObj.Terms {
		p.SetObj(t.Var, t.Coef)
	}
	for _, t := range b.heurObj.Terms {
		p.SetObj(t.Var, -t.Coef)
	}

	if pr.BigMComplementarity > 0 {
		m.ReplacePairsWithBigM(pr.BigMComplementarity)
	}
	return b, nil
}

// buildLiteralHeuristic encodes DemPinMaxFlow (5) exactly as Section 3.2
// writes it: the FeasibleFlow polytope plus big-M pinning rows inside the
// inner problem, all KKT-certified together.
func (pr *DPGapProblem) buildLiteralHeuristic(b *dpBuild) error {
	n := pr.Inst.Demands.Len()
	dpFlow := mcf.BuildInnerMaxFlow("dp", pr.Inst, func(k int) kkt.AffineRHS {
		return kkt.Var(b.demands[k], 1, 0)
	}, 1, nil, 0) // big-M rows invalidate the 0/1-matrix dual bounds: none set
	bigM := pr.Input.MaxDemand
	for k := 0; k < n; k++ {
		// z_k = 1 forces all non-shortest-path flow to zero:
		//   sum_{p != 0} f_k^p <= M*(1 - z_k).
		if len(pr.Inst.Paths[k]) > 1 {
			row := kkt.Row{Name: fmt.Sprintf("pin0.%d", k), Rel: lp.LE,
				RHS: kkt.Var(b.pinned[k], -bigM, bigM)}
			for pi := 1; pi < len(pr.Inst.Paths[k]); pi++ {
				row.Terms = append(row.Terms, kkt.InnerTerm{Var: dpFlow.Index[k][pi], Coef: 1})
			}
			dpFlow.LP.AddRow(row)
		}
		// z_k = 1 forces the shortest path to carry the whole demand:
		//   f_k^0 >= d_k - M*(1 - z_k).
		row := kkt.Row{Name: fmt.Sprintf("pin1.%d", k), Rel: lp.GE,
			RHS: kkt.AffineRHS{Const: -bigM, Terms: []lp.Term{
				{Var: b.demands[k], Coef: 1}, {Var: b.pinned[k], Coef: bigM},
			}}}
		row.Terms = append(row.Terms, kkt.InnerTerm{Var: dpFlow.Index[k][0], Coef: 1})
		dpFlow.LP.AddRow(row)
	}
	dpRes, err := kkt.Emit(b.model, dpFlow.LP, true)
	if err != nil {
		return err
	}
	b.heurObj = dpRes.Obj
	return nil
}

// buildPhase2Heuristic encodes the heuristic the way DP actually computes
// it: pinned demands contribute w_k = z_k*d_k on their shortest paths
// (exact McCormick linearization — z is binary), and the remaining demands
// are routed by a certified max-flow over residual capacities. The residual
// problem keeps the pure 0/1 structure, so the proved dual bounds and
// McCormick complementarity cuts apply, making the single-shot relaxation
// dramatically tighter than the literal big-M encoding.
func (pr *DPGapProblem) buildPhase2Heuristic(b *dpBuild) error {
	n := pr.Inst.Demands.Len()
	p := b.model.P
	maxD := pr.Input.MaxDemand

	// w_k = z_k * d_k, linearized exactly.
	pinnedVol := make([]lp.VarID, n)
	for k := 0; k < n; k++ {
		w := p.AddVar(fmt.Sprintf("w%d", k), 0, maxD)
		pinnedVol[k] = w
		p.AddConstraint(fmt.Sprintf("w%d.le-zd", k),
			lp.NewExpr().Add(w, 1).Add(b.pinned[k], -maxD), lp.LE, 0)
		p.AddConstraint(fmt.Sprintf("w%d.le-d", k),
			lp.NewExpr().Add(w, 1).Add(b.demands[k], -1), lp.LE, 0)
		p.AddConstraint(fmt.Sprintf("w%d.ge", k),
			lp.NewExpr().Add(w, 1).Add(b.demands[k], -1).Add(b.pinned[k], -maxD),
			lp.GE, -maxD)
	}

	// Residual capacity per edge: c_e minus the pinned load crossing it.
	pinLoad := make([]lp.Expr, pr.Inst.G.NumEdges())
	for k := 0; k < n; k++ {
		for _, e := range pr.Inst.ShortestPath(k).Edges {
			pinLoad[e] = pinLoad[e].Add(pinnedVol[k], 1)
		}
	}
	phase2 := mcf.BuildInnerMaxFlow("dp2", pr.Inst, func(k int) kkt.AffineRHS {
		// Unpinned volume: d_k - w_k (zero when pinned).
		return kkt.AffineRHS{Terms: []lp.Term{
			{Var: b.demands[k], Coef: 1}, {Var: pinnedVol[k], Coef: -1},
		}}
	}, 1, nil, maxD)
	// Patch capacity rows to subtract the pinned load: the row becomes
	// sum f + sum_k w_k[e in sp_k] <= c_e.
	for e := 0; e < pr.Inst.G.NumEdges(); e++ {
		row := &phase2.LP.Rows[phase2.CapRows[e]]
		for _, t := range pinLoad[e].Terms {
			row.RHS.Terms = append(row.RHS.Terms, lp.Term{Var: t.Var, Coef: -t.Coef})
		}
	}
	res, err := kkt.Emit(b.model, phase2.LP, true)
	if err != nil {
		return err
	}
	// Heuristic value = pinned volume + certified phase-2 flow.
	b.heurObj = res.Obj
	for k := 0; k < n; k++ {
		b.heurObj = b.heurObj.Add(pinnedVol[k], 1)
	}
	return nil
}

// Stats builds the meta model and reports its size without solving —
// the Figure 6 measurements.
func (pr *DPGapProblem) Stats() (ModelStats, error) {
	b, err := pr.build()
	if err != nil {
		return ModelStats{}, err
	}
	return statsOf(b.model), nil
}

// Fingerprint builds the meta model and reports the search fingerprint
// Solve(opts) would stamp on its milp result — the identity cmd/gapserved
// keys its result cache and checkpoint files by — without solving anything.
func (pr *DPGapProblem) Fingerprint(opts milp.Options) (uint64, error) {
	b, err := pr.build()
	if err != nil {
		return 0, err
	}
	return milp.SearchFingerprint(b.model, opts), nil
}

// Solve runs the white-box search and verifies the found input against the
// direct OPT and DP solvers.
func (pr *DPGapProblem) Solve(opts milp.Options) (*Result, error) {
	return pr.run(opts, nil)
}

// Resume continues a white-box search from a branch-and-bound checkpoint
// written by an earlier Solve with Options.Checkpoint set. The meta model
// is rebuilt from the problem description — which must match the
// checkpointed run's (milp.Resume rejects mismatched fingerprints) — and
// the search picks up at the snapshotted wave boundary; seed incumbents
// are ignored in favor of the snapshot's.
func (pr *DPGapProblem) Resume(st *checkpoint.BnBState, opts milp.Options) (*Result, error) {
	if st == nil {
		return nil, fmt.Errorf("core: nil checkpoint state")
	}
	return pr.run(opts, st)
}

func (pr *DPGapProblem) run(opts milp.Options, st *checkpoint.BnBState) (*Result, error) {
	var tm PhaseTimings
	var b *dpBuild
	var err error
	tm.Build, err = obs.TimePhase(opts.Tracer, "build", func() error {
		var berr error
		b, berr = pr.build()
		if berr != nil {
			return berr
		}
		if opts.Polish == nil && !pr.DisablePolish {
			polish := pr.polisher(b)
			opts.Polish = polish
			// Price the structured candidates up front and hand them to the
			// solver as seed incumbents, so even a search whose node LPs exceed
			// the budget returns a genuine adversarial input.
			nv := b.model.P.NumVars()
			for _, cand := range [][]float64{
				constantVector(len(b.demands), pr.Input.MaxDemand),
				constantVector(len(b.demands), pr.Threshold),
				pr.greedyPinSeed(),
			} {
				x := make([]float64, nv)
				for k, dv := range b.demands {
					x[dv] = cand[k]
					if cand[k] <= pr.Threshold {
						x[b.pinned[k]] = 1
					}
				}
				if obj, sol, ok := polish(x); ok {
					opts.Seeds = append(opts.Seeds, milp.Seed{Objective: obj, X: sol})
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var res *milp.Result
	tm.Solve, err = obs.TimePhase(opts.Tracer, "solve", func() error {
		var serr error
		if st != nil {
			res, serr = milp.Resume(b.model, st, opts)
		} else {
			res, serr = milp.Solve(b.model, opts)
		}
		return serr
	})
	if err != nil {
		return nil, err
	}
	out := &Result{Stats: statsOf(b.model), Timings: tm, Solver: res}
	if res.X == nil {
		return out, nil
	}
	out.ModelGap = res.Objective
	out.Demands = make([]float64, len(b.demands))
	for k, dv := range b.demands {
		d := res.X[dv]
		// Clean numerical dust so verification uses a legal input.
		d = math.Max(d, pr.Input.MinDemand)
		d = math.Min(d, pr.Input.MaxDemand)
		// Snap demands the model pinned to the threshold boundary.
		if res.X[b.pinned[k]] > 0.5 && d > pr.Threshold && d-pr.Threshold < 1e-6 {
			d = pr.Threshold
		}
		out.Demands[k] = d
	}
	out.Timings.Verify, err = obs.TimePhase(opts.Tracer, "verify", func() error {
		return pr.verify(out)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// greedyPinSeed builds a structured candidate input: demands are pinned at
// the threshold greedily in order of decreasing shortest-path length —
// where a pinned demand wastes the most capacity (Section 4's qualitative
// finding) — skipping any pin that would oversubscribe a link, so the seed
// is always DP-feasible. Unpinned demands sit at the box maximum.
func (pr *DPGapProblem) greedyPinSeed() []float64 {
	n := pr.Inst.Demands.Len()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return pr.Inst.ShortestPath(order[a]).Hops() > pr.Inst.ShortestPath(order[b]).Hops()
	})
	residual := make([]float64, pr.Inst.G.NumEdges())
	for e := range residual {
		residual[e] = pr.Inst.G.Edge(e).Capacity
	}
	d := constantVector(n, pr.Input.MaxDemand)
	for _, k := range order {
		sp := pr.Inst.ShortestPath(k)
		if sp.Hops() < 2 {
			continue // pinning a one-hop demand wastes nothing
		}
		fits := true
		for _, e := range sp.Edges {
			if residual[e] < pr.Threshold {
				fits = false
				break
			}
		}
		if !fits {
			continue
		}
		for _, e := range sp.Edges {
			residual[e] -= pr.Threshold
		}
		d[k] = pr.Threshold
	}
	return d
}

// polisher returns the primal heuristic for the DP gap search: extract the
// relaxation's demand vector, repair it into the constrained set, and price
// it exactly with the direct solvers. Two rounded variants are also priced
// — "pin at the threshold" (demands the relaxation leans toward pinning are
// set to exactly T, where a pinned demand does maximal damage) and
// "bang-bang" (every demand at either T or the maximum) — the classic MIP
// rounding-heuristic move adapted to this domain. Any value returned is a
// genuinely achievable gap, so branch and bound can use it as an incumbent.
func (pr *DPGapProblem) polisher(b *dpBuild) func(x []float64) (float64, []float64, bool) {
	cache := newPriceCache(512)
	price := func(d []float64) (float64, bool) {
		at := pr.Inst.WithVolumes(d)
		dp, err := mcf.SolveDemandPinning(at, pr.Threshold)
		if err != nil {
			return 0, false // infeasible pinning or solver trouble: skip
		}
		opt, err := mcf.SolveMaxFlow(at)
		if err != nil {
			return 0, false
		}
		return opt.Total - dp.Total, true
	}
	// Structured seeds, tried once (the cache absorbs repeats): pin every
	// demand, and pin exactly the demands with multi-hop shortest paths —
	// the structure Section 4 identifies as DP's weakness ("serving small
	// demands on longer paths uses capacity along more edges"). They play
	// the role of the primal heuristics a commercial MIP solver runs.
	n := len(b.demands)
	allPin := make([]float64, n)
	longPin := make([]float64, n)
	for k := 0; k < n; k++ {
		allPin[k] = pr.Threshold
		if pr.Inst.ShortestPath(k).Hops() >= 2 {
			longPin[k] = pr.Threshold
		} else {
			longPin[k] = pr.Input.MaxDemand
		}
	}
	return func(x []float64) (float64, []float64, bool) {
		raw := make([]float64, len(b.demands))
		for k, dv := range b.demands {
			raw[k] = x[dv]
		}
		candidates := [][]float64{raw, allPin, longPin}
		if pr.Threshold >= pr.Input.MinDemand && pr.Threshold <= pr.Input.MaxDemand {
			pin := make([]float64, len(raw))
			bang := make([]float64, len(raw))
			for k := range raw {
				leans := x[b.pinned[k]] > 0.5 || raw[k] <= pr.Threshold
				if leans {
					pin[k] = pr.Threshold
					bang[k] = pr.Threshold
				} else {
					pin[k] = raw[k]
					bang[k] = pr.Input.MaxDemand
				}
			}
			candidates = append(candidates, pin, bang)
		}
		bestGap, ok := 0.0, false
		var bestD []float64
		for _, cand := range candidates {
			d, valid := pr.Input.sanitize(cand)
			if !valid {
				continue
			}
			if gap, priced := cache.price(d, price); priced && (!ok || gap > bestGap) {
				bestGap, bestD, ok = gap, d, true
			}
		}
		if !ok {
			return 0, nil, false
		}
		sol := append([]float64(nil), x...)
		for k, dv := range b.demands {
			sol[dv] = bestD[k]
		}
		return bestGap, sol, true
	}
}

// priceCache memoizes the exact pricing of demand vectors (rounded to 1e-6)
// so the polish step does not re-solve identical candidates node after node.
// Unlike a plain seen-set it stores the *result*, which makes every polisher
// a pure function of its argument: repeats return the memoized gap instead
// of being suppressed, so the answer does not depend on call order. That, in
// turn, is what lets milp.Solve call polish from concurrent workers (see
// milp.Options.Polish's concurrency contract) — the mutex makes the cache
// safe and the purity makes the schedule irrelevant.
//
// Fresh keys are computed single-flight: the first caller owns the solve,
// concurrent callers of the same key wait for its result instead of
// re-solving. Beyond saving the duplicate work, this pins the *number* of
// underlying LP solves to the set of unique keys priced — a pure function
// of the search tree — so solver-call counters in the bench registry are
// schedule-independent at any worker count. (The one remaining schedule
// dependence is FIFO eviction past max; the polish workloads stay far
// under it.)
type priceCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]priceEntry
	pending map[string]chan struct{}
	fifo    []string
}

type priceEntry struct {
	gap float64
	ok  bool
}

func newPriceCache(max int) *priceCache {
	return &priceCache{
		max:     max,
		entries: make(map[string]priceEntry, max),
		pending: make(map[string]chan struct{}),
	}
}

func (c *priceCache) key(d []float64) string {
	buf := make([]byte, 0, len(d)*8)
	for _, x := range d {
		v := int64(math.Round(x * 1e6))
		for i := 0; i < 8; i++ {
			buf = append(buf, byte(v>>(8*i)))
		}
	}
	return string(buf)
}

// price returns f(d), memoized and single-flight: exactly one caller
// computes f per fresh key while concurrent callers of that key block on
// its completion and then read the cached result. f must be deterministic
// — the waiters return the owner's answer as their own.
func (c *priceCache) price(d []float64, f func([]float64) (float64, bool)) (float64, bool) {
	k := c.key(d)
	for {
		c.mu.Lock()
		if e, hit := c.entries[k]; hit {
			c.mu.Unlock()
			return e.gap, e.ok
		}
		if ch, inflight := c.pending[k]; inflight {
			c.mu.Unlock()
			<-ch
			// The owner has published the entry; re-read it. (If eviction
			// churn already dropped it, the loop recomputes — correctness
			// never depends on the entry surviving.)
			continue
		}
		ch := make(chan struct{})
		c.pending[k] = ch
		c.mu.Unlock()

		gap, ok := f(d)

		c.mu.Lock()
		if _, hit := c.entries[k]; !hit {
			if len(c.fifo) >= c.max {
				delete(c.entries, c.fifo[0])
				c.fifo = c.fifo[1:]
			}
			c.entries[k] = priceEntry{gap: gap, ok: ok}
			c.fifo = append(c.fifo, k)
		}
		delete(c.pending, k)
		close(ch)
		c.mu.Unlock()
		return gap, ok
	}
}

// verify recomputes OPT and DP at the found demands with the direct solvers.
func (pr *DPGapProblem) verify(out *Result) error {
	inst := pr.Inst.WithVolumes(out.Demands)
	opt, err := mcf.SolveMaxFlow(inst)
	if err != nil {
		return fmt.Errorf("core: verifying OPT: %w", err)
	}
	dp, err := mcf.SolveDemandPinning(inst, pr.Threshold)
	if err != nil {
		return fmt.Errorf("core: verifying DP: %w", err)
	}
	out.OptValue = opt.Total
	out.HeurValue = dp.Total
	out.Gap = opt.Total - dp.Total
	out.NormalizedGap = out.Gap / pr.Inst.G.TotalCapacity()
	return nil
}
