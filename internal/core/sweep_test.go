package core

import (
	"testing"
	"time"

	"repro/internal/milp"
)

func TestGapAtLeast(t *testing.T) {
	pr := &DPGapProblem{
		Inst:      figure1Instance(t),
		Threshold: 50,
		Input:     InputConstraints{MaxDemand: 100},
	}
	// The maximum gap on Figure 1 is 100: a target of 80 must produce a
	// witness, a target of 150 must be proved unreachable.
	found, proved, res, err := pr.GapAtLeast(80, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !found || !proved {
		t.Fatalf("found=%v proved=%v, want witness for target 80", found, proved)
	}
	if res.Gap < 80-eps {
		t.Fatalf("witness gap %v below target", res.Gap)
	}
	found, proved, _, err = pr.GapAtLeast(150, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Fatal("found a gap above the true maximum 100")
	}
	if !proved {
		t.Fatal("small instance should prove the 150 target unreachable")
	}
}

func TestBinarySweepBracketsOptimum(t *testing.T) {
	pr := &DPGapProblem{
		Inst:      figure1Instance(t),
		Threshold: 50,
		Input:     InputConstraints{MaxDemand: 100},
	}
	best, upper, witness, err := pr.BinarySweepGap(0, 200, 12, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if witness == nil {
		t.Fatal("no witness found")
	}
	// True maximum is 100.
	if best < 100-1 || best > 100+eps {
		t.Fatalf("sweep best %v, want ~100", best)
	}
	if upper < best-eps {
		t.Fatalf("bracket inverted: best %v > upper %v", best, upper)
	}
}

func TestBinarySweepValidation(t *testing.T) {
	pr := &DPGapProblem{
		Inst: figure1Instance(t), Threshold: 50,
		Input: InputConstraints{MaxDemand: 100},
	}
	if _, _, _, err := pr.BinarySweepGap(10, 5, 3, time.Second); err == nil {
		t.Fatal("expected error for inverted range")
	}
	if _, err := SafeThreshold(pr, 10, 5, 1, 3, time.Second); err == nil {
		t.Fatal("expected error for inverted threshold range")
	}
}

func TestSafeThresholdFigure1(t *testing.T) {
	// On Figure 1 the worst-case gap at threshold T (T <= 50) is 2T: the
	// adversary pins d(0->2) = T, wasting T on each middle link while OPT
	// carries T on the direct link. SafeThreshold with eps = 30 must land
	// near T = 15.
	pr := &DPGapProblem{
		Inst:  figure1Instance(t),
		Input: InputConstraints{MaxDemand: 100},
	}
	safe, err := SafeThreshold(pr, 0, 50, 30, 10, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if safe < 13 || safe > 15+eps {
		t.Fatalf("safe threshold %v, want ~15", safe)
	}
	// Sanity: the worst-case gap at the reported threshold is within eps.
	check := *pr
	check.Threshold = safe
	res, err := check.Solve(milp.Options{MaxNodes: 300000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Gap > 30+eps {
		t.Fatalf("gap %v at 'safe' threshold %v exceeds eps", res.Gap, safe)
	}
}
