package core

import (
	"fmt"
	"time"

	"repro/internal/milp"
)

// GapAtLeast asks the Z3-style query of Section 3.3: "is there any input
// with gap >= target?", with a fixed per-query timeout. found=true comes
// with the witnessing result. proved=true means the answer is definitive
// (the solver either returned a witness or exhausted the search space);
// with found=false and proved=false the query merely timed out — the
// paper's sweep treats that as "no" and so do the helpers below.
func (pr *DPGapProblem) GapAtLeast(target float64, timeout time.Duration) (found, proved bool, res *Result, err error) {
	opts := milp.Options{
		TimeLimit:  timeout,
		DepthFirst: true,
		Target:     &target,
	}
	r, err := pr.Solve(opts)
	if err != nil {
		return false, false, nil, err
	}
	switch {
	case r.Demands != nil && r.Gap >= target-1e-6:
		return true, true, r, nil
	case r.Solver.Status == milp.StatusOptimal || r.Solver.Status == milp.StatusInfeasible:
		// Search space exhausted below the target.
		return false, true, r, nil
	default:
		return false, false, r, nil
	}
}

// BinarySweepGap brackets the maximum achievable gap in [lo, hi] by binary
// search over GapAtLeast queries — the protocol the paper uses for solvers
// that do not report incremental progress (Section 3.3). It returns the
// final bracket [bestFound, hi'] and the best witness seen. iters bounds
// the number of queries.
func (pr *DPGapProblem) BinarySweepGap(lo, hi float64, iters int, perQuery time.Duration) (bestFound float64, upper float64, witness *Result, err error) {
	if lo > hi {
		return 0, 0, nil, fmt.Errorf("core: sweep range [%g, %g] invalid", lo, hi)
	}
	bestFound, upper = lo, hi
	for i := 0; i < iters && upper-bestFound > 1e-6; i++ {
		mid := (bestFound + upper) / 2
		found, proved, r, err := pr.GapAtLeast(mid, perQuery)
		if err != nil {
			return 0, 0, nil, err
		}
		switch {
		case found:
			// The witness may overshoot the midpoint; use its actual gap.
			bestFound = r.Gap
			witness = r
		case proved:
			upper = mid
		default:
			// Timeout: per the paper's protocol, treat as "no" but do not
			// tighten the proved upper bound.
			upper = mid
		}
	}
	return bestFound, upper, witness, nil
}

// SafeThreshold searches for the largest DP threshold in [lo, hi] whose
// worst-case gap over the constrained input space stays at or below eps —
// the Section-5 use case of "identifying realistic constraints on the input
// space with small worst-case optimality gap, then safely use the
// heuristic". It assumes the worst-case gap grows with the threshold
// (Figure 4a's empirical finding) and bisects with GapAtLeast queries.
func SafeThreshold(inst *DPGapProblem, lo, hi float64, eps float64, iters int, perQuery time.Duration) (float64, error) {
	if lo > hi {
		return 0, fmt.Errorf("core: threshold range [%g, %g] invalid", lo, hi)
	}
	safe := lo
	for i := 0; i < iters && hi-safe > 1e-6; i++ {
		mid := (safe + hi) / 2
		probe := *inst
		probe.Threshold = mid
		found, _, _, err := probe.GapAtLeast(eps+1e-9, perQuery)
		if err != nil {
			return 0, err
		}
		if found {
			hi = mid // some input exceeds eps at this threshold: unsafe
		} else {
			safe = mid
		}
	}
	return safe, nil
}
