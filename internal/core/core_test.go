package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/demand"
	"repro/internal/mcf"
	"repro/internal/milp"
	"repro/internal/topology"
)

const eps = 1e-4

func almost(a, b float64) bool { return math.Abs(a-b) <= eps*(1+math.Abs(a)+math.Abs(b)) }

func figure1Instance(t *testing.T) *mcf.Instance {
	t.Helper()
	g := topology.Figure1()
	set := demand.NewSet([]demand.Pair{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 0, Dst: 2}})
	inst, err := mcf.NewInstance(g, set, 2)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// TestDPGapFigure1 is the paper's headline scenario run through the full
// white-box pipeline: on the Figure-1 topology with threshold 50 and
// demands bounded by 100, the worst-case gap is exactly 100 (achieved by
// d = (100, 100, 50)); the meta optimization must find and prove it.
func TestDPGapFigure1(t *testing.T) {
	pr := &DPGapProblem{
		Inst:      figure1Instance(t),
		Threshold: 50,
		Input:     InputConstraints{MaxDemand: 100},
	}
	res, err := pr.Solve(milp.Options{MaxNodes: 200000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Solver.Status != milp.StatusOptimal {
		t.Fatalf("status=%v (bound %v, incumbent %v)", res.Solver.Status, res.Solver.Bound, res.Solver.Objective)
	}
	if !almost(res.Gap, 100) {
		t.Fatalf("gap=%v, want 100", res.Gap)
	}
	if !almost(res.ModelGap, res.Gap) {
		t.Fatalf("model gap %v != verified gap %v", res.ModelGap, res.Gap)
	}
	// The discovered pinned demand must sit at the threshold.
	if !almost(res.Demands[2], 50) {
		t.Fatalf("adversarial demands %v, want d[2]=50", res.Demands)
	}
	if !almost(res.OptValue, 250) || !almost(res.HeurValue, 150) {
		t.Fatalf("OPT=%v DP=%v, want 250/150", res.OptValue, res.HeurValue)
	}
}

// TestDPGapMatchesBruteForceOnLevels quantizes demands to a small grid and
// compares the white-box optimum against exhaustive enumeration.
func TestDPGapMatchesBruteForceOnLevels(t *testing.T) {
	inst := figure1Instance(t)
	levels := []float64{0, 25, 50, 75, 100}
	pr := &DPGapProblem{
		Inst:      inst,
		Threshold: 50,
		Input:     InputConstraints{MaxDemand: 100, Levels: levels},
	}
	res, err := pr.Solve(milp.Options{MaxNodes: 400000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Solver.Status != milp.StatusOptimal {
		t.Fatalf("status=%v", res.Solver.Status)
	}

	best := math.Inf(-1)
	var vols [3]float64
	var rec func(k int)
	rec = func(k int) {
		if k == 3 {
			at := inst.WithVolumes(vols[:])
			if !mcf.DemandPinningFeasible(at, 50) {
				return
			}
			opt, err := mcf.SolveMaxFlow(at)
			if err != nil {
				t.Fatal(err)
			}
			dp, err := mcf.SolveDemandPinning(at, 50)
			if err != nil {
				t.Fatal(err)
			}
			if g := opt.Total - dp.Total; g > best {
				best = g
			}
			return
		}
		for _, lv := range levels {
			vols[k] = lv
			rec(k + 1)
		}
	}
	rec(0)
	if !almost(res.Gap, best) {
		t.Fatalf("whitebox gap %v != brute force %v", res.Gap, best)
	}
}

func TestDPGapRespectsGoalpost(t *testing.T) {
	// Lock every demand within 5 units of (20, 20, 20): the pinned demand
	// can be at most 25 <= threshold 50, so DP pins everything it can and
	// the reachable gap shrinks drastically versus the unconstrained 100.
	pr := &DPGapProblem{
		Inst:      figure1Instance(t),
		Threshold: 50,
		Input: InputConstraints{
			MaxDemand: 100,
			Goalposts: []Goalpost{{Reference: []float64{20, 20, 20}, MaxAbsDev: 5}},
		},
	}
	res, err := pr.Solve(milp.Options{MaxNodes: 200000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Solver.Status != milp.StatusOptimal {
		t.Fatalf("status=%v", res.Solver.Status)
	}
	for k, d := range res.Demands {
		if d < 15-eps || d > 25+eps {
			t.Fatalf("demand %d = %v escaped goalpost [15,25]", k, d)
		}
	}
	if res.Gap > 60 {
		t.Fatalf("gap=%v unexpectedly large under tight goalpost", res.Gap)
	}
	if !almost(res.ModelGap, res.Gap) {
		t.Fatalf("model gap %v != verified %v", res.ModelGap, res.Gap)
	}
}

func TestDPGapPartialGoalpost(t *testing.T) {
	// NaN reference entries leave demands free: constraining only d0 must
	// still allow the pinned demand to reach the threshold.
	pr := &DPGapProblem{
		Inst:      figure1Instance(t),
		Threshold: 50,
		Input: InputConstraints{
			MaxDemand: 100,
			Goalposts: []Goalpost{{Reference: []float64{80, math.NaN(), math.NaN()}, MaxAbsDev: 1}},
		},
	}
	res, err := pr.Solve(milp.Options{MaxNodes: 200000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Demands[0] < 79-eps || res.Demands[0] > 81+eps {
		t.Fatalf("d0=%v escaped [79,81]", res.Demands[0])
	}
	if res.Demands[2] < 45 {
		t.Fatalf("free demand d2=%v should approach threshold", res.Demands[2])
	}
}

func TestDPGapIntraInputConstraint(t *testing.T) {
	// All demands within 1 of the mean: pinned and unpinned demands must be
	// nearly equal, which caps the gap well below the free optimum of 100.
	pr := &DPGapProblem{
		Inst:      figure1Instance(t),
		Threshold: 50,
		Input:     InputConstraints{MaxDemand: 100, MaxDevFromMean: 1},
	}
	res, err := pr.Solve(milp.Options{MaxNodes: 300000})
	if err != nil {
		t.Fatal(err)
	}
	mean := (res.Demands[0] + res.Demands[1] + res.Demands[2]) / 3
	for k, d := range res.Demands {
		if math.Abs(d-mean) > 1+eps {
			t.Fatalf("demand %d = %v deviates from mean %v by > 1", k, d, mean)
		}
	}
	if res.Gap >= 100 {
		t.Fatalf("gap=%v should be strictly below unconstrained 100", res.Gap)
	}
}

func TestDPGapExclusionFindsDiverseInput(t *testing.T) {
	inst := figure1Instance(t)
	base := &DPGapProblem{Inst: inst, Threshold: 50, Input: InputConstraints{MaxDemand: 100}}
	first, err := base.Solve(milp.Options{MaxNodes: 200000})
	if err != nil {
		t.Fatal(err)
	}
	second := &DPGapProblem{
		Inst: inst, Threshold: 50,
		Input: InputConstraints{
			MaxDemand:       100,
			Exclusions:      [][]float64{first.Demands},
			ExclusionRadius: 10,
		},
	}
	res, err := second.Solve(milp.Options{MaxNodes: 400000})
	if err != nil {
		t.Fatal(err)
	}
	maxDev := 0.0
	for k := range res.Demands {
		if d := math.Abs(res.Demands[k] - first.Demands[k]); d > maxDev {
			maxDev = d
		}
	}
	if maxDev < 10-eps {
		t.Fatalf("second input %v too close to first %v", res.Demands, first.Demands)
	}
}

func TestDPGapAblationsAgree(t *testing.T) {
	inst := figure1Instance(t)
	base := &DPGapProblem{Inst: inst, Threshold: 50, Input: InputConstraints{MaxDemand: 100}}
	want, err := base.Solve(milp.Options{MaxNodes: 200000})
	if err != nil {
		t.Fatal(err)
	}
	fullKKT := &DPGapProblem{Inst: inst, Threshold: 50,
		Input: InputConstraints{MaxDemand: 100}, FullKKTOpt: true}
	got, err := fullKKT.Solve(milp.Options{MaxNodes: 400000})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(got.Gap, want.Gap) {
		t.Fatalf("full-KKT OPT gap %v != primal-only gap %v", got.Gap, want.Gap)
	}
	if got.Stats.SOSPairs <= want.Stats.SOSPairs {
		t.Fatalf("full KKT should add pairs: %d vs %d", got.Stats.SOSPairs, want.Stats.SOSPairs)
	}
	bigM := &DPGapProblem{Inst: inst, Threshold: 50,
		Input: InputConstraints{MaxDemand: 100}, BigMComplementarity: 1000}
	got2, err := bigM.Solve(milp.Options{MaxNodes: 400000})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(got2.Gap, want.Gap) {
		t.Fatalf("big-M gap %v != SOS gap %v", got2.Gap, want.Gap)
	}
	if got2.Stats.SOSPairs != 0 {
		t.Fatalf("big-M mode left %d pairs", got2.Stats.SOSPairs)
	}
}

func TestDPGapValidation(t *testing.T) {
	inst := figure1Instance(t)
	bad := []*DPGapProblem{
		{Inst: inst, Threshold: 50, Input: InputConstraints{}},
		{Inst: inst, Threshold: 50, Input: InputConstraints{MaxDemand: 10, MinDemand: 20}},
		{Inst: inst, Threshold: 50, Input: InputConstraints{MaxDemand: 10,
			Goalposts: []Goalpost{{Reference: []float64{1}, MaxAbsDev: 1}}}},
		{Inst: inst, Threshold: 50, Input: InputConstraints{MaxDemand: 10,
			Goalposts: []Goalpost{{Reference: []float64{1, 1, 1}}}}},
		{Inst: inst, Threshold: 50, Input: InputConstraints{MaxDemand: 10, Levels: []float64{20}}},
		{Inst: inst, Threshold: 50, Input: InputConstraints{MaxDemand: 10,
			Exclusions: [][]float64{{1, 1, 1}}}},
	}
	for i, pr := range bad {
		if _, err := pr.Solve(milp.Options{}); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
}

func TestDPStatsCountsSides(t *testing.T) {
	inst := figure1Instance(t)
	pr := &DPGapProblem{Inst: inst, Threshold: 50, Input: InputConstraints{MaxDemand: 100}}
	st, err := pr.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.SOSPairs == 0 || st.Binaries != 3 || st.Vars == 0 || st.LinearCons == 0 {
		t.Fatalf("stats=%+v", st)
	}
}

// popLineInstance: 3-node line, three demands, single path each — small
// enough to brute force.
func popLineInstance(t *testing.T) *mcf.Instance {
	t.Helper()
	g := topology.Line(3)
	set := demand.NewSet([]demand.Pair{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 0, Dst: 2}})
	inst, err := mcf.NewInstance(g, set, 1)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestPOPGapSingleInstantiationMatchesBruteForce(t *testing.T) {
	inst := popLineInstance(t)
	assign := []int{0, 0, 1} // demands 0,1 in partition 0; demand 2 in partition 1
	levels := []float64{0, 50, 100}
	pr := &POPGapProblem{
		Inst:           inst,
		Partitions:     2,
		Instantiations: 1,
		Assignments:    [][]int{assign},
		Input:          InputConstraints{MaxDemand: 100, Levels: levels},
	}
	res, err := pr.Solve(milp.Options{MaxNodes: 500000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Solver.Status != milp.StatusOptimal {
		t.Fatalf("status=%v", res.Solver.Status)
	}

	best := math.Inf(-1)
	var vols [3]float64
	var rec func(k int)
	rec = func(k int) {
		if k == 3 {
			at := inst.WithVolumes(vols[:])
			opt, err := mcf.SolveMaxFlow(at)
			if err != nil {
				t.Fatal(err)
			}
			totals, err := EvaluatePOPOnAssignments(at, [][]int{assign}, 2)
			if err != nil {
				t.Fatal(err)
			}
			if g := opt.Total - totals[0]; g > best {
				best = g
			}
			return
		}
		for _, lv := range levels {
			vols[k] = lv
			rec(k + 1)
		}
	}
	rec(0)
	if !almost(res.Gap, best) {
		t.Fatalf("whitebox POP gap %v != brute force %v", res.Gap, best)
	}
	if !almost(res.ModelGap, res.Gap) {
		t.Fatalf("model gap %v != verified %v", res.ModelGap, res.Gap)
	}
}

func TestPOPGapExpectationMode(t *testing.T) {
	inst := popLineInstance(t)
	pr := &POPGapProblem{
		Inst:           inst,
		Partitions:     2,
		Instantiations: 3,
		Rng:            rand.New(rand.NewSource(17)),
		Input:          InputConstraints{MaxDemand: 100},
	}
	res, err := pr.Solve(milp.Options{MaxNodes: 300000, DepthFirst: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Demands == nil {
		t.Fatalf("no incumbent: %v", res.Solver.Status)
	}
	if res.Gap < -eps {
		t.Fatalf("negative verified gap %v", res.Gap)
	}
	if !almost(res.ModelGap, res.Gap) {
		t.Fatalf("model gap %v != verified %v (expectation over 3 instantiations)", res.ModelGap, res.Gap)
	}
}

func TestPOPGapTailMode(t *testing.T) {
	inst := popLineInstance(t)
	worst := 0.0
	pr := &POPGapProblem{
		Inst:           inst,
		Partitions:     2,
		Instantiations: 3,
		Rng:            rand.New(rand.NewSource(23)),
		TailPercentile: &worst,
		Input:          InputConstraints{MaxDemand: 100, Levels: []float64{0, 50, 100}},
	}
	res, err := pr.Solve(milp.Options{MaxNodes: 500000, DepthFirst: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Demands == nil {
		t.Fatalf("no incumbent: %v", res.Solver.Status)
	}
	if !almost(res.ModelGap, res.Gap) {
		t.Fatalf("model gap %v != verified tail gap %v", res.ModelGap, res.Gap)
	}
	// Tail-worst gap dominates the expectation gap for the same input.
	prE := &POPGapProblem{
		Inst: inst, Partitions: 2, Instantiations: 3,
		Assignments: pr.Assignments, Rng: rand.New(rand.NewSource(23)),
		Input: InputConstraints{MaxDemand: 100},
	}
	_ = prE
	totals, err := EvaluatePOPOnAssignments(inst.WithVolumes(res.Demands), popAssignmentsUsed(t, pr), 2)
	if err != nil {
		t.Fatal(err)
	}
	minTotal := totals[0]
	mean := 0.0
	for _, v := range totals {
		if v < minTotal {
			minTotal = v
		}
		mean += v
	}
	mean /= float64(len(totals))
	if minTotal > mean+eps {
		t.Fatalf("min %v > mean %v", minTotal, mean)
	}
}

// popAssignmentsUsed re-derives the assignments a POPGapProblem drew from
// its seeded rng (the draw consumes the generator in build()).
func popAssignmentsUsed(t *testing.T, pr *POPGapProblem) [][]int {
	t.Helper()
	rng := rand.New(rand.NewSource(23))
	n := pr.Inst.Demands.Len()
	out := make([][]int, pr.Instantiations)
	for i := range out {
		out[i] = mcf.RandomAssignment(n, pr.Partitions, rng)
	}
	return out
}

func TestPOPGapValidation(t *testing.T) {
	inst := popLineInstance(t)
	bad := []*POPGapProblem{
		{Inst: inst, Partitions: 0, Input: InputConstraints{MaxDemand: 10}},
		{Inst: inst, Partitions: 2, Input: InputConstraints{MaxDemand: 10}}, // no rng or assignments
		{Inst: inst, Partitions: 2, Instantiations: 2, Assignments: [][]int{{0, 0, 1}},
			Input: InputConstraints{MaxDemand: 10}},
		{Inst: inst, Partitions: 2, Instantiations: 1, Assignments: [][]int{{0, 0}},
			Input: InputConstraints{MaxDemand: 10}},
	}
	for i, pr := range bad {
		if _, err := pr.Solve(milp.Options{}); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestPOPTransferGapRuns(t *testing.T) {
	inst := popLineInstance(t)
	gap, err := POPTransferGap(inst, []float64{50, 50, 50}, 2, 5, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if gap < -eps {
		t.Fatalf("transfer gap %v negative", gap)
	}
}

func TestDPGapHoseConstraint(t *testing.T) {
	// Figure 1 with a hose bound on node 0's egress: d(0->1) + d(0->2) <= 60.
	// The unconstrained worst case (100, 100, 50) violates it; under the
	// hose the gap must shrink and the found input must satisfy the bound.
	inst := figure1Instance(t)
	pr := &DPGapProblem{
		Inst:      inst,
		Threshold: 50,
		Input: InputConstraints{
			MaxDemand: 100,
			Hose: &HoseConstraint{
				Egress: []float64{60, 0, 0}, // only node 0 bounded
			},
		},
	}
	res, err := pr.Solve(milp.Options{MaxNodes: 300000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Solver.Status != milp.StatusOptimal {
		t.Fatalf("status=%v", res.Solver.Status)
	}
	// Demands 0 (0->1) and 2 (0->2) leave node 0.
	if tot := res.Demands[0] + res.Demands[2]; tot > 60+eps {
		t.Fatalf("hose violated: node-0 egress %v > 60", tot)
	}
	if res.Gap >= 100 {
		t.Fatalf("gap=%v should be strictly below the unconstrained 100", res.Gap)
	}
	if !almost(res.ModelGap, res.Gap) {
		t.Fatalf("model gap %v != verified %v", res.ModelGap, res.Gap)
	}
}

func TestHoseValidation(t *testing.T) {
	inst := figure1Instance(t)
	pr := &DPGapProblem{
		Inst: inst, Threshold: 50,
		Input: InputConstraints{
			MaxDemand: 100,
			Hose:      &HoseConstraint{Egress: []float64{60}, Pairs: []demand.Pair{{Src: 0, Dst: 1}}},
		},
	}
	if _, err := pr.Solve(milp.Options{}); err == nil {
		t.Fatal("expected error for mismatched hose pairs")
	}
}

func TestSanitizeRespectsHose(t *testing.T) {
	ic := InputConstraints{
		MaxDemand: 100,
		Hose: &HoseConstraint{
			Egress: []float64{50, 0, 0},
			Pairs:  []demand.Pair{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 0, Dst: 2}},
		},
	}
	if _, ok := ic.sanitize([]float64{40, 10, 40}); ok {
		t.Fatal("sanitize accepted a hose-violating vector")
	}
	if _, ok := ic.sanitize([]float64{20, 10, 20}); !ok {
		t.Fatal("sanitize rejected a hose-feasible vector")
	}
}

// TestQuickDPWhiteboxMatchesBruteForceRandom generalizes the Figure-1
// brute-force comparison: on random small topologies and demand supports,
// the quantized white-box optimum must match exhaustive enumeration.
func TestQuickDPWhiteboxMatchesBruteForceRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("brute force comparison is slow")
	}
	levels := []float64{0, 50, 100}
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var g *topology.Graph
		switch seed % 3 {
		case 0:
			g = topology.Line(3)
		case 1:
			g = topology.Figure1()
		default:
			g = topology.Circle(4, 1)
		}
		set := demand.RandomPairs(g, 3, rng)
		inst, err := mcf.NewInstance(g, set, 2)
		if err != nil {
			t.Fatal(err)
		}
		threshold := 25 + rng.Float64()*50
		pr := &DPGapProblem{
			Inst:      inst,
			Threshold: threshold,
			Input:     InputConstraints{MaxDemand: 100, Levels: levels},
		}
		res, err := pr.Solve(milp.Options{MaxNodes: 500000})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Solver.Status != milp.StatusOptimal {
			t.Fatalf("seed %d: status %v", seed, res.Solver.Status)
		}

		best := -1.0
		n := set.Len()
		vols := make([]float64, n)
		var rec func(k int)
		rec = func(k int) {
			if k == n {
				at := inst.WithVolumes(vols)
				if !mcf.DemandPinningFeasible(at, threshold) {
					return
				}
				opt, err := mcf.SolveMaxFlow(at)
				if err != nil {
					t.Fatal(err)
				}
				dp, err := mcf.SolveDemandPinning(at, threshold)
				if err != nil {
					t.Fatal(err)
				}
				if gp := opt.Total - dp.Total; gp > best {
					best = gp
				}
				return
			}
			for _, lv := range levels {
				vols[k] = lv
				rec(k + 1)
			}
		}
		rec(0)
		if !almost(res.Gap, best) {
			t.Fatalf("seed %d (%s, T=%.1f): whitebox %v != brute force %v",
				seed, g.Name(), threshold, res.Gap, best)
		}
	}
}
