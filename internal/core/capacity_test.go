package core

import (
	"math"
	"testing"

	"repro/internal/demand"
	"repro/internal/mcf"
	"repro/internal/milp"
	"repro/internal/topology"
)

// capFigure1Instance: Figure-1 topology with fixed demands (100, 100, 50)
// and threshold 50, so demand 0->2 is always pinned on the 2-hop path.
func capFigure1Instance(t *testing.T) *mcf.Instance {
	t.Helper()
	g := topology.Figure1()
	set := demand.NewSet([]demand.Pair{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 0, Dst: 2}})
	set.SetVolumes([]float64{100, 100, 50})
	inst, err := mcf.NewInstance(g, set, 2)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestCapacityGapFigure1(t *testing.T) {
	inst := capFigure1Instance(t)
	// Edges: 0 (0->1), 1 (1->2), 2 (0->2 direct). Allow each capacity in
	// [50, 150]. The pinned demand wastes 50 units on edges 0 and 1, so the
	// adversary should shrink those links (making the waste bite hardest)
	// and grow the direct link OPT uses.
	pr := &CapacityGapProblem{
		Inst:      inst,
		Threshold: 50,
		CapLo:     []float64{50, 50, 50},
		CapHi:     []float64{150, 150, 150},
	}
	res, err := pr.Solve(milp.Options{MaxNodes: 400000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Solver.Status != milp.StatusOptimal {
		t.Fatalf("status=%v", res.Solver.Status)
	}
	if math.Abs(res.ModelGap-res.Gap) > 1e-4 {
		t.Fatalf("model gap %v != verified %v", res.ModelGap, res.Gap)
	}
	// Brute-force over the corners (the optimum of this small problem sits
	// at a vertex of the capacity box).
	best := math.Inf(-1)
	for _, c0 := range []float64{50, 150} {
		for _, c1 := range []float64{50, 150} {
			for _, c2 := range []float64{50, 150} {
				if gap, _, _, ok := pr.priceCaps([]float64{c0, c1, c2}); ok && gap > best {
					best = gap
				}
			}
		}
	}
	if res.Gap < best-1e-4 {
		t.Fatalf("whitebox capacity gap %v below corner brute force %v", res.Gap, best)
	}
}

func TestCapacityGapRespectsBounds(t *testing.T) {
	inst := capFigure1Instance(t)
	pr := &CapacityGapProblem{
		Inst:      inst,
		Threshold: 50,
		CapLo:     []float64{90, 90, 40},
		CapHi:     []float64{110, 110, 60},
	}
	res, err := pr.Solve(milp.Options{MaxNodes: 200000})
	if err != nil {
		t.Fatal(err)
	}
	for e, c := range res.Demands {
		if c < pr.CapLo[e]-1e-6 || c > pr.CapHi[e]+1e-6 {
			t.Fatalf("edge %d capacity %v out of [%v,%v]", e, c, pr.CapLo[e], pr.CapHi[e])
		}
	}
}

func TestCapacityGapExcludesDPInfeasibleTopologies(t *testing.T) {
	// The pinned demand needs 50 units on edges 0 and 1 alongside pinned...
	// here demands (100,100,50): only 0->2 is pinned. Edge bounds dipping
	// below the pinned load (50) would make DP infeasible; the meta problem
	// must keep capacities at or above it.
	inst := capFigure1Instance(t)
	pr := &CapacityGapProblem{
		Inst:      inst,
		Threshold: 50,
		CapLo:     []float64{10, 10, 10},
		CapHi:     []float64{150, 150, 150},
	}
	res, err := pr.Solve(milp.Options{MaxNodes: 400000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Demands == nil {
		t.Fatalf("no result: %v", res.Solver.Status)
	}
	// Edges 0 and 1 carry the pinned 50 units.
	if res.Demands[0] < 50-1e-6 || res.Demands[1] < 50-1e-6 {
		t.Fatalf("adversarial capacities %v leave DP infeasible", res.Demands)
	}
	if _, _, _, ok := pr.priceCaps(res.Demands); !ok {
		t.Fatal("verification says DP infeasible at the found topology")
	}
}

func TestCapacityGapValidation(t *testing.T) {
	inst := capFigure1Instance(t)
	bad := []*CapacityGapProblem{
		{Inst: inst, Threshold: 50, CapLo: []float64{1}, CapHi: []float64{2}},
		{Inst: inst, Threshold: 50, CapLo: []float64{5, 5, 5}, CapHi: []float64{1, 1, 1}},
		{Inst: inst, Threshold: 50, CapLo: []float64{-1, 0, 0}, CapHi: []float64{1, 1, 1}},
	}
	for i, pr := range bad {
		if _, err := pr.Solve(milp.Options{}); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestCapacityGapStats(t *testing.T) {
	inst := capFigure1Instance(t)
	pr := &CapacityGapProblem{
		Inst: inst, Threshold: 50,
		CapLo: []float64{50, 50, 50}, CapHi: []float64{150, 150, 150},
	}
	st, err := pr.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Binaries != 0 {
		t.Fatalf("capacity search needs no binaries, got %d", st.Binaries)
	}
	if st.SOSPairs == 0 {
		t.Fatal("expected KKT pairs")
	}
}
