package core

import (
	"fmt"
	"math"

	"repro/internal/kkt"
	"repro/internal/lp"
	"repro/internal/mcf"
	"repro/internal/milp"
	"repro/internal/obs"
)

// CapacityGapProblem is the Section-5 extension: instead of adversarial
// demands, it searches for the *topology change* — a per-link capacity
// assignment within bounds — that maximizes OPT - DemandPinning for a fixed
// demand matrix.
//
// With demands fixed, DP's pinning pattern is a constant, so the heuristic
// decomposes into a constant pinned volume plus a certified residual
// max-flow whose capacity rows carry the outer capacity variables. No
// binaries are needed at all; the meta problem is an LP plus the KKT
// complementarity pairs.
type CapacityGapProblem struct {
	Inst      *mcf.Instance
	Threshold float64
	// CapLo/CapHi bound each directed edge's capacity (length NumEdges).
	CapLo, CapHi []float64
}

type capBuild struct {
	model *milp.Model
	caps  []lp.VarID
}

func (pr *CapacityGapProblem) validate() error {
	ne := pr.Inst.G.NumEdges()
	if len(pr.CapLo) != ne || len(pr.CapHi) != ne {
		return fmt.Errorf("core: capacity bounds length %d/%d, want %d",
			len(pr.CapLo), len(pr.CapHi), ne)
	}
	for e := 0; e < ne; e++ {
		if pr.CapLo[e] < 0 || pr.CapLo[e] > pr.CapHi[e] {
			return fmt.Errorf("core: edge %d capacity bounds [%g, %g] invalid",
				e, pr.CapLo[e], pr.CapHi[e])
		}
	}
	return nil
}

func (pr *CapacityGapProblem) build() (*capBuild, error) {
	if err := pr.validate(); err != nil {
		return nil, err
	}
	p := lp.NewProblem("cap-gap", lp.Maximize)
	m := milp.NewModel(p)
	b := &capBuild{model: m}

	ne := pr.Inst.G.NumEdges()
	b.caps = make([]lp.VarID, ne)
	for e := 0; e < ne; e++ {
		b.caps[e] = p.AddVar(fmt.Sprintf("cap%d", e), pr.CapLo[e], pr.CapHi[e])
	}
	vols := pr.Inst.Demands.CopyVolumes()
	maxVol := 0.0
	for _, v := range vols {
		if v > maxVol {
			maxVol = v
		}
	}
	if maxVol == 0 {
		maxVol = 1
	}

	// Pinned volumes and loads are constants of the fixed demand matrix.
	pinned := mcf.Pinned(pr.Inst, pr.Threshold)
	pinLoad := make([]float64, ne)
	pinnedTotal := 0.0
	residVol := make([]float64, len(vols))
	for k, v := range vols {
		if pinned[k] {
			pinnedTotal += v
			for _, e := range pr.Inst.ShortestPath(k).Edges {
				pinLoad[e] += v
			}
			continue
		}
		residVol[k] = v
	}

	patchCaps := func(fl *mcf.InnerFlow, sub []float64) {
		for e := 0; e < ne; e++ {
			row := &fl.LP.Rows[fl.CapRows[e]]
			row.RHS = kkt.AffineRHS{
				Const: -sub[e],
				Terms: []lp.Term{{Var: b.caps[e], Coef: 1}},
			}
			row.SlackUB = pr.CapHi[e]
		}
	}

	// OPT side: primal-only, capacity rows referencing the outer variables.
	optFlow := mcf.BuildInnerMaxFlow("opt", pr.Inst, func(k int) kkt.AffineRHS {
		return kkt.Constant(vols[k])
	}, 1, nil, maxVol)
	patchCaps(optFlow, make([]float64, ne))
	optRes, err := kkt.Emit(m, optFlow.LP, false)
	if err != nil {
		return nil, err
	}

	// Heuristic side: certified residual max-flow over capacity minus the
	// constant pinned load. Slack nonnegativity enforces cap >= pinned load,
	// i.e. the adversary stays within DP-feasible topologies.
	dpFlow := mcf.BuildInnerMaxFlow("dp2", pr.Inst, func(k int) kkt.AffineRHS {
		return kkt.Constant(residVol[k])
	}, 1, nil, maxVol)
	patchCaps(dpFlow, pinLoad)
	dpRes, err := kkt.Emit(m, dpFlow.LP, true)
	if err != nil {
		return nil, err
	}

	// Objective: OPT - (pinnedTotal + residual). The constant pinned volume
	// enters through a variable fixed at pinnedTotal so the model objective
	// equals the true gap exactly (polish incumbents and relaxation bounds
	// then live on the same scale).
	pc := p.AddVar("pinned-const", pinnedTotal, pinnedTotal)
	p.SetObj(pc, -1)
	for _, t := range optRes.Obj.Terms {
		p.SetObj(t.Var, p.Obj(t.Var)+t.Coef)
	}
	for _, t := range dpRes.Obj.Terms {
		p.SetObj(t.Var, p.Obj(t.Var)-t.Coef)
	}
	return b, nil
}

// Stats reports the meta model's size without solving.
func (pr *CapacityGapProblem) Stats() (ModelStats, error) {
	b, err := pr.build()
	if err != nil {
		return ModelStats{}, err
	}
	return statsOf(b.model), nil
}

// Solve runs the search and verifies the found capacities with the direct
// solvers. Result.Demands carries the adversarial *capacities* here.
func (pr *CapacityGapProblem) Solve(opts milp.Options) (*Result, error) {
	var tm PhaseTimings
	var b *capBuild
	var err error
	tm.Build, err = obs.TimePhase(opts.Tracer, "build", func() error {
		var berr error
		b, berr = pr.build()
		if berr != nil {
			return berr
		}
		if opts.Polish == nil {
			opts.Polish = pr.polisher(b)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var res *milp.Result
	tm.Solve, err = obs.TimePhase(opts.Tracer, "solve", func() error {
		var serr error
		res, serr = milp.Solve(b.model, opts)
		return serr
	})
	if err != nil {
		return nil, err
	}
	out := &Result{Stats: statsOf(b.model), Timings: tm, Solver: res}
	if res.X == nil {
		return out, nil
	}
	caps := make([]float64, len(b.caps))
	for e, cv := range b.caps {
		caps[e] = math.Max(pr.CapLo[e], math.Min(pr.CapHi[e], res.X[cv]))
	}
	out.Demands = caps
	out.ModelGap = res.Objective
	out.Timings.Verify, err = obs.TimePhase(opts.Tracer, "verify", func() error {
		return pr.verify(out)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// priceCaps evaluates the true gap at a capacity assignment, or ok=false
// when DP is infeasible there.
func (pr *CapacityGapProblem) priceCaps(caps []float64) (gap, opt, dp float64, ok bool) {
	g := pr.Inst.G.WithCapacities(caps)
	at := &mcf.Instance{G: g, Demands: pr.Inst.Demands, Paths: pr.Inst.Paths}
	optFlow, err := mcf.SolveMaxFlow(at)
	if err != nil {
		return 0, 0, 0, false
	}
	dpFlow, err := mcf.SolveDemandPinning(at, pr.Threshold)
	if err != nil {
		return 0, 0, 0, false
	}
	return optFlow.Total - dpFlow.Total, optFlow.Total, dpFlow.Total, true
}

func (pr *CapacityGapProblem) polisher(b *capBuild) func(x []float64) (float64, []float64, bool) {
	cache := newPriceCache(512)
	price := func(caps []float64) (float64, bool) {
		gap, _, _, ok := pr.priceCaps(caps)
		return gap, ok
	}
	return func(x []float64) (float64, []float64, bool) {
		caps := make([]float64, len(b.caps))
		for e, cv := range b.caps {
			caps[e] = math.Max(pr.CapLo[e], math.Min(pr.CapHi[e], x[cv]))
		}
		gap, ok := cache.price(caps, price)
		if !ok {
			return 0, nil, false
		}
		sol := append([]float64(nil), x...)
		for e, cv := range b.caps {
			sol[cv] = caps[e]
		}
		return gap, sol, true
	}
}

func (pr *CapacityGapProblem) verify(out *Result) error {
	gap, opt, dp, ok := pr.priceCaps(out.Demands)
	if !ok {
		return fmt.Errorf("core: verifying capacity gap: direct solve failed")
	}
	out.Gap = gap
	out.OptValue = opt
	out.HeurValue = dp
	total := 0.0
	for _, c := range out.Demands {
		total += c
	}
	if total > 0 {
		out.NormalizedGap = gap / total
	}
	return nil
}
