package core

import (
	"fmt"
	"math/rand"

	"repro/internal/checkpoint"
	"repro/internal/kkt"
	"repro/internal/lp"
	"repro/internal/mcf"
	"repro/internal/milp"
	"repro/internal/obs"
	"repro/internal/sortnet"
)

// POPGapProblem searches for demands maximizing OPT - POP (Section 3.2,
// "Supporting POP"). POP's value is a random variable over partitionings;
// the search targets a deterministic descriptor of it: the empirical mean
// over Instantiations fixed random assignments (expectation mode, the
// paper's default resolution of Figure 5a), or a tail percentile computed
// with a sorting network.
type POPGapProblem struct {
	Inst       *mcf.Instance
	Partitions int
	// Instantiations is the number of fixed random partitionings R averaged
	// over (paper: 5 suffice; 1 reproduces the brittle single-sample mode of
	// Figure 5a).
	Instantiations int
	// Rng draws the assignments when Assignments is nil.
	Rng *rand.Rand
	// Assignments, when non-nil, fixes the demand-to-partition assignment of
	// each instantiation explicitly (len Instantiations x numDemands).
	Assignments [][]int
	// TailPercentile, when non-nil, switches from expectation to the sorted
	// descriptor: 0 targets the worst instantiation, 0.5 the median, 1 the
	// best.
	TailPercentile *float64
	Input          InputConstraints
	// FullKKTOpt and BigMComplementarity are the same ablations as in
	// DPGapProblem.
	FullKKTOpt          bool
	BigMComplementarity float64
	// DisablePolish turns off the direct-solver primal heuristic.
	DisablePolish bool
}

type popBuild struct {
	model       *milp.Model
	demands     []lp.VarID
	optObj      lp.Expr
	instObjs    []lp.Expr // heuristic total per instantiation
	assignments [][]int
	heurTerm    lp.Expr // the descriptor subtracted in the objective
}

func (pr *POPGapProblem) build() (*popBuild, error) {
	n := pr.Inst.Demands.Len()
	pr.Input.fillHosePairs(pr.Inst.Demands)
	if err := pr.Input.validate(n); err != nil {
		return nil, err
	}
	if pr.Partitions < 1 {
		return nil, fmt.Errorf("core: POP needs >= 1 partition")
	}
	r := pr.Instantiations
	if r < 1 {
		r = 1
	}
	assignments := pr.Assignments
	if assignments == nil {
		if pr.Rng == nil {
			return nil, fmt.Errorf("core: POP gap needs Rng or explicit Assignments")
		}
		assignments = make([][]int, r)
		for i := range assignments {
			assignments[i] = mcf.RandomAssignment(n, pr.Partitions, pr.Rng)
		}
	}
	if len(assignments) != r {
		return nil, fmt.Errorf("core: %d assignments for %d instantiations", len(assignments), r)
	}
	for _, a := range assignments {
		if len(a) != n {
			return nil, fmt.Errorf("core: assignment length %d, want %d", len(a), n)
		}
	}

	p := lp.NewProblem("pop-gap", lp.Maximize)
	m := milp.NewModel(p)
	b := &popBuild{model: m, assignments: assignments}
	b.demands = pr.Input.addDemandVars(m, n)

	// OPT side.
	optFlow := mcf.BuildInnerMaxFlow("opt", pr.Inst, func(k int) kkt.AffineRHS {
		return kkt.Var(b.demands[k], 1, 0)
	}, 1, nil, pr.Input.MaxDemand)
	optRes, err := kkt.Emit(m, optFlow.LP, pr.FullKKTOpt)
	if err != nil {
		return nil, err
	}
	b.optObj = optRes.Obj

	// Heuristic side: per instantiation, per partition, a certified inner
	// max-flow over that partition's demands with capacities divided by the
	// partition count — formulation (6).
	capFrac := 1 / float64(pr.Partitions)
	for ri, assign := range assignments {
		var instObj lp.Expr
		for c := 0; c < pr.Partitions; c++ {
			cc := c
			include := func(k int) bool { return assign[k] == cc }
			any := false
			for k := 0; k < n; k++ {
				if include(k) {
					any = true
					break
				}
			}
			if !any {
				continue
			}
			fl := mcf.BuildInnerMaxFlow(fmt.Sprintf("pop%d.%d", ri, c), pr.Inst,
				func(k int) kkt.AffineRHS { return kkt.Var(b.demands[k], 1, 0) },
				capFrac, include, pr.Input.MaxDemand)
			res, err := kkt.Emit(m, fl.LP, true)
			if err != nil {
				return nil, err
			}
			instObj = instObj.AddExpr(res.Obj, 1)
		}
		b.instObjs = append(b.instObjs, instObj)
	}

	// Descriptor: expectation or sorted percentile.
	if pr.TailPercentile == nil {
		inv := 1 / float64(r)
		for _, io := range b.instObjs {
			b.heurTerm = b.heurTerm.AddExpr(io, inv)
		}
	} else {
		// Sorting network over the instantiation totals; every total lies in
		// [0, n*MaxDemand].
		bigM := float64(n) * pr.Input.MaxDemand
		outs := sortnet.Emit(m, "tail", b.instObjs, bigM)
		idx := sortnet.PercentileIndex(*pr.TailPercentile, len(outs))
		b.heurTerm = lp.NewExpr().Add(outs[idx], 1)
	}

	for _, t := range b.optObj.Terms {
		p.SetObj(t.Var, t.Coef)
	}
	for _, t := range b.heurTerm.Terms {
		p.SetObj(t.Var, p.Obj(t.Var)-t.Coef)
	}
	if pr.BigMComplementarity > 0 {
		m.ReplacePairsWithBigM(pr.BigMComplementarity)
	}
	return b, nil
}

// Stats builds the meta model and reports its size without solving.
func (pr *POPGapProblem) Stats() (ModelStats, error) {
	b, err := pr.build()
	if err != nil {
		return ModelStats{}, err
	}
	return statsOf(b.model), nil
}

// Fingerprint builds the meta model and reports the search fingerprint
// Solve(opts) would stamp on its milp result — the identity cmd/gapserved
// keys its result cache and checkpoint files by — without solving anything.
// When Assignments is nil the build consumes draws from Rng, so callers must
// construct a fresh problem (same seed) for a subsequent Solve; gapserved
// does exactly that.
func (pr *POPGapProblem) Fingerprint(opts milp.Options) (uint64, error) {
	b, err := pr.build()
	if err != nil {
		return 0, err
	}
	return milp.SearchFingerprint(b.model, opts), nil
}

// Solve runs the white-box search and verifies the result against direct
// POP solves on the same fixed assignments.
func (pr *POPGapProblem) Solve(opts milp.Options) (*Result, error) {
	return pr.run(opts, nil)
}

// Resume continues a white-box search from a branch-and-bound checkpoint
// written by an earlier Solve with Options.Checkpoint set. The meta model
// is rebuilt from the problem description — including the Rng-drawn
// assignments, so the caller must reconstruct the problem with the same
// seed (milp.Resume rejects mismatched fingerprints) — and the search
// picks up at the snapshotted wave boundary.
func (pr *POPGapProblem) Resume(st *checkpoint.BnBState, opts milp.Options) (*Result, error) {
	if st == nil {
		return nil, fmt.Errorf("core: nil checkpoint state")
	}
	return pr.run(opts, st)
}

func (pr *POPGapProblem) run(opts milp.Options, st *checkpoint.BnBState) (*Result, error) {
	var tm PhaseTimings
	var b *popBuild
	var err error
	tm.Build, err = obs.TimePhase(opts.Tracer, "build", func() error {
		var berr error
		b, berr = pr.build()
		if berr != nil {
			return berr
		}
		if opts.Polish == nil && !pr.DisablePolish {
			polish := pr.polisher(b)
			opts.Polish = polish
			// Seed candidates, priced against the problem's own descriptor:
			// the all-max input (POP's generic weakness, capacity
			// fragmentation), and per-instantiation "concentrated" inputs that
			// load a single partition's demands while the others idle — the
			// structure behind the paper's observation that "unused capacity in
			// a partition can be used to carry demands of another partition".
			// Against one instantiation these overfit (Figure 5a); against the
			// R-average only robustly bad ones survive the pricing.
			nv := b.model.P.NumVars()
			seed := func(d []float64) {
				x := make([]float64, nv)
				for k, dv := range b.demands {
					x[dv] = d[k]
				}
				if obj, sol, ok := polish(x); ok {
					opts.Seeds = append(opts.Seeds, milp.Seed{Objective: obj, X: sol})
				}
			}
			seed(constantVector(len(b.demands), pr.Input.MaxDemand))
			for _, assign := range b.assignments {
				for c := 0; c < pr.Partitions; c++ {
					d := make([]float64, len(b.demands))
					for k, part := range assign {
						if part == c {
							d[k] = pr.Input.MaxDemand
						}
					}
					seed(d)
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var res *milp.Result
	tm.Solve, err = obs.TimePhase(opts.Tracer, "solve", func() error {
		var serr error
		if st != nil {
			res, serr = milp.Resume(b.model, st, opts)
		} else {
			res, serr = milp.Solve(b.model, opts)
		}
		return serr
	})
	if err != nil {
		return nil, err
	}
	out := &Result{Stats: statsOf(b.model), Timings: tm, Solver: res}
	if res.X == nil {
		return out, nil
	}
	out.ModelGap = res.Objective
	out.Demands = make([]float64, len(b.demands))
	for k, dv := range b.demands {
		d := res.X[dv]
		if d < pr.Input.MinDemand {
			d = pr.Input.MinDemand
		}
		if d > pr.Input.MaxDemand {
			d = pr.Input.MaxDemand
		}
		out.Demands[k] = d
	}
	out.Timings.Verify, err = obs.TimePhase(opts.Tracer, "verify", func() error {
		return pr.verify(out, b.assignments)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// polisher returns the primal heuristic for the POP gap search: price the
// relaxation's (repaired) demand vector exactly with direct solves over the
// same fixed assignments and descriptor.
func (pr *POPGapProblem) polisher(b *popBuild) func(x []float64) (float64, []float64, bool) {
	cache := newPriceCache(512)
	price := func(d []float64) (float64, bool) {
		at := pr.Inst.WithVolumes(d)
		opt, err := mcf.SolveMaxFlow(at)
		if err != nil {
			return 0, false
		}
		totals, err := EvaluatePOPOnAssignments(at, b.assignments, pr.Partitions)
		if err != nil {
			return 0, false
		}
		var heur float64
		if pr.TailPercentile == nil {
			for _, v := range totals {
				heur += v
			}
			heur /= float64(len(totals))
		} else {
			sorted := sortnet.Sort(totals)
			heur = sorted[sortnet.PercentileIndex(*pr.TailPercentile, len(sorted))]
		}
		return opt.Total - heur, true
	}
	return func(x []float64) (float64, []float64, bool) {
		raw := make([]float64, len(b.demands))
		maxed := make([]float64, len(b.demands))
		for k, dv := range b.demands {
			raw[k] = x[dv]
			maxed[k] = pr.Input.MaxDemand
		}
		bestGap, ok := 0.0, false
		var bestD []float64
		// Price the relaxation's vector and the all-max rounding (POP's
		// fragmentation hurts most when demands saturate the box).
		for _, cand := range [][]float64{raw, maxed} {
			d, valid := pr.Input.sanitize(cand)
			if !valid {
				continue
			}
			if gap, priced := cache.price(d, price); priced && (!ok || gap > bestGap) {
				bestGap, bestD, ok = gap, d, true
			}
		}
		if !ok {
			return 0, nil, false
		}
		sol := append([]float64(nil), x...)
		for k, dv := range b.demands {
			sol[dv] = bestD[k]
		}
		return bestGap, sol, true
	}
}

// verify recomputes OPT and the POP descriptor at the found demands.
func (pr *POPGapProblem) verify(out *Result, assignments [][]int) error {
	inst := pr.Inst.WithVolumes(out.Demands)
	opt, err := mcf.SolveMaxFlow(inst)
	if err != nil {
		return fmt.Errorf("core: verifying OPT: %w", err)
	}
	totals, err := EvaluatePOPOnAssignments(inst, assignments, pr.Partitions)
	if err != nil {
		return err
	}
	var heur float64
	if pr.TailPercentile == nil {
		for _, v := range totals {
			heur += v
		}
		heur /= float64(len(totals))
	} else {
		sorted := sortnet.Sort(totals)
		heur = sorted[sortnet.PercentileIndex(*pr.TailPercentile, len(sorted))]
	}
	out.OptValue = opt.Total
	out.HeurValue = heur
	out.Gap = opt.Total - heur
	out.NormalizedGap = out.Gap / pr.Inst.G.TotalCapacity()
	return nil
}

// EvaluatePOPOnAssignments solves POP directly under each fixed assignment
// and returns the total flow per assignment.
func EvaluatePOPOnAssignments(inst *mcf.Instance, assignments [][]int, partitions int) ([]float64, error) {
	n := inst.Demands.Len()
	clients := make([]mcf.Client, n)
	for k := 0; k < n; k++ {
		clients[k] = mcf.Client{Demand: k, Volume: inst.Demands.Volume(k)}
	}
	totals := make([]float64, len(assignments))
	for i, a := range assignments {
		f, err := mcf.SolvePOPAssigned(inst, clients, a, partitions)
		if err != nil {
			return nil, fmt.Errorf("core: verifying POP instantiation %d: %w", i, err)
		}
		totals[i] = f.Total
	}
	return totals, nil
}

// POPTransferGap evaluates how an adversarial input generalizes: it draws
// rounds fresh random partitionings and returns the average OPT - POP gap —
// the test of Figure 5a ("tested on 10 other random partitions").
func POPTransferGap(inst *mcf.Instance, demands []float64, partitions, rounds int, rng *rand.Rand) (float64, error) {
	at := inst.WithVolumes(demands)
	opt, err := mcf.SolveMaxFlow(at)
	if err != nil {
		return 0, err
	}
	sum := 0.0
	for i := 0; i < rounds; i++ {
		f, err := mcf.SolvePOP(at, mcf.POPOptions{Partitions: partitions, Rng: rng})
		if err != nil {
			return 0, err
		}
		sum += opt.Total - f.Total
	}
	return sum / float64(rounds), nil
}
