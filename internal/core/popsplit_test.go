package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mcf"
	"repro/internal/milp"
)

func TestLevelOfAndBounds(t *testing.T) {
	// threshold 50, maxSplits 2: level 0 for v < 50, level 1 for
	// 50 <= v < 100, level 2 for v >= 100.
	cases := []struct {
		v    float64
		want int
	}{
		{0, 0}, {49.9, 0}, {50, 1}, {99, 1}, {100, 2}, {400, 2},
	}
	for _, c := range cases {
		if got := levelOf(c.v, 50, 2); got != c.want {
			t.Fatalf("levelOf(%v)=%d, want %d", c.v, got, c.want)
		}
	}
	lo, hi := levelBounds(0, 2, 50, 300)
	if lo != 0 || hi != 50 {
		t.Fatalf("level 0 bounds [%v,%v]", lo, hi)
	}
	lo, hi = levelBounds(1, 2, 50, 300)
	if lo != 50 || hi != 100 {
		t.Fatalf("level 1 bounds [%v,%v]", lo, hi)
	}
	lo, hi = levelBounds(2, 2, 50, 300)
	if lo != 100 || hi != 300 {
		t.Fatalf("level 2 bounds [%v,%v]", lo, hi)
	}
}

func TestDrawSlotPlanShape(t *testing.T) {
	plan := drawSlotPlan(3, 2, 2, 4, rand.New(rand.NewSource(1)))
	if len(plan) != 2 || len(plan[0]) != 3 {
		t.Fatalf("plan shape wrong")
	}
	for s := 0; s <= 2; s++ {
		if len(plan[0][0][s]) != 1<<s {
			t.Fatalf("level %d has %d slots", s, len(plan[0][0][s]))
		}
	}
	for _, part := range plan[1][2][2] {
		if part < 0 || part >= 4 {
			t.Fatalf("partition %d out of range", part)
		}
	}
}

func TestPOPSplitGapMatchesBruteForce(t *testing.T) {
	inst := popLineInstance(t)
	levels := []float64{0, 40, 80}
	pr := &POPSplitGapProblem{
		Inst:           inst,
		Partitions:     2,
		Instantiations: 1,
		Rng:            rand.New(rand.NewSource(11)),
		SplitThreshold: 50,
		MaxSplits:      1,
		Input:          InputConstraints{MaxDemand: 100, Levels: levels},
	}
	res, err := pr.Solve(milp.Options{MaxNodes: 500000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Solver.Status != milp.StatusOptimal {
		t.Fatalf("status=%v", res.Solver.Status)
	}

	// Re-derive the slot plan the problem drew (same seed), then brute
	// force the quantized input space against the exact evaluator.
	prEval := &POPSplitGapProblem{
		Inst: inst, Partitions: 2, Instantiations: 1,
		SplitThreshold: 50, MaxSplits: 1,
		Input: InputConstraints{MaxDemand: 100},
	}
	plan := drawSlotPlan(inst.Demands.Len(), 1, 1, 2, rand.New(rand.NewSource(11)))
	best := math.Inf(-1)
	var vols [3]float64
	var rec func(k int)
	rec = func(k int) {
		if k == 3 {
			at := inst.WithVolumes(vols[:])
			opt, err := mcf.SolveMaxFlow(at)
			if err != nil {
				t.Fatal(err)
			}
			heur, err := prEval.evalSplitPOP(vols[:], plan)
			if err != nil {
				t.Fatal(err)
			}
			if g := opt.Total - heur; g > best {
				best = g
			}
			return
		}
		for _, lv := range levels {
			vols[k] = lv
			rec(k + 1)
		}
	}
	rec(0)
	if !almost(res.Gap, best) {
		t.Fatalf("whitebox split gap %v != brute force %v", res.Gap, best)
	}
}

func TestPOPSplitReducesGapVersusPlainPOP(t *testing.T) {
	// Client splitting spreads large demands over partitions, which should
	// not make the heuristic worse in expectation on the worst input found
	// for plain POP.
	inst := popLineInstance(t)
	d := []float64{100, 100, 100}
	at := inst.WithVolumes(d)
	opt, err := mcf.SolveMaxFlow(at)
	if err != nil {
		t.Fatal(err)
	}
	plainTotals, err := EvaluatePOPOnAssignments(at, [][]int{{0, 0, 1}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	pr := &POPSplitGapProblem{
		Inst: inst, Partitions: 2, Instantiations: 1,
		SplitThreshold: 50, MaxSplits: 2,
		Input: InputConstraints{MaxDemand: 100},
	}
	// Average split POP over several plans to smooth slot randomness.
	sum, rounds := 0.0, 8
	for i := 0; i < rounds; i++ {
		plan := drawSlotPlan(3, 1, 2, 2, rand.New(rand.NewSource(int64(100+i))))
		v, err := pr.evalSplitPOP(d, plan)
		if err != nil {
			t.Fatal(err)
		}
		sum += v
	}
	splitAvg := sum / float64(rounds)
	if splitAvg < plainTotals[0]-10 {
		t.Fatalf("split POP %v much worse than plain %v (OPT %v)", splitAvg, plainTotals[0], opt.Total)
	}
}

func TestPOPSplitValidation(t *testing.T) {
	inst := popLineInstance(t)
	bad := []*POPSplitGapProblem{
		{Inst: inst, Partitions: 0, SplitThreshold: 50, MaxSplits: 1,
			Rng: rand.New(rand.NewSource(1)), Input: InputConstraints{MaxDemand: 100}},
		{Inst: inst, Partitions: 2, SplitThreshold: 0, MaxSplits: 1,
			Rng: rand.New(rand.NewSource(1)), Input: InputConstraints{MaxDemand: 100}},
		{Inst: inst, Partitions: 2, SplitThreshold: 50, MaxSplits: 0,
			Rng: rand.New(rand.NewSource(1)), Input: InputConstraints{MaxDemand: 100}},
		{Inst: inst, Partitions: 2, SplitThreshold: 50, MaxSplits: 1,
			Input: InputConstraints{MaxDemand: 100}}, // no rng
		{Inst: inst, Partitions: 2, SplitThreshold: 200, MaxSplits: 1,
			Rng: rand.New(rand.NewSource(1)), Input: InputConstraints{MaxDemand: 100}},
	}
	for i, pr := range bad {
		if _, err := pr.Solve(milp.Options{}); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestPOPSplitStats(t *testing.T) {
	inst := popLineInstance(t)
	pr := &POPSplitGapProblem{
		Inst: inst, Partitions: 2, Instantiations: 2,
		Rng: rand.New(rand.NewSource(2)), SplitThreshold: 50, MaxSplits: 2,
		Input: InputConstraints{MaxDemand: 100},
	}
	st, err := pr.Stats()
	if err != nil {
		t.Fatal(err)
	}
	// 3 demands x 3 levels = 9 level binaries.
	if st.Binaries != 9 {
		t.Fatalf("binaries=%d, want 9", st.Binaries)
	}
	if st.SOSPairs == 0 {
		t.Fatal("no SOS pairs")
	}
}
