// Package core implements the paper's contribution: finding the input that
// maximizes the gap between an optimal algorithm and a heuristic,
//
//	argmax_{I in ConstrainedSet}  OPT(I) - Heuristic(I),          (1)
//
// by rewriting the two-stage (Stackelberg) problem into a single-shot
// mixed problem. The OPT inner problem is emitted with primal feasibility
// only (its value appears with a positive sign, so the outer maximizer
// drives it to optimality); the heuristic inner problem is certified with
// the full KKT system so its value is exactly the heuristic's optimum.
// Conditional heuristics (Demand Pinning) get big-M indicator constraints,
// and randomized heuristics (POP) are handled in expectation over multiple
// fixed instantiations or at a tail percentile via a sorting network —
// precisely the toolbox of Sections 3.1-3.3 and Appendix A.
package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/demand"
	"repro/internal/lp"
	"repro/internal/milp"
)

// InputConstraints is the paper's ConstrainedSet: the region of inputs the
// adversary may pick demands from.
type InputConstraints struct {
	// MaxDemand bounds every demand from above (required, > 0). The paper's
	// experiments bound demands by link capacity.
	MaxDemand float64
	// MinDemand bounds every demand from below (default 0).
	MinDemand float64
	// Goalposts restrict demands to lie near reference vectors
	// (Section 3.3, "bounded distance from a goalpost").
	Goalposts []Goalpost
	// MaxDevFromMean, when > 0, is the intra-input constraint of
	// Section 3.3: every demand within this distance of the mean demand.
	MaxDevFromMean float64
	// Levels, when non-empty, quantizes each demand to one of these values
	// (Section 5: "constraining or quantizing the space of inputs can
	// speed up the search"). Implemented with one binary per (demand,
	// level).
	Levels []float64
	// Exclusions lists previously found demand vectors; each new input must
	// differ from every excluded vector by at least ExclusionRadius in some
	// coordinate ("search for diverse kinds of bad inputs by iteratively
	// removing the previously-found inputs", Section 5).
	Exclusions      [][]float64
	ExclusionRadius float64
	// Hose, when non-nil, applies the hose model the paper cites as a
	// realistic input class: each node's total egress and ingress demand is
	// bounded. Hose[n] bounds node n (0 disables that node's bound).
	Hose *HoseConstraint
}

// HoseConstraint bounds per-node aggregate demand: for every node n,
// sum of demands sourced at n <= Egress[n] and sum of demands destined to n
// <= Ingress[n]. A zero entry leaves that side unconstrained.
type HoseConstraint struct {
	Egress  []float64
	Ingress []float64
	// Pairs must mirror the demand set's pairs so the constraint knows each
	// demand's endpoints; core fills this from the instance automatically
	// when left nil.
	Pairs []demand.Pair
}

// Goalpost constrains demands to a band around a reference vector. A NaN
// reference entry leaves that demand unconstrained ("the goalpost may be
// partially specified").
type Goalpost struct {
	Reference []float64
	// MaxAbsDev allows |d_k - ref_k| <= MaxAbsDev when > 0.
	MaxAbsDev float64
	// MaxRelDev allows |d_k - ref_k| <= MaxRelDev*ref_k when > 0. Both may
	// be set; the intersection applies.
	MaxRelDev float64
}

func (ic *InputConstraints) validate(n int) error {
	if ic.MaxDemand <= 0 {
		return fmt.Errorf("core: MaxDemand must be > 0")
	}
	if ic.MinDemand < 0 || ic.MinDemand > ic.MaxDemand {
		return fmt.Errorf("core: MinDemand %g out of [0, %g]", ic.MinDemand, ic.MaxDemand)
	}
	for _, gp := range ic.Goalposts {
		if len(gp.Reference) != n {
			return fmt.Errorf("core: goalpost has %d references for %d demands", len(gp.Reference), n)
		}
		if gp.MaxAbsDev <= 0 && gp.MaxRelDev <= 0 {
			return fmt.Errorf("core: goalpost needs MaxAbsDev or MaxRelDev > 0")
		}
	}
	for _, lv := range ic.Levels {
		if lv < 0 || lv > ic.MaxDemand {
			return fmt.Errorf("core: level %g out of [0, %g]", lv, ic.MaxDemand)
		}
	}
	if len(ic.Exclusions) > 0 && ic.ExclusionRadius <= 0 {
		return fmt.Errorf("core: exclusions need ExclusionRadius > 0")
	}
	for _, ex := range ic.Exclusions {
		if len(ex) != n {
			return fmt.Errorf("core: exclusion vector has %d entries for %d demands", len(ex), n)
		}
	}
	if h := ic.Hose; h != nil {
		if len(h.Pairs) != n {
			return fmt.Errorf("core: hose constraint has %d pairs for %d demands", len(h.Pairs), n)
		}
		for _, p := range h.Pairs {
			if int(p.Src) >= len(h.Egress) && len(h.Egress) > 0 {
				return fmt.Errorf("core: hose egress bounds missing node %d", p.Src)
			}
			if int(p.Dst) >= len(h.Ingress) && len(h.Ingress) > 0 {
				return fmt.Errorf("core: hose ingress bounds missing node %d", p.Dst)
			}
		}
	}
	return nil
}

// fillHosePairs copies the instance's pair list into the hose constraint
// when the caller left it nil.
func (ic *InputConstraints) fillHosePairs(set *demand.Set) {
	if ic.Hose != nil && ic.Hose.Pairs == nil {
		ic.Hose.Pairs = set.Pairs()
	}
}

// addDemandVars creates the outer demand variables and applies every input
// constraint to the meta model.
func (ic *InputConstraints) addDemandVars(m *milp.Model, n int) []lp.VarID {
	p := m.P
	dvars := make([]lp.VarID, n)
	for k := 0; k < n; k++ {
		dvars[k] = p.AddVar(fmt.Sprintf("d%d", k), ic.MinDemand, ic.MaxDemand)
	}

	for gi, gp := range ic.Goalposts {
		for k, ref := range gp.Reference {
			if math.IsNaN(ref) {
				continue
			}
			dev := math.Inf(1)
			if gp.MaxAbsDev > 0 {
				dev = gp.MaxAbsDev
			}
			if gp.MaxRelDev > 0 {
				dev = math.Min(dev, gp.MaxRelDev*ref)
			}
			p.AddConstraint(fmt.Sprintf("gp%d.hi%d", gi, k),
				lp.NewExpr().Add(dvars[k], 1), lp.LE, ref+dev)
			p.AddConstraint(fmt.Sprintf("gp%d.lo%d", gi, k),
				lp.NewExpr().Add(dvars[k], 1), lp.GE, ref-dev)
		}
	}

	if ic.MaxDevFromMean > 0 {
		inv := 1 / float64(n)
		for k := 0; k < n; k++ {
			// d_k - mean(d) within +/- MaxDevFromMean.
			hi := lp.NewExpr().Add(dvars[k], 1)
			for _, dv := range dvars {
				hi = hi.Add(dv, -inv)
			}
			p.AddConstraint(fmt.Sprintf("mean.hi%d", k), hi, lp.LE, ic.MaxDevFromMean)
			p.AddConstraint(fmt.Sprintf("mean.lo%d", k), hi, lp.GE, -ic.MaxDevFromMean)
		}
	}

	if len(ic.Levels) > 0 {
		for k := 0; k < n; k++ {
			sel := lp.NewExpr()
			val := lp.NewExpr().Add(dvars[k], -1)
			for li, lv := range ic.Levels {
				b := m.AddBinary(fmt.Sprintf("lvl%d.%d", k, li))
				sel = sel.Add(b, 1)
				if lv != 0 {
					val = val.Add(b, lv)
				}
			}
			p.AddConstraint(fmt.Sprintf("lvl%d.one", k), sel, lp.EQ, 1)
			p.AddConstraint(fmt.Sprintf("lvl%d.val", k), val, lp.EQ, 0)
		}
	}

	// Hose model: per-node egress/ingress aggregate bounds. Constraints are
	// added in sorted node order: the LP's row order fixes the simplex pivot
	// sequence (and the dual vector's layout), so ranging over the maps
	// directly would leak map iteration order into the solve.
	if h := ic.Hose; h != nil {
		egress := map[int]lp.Expr{}
		ingress := map[int]lp.Expr{}
		for k, pr := range h.Pairs {
			if len(h.Egress) > int(pr.Src) && h.Egress[pr.Src] > 0 {
				egress[int(pr.Src)] = egress[int(pr.Src)].Add(dvars[k], 1)
			}
			if len(h.Ingress) > int(pr.Dst) && h.Ingress[pr.Dst] > 0 {
				ingress[int(pr.Dst)] = ingress[int(pr.Dst)].Add(dvars[k], 1)
			}
		}
		for _, node := range sortedKeys(egress) {
			p.AddConstraint(fmt.Sprintf("hose.out%d", node), egress[node], lp.LE, h.Egress[node])
		}
		for _, node := range sortedKeys(ingress) {
			p.AddConstraint(fmt.Sprintf("hose.in%d", node), ingress[node], lp.LE, h.Ingress[node])
		}
	}

	// Exclusion zones: for each excluded vector, at least one coordinate
	// must deviate by the radius; one binary per (demand, direction).
	bigM := ic.MaxDemand + ic.ExclusionRadius
	for xi, ex := range ic.Exclusions {
		any := lp.NewExpr()
		for k := 0; k < n; k++ {
			up := m.AddBinary(fmt.Sprintf("ex%d.up%d", xi, k))
			dn := m.AddBinary(fmt.Sprintf("ex%d.dn%d", xi, k))
			any = any.Add(up, 1).Add(dn, 1)
			// up=1 => d_k >= ex_k + radius.
			m.AddIndicatorGE(fmt.Sprintf("ex%d.upc%d", xi, k), up,
				lp.NewExpr().Add(dvars[k], 1), ex[k]+ic.ExclusionRadius, bigM)
			// dn=1 => d_k <= ex_k - radius.
			m.AddIndicatorLE(fmt.Sprintf("ex%d.dnc%d", xi, k), dn,
				lp.NewExpr().Add(dvars[k], 1), ex[k]-ic.ExclusionRadius, bigM)
		}
		p.AddConstraint(fmt.Sprintf("ex%d.any", xi), any, lp.GE, 1)
	}
	return dvars
}

// sanitize turns a relaxation's demand vector into a legal member of the
// constrained set where cheaply possible (clamping to the box and
// goalposts, rounding to levels), then verifies every constraint. It
// returns ok=false when the point cannot be repaired by those local moves —
// the polish step simply skips such nodes.
func (ic *InputConstraints) sanitize(d []float64) ([]float64, bool) {
	out := append([]float64(nil), d...)
	for k := range out {
		out[k] = math.Max(ic.MinDemand, math.Min(ic.MaxDemand, out[k]))
	}
	for _, gp := range ic.Goalposts {
		for k, ref := range gp.Reference {
			if math.IsNaN(ref) {
				continue
			}
			dev := math.Inf(1)
			if gp.MaxAbsDev > 0 {
				dev = gp.MaxAbsDev
			}
			if gp.MaxRelDev > 0 {
				dev = math.Min(dev, gp.MaxRelDev*ref)
			}
			out[k] = math.Max(ref-dev, math.Min(ref+dev, out[k]))
		}
	}
	if len(ic.Levels) > 0 {
		for k := range out {
			best, bestDist := ic.Levels[0], math.Abs(out[k]-ic.Levels[0])
			for _, lv := range ic.Levels[1:] {
				if dist := math.Abs(out[k] - lv); dist < bestDist {
					best, bestDist = lv, dist
				}
			}
			out[k] = best
		}
	}
	return out, ic.satisfied(out)
}

// satisfied verifies every constraint within tolerance.
func (ic *InputConstraints) satisfied(d []float64) bool {
	const tol = 1e-7
	mean := 0.0
	for _, x := range d {
		if x < ic.MinDemand-tol || x > ic.MaxDemand+tol {
			return false
		}
		mean += x
	}
	mean /= float64(len(d))
	for _, gp := range ic.Goalposts {
		for k, ref := range gp.Reference {
			if math.IsNaN(ref) {
				continue
			}
			dev := math.Inf(1)
			if gp.MaxAbsDev > 0 {
				dev = gp.MaxAbsDev
			}
			if gp.MaxRelDev > 0 {
				dev = math.Min(dev, gp.MaxRelDev*ref)
			}
			if math.Abs(d[k]-ref) > dev+tol {
				return false
			}
		}
	}
	if ic.MaxDevFromMean > 0 {
		for _, x := range d {
			if math.Abs(x-mean) > ic.MaxDevFromMean+tol {
				return false
			}
		}
	}
	for _, ex := range ic.Exclusions {
		far := false
		for k := range d {
			if math.Abs(d[k]-ex[k]) >= ic.ExclusionRadius-tol {
				far = true
				break
			}
		}
		if !far {
			return false
		}
	}
	if h := ic.Hose; h != nil {
		egress := map[int]float64{}
		ingress := map[int]float64{}
		for k, pr := range h.Pairs {
			egress[int(pr.Src)] += d[k]
			ingress[int(pr.Dst)] += d[k]
		}
		for node, total := range egress {
			if len(h.Egress) > node && h.Egress[node] > 0 && total > h.Egress[node]+tol {
				return false
			}
		}
		for node, total := range ingress {
			if len(h.Ingress) > node && h.Ingress[node] > 0 && total > h.Ingress[node]+tol {
				return false
			}
		}
	}
	return true
}

// constantVector returns a length-n vector filled with v.
// sortedKeys returns m's keys in increasing order, for deterministic
// iteration over node-indexed maps.
func sortedKeys(m map[int]lp.Expr) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func constantVector(n int, v float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// ModelStats records the size of the single-shot optimization — the
// quantities Figure 6 plots.
type ModelStats struct {
	Vars       int // total meta-model variables
	LinearCons int // linear constraints
	SOSPairs   int // complementarity pairs from the KKT rewrite
	Binaries   int // indicator/selection binaries
}

// Result is the outcome of a gap search.
type Result struct {
	// Gap is the verified OPT(I) - Heuristic(I) at the found input,
	// recomputed with the direct solvers (not the meta model's own value).
	Gap float64
	// NormalizedGap is Gap divided by the topology's total edge capacity —
	// the metric of Figure 3.
	NormalizedGap float64
	// Demands is the adversarial input found.
	Demands []float64
	// OptValue and HeurValue are the verified inner objective values.
	OptValue, HeurValue float64
	// ModelGap is the gap the meta model claimed; it should match Gap up to
	// tolerance (a mismatch indicates an encoding bug or a loose big-M).
	ModelGap float64
	// Stats describes the meta model's size.
	Stats ModelStats
	// Timings records wall time per solve phase, complementing Stats' static
	// sizes — the dynamic half of the Figure-6 scaling story.
	Timings PhaseTimings
	// Solver carries branch-and-bound diagnostics (status, bound, nodes).
	Solver *milp.Result
}

// PhaseTimings is the wall time spent in each phase of a gap search. When a
// Tracer is set on the search Options, the same phases are also emitted as
// phase_start/phase_end events (and land in the metrics registry as
// phase_<name>_seconds histograms through a MetricsSink).
type PhaseTimings struct {
	// Build covers meta-model construction, including pricing the structured
	// seed candidates with the direct solvers.
	Build time.Duration
	// Solve is the branch-and-bound search itself.
	Solve time.Duration
	// Verify is re-pricing the found input with the direct solvers.
	Verify time.Duration
}

// statsOf snapshots model sizes after construction.
func statsOf(m *milp.Model) ModelStats {
	return ModelStats{
		Vars:       m.P.NumVars(),
		LinearCons: m.P.NumConstraints(),
		SOSPairs:   m.NumComplementarities(),
		Binaries:   m.NumBinaries(),
	}
}
